package slmob

import (
	"context"
	"fmt"
	"time"

	"slmob/internal/core"
	"slmob/internal/fanout"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// Streaming pipeline types, re-exported for downstream use.
type (
	// SnapshotSource is the streaming producer interface: anything that
	// yields τ-sampled snapshots — the in-process simulation, the TCP
	// crawler, the sensor collector, or a trace file.
	SnapshotSource = trace.Source
	// Snapshot is one observation of every avatar on the land.
	Snapshot = trace.Snapshot
	// SourceInfo carries a source's provenance (land, τ, metadata).
	SourceInfo = trace.Info
	// Analyzer is the incremental analysis engine behind Run.
	Analyzer = core.Analyzer
	// TraceFileStream streams snapshots from a trace file.
	TraceFileStream = trace.FileStream
	// EstateSource is the multiplexed producer interface of a sharded
	// measurement: per-region snapshot streams advancing on one clock.
	EstateSource = trace.EstateSource
	// EstateTick is one shared-clock tick across every region.
	EstateTick = trace.EstateTick
	// WindowedAnalyzer rolls a stream into fixed time windows; merging
	// the windows reproduces the whole-trace Analysis bit-identically.
	WindowedAnalyzer = core.WindowedAnalyzer
	// WindowSeries is one Analysis per window, in time order.
	WindowSeries = core.WindowSeries
)

// MergeAnalyses folds a time-ordered window series (or any set of
// analyses over disjoint streams of the same land and range set) into
// one Analysis. For the complete window series of a single stream the
// result is bit-identical to the whole-trace analysis.
func MergeAnalyses(parts []*Analysis) (*Analysis, error) {
	return core.MergeAnalyses(parts)
}

// Option configures a streaming run. Options follow the functional-
// options idiom: Run(ctx, scn, WithTau(10), WithRanges(10, 80)).
type Option func(*options)

type options struct {
	tau           int64
	tauSet        bool
	land          string
	cfg           core.Config
	parallel      int
	regionWorkers int
	simWorkers    int

	// Windowed analytics.
	windowFn       core.WindowFunc
	estateWindowFn func(k int64, w *EstateAnalysis)

	// Checkpoint/resume.
	ckptPath  string
	ckptEvery int64
	resume    string

	// Live-service options (ServeEstate / AnalyzeEstateLive).
	warp          float64
	tickEvery     time.Duration
	serveAddr     string
	servePassword string
	holdClock     bool
	queryAddr     string
	aoiRadius     float64
}

func buildOptions(opts []Option) options {
	o := options{tau: PaperTau}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithTau sets the snapshot period in simulated seconds (default: the
// paper's 10 s). It overrides a source's own period in AnalyzeStream.
func WithTau(tau int64) Option {
	return func(o *options) { o.tau = tau; o.tauSet = true }
}

// WithRanges sets the communication ranges to analyse (default: the
// paper's 10 m and 80 m).
func WithRanges(ranges ...float64) Option {
	return func(o *options) { o.cfg.Ranges = append([]float64(nil), ranges...) }
}

// WithZoneSize sets the zone-occupation cell edge (default: 20 m).
func WithZoneSize(metres float64) Option {
	return func(o *options) { o.cfg.ZoneSize = metres }
}

// WithMoveEps sets the minimum displacement counted as movement
// (default: 0.5 m).
func WithMoveEps(metres float64) Option {
	return func(o *options) { o.cfg.MoveEps = metres }
}

// WithSessionGap sets the absence tolerance before a session splits
// (default: 2τ).
func WithSessionGap(seconds int64) Option {
	return func(o *options) { o.cfg.SessionGap = seconds }
}

// WithLandSize sets the modelled land edge for zone occupation. Run
// defaults it to the scenario's land; AnalyzeStream reads the source's
// "size" metadata, falling back to the Second Life standard 256 m.
func WithLandSize(metres float64) Option {
	return func(o *options) { o.cfg.LandSize = metres }
}

// WithSeatedRepair treats {0,0,0} positions as seated — the Second Life
// quirk — before spatial analysis. Enable for wire-protocol sources
// (crawler, sensors), which cannot observe the seated state directly.
func WithSeatedRepair() Option {
	return func(o *options) { o.cfg.TreatZeroAsSeated = true }
}

// WithLand labels the analysis with a land name when the source does not
// describe itself.
func WithLand(name string) Option {
	return func(o *options) { o.land = name }
}

// WithParallelLands bounds how many lands RunLands simulates concurrently
// (default: all of them).
func WithParallelLands(n int) Option {
	return func(o *options) { o.parallel = n }
}

// WithRegionWorkers bounds how many regions RunEstate and
// AnalyzeEstateStream analyse concurrently. The default (0) selects
// min(regions, GOMAXPROCS); 1 degenerates to sequential per-region
// analysis. The worker count never changes results, only wall time.
func WithRegionWorkers(n int) Option {
	return func(o *options) { o.regionWorkers = n }
}

// WithSimWorkers steps an estate's regions concurrently on a persistent
// worker pool, in RunEstate and in the served estate's tick loop alike.
// Each region owns its rng streams and avatar set, so region steps
// within a tick are independent and the worker count never changes
// results — the parallel-vs-serial differential gates pin the output
// bit-identical. The default (0) and 1 select the serial loop; the
// estate-level migration sweep is always serial. It is the simulation
// counterpart of WithRegionWorkers/WithRangeWorkers, which parallelise
// the analysis side.
func WithSimWorkers(n int) Option {
	return func(o *options) { o.simWorkers = n }
}

// WithRangeWorkers fans each snapshot's independent communication-range
// passes (proximity graph, contact tracking, line-of-sight metrics) out
// across n persistent workers inside every analyzer. The default (0 or
// 1) processes ranges sequentially. In an estate run this composes with
// WithRegionWorkers: every regional analyzer fans its ranges out the
// same way. The worker count never changes results, only wall time.
func WithRangeWorkers(n int) Option {
	return func(o *options) { o.cfg.RangeWorkers = n }
}

// WithWarp sets a served estate's clock rate in simulated seconds per
// wall-clock second (default 600: a full day in 144 wall seconds).
func WithWarp(warp float64) Option {
	return func(o *options) { o.warp = warp }
}

// WithTickEvery sets a served estate's wall-clock advance interval
// (default 10 ms). Smaller intervals smooth the clock under very high
// warp at the cost of scheduler churn.
func WithTickEvery(d time.Duration) Option {
	return func(o *options) { o.tickEvery = d }
}

// WithServeAddr pins the directory endpoint's listen address for
// ServeEstate (default: a free loopback port).
func WithServeAddr(addr string) Option {
	return func(o *options) { o.serveAddr = addr }
}

// WithServePassword protects a served estate: logins, observer monitors,
// and inter-server transfer links all authenticate with it.
func WithServePassword(password string) Option {
	return func(o *options) { o.servePassword = password }
}

// WithHeldClock starts a served estate with its shared clock held at
// zero until a monitor (or an explicit StartClock) releases it, so the
// measurement can observe the grid from its very first tick.
func WithHeldClock() Option {
	return func(o *options) { o.holdClock = true }
}

// WithAOIRadius imposes a default area-of-interest radius (in metres) on
// every avatar map subscription of a served estate that did not request
// its own: pushed maps carry only entities within the radius of the
// session's avatar. Observer sessions — the measurement path — are
// always exempt and keep receiving the whole land at full resolution.
func WithAOIRadius(metres float64) Option {
	return func(o *options) { o.aoiRadius = metres }
}

// WithQueryAddr enables a served estate's live analytics query endpoint
// at the given listen address ("127.0.0.1:0" picks a free port; see
// EstateService.QueryAddr). The service runs the full sharded analysis
// beside the simulation and serves per-window and cumulative Analysis
// snapshots to any number of concurrent readers — see QueryLive and
// DialQuery. WithWindow sets the analysis window (default: hourly);
// WithTau the sampling period; the other analysis options (ranges,
// zones, session gap) configure the pipeline as usual.
func WithQueryAddr(addr string) Option {
	return func(o *options) { o.queryAddr = addr }
}

// WithAnalysisConfig replaces the whole analysis configuration at once,
// for settings without a dedicated option.
func WithAnalysisConfig(cfg AnalysisConfig) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithWindow slices the measurement into fixed windows of the given
// length in simulated seconds, aligned to absolute time (3600 gives
// clock-aligned hourly windows). RunWindows and AnalyzeWindows require
// it; RunEstate, AnalyzeEstateStream, and AnalyzeEstateLive populate the
// result's Windows series when it is set. Merging all windows of a
// stream reproduces the whole-trace analysis bit-identically.
func WithWindow(seconds int64) Option {
	return func(o *options) { o.cfg.Window = seconds }
}

// WithWindowFunc streams completed windows to fn while a windowed
// single-land run is still consuming. The *Analysis handed to fn is
// transient — its accumulators are recycled for the next window (the
// allocation-free rollover path); Clone it to retain. With a hook set,
// RunWindows/AnalyzeWindows return a series with nil Windows.
func WithWindowFunc(fn func(k int64, an *Analysis)) Option {
	return func(o *options) { o.windowFn = fn }
}

// WithEstateWindowFunc streams completed estate windows to fn while a
// windowed estate run (WithWindow) is still consuming — the live
// per-window exposure of a served estate. Unlike the single-land hook,
// the delivered values are retained: they are the same objects returned
// in EstateAnalysis.Windows.
func WithEstateWindowFunc(fn func(k int64, w *EstateAnalysis)) Option {
	return func(o *options) { o.estateWindowFn = fn }
}

// WithCheckpointEvery writes a crash-safe checkpoint of the full
// pipeline state — analyzer, and for checkpointable sources (in-process
// simulations) the world state too, rng streams included — to path
// every `every` simulated seconds, atomically (write-then-rename). A run
// killed between checkpoints resumes from the file with WithResumeFrom
// and finishes with a digest identical to an uninterrupted run.
// Supported by Run, AnalyzeStream, RunWindows, and AnalyzeWindows.
func WithCheckpointEvery(path string, every int64) Option {
	return func(o *options) { o.ckptPath = path; o.ckptEvery = every }
}

// WithResumeFrom restores the pipeline from a checkpoint file before
// consuming. The analyzer's configuration (land, τ, ranges, windows)
// comes from the checkpoint; analysis options passed alongside are
// ignored. If the checkpoint carries source state and the source
// supports restoration, the source fast-forwards; otherwise the source
// replays from the start and the analyzer skips the already-observed
// prefix by snapshot time.
func WithResumeFrom(path string) Option {
	return func(o *options) { o.resume = path }
}

// Run simulates the scenario and analyses it as one streaming pipeline:
// snapshots flow from the in-process simulation straight into the
// incremental analyzer. Pipeline state stays O(avatars + contact pairs)
// — the trace is never materialised — though the result distributions of
// the returned Analysis (contact samples, degree samples, zone counts)
// still accumulate with measurement length, as they must.
//
// Run honours ctx: cancellation stops the simulation mid-stream and
// returns ctx.Err().
func Run(ctx context.Context, scn Scenario, opts ...Option) (*Analysis, error) {
	o := buildOptions(opts)
	src, err := world.NewSource(scn, o.tau)
	if err != nil {
		return nil, err
	}
	var a *core.Analyzer
	if o.resume != "" {
		if a, err = resumeAnalyzer(o, src); err != nil {
			return nil, err
		}
	} else {
		cfg := o.cfg
		if cfg.LandSize == 0 {
			cfg.LandSize = scn.Land.Size
		}
		if a, err = core.NewAnalyzer(scn.Land.Name, o.tau, cfg); err != nil {
			return nil, err
		}
	}
	return runAnalyzer(ctx, a, src, o)
}

// RunWindows is Run with windowed analytics: the measurement is sliced
// into WithWindow-sized absolute-time windows and one Analysis per
// window is returned. Merging the series (WindowSeries.Merge) reproduces
// the Run result bit-identically. With WithWindowFunc the windows stream
// to the hook instead of being collected.
func RunWindows(ctx context.Context, scn Scenario, opts ...Option) (*WindowSeries, error) {
	o := buildOptions(opts)
	src, err := world.NewSource(scn, o.tau)
	if err != nil {
		return nil, err
	}
	cfg := o.cfg
	if cfg.LandSize == 0 {
		cfg.LandSize = scn.Land.Size
	}
	return consumeWindowed(ctx, src, scn.Land.Name, o.tau, cfg, o)
}

// AnalyzeWindows is AnalyzeStream with windowed analytics, over any
// snapshot source.
func AnalyzeWindows(ctx context.Context, src SnapshotSource, opts ...Option) (*WindowSeries, error) {
	o := buildOptions(opts)
	land, tau, cfg, err := describeStream(src, o)
	if err != nil {
		return nil, err
	}
	return consumeWindowed(ctx, src, land, tau, cfg, o)
}

// consumeWindowed builds (or resumes) the windowed analyzer and drives
// it under the run options.
func consumeWindowed(ctx context.Context, src SnapshotSource, land string, tau int64, cfg core.Config, o options) (*WindowSeries, error) {
	var wa *core.WindowedAnalyzer
	var err error
	if o.resume != "" {
		if wa, err = resumeWindowedAnalyzer(o, src); err != nil {
			return nil, err
		}
	} else {
		if cfg.Window <= 0 {
			return nil, fmt.Errorf("slmob: windowed analysis needs WithWindow")
		}
		if wa, err = core.NewWindowedAnalyzer(land, tau, cfg.Window, cfg); err != nil {
			return nil, err
		}
	}
	if o.windowFn != nil {
		wa.OnWindow(o.windowFn)
	} else if wa.RequiresHook() {
		return nil, fmt.Errorf("slmob: %s was checkpointed with a window hook; pass WithWindowFunc to resume it", o.resume)
	}
	return runWindowedAnalyzer(ctx, wa, src, o)
}

// RunEstate simulates a multi-region estate and analyses it as one
// sharded streaming pipeline: every region runs a full incremental
// analysis on a parallel worker (bounded by WithRegionWorkers), while
// the estate-global pass — whose contact metrics stay correct for pairs
// that meet across region borders or whose contact spans a handoff —
// overlaps on the calling goroutine. A 1×1 estate reproduces the Run
// pipeline exactly.
func RunEstate(ctx context.Context, est Estate, opts ...Option) (*EstateAnalysis, error) {
	o := buildOptions(opts)
	if o.simWorkers > 0 {
		est.SimWorkers = o.simWorkers
	}
	src, err := world.NewEstateSource(est, o.tau)
	if err != nil {
		return nil, err
	}
	defer src.Estate().Close()
	metas := make([]core.RegionMeta, len(est.Regions))
	for i, scn := range est.Regions {
		metas[i] = core.RegionMeta{
			Name:   scn.Land.Name,
			Origin: est.RegionOrigin(i),
			Size:   scn.Land.Size,
		}
	}
	ea, err := core.NewEstateAnalyzer(est.Name, metas, o.tau, o.cfg, o.regionWorkers)
	if err != nil {
		return nil, err
	}
	if o.estateWindowFn != nil {
		if err := ea.OnWindow(o.estateWindowFn); err != nil {
			return nil, err
		}
	}
	return ea.Consume(ctx, src)
}

// AnalyzeEstateStream runs the sharded incremental analysis over any
// estate source — a live estate simulation or a set of per-region trace
// files zipped by OpenEstateTraceStream. Region identities, placements,
// and sizes come from the source's provenance; WithLand labels the
// estate-global result.
func AnalyzeEstateStream(ctx context.Context, es EstateSource, opts ...Option) (*EstateAnalysis, error) {
	o := buildOptions(opts)
	metas, err := core.RegionMetasFromInfos(es.Regions())
	if err != nil {
		return nil, err
	}
	estate := o.land
	if estate == "" {
		for _, info := range es.Regions() {
			if estate = info.Meta["estate"]; estate != "" {
				break
			}
		}
	}
	if estate == "" {
		estate = "estate"
	}
	tau := o.tau
	if !o.tauSet {
		if infos := es.Regions(); len(infos) > 0 && infos[0].Tau > 0 {
			tau = infos[0].Tau
		}
	}
	ea, err := core.NewEstateAnalyzer(estate, metas, tau, o.cfg, o.regionWorkers)
	if err != nil {
		return nil, err
	}
	if o.estateWindowFn != nil {
		if err := ea.OnWindow(o.estateWindowFn); err != nil {
			return nil, err
		}
	}
	return ea.Consume(ctx, es)
}

// RunLands runs the scenarios as independent streaming pipelines, at most
// WithParallelLands at a time (default: all), and returns one Analysis
// per scenario in input order. The first failure cancels the rest and is
// reported as the root cause.
func RunLands(ctx context.Context, scns []Scenario, opts ...Option) ([]*Analysis, error) {
	o := buildOptions(opts)
	return fanout.Run(ctx, len(scns), o.parallel,
		func(ctx context.Context, i int) (*Analysis, error) {
			an, err := Run(ctx, scns[i], opts...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", scns[i].Land.Name, err)
			}
			return an, nil
		})
}

// describeStream resolves the analysis labelling from a self-describing
// source, with explicit options winning.
func describeStream(src SnapshotSource, o options) (string, int64, core.Config, error) {
	land, tau, cfg := o.land, o.tau, o.cfg
	if d, ok := src.(trace.Described); ok {
		info := d.Info()
		if land == "" {
			land = info.Land
		}
		if !o.tauSet && info.Tau > 0 {
			tau = info.Tau
		}
		if cfg.LandSize == 0 {
			size, err := info.Size()
			if err != nil {
				return "", 0, cfg, err
			}
			cfg.LandSize = size
		}
	}
	return land, tau, cfg, nil
}

// AnalyzeStream runs the incremental analysis over any snapshot source —
// a crawler mid-flight, a sensor collector, a replayed trace file. When
// the source describes itself (trace.Described), its land, period, and
// size metadata label the analysis; explicit options win.
func AnalyzeStream(ctx context.Context, src SnapshotSource, opts ...Option) (*Analysis, error) {
	o := buildOptions(opts)
	var a *core.Analyzer
	var err error
	if o.resume != "" {
		if a, err = resumeAnalyzer(o, src); err != nil {
			return nil, err
		}
	} else {
		land, tau, cfg, derr := describeStream(src, o)
		if derr != nil {
			return nil, derr
		}
		if a, err = core.NewAnalyzer(land, tau, cfg); err != nil {
			return nil, err
		}
	}
	return runAnalyzer(ctx, a, src, o)
}

// NewSource returns a streaming source over a fresh in-process simulation
// of the scenario, one snapshot every tau seconds.
func NewSource(scn Scenario, tau int64) (SnapshotSource, error) {
	return world.NewSource(scn, tau)
}

// NewEstateSource returns a multiplexed streaming source over a fresh
// in-process estate simulation: one tick of per-region snapshots every
// tau seconds on the estate's shared clock.
func NewEstateSource(est Estate, tau int64) (*world.EstateSource, error) {
	return world.NewEstateSource(est, tau)
}

// OpenEstateTraceStream zips one trace file per region into an estate
// source for AnalyzeEstateStream; all files must share the estate's
// snapshot timeline. Close it when done.
func OpenEstateTraceStream(paths ...string) (*trace.EstateFileStream, error) {
	return trace.OpenEstateStream(paths...)
}

// CollectEstateSource drains an estate source into one materialised
// trace per region — the bridge to the per-region file writers.
func CollectEstateSource(ctx context.Context, es EstateSource) ([]*Trace, error) {
	return trace.CollectEstate(ctx, es)
}

// TraceSource returns a streaming view of an in-memory trace.
func TraceSource(tr *Trace) SnapshotSource {
	return tr.Source()
}

// OpenTraceStream opens a trace file for constant-memory streaming,
// selecting the codec by extension like ReadTraceFile. Close it when
// done.
func OpenTraceStream(path string) (*TraceFileStream, error) {
	return trace.OpenStream(path)
}

// CollectSource drains a source into a materialised trace — the bridge
// to batch-only consumers such as the DTN replayer and the file writers.
// Self-describing sources label the trace themselves; for a custom
// SnapshotSource, supply WithLand and WithTau (an unlabelled source
// falls back to the paper's τ so the trace is always valid).
func CollectSource(ctx context.Context, src SnapshotSource, opts ...Option) (*Trace, error) {
	o := buildOptions(opts)
	var tau int64
	if o.tauSet {
		tau = o.tau
	}
	tr, err := trace.Collect(ctx, src, o.land, tau)
	if tr != nil && tr.Tau <= 0 {
		tr.Tau = o.tau
	}
	return tr, err
}

// ReadTraceFile reads a trace from disk (".csv" for CSV, anything else
// for the compact binary format).
func ReadTraceFile(path string) (*Trace, error) { return trace.ReadFile(path) }

// WriteTraceFile writes a trace to disk, selecting the codec the same
// way.
func WriteTraceFile(tr *Trace, path string) error { return trace.WriteFile(tr, path) }
