// Live-estate walkthrough: serve a multi-region estate over TCP, crawl
// it with clock-aligned monitors, and analyse the live feed — then
// verify against the offline replay of the identical scenario.
//
// This is the paper's online methodology at estate scale: its monitors
// connected to live Second Life region servers and harvested positions
// over the wire. Here the estate service hosts one region server per
// grid cell on a shared warped clock, hands border-crossing avatars
// between region servers as encoded capsules over inter-server TCP
// links, and exposes a directory endpoint; one observer monitor logs
// into every region, aligned on the directory clock. Because handoffs
// settle inside each lockstep tick, the live measurement is
// bit-identical to the in-process simulation.
//
//	go run ./examples/live-estate
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"slmob"
)

func main() {
	est := slmob.PaperEstate(42)
	est.Duration = 2 * 3600 // two simulated hours over the wire

	// One call serves the grid (held clock), connects a monitor per
	// region, releases the clock, and analyses the live stream. At warp
	// 2000 the two-hour measurement takes ~3.6 wall seconds. With a
	// window set, completed half-hour windows stream out WHILE the
	// estate is still being served — the live time-of-day view — and the
	// whole-run results below are their exact merge.
	start := time.Now()
	live, err := slmob.AnalyzeEstateLive(context.Background(), est,
		slmob.WithWarp(2000), slmob.WithRegionWorkers(3),
		slmob.WithWindow(1800),
		slmob.WithEstateWindowFunc(func(k int64, w *slmob.EstateAnalysis) {
			fmt.Printf("  [live] window %d (sim %4d..%4d s): %.1f concurrent, %d new pairs r=10m\n",
				k, k*1800, (k+1)*1800, w.Global.Summary.MeanConcurrent,
				w.Global.Contacts[slmob.BluetoothRange].Pairs)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live estate %q measured over TCP in %s\n",
		live.Estate, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  global: %s\n", live.Global.Summary)
	cs := live.Global.Contacts[slmob.BluetoothRange]
	fmt.Printf("  global r=10m: %d pairs, median CT %.0fs\n\n", cs.Pairs, cs.CT.Median())

	// The individual pieces compose too — serve now, crawl any time
	// later, possibly from another process:
	//
	//	svc, _ := slmob.ServeEstate(ctx, est, slmob.WithHeldClock())
	//	ec, _ := slmob.CrawlEstate(svc.DirectoryAddr())
	//	res, _ := slmob.AnalyzeEstateStream(ctx, ec.Source())
	//
	// (cmd/slserve and cmd/slcrawl -directory are exactly that split.)

	// Offline ground truth: the same estate, seed, and τ, replayed in
	// process. The live path adds region servers, observer monitors,
	// wire codecs, and cross-server handoffs — and changes nothing.
	offline, err := slmob.RunEstate(context.Background(), est, slmob.WithRegionWorkers(3))
	if err != nil {
		log.Fatal(err)
	}
	ocs := offline.Global.Contacts[slmob.BluetoothRange]
	fmt.Printf("offline replay: %s\n", offline.Global.Summary)
	fmt.Printf("  global r=10m: %d pairs, median CT %.0fs\n\n", ocs.Pairs, ocs.CT.Median())

	if live.Global.Summary == offline.Global.Summary &&
		cs.Pairs == ocs.Pairs && cs.CT.N() == ocs.CT.N() {
		fmt.Println("live == offline: the networked estate reproduces the simulation exactly")
	} else {
		fmt.Println("MISMATCH: live and offline measurements diverged")
	}
}
