// Estate walkthrough: shard the world into a multi-region grid and
// analyse it as one sharded streaming pipeline.
//
// The paper measured three isolated islands, but the live service was a
// contiguous grid of 256 m regions that avatars walked and teleported
// across. This example joins the three calibrated paper lands into a 1×3
// estate (shared clock, walkable borders, occasional teleports), runs
// every region's analysis on a parallel worker, and prints the
// estate-global view — whose contact metrics stay correct even for pairs
// that meet across a region border or keep talking through a handoff —
// next to each region's own numbers.
//
//	go run ./examples/estate
package main

import (
	"context"
	"fmt"
	"log"

	"slmob"
)

func main() {
	est := slmob.PaperEstate(42)
	est.Duration = 2 * 3600 // two simulated hours; the full day works too

	// Keep a handle on the simulation to read the handoff ground truth
	// afterwards. RunEstate does the same wiring in one call when the
	// simulation itself is not needed.
	src, err := slmob.NewEstateSource(est, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	res, err := slmob.AnalyzeEstateStream(context.Background(), src,
		slmob.WithRegionWorkers(3))
	if err != nil {
		log.Fatal(err)
	}

	sim := src.Estate()
	fmt.Printf("estate %q: %d regions, %d border crossings, %d teleports, %d blocked handoffs\n\n",
		res.Estate, len(res.Regions), sim.Crossings(), sim.Teleports(), sim.BlockedHandoffs())

	fmt.Printf("global: %s\n", res.Global.Summary)
	cs := res.Global.Contacts[slmob.BluetoothRange]
	fmt.Printf("global r=10m contacts: %d pairs, median CT %.0fs, median ICT %.0fs\n",
		cs.Pairs, cs.CT.Median(), cs.ICT.Median())
	fmt.Printf("global travel length p90: %.0f m (sessions continue across handoffs)\n\n",
		slmob.Quantile(res.Global.Trips.TravelLength, 0.9))

	for _, ra := range res.Regions {
		rcs := ra.Contacts[slmob.BluetoothRange]
		fmt.Printf("region %-14s %4d unique, %5.1f concurrent; median CT %.0fs, P(deg=0) %.2f\n",
			ra.Land+":", ra.Summary.Unique, ra.Summary.MeanConcurrent,
			rcs.CT.Median(), ra.Nets[slmob.BluetoothRange].DegreeZeroFraction())
	}
}
