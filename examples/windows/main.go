// Windowed analytics + checkpoint/resume walkthrough: slice a day-long
// measurement into hourly windows (the diurnal view the paper's
// whole-trace ECDFs hide), prove the windows merge back to the exact
// whole-trace analysis, and survive a mid-run kill via checkpoint.
//
//	go run ./examples/windows
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"slmob"
	"slmob/internal/trace"
)

func main() {
	scn := slmob.DanceIsland(42)
	scn.Duration = 6 * 3600 // six simulated hours

	ctx := context.Background()

	// 1. Windowed run: one Analysis per clock-aligned hour.
	ws, err := slmob.RunWindows(ctx, scn, slmob.WithWindow(3600))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s in %d hourly windows:\n", ws.Land, len(ws.Windows))
	for i, w := range ws.Windows {
		cs := w.Contacts[slmob.BluetoothRange]
		fmt.Printf("  h%02d: %5.1f concurrent, %3d new users, %4d new pairs, median CT %3.0fs\n",
			ws.First+int64(i), w.Summary.MeanConcurrent, w.Summary.Unique, cs.Pairs, median(cs.CT))
	}

	// 2. The merge invariant: windows reassemble the whole-trace result
	// bit-identically — same pipeline state machines, every event
	// attributed to exactly one window.
	merged, err := ws.Merge()
	if err != nil {
		log.Fatal(err)
	}
	whole, err := slmob.Run(ctx, scn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged windows == whole trace: %v (%d contacts r=10m either way)\n",
		merged.Summary == whole.Summary &&
			merged.Contacts[slmob.BluetoothRange].CT.Equal(whole.Contacts[slmob.BluetoothRange].CT),
		merged.Contacts[slmob.BluetoothRange].CT.N())

	// 3. Kill and resume: checkpoint every simulated half hour, "crash"
	// mid-run, resume from the file — the world state (avatars, rng
	// streams) fast-forwards, and the digest is identical.
	dir, err := os.MkdirTemp("", "slmob-windows")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "run.ckpt")

	src, err := slmob.NewSource(scn, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	killed := &killAfter{src: src, after: int(3 * 3600 / slmob.PaperTau)} // die at hour three
	_, err = slmob.AnalyzeStream(ctx, killed, slmob.WithCheckpointEvery(ckpt, 1800))
	fmt.Printf("\nrun killed mid-measurement: %v\n", err)

	fresh, err := slmob.NewSource(scn, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := slmob.AnalyzeStream(ctx, fresh, slmob.WithResumeFrom(ckpt))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from %s: digest identical to uninterrupted run: %v\n",
		filepath.Base(ckpt), resumed.Summary == whole.Summary &&
			resumed.Contacts[slmob.BluetoothRange].CT.Equal(whole.Contacts[slmob.BluetoothRange].CT))
}

func median(d *slmob.Dist) float64 {
	if d.N() == 0 {
		return 0
	}
	return d.Median()
}

// killAfter fails the stream after n snapshots — a stand-in for kill -9.
type killAfter struct {
	src   slmob.SnapshotSource
	n     int
	after int
}

var errKilled = errors.New("killed (simulated crash)")

func (k *killAfter) Next(ctx context.Context) (slmob.Snapshot, error) {
	if k.n >= k.after {
		return slmob.Snapshot{}, errKilled
	}
	k.n++
	return k.src.Next(ctx)
}

func (k *killAfter) Info() trace.Info {
	return k.src.(trace.Described).Info()
}

func (k *killAfter) SnapshotState() ([]byte, error) {
	return k.src.(trace.Stateful).SnapshotState()
}

func (k *killAfter) RestoreState(data []byte) error {
	return k.src.(trace.Stateful).RestoreState(data)
}
