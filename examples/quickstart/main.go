// Quickstart: simulate one of the paper's lands in process, run the full
// analysis, and print the headline numbers of the paper's evaluation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"slmob"
)

func main() {
	// Dance Island, two simulated hours (the paper uses 24 h; see
	// cmd/slbench for the full reproduction).
	scn := slmob.DanceIsland(42)
	scn.Duration = 2 * 3600

	tr, err := slmob.CollectTrace(scn, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	an, err := slmob.Analyze(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(an.Summary)
	for _, r := range []float64{slmob.BluetoothRange, slmob.WiFiRange} {
		cs := an.Contacts[r]
		fmt.Printf("r=%2.0fm: median CT %.0fs, ICT %.0fs, FT %.0fs; P(deg=0) %.2f\n",
			r, slmob.Median(cs.CT), slmob.Median(cs.ICT), slmob.Median(cs.FT),
			an.Nets[r].DegreeZeroFraction())
	}
	fmt.Printf("travel length p90: %.0f m; longest session: %.0f s\n",
		slmob.Quantile(an.Trips.TravelLength, 0.9),
		slmob.Quantile(an.Trips.TravelTime, 1.0))
}
