// Quickstart: simulate one of the paper's lands and analyse it as a
// single streaming pipeline — snapshots flow straight from the simulation
// into the incremental analyzer, under a context, in constant memory —
// then print the headline numbers of the paper's evaluation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"slmob"
)

func main() {
	// Dance Island, two simulated hours (the paper uses 24 h; see
	// cmd/slbench for the full reproduction).
	scn := slmob.DanceIsland(42)
	scn.Duration = 2 * 3600

	an, err := slmob.Run(context.Background(), scn,
		slmob.WithTau(slmob.PaperTau),
		slmob.WithRanges(slmob.BluetoothRange, slmob.WiFiRange))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(an.Summary)
	for _, r := range []float64{slmob.BluetoothRange, slmob.WiFiRange} {
		cs := an.Contacts[r]
		fmt.Printf("r=%2.0fm: median CT %.0fs, ICT %.0fs, FT %.0fs; P(deg=0) %.2f\n",
			r, cs.CT.Median(), cs.ICT.Median(), cs.FT.Median(),
			an.Nets[r].DegreeZeroFraction())
	}
	fmt.Printf("travel length p90: %.0f m; longest session: %.0f s\n",
		slmob.Quantile(an.Trips.TravelLength, 0.9),
		slmob.Quantile(an.Trips.TravelTime, 1.0))
}
