// Live-query walkthrough: serve an estate with the analytics query
// endpoint enabled, poll it WHILE the measurement runs, and verify the
// final served analysis against an offline replay — digest for digest.
//
// The serving side analyses the estate in fixed windows and publishes
// every sealed window to the query service; readers dial in over TCP
// and fetch cumulative or per-window analyses as serialised snapshots.
// The service recomputes the cumulative view as the merge of the sealed
// windows, so a mid-run reply is always internally consistent — and the
// deterministic wire encoding means a sha256 of the raw blob doubles as
// an equality test against the offline pipeline.
//
//	go run ./examples/query-live
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"slmob"
)

func main() {
	est := slmob.PaperEstate(42)
	est.Duration = 2 * 3600 // two simulated hours

	// Serve the estate with half-hour analysis windows and a query
	// endpoint. At warp 2000 the two-hour run takes ~3.6 wall seconds.
	ctx := context.Background()
	svc, err := slmob.ServeEstate(ctx, est,
		slmob.WithWarp(2000), slmob.WithWindow(1800),
		slmob.WithQueryAddr("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Stop()
	fmt.Printf("query endpoint on %s\n", svc.QueryAddr())

	// Poll the cumulative estate-global analysis while the estate runs.
	// A reply with no blob means no window has sealed yet; after that,
	// each reply is the merge of every window sealed so far.
	qc, err := slmob.DialQuery(svc.QueryAddr())
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()

	seen := int64(0)
	for {
		la, err := qc.Cumulative(-1)
		if err != nil {
			log.Fatal(err)
		}
		if la.Windows > seen && la.Analysis != nil {
			fmt.Printf("t=%5ds  %d window(s) sealed  %d visitors so far  digest %.12s…\n",
				la.SimTime, la.Windows, la.Analysis.Summary.Unique, la.Digest)
			seen = la.Windows
		}
		if la.Sealed {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The run has ended: the cumulative reply is the final whole-trace
	// analysis. Fetch it plus the service counters.
	final, err := qc.Cumulative(-1)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := qc.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsealed after %d windows: %s\n", final.Windows, final.Analysis.Summary)
	fmt.Printf("service answered %d queries for %d readers (%d dropped as slow)\n",
		stats.Queries, stats.Readers, stats.Dropped)

	// Parity gate: replay the identical estate offline and compare
	// digests. Deterministic simulation + deterministic encoding means
	// the served bytes and the replayed bytes must be identical.
	src, err := slmob.NewEstateSource(est, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	offline, err := slmob.AnalyzeEstateStream(ctx, src, slmob.WithWindow(1800))
	if err != nil {
		log.Fatal(err)
	}
	offlineDigest, err := slmob.AnalysisDigest(offline.Global)
	if err != nil {
		log.Fatal(err)
	}
	if final.Digest != offlineDigest {
		log.Fatalf("parity FAILED: served %s, offline replay %s", final.Digest, offlineDigest)
	}
	fmt.Printf("parity: served digest == offline replay digest (%s)\n", final.Digest)
}
