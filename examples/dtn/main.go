// DTN example: the paper's motivating application. Replay a Dance Island
// trace under four delay-tolerant forwarding schemes at Bluetooth range
// and compare delivery ratio, delay, and replication cost.
//
//	go run ./examples/dtn
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slmob"
)

func main() {
	scn := slmob.DanceIsland(21)
	scn.Duration = 4 * 3600
	// The DTN replayer needs random access to the trace, so bridge the
	// streaming source into a materialised trace explicitly.
	src, err := slmob.NewSource(scn, slmob.PaperTau)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := slmob.CollectSource(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.Summarize())

	results, err := slmob.CompareDTN(tr, slmob.BluetoothRange, 200, 5)
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROTOCOL\tDELIVERY\tMEDIAN DELAY\tCOPIES/MSG")
	for _, res := range results {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.0fs\t%.2f\n",
			res.Protocol, 100*res.DeliveryRatio(), res.MedianDelay(), res.CopiesPerMessage())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nepidemic should dominate delivery; direct delivery should be cheapest.")
}
