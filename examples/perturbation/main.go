// Perturbation example: what happens when the crawler does NOT mimic a
// normal user. The paper reports that a silent, motionless crawler reads
// as a bot and attracts curious users ("a steady convergence of user
// movements towards our crawler", §2). This example runs Apfel Land twice
// with an external avatar parked at a quiet corner — once naive, once
// mimicking — and prints the mean resident distance to the monitor over
// time.
//
//	go run ./examples/perturbation
package main

import (
	"fmt"
	"log"

	"slmob"
	"slmob/internal/geom"
	"slmob/internal/world"
)

func run(mimic bool) []float64 {
	scn := slmob.ApfelLand(33)
	scn.Duration = 2 * 3600
	scn.Behavior.CuriosityProb = 0.01
	sim, err := world.NewSim(scn)
	if err != nil {
		log.Fatal(err)
	}
	monitorPos := geom.V2(210, 210) // a quiet corner
	id, err := sim.AddExternal(monitorPos)
	if err != nil {
		log.Fatal(err)
	}
	var series []float64
	for sim.Time() < scn.Duration {
		sim.Step()
		if mimic && sim.Time()%45 == 0 {
			_ = sim.MoveExternal(id, monitorPos)
			_ = sim.ExternalChat(id, "nice place!")
		}
		if sim.Time()%600 == 0 {
			sum, n := 0.0, 0
			for _, st := range sim.ResidentStates(nil) {
				sum += st.Pos.DistXY(monitorPos)
				n++
			}
			if n > 0 {
				series = append(series, sum/float64(n))
			}
		}
	}
	return series
}

func main() {
	naive := run(false)
	mimic := run(true)
	fmt.Println("mean resident distance to the monitor (m), sampled every 10 sim minutes:")
	fmt.Printf("%-8s %-8s %-8s\n", "t(min)", "naive", "mimic")
	for i := range naive {
		m := "-"
		if i < len(mimic) {
			m = fmt.Sprintf("%.0f", mimic[i])
		}
		fmt.Printf("%-8d %-8.0f %-8s\n", (i+1)*10, naive[i], m)
	}
	last := len(naive) - 1
	fmt.Printf("\nfinal mean distance: naive %.0f m vs mimicking %.0f m\n", naive[last], mimic[last])
	fmt.Println("the naive monitor draws a crowd; the mimicking one does not (paper §2).")
}
