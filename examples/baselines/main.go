// Baselines example (experiment X3): the same contact analysis on the
// POI-gravity model that reproduces the paper versus the classical
// random-waypoint and Lévy-walk synthetic mobility models, population-
// matched to Dance Island. The contact-time distributions differ visibly:
// synthetic models do not produce the paper's POI-concentrated behaviour.
//
//	go run ./examples/baselines
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"slmob"
	"slmob/internal/stats"
)

func main() {
	duration := int64(4 * 3600)
	type row struct {
		name string
		ct   []float64
		deg0 float64
	}
	var rows []row
	scns := map[string]slmob.Scenario{
		"poi-gravity (paper)": slmob.DanceIsland(3),
		"random-waypoint":     slmob.BaselineScenario(slmob.RandomWaypoint, 3),
		"levy-walk":           slmob.BaselineScenario(slmob.LevyWalk, 3),
	}
	for _, name := range []string{"poi-gravity (paper)", "random-waypoint", "levy-walk"} {
		scn := scns[name]
		scn.Duration = duration
		an, err := slmob.Run(context.Background(), scn)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			name: name,
			ct:   an.Contacts[slmob.BluetoothRange].CT.Values(),
			deg0: an.Nets[slmob.BluetoothRange].DegreeZeroFraction(),
		})
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MODEL\tCT MEDIAN (s)\tCT P90 (s)\tP(DEG=0)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\n",
			r.name, slmob.Median(r.ct), slmob.Quantile(r.ct, 0.9), r.deg0)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	ks := stats.KolmogorovSmirnov(rows[0].ct, rows[1].ct)
	fmt.Printf("\nKS(poi-gravity vs random-waypoint) on CT: D=%.3f p=%.2g\n", ks.D, ks.P)
	ks = stats.KolmogorovSmirnov(rows[0].ct, rows[2].ct)
	fmt.Printf("KS(poi-gravity vs levy-walk)       on CT: D=%.3f p=%.2g\n", ks.D, ks.P)
	fmt.Println("\nlarge D: synthetic baselines do not reproduce virtual-world contact statistics.")
}
