// Sensors example: the paper's first monitoring architecture and its
// limits. A 4x4 grid of in-world sensors (96 m range, ≤16 avatars/scan,
// 16 KB cache, HTTP flushes) monitors Apfel Land for six simulated hours;
// objects expire on the public land and are replicated. The example then
// compares the sensor-derived trace against the ground-truth trace and
// shows why the paper switched to the crawler — and that deployment on a
// private land (Dance Island) is rejected outright.
//
//	go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"slmob"
	"slmob/internal/sensor"
	"slmob/internal/stats"
	"slmob/internal/world"
)

func main() {
	// Private land: deployment must fail (paper §2).
	danceEngine := sensor.NewEngine(slmob.DanceIsland(1).Land)
	if _, err := danceEngine.Deploy(0, sensor.Spec{
		Pos: slmob.DanceIsland(1).Land.POIs[0].Pos, Range: 96, Period: 10,
	}); err != nil {
		fmt.Printf("Dance Island: %v\n", err)
	}

	// Public land: deploy, collect over real HTTP, compare with ground
	// truth from the in-process collector.
	scn := slmob.ApfelLand(11)
	scn.Duration = 6 * 3600

	collector := sensor.NewCollector()
	httpSrv := httptest.NewServer(collector)
	defer httpSrv.Close()

	sim, err := world.NewSim(scn)
	if err != nil {
		log.Fatal(err)
	}
	engine := sensor.NewEngine(scn.Land)
	for _, spec := range sensor.GridSpecs(scn.Land, 4, 96, 10, httpSrv.URL, true) {
		if _, err := engine.Deploy(0, spec); err != nil {
			log.Fatal(err)
		}
	}
	for sim.Time() < scn.Duration {
		sim.Step()
		engine.Step(sim.Time(), sim)
	}
	engine.Wait()
	st := engine.Stats()
	fmt.Printf("sensor grid: %d scans, %d readings, %d flushes, %d dropped readings, %d expiries (%d replicated), %d truncated scans\n",
		st.Scans, st.Readings, st.Flushes, st.DroppedReadings, st.Expired, st.Replicated, st.TruncatedScans)

	// Both monitors analyse through the same streaming pipeline: the
	// sensor collector drains as a snapshot source, and the ground truth
	// streams from a fresh in-process simulation.
	ctx := context.Background()
	sAn, err := slmob.AnalyzeStream(ctx, collector.Source(scn.Land.Name, 10))
	if err != nil {
		log.Fatal(err)
	}
	gAn, err := slmob.Run(ctx, scn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors see: %s\n", sAn.Summary)
	fmt.Printf("crawler/ground truth: %s\n", gAn.Summary)
	sCT := sAn.Contacts[slmob.BluetoothRange].CT.Values()
	gCT := gAn.Contacts[slmob.BluetoothRange].CT.Values()
	if len(sCT) > 0 && len(gCT) > 0 {
		ks := stats.KolmogorovSmirnov(sCT, gCT)
		fmt.Printf("CT (r=10m) medians: sensors %.0fs vs ground truth %.0fs (KS D=%.3f)\n",
			slmob.Median(sCT), slmob.Median(gCT), ks.D)
	}
}
