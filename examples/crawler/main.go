// Crawler example: the full networked measurement path of the paper. It
// starts a region server hosting Isle of View under a heavy time warp,
// connects the mimicking crawler over TCP, collects a one-hour trace at
// τ = 10 s from coarse map pushes, and analyses it — all in one process,
// but over a real socket.
//
//	go run ./examples/crawler
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"slmob"
	"slmob/internal/crawler"
	"slmob/internal/server"
)

func main() {
	scn := slmob.IsleOfView(7)
	scn.Duration = 86400

	srv, err := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		Scenario: scn,
		Warp:     1200, // one sim hour ≈ 3 wall seconds
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Run(ctx) }()
	fmt.Printf("region server hosting %q on %s (warp 1200x)\n", scn.Land.Name, srv.Addr())

	cr, err := crawler.New(crawler.Config{
		Addr:     srv.Addr(),
		Name:     "paper-crawler",
		Tau:      slmob.PaperTau,
		Duration: 3600,
		Mimic:    true,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawler logged in as avatar %d, mimicking a normal user\n", cr.SelfID())

	// Stream the crawl straight into the incremental analyzer: no trace is
	// ever materialised, and the context bounds the whole measurement.
	runCtx, timeout := context.WithTimeout(ctx, 2*time.Minute)
	defer timeout()
	an, err := slmob.AnalyzeStream(runCtx, cr.Source(), slmob.WithSeatedRepair())
	cr.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(an.Summary)

	cs := an.Contacts[slmob.BluetoothRange]
	fmt.Printf("from the wire (1 m coarse map): median CT %.0fs, ICT %.0fs over %d pairs\n",
		cs.CT.Median(), cs.ICT.Median(), cs.Pairs)
}
