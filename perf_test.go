package slmob

// P4 — the allocation-free, multicore analysis core at city scale.
// These benchmarks prove the tentpole end-to-end: the steady-state
// streaming pipeline allocates ~nothing per snapshot (see
// BenchmarkPipelineStreaming24hApfel's allocs/op), the per-range fanout
// turns extra cores into wall-clock speedup on a single land, and the
// 8×8 CityEstate preset — thousands of concurrent avatars — completes a
// simulated hour with region+range workers composing.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"slmob/internal/core"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// City fixture: one simulated hour of the 8×8 city preset, materialised
// once per process so every worker configuration replays the identical
// stream.
var (
	cityOnce   sync.Once
	cityInfos  []trace.Info
	cityTraces []*trace.Trace
	cityErr    error
)

func cityHourTraces(b *testing.B) ([]trace.Info, []*trace.Trace) {
	b.Helper()
	cityOnce.Do(func() {
		est := world.CityEstate(benchSeed)
		est.Duration = 3600
		src, err := world.NewEstateSource(est, core.PaperTau)
		if err != nil {
			cityErr = err
			return
		}
		cityInfos = src.Regions()
		cityTraces, cityErr = trace.CollectEstate(context.Background(), src)
	})
	if cityErr != nil {
		b.Fatal(cityErr)
	}
	return cityInfos, cityTraces
}

// BenchmarkP4CityEstate replays the city hour through the sharded
// analyzer at several worker configurations. Results are identical
// across configurations (pinned by the worker-invariance tests); the
// worker counts are pure wall-clock leverage.
func BenchmarkP4CityEstate(b *testing.B) {
	type fanCfg struct {
		regionWorkers int
		rangeWorkers  int
	}
	// Sequential floor, the machine's full width, and full width with the
	// per-range fanout composed on top. On a single-core runner the list
	// collapses to distinct configs that still pin correctness; the
	// speedup shows on multi-core hardware.
	wide := runtime.GOMAXPROCS(0)
	if wide < 4 {
		wide = 4
	}
	configs := []fanCfg{{1, 1}, {wide, 1}, {wide, 2}}
	for _, cfg := range configs {
		name := fmt.Sprintf("regionWorkers=%d/rangeWorkers=%d", cfg.regionWorkers, cfg.rangeWorkers)
		b.Run(name, func(b *testing.B) {
			infos, trs := cityHourTraces(b)
			metas, err := core.RegionMetasFromInfos(infos)
			if err != nil {
				b.Fatal(err)
			}
			var last *core.EstateAnalysis
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay, err := trace.NewEstateReplay(infos, trs)
				if err != nil {
					b.Fatal(err)
				}
				ea, err := core.NewEstateAnalyzer("City", metas, core.PaperTau,
					core.Config{RangeWorkers: cfg.rangeWorkers}, cfg.regionWorkers)
				if err != nil {
					b.Fatal(err)
				}
				last, err = ea.Consume(context.Background(), replay)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Global.Summary.Unique), "unique")
			b.ReportMetric(last.Global.Summary.MeanConcurrent, "concurrent")
			b.ReportMetric(float64(last.Global.Contacts[core.BluetoothRange].Pairs), "global_pairs_r10")
		})
	}
}

// BenchmarkP4RangeFanout isolates WithRangeWorkers on one land: the
// cached 24 h Apfel trace analysed at five communication ranges,
// sequentially versus fanned out.
func BenchmarkP4RangeFanout(b *testing.B) {
	ranges := []float64{5, 10, 20, 40, 80}
	for _, workers := range []int{1, len(ranges)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := landTrace(b, "Apfel Land")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := core.NewAnalyzer(tr.Land, tr.Tau,
					core.Config{Ranges: ranges, RangeWorkers: workers, LandSize: 256})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.Consume(context.Background(), tr.Source()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWithRangeWorkersFacadeInvariance pins the façade option: a run
// with fanned ranges equals the sequential run exactly.
func TestWithRangeWorkersFacadeInvariance(t *testing.T) {
	scn := DanceIsland(29)
	scn.Duration = 900
	sequential, err := Run(context.Background(), scn, WithRanges(10, 40, 80))
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Run(context.Background(), scn, WithRanges(10, 40, 80), WithRangeWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.DiffAnalyses(fanned, sequential) {
		t.Error(d)
	}
}

// TestCityEstatePresetValid keeps the stress preset wired: 64 regions,
// valid grid, analysable end-to-end on a short horizon.
func TestCityEstatePresetValid(t *testing.T) {
	est := world.CityEstate(3)
	if est.Rows != 8 || est.Cols != 8 || len(est.Regions) != 64 {
		t.Fatalf("city grid = %dx%d with %d regions", est.Rows, est.Cols, len(est.Regions))
	}
	if testing.Short() {
		t.Skip("city smoke run skipped in -short mode")
	}
	est.Duration = 60
	res, err := RunEstate(context.Background(), est, WithRangeWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 64 {
		t.Fatalf("regions analysed = %d", len(res.Regions))
	}
	if res.Global.Summary.MeanConcurrent < 500 {
		t.Errorf("city concurrency = %.0f, want a city-scale population", res.Global.Summary.MeanConcurrent)
	}
}
