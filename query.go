package slmob

// The live-query façade: dial a served estate's analytics endpoint and
// fetch per-window or cumulative Analysis snapshots while (or after) the
// measurement runs. The wire payload is the deterministic serialisation
// of core's checkpoint codec, so a sha256 of the raw blob — the Digest
// fields below — equals the digest an offline replay of the same trace
// produces: the parity gate between live service and offline pipeline.

import (
	"fmt"
	"time"

	"slmob/internal/core"
	"slmob/internal/slp"
)

// LiveAnalysis is one analysis fetched from a live query endpoint: the
// decoded result plus the raw-blob digest and the service metadata that
// framed it.
type LiveAnalysis struct {
	// Analysis is the decoded result; nil when the service had nothing
	// sealed yet (poll again after a window boundary).
	Analysis *Analysis
	// Digest is the hex sha256 of the serialised blob as received.
	// Deterministic encoding makes it an equality test: two analyses
	// share a digest iff they are bit-identical.
	Digest string
	// Region is the queried region index, -1 for the estate-global view.
	Region int
	// Window is the sealed-window index the analysis covers, -1 for a
	// cumulative result.
	Window int64
	// SimTime is the shared estate clock at snapshot-publish time.
	SimTime int64
	// FirstWindow and Windows describe the sealed-window range at reply
	// time.
	FirstWindow int64
	Windows     int64
	// Sealed reports the run has ended: a cumulative result is the final
	// whole-trace analysis.
	Sealed bool
}

// QueryStats are a live analytics service's counters.
type QueryStats = slp.StatsReply

// AnalyticsClient is a connected live-query client. It is safe for
// concurrent use; requests serialise on the connection.
type AnalyticsClient struct {
	c *slp.QueryClient
}

// DialQuery connects to a live analytics query endpoint — the address
// WithQueryAddr bound (EstateService.QueryAddr), also published in the
// estate directory. Close the client when done.
func DialQuery(addr string) (*AnalyticsClient, error) {
	c, err := slp.DialQuery(addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &AnalyticsClient{c: c}, nil
}

// Close closes the connection.
func (c *AnalyticsClient) Close() error { return c.c.Close() }

// Cumulative fetches the merge of every sealed window so far — the final
// whole-trace Analysis once the run has ended. region -1 selects the
// estate-global analysis, 0..R-1 a region-local one (region 0 of a
// single-land service carries the full per-land analysis, network
// metrics included).
func (c *AnalyticsClient) Cumulative(region int) (*LiveAnalysis, error) {
	res, err := c.c.Cumulative(int32(region))
	if err != nil {
		return nil, err
	}
	return decodeLive(res)
}

// Window fetches one sealed window by index; -1 selects the most
// recently sealed one.
func (c *AnalyticsClient) Window(region int, window int64) (*LiveAnalysis, error) {
	res, err := c.c.WindowAt(int32(region), window)
	if err != nil {
		return nil, err
	}
	return decodeLive(res)
}

// Stats fetches the service's counters: sealed-window range, connected
// readers, drop-slow-reader count, and the analysis pipeline's
// incremental-engine statistics.
func (c *AnalyticsClient) Stats() (QueryStats, error) { return c.c.Stats() }

func decodeLive(res *slp.AnalysisResult) (*LiveAnalysis, error) {
	la := &LiveAnalysis{
		Region:      int(res.Region),
		Window:      res.Window,
		SimTime:     res.SimTime,
		FirstWindow: res.FirstWindow,
		Windows:     res.Windows,
		Sealed:      res.Sealed,
	}
	if res.Blob == nil {
		return la, nil
	}
	an, err := core.DecodeAnalysis(res.Blob)
	if err != nil {
		return nil, fmt.Errorf("slmob: live analysis blob: %w", err)
	}
	la.Analysis = an
	la.Digest = core.BlobDigest(res.Blob)
	return la, nil
}

// AnalysisDigest serialises the analysis with the deterministic
// checkpoint codec and returns the hex sha256 of the bytes. It equals
// LiveAnalysis.Digest for the same analysis, which makes it the offline
// side of the live/offline parity gate.
func AnalysisDigest(an *Analysis) (string, error) {
	return core.AnalysisDigest(an)
}

// QueryLive is the one-shot form: dial the endpoint, fetch the
// cumulative estate-global analysis, and close. Use DialQuery for
// polling, per-region, or per-window access.
func QueryLive(addr string) (*LiveAnalysis, error) {
	c, err := DialQuery(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Cumulative(-1)
}
