package slmob

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	scn := DanceIsland(5)
	scn.Duration = 1800
	tr, err := CollectTrace(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if an.Summary.Unique == 0 {
		t.Error("no users")
	}
	if an.Contacts[BluetoothRange] == nil || an.Contacts[WiFiRange] == nil {
		t.Error("missing default ranges")
	}
	res, err := Replay(tr, DTNConfig{Protocol: Epidemic, Range: BluetoothRange, Messages: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Error("no DTN messages generated")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if !math.IsNaN(Median(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty-sample helpers should return NaN")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("median wrong")
	}
	if Quantile([]float64{1, 2, 3, 4}, 0.75) != 3 {
		t.Error("quantile wrong")
	}
}

func TestFacadeScenarios(t *testing.T) {
	for _, scn := range PaperLands(1) {
		if err := scn.Validate(); err != nil {
			t.Errorf("%s: %v", scn.Land.Name, err)
		}
	}
	b := BaselineScenario(RandomWaypoint, 1)
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
}

// TestShortRunsThreeLands exercises the full experiment path on a short
// horizon so `go test ./...` covers it without the 24 h cost (the 24 h
// calibration lives in internal/experiment and the benchmarks).
func TestShortRunsThreeLands(t *testing.T) {
	if testing.Short() {
		t.Skip("three-land run skipped in -short mode")
	}
	runs, err := RunPaperLands(2, 2*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	figs, err := BuildFigures(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 16 {
		t.Errorf("figures = %d, want 16 panels", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Errorf("%s: %d series, want 3", f.ID, len(f.Series))
		}
	}
}
