package slmob

// One benchmark per table and figure of the paper (see DESIGN.md §3 for
// the experiment index). Each benchmark re-runs the analysis that
// produces its artefact on a cached 24-hour three-land simulation and
// reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the pipeline and regenerates the paper's numbers. The first
// benchmark to run pays the one-off simulation cost (excluded from its
// timing via ResetTimer).

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"slmob/internal/core"
	"slmob/internal/dtn"
	"slmob/internal/experiment"
	"slmob/internal/sensor"
	"slmob/internal/stats"
	"slmob/internal/trace"
	"slmob/internal/world"
)

const benchSeed = 1

var (
	benchOnce sync.Once
	benchRuns []*experiment.LandRun
	benchErr  error
)

// dayRuns returns the memoised 24 h runs for the three paper lands.
func dayRuns(b *testing.B) []*experiment.LandRun {
	b.Helper()
	benchOnce.Do(func() {
		benchRuns, benchErr = experiment.CachedDayRuns(benchSeed)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRuns
}

func landTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	for _, run := range dayRuns(b) {
		if run.Trace.Land == name {
			return run.Trace
		}
	}
	b.Fatalf("no trace for %q", name)
	return nil
}

// shortName maps a land to its metric prefix.
func shortName(land string) string {
	return map[string]string{
		"Apfel Land": "apfel", "Dance Island": "dance", "Isle of View": "isle",
	}[land]
}

// benchContacts times contact extraction over all three lands at range r
// and reports per-land medians from the final timed iteration.
func benchContacts(b *testing.B, r float64, metric string, pick func(*core.ContactSet) *stats.Weighted) {
	runs := dayRuns(b)
	last := make([]*core.ContactSet, len(runs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, run := range runs {
			cs, err := core.ExtractContacts(run.Trace, r)
			if err != nil {
				b.Fatal(err)
			}
			last[j] = cs
		}
	}
	b.StopTimer()
	for j, run := range runs {
		dist := pick(last[j])
		if dist.N() == 0 {
			continue
		}
		b.ReportMetric(dist.Median(),
			shortName(run.Trace.Land)+"_"+metric+"_median_s")
	}
}

// T1 — the §3 trace summary table.
func BenchmarkTableT1_TraceSummary(b *testing.B) {
	runs := dayRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range runs {
			run.Trace.Summarize()
		}
	}
	b.StopTimer()
	for _, run := range runs {
		sum := run.Trace.Summarize()
		name := shortName(run.Trace.Land)
		b.ReportMetric(float64(sum.Unique), name+"_unique")
		b.ReportMetric(sum.MeanConcurrent, name+"_concurrent")
	}
}

// Fig. 1 — temporal analysis.
func BenchmarkFig1a_ContactTimeCCDF_r10(b *testing.B) {
	benchContacts(b, core.BluetoothRange, "ct", func(c *core.ContactSet) *stats.Weighted { return c.CT })
}

func BenchmarkFig1b_InterContactCCDF_r10(b *testing.B) {
	benchContacts(b, core.BluetoothRange, "ict", func(c *core.ContactSet) *stats.Weighted { return c.ICT })
}

func BenchmarkFig1c_FirstContactCCDF_r10(b *testing.B) {
	benchContacts(b, core.BluetoothRange, "ft", func(c *core.ContactSet) *stats.Weighted { return c.FT })
}

func BenchmarkFig1d_ContactTimeCCDF_r80(b *testing.B) {
	benchContacts(b, core.WiFiRange, "ct", func(c *core.ContactSet) *stats.Weighted { return c.CT })
}

func BenchmarkFig1e_InterContactCCDF_r80(b *testing.B) {
	benchContacts(b, core.WiFiRange, "ict", func(c *core.ContactSet) *stats.Weighted { return c.ICT })
}

func BenchmarkFig1f_FirstContactCCDF_r80(b *testing.B) {
	benchContacts(b, core.WiFiRange, "ft", func(c *core.ContactSet) *stats.Weighted { return c.FT })
}

// benchNets times line-of-sight network analysis and reports a headline
// metric per land.
func benchNets(b *testing.B, r float64, metric string, report func(*core.NetMetrics) float64) {
	runs := dayRuns(b)
	last := make([]*core.NetMetrics, len(runs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, run := range runs {
			nm, err := core.LoSMetrics(run.Trace, r)
			if err != nil {
				b.Fatal(err)
			}
			last[j] = nm
		}
	}
	b.StopTimer()
	for j, run := range runs {
		b.ReportMetric(report(last[j]), shortName(run.Trace.Land)+"_"+metric)
	}
}

// Fig. 2 — line-of-sight network properties.
func BenchmarkFig2a_DegreeCCDF_r10(b *testing.B) {
	benchNets(b, core.BluetoothRange, "deg0_frac", (*core.NetMetrics).DegreeZeroFraction)
}

func BenchmarkFig2b_DiameterCDF_r10(b *testing.B) {
	benchNets(b, core.BluetoothRange, "diam_median", func(nm *core.NetMetrics) float64 {
		return nm.Diameters.Median()
	})
}

func BenchmarkFig2c_ClusteringCDF_r10(b *testing.B) {
	benchNets(b, core.BluetoothRange, "clust_median", func(nm *core.NetMetrics) float64 {
		return stats.MustEmpirical(nm.Clusterings).Median()
	})
}

func BenchmarkFig2d_DegreeCCDF_r80(b *testing.B) {
	benchNets(b, core.WiFiRange, "deg0_frac", (*core.NetMetrics).DegreeZeroFraction)
}

func BenchmarkFig2e_DiameterCDF_r80(b *testing.B) {
	benchNets(b, core.WiFiRange, "diam_median", func(nm *core.NetMetrics) float64 {
		return nm.Diameters.Median()
	})
}

func BenchmarkFig2f_ClusteringCDF_r80(b *testing.B) {
	benchNets(b, core.WiFiRange, "clust_median", func(nm *core.NetMetrics) float64 {
		return stats.MustEmpirical(nm.Clusterings).Median()
	})
}

// Fig. 3 — zone occupation (L = 20 m).
func BenchmarkFig3_ZoneOccupationCDF(b *testing.B) {
	runs := dayRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range runs {
			if _, err := core.ZoneOccupation(run.Trace, 256, core.PaperZoneLength); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	for _, run := range runs {
		zones, err := core.ZoneOccupation(run.Trace, 256, core.PaperZoneLength)
		if err != nil {
			b.Fatal(err)
		}
		empty := 0
		for _, z := range zones {
			if z == 0 {
				empty++
			}
		}
		name := shortName(run.Trace.Land)
		b.ReportMetric(float64(empty)/float64(len(zones)), name+"_empty_frac")
	}
}

// benchTrips times trip analysis and reports one quantile per land.
func benchTrips(b *testing.B, metric string, pick func(*core.TripStats) []float64, q float64) {
	runs := dayRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range runs {
			core.Trips(run.Trace, 0.5, 0)
		}
	}
	b.StopTimer()
	for _, run := range runs {
		tp := core.Trips(run.Trace, 0.5, 0)
		name := shortName(run.Trace.Land)
		b.ReportMetric(stats.MustEmpirical(pick(tp)).Quantile(q), name+"_"+metric)
	}
}

// Fig. 4 — trip analysis.
func BenchmarkFig4a_TravelLengthCDF(b *testing.B) {
	benchTrips(b, "travel_p90_m", func(t *core.TripStats) []float64 { return t.TravelLength }, 0.9)
}

func BenchmarkFig4b_EffectiveTravelTimeCDF(b *testing.B) {
	benchTrips(b, "efftime_median_s", func(t *core.TripStats) []float64 { return t.EffectiveTravelTime }, 0.5)
}

func BenchmarkFig4c_TravelTimeCDF(b *testing.B) {
	benchTrips(b, "session_p90_s", func(t *core.TripStats) []float64 { return t.TravelTime }, 0.9)
}

// X1 — the "power law + exponential cut-off" tail claim.
func BenchmarkX1_TailFits(b *testing.B) {
	tr := landTrace(b, "Dance Island")
	cs, err := core.ExtractContacts(tr, core.BluetoothRange)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cmp stats.TailComparison
	for i := 0; i < b.N; i++ {
		cmp, err = stats.CompareTailModels(cs.CT.Values(), float64(core.PaperTau))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(cmp.Cutoff.Alpha, "cutoff_alpha")
	b.ReportMetric(cmp.Cutoff.Cutoff, "cutoff_scale_s")
	b.ReportMetric(cmp.Pareto.AIC()-cmp.Cutoff.AIC(), "aic_gain_vs_pareto")
}

// X2 — trace-driven DTN forwarding.
func BenchmarkX2_DTNReplay(b *testing.B) {
	tr := landTrace(b, "Dance Island")
	window := tr.Window(0, 2*3600)
	b.ResetTimer()
	var results []*dtn.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = dtn.CompareProtocols(window, core.BluetoothRange, 100, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, res := range results {
		b.ReportMetric(res.DeliveryRatio(), res.Protocol.String()+"_ratio")
	}
}

// X3 — POI-gravity versus synthetic mobility baselines.
func BenchmarkX3_MobilityBaselines(b *testing.B) {
	paper := landTrace(b, "Dance Island").Window(0, 2*3600)
	paperCT, err := core.ExtractContacts(paper, core.BluetoothRange)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var d map[string]float64
	for i := 0; i < b.N; i++ {
		d = make(map[string]float64)
		for _, model := range []world.Model{world.RandomWaypoint, world.LevyWalk} {
			scn := world.BaselineScenario(model, benchSeed)
			scn.Duration = 2 * 3600
			tr, err := world.Collect(scn, core.PaperTau)
			if err != nil {
				b.Fatal(err)
			}
			cs, err := core.ExtractContacts(tr, core.BluetoothRange)
			if err != nil {
				b.Fatal(err)
			}
			d[model.String()] = stats.KolmogorovSmirnov(paperCT.CT.Values(), cs.CT.Values()).D
		}
	}
	b.StopTimer()
	for name, v := range d {
		b.ReportMetric(v, "ks_d_vs_"+name)
	}
}

// liveHeap returns the live heap after a full GC, in bytes.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// reportPipelineMetrics reports the streaming-vs-batch comparison
// headline numbers: analysis+simulation cost per snapshot and the heap
// retained by the pipeline at its end (the batch path retains the whole
// trace, the streaming path only the Analysis).
func reportPipelineMetrics(b *testing.B, snapshots int64, baseHeap, endHeap uint64) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*snapshots), "ns/snapshot")
	retained := float64(0)
	if endHeap > baseHeap {
		retained = float64(endHeap-baseHeap) / (1 << 20)
	}
	b.ReportMetric(retained, "retained_MB")
}

// P1 — the batch pipeline on a 24 h Apfel Land measurement: materialise
// the full trace, then re-walk it once per metric. Memory is
// O(snapshots × avatars).
func BenchmarkPipelineBatch24hApfel(b *testing.B) {
	scn := world.ApfelLand(benchSeed)
	base := liveHeap()
	b.ReportAllocs()
	b.ResetTimer()
	var end uint64
	for i := 0; i < b.N; i++ {
		tr, err := world.Collect(scn, core.PaperTau)
		if err != nil {
			b.Fatal(err)
		}
		an, err := core.Analyze(tr, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		end = liveHeap() // trace + analysis both still live here
		runtime.KeepAlive(tr)
		runtime.KeepAlive(an)
		b.StartTimer()
	}
	b.StopTimer()
	reportPipelineMetrics(b, scn.Duration/core.PaperTau, base, end)
}

// P2 — the streaming pipeline on the same measurement: snapshots flow
// from the simulation straight into the incremental analyzer and are
// dropped immediately. Pipeline state is O(avatars + contact pairs);
// only the Analysis itself is retained.
func BenchmarkPipelineStreaming24hApfel(b *testing.B) {
	scn := world.ApfelLand(benchSeed)
	base := liveHeap()
	b.ReportAllocs()
	b.ResetTimer()
	var end uint64
	for i := 0; i < b.N; i++ {
		src, err := world.NewSource(scn, core.PaperTau)
		if err != nil {
			b.Fatal(err)
		}
		analyzer, err := core.NewAnalyzer(scn.Land.Name, core.PaperTau, core.Config{LandSize: scn.Land.Size})
		if err != nil {
			b.Fatal(err)
		}
		an, err := analyzer.Consume(context.Background(), src)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		end = liveHeap() // only the analysis is still live
		runtime.KeepAlive(an)
		b.StartTimer()
	}
	b.StopTimer()
	reportPipelineMetrics(b, scn.Duration/core.PaperTau, base, end)
}

// Estate fixture for P3: one simulated hour of the 4×4 mainland preset,
// materialised once per process so both worker configurations replay the
// identical stream.
var (
	estateOnce   sync.Once
	estateInfos  []trace.Info
	estateTraces []*trace.Trace
	estateErr    error
)

func estateHourTraces(b *testing.B) ([]trace.Info, []*trace.Trace) {
	b.Helper()
	estateOnce.Do(func() {
		est := world.MainlandEstate(benchSeed)
		est.Duration = 3600
		src, err := world.NewEstateSource(est, core.PaperTau)
		if err != nil {
			estateErr = err
			return
		}
		estateInfos = src.Regions()
		estateTraces, estateErr = trace.CollectEstate(context.Background(), src)
	})
	if estateErr != nil {
		b.Fatal(estateErr)
	}
	return estateInfos, estateTraces
}

// benchEstateAnalysis times the sharded analysis of the mainland hour at
// a given region-worker count. Simulation cost is excluded: the
// benchmark isolates exactly the work WithRegionWorkers parallelises.
func benchEstateAnalysis(b *testing.B, workers int) {
	infos, trs := estateHourTraces(b)
	metas, err := core.RegionMetasFromInfos(infos)
	if err != nil {
		b.Fatal(err)
	}
	var last *core.EstateAnalysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay, err := trace.NewEstateReplay(infos, trs)
		if err != nil {
			b.Fatal(err)
		}
		ea, err := core.NewEstateAnalyzer("Mainland", metas, core.PaperTau, core.Config{}, workers)
		if err != nil {
			b.Fatal(err)
		}
		last, err = ea.Consume(context.Background(), replay)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Global.Summary.Unique), "unique")
	b.ReportMetric(float64(last.Global.Contacts[core.BluetoothRange].Pairs), "global_pairs_r10")
}

// P3 — sharded estate analysis, sequential baseline: one region at a
// time (WithRegionWorkers(1)).
func BenchmarkP3EstateAnalysisSequential(b *testing.B) {
	benchEstateAnalysis(b, 1)
}

// P3 — sharded estate analysis, parallel: per-region analyzers fan out
// over four workers (the WithRegionWorkers(N) path). The reported
// results are identical to the sequential run — the worker count is
// pure wall-clock leverage, realised on multi-core hardware.
func BenchmarkP3EstateAnalysisParallel(b *testing.B) {
	benchEstateAnalysis(b, 4)
}

// X4 — sensor architecture versus crawler coverage.
func BenchmarkX4_SensorVsCrawler(b *testing.B) {
	scn := world.ApfelLand(benchSeed)
	scn.Duration = 2 * 3600
	truth, err := world.Collect(scn, core.PaperTau)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sensorTrace *trace.Trace
	var st sensor.Stats
	for i := 0; i < b.N; i++ {
		sim, err := world.NewSim(scn)
		if err != nil {
			b.Fatal(err)
		}
		collector := sensor.NewCollector()
		engine := sensor.NewEngine(scn.Land)
		engine.SetPostHook(func(p sensor.FlushPayload) error {
			collector.Ingest(p)
			return nil
		})
		for _, spec := range sensor.GridSpecs(scn.Land, 4, sensor.MaxRange, core.PaperTau, "hook", true) {
			if _, err := engine.Deploy(0, spec); err != nil {
				b.Fatal(err)
			}
		}
		for sim.Time() < scn.Duration {
			sim.Step()
			engine.Step(sim.Time(), sim)
		}
		sensorTrace = collector.Trace(scn.Land.Name, core.PaperTau)
		st = engine.Stats()
	}
	b.StopTimer()
	b.ReportMetric(float64(sensorTrace.UniqueUsers())/float64(truth.UniqueUsers()), "user_coverage")
	b.ReportMetric(float64(st.Expired), "object_expiries")
	b.ReportMetric(float64(st.DroppedReadings), "dropped_readings")
}
