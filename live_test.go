package slmob

// Live-service tests: the end-to-end parity acceptance gate — a served
// estate crawled over TCP must reproduce the offline estate replay
// exactly — plus the service lifecycle paths.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"slmob/internal/core"
	"slmob/internal/slp"
	"slmob/internal/trace"
)

// sortedCopy returns the samples as a sorted copy, because trackers emit
// distribution samples in map-iteration order: the values are exact,
// their order is not.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// assertSameDistribution requires two sample sets to match exactly as
// multisets.
func assertSameDistribution(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d samples, want %d", what, len(got), len(want))
		return
	}
	g, w := sortedCopy(got), sortedCopy(want)
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: sample %d = %v, want %v", what, i, g[i], w[i])
			return
		}
	}
}

// assertAnalysisParity requires two analyses to agree on everything the
// estate pipeline computes deterministically.
func assertAnalysisParity(t *testing.T, label string, got, want *Analysis) {
	t.Helper()
	if got.Summary != want.Summary {
		t.Errorf("%s: summary = %+v, want %+v", label, got.Summary, want.Summary)
	}
	if len(got.Contacts) != len(want.Contacts) {
		t.Fatalf("%s: %d contact ranges, want %d", label, len(got.Contacts), len(want.Contacts))
	}
	for r, w := range want.Contacts {
		g := got.Contacts[r]
		if g == nil {
			t.Fatalf("%s: missing contact range %v", label, r)
		}
		if g.Pairs != w.Pairs || g.Censored != w.Censored || g.NeverContacted != w.NeverContacted {
			t.Errorf("%s r=%v: pairs/censored/never = %d/%d/%d, want %d/%d/%d",
				label, r, g.Pairs, g.Censored, g.NeverContacted, w.Pairs, w.Censored, w.NeverContacted)
		}
		assertSameDistribution(t, label+" CT", g.CT.Values(), w.CT.Values())
		assertSameDistribution(t, label+" ICT", g.ICT.Values(), w.ICT.Values())
		assertSameDistribution(t, label+" FT", g.FT.Values(), w.FT.Values())
	}
	assertSameDistribution(t, label+" travel time", got.Trips.TravelTime, want.Trips.TravelTime)
	assertSameDistribution(t, label+" travel length", got.Trips.TravelLength, want.Trips.TravelLength)
	assertSameDistribution(t, label+" effective travel time", got.Trips.EffectiveTravelTime, want.Trips.EffectiveTravelTime)
	assertSameDistribution(t, label+" zones", got.Zones.Values(), want.Zones.Values())
}

// TestAnalyzeEstateLiveMatchesOfflineReplay is the acceptance gate: a
// live estate — server grid, per-region observer monitors over TCP,
// cross-server handoffs, high warp — must produce exactly the analysis
// of an offline CollectEstate replay of the identical scenario and seed,
// including border-crossing contacts counted once in the global view.
func TestAnalyzeEstateLiveMatchesOfflineReplay(t *testing.T) {
	est := PaperEstate(23)
	est.Duration = 1200

	ctx := context.Background()

	// Offline ground truth: materialise the per-region traces, replay
	// them through the estate analyzer.
	src, err := NewEstateSource(est, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := CollectEstateSource(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := trace.NewEstateReplay(nil, trs)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := AnalyzeEstateStream(ctx, replay)
	if err != nil {
		t.Fatal(err)
	}
	if src.Estate().Crossings() == 0 {
		t.Fatal("scenario produced no border crossings; parity would be vacuous")
	}

	// Live measurement over the network.
	live, err := AnalyzeEstateLive(ctx, est,
		WithWarp(4000), WithTickEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	if live.Estate != offline.Estate {
		t.Errorf("estate = %q, want %q", live.Estate, offline.Estate)
	}
	assertAnalysisParity(t, "global", live.Global, offline.Global)
	if len(live.Regions) != len(offline.Regions) {
		t.Fatalf("regions = %d, want %d", len(live.Regions), len(offline.Regions))
	}
	for i := range offline.Regions {
		assertAnalysisParity(t, "region "+offline.Regions[i].Land, live.Regions[i], offline.Regions[i])
	}
}

// TestEstateCrawlParityWithAOIAvatars is the interest-management parity
// gate: a crawled estate measurement must be bit-identical whether the
// in-world avatar clients ride plain whole-land subscriptions or
// AOI-filtered delta subscriptions (under a server-imposed default
// radius, as slserve -aoi sets). Interest management changes what avatar
// sessions receive, never what the estate simulates or what the
// observer measurement path sees.
func TestEstateCrawlParityWithAOIAvatars(t *testing.T) {
	est := PaperEstate(31)
	est.Duration = 600

	// run serves the estate with a held clock, logs two avatar clients
	// into every region strictly sequentially — both runs then admit
	// identical external avatar IDs at sim time zero, so the simulations
	// evolve identically — crawls it, and digests the analysis.
	run := func(aoi bool) (digest string, deltas uint64) {
		ctx := context.Background()
		svc, err := ServeEstate(ctx, est, WithWarp(4000), WithTickEvery(time.Millisecond),
			WithHeldClock(), WithAOIRadius(64))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Stop()

		dir, err := slp.FetchDirectory(svc.DirectoryAddr(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var clients []*slp.Client
		defer func() {
			for _, c := range clients {
				c.Close()
			}
		}()
		for _, rg := range dir.Regions {
			for k := 0; k < 2; k++ {
				c, err := slp.Dial(rg.Addr, fmt.Sprintf("walker-%s-%d", rg.Name, k), "", 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				clients = append(clients, c)
				if aoi {
					err = c.SubscribeAOI(PaperTau, true, 48, true)
				} else {
					err = c.Subscribe(PaperTau, true)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		}

		ec, err := CrawlEstate(svc.DirectoryAddr())
		if err != nil {
			t.Fatal(err)
		}
		defer ec.Close()
		an, err := AnalyzeEstateStream(ctx, ec.Source())
		if err != nil {
			t.Fatal(err)
		}
		var parts []string
		d, err := core.AnalysisDigest(an.Global)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, "global:"+d)
		for _, rg := range an.Regions {
			d, err := core.AnalysisDigest(rg)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, rg.Land+":"+d)
		}
		for _, c := range clients {
			deltas += c.DeltasApplied()
		}
		return strings.Join(parts, "\n"), deltas
	}

	aoiDigest, deltas := run(true)
	if deltas == 0 {
		t.Fatal("AOI run applied no MapDelta frames; the delta path went unexercised")
	}
	plainDigest, _ := run(false)
	if aoiDigest != plainDigest {
		t.Errorf("estate digests diverge between AOI and plain avatar clients:\nAOI:\n%s\nplain:\n%s",
			aoiDigest, plainDigest)
	}
}

// TestServeEstateDirectoryAndLifecycle exercises the service handle:
// discovery through the façade, a held clock that only moves after
// StartClock, and a clean stop.
func TestServeEstateDirectoryAndLifecycle(t *testing.T) {
	est := PaperEstate(5)
	est.Duration = 3600
	svc, err := ServeEstate(context.Background(), est,
		WithWarp(1000), WithTickEvery(time.Millisecond), WithHeldClock())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()

	time.Sleep(50 * time.Millisecond)
	if now := svc.SimTime(); now != 0 {
		t.Errorf("held clock advanced to %d", now)
	}

	ec, err := CrawlEstate(svc.DirectoryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	dir := ec.Directory()
	if dir.Estate != est.Name || int(dir.Rows)*int(dir.Cols) != 3 || len(dir.Regions) != 3 {
		t.Fatalf("directory = %+v", dir)
	}
	if !dir.Held {
		t.Error("directory does not report the held clock")
	}

	svc.StartClock()
	deadline := time.Now().Add(5 * time.Second)
	for svc.SimTime() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("released clock did not advance")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Stop is idempotent.
	if err := svc.Stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestServeEstateRunsToCompletion: a short estate served to the end of
// its duration finishes cleanly and reports it on Done.
func TestServeEstateRunsToCompletion(t *testing.T) {
	est := PaperEstate(7)
	est.Duration = 300
	svc, err := ServeEstate(context.Background(), est,
		WithWarp(5000), WithTickEvery(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-svc.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("estate did not finish")
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop after completion: %v", err)
	}
}
