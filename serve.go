package slmob

// The live-service façade: serve a multi-region estate over TCP, crawl
// it with clock-aligned monitors, and analyse the live feed — the
// networked counterpart of RunEstate, reproducing the paper's online
// methodology (monitors connected to live region servers) at estate
// scale. A served estate advanced at the same seed is bit-identical to
// the in-process simulation, including every cross-server handoff.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"slmob/internal/crawler"
	"slmob/internal/server"
)

// DefaultWarp is the clock rate ServeEstate uses when WithWarp is not
// given: a full 24-hour measurement in 144 wall seconds.
const DefaultWarp = 600

// EstateService is a running networked estate: one region server per
// grid cell, cross-server avatar handoffs, and a directory endpoint for
// grid discovery, hosted on a background goroutine until stopped.
type EstateService struct {
	srv    *server.EstateServer
	cancel context.CancelFunc
	done   chan struct{}
	err    error // terminal Run error; read only after done is closed
}

// ServeEstate starts serving the estate live: every region gets its own
// TCP listener, border-crossing avatars are handed between region
// servers over the network, and the directory endpoint at
// DirectoryAddr lets clients discover the grid. The service runs until
// Stop, context cancellation, or the estate duration elapsing on the
// shared (warped) clock.
func ServeEstate(ctx context.Context, est Estate, opts ...Option) (*EstateService, error) {
	o := buildOptions(opts)
	warp := o.warp
	if warp <= 0 {
		warp = DefaultWarp
	}
	if o.simWorkers > 0 {
		est.SimWorkers = o.simWorkers
	}
	cfg := server.EstateConfig{
		Estate:    est,
		Addr:      o.serveAddr,
		Warp:      warp,
		TickEvery: o.tickEvery,
		Password:  o.servePassword,
		AOIRadius: o.aoiRadius,
		Hold:      o.holdClock,
	}
	if o.queryAddr != "" {
		cfg.Analytics = server.AnalyticsConfig{
			Addr:     o.queryAddr,
			Tau:      o.tau,
			Window:   o.cfg.Window,
			Analysis: o.cfg,
			Workers:  o.regionWorkers,
		}
	}
	srv, err := server.NewEstate(cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	svc := &EstateService{srv: srv, cancel: cancel, done: make(chan struct{})}
	go func() {
		svc.err = srv.Run(ctx)
		close(svc.done)
	}()
	return svc, nil
}

// DirectoryAddr returns the directory endpoint's address — what a
// monitor needs to discover and crawl the whole grid.
func (s *EstateService) DirectoryAddr() string { return s.srv.DirectoryAddr() }

// RegionAddr returns region i's own server address.
func (s *EstateService) RegionAddr(i int) string { return s.srv.RegionAddr(i) }

// QueryAddr returns the live analytics query endpoint's address, or ""
// when WithQueryAddr was not given. Dial it with DialQuery (or
// slanalyze -query).
func (s *EstateService) QueryAddr() string { return s.srv.QueryAddr() }

// SimTime returns the shared estate clock.
func (s *EstateService) SimTime() int64 { return s.srv.SimTime() }

// TickStats reports the service's tick-loop timing so far: how many
// ticker intervals fired, how many simulation steps they ran, total and
// worst-case wall time per interval, and how many intervals overran the
// tick budget (the warped clock falling behind real time). Safe to call
// while the service runs.
func (s *EstateService) TickStats() server.TickStats { return s.srv.TickStats() }

// StepWorkers reports how many goroutines the service steps regions
// with each tick — the resolved WithSimWorkers value, 1 when serial.
func (s *EstateService) StepWorkers() int { return s.srv.StepWorkers() }

// StartClock releases a clock held by WithHeldClock (idempotent).
func (s *EstateService) StartClock() int64 { return s.srv.StartClock() }

// Done is closed once the service stops — on its own (duration reached,
// network failure) or through Stop; Err then reports why.
func (s *EstateService) Done() <-chan struct{} { return s.done }

// Err returns the service's terminal error. Valid after Done is closed.
func (s *EstateService) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Stop shuts the service down and waits for it (idempotent), analytics
// endpoint included. A clean shutdown — cancellation or the estate
// duration running out — returns nil; a network failure surfaces as the
// error that killed the service.
//
// The analytics endpoint deliberately outlives the estate's own clean
// end (duration reached): until Stop, readers can still fetch the sealed
// whole-trace analysis. Stop is what finally tears it down.
func (s *EstateService) Stop() error {
	s.cancel()
	<-s.done
	s.srv.CloseAnalytics()
	if err := s.err; err != nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, server.ErrDurationReached) {
		return err
	}
	if err := s.srv.AnalyticsErr(); err != nil {
		return err
	}
	return nil
}

// CrawlEstate connects one clock-aligned observer monitor per region of
// a served estate, discovered through its directory endpoint, and
// returns the crawl handle; its Source streams the zipped per-region
// snapshots as an EstateSource for AnalyzeEstateStream. Close the
// crawler when done. WithTau sets the snapshot period (default: the
// paper's 10 s); WithServePassword supplies the estate's credentials.
func CrawlEstate(directory string, opts ...Option) (*crawler.EstateCrawler, error) {
	o := buildOptions(opts)
	return crawler.NewEstate(crawler.EstateConfig{
		Directory: directory,
		Name:      "slmob-monitor",
		Password:  o.servePassword,
		Tau:       o.tau,
	})
}

// AnalyzeEstateLive reproduces the paper's online methodology at estate
// scale, end to end over the network: it serves the estate (held clock),
// logs one observer monitor into every region server, releases the
// shared clock once all monitors are subscribed, and runs the sharded
// incremental analysis on the live feed. For a given estate, seed, and
// τ the result is identical to the offline RunEstate pipeline — the
// live-vs-replay parity test pins it — while every avatar handoff
// crosses a real TCP connection between region servers.
func AnalyzeEstateLive(ctx context.Context, est Estate, opts ...Option) (*EstateAnalysis, error) {
	o := buildOptions(opts)
	svc, err := ServeEstate(ctx, est, append(append([]Option{}, opts...), WithHeldClock())...)
	if err != nil {
		return nil, err
	}
	defer svc.Stop()

	ec, err := crawler.NewEstate(crawler.EstateConfig{
		Directory:   svc.DirectoryAddr(),
		Name:        "live-monitor",
		Password:    o.servePassword,
		Tau:         o.tau,
		DialTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer ec.Close()

	an, err := AnalyzeEstateStream(ctx, ec.Source(), opts...)
	if err != nil {
		// The crawl usually fails *because* the service died; the root
		// cause is the service's terminal error.
		if serr := svc.Stop(); serr != nil {
			return nil, fmt.Errorf("%w (crawl: %v)", serr, err)
		}
		return nil, err
	}
	return an, nil
}
