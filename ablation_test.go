package slmob

// Ablation benchmarks for the design choices DESIGN.md calls out: what
// happens to the headline contact statistics when a model ingredient is
// removed. These quantify why each mechanism exists rather than timing
// hot paths.

import (
	"testing"

	"slmob/internal/core"
	"slmob/internal/world"
)

// ablate collects a 4 h Dance Island trace under a modified scenario and
// returns the r=10 contact set.
func ablate(b *testing.B, mutate func(*world.Scenario)) *core.ContactSet {
	b.Helper()
	scn := world.DanceIsland(benchSeed)
	scn.Duration = 2 * 3600
	if mutate != nil {
		mutate(&scn)
	}
	tr, err := world.Collect(scn, core.PaperTau)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := core.ExtractContacts(tr, core.BluetoothRange)
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkAblationMicroMoves removes the paused micro-movement (dancing
// repositioning): contacts become rigid and the inter-contact
// distribution collapses toward pure pause-cycle gaps.
func BenchmarkAblationMicroMoves(b *testing.B) {
	var base, ablated *core.ContactSet
	for i := 0; i < b.N; i++ {
		base = ablate(b, nil)
		ablated = ablate(b, func(s *world.Scenario) { s.Behavior.MicroMoveProb = 0 })
	}
	b.ReportMetric(base.CT.Median(), "ct_median_base_s")
	b.ReportMetric(ablated.CT.Median(), "ct_median_nomicro_s")
}

// BenchmarkAblationPOIGravity flattens the POI weights to uniform: the
// dance floor stops dominating and the degree distribution thins.
func BenchmarkAblationPOIGravity(b *testing.B) {
	var base, ablated *core.ContactSet
	for i := 0; i < b.N; i++ {
		base = ablate(b, nil)
		ablated = ablate(b, func(s *world.Scenario) {
			for i := range s.Land.POIs {
				s.Land.POIs[i].Weight = 1
			}
		})
	}
	b.ReportMetric(base.CT.Median(), "ct_median_base_s")
	b.ReportMetric(ablated.CT.Median(), "ct_median_flat_s")
}

// BenchmarkAblationHeavyTailedPauses replaces the bounded-Pareto pauses
// with short uniform ones: the power-law phase of the contact-time
// distribution disappears (the X1 fit flips away from the cutoff model).
func BenchmarkAblationHeavyTailedPauses(b *testing.B) {
	var base, ablated *core.ContactSet
	for i := 0; i < b.N; i++ {
		base = ablate(b, nil)
		ablated = ablate(b, func(s *world.Scenario) {
			s.Behavior.PauseMin, s.Behavior.PauseMax, s.Behavior.PauseAlpha = 30, 90, 8
		})
	}
	baseP90 := base.CT.Quantile(0.9)
	ablP90 := ablated.CT.Quantile(0.9)
	b.ReportMetric(baseP90, "ct_p90_base_s")
	b.ReportMetric(ablP90, "ct_p90_uniformpause_s")
}
