package slmob

// Façade-level gates for the windowed-analytics and checkpoint/resume
// tentpole: the windowed series merges back to the whole-trace run, and
// a run killed mid-stream resumes from its checkpoint file — world state
// included — to a bit-identical digest.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"slmob/internal/core"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// TestRunWindowsMergeMatchesRun: the façade windowed pipeline over a
// simulated land merges back to the plain Run result exactly.
func TestRunWindowsMergeMatchesRun(t *testing.T) {
	scn := DanceIsland(11)
	scn.Duration = 1200
	whole, err := Run(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := RunWindows(context.Background(), scn, WithWindow(300))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Window != 300 || len(ws.Windows) == 0 {
		t.Fatalf("series = %d windows of %d s", len(ws.Windows), ws.Window)
	}
	merged, err := ws.Merge()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.DiffAnalyses(merged, whole) {
		t.Error(d)
	}
}

// TestRunWindowsRequiresWindow: the windowed entry points demand an
// explicit window.
func TestRunWindowsRequiresWindow(t *testing.T) {
	scn := DanceIsland(11)
	scn.Duration = 60
	if _, err := RunWindows(context.Background(), scn); err == nil {
		t.Error("RunWindows without WithWindow succeeded")
	}
}

// errKilled simulates a crash mid-stream.
var errKilled = errors.New("killed")

// killSource yields the underlying source's snapshots until the kill
// point, then fails — forwarding provenance and state capture so the
// checkpoint path sees the real source.
type killSource struct {
	src   *world.Source
	n     int
	after int
}

func (k *killSource) Next(ctx context.Context) (trace.Snapshot, error) {
	if k.n >= k.after {
		return trace.Snapshot{}, errKilled
	}
	k.n++
	return k.src.Next(ctx)
}

func (k *killSource) Info() trace.Info               { return k.src.Info() }
func (k *killSource) SnapshotState() ([]byte, error) { return k.src.SnapshotState() }
func (k *killSource) RestoreState(data []byte) error { return k.src.RestoreState(data) }

// TestKillAndResumeDigestIdentical is the façade acceptance gate: a
// streaming run checkpointing every 200 sim-seconds is killed, resumed
// from the file onto a fresh source — which fast-forwards via the
// serialised world state instead of re-simulating — and finishes with an
// Analysis identical to an uninterrupted run.
func TestKillAndResumeDigestIdentical(t *testing.T) {
	scn := DanceIsland(21)
	scn.Duration = 1500
	whole, err := Run(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	src, err := world.NewSource(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	_, err = AnalyzeStream(context.Background(), &killSource{src: src, after: 97},
		WithCheckpointEvery(ckpt, 200))
	if !errors.Is(err, errKilled) {
		t.Fatalf("killed run returned %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written before the kill: %v", err)
	}

	fresh, err := world.NewSource(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := AnalyzeStream(context.Background(), fresh, WithResumeFrom(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range core.DiffAnalyses(resumed, whole) {
		t.Error(d)
	}
}

// TestKillAndResumeWindowed: the same guarantee for a windowed run,
// windows collected before the kill included.
func TestKillAndResumeWindowed(t *testing.T) {
	scn := DanceIsland(23)
	scn.Duration = 1500
	wholeSeries, err := RunWindows(context.Background(), scn, WithWindow(400))
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	src, err := world.NewSource(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	_, err = AnalyzeWindows(context.Background(), &killSource{src: src, after: 110},
		WithWindow(400), WithCheckpointEvery(ckpt, 250))
	if !errors.Is(err, errKilled) {
		t.Fatalf("killed run returned %v", err)
	}

	fresh, err := world.NewSource(scn, PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := AnalyzeWindows(context.Background(), fresh, WithResumeFrom(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Windows) != len(wholeSeries.Windows) {
		t.Fatalf("resumed series has %d windows, want %d", len(resumed.Windows), len(wholeSeries.Windows))
	}
	for i := range wholeSeries.Windows {
		for _, d := range core.DiffAnalyses(resumed.Windows[i], wholeSeries.Windows[i]) {
			t.Errorf("window %d: %s", i, d)
		}
	}
}

// TestEstateWindowedFacade: WithWindow + WithEstateWindowFunc surface
// the live per-window series through RunEstate, and the windowed whole
// matches the plain estate run.
func TestEstateWindowedFacade(t *testing.T) {
	est := PaperEstate(9)
	est.Duration = 600
	whole, err := RunEstate(context.Background(), est, WithRegionWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var live []*EstateAnalysis
	res, err := RunEstate(context.Background(), est, WithRegionWorkers(2),
		WithWindow(200), WithEstateWindowFunc(func(k int64, w *EstateAnalysis) {
			live = append(live, w)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) == 0 || len(live) != len(res.Windows) {
		t.Fatalf("windows = %d, live deliveries = %d", len(res.Windows), len(live))
	}
	for _, d := range core.DiffAnalyses(res.Global, whole.Global) {
		t.Errorf("global: %s", d)
	}
	for i := range whole.Regions {
		for _, d := range core.DiffAnalyses(res.Regions[i], whole.Regions[i]) {
			t.Errorf("region %d: %s", i, d)
		}
	}
}
