package slmob

// Golden-trace regression gate: a small deterministic simulation trace
// is committed under testdata/ together with its full pinned analysis
// summary. A change that shifts any distribution — contacts, trips,
// sessions, zone occupation — fails loudly here instead of silently
// bending every experiment, and the -update flag re-pins both files
// after an intentional model change.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"slmob/internal/core"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden trace and its pinned analysis")

const (
	goldenTracePath    = "testdata/golden_dance.sltr"
	goldenAnalysisPath = "testdata/golden_dance_analysis.json"
	goldenCkptPath     = "testdata/golden_dance_ckpt.snap"
	goldenSeed         = 42
	goldenDuration     = 1800
	// goldenCkptAt is the snapshot time the committed checkpoint was
	// taken at: mid-way through the golden trace, with contacts and
	// sessions in flight.
	goldenCkptAt = 900
)

// distStats pins a sample distribution as an order-independent digest:
// the count exactly, the median and the sorted sum to float tolerance.
type distStats struct {
	Count  int     `json:"count"`
	Median float64 `json:"median"`
	Sum    float64 `json:"sum"`
}

func digest(xs []float64) distStats {
	if len(xs) == 0 {
		return distStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return distStats{Count: len(s), Median: s[len(s)/2], Sum: sum}
}

type goldenContacts struct {
	Pairs          int       `json:"pairs"`
	Censored       int       `json:"censored"`
	NeverContacted int       `json:"never_contacted"`
	CT             distStats `json:"ct"`
	ICT            distStats `json:"ict"`
	FT             distStats `json:"ft"`
}

// goldenAnalysis is the pinned digest of the full Analysis.
type goldenAnalysis struct {
	Land           string                    `json:"land"`
	Snapshots      int                       `json:"snapshots"`
	DurationSec    int64                     `json:"duration_sec"`
	Unique         int                       `json:"unique"`
	MeanConcurrent float64                   `json:"mean_concurrent"`
	MaxConcurrent  int                       `json:"max_concurrent"`
	Contacts       map[string]goldenContacts `json:"contacts"`
	Sessions       int                       `json:"sessions"`
	TravelTime     distStats                 `json:"travel_time"`
	TravelLength   distStats                 `json:"travel_length"`
	EffectiveTime  distStats                 `json:"effective_travel_time"`
	Zones          distStats                 `json:"zones"`
}

func digestAnalysis(an *Analysis) goldenAnalysis {
	g := goldenAnalysis{
		Land:           an.Land,
		Snapshots:      an.Summary.Snapshots,
		DurationSec:    an.Summary.DurationSec,
		Unique:         an.Summary.Unique,
		MeanConcurrent: an.Summary.MeanConcurrent,
		MaxConcurrent:  an.Summary.MaxConcurrent,
		Contacts:       make(map[string]goldenContacts),
		Sessions:       len(an.Trips.TravelTime),
		TravelTime:     digest(an.Trips.TravelTime),
		TravelLength:   digest(an.Trips.TravelLength),
		EffectiveTime:  digest(an.Trips.EffectiveTravelTime),
		Zones:          digest(an.Zones.Values()),
	}
	for r, cs := range an.Contacts {
		g.Contacts[fmt.Sprintf("%g", r)] = goldenContacts{
			Pairs:          cs.Pairs,
			Censored:       cs.Censored,
			NeverContacted: cs.NeverContacted,
			CT:             digest(cs.CT.Values()),
			ICT:            digest(cs.ICT.Values()),
			FT:             digest(cs.FT.Values()),
		}
	}
	return g
}

func goldenScenario() Scenario {
	scn := DanceIsland(goldenSeed)
	scn.Duration = goldenDuration
	return scn
}

// TestGoldenTraceAnalysisPinned replays the committed trace through the
// full analysis and compares every digest against the pinned values.
func TestGoldenTraceAnalysisPinned(t *testing.T) {
	if *updateGolden {
		tr, err := CollectTrace(goldenScenario(), PaperTau)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceFile(tr, goldenTracePath); err != nil {
			t.Fatal(err)
		}
		// Pin the analysis of the file as stored: the binary codec keeps
		// float32 positions, and the gate replays exactly those.
		fs, err := OpenTraceStream(goldenTracePath)
		if err != nil {
			t.Fatal(err)
		}
		an, err := AnalyzeStream(context.Background(), fs)
		fs.Close()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(digestAnalysis(an), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenAnalysisPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixtures regenerated")
	}

	fs, err := OpenTraceStream(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	an, err := AnalyzeStream(context.Background(), fs)
	if err != nil {
		t.Fatal(err)
	}
	got := digestAnalysis(an)

	data, err := os.ReadFile(goldenAnalysisPath)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenAnalysis
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	assertGoldenAnalysis(t, got, want)
}

// assertGoldenAnalysis compares a fresh digest against the pinned one,
// shared by the whole-trace and the checkpoint-resume gates.
func assertGoldenAnalysis(t *testing.T, got, want goldenAnalysis) {
	t.Helper()
	approx := func(what string, g, w float64) {
		t.Helper()
		if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
			t.Errorf("%s = %v, want %v", what, g, w)
		}
	}
	same := func(what string, g, w distStats) {
		t.Helper()
		if g.Count != w.Count {
			t.Errorf("%s count = %d, want %d", what, g.Count, w.Count)
		}
		approx(what+" median", g.Median, w.Median)
		approx(what+" sum", g.Sum, w.Sum)
	}

	if got.Land != want.Land || got.Snapshots != want.Snapshots ||
		got.DurationSec != want.DurationSec || got.Unique != want.Unique ||
		got.MaxConcurrent != want.MaxConcurrent {
		t.Errorf("summary = %+v, want %+v", got, want)
	}
	approx("mean concurrent", got.MeanConcurrent, want.MeanConcurrent)
	if len(got.Contacts) != len(want.Contacts) {
		t.Fatalf("contact ranges = %d, want %d", len(got.Contacts), len(want.Contacts))
	}
	for r, w := range want.Contacts {
		g, ok := got.Contacts[r]
		if !ok {
			t.Fatalf("missing contact range %s", r)
		}
		if g.Pairs != w.Pairs || g.Censored != w.Censored || g.NeverContacted != w.NeverContacted {
			t.Errorf("r=%s pairs/censored/never = %d/%d/%d, want %d/%d/%d",
				r, g.Pairs, g.Censored, g.NeverContacted, w.Pairs, w.Censored, w.NeverContacted)
		}
		same("r="+r+" CT", g.CT, w.CT)
		same("r="+r+" ICT", g.ICT, w.ICT)
		same("r="+r+" FT", g.FT, w.FT)
	}
	if got.Sessions != want.Sessions {
		t.Errorf("sessions = %d, want %d", got.Sessions, want.Sessions)
	}
	same("travel time", got.TravelTime, want.TravelTime)
	same("travel length", got.TravelLength, want.TravelLength)
	same("effective travel time", got.EffectiveTime, want.EffectiveTime)
	same("zones", got.Zones, want.Zones)
}

// goldenStreamConfig mirrors AnalyzeStream's labelling of the golden
// trace, so manually driven analyzers produce the same digest.
func goldenStreamConfig(t *testing.T, fs *TraceFileStream) (string, int64, core.Config) {
	t.Helper()
	info := fs.Info()
	size, err := info.Size()
	if err != nil {
		t.Fatal(err)
	}
	return info.Land, info.Tau, core.Config{LandSize: size}
}

// TestGoldenWindowedMergeParity is the windowed-parity gate of the
// acceptance criteria: the golden trace split into windows merges back
// to an Analysis bit-identical to the whole-trace run — whose digest is
// already pinned on disk.
func TestGoldenWindowedMergeParity(t *testing.T) {
	whole := func() *Analysis {
		fs, err := OpenTraceStream(goldenTracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		an, err := AnalyzeStream(context.Background(), fs)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}()

	for _, window := range []int64{300, 450, 3600} {
		fs, err := OpenTraceStream(goldenTracePath)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := AnalyzeWindows(context.Background(), fs, WithWindow(window))
		fs.Close()
		if err != nil {
			t.Fatal(err)
		}
		merged, err := ws.Merge()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range core.DiffAnalyses(merged, whole) {
			t.Errorf("window=%d: %s", window, d)
		}
	}
}

// TestGoldenCheckpointResume is the kill-and-resume gate: the committed
// checkpoint — taken mid-way through the golden dance trace, contacts
// and sessions in flight — resumes against the rest of the stream and
// reproduces the pinned whole-trace digest exactly. With -update the
// checkpoint fixture is regenerated (the resume digest is pinned by
// golden_dance_analysis.json, shared with the whole-trace gate: resuming
// MUST land on the same digest as never having been killed).
func TestGoldenCheckpointResume(t *testing.T) {
	if *updateGolden {
		fs, err := OpenTraceStream(goldenTracePath)
		if err != nil {
			t.Fatal(err)
		}
		land, tau, cfg := goldenStreamConfig(t, fs)
		a, err := core.NewAnalyzer(land, tau, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for {
			snap, err := fs.Next(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Observe(snap); err != nil {
				t.Fatal(err)
			}
			if snap.T >= goldenCkptAt {
				break
			}
		}
		f, err := os.Create(goldenCkptPath)
		if err != nil {
			t.Fatal(err)
		}
		// The file stream carries no restorable state: the checkpoint
		// holds the analyzer alone, and resume replays the file, skipping
		// the analysed prefix by snapshot time.
		if err := Checkpoint(f, a, fs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		fs.Close()
		t.Log("golden checkpoint regenerated")
	}

	fs, err := OpenTraceStream(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	an, err := AnalyzeStream(context.Background(), fs, WithResumeFrom(goldenCkptPath))
	if err != nil {
		t.Fatal(err)
	}
	got := digestAnalysis(an)

	data, err := os.ReadFile(goldenAnalysisPath)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenAnalysis
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	assertGoldenAnalysis(t, got, want)
}

// TestGoldenTraceMatchesSimulation guards the fixture itself: the
// committed trace must be exactly what the current simulation produces
// for the pinned seed, so the golden gate cannot drift away from the
// code it is meant to watch. (After an intentional model change, run
// `go test -run TestGolden -update .` and commit both files.)
func TestGoldenTraceMatchesSimulation(t *testing.T) {
	tr, err := CollectTrace(goldenScenario(), PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := ReadTraceFile(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk.Snapshots) != len(tr.Snapshots) {
		t.Fatalf("committed trace has %d snapshots, simulation produces %d",
			len(disk.Snapshots), len(tr.Snapshots))
	}
	for i, snap := range tr.Snapshots {
		dsnap := disk.Snapshots[i]
		if dsnap.T != snap.T || len(dsnap.Samples) != len(snap.Samples) {
			t.Fatalf("snapshot %d: t=%d n=%d, want t=%d n=%d",
				i, dsnap.T, len(dsnap.Samples), snap.T, len(snap.Samples))
		}
		for j, s := range snap.Samples {
			d := dsnap.Samples[j]
			// The binary codec stores float32 positions; compare at that
			// resolution.
			if d.ID != s.ID || d.Seated != s.Seated ||
				float32(d.Pos.X) != float32(s.Pos.X) ||
				float32(d.Pos.Y) != float32(s.Pos.Y) ||
				float32(d.Pos.Z) != float32(s.Pos.Z) {
				t.Fatalf("snapshot %d sample %d = %+v, want %+v", i, j, d, s)
			}
		}
	}
}
