package trace

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"slmob/internal/geom"
)

// fuzzSeedTrace is a small two-region-worth trace used to seed both
// codecs' corpora.
func fuzzSeedTrace() *Trace {
	tr := New("Fuzz Land", 10)
	tr.Meta["monitor"] = "in-process"
	tr.Meta["region"] = "Fuzz Land"
	tr.Meta["origin"] = "256,0"
	tr.Meta["size"] = "256"
	for t := int64(10); t <= 40; t += 10 {
		snap := Snapshot{T: t}
		if t != 30 { // keep one empty snapshot in the corpus
			snap.Samples = []Sample{
				{ID: 1, Pos: geom.V(10.5, 20.25, 0)},
				{ID: 1<<40 | 2, Pos: geom.V(100, 200, 4), Seated: t == 20},
			}
		}
		tr.Snapshots = append(tr.Snapshots, snap)
	}
	return tr
}

func fuzzSeedBytes(f *testing.F, csvMode bool) []byte {
	f.Helper()
	var buf bytes.Buffer
	var err error
	if csvMode {
		err = fuzzSeedTrace().WriteCSV(&buf)
	} else {
		err = fuzzSeedTrace().WriteBinary(&buf)
	}
	if err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// drainStream consumes a snapshot source defensively: decoding untrusted
// bytes must yield snapshots or an error, never a panic or a runaway.
func drainStream(t *testing.T, src Source) {
	ctx := context.Background()
	for n := 0; n < 1<<16; n++ {
		if _, err := src.Next(ctx); err != nil {
			return // io.EOF or a decode error both end the stream
		}
	}
	t.Fatal("stream did not terminate")
}

// FuzzOpenStream feeds arbitrary bytes to the trace file parsers —
// binary and CSV, selected by extension exactly like production — which
// currently guard against truncation, bogus counts, and malformed
// headers; the fuzzer hunts for the cases the guards miss.
func FuzzOpenStream(f *testing.F) {
	f.Add(false, fuzzSeedBytes(f, false))
	f.Add(true, fuzzSeedBytes(f, true))
	f.Add(false, []byte("SLTR\x01"))
	f.Add(false, []byte("SLTR\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add(true, []byte("# land=x\n# tau=nonsense\n"))
	f.Add(true, []byte("# meta origin=1\nt,id,x,y,z,seated\n5,1,a,b,c,0\n"))
	f.Fuzz(func(t *testing.T, csvMode bool, data []byte) {
		name := "fuzz.sltr"
		if csvMode {
			name = "fuzz.csv"
		}
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenStream(path)
		if err != nil {
			return
		}
		defer fs.Close()
		if _, err := fs.Info().Size(); err != nil {
			_ = err // malformed size metadata is a legal outcome
		}
		drainStream(t, fs)
	})
}

// FuzzOpenEstateStream zips two fuzzed region files through the estate
// stream: per-file decoding plus the cross-region timeline checks.
func FuzzOpenEstateStream(f *testing.F) {
	bin := fuzzSeedBytes(f, false)
	csv := fuzzSeedBytes(f, true)
	f.Add(bin, bin)
	f.Add(csv, bin)
	f.Add(csv, []byte("# land=y\nt,id,x,y,z,seated\n10,1,1,1,0,0\n")) // shorter timeline
	f.Fuzz(func(t *testing.T, a, b []byte) {
		dir := t.TempDir()
		pa := filepath.Join(dir, "a.sltr")
		pb := filepath.Join(dir, "b.csv")
		if err := os.WriteFile(pa, a, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pb, b, 0o644); err != nil {
			t.Fatal(err)
		}
		es, err := OpenEstateStream(pa, pb)
		if err != nil {
			return
		}
		defer es.Close()
		ctx := context.Background()
		for n := 0; n < 1<<16; n++ {
			if _, err := es.NextTick(ctx); err != nil {
				if err == io.EOF {
					return
				}
				return
			}
		}
		t.Fatal("estate stream did not terminate")
	})
}
