// Package trace defines the mobility-trace model shared by every producer
// (the in-process world observer, the network crawler, the sensor
// collector) and every consumer (the analysis in internal/core, the DTN
// replayer, the CLI tools).
//
// A trace is a time-ordered sequence of snapshots of one land; each
// snapshot holds the position of every avatar the monitor saw at that
// instant, at the paper's granularity of one snapshot every τ = 10 s.
package trace

import (
	"fmt"
	"sort"

	"slmob/internal/geom"
)

// AvatarID identifies an avatar within one trace. Identifiers are opaque:
// producers may hash names or assign sequence numbers, and the analysis
// only relies on equality.
type AvatarID uint64

// Sample is one avatar observation inside a snapshot.
type Sample struct {
	ID  AvatarID
	Pos geom.Vec
	// Seated marks the Second Life quirk the paper documents: an avatar
	// sitting on an object reports coordinates {0,0,0}. Producers that can
	// detect the state set the flag so consumers can exclude or repair the
	// bogus position instead of treating it as a teleport to the origin.
	Seated bool
}

// Snapshot is the set of avatars present on the land at sim-time T
// (seconds since the start of the measurement).
type Snapshot struct {
	T       int64
	Samples []Sample
}

// Clone returns a deep copy of the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{T: s.T, Samples: make([]Sample, len(s.Samples))}
	copy(out.Samples, s.Samples)
	return out
}

// Trace is a monitored land's full measurement.
type Trace struct {
	// Land names the monitored land ("Apfel Land", "Dance Island", ...).
	Land string
	// Tau is the snapshot period in seconds (the paper uses 10).
	Tau int64
	// Snapshots are strictly increasing in T.
	Snapshots []Snapshot
	// Meta carries free-form provenance (monitor kind, seed, ranges...).
	Meta map[string]string
}

// New returns an empty trace for the given land and snapshot period.
func New(land string, tau int64) *Trace {
	return &Trace{Land: land, Tau: tau, Meta: make(map[string]string)}
}

// Append adds a snapshot, enforcing strictly increasing timestamps.
func (tr *Trace) Append(s Snapshot) error {
	if n := len(tr.Snapshots); n > 0 && s.T <= tr.Snapshots[n-1].T {
		return fmt.Errorf("trace: snapshot at t=%d not after t=%d", s.T, tr.Snapshots[n-1].T)
	}
	tr.Snapshots = append(tr.Snapshots, s)
	return nil
}

// Duration returns the time spanned by the trace in seconds (last minus
// first snapshot time), or 0 for traces with fewer than two snapshots.
func (tr *Trace) Duration() int64 {
	if len(tr.Snapshots) < 2 {
		return 0
	}
	return tr.Snapshots[len(tr.Snapshots)-1].T - tr.Snapshots[0].T
}

// UniqueUsers returns the number of distinct avatars observed.
func (tr *Trace) UniqueUsers() int {
	seen := make(map[AvatarID]struct{})
	for _, s := range tr.Snapshots {
		for _, a := range s.Samples {
			seen[a.ID] = struct{}{}
		}
	}
	return len(seen)
}

// Summary holds the per-land population statistics the paper reports in
// its trace-summary table (§3).
type Summary struct {
	Land           string
	Snapshots      int
	DurationSec    int64
	Unique         int
	MeanConcurrent float64
	MaxConcurrent  int
	// TotalSamples counts every (avatar, snapshot) observation — the
	// numerator behind MeanConcurrent, carried explicitly so merged
	// window summaries recompute the mean from exact integer operands
	// instead of averaging averages.
	TotalSamples int
}

// Summarize computes the population summary.
func (tr *Trace) Summarize() Summary {
	sum := Summary{
		Land:        tr.Land,
		Snapshots:   len(tr.Snapshots),
		DurationSec: tr.Duration(),
		Unique:      tr.UniqueUsers(),
	}
	if len(tr.Snapshots) == 0 {
		return sum
	}
	for _, s := range tr.Snapshots {
		n := len(s.Samples)
		sum.TotalSamples += n
		if n > sum.MaxConcurrent {
			sum.MaxConcurrent = n
		}
	}
	sum.MeanConcurrent = float64(sum.TotalSamples) / float64(len(tr.Snapshots))
	return sum
}

// String renders the summary in the format of the paper's §3 text.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d unique visitors, %.1f concurrent users in average (max %d) over %ds",
		s.Land, s.Unique, s.MeanConcurrent, s.MaxConcurrent, s.DurationSec)
}

// TimedPos is one position observation within a session.
type TimedPos struct {
	T      int64
	Pos    geom.Vec
	Seated bool
}

// Session is one contiguous presence of an avatar on the land: from the
// first snapshot in which the monitor saw it (its "login", in the paper's
// terms) to the last before it disappeared.
type Session struct {
	ID      AvatarID
	Samples []TimedPos
}

// Login returns the session start time.
func (s Session) Login() int64 { return s.Samples[0].T }

// Logout returns the session end time.
func (s Session) Logout() int64 { return s.Samples[len(s.Samples)-1].T }

// Duration returns the paper's "travel time" metric: the total connection
// time to the monitored land.
func (s Session) Duration() int64 { return s.Logout() - s.Login() }

// Path returns the observed positions in time order, excluding seated
// samples (whose raw coordinates are the {0,0,0} sentinel).
func (s Session) Path() []geom.Vec {
	out := make([]geom.Vec, 0, len(s.Samples))
	for _, p := range s.Samples {
		if !p.Seated {
			out = append(out, p.Pos)
		}
	}
	return out
}

// Sessions splits the trace into per-avatar sessions. An avatar absent for
// more than maxGap seconds is considered to have logged out and back in;
// pass 0 to use twice the snapshot period, which tolerates one missed
// sample (a crawler poll lost to the network) without splitting.
// Sessions are returned sorted by login time, then avatar ID.
func (tr *Trace) Sessions(maxGap int64) []Session {
	if maxGap <= 0 {
		maxGap = 2 * tr.Tau
	}
	open := make(map[AvatarID]*Session)
	var done []Session
	for _, snap := range tr.Snapshots {
		for _, a := range snap.Samples {
			tp := TimedPos{T: snap.T, Pos: a.Pos, Seated: a.Seated}
			if s, ok := open[a.ID]; ok {
				if snap.T-s.Logout() > maxGap {
					done = append(done, *s)
					open[a.ID] = &Session{ID: a.ID, Samples: []TimedPos{tp}}
				} else {
					s.Samples = append(s.Samples, tp)
				}
			} else {
				open[a.ID] = &Session{ID: a.ID, Samples: []TimedPos{tp}}
			}
		}
	}
	for _, s := range open {
		done = append(done, *s)
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Login() != done[j].Login() {
			return done[i].Login() < done[j].Login()
		}
		return done[i].ID < done[j].ID
	})
	return done
}

// DropSeated returns a copy of the trace with seated samples removed,
// matching the paper's lands where "users did not sit".
func (tr *Trace) DropSeated() *Trace {
	out := New(tr.Land, tr.Tau)
	for k, v := range tr.Meta {
		out.Meta[k] = v
	}
	for _, s := range tr.Snapshots {
		ns := Snapshot{T: s.T}
		for _, a := range s.Samples {
			if !a.Seated {
				ns.Samples = append(ns.Samples, a)
			}
		}
		out.Snapshots = append(out.Snapshots, ns)
	}
	return out
}

// Window returns a copy restricted to snapshots with from <= T < to.
func (tr *Trace) Window(from, to int64) *Trace {
	out := New(tr.Land, tr.Tau)
	for k, v := range tr.Meta {
		out.Meta[k] = v
	}
	for _, s := range tr.Snapshots {
		if s.T >= from && s.T < to {
			out.Snapshots = append(out.Snapshots, s.Clone())
		}
	}
	return out
}

// Validate checks structural invariants: strictly increasing snapshot
// times and no duplicate avatar within one snapshot. Producers run it in
// tests; consumers may run it on untrusted input files.
func (tr *Trace) Validate() error {
	if tr.Tau <= 0 {
		return fmt.Errorf("trace: non-positive tau %d", tr.Tau)
	}
	var prev int64
	seen := make(map[AvatarID]struct{})
	for i, s := range tr.Snapshots {
		if i > 0 && s.T <= prev {
			return fmt.Errorf("trace: snapshot %d at t=%d not after t=%d", i, s.T, prev)
		}
		prev = s.T
		clear(seen)
		for _, a := range s.Samples {
			if _, dup := seen[a.ID]; dup {
				return fmt.Errorf("trace: duplicate avatar %d in snapshot t=%d", a.ID, s.T)
			}
			seen[a.ID] = struct{}{}
		}
	}
	return nil
}
