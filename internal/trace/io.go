package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"slmob/internal/geom"
)

// The CSV layout is one observation per row — t,id,x,y,z,seated — with
// header comments carrying land, tau and metadata. It is the interchange
// format of the CLI tools; the binary format below is the compact archive
// format (roughly 10x smaller).

// WriteCSV writes the trace in CSV form.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# land=%s\n# tau=%d\n", tr.Land, tr.Tau); err != nil {
		return err
	}
	keys := make([]string, 0, len(tr.Meta))
	for k := range tr.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "# meta %s=%s\n", k, tr.Meta[k]); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"t", "id", "x", "y", "z", "seated"}); err != nil {
		return err
	}
	row := make([]string, 6)
	for _, s := range tr.Snapshots {
		for _, a := range s.Samples {
			row[0] = strconv.FormatInt(s.T, 10)
			row[1] = strconv.FormatUint(uint64(a.ID), 10)
			row[2] = strconv.FormatFloat(a.Pos.X, 'f', 3, 64)
			row[3] = strconv.FormatFloat(a.Pos.Y, 'f', 3, 64)
			row[4] = strconv.FormatFloat(a.Pos.Z, 'f', 3, 64)
			row[5] = "0"
			if a.Seated {
				row[5] = "1"
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		// Empty snapshots still matter for concurrency statistics; encode
		// them as a row with an empty id.
		if len(s.Samples) == 0 {
			row[0] = strconv.FormatInt(s.T, 10)
			row[1], row[2], row[3], row[4], row[5] = "", "", "", "", ""
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// CSVSource streams snapshots from a CSV trace, grouping consecutive rows
// that share a timestamp. It holds one snapshot's samples at a time rather
// than the whole trace.
type CSVSource struct {
	cr      *csv.Reader
	info    Info
	started bool
	done    bool
	pending []string // one row read ahead to detect snapshot boundaries
}

// NewCSVSource parses the header comments and positions the source at the
// first snapshot.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	br := bufio.NewReader(r)
	src := &CSVSource{info: Info{Tau: 10, Meta: make(map[string]string)}}
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				src.done = true
				return src, nil
			}
			return nil, err
		}
		if b[0] != '#' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, "#"))
		switch {
		case strings.HasPrefix(line, "land="):
			src.info.Land = strings.TrimPrefix(line, "land=")
		case strings.HasPrefix(line, "tau="):
			v, err := strconv.ParseInt(strings.TrimPrefix(line, "tau="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad tau header: %w", err)
			}
			src.info.Tau = v
		case strings.HasPrefix(line, "meta "):
			kv := strings.SplitN(strings.TrimPrefix(line, "meta "), "=", 2)
			if len(kv) == 2 {
				src.info.Meta[kv[0]] = kv[1]
			}
		}
	}
	if err := src.info.fillFromMeta(); err != nil {
		return nil, err
	}
	src.cr = csv.NewReader(br)
	src.cr.FieldsPerRecord = 6
	return src, nil
}

// Info reports the provenance parsed from the header.
func (s *CSVSource) Info() Info { return s.info }

// readRow returns the next data row, skipping the column-header row.
func (s *CSVSource) readRow() ([]string, error) {
	for {
		rec, err := s.cr.Read()
		if err != nil {
			return nil, err
		}
		if !s.started {
			s.started = true
			if rec[0] == "t" {
				continue // header row
			}
		}
		return rec, nil
	}
}

// Next assembles and returns the next snapshot, io.EOF at end of input.
func (s *CSVSource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if s.done {
		return Snapshot{}, io.EOF
	}
	var snap Snapshot
	have := false
	for {
		rec := s.pending
		s.pending = nil
		if rec == nil {
			var err error
			rec, err = s.readRow()
			if err == io.EOF {
				s.done = true
				if have {
					return snap, nil
				}
				return Snapshot{}, io.EOF
			}
			if err != nil {
				return Snapshot{}, fmt.Errorf("trace: csv: %w", err)
			}
		}
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("trace: bad timestamp %q: %w", rec[0], err)
		}
		if have && t != snap.T {
			s.pending = rec
			return snap, nil
		}
		if !have {
			snap = Snapshot{T: t}
			have = true
		}
		if rec[1] == "" {
			continue // empty-snapshot marker
		}
		sample, err := parseCSVSample(rec)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Samples = append(snap.Samples, sample)
	}
}

func parseCSVSample(rec []string) (Sample, error) {
	var sample Sample
	id, err := strconv.ParseUint(rec[1], 10, 64)
	if err != nil {
		return sample, fmt.Errorf("trace: bad id %q: %w", rec[1], err)
	}
	sample.ID = AvatarID(id)
	if sample.Pos.X, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return sample, fmt.Errorf("trace: bad x %q: %w", rec[2], err)
	}
	if sample.Pos.Y, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return sample, fmt.Errorf("trace: bad y %q: %w", rec[3], err)
	}
	if sample.Pos.Z, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return sample, fmt.Errorf("trace: bad z %q: %w", rec[4], err)
	}
	sample.Seated = rec[5] == "1"
	return sample, nil
}

// ReadCSV parses a trace written by WriteCSV, materialising the stream.
func ReadCSV(r io.Reader) (*Trace, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return materialize(src)
}

// materialize drains a described file source into a validated trace.
func materialize(src Source) (*Trace, error) {
	tr, err := Collect(context.Background(), src, "", 0)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Binary format:
//
//	magic "SLTR", version byte 0x01
//	land string (uvarint length + bytes)
//	tau (uvarint), meta count (uvarint) + key/value strings
//	snapshot count (uvarint)
//	per snapshot: delta-T (uvarint), sample count (uvarint)
//	per sample: id (uvarint), x, y, z as float32 bits, flags byte
//
// Positions are stored as float32: land coordinates span [0, 256) metres,
// where float32 keeps sub-millimetre precision.

var binMagic = [4]byte{'S', 'L', 'T', 'R'}

const binVersion = 1

// WriteBinary writes the compact binary representation.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion); err != nil {
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(bw, uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(tr.Land); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(tr.Tau)); err != nil {
		return err
	}
	keys := make([]string, 0, len(tr.Meta))
	for k := range tr.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := writeUvarint(bw, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeString(k); err != nil {
			return err
		}
		if err := writeString(tr.Meta[k]); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(len(tr.Snapshots))); err != nil {
		return err
	}
	var prevT int64
	for _, s := range tr.Snapshots {
		if err := writeUvarint(bw, uint64(s.T-prevT)); err != nil {
			return err
		}
		prevT = s.T
		if err := writeUvarint(bw, uint64(len(s.Samples))); err != nil {
			return err
		}
		for _, a := range s.Samples {
			if err := writeUvarint(bw, uint64(a.ID)); err != nil {
				return err
			}
			for _, f := range [3]float64{a.Pos.X, a.Pos.Y, a.Pos.Z} {
				var buf [4]byte
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(f)))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
			var flags byte
			if a.Seated {
				flags |= 1
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// BinarySource streams snapshots from a binary trace. Only one snapshot's
// samples are resident at a time, so a multi-gigabyte archive replays in
// constant memory.
type BinarySource struct {
	br        *bufio.Reader
	info      Info
	remaining uint64 // snapshots left to read
	t         int64  // running timestamp (deltas accumulate)
}

// NewBinarySource parses the binary header and positions the source at
// the first snapshot.
func NewBinarySource(r io.Reader) (*BinarySource, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if [4]byte(magic[:4]) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:4])
	}
	if magic[4] != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", magic[4])
	}
	land, err := readBinString(br)
	if err != nil {
		return nil, err
	}
	tau, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	src := &BinarySource{
		br:   br,
		info: Info{Land: land, Tau: int64(tau), Meta: make(map[string]string)},
	}
	nMeta, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nMeta; i++ {
		k, err := readBinString(br)
		if err != nil {
			return nil, err
		}
		v, err := readBinString(br)
		if err != nil {
			return nil, err
		}
		src.info.Meta[k] = v
	}
	if src.remaining, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if err := src.info.fillFromMeta(); err != nil {
		return nil, err
	}
	return src, nil
}

func readBinString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Info reports the provenance parsed from the header.
func (s *BinarySource) Info() Info { return s.info }

// truncated maps a mid-snapshot io.EOF to io.ErrUnexpectedEOF: the
// header promised more snapshots, so a clean EOF here is a truncated
// file, and it must not read as the Source's end-of-stream sentinel.
func truncated(err error) error {
	if err == io.EOF {
		return fmt.Errorf("trace: truncated binary trace: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// Next decodes and returns the next snapshot, io.EOF past the last.
func (s *BinarySource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if s.remaining == 0 {
		return Snapshot{}, io.EOF
	}
	s.remaining--
	dt, err := binary.ReadUvarint(s.br)
	if err != nil {
		return Snapshot{}, truncated(err)
	}
	s.t += int64(dt)
	nSamp, err := binary.ReadUvarint(s.br)
	if err != nil {
		return Snapshot{}, truncated(err)
	}
	// Sanity-cap the count before allocating: a corrupt or malicious file
	// must produce an error, not an out-of-memory crash. One snapshot
	// holds a land's concurrent avatars — a million is far beyond any
	// plausible land.
	if nSamp > 1<<20 {
		return Snapshot{}, fmt.Errorf("trace: unreasonable sample count %d in snapshot t=%d", nSamp, s.t)
	}
	snap := Snapshot{T: s.t, Samples: make([]Sample, 0, nSamp)}
	for j := uint64(0); j < nSamp; j++ {
		id, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Snapshot{}, truncated(err)
		}
		var coords [3]float64
		for c := range coords {
			var buf [4]byte
			if _, err := io.ReadFull(s.br, buf[:]); err != nil {
				return Snapshot{}, truncated(err)
			}
			coords[c] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:])))
		}
		flags, err := s.br.ReadByte()
		if err != nil {
			return Snapshot{}, truncated(err)
		}
		snap.Samples = append(snap.Samples, Sample{
			ID:     AvatarID(id),
			Pos:    geom.V(coords[0], coords[1], coords[2]),
			Seated: flags&1 != 0,
		})
	}
	return snap, nil
}

// ReadBinary parses a trace written by WriteBinary, materialising the
// stream.
func ReadBinary(r io.Reader) (*Trace, error) {
	src, err := NewBinarySource(r)
	if err != nil {
		return nil, err
	}
	return materialize(src)
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// WriteFile writes the trace to path, selecting the codec by extension:
// ".csv" for CSV, anything else for binary.
func WriteFile(tr *Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		if err := tr.WriteCSV(f); err != nil {
			return err
		}
	} else if err := tr.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from path, selecting the codec by extension.
func ReadFile(path string) (*Trace, error) {
	fs, err := OpenStream(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	return materialize(fs)
}

// FileStream is a Source streaming snapshots from a trace file without
// materialising it. Close it when done.
type FileStream struct {
	f   *os.File
	src Source
}

// OpenStream opens a trace file for streaming, selecting the codec by
// extension like ReadFile: ".csv" for CSV, anything else for binary.
func OpenStream(path string) (*FileStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var src Source
	if strings.HasSuffix(path, ".csv") {
		src, err = NewCSVSource(f)
	} else {
		var bs *BinarySource
		bs, err = NewBinarySource(f)
		src = bs
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStream{f: f, src: src}, nil
}

// Next yields the next snapshot from the file.
func (fs *FileStream) Next(ctx context.Context) (Snapshot, error) {
	return fs.src.Next(ctx)
}

// Info reports the provenance parsed from the file header.
func (fs *FileStream) Info() Info {
	return fs.src.(Described).Info()
}

// Close releases the underlying file.
func (fs *FileStream) Close() error { return fs.f.Close() }

// EstateFileStream replays a set of per-region trace files as one
// EstateSource: the files are zipped tick by tick, so all regions must
// carry the same snapshot timeline (the estate's shared clock). Close it
// when done.
type EstateFileStream struct {
	files []*FileStream
	infos []Info
	done  bool
}

// OpenEstateStream opens one trace file per region for zipped streaming.
// Region placement comes from each file's "origin" metadata; when no
// file carries it, the regions are laid out side by side in path order,
// size metres apart (size from metadata, falling back to the Second
// Life standard 256 m). A mix of placed and unplaced files is an error:
// guessing a fallback position next to explicit ones risks stacking two
// regions on the same estate coordinates.
func OpenEstateStream(paths ...string) (*EstateFileStream, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: estate stream needs at least one region file")
	}
	es := &EstateFileStream{}
	placed := 0
	for _, path := range paths {
		fs, err := OpenStream(path)
		if err != nil {
			es.Close()
			return nil, err
		}
		es.files = append(es.files, fs)
		info := fs.Info()
		if info.Region == "" {
			info.Region = info.Land
		}
		if _, ok := info.Meta["origin"]; ok {
			placed++
		}
		es.infos = append(es.infos, info)
	}
	switch placed {
	case len(es.infos): // every region placed by its own metadata
	case 0: // none placed: side-by-side fallback layout
		x := 0.0
		for i := range es.infos {
			size, err := es.infos[i].Size()
			if err != nil {
				es.Close()
				return nil, err
			}
			if size <= 0 {
				size = 256
			}
			es.infos[i].Origin = geom.V2(x, 0)
			x += size
		}
	default:
		es.Close()
		return nil, fmt.Errorf("trace: %d of %d region files carry origin metadata; all or none must be placed",
			placed, len(es.infos))
	}
	return es, nil
}

// Regions describes the opened region files in path order.
func (es *EstateFileStream) Regions() []Info { return es.infos }

// NextTick decodes the next snapshot of every region and checks that
// they share one timestamp; regions running out of snapshots before the
// others make the set inconsistent and surface as an error.
func (es *EstateFileStream) NextTick(ctx context.Context) (EstateTick, error) {
	if es.done {
		return EstateTick{}, io.EOF
	}
	tick := EstateTick{Regions: make([]Snapshot, len(es.files))}
	ended := 0
	for i, fs := range es.files {
		snap, err := fs.Next(ctx)
		if err == io.EOF {
			ended++
			continue
		}
		if err != nil {
			return EstateTick{}, err
		}
		tick.Regions[i] = snap
		if i == ended { // first region still streaming sets the tick time
			tick.T = snap.T
		} else if snap.T != tick.T {
			return EstateTick{}, fmt.Errorf("trace: estate regions out of sync: %q at t=%d, want t=%d",
				es.infos[i].Region, snap.T, tick.T)
		}
	}
	if ended == len(es.files) {
		es.done = true
		return EstateTick{}, io.EOF
	}
	if ended > 0 {
		return EstateTick{}, fmt.Errorf("trace: estate regions out of sync: %d of %d region files ended early",
			ended, len(es.files))
	}
	return tick, nil
}

// Close releases every region file.
func (es *EstateFileStream) Close() error {
	var first error
	for _, fs := range es.files {
		if err := fs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
