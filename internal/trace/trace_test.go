package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"slmob/internal/geom"
)

func snap(t int64, ids ...AvatarID) Snapshot {
	s := Snapshot{T: t}
	for _, id := range ids {
		s.Samples = append(s.Samples, Sample{ID: id, Pos: geom.V2(float64(id), float64(id))})
	}
	return s
}

func TestAppendMonotonic(t *testing.T) {
	tr := New("Test", 10)
	if err := tr.Append(snap(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(snap(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(snap(10, 1)); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := tr.Append(snap(5, 1)); err == nil {
		t.Error("regressing timestamp accepted")
	}
}

func TestSummarize(t *testing.T) {
	tr := New("Dance Island", 10)
	_ = tr.Append(snap(0, 1, 2, 3))
	_ = tr.Append(snap(10, 1, 2))
	_ = tr.Append(snap(20, 4))
	s := tr.Summarize()
	if s.Unique != 4 {
		t.Errorf("unique = %d", s.Unique)
	}
	if math.Abs(s.MeanConcurrent-2) > 1e-12 {
		t.Errorf("mean concurrent = %v", s.MeanConcurrent)
	}
	if s.MaxConcurrent != 3 {
		t.Errorf("max concurrent = %d", s.MaxConcurrent)
	}
	if s.DurationSec != 20 {
		t.Errorf("duration = %d", s.DurationSec)
	}
	if !strings.Contains(s.String(), "Dance Island") {
		t.Errorf("summary string = %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := New("X", 10).Summarize()
	if s.Unique != 0 || s.MeanConcurrent != 0 || s.DurationSec != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSessionsSplitOnGap(t *testing.T) {
	tr := New("Test", 10)
	// Avatar 1 present at t=0..20, absent until t=100, present again.
	_ = tr.Append(snap(0, 1))
	_ = tr.Append(snap(10, 1))
	_ = tr.Append(snap(20, 1))
	_ = tr.Append(snap(100, 1))
	_ = tr.Append(snap(110, 1))
	sessions := tr.Sessions(0) // default gap = 2*tau = 20
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if sessions[0].Login() != 0 || sessions[0].Logout() != 20 {
		t.Errorf("first session [%d,%d]", sessions[0].Login(), sessions[0].Logout())
	}
	if sessions[1].Login() != 100 || sessions[1].Duration() != 10 {
		t.Errorf("second session login=%d dur=%d", sessions[1].Login(), sessions[1].Duration())
	}
}

func TestSessionsToleratesSingleMissedSample(t *testing.T) {
	tr := New("Test", 10)
	_ = tr.Append(snap(0, 1))
	// t=10 missed by the monitor.
	_ = tr.Append(snap(20, 1))
	sessions := tr.Sessions(0)
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1 (gap of one sample tolerated)", len(sessions))
	}
}

func TestSessionsSortedAndMultiUser(t *testing.T) {
	tr := New("Test", 10)
	_ = tr.Append(snap(0, 2))
	_ = tr.Append(snap(10, 2, 1))
	_ = tr.Append(snap(20, 1))
	ss := tr.Sessions(0)
	if len(ss) != 2 {
		t.Fatalf("sessions = %d", len(ss))
	}
	if ss[0].ID != 2 || ss[1].ID != 1 {
		t.Errorf("session order: %v then %v", ss[0].ID, ss[1].ID)
	}
}

func TestSessionPathExcludesSeated(t *testing.T) {
	tr := New("Test", 10)
	s0 := Snapshot{T: 0, Samples: []Sample{{ID: 7, Pos: geom.V2(10, 10)}}}
	s1 := Snapshot{T: 10, Samples: []Sample{{ID: 7, Pos: geom.V(0, 0, 0), Seated: true}}}
	s2 := Snapshot{T: 20, Samples: []Sample{{ID: 7, Pos: geom.V2(12, 10)}}}
	_ = tr.Append(s0)
	_ = tr.Append(s1)
	_ = tr.Append(s2)
	ss := tr.Sessions(0)
	if len(ss) != 1 {
		t.Fatalf("sessions = %d", len(ss))
	}
	path := ss[0].Path()
	if len(path) != 2 {
		t.Fatalf("path = %v; seated sample should be excluded", path)
	}
	// Without exclusion the path length would include two ~14m legs to the
	// origin and back; with it, the travel is the direct 2m.
	if got := geom.PathLengthXY(path); math.Abs(got-2) > 1e-9 {
		t.Errorf("path length = %v, want 2", got)
	}
}

func TestDropSeated(t *testing.T) {
	tr := New("Test", 10)
	tr.Meta["monitor"] = "crawler"
	_ = tr.Append(Snapshot{T: 0, Samples: []Sample{
		{ID: 1, Pos: geom.V2(1, 1)},
		{ID: 2, Seated: true},
	}})
	out := tr.DropSeated()
	if len(out.Snapshots[0].Samples) != 1 || out.Snapshots[0].Samples[0].ID != 1 {
		t.Errorf("DropSeated = %+v", out.Snapshots[0].Samples)
	}
	if out.Meta["monitor"] != "crawler" {
		t.Error("meta not copied")
	}
	// Original untouched.
	if len(tr.Snapshots[0].Samples) != 2 {
		t.Error("original mutated")
	}
}

func TestWindow(t *testing.T) {
	tr := New("Test", 10)
	for i := int64(0); i < 10; i++ {
		_ = tr.Append(snap(i*10, 1))
	}
	w := tr.Window(20, 50)
	if len(w.Snapshots) != 3 {
		t.Fatalf("window snapshots = %d", len(w.Snapshots))
	}
	if w.Snapshots[0].T != 20 || w.Snapshots[2].T != 40 {
		t.Errorf("window bounds [%d,%d]", w.Snapshots[0].T, w.Snapshots[2].T)
	}
}

func TestValidate(t *testing.T) {
	tr := New("Test", 10)
	_ = tr.Append(snap(0, 1, 2))
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := New("Test", 10)
	bad.Snapshots = []Snapshot{{T: 0, Samples: []Sample{{ID: 1}, {ID: 1}}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate avatar accepted")
	}
	bad2 := New("Test", 0)
	if err := bad2.Validate(); err == nil {
		t.Error("tau=0 accepted")
	}
	bad3 := New("Test", 10)
	bad3.Snapshots = []Snapshot{{T: 10}, {T: 10}}
	if err := bad3.Validate(); err == nil {
		t.Error("non-increasing snapshots accepted")
	}
}

func roundTripCSV(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func sampleTrace() *Trace {
	tr := New("Isle of View", 10)
	tr.Meta["seed"] = "42"
	tr.Meta["monitor"] = "crawler"
	_ = tr.Append(Snapshot{T: 0, Samples: []Sample{
		{ID: 1, Pos: geom.V(10.125, 20.5, 30)},
		{ID: 2, Pos: geom.V(0, 0, 0), Seated: true},
	}})
	_ = tr.Append(Snapshot{T: 10}) // empty snapshot
	_ = tr.Append(Snapshot{T: 20, Samples: []Sample{
		{ID: 1, Pos: geom.V(11, 21, 30)},
	}})
	return tr
}

func tracesEqual(t *testing.T, got, want *Trace) {
	t.Helper()
	if got.Land != want.Land || got.Tau != want.Tau {
		t.Fatalf("header: got %q/%d want %q/%d", got.Land, got.Tau, want.Land, want.Tau)
	}
	for k, v := range want.Meta {
		if got.Meta[k] != v {
			t.Fatalf("meta[%q] = %q, want %q", k, got.Meta[k], v)
		}
	}
	if len(got.Snapshots) != len(want.Snapshots) {
		t.Fatalf("snapshots = %d, want %d", len(got.Snapshots), len(want.Snapshots))
	}
	for i := range want.Snapshots {
		gs, ws := got.Snapshots[i], want.Snapshots[i]
		if gs.T != ws.T || len(gs.Samples) != len(ws.Samples) {
			t.Fatalf("snapshot %d: %+v vs %+v", i, gs, ws)
		}
		for j := range ws.Samples {
			ga, wa := gs.Samples[j], ws.Samples[j]
			if ga.ID != wa.ID || ga.Seated != wa.Seated {
				t.Fatalf("sample %d/%d: %+v vs %+v", i, j, ga, wa)
			}
			if ga.Pos.Dist(wa.Pos) > 1e-3 {
				t.Fatalf("sample %d/%d pos: %v vs %v", i, j, ga.Pos, wa.Pos)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := sampleTrace()
	got := roundTripCSV(t, want)
	tracesEqual(t, got, want)
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, got, want)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte{'S', 'L', 'T', 'R', 99})); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// TestBinaryRejectsTruncated: a file cut off mid-stream must surface an
// error, not read as a clean (shorter) trace — the header's snapshot
// count is a promise, and the streaming source must not let a transport
// io.EOF pose as its own end-of-stream sentinel.
func TestBinaryRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) - 1, len(whole) - 7, len(whole) / 2} {
		if _, err := ReadBinary(bytes.NewReader(whole[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(whole))
		}
	}
}

// TestBinaryRejectsHugeSampleCount: a crafted header promising an absurd
// per-snapshot sample count must error out, not attempt the allocation.
func TestBinaryRejectsHugeSampleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("SLTR\x01")
	buf.WriteByte(0)  // empty land name
	buf.WriteByte(10) // tau
	buf.WriteByte(0)  // no meta
	buf.WriteByte(1)  // one snapshot
	buf.WriteByte(10) // delta-T
	// sample count 1<<40 as uvarint
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 1<<40)
	buf.Write(tmp[:n])
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("absurd sample count accepted")
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("t,id,x,y,z,seated\nnotanumber,1,0,0,0,0\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
	if _, err := ReadCSV(strings.NewReader("t,id,x,y,z,seated\n0,xx,0,0,0,0\n")); err == nil {
		t.Error("bad id accepted")
	}
}

func TestFileRoundTripBothCodecs(t *testing.T) {
	dir := t.TempDir()
	want := sampleTrace()
	for _, name := range []string{"trace.csv", "trace.sltr"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(want, path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tracesEqual(t, got, want)
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	tr := New("Size", 10)
	for i := int64(0); i < 100; i++ {
		s := Snapshot{T: i * 10}
		for j := 0; j < 50; j++ {
			s.Samples = append(s.Samples, Sample{
				ID:  AvatarID(j),
				Pos: geom.V(float64(j), float64(i%256), 25),
			})
		}
		_ = tr.Append(s)
	}
	var csvBuf, binBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary %d bytes not smaller than csv %d bytes", binBuf.Len(), csvBuf.Len())
	}
}

func TestSnapshotClone(t *testing.T) {
	s := snap(5, 1, 2)
	c := s.Clone()
	c.Samples[0].ID = 99
	if s.Samples[0].ID == 99 {
		t.Error("clone shares storage")
	}
}

func TestInfoSizeDecodeError(t *testing.T) {
	if v, err := (Info{}).Size(); v != 0 || err != nil {
		t.Errorf("absent size = %v, %v; want 0, nil", v, err)
	}
	if v, err := (Info{Meta: map[string]string{"size": "256"}}).Size(); v != 256 || err != nil {
		t.Errorf("size 256 = %v, %v", v, err)
	}
	for _, bad := range []string{"not-a-number", "-5", "0"} {
		if _, err := (Info{Meta: map[string]string{"size": bad}}).Size(); err == nil {
			t.Errorf("size %q did not error", bad)
		}
	}
}

func TestInfoRegionOriginFromMeta(t *testing.T) {
	tr := New("East", 10)
	tr.Meta["region"] = "East"
	tr.Meta["origin"] = "256,0"
	info := tr.Source().Info()
	if info.Region != "East" || info.Origin != geom.V2(256, 0) {
		t.Errorf("info = %+v, want region East at (256,0)", info)
	}

	dir := t.TempDir()
	if err := tr.Append(snap(10, 1)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"r.sltr", "r.csv"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(tr, path); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenStream(path)
		if err != nil {
			t.Fatal(err)
		}
		got := fs.Info()
		fs.Close()
		if got.Region != "East" || got.Origin != geom.V2(256, 0) {
			t.Errorf("%s: info = %+v, want region East at (256,0)", name, got)
		}
	}

	// A malformed origin is a header decode error.
	tr.Meta["origin"] = "256"
	bad := filepath.Join(dir, "bad.sltr")
	if err := WriteFile(tr, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(bad); err == nil {
		t.Error("malformed origin metadata not rejected")
	}
}

func TestOpenEstateStreamRejectsMixedPlacement(t *testing.T) {
	dir := t.TempDir()
	mk := func(name, land string, origin string) string {
		tr := New(land, 10)
		if origin != "" {
			tr.Meta["origin"] = origin
		}
		if err := tr.Append(snap(10, 1)); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := WriteFile(tr, path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	placed := mk("a.sltr", "A", "0,0")
	unplaced := mk("b.sltr", "B", "")
	if _, err := OpenEstateStream(placed, unplaced); err == nil {
		t.Fatal("mixed placed/unplaced region files not rejected")
	}
	// All-unplaced files get the side-by-side fallback layout.
	es, err := OpenEstateStream(unplaced, mk("c.sltr", "C", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	infos := es.Regions()
	if infos[0].Origin != geom.V2(0, 0) || infos[1].Origin != geom.V2(256, 0) {
		t.Errorf("fallback origins = %v, %v; want (0,0), (256,0)", infos[0].Origin, infos[1].Origin)
	}
}
