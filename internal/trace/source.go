package trace

import (
	"context"
	"io"
	"strconv"
)

// Source is the streaming producer interface of the measurement pipeline:
// a monitor that yields one snapshot at a time, in strictly increasing
// sim-time order. Next returns io.EOF when the measurement is over, and
// ctx.Err() promptly after the context is cancelled — a Source never
// blocks past cancellation.
//
// Implementations: the in-process simulation observer (world.NewSource),
// the TCP crawler (crawler.Source), the sensor collector
// (sensor.Collector.Source), and trace replay (Trace.Source, OpenStream).
type Source interface {
	Next(ctx context.Context) (Snapshot, error)
}

// Info describes a source's provenance: the monitored land, the snapshot
// period, and free-form metadata — the same fields a materialised Trace
// carries in its header.
type Info struct {
	Land string
	Tau  int64
	Meta map[string]string
}

// Size returns the land edge recorded in the "size" metadata key, or 0
// when absent or unusable. Consumers fall back to the Second Life
// standard 256 m.
func (i Info) Size() float64 {
	s, ok := i.Meta["size"]
	if !ok {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0
	}
	return v
}

// Described is implemented by sources that know their provenance.
// Consumers (the collector below, the analysis façade) use it to label
// results without requiring a materialised trace.
type Described interface {
	Info() Info
}

// ReplaySource streams the snapshots of an in-memory trace. Snapshots are
// not cloned: the consumer must not mutate them.
type ReplaySource struct {
	tr *Trace
	i  int
}

// Source returns a streaming view of the trace, positioned at the first
// snapshot.
func (tr *Trace) Source() *ReplaySource {
	return &ReplaySource{tr: tr}
}

// Next yields the next snapshot, io.EOF past the last.
func (s *ReplaySource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if s.i >= len(s.tr.Snapshots) {
		return Snapshot{}, io.EOF
	}
	snap := s.tr.Snapshots[s.i]
	s.i++
	return snap, nil
}

// Info reports the replayed trace's provenance.
func (s *ReplaySource) Info() Info {
	return Info{Land: s.tr.Land, Tau: s.tr.Tau, Meta: s.tr.Meta}
}

// Collect drains a source into a materialised trace: the bridge from the
// streaming pipeline to the batch consumers (file writers, the DTN
// replayer). Land and tau label the result; when the source implements
// Described, an empty land and a zero tau are filled from its Info, and
// its metadata is copied.
//
// On error — including context cancellation — Collect returns the partial
// trace collected so far alongside the error, so a crawl interrupted by
// ^C still yields its data.
func Collect(ctx context.Context, src Source, land string, tau int64) (*Trace, error) {
	if d, ok := src.(Described); ok {
		info := d.Info()
		if land == "" {
			land = info.Land
		}
		if tau == 0 {
			tau = info.Tau
		}
		tr := New(land, tau)
		for k, v := range info.Meta {
			tr.Meta[k] = v
		}
		return collectInto(ctx, src, tr)
	}
	return collectInto(ctx, src, New(land, tau))
}

func collectInto(ctx context.Context, src Source, tr *Trace) (*Trace, error) {
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return tr, err
		}
		if err := tr.Append(snap); err != nil {
			return tr, err
		}
	}
}
