package trace

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"slmob/internal/geom"
)

// Source is the streaming producer interface of the measurement pipeline:
// a monitor that yields one snapshot at a time, in strictly increasing
// sim-time order. Next returns io.EOF when the measurement is over, and
// ctx.Err() promptly after the context is cancelled — a Source never
// blocks past cancellation.
//
// Implementations: the in-process simulation observer (world.NewSource),
// the TCP crawler (crawler.Source), the sensor collector
// (sensor.Collector.Source), and trace replay (Trace.Source, OpenStream).
type Source interface {
	Next(ctx context.Context) (Snapshot, error)
}

// Info describes a source's provenance: the monitored land, the snapshot
// period, and free-form metadata — the same fields a materialised Trace
// carries in its header.
type Info struct {
	Land string
	// Region identifies the stream within a multi-region estate; empty for
	// single-land sources. Estate producers mirror it into the "region"
	// metadata key so per-region trace files round-trip the identity.
	Region string
	// Origin places the region in estate-global coordinates (the offset
	// added to local positions); zero for single-land sources. Mirrored
	// into the "origin" metadata key as "x,y".
	Origin geom.Vec
	Tau    int64
	Meta   map[string]string
}

// Size returns the land edge recorded in the "size" metadata key: 0 when
// the key is absent (consumers fall back to the Second Life standard
// 256 m), or an error when a value is present but does not decode to a
// positive length — a malformed size must surface, not silently read as
// "unknown".
func (i Info) Size() (float64, error) {
	s, ok := i.Meta["size"]
	if !ok {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: malformed size metadata %q: %w", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("trace: non-positive size metadata %q", s)
	}
	return v, nil
}

// fillFromMeta populates the Region and Origin fields from the "region"
// and "origin" metadata keys, used by file sources whose headers carry
// identity only as metadata. A malformed origin is a decode error.
func (i *Info) fillFromMeta() error {
	if i.Region == "" {
		i.Region = i.Meta["region"]
	}
	if s, ok := i.Meta["origin"]; ok && i.Origin.IsZero() {
		x, y, found := strings.Cut(s, ",")
		if !found {
			return fmt.Errorf("trace: malformed origin metadata %q", s)
		}
		var err error
		if i.Origin.X, err = strconv.ParseFloat(x, 64); err != nil {
			return fmt.Errorf("trace: malformed origin metadata %q: %w", s, err)
		}
		if i.Origin.Y, err = strconv.ParseFloat(y, 64); err != nil {
			return fmt.Errorf("trace: malformed origin metadata %q: %w", s, err)
		}
	}
	return nil
}

// Described is implemented by sources that know their provenance.
// Consumers (the collector below, the analysis façade) use it to label
// results without requiring a materialised trace.
type Described interface {
	Info() Info
}

// Stateful is implemented by sources whose position and internal state
// can be captured and restored — the producer half of checkpoint/resume.
// The in-process simulation source implements it (its snapshot carries
// the full world state, avatar rng streams included), so a resumed run
// continues mid-stream instead of re-simulating from zero. Sources that
// do not implement it (file streams, live crawls) are resumed by
// replaying from the start and letting the analyzer skip the
// already-observed prefix by snapshot time.
type Stateful interface {
	// SnapshotState captures the source's state between Next calls.
	SnapshotState() ([]byte, error)
	// RestoreState rebuilds the state captured by SnapshotState. It must
	// be called on a source constructed with the same parameters
	// (scenario, tau); implementations reject mismatches.
	RestoreState(data []byte) error
}

// ReplaySource streams the snapshots of an in-memory trace. Snapshots are
// not cloned: the consumer must not mutate them.
type ReplaySource struct {
	tr *Trace
	i  int
}

// Source returns a streaming view of the trace, positioned at the first
// snapshot.
func (tr *Trace) Source() *ReplaySource {
	return &ReplaySource{tr: tr}
}

// Next yields the next snapshot, io.EOF past the last.
func (s *ReplaySource) Next(ctx context.Context) (Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return Snapshot{}, err
	}
	if s.i >= len(s.tr.Snapshots) {
		return Snapshot{}, io.EOF
	}
	snap := s.tr.Snapshots[s.i]
	s.i++
	return snap, nil
}

// Info reports the replayed trace's provenance. Region and origin
// metadata fill the identity fields on a best-effort basis.
func (s *ReplaySource) Info() Info {
	info := Info{Land: s.tr.Land, Tau: s.tr.Tau, Meta: s.tr.Meta}
	_ = info.fillFromMeta() // in-memory traces: malformed meta reads as absent
	return info
}

// Collect drains a source into a materialised trace: the bridge from the
// streaming pipeline to the batch consumers (file writers, the DTN
// replayer). Land and tau label the result; when the source implements
// Described, an empty land and a zero tau are filled from its Info, and
// its metadata is copied.
//
// On error — including context cancellation — Collect returns the partial
// trace collected so far alongside the error, so a crawl interrupted by
// ^C still yields its data.
func Collect(ctx context.Context, src Source, land string, tau int64) (*Trace, error) {
	if d, ok := src.(Described); ok {
		info := d.Info()
		if land == "" {
			land = info.Land
		}
		if tau == 0 {
			tau = info.Tau
		}
		tr := New(land, tau)
		for k, v := range info.Meta {
			tr.Meta[k] = v
		}
		return collectInto(ctx, src, tr)
	}
	return collectInto(ctx, src, New(land, tau))
}

func collectInto(ctx context.Context, src Source, tr *Trace) (*Trace, error) {
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return tr, err
		}
		if err := tr.Append(snap); err != nil {
			return tr, err
		}
	}
}

// EstateTick is one simulation tick observed across every region of a
// multi-region estate: one snapshot per region, all sharing the same
// time T. Region index order matches the source's Regions().
type EstateTick struct {
	T       int64
	Regions []Snapshot
}

// EstateSource is the multiplexed producer of a sharded measurement: a
// monitor covering an estate of regions that advances all of them on one
// shared clock and yields the per-region snapshots of each tick together.
// NextTick returns io.EOF when the measurement is over and ctx.Err()
// promptly after cancellation, like Source.Next.
//
// Implementations: the in-process estate observer (world.NewEstateSource)
// and replay over a set of per-region trace files (OpenEstateStream).
type EstateSource interface {
	// Regions describes each region stream — name, placement, period —
	// in the index order NextTick uses.
	Regions() []Info
	NextTick(ctx context.Context) (EstateTick, error)
}

// EstateReplay replays materialised per-region traces as an
// EstateSource, zipping them tick by tick on the shared clock. Snapshots
// are not cloned: the consumer must not mutate them.
type EstateReplay struct {
	infos []Info
	trs   []*Trace
	i     int
}

// NewEstateReplay builds an estate replay over per-region traces, which
// must all carry the same snapshot timeline. Infos supply region
// identity and placement; a nil infos derives them from the traces'
// own headers and metadata.
func NewEstateReplay(infos []Info, trs []*Trace) (*EstateReplay, error) {
	if len(trs) == 0 {
		return nil, fmt.Errorf("trace: estate replay needs at least one region trace")
	}
	if infos == nil {
		for _, tr := range trs {
			infos = append(infos, tr.Source().Info())
		}
	}
	if len(infos) != len(trs) {
		return nil, fmt.Errorf("trace: %d region infos for %d traces", len(infos), len(trs))
	}
	n := len(trs[0].Snapshots)
	for ri, tr := range trs {
		if len(tr.Snapshots) != n {
			return nil, fmt.Errorf("trace: region %d has %d snapshots, want %d", ri, len(tr.Snapshots), n)
		}
		for j, s := range tr.Snapshots {
			if s.T != trs[0].Snapshots[j].T {
				return nil, fmt.Errorf("trace: region %d snapshot %d at t=%d, want t=%d",
					ri, j, s.T, trs[0].Snapshots[j].T)
			}
		}
	}
	return &EstateReplay{infos: infos, trs: trs}, nil
}

// Regions describes the replayed region traces.
func (er *EstateReplay) Regions() []Info { return er.infos }

// NextTick yields the next shared-clock tick, io.EOF past the last.
func (er *EstateReplay) NextTick(ctx context.Context) (EstateTick, error) {
	if err := ctx.Err(); err != nil {
		return EstateTick{}, err
	}
	if er.i >= len(er.trs[0].Snapshots) {
		return EstateTick{}, io.EOF
	}
	tick := EstateTick{T: er.trs[0].Snapshots[er.i].T, Regions: make([]Snapshot, len(er.trs))}
	for ri, tr := range er.trs {
		tick.Regions[ri] = tr.Snapshots[er.i]
	}
	er.i++
	return tick, nil
}

// CollectEstate drains an estate source into one materialised trace per
// region, labelled from the source's region Infos. On error — including
// cancellation — it returns the partial traces collected so far.
func CollectEstate(ctx context.Context, es EstateSource) ([]*Trace, error) {
	infos := es.Regions()
	trs := make([]*Trace, len(infos))
	for i, info := range infos {
		trs[i] = New(info.Land, info.Tau)
		for k, v := range info.Meta {
			trs[i].Meta[k] = v
		}
	}
	for {
		tick, err := es.NextTick(ctx)
		if err == io.EOF {
			return trs, nil
		}
		if err != nil {
			return trs, err
		}
		if len(tick.Regions) != len(trs) {
			return trs, fmt.Errorf("trace: tick has %d regions, want %d", len(tick.Regions), len(trs))
		}
		for i, snap := range tick.Regions {
			if err := trs[i].Append(snap); err != nil {
				return trs, err
			}
		}
	}
}
