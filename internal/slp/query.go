package slp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// QueryClient is a synchronous client for the analytics query endpoint.
// Unlike Client it carries no read loop: the query protocol is strictly
// request/reply, so each call writes one Query and reads frames until
// the reply is complete. It is safe for concurrent use; calls serialise
// on an internal mutex (one outstanding request per connection).
type QueryClient struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
}

// DialQuery connects to an analytics query endpoint. timeout bounds the
// dial and each subsequent request/reply exchange; zero means 10 s.
func DialQuery(addr string, timeout time.Duration) (*QueryClient, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &QueryClient{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: timeout,
	}, nil
}

// Close closes the connection.
func (c *QueryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// AnalysisResult is one reassembled analysis reply: the serialised blob
// (core.EncodeAnalysis format) plus the service metadata that framed it.
// Blob is nil when the service has no analysis yet for the request (no
// window sealed at query time).
type AnalysisResult struct {
	// Region is -1 for the estate-global analysis.
	Region int32
	// Window is the sealed-window index the blob covers, or -1 for a
	// cumulative reply.
	Window int64
	// SimTime is the shared clock at snapshot-publish time.
	SimTime int64
	// FirstWindow and Windows describe the retained window range at
	// reply time: indices [FirstWindow, FirstWindow+Windows) are sealed.
	FirstWindow int64
	Windows     int64
	// Sealed reports the run has ended (a cumulative reply is final).
	Sealed bool
	// Blob is the serialised Analysis; decode with core.DecodeAnalysis.
	Blob []byte
}

// maxAnalysisBlob bounds a reassembled blob (a corrupt Total field must
// not drive a huge allocation). 64 MiB is orders of magnitude above any
// real analysis.
const maxAnalysisBlob = 1 << 26

// Cumulative fetches the merge of every sealed window so far (the final
// whole-trace analysis once the run ends). region -1 selects the
// estate-global analysis; 0..R-1 a region-local one.
func (c *QueryClient) Cumulative(region int32) (*AnalysisResult, error) {
	return c.analysisCall(Query{Target: QueryCumulative, Region: region, Window: -1})
}

// WindowAt fetches one sealed window by index; window -1 selects the
// most recently sealed one.
func (c *QueryClient) WindowAt(region int32, window int64) (*AnalysisResult, error) {
	return c.analysisCall(Query{Target: QueryWindow, Region: region, Window: window})
}

// Stats fetches the service's counters.
func (c *QueryClient) Stats() (StatsReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg, err := c.call(Query{Target: QueryStats})
	if err != nil {
		return StatsReply{}, err
	}
	switch v := msg.(type) {
	case StatsReply:
		return v, nil
	case Error:
		return StatsReply{}, fmt.Errorf("slp: query refused: %s (%s)", v.Message, errCodeName(v.Code))
	default:
		return StatsReply{}, fmt.Errorf("slp: unexpected %s reply to stats query", msg.Type())
	}
}

func (c *QueryClient) analysisCall(q Query) (*AnalysisResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg, err := c.call(q)
	if err != nil {
		return nil, err
	}
	first, ok := msg.(AnalysisReply)
	if !ok {
		if e, isErr := msg.(Error); isErr {
			return nil, fmt.Errorf("slp: query refused: %s (%s)", e.Message, errCodeName(e.Code))
		}
		return nil, fmt.Errorf("slp: unexpected %s reply to analysis query", msg.Type())
	}
	res := &AnalysisResult{
		Region:      first.Region,
		Window:      first.Window,
		SimTime:     first.SimTime,
		FirstWindow: first.FirstWindow,
		Windows:     first.Windows,
		Sealed:      first.Sealed,
	}
	if first.Total == 0 {
		return res, nil
	}
	if first.Total > maxAnalysisBlob {
		return nil, &DecodeError{fmt.Errorf("slp: analysis blob claims %d bytes", first.Total)}
	}
	blob := make([]byte, first.Total)
	got := uint32(0)
	chunk := first
	for {
		if chunk.Offset != got || uint32(len(chunk.Chunk)) > first.Total-got {
			return nil, &DecodeError{fmt.Errorf("slp: analysis chunk at offset %d, want %d", chunk.Offset, got)}
		}
		copy(blob[got:], chunk.Chunk)
		got += uint32(len(chunk.Chunk))
		if got == first.Total {
			break
		}
		if len(chunk.Chunk) == 0 {
			return nil, &DecodeError{fmt.Errorf("slp: empty analysis chunk before blob end")}
		}
		next, err := c.read()
		if err != nil {
			return nil, err
		}
		chunk, ok = next.(AnalysisReply)
		if !ok {
			return nil, fmt.Errorf("slp: unexpected %s frame inside chunked analysis reply", next.Type())
		}
	}
	res.Blob = blob
	return res, nil
}

// call writes one query and reads the first reply frame, with the
// client's timeout applied to the whole exchange.
func (c *QueryClient) call(q Query) (Message, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := WriteMessage(c.bw, q); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c.read()
}

func (c *QueryClient) read() (Message, error) {
	return ReadMessage(c.br)
}

func errCodeName(code ErrCode) string {
	switch code {
	case ErrBadVersion:
		return "bad-version"
	case ErrLandFull:
		return "land-full"
	case ErrBadCredentials:
		return "bad-credentials"
	case ErrObjectsForbidden:
		return "objects-forbidden"
	case ErrBadRequest:
		return "bad-request"
	case ErrMalformed:
		return "malformed"
	case ErrNotEstate:
		return "not-estate"
	default:
		return fmt.Sprintf("code-%d", byte(code))
	}
}
