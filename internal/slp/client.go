package slp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/geom"
)

// Client is a minimal metaverse client: it logs in as an avatar, can move
// and chat, and consumes map snapshots — the same capability set as the
// paper's libsecondlife-based crawler.
//
// A background goroutine demultiplexes inbound messages onto channels;
// Move/Chat/Subscribe are fire-and-forget writes and are safe for
// concurrent use.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	welcome Welcome

	maps  chan MapReply
	chats chan ChatEvent
	pongs chan Pong
	objs  chan ObjectReply

	done    chan struct{}
	errOnce sync.Once
	err     error
}

// Dial connects, logs in, and starts the read loop. The returned client
// must be closed with Close.
func Dial(addr, name, password string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:  conn,
		bw:    bufio.NewWriter(conn),
		maps:  make(chan MapReply, 64),
		chats: make(chan ChatEvent, 64),
		pongs: make(chan Pong, 8),
		objs:  make(chan ObjectReply, 8),
		done:  make(chan struct{}),
	}
	if err := c.send(Hello{Version: Version, Name: name, Password: password}); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	msg, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("slp: handshake read: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch v := msg.(type) {
	case Welcome:
		c.welcome = v
	case Error:
		conn.Close()
		return nil, fmt.Errorf("slp: login rejected (%d): %s", v.Code, v.Message)
	default:
		conn.Close()
		return nil, fmt.Errorf("slp: unexpected handshake reply %s", msg.Type())
	}
	go c.readLoop()
	return c, nil
}

// Welcome returns the login acknowledgement (avatar ID, land, warp).
func (c *Client) Welcome() Welcome { return c.welcome }

// Maps returns the channel of map snapshots (poll replies and
// subscription pushes). It is closed when the connection dies.
func (c *Client) Maps() <-chan MapReply { return c.maps }

// Chats returns the channel of chat events heard near the avatar.
func (c *Client) Chats() <-chan ChatEvent { return c.chats }

// Err returns the terminal connection error, if any.
func (c *Client) Err() error {
	select {
	case <-c.done:
		return c.err
	default:
		return nil
	}
}

func (c *Client) fail(err error) {
	c.errOnce.Do(func() {
		c.err = err
		close(c.done)
		close(c.maps)
		close(c.chats)
		c.conn.Close()
	})
}

func (c *Client) readLoop() {
	for {
		msg, err := ReadMessage(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		switch v := msg.(type) {
		case MapReply:
			select {
			case c.maps <- v:
			default: // drop if the consumer lags; the next push supersedes
			}
		case ChatEvent:
			select {
			case c.chats <- v:
			default:
			}
		case Pong:
			select {
			case c.pongs <- v:
			default:
			}
		case ObjectReply:
			select {
			case c.objs <- v:
			default:
			}
		case Error:
			c.fail(fmt.Errorf("slp: server error (%d): %s", v.Code, v.Message))
			return
		default:
			// Ignore unexpected but well-formed messages.
		}
	}
}

func (c *Client) send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteMessage(c.bw, m); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Move relocates the avatar.
func (c *Client) Move(pos geom.Vec) error {
	return c.send(Move{Pos: pos})
}

// Chat says something in local chat.
func (c *Client) Chat(text string) error {
	return c.send(Chat{Text: text})
}

// RequestMap polls the coarse map once; the reply arrives on Maps.
func (c *Client) RequestMap() error {
	return c.send(MapRequest{})
}

// Subscribe asks for a map push every tau simulated seconds.
func (c *Client) Subscribe(tau int64) error {
	return c.send(Subscribe{Tau: tau})
}

// CreateObject deploys a sensor object and waits for the acknowledgement.
func (c *Client) CreateObject(req ObjectCreate, timeout time.Duration) (ObjectReply, error) {
	if err := c.send(req); err != nil {
		return ObjectReply{}, err
	}
	select {
	case rep := <-c.objs:
		return rep, nil
	case <-c.done:
		return ObjectReply{}, c.err
	case <-time.After(timeout):
		return ObjectReply{}, fmt.Errorf("slp: object create timed out")
	}
}

// Ping round-trips a liveness probe and returns the server's sim time.
func (c *Client) Ping(timeout time.Duration) (int64, error) {
	if err := c.send(Ping{Seq: 1}); err != nil {
		return 0, err
	}
	select {
	case p := <-c.pongs:
		return p.SimTime, nil
	case <-c.done:
		return 0, c.err
	case <-time.After(timeout):
		return 0, fmt.Errorf("slp: ping timed out")
	}
}

// Close logs out and tears the connection down.
func (c *Client) Close() error {
	_ = c.send(Logout{})
	c.fail(fmt.Errorf("slp: client closed"))
	return nil
}
