package slp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slmob/internal/geom"
)

// Client is a minimal metaverse client: it logs in as an avatar, can move
// and chat, and consumes map snapshots — the same capability set as the
// paper's libsecondlife-based crawler.
//
// A background goroutine demultiplexes inbound messages onto channels;
// Move/Chat/Subscribe are fire-and-forget writes and are safe for
// concurrent use.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	// nr wraps the connection so the load harness can attribute inbound
	// bandwidth (BytesRead) to the session's subscription mix.
	nr *countingReader

	welcome Welcome

	maps     chan MapReply
	fullMaps chan MapReplyFull
	chats    chan ChatEvent
	pongs    chan Pong
	objs     chan ObjectReply

	// tracker materialises MapDelta pushes into full MapReply snapshots
	// on Maps(); only the read loop touches it. nDeltas counts applied
	// delta frames, so tests and harnesses can tell a delta subscription
	// was actually served as deltas. nPushes and nPushBytes count map
	// push frames and their wire bytes (framing included) at the read
	// loop, before any consumer-lag drops, so per-push bandwidth is
	// consistent and not diluted by chat and control traffic.
	tracker    DeltaTracker
	nDeltas    atomic.Uint64
	nPushes    atomic.Uint64
	nPushBytes atomic.Uint64

	done    chan struct{}
	errOnce sync.Once
	err     error
}

// countingReader counts bytes as they come off the socket.
type countingReader struct {
	r io.Reader
	n atomic.Uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}

// Dial connects, logs in as an avatar, and starts the read loop. The
// returned client must be closed with Close.
func Dial(addr, name, password string, timeout time.Duration) (*Client, error) {
	return dial(addr, name, password, false, timeout)
}

// DialObserver connects in observer mode: the server admits no avatar
// for the session and serves full-resolution MapReplyFull snapshots (see
// Hello.Observer). Estate monitors use it for measurement-grade crawls.
func DialObserver(addr, name, password string, timeout time.Duration) (*Client, error) {
	return dial(addr, name, password, true, timeout)
}

func dial(addr, name, password string, observer bool, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		nr:       &countingReader{r: conn},
		maps:     make(chan MapReply, 64),
		fullMaps: make(chan MapReplyFull, 64),
		chats:    make(chan ChatEvent, 64),
		pongs:    make(chan Pong, 8),
		objs:     make(chan ObjectReply, 8),
		done:     make(chan struct{}),
	}
	if err := c.send(Hello{Version: Version, Name: name, Password: password, Observer: observer}); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	msg, err := ReadMessage(c.nr)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("slp: handshake read: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch v := msg.(type) {
	case Welcome:
		c.welcome = v
	case Error:
		conn.Close()
		return nil, fmt.Errorf("slp: login rejected (%d): %s", v.Code, v.Message)
	default:
		conn.Close()
		return nil, fmt.Errorf("slp: unexpected handshake reply %s", msg.Type())
	}
	go c.readLoop()
	return c, nil
}

// Welcome returns the login acknowledgement (avatar ID, land, warp).
func (c *Client) Welcome() Welcome { return c.welcome }

// Maps returns the channel of map snapshots (poll replies and
// subscription pushes). It is closed when the connection dies.
func (c *Client) Maps() <-chan MapReply { return c.maps }

// FullMaps returns the channel of full-resolution map snapshots served
// to observer sessions. It is closed when the connection dies.
func (c *Client) FullMaps() <-chan MapReplyFull { return c.fullMaps }

// Chats returns the channel of chat events heard near the avatar.
func (c *Client) Chats() <-chan ChatEvent { return c.chats }

// Err returns the terminal connection error, if any.
func (c *Client) Err() error {
	select {
	case <-c.done:
		return c.err
	default:
		return nil
	}
}

func (c *Client) fail(err error) {
	c.errOnce.Do(func() {
		c.err = err
		close(c.done)
		close(c.maps)
		close(c.fullMaps)
		close(c.chats)
		c.conn.Close()
	})
}

func (c *Client) readLoop() {
	for {
		// The loop is the reader goroutine, so the before/after byte
		// counts bracket exactly this message's frame.
		before := c.nr.n.Load()
		msg, err := ReadMessage(c.nr)
		if err != nil {
			c.fail(err)
			return
		}
		switch msg.(type) {
		case MapReply, MapDelta, MapReplyFull:
			c.nPushes.Add(1)
			c.nPushBytes.Add(c.nr.n.Load() - before)
		}
		switch v := msg.(type) {
		case MapReply:
			select {
			case c.maps <- v:
			default: // drop if the consumer lags; the next push supersedes
			}
		case MapDelta:
			// Deltas are applied here, in arrival order, so the tracker
			// never misses a frame even when the Maps consumer lags: only
			// the materialised snapshot is droppable, never the delta.
			if reply, ok := c.tracker.Apply(v); ok {
				c.nDeltas.Add(1)
				select {
				case c.maps <- reply:
				default:
				}
			}
		case MapReplyFull:
			select {
			case c.fullMaps <- v:
			default:
			}
		case ChatEvent:
			select {
			case c.chats <- v:
			default:
			}
		case Pong:
			select {
			case c.pongs <- v:
			default:
			}
		case ObjectReply:
			select {
			case c.objs <- v:
			default:
			}
		case Error:
			c.fail(fmt.Errorf("slp: server error (%d): %s", v.Code, v.Message))
			return
		default:
			// Ignore unexpected but well-formed messages.
		}
	}
}

func (c *Client) send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteMessage(c.bw, m); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Move relocates the avatar.
func (c *Client) Move(pos geom.Vec) error {
	return c.send(Move{Pos: pos})
}

// Chat says something in local chat.
func (c *Client) Chat(text string) error {
	return c.send(Chat{Text: text})
}

// RequestMap polls the coarse map once; the reply arrives on Maps.
func (c *Client) RequestMap() error {
	return c.send(MapRequest{})
}

// Subscribe asks for a map push every tau simulated seconds. Aligned
// anchors the pushes to absolute multiples of tau on the server clock,
// which estate monitors use to share one timeline across regions.
func (c *Client) Subscribe(tau int64, aligned bool) error {
	return c.send(Subscribe{Tau: tau, Aligned: aligned})
}

// SubscribeAOI asks for an area-of-interest subscription: pushes carry
// only entities within radius metres of the avatar. With delta true the
// pushes arrive as MapDelta frames, which the client materialises back
// into full MapReply snapshots on Maps() — a consumer cannot tell a
// delta subscription from a plain one except by its bandwidth.
func (c *Client) SubscribeAOI(tau int64, aligned bool, radius float64, delta bool) error {
	return c.send(Subscribe{Tau: tau, Aligned: aligned, Radius: radius, Delta: delta})
}

// BytesRead returns the total bytes received from the server so far,
// handshake included.
func (c *Client) BytesRead() uint64 { return c.nr.n.Load() }

// PushBytesRead returns the wire bytes (length framing included) of the
// map pushes received so far — MapReply, MapDelta, and MapReplyFull
// frames only, excluding chat and control traffic. The load harness
// divides it by PushesRead to report per-mix push bandwidth.
func (c *Client) PushBytesRead() uint64 { return c.nPushBytes.Load() }

// PushesRead returns the number of map-push frames received so far,
// counted at the same wire layer as PushBytesRead — a lagging consumer
// that drops materialised snapshots does not skew bytes-per-push.
func (c *Client) PushesRead() uint64 { return c.nPushes.Load() }

// DeltasApplied returns how many MapDelta frames the client has
// materialised into snapshots — zero for a plain subscription.
func (c *Client) DeltasApplied() uint64 { return c.nDeltas.Load() }

// CreateObject deploys a sensor object and waits for the acknowledgement.
func (c *Client) CreateObject(req ObjectCreate, timeout time.Duration) (ObjectReply, error) {
	if err := c.send(req); err != nil {
		return ObjectReply{}, err
	}
	select {
	case rep := <-c.objs:
		return rep, nil
	case <-c.done:
		return ObjectReply{}, c.err
	case <-time.After(timeout):
		return ObjectReply{}, fmt.Errorf("slp: object create timed out")
	}
}

// Ping round-trips a liveness probe and returns the server's sim time.
func (c *Client) Ping(timeout time.Duration) (int64, error) {
	if err := c.send(Ping{Seq: 1}); err != nil {
		return 0, err
	}
	select {
	case p := <-c.pongs:
		return p.SimTime, nil
	case <-c.done:
		return 0, c.err
	case <-time.After(timeout):
		return 0, fmt.Errorf("slp: ping timed out")
	}
}

// Close logs out and tears the connection down.
func (c *Client) Close() error {
	_ = c.send(Logout{})
	c.fail(fmt.Errorf("slp: client closed"))
	return nil
}

// directoryCall dials an estate directory endpoint, performs one
// request/reply exchange, and closes the connection.
func directoryCall(addr string, req Message, timeout time.Duration) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteMessage(conn, req); err != nil {
		return nil, err
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("slp: directory read: %w", err)
	}
	if e, ok := reply.(Error); ok {
		return nil, fmt.Errorf("slp: directory refused (%d): %s", e.Code, e.Message)
	}
	return reply, nil
}

// FetchDirectory retrieves an estate's grid description from its
// directory endpoint: region names, addresses, placements, and the state
// of the shared clock.
func FetchDirectory(addr string, timeout time.Duration) (Directory, error) {
	reply, err := directoryCall(addr, DirectoryRequest{}, timeout)
	if err != nil {
		return Directory{}, err
	}
	dir, ok := reply.(Directory)
	if !ok {
		return Directory{}, fmt.Errorf("slp: unexpected directory reply %s", reply.Type())
	}
	return dir, nil
}

// StartEstateClock releases a held estate clock via the directory
// endpoint and returns the shared clock value (idempotent: starting a
// running clock is a no-op).
func StartEstateClock(addr string, timeout time.Duration) (int64, error) {
	reply, err := directoryCall(addr, ClockStart{}, timeout)
	if err != nil {
		return 0, err
	}
	started, ok := reply.(ClockStarted)
	if !ok {
		return 0, fmt.Errorf("slp: unexpected clock-start reply %s", reply.Type())
	}
	return started.SimTime, nil
}
