package slp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// The codec is hand-rolled on a byte buffer: message volumes are small
// (one frame per protocol event) but MapReply decoding sits on the
// crawler's hot path, so encoding avoids reflection entirely.

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16)  { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f32(v float64) { e.u32(math.Float32bits(float32(v))) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

// uvarint packs an unsigned value as LEB128, the one little-endian
// construct in an otherwise big-endian protocol: MapDelta is the only
// high-rate per-session message, and its avatar IDs and counts are
// small, so varints roughly halve the per-entry wire cost.
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// vec64 packs a position at full float64 resolution (handoffs and
// measurement-grade map entries must not lose precision).
func (e *encoder) vec64(v geom.Vec) {
	e.f64(v.X)
	e.f64(v.Y)
	e.f64(v.Z)
}

func (e *encoder) bytes(b []byte) error {
	if len(b) > 65535 {
		return fmt.Errorf("slp: byte field too long (%d bytes)", len(b))
	}
	e.u16(uint16(len(b)))
	e.buf = append(e.buf, b...)
	return nil
}
func (e *encoder) vec(v geom.Vec) {
	e.f32(v.X)
	e.f32(v.Y)
	e.f32(v.Z)
}

func (e *encoder) str(s string) error {
	if len(s) > 65535 {
		return fmt.Errorf("slp: string too long (%d bytes)", len(s))
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	return nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("slp: truncated %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f32() float64 { return float64(math.Float32frombits(d.u32())) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) bool() bool   { return d.u8() != 0 }
func (d *decoder) vec() geom.Vec {
	return geom.V(d.f32(), d.f32(), d.f32())
}

func (d *decoder) vec64() geom.Vec {
	return geom.V(d.f64(), d.f64(), d.f64())
}

func (d *decoder) bytes() []byte {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("slp: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// clampByte rounds a coordinate to the nearest metre and clamps it into
// a byte, the CoarseLocationUpdate packing.
func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v + 0.5)
}

// quantizeEntry packs a map entry at CoarseLocationUpdate resolution:
// x and y to 1 m in a byte, z to 4 m in a byte.
func quantizeEntry(e *encoder, id trace.AvatarID, pos geom.Vec, size float64) {
	_ = size
	e.u64(uint64(id))
	e.u8(clampByte(pos.X))
	e.u8(clampByte(pos.Y))
	e.u8(clampByte(pos.Z / 4))
}

// QuantizePos rounds a position to the values a decoded coarse map entry
// would carry: x and y to 1 m, z to 4 m, each clamped into [0, 255] (z
// into [0, 1020]). The server's delta encoder diffs quantised positions
// with it, so a sub-resolution move emits no delta entry and a client's
// materialised view is byte-identical to a decoded full MapReply;
// re-encoding a quantised position is the identity.
func QuantizePos(p geom.Vec) geom.Vec {
	return geom.V(float64(clampByte(p.X)), float64(clampByte(p.Y)), float64(clampByte(p.Z/4))*4)
}

// maxDirRegions bounds a directory frame's region count. The hard limit
// is really MaxPayload — Marshal rejects a directory whose encoded
// regions overflow the frame, and the estate server validates its own
// directory at construction — this count just caps what a decoder will
// allocate for.
const maxDirRegions = 1024

// DecodeError marks a protocol violation — a bad frame length or an
// undecodable payload — as distinct from a transport failure. Servers
// answer it with a typed Error{ErrMalformed} reply before closing the
// connection instead of silently dropping it.
type DecodeError struct{ Err error }

// Error implements error.
func (e *DecodeError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause.
func (e *DecodeError) Unwrap() error { return e.Err }

// Marshal encodes a message payload (type byte + body).
func Marshal(m Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 64)}
	e.u8(byte(m.Type()))
	switch v := m.(type) {
	case Hello:
		e.u8(v.Version)
		if err := e.str(v.Name); err != nil {
			return nil, err
		}
		if err := e.str(v.Password); err != nil {
			return nil, err
		}
		e.bool(v.Observer)
	case Welcome:
		e.u64(v.AvatarID)
		if err := e.str(v.Land); err != nil {
			return nil, err
		}
		e.f32(v.Size)
		e.i64(v.SimTime)
		e.f32(v.Warp)
		e.vec(v.Spawn)
	case Error:
		e.u8(byte(v.Code))
		if err := e.str(v.Message); err != nil {
			return nil, err
		}
	case Move:
		e.vec(v.Pos)
	case Chat:
		if len(v.Text) > MaxChatText {
			return nil, fmt.Errorf("slp: chat text too long (%d bytes)", len(v.Text))
		}
		if err := e.str(v.Text); err != nil {
			return nil, err
		}
	case ChatEvent:
		e.u64(uint64(v.From))
		e.vec(v.Pos)
		if err := e.str(v.Text); err != nil {
			return nil, err
		}
	case MapRequest:
	case MapReply:
		e.i64(v.SimTime)
		if len(v.Entries) > 1000 {
			return nil, fmt.Errorf("slp: map reply too large (%d entries)", len(v.Entries))
		}
		e.u16(uint16(len(v.Entries)))
		for _, ent := range v.Entries {
			quantizeEntry(e, ent.ID, ent.Pos, 256)
		}
	case Subscribe:
		e.i64(v.Tau)
		e.bool(v.Aligned)
		e.f32(v.Radius)
		e.bool(v.Delta)
	case ObjectCreate:
		e.u8(byte(v.Kind))
		e.vec(v.Pos)
		e.f32(v.Range)
		e.i64(v.Period)
		if err := e.str(v.Collector); err != nil {
			return nil, err
		}
	case ObjectReply:
		e.u64(v.ObjectID)
		e.i64(v.ExpiresAt)
	case Ping:
		e.u32(v.Seq)
	case Pong:
		e.u32(v.Seq)
		e.i64(v.SimTime)
	case Logout:
	case MapReplyFull:
		e.i64(v.SimTime)
		if len(v.Entries) > MaxFullEntries {
			return nil, fmt.Errorf("slp: full map reply too large (%d entries)", len(v.Entries))
		}
		e.u16(uint16(len(v.Entries)))
		for _, ent := range v.Entries {
			e.u64(uint64(ent.ID))
			e.vec64(ent.Pos)
			e.bool(ent.Seated)
		}
	case MapDelta:
		e.uvarint(uint64(v.SimTime))
		e.uvarint(uint64(v.Seq))
		e.bool(v.Keyframe)
		if len(v.Updated) > MaxDeltaEntries {
			return nil, fmt.Errorf("slp: map delta too large (%d updated)", len(v.Updated))
		}
		e.uvarint(uint64(len(v.Updated)))
		for _, ent := range v.Updated {
			e.uvarint(uint64(ent.ID))
			e.u8(clampByte(ent.Pos.X))
			e.u8(clampByte(ent.Pos.Y))
			e.u8(clampByte(ent.Pos.Z / 4))
		}
		if len(v.Removed) > MaxDeltaEntries {
			return nil, fmt.Errorf("slp: map delta too large (%d removed)", len(v.Removed))
		}
		e.uvarint(uint64(len(v.Removed)))
		for _, id := range v.Removed {
			e.uvarint(uint64(id))
		}
	case PeerHello:
		e.u8(v.Version)
		e.u32(v.Region)
		if err := e.str(v.Password); err != nil {
			return nil, err
		}
	case Transfer:
		e.u32(v.From)
		e.u32(v.To)
		e.bool(v.Teleport)
		if err := e.bytes(v.Avatar); err != nil {
			return nil, err
		}
	case TransferAck:
		e.bool(v.Accepted)
	case DirectoryRequest:
	case Directory:
		if err := e.str(v.Estate); err != nil {
			return nil, err
		}
		e.u16(v.Rows)
		e.u16(v.Cols)
		e.i64(v.SimTime)
		e.f64(v.Warp)
		e.i64(v.Duration)
		e.bool(v.Held)
		if err := e.str(v.QueryAddr); err != nil {
			return nil, err
		}
		if len(v.Regions) > maxDirRegions {
			return nil, fmt.Errorf("slp: directory too large (%d regions)", len(v.Regions))
		}
		e.u16(uint16(len(v.Regions)))
		for _, r := range v.Regions {
			if err := e.str(r.Name); err != nil {
				return nil, err
			}
			if err := e.str(r.Addr); err != nil {
				return nil, err
			}
			e.f64(r.Origin.X)
			e.f64(r.Origin.Y)
			e.f64(r.Size)
		}
	case ClockStart:
	case ClockStarted:
		e.i64(v.SimTime)
	case Query:
		e.u8(byte(v.Target))
		e.u32(uint32(v.Region))
		e.i64(v.Window)
	case AnalysisReply:
		if len(v.Chunk) > MaxAnalysisChunk {
			return nil, fmt.Errorf("slp: analysis chunk too large (%d bytes)", len(v.Chunk))
		}
		e.u8(byte(v.Target))
		e.u32(uint32(v.Region))
		e.i64(v.Window)
		e.i64(v.SimTime)
		e.i64(v.FirstWindow)
		e.i64(v.Windows)
		e.bool(v.Sealed)
		e.u32(v.Total)
		e.u32(v.Offset)
		if err := e.bytes(v.Chunk); err != nil {
			return nil, err
		}
	case StatsReply:
		e.i64(v.SimTime)
		e.i64(v.WindowSec)
		e.i64(v.FirstWindow)
		e.i64(v.Windows)
		e.bool(v.Sealed)
		e.u32(v.Regions)
		e.u32(v.Readers)
		e.u64(v.Dropped)
		e.u64(v.Queries)
		e.u64(v.WsSnapshots)
		e.u64(v.WsIncremental)
		e.u64(v.WsRebuilds)
	default:
		return nil, fmt.Errorf("slp: cannot marshal %T", m)
	}
	if len(e.buf) > MaxPayload {
		return nil, fmt.Errorf("slp: payload %d exceeds max %d", len(e.buf), MaxPayload)
	}
	return e.buf, nil
}

// Unmarshal decodes a payload produced by Marshal. Every decoding
// failure is reported as a *DecodeError.
func Unmarshal(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return nil, &DecodeError{fmt.Errorf("slp: empty payload")}
	}
	if len(payload) > MaxPayload {
		return nil, &DecodeError{fmt.Errorf("slp: payload %d exceeds max %d", len(payload), MaxPayload)}
	}
	d := &decoder{buf: payload, off: 1}
	var m Message
	switch MsgType(payload[0]) {
	case TypeHello:
		v := Hello{Version: d.u8()}
		v.Name = d.str()
		v.Password = d.str()
		v.Observer = d.bool()
		m = v
	case TypeWelcome:
		v := Welcome{AvatarID: d.u64()}
		v.Land = d.str()
		v.Size = d.f32()
		v.SimTime = d.i64()
		v.Warp = d.f32()
		v.Spawn = d.vec()
		m = v
	case TypeError:
		v := Error{Code: ErrCode(d.u8())}
		v.Message = d.str()
		m = v
	case TypeMove:
		m = Move{Pos: d.vec()}
	case TypeChat:
		v := Chat{Text: d.str()}
		if d.err == nil && len(v.Text) > MaxChatText {
			return nil, &DecodeError{fmt.Errorf("slp: chat text too long (%d bytes)", len(v.Text))}
		}
		m = v
	case TypeChatEvent:
		v := ChatEvent{From: trace.AvatarID(d.u64())}
		v.Pos = d.vec()
		v.Text = d.str()
		m = v
	case TypeMapRequest:
		m = MapRequest{}
	case TypeMapReply:
		v := MapReply{SimTime: d.i64()}
		n := int(d.u16())
		if d.err == nil && n > 1000 {
			return nil, &DecodeError{fmt.Errorf("slp: map reply claims %d entries", n)}
		}
		for i := 0; i < n && d.err == nil; i++ {
			id := trace.AvatarID(d.u64())
			x := float64(d.u8())
			y := float64(d.u8())
			z := float64(d.u8()) * 4
			v.Entries = append(v.Entries, MapEntry{ID: id, Pos: geom.V(x, y, z)})
		}
		m = v
	case TypeSubscribe:
		v := Subscribe{Tau: d.i64()}
		v.Aligned = d.bool()
		v.Radius = d.f32()
		v.Delta = d.bool()
		m = v
	case TypeObjectCreate:
		v := ObjectCreate{Kind: ObjectKind(d.u8())}
		v.Pos = d.vec()
		v.Range = d.f32()
		v.Period = d.i64()
		v.Collector = d.str()
		m = v
	case TypeObjectReply:
		m = ObjectReply{ObjectID: d.u64(), ExpiresAt: d.i64()}
	case TypePing:
		m = Ping{Seq: d.u32()}
	case TypePong:
		m = Pong{Seq: d.u32(), SimTime: d.i64()}
	case TypeLogout:
		m = Logout{}
	case TypeMapReplyFull:
		v := MapReplyFull{SimTime: d.i64()}
		n := int(d.u16())
		if d.err == nil && n > MaxFullEntries {
			return nil, &DecodeError{fmt.Errorf("slp: full map reply claims %d entries", n)}
		}
		for i := 0; i < n && d.err == nil; i++ {
			ent := FullEntry{ID: trace.AvatarID(d.u64())}
			ent.Pos = d.vec64()
			ent.Seated = d.bool()
			v.Entries = append(v.Entries, ent)
		}
		m = v
	case TypeMapDelta:
		v := MapDelta{SimTime: int64(d.uvarint())}
		v.Seq = uint32(d.uvarint())
		v.Keyframe = d.bool()
		// Both counts are claim-checked before any allocation (and before
		// the int conversion, so a 64-bit claim cannot wrap): a hostile
		// frame cannot make the decoder reserve more entries than the
		// encoder could ever have produced.
		un := d.uvarint()
		if d.err == nil && un > MaxDeltaEntries {
			return nil, &DecodeError{fmt.Errorf("slp: map delta claims %d updated entries", un)}
		}
		for i := 0; i < int(un) && d.err == nil; i++ {
			id := trace.AvatarID(d.uvarint())
			x := float64(d.u8())
			y := float64(d.u8())
			z := float64(d.u8()) * 4
			v.Updated = append(v.Updated, MapEntry{ID: id, Pos: geom.V(x, y, z)})
		}
		un = d.uvarint()
		if d.err == nil && un > MaxDeltaEntries {
			return nil, &DecodeError{fmt.Errorf("slp: map delta claims %d removed entries", un)}
		}
		for i := 0; i < int(un) && d.err == nil; i++ {
			v.Removed = append(v.Removed, trace.AvatarID(d.uvarint()))
		}
		m = v
	case TypePeerHello:
		v := PeerHello{Version: d.u8(), Region: d.u32()}
		v.Password = d.str()
		m = v
	case TypeTransfer:
		v := Transfer{From: d.u32(), To: d.u32()}
		v.Teleport = d.bool()
		v.Avatar = d.bytes()
		m = v
	case TypeTransferAck:
		m = TransferAck{Accepted: d.bool()}
	case TypeDirectoryRequest:
		m = DirectoryRequest{}
	case TypeDirectory:
		v := Directory{Estate: d.str()}
		v.Rows = d.u16()
		v.Cols = d.u16()
		v.SimTime = d.i64()
		v.Warp = d.f64()
		v.Duration = d.i64()
		v.Held = d.bool()
		v.QueryAddr = d.str()
		n := int(d.u16())
		if d.err == nil && n > maxDirRegions {
			return nil, &DecodeError{fmt.Errorf("slp: directory claims %d regions", n)}
		}
		for i := 0; i < n && d.err == nil; i++ {
			r := DirRegion{Name: d.str()}
			r.Addr = d.str()
			r.Origin.X = d.f64()
			r.Origin.Y = d.f64()
			r.Size = d.f64()
			v.Regions = append(v.Regions, r)
		}
		m = v
	case TypeClockStart:
		m = ClockStart{}
	case TypeClockStarted:
		m = ClockStarted{SimTime: d.i64()}
	case TypeQuery:
		v := Query{Target: QueryTarget(d.u8())}
		v.Region = int32(d.u32())
		v.Window = d.i64()
		m = v
	case TypeAnalysisReply:
		v := AnalysisReply{Target: QueryTarget(d.u8())}
		v.Region = int32(d.u32())
		v.Window = d.i64()
		v.SimTime = d.i64()
		v.FirstWindow = d.i64()
		v.Windows = d.i64()
		v.Sealed = d.bool()
		v.Total = d.u32()
		v.Offset = d.u32()
		v.Chunk = d.bytes()
		if d.err == nil && len(v.Chunk) > MaxAnalysisChunk {
			return nil, &DecodeError{fmt.Errorf("slp: analysis chunk claims %d bytes", len(v.Chunk))}
		}
		m = v
	case TypeStatsReply:
		v := StatsReply{SimTime: d.i64()}
		v.WindowSec = d.i64()
		v.FirstWindow = d.i64()
		v.Windows = d.i64()
		v.Sealed = d.bool()
		v.Regions = d.u32()
		v.Readers = d.u32()
		v.Dropped = d.u64()
		v.Queries = d.u64()
		v.WsSnapshots = d.u64()
		v.WsIncremental = d.u64()
		v.WsRebuilds = d.u64()
		m = v
	default:
		return nil, &DecodeError{fmt.Errorf("slp: unknown message type %d", payload[0])}
	}
	if err := d.finish(); err != nil {
		return nil, &DecodeError{err}
	}
	return m, nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m Message) error {
	payload, err := Marshal(m)
	if err != nil {
		return err
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// EncodeFrame marshals a message with its 2-byte length header already
// prepended — the exact bytes WriteMessage would put on the wire. The
// serving path encodes each per-tick push once with it and enqueues the
// same frame to every subscriber, instead of re-marshalling per session.
func EncodeFrame(m Message) ([]byte, error) {
	payload, err := Marshal(m)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 2+len(payload))
	binary.BigEndian.PutUint16(frame, uint16(len(payload)))
	copy(frame[2:], payload)
	return frame, nil
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n == 0 || n > MaxPayload {
		return nil, &DecodeError{fmt.Errorf("slp: bad frame length %d", n)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return Unmarshal(payload)
}
