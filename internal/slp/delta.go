package slp

import (
	"sort"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// DeltaTracker materialises a delta-encoded map subscription back into
// full coarse snapshots. Feed it every MapDelta the session receives in
// arrival order; each successfully applied delta yields the complete
// current view as a MapReply, byte-equivalent to what a plain (non-delta)
// subscription would have delivered for the same instant.
//
// The tracker is loss-aware: deltas carry a per-session sequence number,
// and a gap (a frame the consumer dropped or never received) desyncs the
// tracker — Apply then discards frames, returning ok=false, until the
// next keyframe re-anchors the view. Keyframes carry the full current
// view, so a desynced client converges after at most one keyframe
// interval. The tracker is not safe for concurrent use.
type DeltaTracker struct {
	synced  bool
	lastSeq uint32
	entries map[trace.AvatarID]geom.Vec
}

// Apply folds one delta frame into the tracked view. When the frame
// extends the view coherently (a keyframe, or the exact next sequence
// number while in sync), it returns the materialised full snapshot and
// ok=true; otherwise the tracker marks itself desynced and returns
// ok=false until a keyframe arrives.
func (t *DeltaTracker) Apply(d MapDelta) (MapReply, bool) {
	if t.entries == nil {
		t.entries = make(map[trace.AvatarID]geom.Vec)
	}
	if d.Keyframe {
		clear(t.entries)
		for _, ent := range d.Updated {
			t.entries[ent.ID] = ent.Pos
		}
		t.lastSeq = d.Seq
		t.synced = true
	} else {
		if !t.synced || d.Seq != t.lastSeq+1 {
			t.synced = false
			return MapReply{}, false
		}
		for _, ent := range d.Updated {
			t.entries[ent.ID] = ent.Pos
		}
		for _, id := range d.Removed {
			delete(t.entries, id)
		}
		t.lastSeq = d.Seq
	}
	reply := MapReply{SimTime: d.SimTime, Entries: make([]MapEntry, 0, len(t.entries))}
	for id, pos := range t.entries {
		reply.Entries = append(reply.Entries, MapEntry{ID: id, Pos: pos})
	}
	sort.Slice(reply.Entries, func(i, j int) bool { return reply.Entries[i].ID < reply.Entries[j].ID })
	return reply, true
}

// Synced reports whether the tracker holds a coherent view (a keyframe
// has arrived and no frame has been lost since).
func (t *DeltaTracker) Synced() bool { return t.synced }
