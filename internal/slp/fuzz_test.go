package slp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// fuzzSeedMessages is one instance of every message type, so the fuzzer
// starts from well-formed frames of each shape.
func fuzzSeedMessages() []Message {
	return []Message{
		Hello{Version: Version, Name: "crawler", Password: "pw", Observer: true},
		Welcome{AvatarID: 42, Land: "Dance Island", Size: 256, SimTime: 100, Warp: 600, Spawn: geom.V2(92, 128)},
		Error{Code: ErrBadRequest, Message: "nope"},
		Move{Pos: geom.V(1, 2, 3)},
		Chat{Text: "hello"},
		ChatEvent{From: 7, Pos: geom.V2(10, 10), Text: "hi"},
		MapRequest{},
		MapReply{SimTime: 50, Entries: []MapEntry{{ID: 1, Pos: geom.V(10, 20, 4)}, {ID: 2, Pos: geom.V(200, 100, 0)}}},
		Subscribe{Tau: 10, Aligned: true, Radius: 48, Delta: true},
		ObjectCreate{Kind: ObjectSensor, Pos: geom.V2(128, 128), Range: 96, Period: 10, Collector: "http://x/flush"},
		ObjectReply{ObjectID: 3, ExpiresAt: 7200},
		Ping{Seq: 1},
		Pong{Seq: 1, SimTime: 5},
		Logout{},
		MapReplyFull{SimTime: 60, Entries: []FullEntry{{ID: 9, Pos: geom.V(1.5, 2.25, 0.5), Seated: true}}},
		PeerHello{Version: Version, Region: 2, Password: "pw"},
		Transfer{From: 0, To: 1, Teleport: true, Avatar: []byte{1, 2, 3, 4}},
		TransferAck{Accepted: true},
		DirectoryRequest{},
		Directory{Estate: "Paper Archipelago", Rows: 1, Cols: 3, SimTime: 0, Warp: 600, Duration: 86400, Held: true,
			Regions: []DirRegion{{Name: "Apfel Land", Addr: "127.0.0.1:7600", Origin: geom.V2(0, 0), Size: 256}}},
		ClockStart{},
		ClockStarted{SimTime: 10},
		MapDelta{SimTime: 70, Seq: 1, Keyframe: true,
			Updated: []MapEntry{{ID: 1, Pos: geom.V(10, 20, 4)}, {ID: 2, Pos: geom.V(30, 40, 0)}}},
		MapDelta{SimTime: 80, Seq: 2,
			Updated: []MapEntry{{ID: 2, Pos: geom.V(31, 41, 0)}},
			Removed: []trace.AvatarID{1}},
	}
}

// FuzzUnmarshal hammers the payload decoder: it must never panic, must
// type every failure as *DecodeError, and must produce re-encodable
// messages for every payload it accepts.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		payload, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	// Adversarial seeds: truncations, bogus types, huge claimed counts.
	f.Add([]byte{})
	f.Add([]byte{byte(TypeMapReply), 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Add([]byte{byte(TypeHello), 2, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0xEE, 0xDE, 0xAD})
	// A map delta whose varint updated count claims 65535 entries, and
	// one whose removed count overstates the remaining payload
	// (layout: type, SimTime varint, Seq varint, keyframe byte, counts).
	f.Add([]byte{byte(TypeMapDelta), 1, 2, 1, 0xFF, 0xFF, 0x03})
	f.Add([]byte{byte(TypeMapDelta), 1, 2, 0, 0, 0xFF, 0xFF, 0x03})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := Unmarshal(payload)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode failure is not a DecodeError: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode (the decoder enforces the same
		// bounds the encoder does), and re-decode as the same type.
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message %T does not re-marshal: %v", m, err)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshalled %T does not decode: %v", m, err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("round trip changed type %s -> %s", m.Type(), m2.Type())
		}
	})
}

// FuzzReadMessage hammers the framing layer: arbitrary byte streams must
// produce either a message or a typed error, never a panic or a hang.
func FuzzReadMessage(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0})          // zero-length frame
	f.Add([]byte{0xFF, 0xFF, 1}) // frame longer than the stream
	f.Add([]byte{0x7F, 0xFF})    // header only
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		deadline := time.Now().Add(2 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("framing loop did not terminate")
			}
			if _, err := ReadMessage(r); err != nil {
				return // EOF or a decode error ends the stream
			}
		}
	})
}
