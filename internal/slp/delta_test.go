package slp

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

func entries(pairs ...MapEntry) []MapEntry { return pairs }

// TestDeltaTrackerAppliesStream: a keyframe followed by coherent deltas
// materialises the same snapshots an unfiltered subscription would have
// delivered, sorted by avatar ID.
func TestDeltaTrackerAppliesStream(t *testing.T) {
	var tr DeltaTracker
	key := MapDelta{SimTime: 10, Seq: 1, Keyframe: true,
		Updated: entries(MapEntry{ID: 2, Pos: geom.V(5, 5, 0)}, MapEntry{ID: 1, Pos: geom.V(1, 1, 0)})}
	got, ok := tr.Apply(key)
	if !ok || !tr.Synced() {
		t.Fatal("keyframe did not sync the tracker")
	}
	want := MapReply{SimTime: 10, Entries: entries(
		MapEntry{ID: 1, Pos: geom.V(1, 1, 0)}, MapEntry{ID: 2, Pos: geom.V(5, 5, 0)})}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keyframe view = %+v, want %+v", got, want)
	}

	// One avatar moves, one departs, one arrives.
	got, ok = tr.Apply(MapDelta{SimTime: 20, Seq: 2,
		Updated: entries(MapEntry{ID: 1, Pos: geom.V(2, 2, 0)}, MapEntry{ID: 3, Pos: geom.V(9, 9, 4)}),
		Removed: []trace.AvatarID{2}})
	if !ok {
		t.Fatal("coherent delta rejected")
	}
	want = MapReply{SimTime: 20, Entries: entries(
		MapEntry{ID: 1, Pos: geom.V(2, 2, 0)}, MapEntry{ID: 3, Pos: geom.V(9, 9, 4)})}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta view = %+v, want %+v", got, want)
	}
}

// TestDeltaTrackerResyncsAfterDroppedFrame: losing a delta desyncs the
// tracker, every following delta is discarded, and the next keyframe
// restores the exact current view — the dropped-frame client converges.
func TestDeltaTrackerResyncsAfterDroppedFrame(t *testing.T) {
	var tr DeltaTracker
	if _, ok := tr.Apply(MapDelta{SimTime: 10, Seq: 1, Keyframe: true,
		Updated: entries(MapEntry{ID: 1, Pos: geom.V(1, 1, 0)})}); !ok {
		t.Fatal("keyframe rejected")
	}
	// Seq 2 is lost in transit; seq 3 arrives next.
	if _, ok := tr.Apply(MapDelta{SimTime: 30, Seq: 3,
		Updated: entries(MapEntry{ID: 1, Pos: geom.V(3, 3, 0)})}); ok {
		t.Fatal("tracker applied a delta across a sequence gap")
	}
	if tr.Synced() {
		t.Fatal("tracker still reports synced after a gap")
	}
	// Later coherent-looking deltas must stay rejected until a keyframe.
	if _, ok := tr.Apply(MapDelta{SimTime: 40, Seq: 4,
		Updated: entries(MapEntry{ID: 1, Pos: geom.V(4, 4, 0)})}); ok {
		t.Fatal("tracker resynced without a keyframe")
	}
	got, ok := tr.Apply(MapDelta{SimTime: 50, Seq: 5, Keyframe: true,
		Updated: entries(MapEntry{ID: 7, Pos: geom.V(7, 7, 0)})})
	if !ok || !tr.Synced() {
		t.Fatal("keyframe did not resync the tracker")
	}
	want := MapReply{SimTime: 50, Entries: entries(MapEntry{ID: 7, Pos: geom.V(7, 7, 0)})}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resynced view = %+v, want %+v", got, want)
	}
	// And the stream continues coherently from the keyframe's sequence.
	if _, ok := tr.Apply(MapDelta{SimTime: 60, Seq: 6, Removed: []trace.AvatarID{7}}); !ok {
		t.Fatal("delta after resync rejected")
	}
}

// TestDeltaTrackerNeedsKeyframeFirst: deltas arriving before any
// keyframe (a subscriber joining mid-stream) are discarded.
func TestDeltaTrackerNeedsKeyframeFirst(t *testing.T) {
	var tr DeltaTracker
	if _, ok := tr.Apply(MapDelta{SimTime: 10, Seq: 4,
		Updated: entries(MapEntry{ID: 1, Pos: geom.V(1, 1, 0)})}); ok {
		t.Fatal("tracker accepted a delta before any keyframe")
	}
}

// TestMapDeltaRoundTrip: the wire codec quantises updated entries at
// CoarseLocationUpdate resolution and preserves every field.
func TestMapDeltaRoundTrip(t *testing.T) {
	in := MapDelta{SimTime: 99, Seq: 7, Keyframe: true,
		Updated: entries(MapEntry{ID: 3, Pos: geom.V(10, 20, 8)}, MapEntry{ID: 9, Pos: geom.V(200, 100, 0)}),
		Removed: []trace.AvatarID{4, 5}}
	payload, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

// TestMapDeltaDecodeBounds: claimed entry counts beyond MaxDeltaEntries
// are rejected as DecodeErrors before any allocation. The frames are
// hand-built in the varint wire layout: type, SimTime, Seq, keyframe
// byte, then the updated count (and, for the second case, an empty
// updated list followed by the removed count).
func TestMapDeltaDecodeBounds(t *testing.T) {
	header := []byte{byte(TypeMapDelta)}
	header = binary.AppendUvarint(header, 1) // SimTime
	header = binary.AppendUvarint(header, 1) // Seq
	header = append(header, 0)               // Keyframe

	overUpdated := binary.AppendUvarint(append([]byte(nil), header...), MaxDeltaEntries+1)
	overRemoved := binary.AppendUvarint(append([]byte(nil), header...), 0)
	overRemoved = binary.AppendUvarint(overRemoved, uint64(1)<<40)

	for _, tc := range []struct {
		name string
		bad  []byte
	}{{"updated", overUpdated}, {"removed", overRemoved}} {
		_, err := Unmarshal(tc.bad)
		var de *DecodeError
		if err == nil || !errors.As(err, &de) {
			t.Fatalf("overclaimed %s count not rejected as DecodeError: %v", tc.name, err)
		}
	}
}

// TestQuantizePosMatchesWire: QuantizePos must predict exactly what a
// decoded coarse entry carries, so the server's delta diffing (which
// compares quantised positions) never emits an entry the wire would
// render identically.
func TestQuantizePosMatchesWire(t *testing.T) {
	positions := []geom.Vec{
		geom.V(0, 0, 0), geom.V(10.4, 10.6, 3), geom.V(255.9, -3, 1021),
		geom.V(128.5, 127.49, 2.1),
	}
	for _, p := range positions {
		payload, err := Marshal(MapReply{SimTime: 1, Entries: entries(MapEntry{ID: 1, Pos: p})})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Unmarshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		got := m.(MapReply).Entries[0].Pos
		if want := QuantizePos(p); got != want {
			t.Errorf("QuantizePos(%v) = %v, wire carries %v", p, want, got)
		}
	}
}
