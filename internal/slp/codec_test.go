package slp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"slmob/internal/geom"
)

// roundTrip marshals and unmarshals a message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	payload, err := Marshal(m)
	if err != nil {
		t.Fatalf("marshal %T: %v", m, err)
	}
	out, err := Unmarshal(payload)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", m, err)
	}
	return out
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		Hello{Version: 1, Name: "crawler-01", Password: "hunter2"},
		Welcome{AvatarID: 42, Land: "Dance Island", Size: 256, SimTime: 1234, Warp: 60, Spawn: geom.V(92, 128, 0)},
		Error{Code: ErrLandFull, Message: "land full"},
		Move{Pos: geom.V(10.5, 20.25, 30)},
		Chat{Text: "hello everyone :)"},
		ChatEvent{From: 7, Pos: geom.V(1, 2, 3), Text: "hi"},
		MapRequest{},
		Subscribe{Tau: 10},
		ObjectCreate{Kind: ObjectSensor, Pos: geom.V(64, 64, 0), Range: 96, Period: 10, Collector: "http://127.0.0.1:8080/flush"},
		ObjectReply{ObjectID: 9, ExpiresAt: 7200},
		Ping{Seq: 77},
		Pong{Seq: 77, SimTime: 999},
		Logout{},
		MapReplyFull{SimTime: 60, Entries: []FullEntry{{ID: 9, Pos: geom.V(1.5, 2.25, 0.5), Seated: true}}},
		PeerHello{Version: Version, Region: 2, Password: "hunter2"},
		Transfer{From: 0, To: 1, Teleport: true, Avatar: []byte{9, 8, 7}},
		TransferAck{Accepted: true},
		DirectoryRequest{},
		Directory{Estate: "Paper Archipelago", Rows: 1, Cols: 3, SimTime: 7, Warp: 600, Duration: 86400, Held: true,
			Regions: []DirRegion{{Name: "Apfel Land", Addr: "127.0.0.1:7600", Origin: geom.V2(512, 0), Size: 256}}},
		ClockStart{},
		ClockStarted{SimTime: 11},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got.Type() != m.Type() {
			t.Errorf("%T: type %v != %v", m, got.Type(), m.Type())
		}
	}
}

// TestRoundTripEstateFidelity pins the estate facility's field fidelity:
// observer logins, aligned subscriptions, full-resolution entries, and
// float64 directory placements survive the wire exactly.
func TestRoundTripEstateFidelity(t *testing.T) {
	h := roundTrip(t, Hello{Version: Version, Name: "mon", Observer: true}).(Hello)
	if !h.Observer {
		t.Error("observer flag lost")
	}
	s := roundTrip(t, Subscribe{Tau: 10, Aligned: true}).(Subscribe)
	if s.Tau != 10 || !s.Aligned {
		t.Errorf("subscribe = %+v", s)
	}
	fe := FullEntry{ID: 1<<40 | 3, Pos: geom.V(12.062500000000004, 200.125, 1.75), Seated: true}
	mr := roundTrip(t, MapReplyFull{SimTime: 30, Entries: []FullEntry{fe}}).(MapReplyFull)
	if mr.SimTime != 30 || len(mr.Entries) != 1 || mr.Entries[0] != fe {
		t.Errorf("full map reply = %+v", mr)
	}
	tr := roundTrip(t, Transfer{From: 3, To: 4, Teleport: true, Avatar: []byte{1, 2, 3}}).(Transfer)
	if tr.From != 3 || tr.To != 4 || !tr.Teleport || !bytes.Equal(tr.Avatar, []byte{1, 2, 3}) {
		t.Errorf("transfer = %+v", tr)
	}
	d := roundTrip(t, Directory{Estate: "E", Rows: 4, Cols: 4, SimTime: 5, Warp: 1200.5, Duration: 100, Held: true,
		Regions: []DirRegion{{Name: "R", Addr: "a:1", Origin: geom.V2(768, 256), Size: 256}}}).(Directory)
	if d.Warp != 1200.5 || !d.Held || d.Regions[0].Origin != geom.V2(768, 256) || d.Regions[0].Size != 256 {
		t.Errorf("directory = %+v", d)
	}
}

func TestRoundTripFieldFidelity(t *testing.T) {
	w := roundTrip(t, Welcome{AvatarID: 42, Land: "Isle of View", Size: 256,
		SimTime: -5, Warp: 120, Spawn: geom.V(122, 124, 0)}).(Welcome)
	if w.AvatarID != 42 || w.Land != "Isle of View" || w.SimTime != -5 || w.Warp != 120 {
		t.Errorf("welcome fields lost: %+v", w)
	}
	m := roundTrip(t, Move{Pos: geom.V(1.5, 2.5, 3.5)}).(Move)
	if m.Pos != geom.V(1.5, 2.5, 3.5) {
		t.Errorf("move pos = %v", m.Pos)
	}
}

func TestMapReplyQuantization(t *testing.T) {
	in := MapReply{
		SimTime: 500,
		Entries: []MapEntry{
			{ID: 1, Pos: geom.V(10.4, 200.6, 21)},
			{ID: 2, Pos: geom.V(0, 0, 0)}, // the seated sentinel survives
			{ID: 3, Pos: geom.V(300, -5, 2000)},
		},
	}
	out := roundTrip(t, in).(MapReply)
	if out.SimTime != 500 || len(out.Entries) != 3 {
		t.Fatalf("reply = %+v", out)
	}
	// 1 m quantisation in x/y; 4 m in z.
	if out.Entries[0].Pos.X != 10 || out.Entries[0].Pos.Y != 201 {
		t.Errorf("entry 0 = %v", out.Entries[0].Pos)
	}
	if out.Entries[0].Pos.Z != 20 { // 21/4 = 5.25 -> 5 (round 5.25+0.5=5) -> *4 = 20
		t.Errorf("entry 0 z = %v", out.Entries[0].Pos.Z)
	}
	if !out.Entries[1].Pos.IsZero() {
		t.Errorf("seated sentinel lost: %v", out.Entries[1].Pos)
	}
	// Out-of-range coordinates clamp to the byte range.
	if out.Entries[2].Pos.X != 255 || out.Entries[2].Pos.Y != 0 {
		t.Errorf("clamping failed: %v", out.Entries[2].Pos)
	}
}

func TestChatTooLongRejected(t *testing.T) {
	if _, err := Marshal(Chat{Text: strings.Repeat("x", MaxChatText+1)}); err == nil {
		t.Error("overlong chat accepted by Marshal")
	}
	// The decoder enforces the same bound on crafted wire payloads — the
	// invariant that keeps relayChat's ChatEvent re-encode loss-free.
	over := MaxChatText + 1
	payload := []byte{byte(TypeChat), byte(over >> 8), byte(over)}
	payload = append(payload, strings.Repeat("x", over)...)
	if _, err := Unmarshal(payload); err == nil {
		t.Error("overlong chat accepted by Unmarshal")
	}
	// The bound itself is admissible end to end.
	max, err := Marshal(Chat{Text: strings.Repeat("x", MaxChatText)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(max); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                       // invalid type
		{200},                     // unknown type
		{byte(TypeWelcome), 1, 2}, // truncated
		{byte(TypeHello)},         // truncated
	}
	for _, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("garbage %v accepted", c)
		}
	}
	// Trailing bytes must be rejected.
	payload, _ := Marshal(Ping{Seq: 1})
	payload = append(payload, 0xFF)
	if _, err := Unmarshal(payload); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnmarshalNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data) // must not panic, error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{Ping{Seq: 1}, Chat{Text: "two"}, Logout{}}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("read %d: type %v != %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestFramingRejectsBadLength(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 1})); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeHello.String() != "hello" || TypeMapReply.String() != "map-reply" {
		t.Error("type names wrong")
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type name empty")
	}
}

func TestMapReplyTooLargeRejected(t *testing.T) {
	reply := MapReply{Entries: make([]MapEntry, 1001)}
	if _, err := Marshal(reply); err == nil {
		t.Error("oversized map reply accepted")
	}
}
