// Package slp implements the Second Life-style wire protocol spoken
// between the metaverse server (internal/server) and external clients —
// most importantly the measurement crawler, which uses the protocol's
// coarse map facility exactly as the paper's crawler used libsecondlife's
// map feature.
//
// Framing is a 2-byte big-endian payload length followed by the payload;
// the first payload byte is the message type. Positions in MapReply are
// quantised to 1 metre in x and y and 4 metres in z, replicating the
// CoarseLocationUpdate resolution the real client received. All multi-byte
// integers are big-endian.
package slp

import (
	"fmt"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// Version is the protocol version carried in Hello and PeerHello.
// Version 2 added the estate facility: observer logins, full-resolution
// map replies, the directory/clock endpoints, and inter-server avatar
// transfers. Version 3 added the analytics query facility: the
// Query/AnalysisReply/StatsReply exchange and the directory's
// query-endpoint address. Version 4 added interest management:
// Subscribe grew a radius and a delta-encoding opt-in, and MapDelta
// carries moved/arrived/departed entries between keyframes.
const Version = 4

// MaxPayload bounds a frame's payload size (the length header is 16-bit,
// so it must stay below 65536).
const MaxPayload = 32 * 1024

// MsgType identifies a message.
type MsgType byte

// Message type codes. The zero value is invalid so that an all-zeros
// frame cannot masquerade as a message.
const (
	TypeInvalid MsgType = iota
	TypeHello
	TypeWelcome
	TypeError
	TypeMove
	TypeChat
	TypeChatEvent
	TypeMapRequest
	TypeMapReply
	TypeSubscribe
	TypeObjectCreate
	TypeObjectReply
	TypePing
	TypePong
	TypeLogout
	TypeMapReplyFull
	TypePeerHello
	TypeTransfer
	TypeTransferAck
	TypeDirectoryRequest
	TypeDirectory
	TypeClockStart
	TypeClockStarted
	TypeQuery
	TypeAnalysisReply
	TypeStatsReply
	TypeMapDelta
)

// String returns the message type name.
func (t MsgType) String() string {
	names := [...]string{"invalid", "hello", "welcome", "error", "move", "chat",
		"chat-event", "map-request", "map-reply", "subscribe", "object-create",
		"object-reply", "ping", "pong", "logout", "map-reply-full", "peer-hello",
		"transfer", "transfer-ack", "directory-request", "directory",
		"clock-start", "clock-started", "query", "analysis-reply", "stats-reply",
		"map-delta"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the message's wire type code.
	Type() MsgType
}

// Hello opens a session: the client logs in as an avatar, exactly like the
// stripped-down libsecondlife client of the paper ("requires a valid
// login/password to connect").
type Hello struct {
	Version  byte
	Name     string
	Password string
	// Observer requests a measurement-grade session: the server admits no
	// avatar for it (nothing to perturb, no capacity slot consumed) and
	// answers its map traffic with full-resolution MapReplyFull frames
	// including the seated flag. Estate monitors use it; a classic crawler
	// leaves it unset and appears in-world as an avatar, as in the paper.
	Observer bool
}

// Type implements Message.
func (Hello) Type() MsgType { return TypeHello }

// Welcome acknowledges a login.
type Welcome struct {
	// AvatarID is the server-assigned identity; the crawler filters its
	// own entry out of map replies with it.
	AvatarID uint64
	// Land and Size describe the hosted land.
	Land string
	Size float64
	// SimTime is the current simulation clock in seconds.
	SimTime int64
	// Warp is the number of simulated seconds per wall-clock second.
	Warp float64
	// Spawn is the avatar's initial position.
	Spawn geom.Vec
}

// Type implements Message.
func (Welcome) Type() MsgType { return TypeWelcome }

// ErrCode classifies protocol errors.
type ErrCode byte

// Error codes.
const (
	ErrNone ErrCode = iota
	ErrBadVersion
	ErrLandFull
	ErrBadCredentials
	ErrObjectsForbidden
	ErrBadRequest
	// ErrMalformed reports an undecodable frame: instead of silently
	// dropping the connection, the server names the protocol violation
	// before closing.
	ErrMalformed
	// ErrNotEstate reports an estate-only request (directory, clock,
	// transfer) sent to a host that is not part of an estate.
	ErrNotEstate
)

// Error reports a request failure.
type Error struct {
	Code    ErrCode
	Message string
}

// Type implements Message.
func (Error) Type() MsgType { return TypeError }

// Move asks the server to relocate the client's avatar.
type Move struct {
	Pos geom.Vec
}

// Type implements Message.
func (Move) Type() MsgType { return TypeMove }

// MaxChatText bounds a Chat utterance's text in bytes, enforced at both
// encode and decode. Beyond matching Second Life's short chat lines, the
// bound is what makes the server's relay loss-free by construction: a
// relayed ChatEvent is the admitted text plus ~29 bytes of From/Pos
// framing, so it always re-encodes under MaxPayload.
const MaxChatText = 255

// Chat broadcasts a local chat message (server-enforced ~20 m audibility).
type Chat struct {
	Text string
}

// Type implements Message.
func (Chat) Type() MsgType { return TypeChat }

// ChatEvent delivers a chat utterance heard near the client's avatar.
type ChatEvent struct {
	From trace.AvatarID
	Pos  geom.Vec
	Text string
}

// Type implements Message.
func (ChatEvent) Type() MsgType { return TypeChatEvent }

// MapRequest polls the land map once.
type MapRequest struct{}

// Type implements Message.
func (MapRequest) Type() MsgType { return TypeMapRequest }

// MapEntry is one avatar on the coarse map. Coordinates are already
// dequantised back to metres on decode (x, y at 1 m, z at 4 m resolution).
type MapEntry struct {
	ID  trace.AvatarID
	Pos geom.Vec
}

// MapReply carries a full-land snapshot: the position of every connected
// avatar, bounded only by the land's ~100-avatar cap.
type MapReply struct {
	SimTime int64
	Entries []MapEntry
}

// Type implements Message.
func (MapReply) Type() MsgType { return TypeMapReply }

// Subscribe requests a MapReply push every Tau simulated seconds,
// replacing hand-rolled polling under time warp.
type Subscribe struct {
	Tau int64
	// Aligned anchors pushes to absolute multiples of Tau on the server's
	// simulation clock rather than to the subscription instant. Estate
	// monitors subscribe aligned so every region's snapshots share one
	// timeline.
	Aligned bool
	// Radius, when positive, requests an area-of-interest subscription:
	// pushes carry only entities within Radius metres (ground plane) of
	// the session's avatar instead of the whole land. Observer sessions
	// ignore it — the measurement path stays full-resolution, full-land.
	Radius float64
	// Delta opts into delta encoding: pushes arrive as MapDelta frames
	// carrying only the entries that moved, appeared, or departed since
	// the previous push, with a periodic full keyframe for resync.
	// Requires a client that understands MapDelta (see DeltaTracker).
	Delta bool
}

// Type implements Message.
func (Subscribe) Type() MsgType { return TypeSubscribe }

// ObjectKind classifies deployable objects.
type ObjectKind byte

// Object kinds.
const (
	ObjectSensor ObjectKind = 1
)

// ObjectCreate deploys a scripted object (a virtual sensor) on the land,
// subject to the land's object policy.
type ObjectCreate struct {
	Kind ObjectKind
	Pos  geom.Vec
	// Range is the sensing radius in metres (the platform caps it at 96).
	Range float64
	// Period is the scan period in simulated seconds.
	Period int64
	// Collector is the HTTP URL the sensor flushes its cache to.
	Collector string
}

// Type implements Message.
func (ObjectCreate) Type() MsgType { return TypeObjectCreate }

// ObjectReply acknowledges an ObjectCreate.
type ObjectReply struct {
	ObjectID uint64
	// ExpiresAt is the sim time at which a public land reclaims the
	// object; 0 means no expiry (sandbox).
	ExpiresAt int64
}

// Type implements Message.
func (ObjectReply) Type() MsgType { return TypeObjectReply }

// Ping measures liveness; the server echoes Seq in a Pong.
type Ping struct {
	Seq uint32
}

// Type implements Message.
func (Ping) Type() MsgType { return TypePing }

// Pong answers a Ping.
type Pong struct {
	Seq     uint32
	SimTime int64
}

// Type implements Message.
func (Pong) Type() MsgType { return TypePong }

// Logout closes the session cleanly.
type Logout struct{}

// Type implements Message.
func (Logout) Type() MsgType { return TypeLogout }

// FullEntry is one avatar on the full-resolution map: float64 position
// and the seated flag, with none of the CoarseLocationUpdate quantisation.
type FullEntry struct {
	ID     trace.AvatarID
	Pos    geom.Vec
	Seated bool
}

// MaxFullEntries bounds a MapReplyFull frame (each entry is 33 bytes and
// the frame must fit MaxPayload).
const MaxFullEntries = 900

// MapReplyFull is the measurement-grade land snapshot served to observer
// sessions: exact positions plus the seated state, so an estate monitor
// reproduces the in-process trace bit for bit. Regular avatars keep
// receiving the quantised MapReply of the 2008 service.
type MapReplyFull struct {
	SimTime int64
	Entries []FullEntry
}

// Type implements Message.
func (MapReplyFull) Type() MsgType { return TypeMapReplyFull }

// MaxDeltaEntries bounds each of a MapDelta's lists, mirroring the
// coarse MapReply's entry cap: a delta never describes more avatars than
// a full snapshot could carry.
const MaxDeltaEntries = 1000

// MapDelta is a delta-encoded map push for subscribers that opted in
// with Subscribe.Delta: Updated carries the coarse-quantised entries
// that moved (at CoarseLocationUpdate resolution) or newly appeared
// since the subscriber's previous push, Removed the avatars that left
// the subscriber's view. Seq increments by one per push on the session;
// a client that observes a gap lost a frame and must discard its state
// until the next keyframe. Keyframe frames carry the complete current
// view in Updated (Removed empty) and re-anchor Seq, so a desynced
// client converges after at most one keyframe interval.
//
// On the wire, SimTime, Seq, both counts, and every avatar ID are
// LEB128 varints (positions stay the 3-byte coarse quantisation): this
// is the protocol's highest-rate per-session message and its values are
// small, so varints roughly halve the steady-state entry cost.
type MapDelta struct {
	SimTime  int64
	Seq      uint32
	Keyframe bool
	Updated  []MapEntry
	Removed  []trace.AvatarID
}

// Type implements Message.
func (MapDelta) Type() MsgType { return TypeMapDelta }

// PeerHello opens an inter-server link: region servers of one estate
// authenticate to each other with it before exchanging avatar transfers.
type PeerHello struct {
	Version byte
	// Region is the dialling server's region index.
	Region uint32
	// Password is the estate's shared secret (the login password).
	Password string
}

// Type implements Message.
func (PeerHello) Type() MsgType { return TypePeerHello }

// Transfer hands a border-crossing avatar to a neighbouring region
// server: identity, re-based position, and behaviour state travel as an
// opaque world capsule, so the destination resumes the avatar exactly
// where the source left it.
type Transfer struct {
	// From and To are estate region indices.
	From, To uint32
	// Teleport marks a point-of-interest teleport rather than a walked
	// border crossing.
	Teleport bool
	// Avatar is the encoded avatar capsule (world package format).
	Avatar []byte
}

// Type implements Message.
func (Transfer) Type() MsgType { return TypeTransfer }

// TransferAck answers a Transfer. A refused handoff (destination at its
// avatar cap) is a normal protocol outcome, not an error: the source
// region turns the avatar back.
type TransferAck struct {
	Accepted bool
}

// Type implements Message.
func (TransferAck) Type() MsgType { return TypeTransferAck }

// DirectoryRequest asks an estate directory endpoint for the grid
// description.
type DirectoryRequest struct{}

// Type implements Message.
func (DirectoryRequest) Type() MsgType { return TypeDirectoryRequest }

// DirRegion describes one region of a served estate: where to connect
// and where the region sits in estate-global coordinates.
type DirRegion struct {
	Name string
	// Addr is the region server's TCP address.
	Addr string
	// Origin is the region's offset in estate coordinates (metres).
	Origin geom.Vec
	// Size is the region's edge length in metres.
	Size float64
}

// Directory describes a served estate: the grid shape, the shared clock,
// and one entry per region. Clients discover the grid here, dial each
// region, and align their monitoring on the shared clock.
type Directory struct {
	Estate     string
	Rows, Cols uint16
	// SimTime is the shared clock at reply time; Warp its rate.
	SimTime int64
	Warp    float64
	// Duration is the estate's scheduled measurement length in simulated
	// seconds.
	Duration int64
	// Held reports that the shared clock has not started yet: the estate
	// waits for a ClockStart, so monitors can connect before tick one.
	Held bool
	// QueryAddr is the live analytics query endpoint's TCP address;
	// empty when the estate serves no analytics.
	QueryAddr string
	Regions   []DirRegion
}

// Type implements Message.
func (Directory) Type() MsgType { return TypeDirectory }

// ClockStart releases a held estate clock (idempotent).
type ClockStart struct{}

// Type implements Message.
func (ClockStart) Type() MsgType { return TypeClockStart }

// ClockStarted acknowledges a ClockStart with the shared clock value.
type ClockStarted struct {
	SimTime int64
}

// Type implements Message.
func (ClockStarted) Type() MsgType { return TypeClockStarted }

// QueryTarget selects what a Query asks for.
type QueryTarget byte

// Query targets.
const (
	// QueryCumulative asks for the merge of every sealed window so far —
	// or, after the run ends, the whole-trace Analysis.
	QueryCumulative QueryTarget = 1
	// QueryWindow asks for one sealed window by index.
	QueryWindow QueryTarget = 2
	// QueryStats asks for the service's counters (a StatsReply).
	QueryStats QueryTarget = 3
)

// Query asks the analytics endpoint for a serialised Analysis or for
// service counters. One Query yields one StatsReply, one Error, or one
// or more AnalysisReply chunks carrying a core analysis blob.
type Query struct {
	Target QueryTarget
	// Region selects a region-local analysis; -1 selects the
	// estate-global one.
	Region int32
	// Window is the window index for QueryWindow; -1 selects the most
	// recently sealed window. Ignored for other targets.
	Window int64
}

// Type implements Message.
func (Query) Type() MsgType { return TypeQuery }

// MaxAnalysisChunk bounds one AnalysisReply's Chunk so the frame stays
// comfortably under MaxPayload alongside the fixed header fields.
const MaxAnalysisChunk = 24 * 1024

// AnalysisReply carries one chunk of a serialised Analysis blob
// (core.EncodeAnalysis format). Blobs larger than MaxAnalysisChunk span
// several replies; every chunk repeats the header, and the client
// reassembles until Offset+len(Chunk) == Total. A reply with Total 0
// means no analysis exists yet for the request (no window sealed).
type AnalysisReply struct {
	// Target, Region, and Window echo the query (Window resolved to the
	// actual index when the query asked for the latest).
	Target QueryTarget
	Region int32
	Window int64
	// SimTime is the shared clock at snapshot-publish time.
	SimTime int64
	// FirstWindow and Windows describe the retained window range:
	// indices [FirstWindow, FirstWindow+Windows) have been sealed.
	FirstWindow int64
	Windows     int64
	// Sealed reports that the run has ended and the cumulative analysis
	// is the final whole-trace one.
	Sealed bool
	// Total is the full blob length; Offset is this chunk's position.
	Total  uint32
	Offset uint32
	Chunk  []byte
}

// Type implements Message.
func (AnalysisReply) Type() MsgType { return TypeAnalysisReply }

// StatsReply answers a QueryStats with the analytics service's counters.
type StatsReply struct {
	// SimTime is the shared clock at publish time; WindowSec the
	// analysis window length.
	SimTime   int64
	WindowSec int64
	// FirstWindow and Windows describe the retained sealed-window range.
	FirstWindow int64
	Windows     int64
	// Sealed reports that the run has ended.
	Sealed bool
	// Regions is the estate's region count (1 for a single land).
	Regions uint32
	// Readers is the number of currently connected analytics readers.
	Readers uint32
	// Dropped counts readers disconnected by the drop-slow-reader
	// policy; Queries counts queries answered.
	Dropped uint64
	Queries uint64
	// Workspace counters: snapshots processed, incremental applications,
	// and full rebuilds across the analysis pipeline.
	WsSnapshots   uint64
	WsIncremental uint64
	WsRebuilds    uint64
}

// Type implements Message.
func (StatsReply) Type() MsgType { return TypeStatsReply }
