// Package slp implements the Second Life-style wire protocol spoken
// between the metaverse server (internal/server) and external clients —
// most importantly the measurement crawler, which uses the protocol's
// coarse map facility exactly as the paper's crawler used libsecondlife's
// map feature.
//
// Framing is a 2-byte big-endian payload length followed by the payload;
// the first payload byte is the message type. Positions in MapReply are
// quantised to 1 metre in x and y and 4 metres in z, replicating the
// CoarseLocationUpdate resolution the real client received. All multi-byte
// integers are big-endian.
package slp

import (
	"fmt"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// Version is the protocol version carried in Hello.
const Version = 1

// MaxPayload bounds a frame's payload size.
const MaxPayload = 16 * 1024

// MsgType identifies a message.
type MsgType byte

// Message type codes. The zero value is invalid so that an all-zeros
// frame cannot masquerade as a message.
const (
	TypeInvalid MsgType = iota
	TypeHello
	TypeWelcome
	TypeError
	TypeMove
	TypeChat
	TypeChatEvent
	TypeMapRequest
	TypeMapReply
	TypeSubscribe
	TypeObjectCreate
	TypeObjectReply
	TypePing
	TypePong
	TypeLogout
)

// String returns the message type name.
func (t MsgType) String() string {
	names := [...]string{"invalid", "hello", "welcome", "error", "move", "chat",
		"chat-event", "map-request", "map-reply", "subscribe", "object-create",
		"object-reply", "ping", "pong", "logout"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// Message is implemented by every protocol message.
type Message interface {
	// Type returns the message's wire type code.
	Type() MsgType
}

// Hello opens a session: the client logs in as an avatar, exactly like the
// stripped-down libsecondlife client of the paper ("requires a valid
// login/password to connect").
type Hello struct {
	Version  byte
	Name     string
	Password string
}

// Type implements Message.
func (Hello) Type() MsgType { return TypeHello }

// Welcome acknowledges a login.
type Welcome struct {
	// AvatarID is the server-assigned identity; the crawler filters its
	// own entry out of map replies with it.
	AvatarID uint64
	// Land and Size describe the hosted land.
	Land string
	Size float64
	// SimTime is the current simulation clock in seconds.
	SimTime int64
	// Warp is the number of simulated seconds per wall-clock second.
	Warp float64
	// Spawn is the avatar's initial position.
	Spawn geom.Vec
}

// Type implements Message.
func (Welcome) Type() MsgType { return TypeWelcome }

// ErrCode classifies protocol errors.
type ErrCode byte

// Error codes.
const (
	ErrNone ErrCode = iota
	ErrBadVersion
	ErrLandFull
	ErrBadCredentials
	ErrObjectsForbidden
	ErrBadRequest
)

// Error reports a request failure.
type Error struct {
	Code    ErrCode
	Message string
}

// Type implements Message.
func (Error) Type() MsgType { return TypeError }

// Move asks the server to relocate the client's avatar.
type Move struct {
	Pos geom.Vec
}

// Type implements Message.
func (Move) Type() MsgType { return TypeMove }

// Chat broadcasts a local chat message (server-enforced ~20 m audibility).
type Chat struct {
	Text string
}

// Type implements Message.
func (Chat) Type() MsgType { return TypeChat }

// ChatEvent delivers a chat utterance heard near the client's avatar.
type ChatEvent struct {
	From trace.AvatarID
	Pos  geom.Vec
	Text string
}

// Type implements Message.
func (ChatEvent) Type() MsgType { return TypeChatEvent }

// MapRequest polls the land map once.
type MapRequest struct{}

// Type implements Message.
func (MapRequest) Type() MsgType { return TypeMapRequest }

// MapEntry is one avatar on the coarse map. Coordinates are already
// dequantised back to metres on decode (x, y at 1 m, z at 4 m resolution).
type MapEntry struct {
	ID  trace.AvatarID
	Pos geom.Vec
}

// MapReply carries a full-land snapshot: the position of every connected
// avatar, bounded only by the land's ~100-avatar cap.
type MapReply struct {
	SimTime int64
	Entries []MapEntry
}

// Type implements Message.
func (MapReply) Type() MsgType { return TypeMapReply }

// Subscribe requests a MapReply push every Tau simulated seconds,
// replacing hand-rolled polling under time warp.
type Subscribe struct {
	Tau int64
}

// Type implements Message.
func (Subscribe) Type() MsgType { return TypeSubscribe }

// ObjectKind classifies deployable objects.
type ObjectKind byte

// Object kinds.
const (
	ObjectSensor ObjectKind = 1
)

// ObjectCreate deploys a scripted object (a virtual sensor) on the land,
// subject to the land's object policy.
type ObjectCreate struct {
	Kind ObjectKind
	Pos  geom.Vec
	// Range is the sensing radius in metres (the platform caps it at 96).
	Range float64
	// Period is the scan period in simulated seconds.
	Period int64
	// Collector is the HTTP URL the sensor flushes its cache to.
	Collector string
}

// Type implements Message.
func (ObjectCreate) Type() MsgType { return TypeObjectCreate }

// ObjectReply acknowledges an ObjectCreate.
type ObjectReply struct {
	ObjectID uint64
	// ExpiresAt is the sim time at which a public land reclaims the
	// object; 0 means no expiry (sandbox).
	ExpiresAt int64
}

// Type implements Message.
func (ObjectReply) Type() MsgType { return TypeObjectReply }

// Ping measures liveness; the server echoes Seq in a Pong.
type Ping struct {
	Seq uint32
}

// Type implements Message.
func (Ping) Type() MsgType { return TypePing }

// Pong answers a Ping.
type Pong struct {
	Seq     uint32
	SimTime int64
}

// Type implements Message.
func (Pong) Type() MsgType { return TypePong }

// Logout closes the session cleanly.
type Logout struct{}

// Type implements Message.
func (Logout) Type() MsgType { return TypeLogout }
