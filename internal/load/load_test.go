package load

import (
	"context"
	"testing"
	"time"
)

// TestLoadSmoke runs the harness end to end against a self-hosted paper
// estate: every client must connect, survive the run, and see traffic —
// zero server faults, pushes flowing to observers, replies flowing to
// readers, and a decodable sealed analysis at the end.
func TestLoadSmoke(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Preset:      "paper",
		Seed:        3,
		SimDuration: 1800,
		Warp:        2000,
		SimWorkers:  2,
		Window:      600,
		Observers:   30,
		Readers:     20,
		RunFor:      5 * time.Second,
		PollEvery:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 30 + 20; rep.Connected != want {
		t.Errorf("connected = %d, want %d (failures: %d, errors: %v)",
			rep.Connected, want, rep.ConnectFailures, rep.Errors)
	}
	if rep.ServerFaults != 0 {
		t.Errorf("server faults = %d, want 0 (errors: %v)", rep.ServerFaults, rep.Errors)
	}
	if rep.Pushes == 0 {
		t.Error("observers received no map pushes")
	}
	if rep.Replies == 0 {
		t.Error("readers received no analytics replies")
	}
	if rep.LatencyMs.Max <= 0 {
		t.Error("no reader latency recorded")
	}
	// The sim duration (1800s at warp 2000 ≈ 0.9s wall) elapses within
	// the load phase, so the final analysis is sealed and decodable.
	if !rep.FinalSealed {
		t.Error("final service state not sealed")
	}
	if rep.FinalDigest == "" {
		t.Error("no final cumulative digest; sealed analysis not decodable")
	}
	if rep.Regions != 3 || rep.Estate == "" {
		t.Errorf("estate = %q with %d regions, want the 1x3 paper estate", rep.Estate, rep.Regions)
	}
	// Self-hosted runs report the tick engine's sustained timing.
	if rep.SimWorkers != 2 {
		t.Errorf("sim workers = %d, want the configured 2", rep.SimWorkers)
	}
	if rep.TickIntervals == 0 || rep.TickSteps == 0 {
		t.Errorf("tick timing not reported: %d intervals / %d steps", rep.TickIntervals, rep.TickSteps)
	}
	if rep.TickMaxMs <= 0 || rep.TickBudgetMs <= 0 {
		t.Errorf("tick durations not reported: max %.3fms budget %.3fms", rep.TickMaxMs, rep.TickBudgetMs)
	}
}
