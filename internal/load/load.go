// Package load is the serving-path load harness: it floods a live
// estate with concurrent slp clients — observer monitors subscribed to
// map pushes, optional in-world avatars, and analytics readers polling
// the query endpoint — and reports connection counts, reply latency
// quantiles, and server faults. The CI smoke gate runs it against the
// city-scale preset and requires every connection to survive: under the
// drop-slow-consumer policy a healthy client must never be
// disconnected, no matter how many of them there are.
package load

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slmob"
	"slmob/internal/slp"
)

// Config configures one load run.
type Config struct {
	// Directory aims the harness at an already-running estate's
	// directory endpoint. Empty self-hosts a preset estate (held clock,
	// released once every client is connected).
	Directory string
	// Preset names the self-hosted estate: "paper" (1×3), "mainland"
	// (4×4), or "city" (8×8). Default "paper".
	Preset string
	// Seed seeds the self-hosted estate (default 1).
	Seed uint64
	// SimDuration overrides the preset's simulated duration (seconds).
	SimDuration int64
	// Warp is the self-hosted clock rate (default 600).
	Warp float64
	// SimWorkers steps the self-hosted estate's regions concurrently on
	// that many goroutines per tick (0 or 1: serial). Worker count never
	// changes simulation results, only tick wall time.
	SimWorkers int
	// Window is the self-hosted analysis window (default 600).
	Window int64
	// Observers, Avatars, AOIAvatars, and Readers size the client mix:
	// observer monitors subscribe to full-resolution map pushes, avatars
	// log in as in-world clients on whole-land coarse pushes, AOI avatars
	// subscribe with an area-of-interest radius (and optionally delta
	// encoding), readers poll the analytics query endpoint.
	Observers  int
	Avatars    int
	AOIAvatars int
	Readers    int
	// AOIRadius is the AOI avatars' subscription radius in metres
	// (default 96 — the widest sensor/contact range the paper studies).
	AOIRadius float64
	// AOIDelta opts the AOI avatars into MapDelta-encoded pushes.
	AOIDelta bool
	// Tau is the observers' subscription period in sim seconds (default:
	// the paper's 10 s).
	Tau int64
	// Password is the estate's login password.
	Password string
	// RunFor bounds the load phase in wall time (default 10 s); the run
	// also ends when a self-hosted estate reaches its duration.
	RunFor time.Duration
	// PollEvery is each reader's query period (default 50 ms).
	PollEvery time.Duration
	// TickEvery is the self-hosted estate's wall-clock tick interval —
	// and therefore the per-interval budget that TickOverBudget counts
	// against (default 1 ms, the harness's low-latency pacing).
	TickEvery time.Duration
	// DialTimeout bounds every dial and query exchange (default 10 s).
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Preset == "" {
		c.Preset = "paper"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warp <= 0 {
		c.Warp = 600
	}
	if c.Window <= 0 {
		c.Window = 600
	}
	if c.Tau <= 0 {
		c.Tau = slmob.PaperTau
	}
	if c.AOIRadius <= 0 {
		c.AOIRadius = 96
	}
	if c.RunFor <= 0 {
		c.RunFor = 10 * time.Second
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 50 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.TickEvery <= 0 {
		c.TickEvery = time.Millisecond
	}
	return c
}

// Quantiles summarise a latency sample in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Report is the run's outcome, JSON-ready for the CI gate.
type Report struct {
	Estate  string `json:"estate"`
	Regions int    `json:"regions"`

	Observers  int `json:"observers"`
	Avatars    int `json:"avatars"`
	AOIAvatars int `json:"aoi_avatars"`
	Readers    int `json:"readers"`

	// Connected counts clients that completed their handshake;
	// ConnectFailures those that never got in.
	Connected       int `json:"connected"`
	ConnectFailures int `json:"connect_failures"`

	Cores        int     `json:"cores"`
	ConnsPerCore float64 `json:"conns_per_core"`

	// Pushes counts map-push frames received by observer and avatar
	// sessions, measured at the client wire layer — the same layer as
	// PushBytesTotal, so BytesPerPush stays consistent even when a
	// lagging consumer drops materialised snapshots. Replies counts the
	// analytics replies received by readers.
	Pushes  uint64 `json:"pushes"`
	Replies uint64 `json:"replies"`

	// PushBytesTotal sums the wire bytes of the map pushes themselves
	// (framing included; chat and control traffic excluded);
	// BytesPerPush divides it by Pushes. Mix breaks both down by client
	// kind — the number the AOI bandwidth gate reads. BytesTotal is all
	// inbound bytes across every push session, handshake and chat
	// included, for the whole-connection view.
	PushBytesTotal uint64               `json:"push_bytes_total"`
	BytesPerPush   float64              `json:"bytes_per_push"`
	BytesTotal     uint64               `json:"bytes_total"`
	Mix            map[string]*MixStats `json:"mix,omitempty"`

	// LatencyMs summarises reader query round-trips.
	LatencyMs Quantiles `json:"latency_ms"`

	// ServerFaults counts healthy clients the server failed mid-run —
	// the number the CI gate requires to be zero. Policy drops of
	// wedged clients are not faults (and no harness client wedges).
	ServerFaults int            `json:"server_faults"`
	Errors       map[string]int `json:"errors,omitempty"`

	// Service-side counters from the analytics endpoint's final stats.
	ServiceQueries uint64 `json:"service_queries"`
	ServiceDropped uint64 `json:"service_dropped"`
	FinalWindows   int64  `json:"final_windows"`
	FinalSealed    bool   `json:"final_sealed"`
	// FinalDigest is the cumulative analysis blob digest at run end —
	// the value the parity gate compares against an offline replay.
	FinalDigest string `json:"final_digest,omitempty"`

	// Tick-loop timing from a self-hosted estate's serving loop:
	// resolved worker count, ticker intervals fired, simulation steps
	// run, mean and worst-case wall time per interval, the per-interval
	// budget, and how many intervals overran it — TickOverBudget is the
	// number the parallel-tick smoke gate requires to stay zero (the
	// warped clock never falling behind real time).
	SimWorkers     int     `json:"sim_workers,omitempty"`
	TickIntervals  int64   `json:"tick_intervals,omitempty"`
	TickSteps      int64   `json:"tick_steps,omitempty"`
	TickMeanMs     float64 `json:"tick_mean_ms,omitempty"`
	TickMaxMs      float64 `json:"tick_max_ms,omitempty"`
	TickBudgetMs   float64 `json:"tick_budget_ms,omitempty"`
	TickOverBudget int64   `json:"tick_over_budget"`

	WallSeconds float64 `json:"wall_seconds"`
}

// MixStats breaks the push-session numbers down by client kind
// ("observer", "avatar", "aoi-avatar"). Pushes and Bytes are both
// counted at the client wire layer — push frames only, framing
// included — so BytesPerPush compares the push encodings themselves,
// undiluted by chat or control traffic and unskewed by consumer lag.
type MixStats struct {
	Conns        int     `json:"conns"`
	Pushes       uint64  `json:"pushes"`
	Bytes        uint64  `json:"bytes"`
	BytesPerPush float64 `json:"bytes_per_push"`
}

// Client-kind labels used in Report.Mix and error keys.
const (
	KindObserver  = "observer"
	KindAvatar    = "avatar"
	KindAOIAvatar = "aoi-avatar"
)

func presetEstate(name string, seed uint64) (slmob.Estate, error) {
	switch name {
	case "paper":
		return slmob.PaperEstate(seed), nil
	case "mainland":
		return slmob.MainlandEstate(seed), nil
	case "city":
		return slmob.CityEstate(seed), nil
	default:
		return slmob.Estate{}, fmt.Errorf("load: unknown estate preset %q (want paper, mainland, or city)", name)
	}
}

// Run executes one load run: connect every client, release the clock,
// sustain the mix for the load phase, and report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	wallStart := time.Now()
	rep := &Report{
		Observers:  cfg.Observers,
		Avatars:    cfg.Avatars,
		AOIAvatars: cfg.AOIAvatars,
		Readers:    cfg.Readers,
		Cores:      runtime.NumCPU(),
		Errors:     map[string]int{},
	}

	dirAddr := cfg.Directory
	var svc *slmob.EstateService
	if dirAddr == "" {
		est, err := presetEstate(cfg.Preset, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.SimDuration > 0 {
			est.Duration = cfg.SimDuration
		}
		svc, err = slmob.ServeEstate(ctx, est,
			slmob.WithWarp(cfg.Warp), slmob.WithTickEvery(cfg.TickEvery),
			slmob.WithWindow(cfg.Window), slmob.WithQueryAddr("127.0.0.1:0"),
			slmob.WithHeldClock(), slmob.WithServePassword(cfg.Password),
			slmob.WithSimWorkers(cfg.SimWorkers))
		if err != nil {
			return nil, err
		}
		defer svc.Stop()
		dirAddr = svc.DirectoryAddr()
	}
	dir, err := slp.FetchDirectory(dirAddr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	rep.Estate, rep.Regions = dir.Estate, len(dir.Regions)
	if cfg.Readers > 0 && dir.QueryAddr == "" {
		return nil, errors.New("load: readers requested but the estate serves no analytics query endpoint")
	}

	var (
		connected atomic.Int64
		connFail  atomic.Int64
		replies   atomic.Uint64
		faults    atomic.Int64
		stopping  atomic.Bool

		mu       sync.Mutex
		lats     []float64
		loadWg   sync.WaitGroup // every consumer/reader goroutine
		dialWg   sync.WaitGroup // completes when every client dialled
		dialGate = make(chan struct{}, 128)
	)
	// Per-kind counters; push counts and bandwidth are attributed after
	// the load phase from each session's wire-layer PushesRead /
	// PushBytesRead (map pushes) and BytesRead (whole connection), so
	// numerator and denominator of bytes-per-push agree.
	type kindCounters struct {
		conns  atomic.Int64
		pushes atomic.Uint64
		bytes  atomic.Uint64
	}
	kinds := map[string]*kindCounters{
		KindObserver: {}, KindAvatar: {}, KindAOIAvatar: {},
	}
	type loadClient struct {
		c    *slp.Client
		kind string
	}
	var clients []loadClient
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()

	// done fires when a self-hosted estate finishes its simulated
	// duration — the server then closes every session, which is a clean
	// teardown, not a fault.
	var done <-chan struct{}
	if svc != nil {
		done = svc.Done()
	}

	fault := func(kind string) {
		if stopping.Load() {
			return
		}
		faults.Add(1)
		mu.Lock()
		rep.Errors[kind]++
		mu.Unlock()
	}
	dialFailed := func(kind string) {
		connFail.Add(1)
		mu.Lock()
		rep.Errors[kind]++
		mu.Unlock()
	}

	// dropped classifies a session's channels closing: a drop while the
	// load phase is live is a server fault; one racing the stop signal
	// or the estate's own clean end (sessions close a beat before Done
	// fires) is not. The grace window absorbs that teardown race.
	dropped := func(kind string) {
		select {
		case <-loadCtx.Done():
		case <-done:
		case <-time.After(2 * time.Second):
			fault(kind + "-dropped")
		}
	}

	// consume drains one session's push channels until the load phase
	// ends; pushes are counted in the client's read loop, not here, so
	// a consumer that momentarily lags never skews the push stats. A
	// channel closing early means the server failed a healthy,
	// promptly-draining client: a fault.
	consume := func(c *slp.Client, kind string) {
		defer loadWg.Done()
		for {
			select {
			case <-loadCtx.Done():
				return
			case _, ok := <-c.FullMaps():
				if !ok {
					dropped(kind)
					return
				}
			case _, ok := <-c.Maps():
				if !ok {
					dropped(kind)
					return
				}
			case _, ok := <-c.Chats():
				if !ok {
					dropped(kind)
					return
				}
			}
		}
	}

	dialSession := func(i int, kind string) {
		defer dialWg.Done()
		dialGate <- struct{}{}
		addr := dir.Regions[i%len(dir.Regions)].Addr
		name := fmt.Sprintf("load-%d", i)
		var c *slp.Client
		var err error
		if kind == KindObserver {
			c, err = slp.DialObserver(addr, name, cfg.Password, cfg.DialTimeout)
		} else {
			c, err = slp.Dial(addr, name, cfg.Password, cfg.DialTimeout)
		}
		<-dialGate
		if err != nil {
			dialFailed(kind + "-dial")
			return
		}
		if kind == KindAOIAvatar {
			err = c.SubscribeAOI(cfg.Tau, true, cfg.AOIRadius, cfg.AOIDelta)
		} else {
			err = c.Subscribe(cfg.Tau, true)
		}
		if err != nil {
			c.Close()
			dialFailed(kind + "-subscribe")
			return
		}
		connected.Add(1)
		kinds[kind].conns.Add(1)
		mu.Lock()
		clients = append(clients, loadClient{c: c, kind: kind})
		mu.Unlock()
		loadWg.Add(1)
		go consume(c, kind)
	}

	// readerLoop polls the analytics endpoint, rotating query targets
	// and timing each round-trip.
	readerLoop := func(r int, ready *sync.WaitGroup) {
		defer loadWg.Done()
		qc, err := slp.DialQuery(dir.QueryAddr, cfg.DialTimeout)
		if err != nil {
			ready.Done()
			dialFailed("reader-dial")
			return
		}
		defer qc.Close()
		connected.Add(1)
		ready.Done()
		var local []float64
		defer func() {
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
		tick := time.NewTicker(cfg.PollEvery)
		defer tick.Stop()
		for n := 0; ; n++ {
			select {
			case <-loadCtx.Done():
				return
			case <-tick.C:
			}
			t0 := time.Now()
			switch n % 3 {
			case 0:
				_, err = qc.Cumulative(-1)
			case 1:
				_, err = qc.Stats()
			case 2:
				_, err = qc.WindowAt(-1, -1)
			}
			if err != nil {
				fault("reader-query")
				return
			}
			local = append(local, float64(time.Since(t0).Microseconds())/1000.0)
			replies.Add(1)
		}
	}

	// Connect phase: every client in, then release the clock.
	for i := 0; i < cfg.Observers; i++ {
		dialWg.Add(1)
		go dialSession(i, KindObserver)
	}
	for i := 0; i < cfg.Avatars; i++ {
		dialWg.Add(1)
		go dialSession(cfg.Observers+i, KindAvatar)
	}
	for i := 0; i < cfg.AOIAvatars; i++ {
		dialWg.Add(1)
		go dialSession(cfg.Observers+cfg.Avatars+i, KindAOIAvatar)
	}
	var readersReady sync.WaitGroup
	for r := 0; r < cfg.Readers; r++ {
		readersReady.Add(1)
		loadWg.Add(1)
		go readerLoop(r, &readersReady)
	}
	dialWg.Wait()
	readersReady.Wait()

	if dir.Held {
		if svc != nil {
			svc.StartClock()
		} else if _, err := slp.StartEstateClock(dirAddr, cfg.DialTimeout); err != nil {
			return nil, fmt.Errorf("load: clock start: %w", err)
		}
	}

	// Load phase.
	select {
	case <-time.After(cfg.RunFor):
	case <-done:
	case <-ctx.Done():
	}
	stopping.Store(true)
	stopLoad()
	mu.Lock()
	for _, lc := range clients {
		lc.c.Close()
	}
	mu.Unlock()
	loadWg.Wait()
	mu.Lock()
	for _, lc := range clients {
		kc := kinds[lc.kind]
		kc.pushes.Add(lc.c.PushesRead())
		kc.bytes.Add(lc.c.PushBytesRead())
		rep.BytesTotal += lc.c.BytesRead()
	}
	mu.Unlock()

	// Final service state, fetched fresh: counters, seal state, and the
	// cumulative digest the parity gate compares offline.
	if dir.QueryAddr != "" {
		if qc, err := slp.DialQuery(dir.QueryAddr, cfg.DialTimeout); err == nil {
			if st, err := qc.Stats(); err == nil {
				rep.ServiceQueries = st.Queries
				rep.ServiceDropped = st.Dropped
				rep.FinalWindows = st.Windows
				rep.FinalSealed = st.Sealed
			}
			qc.Close()
		}
		if la, err := slmob.QueryLive(dir.QueryAddr); err == nil && la.Analysis != nil {
			rep.FinalDigest = la.Digest
		}
	}

	// Tick-loop timing, self-hosted estates only: the sustained cost of
	// advancing the whole grid each interval, and whether the warped
	// clock ever fell behind its budget.
	if svc != nil {
		ts := svc.TickStats()
		rep.SimWorkers = svc.StepWorkers()
		rep.TickIntervals = ts.Intervals
		rep.TickSteps = ts.Steps
		rep.TickMaxMs = float64(ts.Max.Microseconds()) / 1000.0
		rep.TickBudgetMs = float64(ts.Budget.Microseconds()) / 1000.0
		rep.TickOverBudget = ts.OverBudget
		if ts.Intervals > 0 {
			rep.TickMeanMs = float64(ts.Total.Microseconds()) / 1000.0 / float64(ts.Intervals)
		}
	}

	rep.Connected = int(connected.Load())
	rep.ConnectFailures = int(connFail.Load())
	rep.Replies = replies.Load()
	rep.Mix = map[string]*MixStats{}
	for kind, kc := range kinds {
		ms := &MixStats{Conns: int(kc.conns.Load()), Pushes: kc.pushes.Load(), Bytes: kc.bytes.Load()}
		if ms.Conns == 0 && ms.Pushes == 0 {
			continue
		}
		if ms.Pushes > 0 {
			ms.BytesPerPush = float64(ms.Bytes) / float64(ms.Pushes)
		}
		rep.Pushes += ms.Pushes
		rep.PushBytesTotal += ms.Bytes
		rep.Mix[kind] = ms
	}
	if rep.Pushes > 0 {
		rep.BytesPerPush = float64(rep.PushBytesTotal) / float64(rep.Pushes)
	}
	rep.ServerFaults = int(faults.Load())
	if rep.Cores > 0 {
		rep.ConnsPerCore = float64(rep.Connected) / float64(rep.Cores)
	}
	rep.LatencyMs = quantiles(lats)
	rep.WallSeconds = time.Since(wallStart).Seconds()
	return rep, nil
}

func quantiles(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	sort.Float64s(xs)
	at := func(p float64) float64 {
		i := int(p * float64(len(xs)-1))
		return xs[i]
	}
	return Quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: xs[len(xs)-1]}
}
