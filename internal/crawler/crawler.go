// Package crawler implements the paper's second — and preferred —
// monitoring architecture: an external client that logs into the
// metaverse as a regular avatar and extracts the position of every user
// on the target land from the coarse map at a fixed period (τ = 10 s).
//
// A naive crawler perturbs the measurement: it is perceived as an avatar,
// and a silent, motionless avatar attracts curious users ("a steady
// convergence of user movements towards our crawler", §2). The crawler
// therefore mimics a normal user, moving randomly over the land and
// broadcasting canned chat phrases; set Mimic to false to reproduce the
// perturbation experiment.
package crawler

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/slp"
	"slmob/internal/trace"
)

// DefaultPhrases is the crawler's small set of pre-defined chat lines.
var DefaultPhrases = []string{
	"hello everyone :)",
	"nice place!",
	"anyone know where the music is from?",
	"brb",
	"this land looks great today",
	"hi! just looking around",
}

// Config controls one crawl.
type Config struct {
	// Addr is the region server address.
	Addr string
	// Name and Password are the login credentials (the crawler needs a
	// valid account, like any avatar).
	Name, Password string
	// Tau is the snapshot period in simulated seconds (the paper's 10).
	Tau int64
	// Duration is the crawl length in simulated seconds.
	Duration int64
	// Mimic enables user mimicry (random movement + canned chat).
	Mimic bool
	// MovePeriod and ChatPeriod are mimicry cadences in simulated
	// seconds; zero selects 45 s and 120 s.
	MovePeriod, ChatPeriod int64
	// Phrases overrides DefaultPhrases.
	Phrases []string
	// Seed drives the mimicry randomness.
	Seed uint64
	// DialTimeout bounds connection establishment; zero selects 10 s.
	DialTimeout time.Duration
}

// Crawler is a connected measurement client.
type Crawler struct {
	cfg    Config
	client *slp.Client
	rng    *rng.Source
	size   float64
	selfID trace.AvatarID
}

// New connects and logs the crawler in.
func New(cfg Config) (*Crawler, error) {
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("crawler: tau must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("crawler: duration must be positive")
	}
	if cfg.MovePeriod <= 0 {
		cfg.MovePeriod = 45
	}
	if cfg.ChatPeriod <= 0 {
		cfg.ChatPeriod = 120
	}
	if len(cfg.Phrases) == 0 {
		cfg.Phrases = DefaultPhrases
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	client, err := slp.Dial(cfg.Addr, cfg.Name, cfg.Password, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	w := client.Welcome()
	return &Crawler{
		cfg:    cfg,
		client: client,
		rng:    rng.New(cfg.Seed),
		size:   w.Size,
		selfID: trace.AvatarID(w.AvatarID),
	}, nil
}

// SelfID returns the crawler's avatar identity on the land.
func (c *Crawler) SelfID() trace.AvatarID { return c.selfID }

// Run subscribes to map pushes and assembles the trace until Duration
// simulated seconds have been observed or the context is cancelled. The
// crawler's own avatar is filtered out of every snapshot.
func (c *Crawler) Run(ctx context.Context) (*trace.Trace, error) {
	defer c.client.Close()
	if err := c.client.Subscribe(c.cfg.Tau); err != nil {
		return nil, err
	}
	w := c.client.Welcome()
	tr := trace.New(w.Land, c.cfg.Tau)
	tr.Meta["monitor"] = "crawler"
	tr.Meta["mimic"] = strconv.FormatBool(c.cfg.Mimic)
	tr.Meta["size"] = strconv.FormatFloat(w.Size, 'g', -1, 64)

	start := w.SimTime
	var lastMove, lastChat int64
	for {
		select {
		case <-ctx.Done():
			return tr, ctx.Err()
		case reply, ok := <-c.client.Maps():
			if !ok {
				if err := c.client.Err(); err != nil {
					return tr, err
				}
				return tr, fmt.Errorf("crawler: connection closed")
			}
			snap := trace.Snapshot{T: reply.SimTime - start}
			for _, ent := range reply.Entries {
				if ent.ID == c.selfID {
					continue
				}
				snap.Samples = append(snap.Samples, trace.Sample{ID: ent.ID, Pos: ent.Pos})
			}
			if err := tr.Append(snap); err != nil {
				// A duplicate push (e.g. poll racing a subscription) is
				// dropped rather than corrupting the trace.
				continue
			}
			now := reply.SimTime
			if c.cfg.Mimic {
				if now-lastMove >= c.cfg.MovePeriod {
					lastMove = now
					if err := c.client.Move(c.randomPoint()); err != nil {
						return tr, err
					}
				}
				if now-lastChat >= c.cfg.ChatPeriod {
					lastChat = now
					phrase := c.cfg.Phrases[c.rng.Intn(len(c.cfg.Phrases))]
					if err := c.client.Chat(phrase); err != nil {
						return tr, err
					}
				}
			}
			if now-start >= c.cfg.Duration {
				return tr, nil
			}
		}
	}
}

// randomPoint picks a uniformly random ground position on the land, the
// paper's "randomly moves over the target land".
func (c *Crawler) randomPoint() geom.Vec {
	return geom.V2(c.rng.Range(0, c.size), c.rng.Range(0, c.size))
}
