// Package crawler implements the paper's second — and preferred —
// monitoring architecture: an external client that logs into the
// metaverse as a regular avatar and extracts the position of every user
// on the target land from the coarse map at a fixed period (τ = 10 s).
//
// A naive crawler perturbs the measurement: it is perceived as an avatar,
// and a silent, motionless avatar attracts curious users ("a steady
// convergence of user movements towards our crawler", §2). The crawler
// therefore mimics a normal user, moving randomly over the land and
// broadcasting canned chat phrases; set Mimic to false to reproduce the
// perturbation experiment.
package crawler

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/slp"
	"slmob/internal/trace"
)

// DefaultPhrases is the crawler's small set of pre-defined chat lines.
var DefaultPhrases = []string{
	"hello everyone :)",
	"nice place!",
	"anyone know where the music is from?",
	"brb",
	"this land looks great today",
	"hi! just looking around",
}

// Config controls one crawl.
type Config struct {
	// Addr is the region server address.
	Addr string
	// Name and Password are the login credentials (the crawler needs a
	// valid account, like any avatar).
	Name, Password string
	// Tau is the snapshot period in simulated seconds (the paper's 10).
	Tau int64
	// Duration is the crawl length in simulated seconds.
	Duration int64
	// Mimic enables user mimicry (random movement + canned chat).
	Mimic bool
	// MovePeriod and ChatPeriod are mimicry cadences in simulated
	// seconds; zero selects 45 s and 120 s.
	MovePeriod, ChatPeriod int64
	// Phrases overrides DefaultPhrases.
	Phrases []string
	// Seed drives the mimicry randomness.
	Seed uint64
	// DialTimeout bounds connection establishment; zero selects 10 s.
	DialTimeout time.Duration
}

// Crawler is a connected measurement client.
type Crawler struct {
	cfg    Config
	client *slp.Client
	rng    *rng.Source
	size   float64
	selfID trace.AvatarID
}

// New connects and logs the crawler in.
func New(cfg Config) (*Crawler, error) {
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("crawler: tau must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("crawler: duration must be positive")
	}
	if cfg.MovePeriod <= 0 {
		cfg.MovePeriod = 45
	}
	if cfg.ChatPeriod <= 0 {
		cfg.ChatPeriod = 120
	}
	if len(cfg.Phrases) == 0 {
		cfg.Phrases = DefaultPhrases
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	client, err := slp.Dial(cfg.Addr, cfg.Name, cfg.Password, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	w := client.Welcome()
	return &Crawler{
		cfg:    cfg,
		client: client,
		rng:    rng.New(cfg.Seed),
		size:   w.Size,
		selfID: trace.AvatarID(w.AvatarID),
	}, nil
}

// SelfID returns the crawler's avatar identity on the land.
func (c *Crawler) SelfID() trace.AvatarID { return c.selfID }

// Close logs the crawler out and tears the connection down. Run closes
// implicitly; standalone Source users must call Close themselves.
func (c *Crawler) Close() error { return c.client.Close() }

// Source is the crawler as a streaming snapshot producer: each Next call
// blocks on the next coarse-map push, runs the user-mimicry schedule, and
// yields the observed snapshot. The crawler's own avatar is filtered out
// of every snapshot.
type Source struct {
	c          *Crawler
	subscribed bool
	started    bool
	start      int64 // sim time of the first push; snapshots are rebased to it
	lastT      int64 // last emitted snapshot time (duplicate-push guard)
	lastMove   int64
	lastChat   int64
	done       bool
	// pendingErr is a mimicry failure deferred so the snapshot received
	// just before it is still delivered (an interrupted crawl keeps all
	// observed data).
	pendingErr error
}

// Source returns the crawler's streaming view. The first Next call
// subscribes to map pushes at the configured τ.
func (c *Crawler) Source() *Source { return &Source{c: c} }

// Info reports the crawl's provenance.
func (s *Source) Info() trace.Info {
	w := s.c.client.Welcome()
	return trace.Info{
		Land: w.Land,
		Tau:  s.c.cfg.Tau,
		Meta: map[string]string{
			"monitor": "crawler",
			"mimic":   strconv.FormatBool(s.c.cfg.Mimic),
			"size":    strconv.FormatFloat(w.Size, 'g', -1, 64),
		},
	}
}

// Next yields the next map snapshot. It returns io.EOF once Duration
// simulated seconds have been observed and ctx.Err() promptly after the
// context is cancelled.
func (s *Source) Next(ctx context.Context) (trace.Snapshot, error) {
	if s.pendingErr != nil {
		err := s.pendingErr
		s.pendingErr = nil
		return trace.Snapshot{}, err
	}
	if s.done {
		return trace.Snapshot{}, io.EOF
	}
	c := s.c
	if !s.subscribed {
		if err := c.client.Subscribe(c.cfg.Tau, false); err != nil {
			return trace.Snapshot{}, err
		}
		s.subscribed = true
		s.start = c.client.Welcome().SimTime
	}
	for {
		select {
		case <-ctx.Done():
			return trace.Snapshot{}, ctx.Err()
		case reply, ok := <-c.client.Maps():
			if !ok {
				// Wrap the transport error: a raw io.EOF must not read as
				// the Source's own end-of-stream sentinel.
				if err := c.client.Err(); err != nil {
					return trace.Snapshot{}, fmt.Errorf("crawler: connection lost: %w", err)
				}
				return trace.Snapshot{}, fmt.Errorf("crawler: connection closed")
			}
			snap := trace.Snapshot{T: reply.SimTime - s.start}
			if s.started && snap.T <= s.lastT {
				// A duplicate push (e.g. poll racing a subscription) is
				// dropped rather than corrupting the stream.
				continue
			}
			for _, ent := range reply.Entries {
				if ent.ID == c.selfID {
					continue
				}
				snap.Samples = append(snap.Samples, trace.Sample{ID: ent.ID, Pos: ent.Pos})
			}
			s.started = true
			s.lastT = snap.T
			now := reply.SimTime
			if now-s.start >= c.cfg.Duration {
				// The crawl is complete; skip mimicry so a send failure
				// cannot turn a fully-observed measurement into an error.
				s.done = true
				return snap, nil
			}
			if c.cfg.Mimic {
				if now-s.lastMove >= c.cfg.MovePeriod {
					s.lastMove = now
					if err := c.client.Move(c.randomPoint()); err != nil {
						s.pendingErr = fmt.Errorf("crawler: mimicry move failed: %w", err)
						return snap, nil
					}
				}
				if now-s.lastChat >= c.cfg.ChatPeriod {
					s.lastChat = now
					phrase := c.cfg.Phrases[c.rng.Intn(len(c.cfg.Phrases))]
					if err := c.client.Chat(phrase); err != nil {
						s.pendingErr = fmt.Errorf("crawler: mimicry chat failed: %w", err)
						return snap, nil
					}
				}
			}
			return snap, nil
		}
	}
}

// Run subscribes to map pushes and assembles the trace until Duration
// simulated seconds have been observed or the context is cancelled, then
// closes the connection. On early termination the partial trace is
// returned alongside the error.
//
// Deprecated: Run materialises the whole crawl; stream through Source
// instead when the consumer is incremental.
func (c *Crawler) Run(ctx context.Context) (*trace.Trace, error) {
	defer c.client.Close()
	return trace.Collect(ctx, c.Source(), "", 0)
}

// randomPoint picks a uniformly random ground position on the land, the
// paper's "randomly moves over the target land".
func (c *Crawler) randomPoint() geom.Vec {
	return geom.V2(c.rng.Range(0, c.size), c.rng.Range(0, c.size))
}
