package crawler

import (
	"testing"
	"time"
)

// Connection-level behaviour is covered by the end-to-end test in
// internal/server; these tests pin configuration validation and defaults.

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:1", Tau: 0, Duration: 100}); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:1", Tau: 10, Duration: 0}); err == nil {
		t.Error("duration=0 accepted")
	}
}

func TestDialFailureSurfaces(t *testing.T) {
	_, err := New(Config{
		Addr: "127.0.0.1:1", // nothing listens here
		Tau:  10, Duration: 100,
		DialTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Error("dial to dead address succeeded")
	}
}

func TestDefaultPhrasesNonEmpty(t *testing.T) {
	if len(DefaultPhrases) == 0 {
		t.Error("no canned phrases")
	}
	for _, p := range DefaultPhrases {
		if len(p) == 0 || len(p) > 255 {
			t.Errorf("bad phrase %q", p)
		}
	}
}
