package crawler

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"slmob/internal/slp"
	"slmob/internal/trace"
)

// The estate crawler extends the paper's single-land monitor to a whole
// served grid: it discovers the regions through the estate's directory
// endpoint, logs one measurement-grade observer monitor into every
// region server, and aligns all of them on the shared directory clock by
// subscribing to pushes anchored at absolute multiples of τ. The zipped
// per-region snapshots form an estate stream (trace.EstateSource) that
// feeds the sharded analysis exactly like an offline estate replay.
//
// Observer monitors are server-sanctioned: they hold no avatar, consume
// no capacity slot, and receive full-resolution positions with the
// seated flag — the measurement does not perturb the world it measures.
// For the paper's perturbation study (a monitor that is itself an
// avatar), use the single-land Crawler against one region.

// EstateConfig controls one estate crawl.
type EstateConfig struct {
	// Directory is the estate's directory endpoint address.
	Directory string
	// Name and Password are the login credentials, shared by every
	// regional monitor.
	Name, Password string
	// Tau is the snapshot period in simulated seconds (the paper's 10).
	Tau int64
	// Duration is the crawl length in simulated seconds; zero adopts the
	// estate's scheduled duration from the directory.
	Duration int64
	// DialTimeout bounds connection establishment; zero selects 10 s.
	DialTimeout time.Duration
}

// EstateCrawler is a connected set of per-region observer monitors.
type EstateCrawler struct {
	cfg      EstateConfig
	dir      slp.Directory
	duration int64
	monitors []*slp.Client
}

// NewEstate discovers the grid through the directory endpoint and logs
// one observer monitor into every region.
func NewEstate(cfg EstateConfig) (*EstateCrawler, error) {
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("crawler: tau must be positive")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	dir, err := slp.FetchDirectory(cfg.Directory, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("crawler: directory: %w", err)
	}
	if len(dir.Regions) == 0 {
		return nil, fmt.Errorf("crawler: estate %q has no regions", dir.Estate)
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = dir.Duration
	}
	if duration <= 0 {
		return nil, fmt.Errorf("crawler: estate %q reports no duration and none was configured", dir.Estate)
	}
	ec := &EstateCrawler{cfg: cfg, dir: dir, duration: duration}
	for i, r := range dir.Regions {
		c, err := slp.DialObserver(r.Addr, fmt.Sprintf("%s#%d", cfg.Name, i), cfg.Password, cfg.DialTimeout)
		if err != nil {
			ec.Close()
			return nil, fmt.Errorf("crawler: region %q: %w", r.Name, err)
		}
		ec.monitors = append(ec.monitors, c)
	}
	return ec, nil
}

// Directory returns the grid description the crawl was built from.
func (ec *EstateCrawler) Directory() slp.Directory { return ec.dir }

// Close logs every monitor out and tears the connections down.
func (ec *EstateCrawler) Close() error {
	for _, c := range ec.monitors {
		if c != nil {
			c.Close()
		}
	}
	return nil
}

// EstateSource is the estate crawl as a streaming estate producer: each
// NextTick blocks until every region's monitor received its push for the
// next shared-clock instant and yields the zipped per-region snapshots.
type EstateSource struct {
	ec         *EstateCrawler
	subscribed bool
	started    bool
	firstT     int64 // shared-clock time of the first zipped tick
	done       bool
}

// Source returns the crawl's streaming view. The first NextTick call
// subscribes every monitor at the configured τ, aligned on the shared
// clock, and then releases the estate clock if the directory reported it
// held — so a held estate is observed from its very first tick.
func (ec *EstateCrawler) Source() *EstateSource { return &EstateSource{ec: ec} }

// Regions reports each regional monitor's provenance, with the same
// placement metadata the in-process estate observer records: the
// downstream estate analysis treats a live crawl and an offline replay
// identically.
func (s *EstateSource) Regions() []trace.Info {
	infos := make([]trace.Info, len(s.ec.dir.Regions))
	for i, r := range s.ec.dir.Regions {
		infos[i] = trace.Info{
			Land:   r.Name,
			Region: r.Name,
			Origin: r.Origin,
			Tau:    s.ec.cfg.Tau,
			Meta: map[string]string{
				"monitor": "estate-crawler",
				"estate":  s.ec.dir.Estate,
				"region":  r.Name,
				"origin": strconv.FormatFloat(r.Origin.X, 'g', -1, 64) + "," +
					strconv.FormatFloat(r.Origin.Y, 'g', -1, 64),
				"size": strconv.FormatFloat(r.Size, 'g', -1, 64),
			},
		}
	}
	return infos
}

// NextTick yields the next shared-clock tick across every region. It
// returns io.EOF once the crawl duration has been observed and ctx.Err()
// promptly after cancellation.
func (s *EstateSource) NextTick(ctx context.Context) (trace.EstateTick, error) {
	if s.done {
		return trace.EstateTick{}, io.EOF
	}
	ec := s.ec
	if !s.subscribed {
		for i, c := range ec.monitors {
			if err := c.Subscribe(ec.cfg.Tau, true); err != nil {
				return trace.EstateTick{}, fmt.Errorf("crawler: region %q subscribe: %w",
					ec.dir.Regions[i].Name, err)
			}
		}
		s.subscribed = true
		if ec.dir.Held {
			if _, err := slp.StartEstateClock(ec.cfg.Directory, ec.cfg.DialTimeout); err != nil {
				return trace.EstateTick{}, fmt.Errorf("crawler: clock start: %w", err)
			}
		}
	}
	read := func(i int) (slp.MapReplyFull, error) {
		select {
		case <-ctx.Done():
			return slp.MapReplyFull{}, ctx.Err()
		case reply, ok := <-ec.monitors[i].FullMaps():
			if !ok {
				if err := ec.monitors[i].Err(); err != nil {
					return slp.MapReplyFull{}, fmt.Errorf("crawler: region %q connection lost: %w",
						ec.dir.Regions[i].Name, err)
				}
				return slp.MapReplyFull{}, fmt.Errorf("crawler: region %q connection closed",
					ec.dir.Regions[i].Name)
			}
			return reply, nil
		}
	}
	replies := make([]slp.MapReplyFull, len(ec.monitors))
	for i := range ec.monitors {
		var err error
		if replies[i], err = read(i); err != nil {
			return trace.EstateTick{}, err
		}
	}
	if !s.started {
		// Against a running (non-held) clock the monitors subscribe a few
		// milliseconds apart, so their first pushes may straddle a push
		// boundary. Aligned subscriptions all sit on the same absolute-τ
		// lattice: drop each monitor's early pushes until every region
		// reports the latest first-push instant.
		for {
			target := replies[0].SimTime
			for _, r := range replies[1:] {
				if r.SimTime > target {
					target = r.SimTime
				}
			}
			aligned := true
			for i := range replies {
				for replies[i].SimTime < target {
					var err error
					if replies[i], err = read(i); err != nil {
						return trace.EstateTick{}, err
					}
				}
				if replies[i].SimTime > target {
					aligned = false
				}
			}
			if aligned {
				break
			}
		}
		s.started = true
		s.firstT = replies[0].SimTime
	}
	tick := trace.EstateTick{T: replies[0].SimTime, Regions: make([]trace.Snapshot, len(ec.monitors))}
	for i, reply := range replies {
		if reply.SimTime != tick.T {
			// A monitor that lags far enough to drop a push desyncs the
			// zip; the estate measurement is no longer consistent.
			return trace.EstateTick{}, fmt.Errorf(
				"crawler: estate monitors out of sync: region %q at t=%d, want t=%d",
				ec.dir.Regions[i].Name, reply.SimTime, tick.T)
		}
		snap := trace.Snapshot{T: reply.SimTime, Samples: make([]trace.Sample, 0, len(reply.Entries))}
		for _, ent := range reply.Entries {
			snap.Samples = append(snap.Samples, trace.Sample{ID: ent.ID, Pos: ent.Pos, Seated: ent.Seated})
		}
		tick.Regions[i] = snap
	}
	// Duration is a measurement length anchored at the first observed
	// tick: duration/τ ticks in total. A held-clock crawl starts at
	// T = τ, making the last tick exactly the offline source's
	// T = duration; a crawl joining a running estate still observes its
	// full requested span (or errors with partial data when the estate
	// itself ends first).
	if tick.T >= s.firstT+s.ec.duration-ec.cfg.Tau {
		s.done = true
	}
	return tick, nil
}
