package server

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"slmob/internal/geom"
	"slmob/internal/slp"
	"slmob/internal/world"
)

// testEstate is a short 1×3 paper estate with lively migration.
func testEstate(seed uint64, duration int64) world.EstateConfig {
	est := world.PaperEstate(seed)
	est.Duration = duration
	est.CrossProb = 0.004
	est.TeleportProb = 0.001
	return est
}

// startEstate launches an estate server and returns it.
func startEstate(t *testing.T, cfg EstateConfig) *EstateServer {
	t.Helper()
	if cfg.TickEvery == 0 {
		cfg.TickEvery = time.Millisecond
	}
	srv, err := NewEstate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("estate server did not stop")
		}
	})
	return srv
}

// TestEstateHandoffsCrossTheNetwork runs a full short estate service and
// checks that avatars actually moved between region servers through the
// inter-server transfer links.
func TestEstateHandoffsCrossTheNetwork(t *testing.T) {
	srv, err := NewEstate(EstateConfig{
		Estate:    testEstate(3, 900),
		Warp:      4000,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = srv.Run(context.Background())
	if !errors.Is(err, ErrDurationReached) {
		t.Fatalf("run = %v, want duration reached", err)
	}
	if srv.Crossings() == 0 {
		t.Error("no walking handoffs crossed the network")
	}
	if srv.Teleports() == 0 {
		t.Error("no teleports crossed the network")
	}
}

// TestEstateObserverSession: an observer logs into a region of a served
// estate, holds no avatar, and receives full-resolution map replies with
// the seated flag, while Move is refused.
func TestEstateObserverSession(t *testing.T) {
	srv := startEstate(t, EstateConfig{Estate: testEstate(4, 86400), Warp: 500})
	c, err := slp.DialObserver(srv.RegionAddr(1), "monitor", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Welcome().AvatarID != 0 {
		t.Errorf("observer got avatar %d", c.Welcome().AvatarID)
	}
	if err := c.RequestMap(); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-c.FullMaps():
		if len(reply.Entries) < 10 {
			t.Errorf("full map has %d entries, expected a populated region", len(reply.Entries))
		}
		for _, ent := range reply.Entries {
			if ent.Seated && !ent.Pos.IsZero() {
				// Full entries carry the true position even while seated —
				// that is the point of the measurement-grade feed.
				return
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no full map reply")
	}
	// Observers have no avatar to move: the server answers with a typed
	// error, which the client surfaces as a dead connection.
	if err := c.Move(geom.V2(1, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("observer move was not refused")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMalformedLoginGetsTypedError: garbage on a fresh connection must
// be answered with a protocol-level Error reply, not a silent close.
func TestMalformedLoginGetsTypedError(t *testing.T) {
	scn := world.DanceIsland(9)
	scn.Duration = 86400
	srv, cancel := startServer(t, scn, 100)
	defer cancel()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A well-framed payload that decodes to no known message.
	payload := []byte{0xEE, 0xDE, 0xAD, 0xBE, 0xEF}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		t.Fatalf("no protocol reply to malformed login: %v", err)
	}
	e, ok := msg.(slp.Error)
	if !ok {
		t.Fatalf("reply = %T, want slp.Error", msg)
	}
	if e.Code != slp.ErrMalformed {
		t.Errorf("error code = %d, want ErrMalformed", e.Code)
	}
}

// TestPeerLinkAuthentication: transfer links require the estate
// password, and single-land servers refuse them entirely.
func TestPeerLinkAuthentication(t *testing.T) {
	srv := startEstate(t, EstateConfig{
		Estate: testEstate(6, 86400), Warp: 100, Password: "secret",
	})
	conn, err := net.Dial("tcp", srv.RegionAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := slp.WriteMessage(conn, slp.PeerHello{Version: slp.Version, Region: 1, Password: "wrong"}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(slp.Error); !ok || e.Code != slp.ErrBadCredentials {
		t.Fatalf("reply = %#v, want bad-credentials error", msg)
	}

	// A single-land server is not part of an estate.
	scn := world.DanceIsland(10)
	scn.Duration = 86400
	single, cancel := startServer(t, scn, 100)
	defer cancel()
	conn2, err := net.Dial("tcp", single.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := slp.WriteMessage(conn2, slp.PeerHello{Version: slp.Version}); err != nil {
		t.Fatal(err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err = slp.ReadMessage(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(slp.Error); !ok || e.Code != slp.ErrNotEstate {
		t.Fatalf("reply = %#v, want not-an-estate error", msg)
	}
}

// TestDirectoryEndpoint: grid discovery, typed refusal of non-directory
// traffic, and idempotent clock start.
func TestDirectoryEndpoint(t *testing.T) {
	srv := startEstate(t, EstateConfig{
		Estate: testEstate(8, 86400), Warp: 200, Hold: true,
	})
	dir, err := slp.FetchDirectory(srv.DirectoryAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Estate == "" || len(dir.Regions) != 3 || !dir.Held {
		t.Fatalf("directory = %+v", dir)
	}
	if dir.Duration != 86400 || dir.Warp != 200 {
		t.Errorf("duration/warp = %d/%v", dir.Duration, dir.Warp)
	}
	for i, r := range dir.Regions {
		if r.Addr != srv.RegionAddr(i) {
			t.Errorf("region %d addr = %q, want %q", i, r.Addr, srv.RegionAddr(i))
		}
		wantOrigin := geom.V2(float64(i)*256, 0)
		if r.Origin != wantOrigin || r.Size != 256 {
			t.Errorf("region %d placement = %+v/%v", i, r.Origin, r.Size)
		}
	}

	// The regions themselves still serve logins while the clock is held.
	c, err := slp.Dial(srv.RegionAddr(2), "tester", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	if _, err := slp.StartEstateClock(srv.DirectoryAddr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := slp.StartEstateClock(srv.DirectoryAddr(), 5*time.Second); err != nil {
		t.Fatalf("clock start is not idempotent: %v", err)
	}
	dir, err = slp.FetchDirectory(srv.DirectoryAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Held {
		t.Error("directory still reports a held clock after start")
	}
}
