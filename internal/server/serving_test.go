package server

import (
	"math"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"slmob/internal/geom"
	"slmob/internal/slp"
	"slmob/internal/world"
)

// newBenchHost builds a landHost (no listener accept loop) around a
// stepped Dance Island sim for direct push-path exercise.
func newBenchHost(tb testing.TB, seed uint64) (*landHost, *sync.Mutex) {
	tb.Helper()
	var mu sync.Mutex
	var closed bool
	sim, err := world.NewSim(testScenario(seed, 86400))
	if err != nil {
		tb.Fatal(err)
	}
	h, err := newLandHostSim(&mu, &closed, sim, "127.0.0.1:0", 1, "")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { h.ln.Close() })
	for i := 0; i < 120; i++ {
		sim.Step()
	}
	return h, &mu
}

// sinkSession returns a session whose peer end is drained continuously,
// so enqueued frames never wedge the queue.
func sinkSession(tb testing.TB) *session {
	tb.Helper()
	c1, c2 := net.Pipe()
	tb.Cleanup(func() { c1.Close(); c2.Close() })
	sess := newSession(c1)
	go sess.writeLoop()
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	tb.Cleanup(sess.close)
	return sess
}

// pinAllocs fails unless fn settles at exactly want allocations per call.
func pinAllocs(t *testing.T, name string, want float64, fn func()) {
	t.Helper()
	fn() // warm pooled buffers and the tick's shared frames
	if got := testing.AllocsPerRun(200, fn); got != want {
		t.Errorf("%s: %v allocs/op, want %v", name, got, want)
	}
}

// TestPushPathAllocPins pins the serving path's per-push allocation
// budget, the regression the shared per-tick snapshot exists to prevent:
// within a tick, repeat pushes of the shared coarse and observer frames
// are allocation-free (the old path paid a full States scan plus a
// per-session encode on every push), and an AOI delta push in a static
// world costs only its per-session wire frame.
func TestPushPathAllocPins(t *testing.T) {
	h, mu := newBenchHost(t, 9)
	coarse := sinkSession(t)
	observer := sinkSession(t)
	observer.observer = true
	aoi := sinkSession(t)
	aoi.aoi = 96
	aoi.delta = true
	aoi.pos = geom.V(128, 128, 0)
	mu.Lock()
	defer mu.Unlock()
	for _, sess := range []*session{coarse, observer, aoi} {
		h.sessions[sess] = struct{}{}
	}

	pinAllocs(t, "coarse shared frame", 0, func() { h.pushMapLocked(coarse) })
	pinAllocs(t, "observer shared frame", 0, func() { h.pushMapLocked(observer) })

	// The AOI delta steady state (unchanged tick, empty diff) pays exactly
	// one frame encode (payload buffer, its growth, the framed copy) —
	// nothing proportional to land population.
	h.pushMapLocked(aoi) // keyframe
	pinAllocs(t, "aoi delta", 3, func() { h.pushMapLocked(aoi) })

	// Chat relay reuses cached positions and shares one frame across
	// hearers: one frame encode per message, no per-avatar position map
	// (the old path rebuilt one per message).
	coarse.pos = geom.V(120, 120, 0)
	msg := world.ChatMessage{From: coarse.avatarID + 1000, Pos: geom.V(128, 128, 0), Text: "hi"}
	pinAllocs(t, "chat relay", 3, func() { h.relayChat(msg) })
}

// TestAOIPushFiltersByRadius: an AOI session's push carries exactly the
// avatars within its radius (by ground-plane distance, quantised), not
// the whole land.
func TestAOIPushFiltersByRadius(t *testing.T) {
	h, mu := newBenchHost(t, 11)
	sess := sinkSession(t)
	sess.aoi = 48
	sess.pos = geom.V(128, 128, 0)

	mu.Lock()
	snap := h.ensureSnapLocked()
	want := map[int64]geom.Vec{}
	for _, st := range snap.states {
		if st.Pos.DistXY(sess.pos) <= sess.aoi {
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			want[int64(st.ID)] = slp.QuantizePos(pos)
		}
	}
	total := len(snap.states)
	h.pushFilteredLocked(sess, snap)
	got := append([]slp.MapEntry(nil), sess.curView...)
	mu.Unlock()

	if len(want) == 0 || len(want) == total {
		t.Fatalf("degenerate scene: %d of %d avatars in radius", len(want), total)
	}
	if len(got) != len(want) {
		t.Fatalf("filtered view has %d entries, want %d (of %d on land)", len(got), len(want), total)
	}
	for _, e := range got {
		p, ok := want[int64(e.ID)]
		if !ok {
			t.Errorf("avatar %d outside radius appeared in the view", e.ID)
		} else if e.Pos != p {
			t.Errorf("avatar %d at %v, want quantised %v", e.ID, e.Pos, p)
		}
	}
}

// TestDeltaSubscriptionMatchesPlain runs two live clients against one
// server on the same aligned cadence — one on plain coarse pushes, one
// on a whole-land delta subscription — and requires every shared
// snapshot time to materialise identical views: the MapDelta stream
// (keyframes included; the run crosses the keyframe cadence) reproduces
// exactly what an unfiltered subscriber sees.
func TestDeltaSubscriptionMatchesPlain(t *testing.T) {
	srv, _ := startServer(t, testScenario(13, 300), 1000)
	plain, err := slp.Dial(srv.Addr(), "plain", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	delta, err := slp.Dial(srv.Addr(), "delta", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer delta.Close()
	if err := plain.Subscribe(5, true); err != nil {
		t.Fatal(err)
	}
	// Radius 0 keeps the whole land in view; only the encoding differs.
	if err := delta.SubscribeAOI(5, true, 0, true); err != nil {
		t.Fatal(err)
	}

	// The server ends at its duration and closes both sessions; the
	// buffered channels then drain to completion.
	collect := func(c *slp.Client) map[int64][]slp.MapEntry {
		out := map[int64][]slp.MapEntry{}
		for m := range c.Maps() {
			entries := append([]slp.MapEntry(nil), m.Entries...)
			sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
			out[m.SimTime] = entries
		}
		return out
	}
	pm := collect(plain)
	dm := collect(delta)

	if n := delta.DeltasApplied(); n < keyframeEvery+2 {
		t.Fatalf("delta client applied %d MapDelta frames, want enough to cross the keyframe cadence (%d)", n, keyframeEvery)
	}
	common := 0
	for tt, want := range pm {
		got, ok := dm[tt]
		if !ok {
			continue
		}
		common++
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("views at t=%d differ:\n delta: %v\n plain: %v", tt, got, want)
		}
	}
	if common < 10 {
		t.Fatalf("only %d common snapshot times between the streams", common)
	}
}

// BenchmarkPushMapCoarse measures a tick's serving cost for n plain
// subscribers sharing the per-tick frame.
func BenchmarkPushMapCoarse(b *testing.B) {
	benchmarkPush(b, func(sess *session) {})
}

// BenchmarkPushMapAOIDelta measures a tick's serving cost for n AOI
// delta subscribers answered from the shared grid.
func BenchmarkPushMapAOIDelta(b *testing.B) {
	benchmarkPush(b, func(sess *session) {
		sess.aoi = 96
		sess.delta = true
		sess.pos = geom.V(128, 128, 0)
	})
}

func benchmarkPush(b *testing.B, setup func(*session)) {
	h, mu := newBenchHost(b, 9)
	const nSess = 64
	sessions := make([]*session, nSess)
	for i := range sessions {
		sessions[i] = sinkSession(b)
		setup(sessions[i])
	}
	mu.Lock()
	defer mu.Unlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sim.Step() // advance the tick so each iteration rebuilds the snapshot
		for _, sess := range sessions {
			h.pushMapLocked(sess)
		}
	}
}

// TestSubscribeRadiusBounds: hostile AOI radii cannot stall the push
// path — non-finite radii are rejected outright, huge finite ones are
// clamped to the land diagonal before they ever reach the grid query,
// and ordinary radii are stored untouched.
func TestSubscribeRadiusBounds(t *testing.T) {
	h, mu := newBenchHost(t, 15)

	t.Run("infinite radius rejected", func(t *testing.T) {
		c1, c2 := net.Pipe()
		t.Cleanup(func() { c1.Close(); c2.Close() })
		sess := newSession(c1)
		t.Cleanup(sess.close)
		done := make(chan bool, 1)
		go func() { done <- h.handle(sess, slp.Subscribe{Tau: 5, Radius: math.Inf(1)}) }()
		msg, err := slp.ReadMessage(c2)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := msg.(slp.Error)
		if !ok || e.Code != slp.ErrBadRequest {
			t.Fatalf("reply = %#v, want bad-request error", msg)
		}
		if closed := <-done; closed {
			t.Error("rejected subscribe ended the session")
		}
		if sess.aoi != 0 {
			t.Errorf("aoi = %v after rejected subscribe, want 0", sess.aoi)
		}
	})

	t.Run("huge radius clamped", func(t *testing.T) {
		sess := sinkSession(t)
		if h.handle(sess, slp.Subscribe{Tau: 5, Radius: 1e9}) {
			t.Fatal("subscribe closed the session")
		}
		if want := h.maxAOIRadius(); sess.aoi != want {
			t.Errorf("aoi = %v, want clamped %v", sess.aoi, want)
		}
		// The clamped push must answer from the grid immediately;
		// unclamped, a 1e9 m radius walked ~4e15 cells under the lock.
		mu.Lock()
		h.pushMapLocked(sess)
		mu.Unlock()
	})

	t.Run("ordinary radius kept", func(t *testing.T) {
		sess := sinkSession(t)
		if h.handle(sess, slp.Subscribe{Tau: 5, Radius: 96}) {
			t.Fatal("subscribe closed the session")
		}
		if sess.aoi != 96 {
			t.Errorf("aoi = %v, want 96", sess.aoi)
		}
	})
}
