package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"slmob/internal/core"
	"slmob/internal/slp"
	"slmob/internal/world"
)

// TestSlowSubscriberDoesNotStallClock wedges a subscribed observer (it
// logs in, subscribes at tau=1, and never reads again) and checks the
// sim clock keeps running at roughly the configured warp: map pushes are
// snapshotted under the lock but written on the session's writer
// goroutine, so a full kernel buffer costs the clock nothing and the
// wedged session is dropped once its bounded queue fills.
func TestSlowSubscriberDoesNotStallClock(t *testing.T) {
	srv, cancel := startServer(t, testScenario(31, 86400), 5000)
	defer cancel()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := slp.WriteMessage(conn, slp.Hello{Version: slp.Version, Name: "wedge", Observer: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := slp.ReadMessage(conn); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if err := slp.WriteMessage(conn, slp.Subscribe{Tau: 1}); err != nil {
		t.Fatal(err)
	}
	// From here on the client never drains its socket.

	sim0 := srv.SimTime()
	time.Sleep(2 * time.Second)
	advance := srv.SimTime() - sim0
	// Nominal advance at warp 5000 is ~10000 sim seconds; a clock that
	// blocked on the wedged session's socket (the old write-under-lock
	// path stalled up to the 5 s write deadline per push) manages only a
	// few hundred. 1000 discriminates with a wide margin for slow CI.
	if advance < 1000 {
		t.Errorf("clock advanced %d sim seconds in 2 s wall with a wedged subscriber, want >= 1000", advance)
	}

	// The wedged session must have been dropped, not left queueing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.host.sessions)
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged subscriber still has a session after 10 s (%d live)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRelayChatClosesWedgedSession checks the chat relay path: a session
// whose push queue is already full cannot absorb a chat event, so the
// relay closes it instead of silently discarding the write error (the
// old behaviour let a dead consumer linger until its next map push).
func TestRelayChatClosesWedgedSession(t *testing.T) {
	var mu sync.Mutex
	var closed bool
	sim, err := world.NewSim(testScenario(9, 86400))
	if err != nil {
		t.Fatal(err)
	}
	h, err := newLandHostSim(&mu, &closed, sim, "127.0.0.1:0", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer h.ln.Close()

	c1, c2 := net.Pipe()
	defer c2.Close()
	sess := newSession(c1)
	// Fill the queue to its cap; no writer goroutine drains it, like a
	// consumer whose writer is stuck on a dead socket.
	sess.qmax = 1
	wedge, err := slp.EncodeFrame(slp.Pong{})
	if err != nil {
		t.Fatal(err)
	}
	sess.backlog = append(sess.backlog, wedge)

	spawn := sim.Scenario().Land.Spawns[0]
	mu.Lock()
	id, err := sim.AddExternal(spawn)
	if err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	sess.avatarID = id
	sess.pos = spawn
	h.sessions[sess] = struct{}{}
	h.relayChat(world.ChatMessage{From: id + 1, Pos: spawn, Text: "hello"})
	mu.Unlock()

	select {
	case <-sess.quit:
	default:
		t.Fatal("wedged session not closed when the chat enqueue failed")
	}
	_ = c2.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Error("peer side still readable; connection should be closed")
	}
}

// TestPeerTransferAckTimeout kills a peer between Transfer and
// TransferAck: the ack read is deadline-bounded and surfaces a typed
// *PeerTimeoutError instead of hanging the estate's StepPending forever.
func TestPeerTransferAckTimeout(t *testing.T) {
	srv, err := NewEstate(EstateConfig{
		Estate:      testEstate(7, 86400),
		PeerTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.closeListeners()

	// A stub peer that swallows the transfer and never acks — a server
	// that died (or wedged) with the connection still open.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = io.Copy(io.Discard, conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	srv.peers[0*len(srv.hosts)+1] = &peerLink{conn: conn, bw: bufio.NewWriter(conn), timeout: srv.peerTimeout()}

	start := time.Now()
	err = srv.routeTick([]world.Transfer{{From: 0, To: 1, Avatar: []byte("capsule")}})
	elapsed := time.Since(start)
	var pte *PeerTimeoutError
	if !errors.As(err, &pte) {
		t.Fatalf("routeTick error = %v, want *PeerTimeoutError", err)
	}
	if pte.Op != "transfer ack" {
		t.Errorf("timeout op = %q, want %q", pte.Op, "transfer ack")
	}
	if pte.From != 0 || pte.To != 1 {
		t.Errorf("timeout route = %d -> %d, want 0 -> 1", pte.From, pte.To)
	}
	if elapsed > 3*time.Second {
		t.Errorf("ack timeout took %v, want bounded by the configured 200ms deadline", elapsed)
	}
}

// TestSingleLandAnalyticsQuery runs a single-land server with the
// analytics endpoint enabled through a full (warped) measurement and
// exercises the query lifecycle: empty reply before the first window,
// sealed cumulative/window/stats after the run, with region 0 carrying
// the full per-land analysis (network metrics included) and the global
// view the estate-style merge.
func TestSingleLandAnalyticsQuery(t *testing.T) {
	scn := testScenario(5, 1800)
	srv, err := New(Config{
		Addr:      "127.0.0.1:0",
		Scenario:  scn,
		Warp:      5000,
		TickEvery: time.Millisecond,
		Analytics: AnalyticsConfig{Addr: "127.0.0.1:0", Window: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.CloseAnalytics)

	qc, err := slp.DialQuery(srv.QueryAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	// Before the clock runs nothing is sealed: an empty reply, not an
	// error.
	res, err := qc.Cumulative(-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blob != nil || res.Windows != 0 || res.Sealed {
		t.Fatalf("pre-run cumulative = %+v, want empty unsealed reply", res)
	}

	if err := srv.Run(context.Background()); err == nil {
		t.Fatal("run ended without a duration-reached reason")
	}
	if err := srv.AnalyticsErr(); err != nil {
		t.Fatalf("analytics engine failed: %v", err)
	}

	// Sealed cumulative, global view: estate-style (no per-land network
	// metrics), full duration covered.
	res, err = qc.Cumulative(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sealed {
		t.Error("post-run cumulative not sealed")
	}
	// Samples run t=10..1800; the final one (t=1800) opens window 3, so
	// four windows seal: 0..2 at rollover, 3 at finish.
	if res.FirstWindow != 0 || res.Windows != 4 {
		t.Errorf("sealed window range = [%d, +%d), want [0, +4)", res.FirstWindow, res.Windows)
	}
	global, err := core.DecodeAnalysis(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if global.Summary.Snapshots == 0 || global.Summary.Unique == 0 {
		t.Errorf("sealed global summary is empty: %+v", global.Summary)
	}
	if global.End != scn.Duration {
		t.Errorf("sealed global End = %d, want %d", global.End, scn.Duration)
	}
	if len(global.Nets) != 0 {
		t.Error("estate-global analysis has network metrics; want none")
	}

	// Region 0 is the land itself: the full per-land analysis.
	res, err = qc.Cumulative(0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := core.DecodeAnalysis(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(region.Nets) == 0 {
		t.Error("region 0 analysis lacks network metrics")
	}
	if region.Summary.Snapshots != global.Summary.Snapshots {
		t.Errorf("region snapshots = %d, global = %d; single land should agree",
			region.Summary.Snapshots, global.Summary.Snapshots)
	}

	// A sealed window is queryable by index; out-of-range indices are
	// typed errors.
	wres, err := qc.WindowAt(-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	win, err := core.DecodeAnalysis(wres.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if win.Start < 600 || win.End >= 1200 {
		t.Errorf("window 1 covers [%d, %d], want within [600, 1200)", win.Start, win.End)
	}
	if _, err := qc.WindowAt(-1, 99); err == nil {
		t.Error("window 99 query succeeded, want out-of-range error")
	}
	if _, err := qc.Cumulative(5); err == nil {
		t.Error("region 5 query succeeded, want bad-region error")
	}

	st, err := qc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.Regions != 1 || st.Windows != 4 {
		t.Errorf("stats = %+v, want sealed, 1 region, 4 windows", st)
	}
	if st.Queries == 0 {
		t.Error("stats report zero queries served")
	}
	if st.WsSnapshots == 0 {
		t.Error("stats report zero workspace snapshots; engine statistics not wired")
	}
}
