package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"slmob/internal/slp"
	"slmob/internal/world"
)

// servedFingerprint folds a finished estate's migration counters and
// every region's resident states into a comparable string.
func servedFingerprint(srv *EstateServer) string {
	s := fmt.Sprintf("t=%d cross=%d tele=%d blocked=%d",
		srv.est.Time(), srv.est.Crossings(), srv.est.Teleports(), srv.est.BlockedHandoffs())
	var buf []world.AvatarState
	for i := 0; i < srv.est.NumRegions(); i++ {
		buf = srv.est.Region(i).ResidentStates(buf[:0])
		s += fmt.Sprintf("|r%d:%d[", i, len(buf))
		for _, st := range buf {
			s += fmt.Sprintf("%d@%x,%x;%v ", st.ID, st.Pos.X, st.Pos.Y, st.Seated)
		}
		s += "]"
	}
	return s
}

// TestEstateServedParallelDifferential runs the full networked estate —
// TCP transfer links, gated concurrent routing, parallel post-step
// serving — to completion at several worker counts and requires the
// final world state to be bit-identical to the serial service: the
// parallel tick engine must not perturb the hosted measurement.
func TestEstateServedParallelDifferential(t *testing.T) {
	run := func(workers int) string {
		est := testEstate(3, 1200)
		est.CrossProb = 0.01
		est.TeleportProb = 0.004
		est.SimWorkers = workers
		srv, err := NewEstate(EstateConfig{
			Estate:    est,
			Warp:      4000,
			TickEvery: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(context.Background()); !errors.Is(err, ErrDurationReached) {
			t.Fatalf("workers=%d run = %v, want duration reached", workers, err)
		}
		if srv.Crossings() == 0 || srv.Teleports() == 0 {
			t.Fatalf("workers=%d: crossings=%d teleports=%d — differential is vacuous",
				workers, srv.Crossings(), srv.Teleports())
		}
		return servedFingerprint(srv)
	}

	want := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d served estate diverged from serial:\n got %.200s\nwant %.200s",
				workers, got, want)
		}
	}
}

// TestEstateTickStats: a finished run reports its tick-loop timing.
func TestEstateTickStats(t *testing.T) {
	est := testEstate(7, 600)
	est.SimWorkers = 2
	srv, err := NewEstate(EstateConfig{
		Estate:    est,
		Warp:      4000,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Run(context.Background()); !errors.Is(err, ErrDurationReached) {
		t.Fatalf("run = %v", err)
	}
	st := srv.TickStats()
	if st.Intervals == 0 || st.Steps == 0 {
		t.Fatalf("tick stats empty: %+v", st)
	}
	if st.Steps < st.Intervals {
		t.Errorf("steps %d < intervals %d at warp 4000", st.Steps, st.Intervals)
	}
	if st.Max == 0 || st.Total < st.Max {
		t.Errorf("tick durations inconsistent: total %v max %v", st.Total, st.Max)
	}
	if st.Budget != time.Millisecond {
		t.Errorf("budget = %v, want the configured TickEvery", st.Budget)
	}
}

// TestDirectoryConnHeldOpenDoesNotStallShutdown is the regression gate
// for directory-connection tracking: an idle monitor connection sits in
// a 30 s read deadline, and Run used to be unable to return until it
// expired because the serving goroutine was joined on s.wg with nothing
// closing the socket. Shutdown must close tracked directory
// connections and return promptly.
func TestDirectoryConnHeldOpenDoesNotStallShutdown(t *testing.T) {
	srv, err := NewEstate(EstateConfig{
		Estate:    testEstate(11, 86400),
		Warp:      100,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	// A directory client that asks once and then holds the connection
	// open, idle, like a monitor between polls.
	conn, err := net.Dial("tcp", srv.DirectoryAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := slp.WriteMessage(conn, slp.DirectoryRequest{}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := slp.ReadMessage(conn); err != nil {
		t.Fatalf("directory reply: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return with a directory connection held open")
	}
}
