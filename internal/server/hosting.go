package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/geom"
	"slmob/internal/sensor"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// landHost serves the slp session protocol for one hosted land. The
// single-land Server owns exactly one; an EstateServer owns one per
// region, all guarded by the estate-wide lock. The owner supplies the
// mutex, runs the simulation clock, and calls pushDueLocked after each
// advance.
type landHost struct {
	mu       *sync.Mutex
	closed   *bool
	ln       net.Listener
	sim      *world.Sim
	sensors  *sensor.Engine
	sessions map[*session]struct{}
	warp     float64
	password string

	// onPeer, when non-nil, accepts inter-server transfer links (estate
	// regions only); a single-land host refuses them.
	onPeer func(conn net.Conn, hello slp.PeerHello)
}

// sessionBacklog bounds a session's outbound push backlog. The queue
// grows on demand, so a healthy monitor that momentarily falls behind a
// high-warp burst just buffers (a whole measurement run is a few
// hundred pushes); a client that stopped reading altogether accumulates
// until this cap and is dropped. The bound is on count, not bytes: each
// entry is an already-snapshotted push the producer paid for anyway.
const sessionBacklog = 4096

// session is one connected client.
type session struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex
	// qmu/qcond guard the outbound push backlog (map pushes, chat
	// events) drained by the session's writer goroutine, so producers
	// holding the sim lock never touch the network. quit closes on
	// teardown; once guards it.
	qmu     sync.Mutex
	qcond   *sync.Cond
	backlog []slp.Message
	qclosed bool
	// inflight counts the batch the writer goroutine is currently
	// writing; backlog empty + inflight zero means fully drained.
	inflight int
	// qmax caps the backlog; sessionBacklog unless a test narrows it.
	qmax int
	quit chan struct{}
	once sync.Once
	// observer marks a measurement-grade session: no avatar admitted,
	// full-resolution map replies.
	observer bool
	avatarID trace.AvatarID
	// subTau, when non-zero, requests a map push every subTau sim seconds.
	subTau   int64
	nextPush int64
}

// newSession wraps an accepted connection.
func newSession(conn net.Conn) *session {
	sess := &session{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		qmax: sessionBacklog,
		quit: make(chan struct{}),
	}
	sess.qcond = sync.NewCond(&sess.qmu)
	return sess
}

// enqueue hands a push to the session's writer goroutine without ever
// blocking the caller — producers hold the sim lock. A backlog at the
// cap means the client stopped draining its socket long ago: the
// session is closed (the drop-slow-consumer policy) rather than letting
// one wedged client stall the clock for every region.
func (sess *session) enqueue(m slp.Message) {
	sess.qmu.Lock()
	if sess.qclosed {
		sess.qmu.Unlock()
		return
	}
	if len(sess.backlog) >= sess.qmax {
		sess.qmu.Unlock()
		sess.close()
		return
	}
	sess.backlog = append(sess.backlog, m)
	sess.qcond.Signal()
	sess.qmu.Unlock()
}

// close tears the session down from any goroutine: the writer exits via
// the closed flag, the reader via the closed connection.
func (sess *session) close() {
	sess.once.Do(func() {
		sess.qmu.Lock()
		sess.qclosed = true
		sess.qcond.Broadcast()
		sess.qmu.Unlock()
		close(sess.quit)
	})
	sess.conn.Close()
}

// writeLoop drains the push backlog onto the connection in batches.
// Write failures close the session loudly so the reader goroutine drops
// it.
func (sess *session) writeLoop() {
	for {
		sess.qmu.Lock()
		for len(sess.backlog) == 0 && !sess.qclosed {
			sess.qcond.Wait()
		}
		if sess.qclosed {
			sess.qmu.Unlock()
			return
		}
		batch := sess.backlog
		sess.backlog = nil
		sess.inflight = len(batch)
		sess.qmu.Unlock()
		for _, m := range batch {
			if err := sess.write(m); err != nil {
				sess.close()
				return
			}
		}
		sess.qmu.Lock()
		sess.inflight = 0
		sess.qmu.Unlock()
	}
}

// drained reports that every queued push has been written (or the
// session died trying).
func (sess *session) drained() bool {
	sess.qmu.Lock()
	defer sess.qmu.Unlock()
	return sess.qclosed || (len(sess.backlog) == 0 && sess.inflight == 0)
}

// drain waits until the writer goroutine has flushed every queued push,
// the session closes, or the timeout passes — the graceful half of
// shutdown. Pushes are queued asynchronously, so when a run ends its
// final snapshots may still be in flight: healthy monitors must receive
// them before the connection closes (the old synchronous write path got
// this for free).
func (sess *session) drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for !sess.drained() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func newLandHost(mu *sync.Mutex, closed *bool, scn world.Scenario, addr string, warp float64, password string) (*landHost, error) {
	sim, err := world.NewSim(scn)
	if err != nil {
		return nil, err
	}
	return newLandHostSim(mu, closed, sim, addr, warp, password)
}

func newLandHostSim(mu *sync.Mutex, closed *bool, sim *world.Sim, addr string, warp float64, password string) (*landHost, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &landHost{
		mu:       mu,
		closed:   closed,
		ln:       ln,
		sim:      sim,
		sensors:  sensor.NewEngine(sim.Scenario().Land),
		sessions: make(map[*session]struct{}),
		warp:     warp,
		password: password,
	}
	sim.SetChatHook(h.relayChat)
	return h, nil
}

// addr returns the host's bound listen address.
func (h *landHost) addr() string { return h.ln.Addr().String() }

// acceptLoop serves connections until the listener closes; every
// connection runs on its own goroutine tracked by wg.
func (h *landHost) acceptLoop(wg *sync.WaitGroup) error {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return fmt.Errorf("server: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.serveConn(conn, wg)
		}()
	}
}

// sessionsLocked snapshots the live sessions; the owner holds the lock.
func (h *landHost) sessionsLocked() []*session {
	out := make([]*session, 0, len(h.sessions))
	for sess := range h.sessions {
		out = append(out, sess)
	}
	return out
}

// drainSessions waits (concurrently, bounded by timeout) for every
// session's queued pushes to reach the wire — called between the end of
// the run and the connection teardown, without holding the sim lock.
func drainSessions(sessions []*session, timeout time.Duration) {
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *session) {
			defer wg.Done()
			sess.drain(timeout)
		}(sess)
	}
	wg.Wait()
}

// shutdownLocked closes every session; the owner holds the lock.
func (h *landHost) shutdownLocked() {
	for sess := range h.sessions {
		sess.conn.Close()
	}
}

// serveConn runs the handshake and then the session loop.
func (h *landHost) serveConn(conn net.Conn, wg *sync.WaitGroup) {
	defer conn.Close()
	sess := newSession(conn)

	// Handshake.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		// A protocol violation gets a typed reply before the close; a
		// transport failure (timeout, reset) cannot be answered.
		var de *slp.DecodeError
		if errors.As(err, &de) {
			_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
		}
		return
	}
	if peer, ok := msg.(slp.PeerHello); ok {
		if h.onPeer == nil {
			_ = sess.write(slp.Error{Code: slp.ErrNotEstate, Message: "not an estate region"})
			return
		}
		if peer.Version != slp.Version {
			_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
			return
		}
		if h.password != "" && peer.Password != h.password {
			_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		h.onPeer(conn, peer)
		return
	}
	hello, ok := msg.(slp.Hello)
	if !ok {
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "expected hello"})
		return
	}
	if hello.Version != slp.Version {
		_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
		return
	}
	if h.password != "" && hello.Password != h.password {
		_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	h.mu.Lock()
	if *h.closed {
		h.mu.Unlock()
		return
	}
	land := h.sim.Scenario().Land
	var spawn geom.Vec
	if hello.Observer {
		// Observers are not in-world: no avatar, no capacity slot, and
		// nothing for curious residents to investigate.
		sess.observer = true
	} else {
		spawn = land.Spawns[0]
		id, err := h.sim.AddExternal(spawn)
		if err != nil {
			h.mu.Unlock()
			_ = sess.write(slp.Error{Code: slp.ErrLandFull, Message: err.Error()})
			return
		}
		sess.avatarID = id
	}
	h.sessions[sess] = struct{}{}
	welcome := slp.Welcome{
		AvatarID: uint64(sess.avatarID),
		Land:     land.Name,
		Size:     land.Size,
		SimTime:  h.sim.Time(),
		Warp:     h.warp,
		Spawn:    spawn,
	}
	h.mu.Unlock()

	if err := sess.write(welcome); err != nil {
		h.dropSession(sess)
		return
	}
	defer h.dropSession(sess)
	defer sess.close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess.writeLoop()
	}()

	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		if done := h.handle(sess, msg); done {
			return
		}
	}
}

func (h *landHost) dropSession(sess *session) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.sessions[sess]; ok {
		delete(h.sessions, sess)
		if !sess.observer {
			h.sim.RemoveExternal(sess.avatarID)
		}
	}
}

// handle processes one client message; it reports whether the session is
// finished.
func (h *landHost) handle(sess *session, msg slp.Message) bool {
	switch v := msg.(type) {
	case slp.Move:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.MoveExternal(sess.avatarID, v.Pos)
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.Chat:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.ExternalChat(sess.avatarID, v.Text)
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.MapRequest:
		h.mu.Lock()
		h.pushMapLocked(sess)
		h.mu.Unlock()
	case slp.Subscribe:
		if v.Tau <= 0 {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "tau must be positive"})
			return false
		}
		h.mu.Lock()
		sess.subTau = v.Tau
		now := h.sim.Time()
		if v.Aligned {
			// Anchor pushes to absolute multiples of tau on the server
			// clock, so every monitor of an estate shares one timeline.
			sess.nextPush = now - now%v.Tau + v.Tau
		} else {
			sess.nextPush = now + v.Tau
		}
		h.mu.Unlock()
	case slp.ObjectCreate:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		rep, err := h.sensors.Deploy(h.sim.Time(), sensor.Spec{
			Pos:       v.Pos,
			Range:     v.Range,
			Period:    v.Period,
			Collector: v.Collector,
		})
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrObjectsForbidden, Message: err.Error()})
			return false
		}
		_ = sess.write(slp.ObjectReply{ObjectID: rep.ID, ExpiresAt: rep.ExpiresAt})
	case slp.Ping:
		h.mu.Lock()
		now := h.sim.Time()
		h.mu.Unlock()
		_ = sess.write(slp.Pong{Seq: v.Seq, SimTime: now})
	case slp.Logout:
		return true
	default:
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest,
			Message: fmt.Sprintf("unexpected %s", msg.Type())})
	}
	return false
}

// stepLocked advances the host's per-second duties after a simulation
// step: sensor scans and due subscription pushes. Called with the lock
// held, after any cross-region handoffs of the tick have settled, so
// monitors never observe an avatar mid-flight.
func (h *landHost) stepLocked(now int64) {
	h.sensors.Step(now, h.sim)
	for sess := range h.sessions {
		if sess.subTau > 0 && now >= sess.nextPush {
			sess.nextPush = now + sess.subTau
			h.pushMapLocked(sess)
		}
	}
}

// pushMapLocked sends the land map to one session. Avatar sessions get
// the coarse quantised map with seated avatars at {0,0,0} — the
// authentic Second Life quirk, repaired downstream by monitors.
// Observer sessions get the measurement-grade full-resolution map with
// exact positions and the seated flag.
func (h *landHost) pushMapLocked(sess *session) {
	states := h.sim.States(nil)
	now := h.sim.Time()
	// The snapshot is taken under the lock; the network write happens on
	// the session's writer goroutine. A wedged subscriber therefore costs
	// the clock nothing: its queue fills and the session is dropped.
	if sess.observer {
		reply := slp.MapReplyFull{SimTime: now}
		for _, st := range states {
			reply.Entries = append(reply.Entries, slp.FullEntry{ID: st.ID, Pos: st.Pos, Seated: st.Seated})
		}
		sess.enqueue(reply)
	} else {
		reply := slp.MapReply{SimTime: now}
		for _, st := range states {
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			reply.Entries = append(reply.Entries, slp.MapEntry{ID: st.ID, Pos: pos})
		}
		sess.enqueue(reply)
	}
}

// relayChat forwards avatar chat to sessions whose avatar is in range.
// Called from Sim.Step with the lock held.
func (h *landHost) relayChat(m world.ChatMessage) {
	states := h.sim.States(nil)
	pos := map[trace.AvatarID]geom.Vec{}
	for _, st := range states {
		pos[st.ID] = st.Pos
	}
	for sess := range h.sessions {
		p, ok := pos[sess.avatarID]
		if !ok || sess.avatarID == m.From {
			continue
		}
		if p.DistXY(m.Pos) <= ChatRange {
			// enqueue closes the session when its queue is full, so a
			// wedged client is dropped here instead of lingering silently
			// until its next map push.
			sess.enqueue(slp.ChatEvent{From: m.From, Pos: m.Pos, Text: m.Text})
		}
	}
}

func (sess *session) write(m slp.Message) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := slp.WriteMessage(sess.bw, m); err != nil {
		return err
	}
	return sess.bw.Flush()
}
