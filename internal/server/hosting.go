package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/geom"
	"slmob/internal/sensor"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// landHost serves the slp session protocol for one hosted land. The
// single-land Server owns exactly one; an EstateServer owns one per
// region, all guarded by the estate-wide lock. The owner supplies the
// mutex, runs the simulation clock, and calls pushDueLocked after each
// advance.
type landHost struct {
	mu       *sync.Mutex
	closed   *bool
	ln       net.Listener
	sim      *world.Sim
	sensors  *sensor.Engine
	sessions map[*session]struct{}
	warp     float64
	password string

	// onPeer, when non-nil, accepts inter-server transfer links (estate
	// regions only); a single-land host refuses them.
	onPeer func(conn net.Conn, hello slp.PeerHello)
}

// session is one connected client.
type session struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex
	// observer marks a measurement-grade session: no avatar admitted,
	// full-resolution map replies.
	observer bool
	avatarID trace.AvatarID
	// subTau, when non-zero, requests a map push every subTau sim seconds.
	subTau   int64
	nextPush int64
}

func newLandHost(mu *sync.Mutex, closed *bool, scn world.Scenario, addr string, warp float64, password string) (*landHost, error) {
	sim, err := world.NewSim(scn)
	if err != nil {
		return nil, err
	}
	return newLandHostSim(mu, closed, sim, addr, warp, password)
}

func newLandHostSim(mu *sync.Mutex, closed *bool, sim *world.Sim, addr string, warp float64, password string) (*landHost, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &landHost{
		mu:       mu,
		closed:   closed,
		ln:       ln,
		sim:      sim,
		sensors:  sensor.NewEngine(sim.Scenario().Land),
		sessions: make(map[*session]struct{}),
		warp:     warp,
		password: password,
	}
	sim.SetChatHook(h.relayChat)
	return h, nil
}

// addr returns the host's bound listen address.
func (h *landHost) addr() string { return h.ln.Addr().String() }

// acceptLoop serves connections until the listener closes; every
// connection runs on its own goroutine tracked by wg.
func (h *landHost) acceptLoop(wg *sync.WaitGroup) error {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return fmt.Errorf("server: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.serveConn(conn)
		}()
	}
}

// shutdownLocked closes every session; the owner holds the lock.
func (h *landHost) shutdownLocked() {
	for sess := range h.sessions {
		sess.conn.Close()
	}
}

// serveConn runs the handshake and then the session loop.
func (h *landHost) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{conn: conn, bw: bufio.NewWriter(conn)}

	// Handshake.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		// A protocol violation gets a typed reply before the close; a
		// transport failure (timeout, reset) cannot be answered.
		var de *slp.DecodeError
		if errors.As(err, &de) {
			_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
		}
		return
	}
	if peer, ok := msg.(slp.PeerHello); ok {
		if h.onPeer == nil {
			_ = sess.write(slp.Error{Code: slp.ErrNotEstate, Message: "not an estate region"})
			return
		}
		if peer.Version != slp.Version {
			_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
			return
		}
		if h.password != "" && peer.Password != h.password {
			_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		h.onPeer(conn, peer)
		return
	}
	hello, ok := msg.(slp.Hello)
	if !ok {
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "expected hello"})
		return
	}
	if hello.Version != slp.Version {
		_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
		return
	}
	if h.password != "" && hello.Password != h.password {
		_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	h.mu.Lock()
	if *h.closed {
		h.mu.Unlock()
		return
	}
	land := h.sim.Scenario().Land
	var spawn geom.Vec
	if hello.Observer {
		// Observers are not in-world: no avatar, no capacity slot, and
		// nothing for curious residents to investigate.
		sess.observer = true
	} else {
		spawn = land.Spawns[0]
		id, err := h.sim.AddExternal(spawn)
		if err != nil {
			h.mu.Unlock()
			_ = sess.write(slp.Error{Code: slp.ErrLandFull, Message: err.Error()})
			return
		}
		sess.avatarID = id
	}
	h.sessions[sess] = struct{}{}
	welcome := slp.Welcome{
		AvatarID: uint64(sess.avatarID),
		Land:     land.Name,
		Size:     land.Size,
		SimTime:  h.sim.Time(),
		Warp:     h.warp,
		Spawn:    spawn,
	}
	h.mu.Unlock()

	if err := sess.write(welcome); err != nil {
		h.dropSession(sess)
		return
	}
	defer h.dropSession(sess)

	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		if done := h.handle(sess, msg); done {
			return
		}
	}
}

func (h *landHost) dropSession(sess *session) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.sessions[sess]; ok {
		delete(h.sessions, sess)
		if !sess.observer {
			h.sim.RemoveExternal(sess.avatarID)
		}
	}
}

// handle processes one client message; it reports whether the session is
// finished.
func (h *landHost) handle(sess *session, msg slp.Message) bool {
	switch v := msg.(type) {
	case slp.Move:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.MoveExternal(sess.avatarID, v.Pos)
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.Chat:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.ExternalChat(sess.avatarID, v.Text)
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.MapRequest:
		h.mu.Lock()
		h.pushMapLocked(sess)
		h.mu.Unlock()
	case slp.Subscribe:
		if v.Tau <= 0 {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "tau must be positive"})
			return false
		}
		h.mu.Lock()
		sess.subTau = v.Tau
		now := h.sim.Time()
		if v.Aligned {
			// Anchor pushes to absolute multiples of tau on the server
			// clock, so every monitor of an estate shares one timeline.
			sess.nextPush = now - now%v.Tau + v.Tau
		} else {
			sess.nextPush = now + v.Tau
		}
		h.mu.Unlock()
	case slp.ObjectCreate:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		rep, err := h.sensors.Deploy(h.sim.Time(), sensor.Spec{
			Pos:       v.Pos,
			Range:     v.Range,
			Period:    v.Period,
			Collector: v.Collector,
		})
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrObjectsForbidden, Message: err.Error()})
			return false
		}
		_ = sess.write(slp.ObjectReply{ObjectID: rep.ID, ExpiresAt: rep.ExpiresAt})
	case slp.Ping:
		h.mu.Lock()
		now := h.sim.Time()
		h.mu.Unlock()
		_ = sess.write(slp.Pong{Seq: v.Seq, SimTime: now})
	case slp.Logout:
		return true
	default:
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest,
			Message: fmt.Sprintf("unexpected %s", msg.Type())})
	}
	return false
}

// stepLocked advances the host's per-second duties after a simulation
// step: sensor scans and due subscription pushes. Called with the lock
// held, after any cross-region handoffs of the tick have settled, so
// monitors never observe an avatar mid-flight.
func (h *landHost) stepLocked(now int64) {
	h.sensors.Step(now, h.sim)
	for sess := range h.sessions {
		if sess.subTau > 0 && now >= sess.nextPush {
			sess.nextPush = now + sess.subTau
			h.pushMapLocked(sess)
		}
	}
}

// pushMapLocked sends the land map to one session. Avatar sessions get
// the coarse quantised map with seated avatars at {0,0,0} — the
// authentic Second Life quirk, repaired downstream by monitors.
// Observer sessions get the measurement-grade full-resolution map with
// exact positions and the seated flag.
func (h *landHost) pushMapLocked(sess *session) {
	states := h.sim.States(nil)
	now := h.sim.Time()
	var err error
	if sess.observer {
		reply := slp.MapReplyFull{SimTime: now}
		for _, st := range states {
			reply.Entries = append(reply.Entries, slp.FullEntry{ID: st.ID, Pos: st.Pos, Seated: st.Seated})
		}
		err = sess.write(reply)
	} else {
		reply := slp.MapReply{SimTime: now}
		for _, st := range states {
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			reply.Entries = append(reply.Entries, slp.MapEntry{ID: st.ID, Pos: pos})
		}
		// Write outside the sim lock would be nicer, but map pushes are
		// small and sessions buffered; keep ordering simple and correct.
		err = sess.write(reply)
	}
	if err != nil {
		// A session whose pushes cannot be delivered — wedged transport,
		// or a map that no longer marshals — must not silently starve its
		// monitor or stall the clock on every tick: close the connection
		// so the reader goroutine drops the session loudly.
		sess.conn.Close()
	}
}

// relayChat forwards avatar chat to sessions whose avatar is in range.
// Called from Sim.Step with the lock held.
func (h *landHost) relayChat(m world.ChatMessage) {
	states := h.sim.States(nil)
	pos := map[trace.AvatarID]geom.Vec{}
	for _, st := range states {
		pos[st.ID] = st.Pos
	}
	for sess := range h.sessions {
		p, ok := pos[sess.avatarID]
		if !ok || sess.avatarID == m.From {
			continue
		}
		if p.DistXY(m.Pos) <= ChatRange {
			_ = sess.write(slp.ChatEvent{From: m.From, Pos: m.Pos, Text: m.Text})
		}
	}
}

func (sess *session) write(m slp.Message) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := slp.WriteMessage(sess.bw, m); err != nil {
		return err
	}
	return sess.bw.Flush()
}
