package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"slmob/internal/geom"
	"slmob/internal/sensor"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// landHost serves the slp session protocol for one hosted land. The
// single-land Server owns exactly one; an EstateServer owns one per
// region, all guarded by the estate-wide lock. The owner supplies the
// mutex, runs the simulation clock, and calls pushDueLocked after each
// advance.
type landHost struct {
	mu       *sync.Mutex
	closed   *bool
	ln       net.Listener
	sim      *world.Sim
	sensors  *sensor.Engine
	sessions map[*session]struct{}
	warp     float64
	password string

	// defaultAOI, when positive, imposes an area-of-interest radius on
	// every avatar subscription that did not request its own (slserve
	// -aoi). Observer sessions are always exempt: the measurement path
	// stays full-land, full-resolution.
	defaultAOI float64

	// snap is the shared per-tick serving snapshot: positions are
	// materialised (and the AOI grid rebuilt) at most once per simulation
	// tick, no matter how many sessions are pushed to.
	snap mapSnap

	// onPeer, when non-nil, accepts inter-server transfer links (estate
	// regions only); a single-land host refuses them.
	onPeer func(conn net.Conn, hello slp.PeerHello)
}

// aoiGridCell is the serving grid's cell edge in metres — sized for the
// chat/contact-range radii (20–96 m) AOI subscribers ask for.
const aoiGridCell = 32.0

// keyframeEvery is the delta-subscription keyframe cadence: after this
// many delta pushes the next push is a full keyframe, so a client that
// lost a frame (and discards deltas until resync) converges within one
// cadence interval.
const keyframeEvery = 12

// mapSnap is the per-tick snapshot the whole push path serves from: the
// avatar states (sorted by ID, externals included), a spatial grid over
// them for AOI queries, and the lazily encoded wire frames shared by
// every same-shaped subscriber. The frames must be allocated fresh per
// tick — previous ticks' frames may still sit in session backlogs — but
// the states buffer and grid are reused, so a tick costs O(avatars)
// plus at most one encoding per frame shape, instead of O(sessions ×
// avatars) as the old per-session States scan did.
type mapSnap struct {
	t     int64
	built bool
	// dirty forces a rebuild within a tick after external-avatar
	// membership or position changes (admits, moves, logouts), which
	// happen between simulation steps: a client that polls right after
	// logging in must see itself on the map.
	dirty  bool
	states []world.AvatarState
	// grid indexes states by slice position (not avatar ID), so an AOI
	// visit resolves the full state — seated flag included — without a
	// lookup.
	grid   *geom.Grid
	coarse []byte // shared framed MapReply (quantised, seated at {0,0,0})
	full   []byte // shared framed MapReplyFull (exact, observers only)
}

// sessionBacklog bounds a session's outbound push backlog. The queue
// grows on demand, so a healthy monitor that momentarily falls behind a
// high-warp burst just buffers (a whole measurement run is a few
// hundred pushes); a client that stopped reading altogether accumulates
// until this cap and is dropped. The bound is on count, not bytes: each
// entry is an already-snapshotted push the producer paid for anyway.
const sessionBacklog = 4096

// session is one connected client.
type session struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex
	// qmu/qcond guard the outbound push backlog (map pushes, chat
	// events) drained by the session's writer goroutine, so producers
	// holding the sim lock never touch the network. The backlog holds
	// pre-framed wire bytes: per-tick pushes are encoded once and the
	// same frame enqueued to every subscriber. quit closes on teardown;
	// once guards it.
	qmu     sync.Mutex
	qcond   *sync.Cond
	backlog [][]byte
	// spare recycles the previously drained batch's slice header array,
	// so steady-state producers append into pooled capacity.
	spare   [][]byte
	qclosed bool
	// inflight counts the batch the writer goroutine is currently
	// writing; backlog empty + inflight zero means fully drained.
	inflight int
	// qmax caps the backlog; sessionBacklog unless a test narrows it.
	qmax int
	quit chan struct{}
	once sync.Once
	// observer marks a measurement-grade session: no avatar admitted,
	// full-resolution map replies.
	observer bool
	avatarID trace.AvatarID
	// pos caches the session avatar's current (clamped) position —
	// externals only move through MoveExternal, so the cache is exact.
	// Guarded by the host lock like everything below.
	pos geom.Vec
	// subTau, when non-zero, requests a map push every subTau sim seconds.
	subTau   int64
	nextPush int64
	// aoi, when positive, filters pushes to entities within aoi metres
	// of the session's avatar; delta switches the pushes to MapDelta
	// frames against prevView, with a keyframe every keyframeEvery
	// pushes (needKey forces one, e.g. on a fresh subscription).
	aoi      float64
	delta    bool
	deltaSeq uint32
	sinceKey int
	needKey  bool
	// prevView/curView are the session's last and in-progress quantised
	// views (sorted by ID); updBuf/remBuf are the delta scratch lists.
	// All four are pooled across pushes.
	prevView []slp.MapEntry
	curView  []slp.MapEntry
	updBuf   []slp.MapEntry
	remBuf   []trace.AvatarID
}

// newSession wraps an accepted connection.
func newSession(conn net.Conn) *session {
	sess := &session{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		qmax: sessionBacklog,
		quit: make(chan struct{}),
	}
	sess.qcond = sync.NewCond(&sess.qmu)
	return sess
}

// enqueueRaw hands one pre-framed message to the session's writer
// goroutine without ever blocking the caller — producers hold the sim
// lock. A nil frame marks an upstream encoding failure and closes the
// session (the old per-session write path failed the same way). A
// backlog at the cap means the client stopped draining its socket long
// ago: the session is closed (the drop-slow-consumer policy) rather
// than letting one wedged client stall the clock for every region.
//
//slmob:hotpath
func (sess *session) enqueueRaw(frame []byte) {
	if frame == nil {
		sess.close()
		return
	}
	sess.qmu.Lock()
	if sess.qclosed {
		sess.qmu.Unlock()
		return
	}
	if len(sess.backlog) >= sess.qmax {
		sess.qmu.Unlock()
		sess.close()
		return
	}
	sess.backlog = append(sess.backlog, frame)
	sess.qcond.Signal()
	sess.qmu.Unlock()
}

// close tears the session down from any goroutine: the writer exits via
// the closed flag, the reader via the closed connection.
func (sess *session) close() {
	sess.once.Do(func() {
		sess.qmu.Lock()
		sess.qclosed = true
		sess.qcond.Broadcast()
		sess.qmu.Unlock()
		close(sess.quit)
	})
	sess.conn.Close()
}

// writeLoop drains the push backlog onto the connection in batches,
// flushing once per batch. Write failures close the session loudly so
// the reader goroutine drops it.
func (sess *session) writeLoop() {
	for {
		sess.qmu.Lock()
		for len(sess.backlog) == 0 && !sess.qclosed {
			sess.qcond.Wait()
		}
		if sess.qclosed {
			sess.qmu.Unlock()
			return
		}
		batch := sess.backlog
		sess.backlog = sess.spare[:0]
		sess.spare = nil
		sess.inflight = len(batch)
		sess.qmu.Unlock()
		err := sess.writeFrames(batch)
		sess.qmu.Lock()
		sess.inflight = 0
		sess.spare = batch[:0]
		sess.qmu.Unlock()
		if err != nil {
			sess.close()
			return
		}
	}
}

// writeFrames writes one drained batch of pre-framed messages under the
// write mutex, sharing the connection with direct request replies.
func (sess *session) writeFrames(frames [][]byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	for _, f := range frames {
		if _, err := sess.bw.Write(f); err != nil {
			return err
		}
	}
	return sess.bw.Flush()
}

// drained reports that every queued push has been written (or the
// session died trying).
func (sess *session) drained() bool {
	sess.qmu.Lock()
	defer sess.qmu.Unlock()
	return sess.qclosed || (len(sess.backlog) == 0 && sess.inflight == 0)
}

// drain waits until the writer goroutine has flushed every queued push,
// the session closes, or the timeout passes — the graceful half of
// shutdown. Pushes are queued asynchronously, so when a run ends its
// final snapshots may still be in flight: healthy monitors must receive
// them before the connection closes (the old synchronous write path got
// this for free).
func (sess *session) drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for !sess.drained() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func newLandHost(mu *sync.Mutex, closed *bool, scn world.Scenario, addr string, warp float64, password string) (*landHost, error) {
	sim, err := world.NewSim(scn)
	if err != nil {
		return nil, err
	}
	return newLandHostSim(mu, closed, sim, addr, warp, password)
}

func newLandHostSim(mu *sync.Mutex, closed *bool, sim *world.Sim, addr string, warp float64, password string) (*landHost, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &landHost{
		mu:       mu,
		closed:   closed,
		ln:       ln,
		sim:      sim,
		sensors:  sensor.NewEngine(sim.Scenario().Land),
		sessions: make(map[*session]struct{}),
		warp:     warp,
		password: password,
	}
	sim.SetChatHook(h.relayChat)
	return h, nil
}

// addr returns the host's bound listen address.
func (h *landHost) addr() string { return h.ln.Addr().String() }

// acceptLoop serves connections until the listener closes; every
// connection runs on its own goroutine tracked by wg.
func (h *landHost) acceptLoop(wg *sync.WaitGroup) error {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return fmt.Errorf("server: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.serveConn(conn, wg)
		}()
	}
}

// sessionsLocked snapshots the live sessions; the owner holds the lock.
func (h *landHost) sessionsLocked() []*session {
	out := make([]*session, 0, len(h.sessions))
	for sess := range h.sessions {
		out = append(out, sess)
	}
	return out
}

// drainSessions waits (concurrently, bounded by timeout) for every
// session's queued pushes to reach the wire — called between the end of
// the run and the connection teardown, without holding the sim lock.
func drainSessions(sessions []*session, timeout time.Duration) {
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *session) {
			defer wg.Done()
			sess.drain(timeout)
		}(sess)
	}
	wg.Wait()
}

// shutdownLocked closes every session; the owner holds the lock.
func (h *landHost) shutdownLocked() {
	for sess := range h.sessions {
		sess.conn.Close()
	}
}

// serveConn runs the handshake and then the session loop.
func (h *landHost) serveConn(conn net.Conn, wg *sync.WaitGroup) {
	defer conn.Close()
	sess := newSession(conn)

	// Handshake.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		// A protocol violation gets a typed reply before the close; a
		// transport failure (timeout, reset) cannot be answered.
		var de *slp.DecodeError
		if errors.As(err, &de) {
			_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
		}
		return
	}
	if peer, ok := msg.(slp.PeerHello); ok {
		if h.onPeer == nil {
			_ = sess.write(slp.Error{Code: slp.ErrNotEstate, Message: "not an estate region"})
			return
		}
		if peer.Version != slp.Version {
			_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
			return
		}
		if h.password != "" && peer.Password != h.password {
			_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		h.onPeer(conn, peer)
		return
	}
	hello, ok := msg.(slp.Hello)
	if !ok {
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "expected hello"})
		return
	}
	if hello.Version != slp.Version {
		_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
		return
	}
	if h.password != "" && hello.Password != h.password {
		_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	h.mu.Lock()
	if *h.closed {
		h.mu.Unlock()
		return
	}
	land := h.sim.Scenario().Land
	var spawn geom.Vec
	if hello.Observer {
		// Observers are not in-world: no avatar, no capacity slot, and
		// nothing for curious residents to investigate.
		sess.observer = true
	} else {
		spawn = land.Spawns[0]
		id, err := h.sim.AddExternal(spawn)
		if err != nil {
			h.mu.Unlock()
			_ = sess.write(slp.Error{Code: slp.ErrLandFull, Message: err.Error()})
			return
		}
		sess.avatarID = id
		if p, ok := h.sim.ExternalPos(id); ok {
			sess.pos = p
		}
		h.snap.dirty = true
	}
	h.sessions[sess] = struct{}{}
	welcome := slp.Welcome{
		AvatarID: uint64(sess.avatarID),
		Land:     land.Name,
		Size:     land.Size,
		SimTime:  h.sim.Time(),
		Warp:     h.warp,
		Spawn:    spawn,
	}
	h.mu.Unlock()

	if err := sess.write(welcome); err != nil {
		h.dropSession(sess)
		return
	}
	defer h.dropSession(sess)
	defer sess.close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess.writeLoop()
	}()

	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = sess.write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		if done := h.handle(sess, msg); done {
			return
		}
	}
}

func (h *landHost) dropSession(sess *session) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.sessions[sess]; ok {
		delete(h.sessions, sess)
		if !sess.observer {
			h.sim.RemoveExternal(sess.avatarID)
			h.snap.dirty = true
		}
	}
}

// handle processes one client message; it reports whether the session is
// finished.
func (h *landHost) handle(sess *session, msg slp.Message) bool {
	switch v := msg.(type) {
	case slp.Move:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.MoveExternal(sess.avatarID, v.Pos)
		if err == nil {
			if p, ok := h.sim.ExternalPos(sess.avatarID); ok {
				sess.pos = p
			}
			h.snap.dirty = true
		}
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.Chat:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		err := h.sim.ExternalChat(sess.avatarID, v.Text)
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.MapRequest:
		h.mu.Lock()
		h.pushMapLocked(sess)
		h.mu.Unlock()
	case slp.Subscribe:
		if v.Tau <= 0 {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "tau must be positive"})
			return false
		}
		if v.Radius < 0 || math.IsNaN(v.Radius) || math.IsInf(v.Radius, 0) {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "radius must be finite and non-negative"})
			return false
		}
		h.mu.Lock()
		sess.subTau = v.Tau
		now := h.sim.Time()
		if v.Aligned {
			// Anchor pushes to absolute multiples of tau on the server
			// clock, so every monitor of an estate shares one timeline.
			sess.nextPush = now - now%v.Tau + v.Tau
		} else {
			sess.nextPush = now + v.Tau
		}
		if !sess.observer {
			// Interest management is an avatar-session facility; the
			// observer measurement path always stays full-land and
			// full-resolution, so a crawler cannot mis-measure by
			// accident. A server-wide default radius applies to avatars
			// that did not pick their own.
			radius := v.Radius
			if radius <= 0 {
				radius = h.defaultAOI
			}
			// Clamp to the land diagonal: the grid never holds a point
			// farther away, so a larger radius buys nothing but
			// VisitWithin cost — and an unclamped huge one (1e9 m) would
			// stall the region's tick loop for every session.
			if m := h.maxAOIRadius(); radius > m {
				radius = m
			}
			sess.aoi = radius
			sess.delta = v.Delta
			sess.needKey = true
		}
		h.mu.Unlock()
	case slp.ObjectCreate:
		if sess.observer {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "observer session has no avatar"})
			return false
		}
		h.mu.Lock()
		rep, err := h.sensors.Deploy(h.sim.Time(), sensor.Spec{
			Pos:       v.Pos,
			Range:     v.Range,
			Period:    v.Period,
			Collector: v.Collector,
		})
		h.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrObjectsForbidden, Message: err.Error()})
			return false
		}
		_ = sess.write(slp.ObjectReply{ObjectID: rep.ID, ExpiresAt: rep.ExpiresAt})
	case slp.Ping:
		h.mu.Lock()
		now := h.sim.Time()
		h.mu.Unlock()
		_ = sess.write(slp.Pong{Seq: v.Seq, SimTime: now})
	case slp.Logout:
		return true
	default:
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest,
			Message: fmt.Sprintf("unexpected %s", msg.Type())})
	}
	return false
}

// maxAOIRadius is the largest useful area-of-interest radius for the
// hosted land: its diagonal. Every stored point is within the land, so
// any radius beyond the diagonal returns the same entities at strictly
// higher grid-visit cost; Subscribe clamps against it.
func (h *landHost) maxAOIRadius() float64 {
	size := h.sim.Scenario().Land.Size
	if size <= 0 {
		size = 256 // Second Life's default region edge
	}
	return size * math.Sqrt2
}

// stepLocked advances the host's per-second duties after a simulation
// step: sensor scans and due subscription pushes. Called with the lock
// held, after any cross-region handoffs of the tick have settled, so
// monitors never observe an avatar mid-flight.
func (h *landHost) stepLocked(now int64) {
	h.sensors.Step(now, h.sim)
	for sess := range h.sessions {
		if sess.subTau > 0 && now >= sess.nextPush {
			sess.nextPush = now + sess.subTau
			h.pushMapLocked(sess)
		}
	}
}

// ensureSnapLocked returns the serving snapshot for the current tick,
// rebuilding the states buffer and AOI grid only when the tick advanced
// or an external-avatar change dirtied it. Every push of a tick — for
// any number of sessions — reads this one materialisation.
//
//slmob:hotpath
func (h *landHost) ensureSnapLocked() *mapSnap {
	snap := &h.snap
	now := h.sim.Time()
	if snap.built && snap.t == now && !snap.dirty {
		return snap
	}
	snap.states = h.sim.States(snap.states)
	if snap.grid == nil {
		snap.grid = geom.NewGrid(aoiGridCell)
	}
	snap.grid.Reset()
	for i := range snap.states {
		snap.grid.Insert(int64(i), snap.states[i].Pos)
	}
	snap.t = now
	snap.built = true
	snap.dirty = false
	// Frames encode lazily per shape; they must be fresh allocations each
	// rebuild because the previous tick's frames may still sit in session
	// backlogs.
	snap.coarse = nil
	snap.full = nil
	return snap
}

// coarseFrameLocked returns the tick's shared framed coarse MapReply —
// quantised positions, seated avatars at {0,0,0} — encoding it on first
// use. Returns nil when encoding fails; enqueueRaw turns that into a
// session close, as the old per-session write path did.
func (h *landHost) coarseFrameLocked(snap *mapSnap) []byte {
	if snap.coarse == nil {
		reply := slp.MapReply{SimTime: snap.t, Entries: make([]slp.MapEntry, 0, len(snap.states))}
		for _, st := range snap.states {
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			reply.Entries = append(reply.Entries, slp.MapEntry{ID: st.ID, Pos: pos})
		}
		frame, err := slp.EncodeFrame(reply)
		if err != nil {
			return nil
		}
		snap.coarse = frame
	}
	return snap.coarse
}

// fullFrameLocked returns the tick's shared framed MapReplyFull — exact
// positions, seated flag — for observer sessions. Entries keep the
// States order, so the observer wire bytes are identical to the old
// per-session encoding.
func (h *landHost) fullFrameLocked(snap *mapSnap) []byte {
	if snap.full == nil {
		reply := slp.MapReplyFull{SimTime: snap.t, Entries: make([]slp.FullEntry, 0, len(snap.states))}
		for _, st := range snap.states {
			reply.Entries = append(reply.Entries, slp.FullEntry{ID: st.ID, Pos: st.Pos, Seated: st.Seated})
		}
		frame, err := slp.EncodeFrame(reply)
		if err != nil {
			return nil
		}
		snap.full = frame
	}
	return snap.full
}

// pushMapLocked sends the land map to one session. Avatar sessions get
// the coarse quantised map with seated avatars at {0,0,0} — the
// authentic Second Life quirk, repaired downstream by monitors — either
// whole-land (a frame shared by every such subscriber) or filtered to
// the session's area of interest. Observer sessions get the
// measurement-grade full-resolution map with exact positions and the
// seated flag. The snapshot is taken under the lock; the network write
// happens on the session's writer goroutine, so a wedged subscriber
// costs the clock nothing: its queue fills and the session is dropped.
//
//slmob:hotpath
func (h *landHost) pushMapLocked(sess *session) {
	snap := h.ensureSnapLocked()
	switch {
	case sess.observer:
		sess.enqueueRaw(h.fullFrameLocked(snap))
	case sess.aoi > 0 || sess.delta:
		h.pushFilteredLocked(sess, snap)
	default:
		sess.enqueueRaw(h.coarseFrameLocked(snap))
	}
}

// pushFilteredLocked serves one AOI (and/or delta) avatar subscriber
// from the snapshot: the session's view is the ID-sorted, quantised set
// of entries within its radius of its avatar, answered by the grid
// rather than a land scan. Plain subscribers get the view as a MapReply;
// delta subscribers get a MapDelta against their previous view, with a
// keyframe every keyframeEvery pushes (or when needKey forces one) so a
// client that dropped a frame reconverges within one cadence interval.
//
//slmob:hotpath
func (h *landHost) pushFilteredLocked(sess *session, snap *mapSnap) {
	cur := sess.curView[:0]
	if sess.aoi > 0 {
		states := snap.states
		snap.grid.VisitWithin(sess.pos, sess.aoi, func(i int64, _ geom.Vec) bool {
			st := states[i]
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			cur = append(cur, slp.MapEntry{ID: st.ID, Pos: slp.QuantizePos(pos)})
			return true
		})
	} else {
		for _, st := range snap.states {
			pos := st.Pos
			if st.Seated {
				pos = geom.Vec{}
			}
			cur = append(cur, slp.MapEntry{ID: st.ID, Pos: slp.QuantizePos(pos)})
		}
	}
	// Views are diffed as sorted sets; the grid visits in cell order and
	// States in roster order, so sort unconditionally (insertion sort:
	// views are small or nearly sorted, and sort.Slice would box).
	sortEntriesByID(cur)
	sess.curView = cur

	if !sess.delta {
		sess.enqueueRaw(encodeViewFrame(snap.t, cur))
		return
	}
	sess.deltaSeq++
	d := slp.MapDelta{SimTime: snap.t, Seq: sess.deltaSeq}
	if sess.needKey || sess.sinceKey >= keyframeEvery {
		sess.needKey = false
		sess.sinceKey = 0
		d.Keyframe = true
		d.Updated = cur
	} else {
		sess.sinceKey++
		sess.updBuf, sess.remBuf = diffEntries(sess.prevView, cur, sess.updBuf[:0], sess.remBuf[:0])
		d.Updated = sess.updBuf
		d.Removed = sess.remBuf
	}
	// The just-built view becomes the baseline for the next diff; the old
	// baseline's storage is recycled as the next scratch view.
	sess.prevView, sess.curView = sess.curView, sess.prevView
	sess.enqueueRaw(encodeDeltaFrame(d))
}

// encodeViewFrame frames an AOI-filtered MapReply push. The entries are
// pre-quantised, and quantisation is idempotent on the wire (see
// slp.QuantizePos), so the client decodes exactly what an unquantised
// server-side view would have produced.
func encodeViewFrame(t int64, entries []slp.MapEntry) []byte {
	frame, err := slp.EncodeFrame(slp.MapReply{SimTime: t, Entries: entries})
	if err != nil {
		return nil
	}
	return frame
}

// encodeDeltaFrame frames one MapDelta push; nil on encoding failure.
func encodeDeltaFrame(d slp.MapDelta) []byte {
	frame, err := slp.EncodeFrame(d)
	if err != nil {
		return nil
	}
	return frame
}

// diffEntries merges two ID-sorted quantised views: upd collects every
// entry of cur that is new or moved since prev, rem every ID of prev
// absent from cur. Appends into (and returns) the supplied scratch
// slices, so steady-state diffing is allocation-free.
//
//slmob:hotpath
func diffEntries(prev, cur, upd []slp.MapEntry, rem []trace.AvatarID) ([]slp.MapEntry, []trace.AvatarID) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i].ID == cur[j].ID:
			if prev[i].Pos != cur[j].Pos {
				upd = append(upd, cur[j])
			}
			i++
			j++
		case prev[i].ID < cur[j].ID:
			rem = append(rem, prev[i].ID)
			i++
		default:
			upd = append(upd, cur[j])
			j++
		}
	}
	for ; i < len(prev); i++ {
		rem = append(rem, prev[i].ID)
	}
	for ; j < len(cur); j++ {
		upd = append(upd, cur[j])
	}
	return upd, rem
}

// sortEntriesByID sorts a view in place by avatar ID.
//
//slmob:hotpath
func sortEntriesByID(entries []slp.MapEntry) {
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		j := i - 1
		for j >= 0 && entries[j].ID > e.ID {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = e
	}
}

// relayChat forwards avatar chat to sessions whose avatar is in range.
// Called from Sim.Step with the lock held, mid-tick — the serving
// snapshot must NOT be rebuilt here (the step is still mutating
// positions), so range checks use each session's cached avatar
// position, which is exact: externals only ever move through
// MoveExternal. The event is framed once and the same bytes enqueued to
// every hearer.
func (h *landHost) relayChat(m world.ChatMessage) {
	var frame []byte
	for sess := range h.sessions {
		if sess.observer || sess.avatarID == m.From {
			continue
		}
		if sess.pos.DistXY(m.Pos) <= ChatRange {
			if frame == nil {
				f, err := slp.EncodeFrame(slp.ChatEvent{From: m.From, Pos: m.Pos, Text: m.Text})
				if err != nil {
					// Unreachable for admitted chat: the codec bounds
					// inbound Chat text at MaxChatText on decode, so the
					// re-framed event (text plus ~29 bytes of From/Pos)
					// always fits MaxPayload. Kept as a guard for future
					// message growth.
					return
				}
				frame = f
			}
			// enqueueRaw closes the session when its queue is full, so a
			// wedged client is dropped here instead of lingering silently
			// until its next map push.
			sess.enqueueRaw(frame)
		}
	}
}

func (sess *session) write(m slp.Message) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := slp.WriteMessage(sess.bw, m); err != nil {
		return err
	}
	return sess.bw.Flush()
}
