// The live analytics service: a query endpoint beside the estate (or
// single-land) listeners that serves per-window and cumulative Analysis
// results to many concurrent readers while the measurement is still
// running.
//
// Architecture: the sim clock, under its lock, samples resident states
// into an ordinary trace.EstateTick and hands it — outside the lock — to
// the analytics engine, a core.EstateAnalyzer consuming a channel-backed
// trace.EstateSource on its own goroutine. Every time the engine seals a
// window it publishes an immutable snapshot: the serialised window
// analyses plus the cumulative merge of every window so far (recomputed
// with core.MergeAnalyses, so a mid-run cumulative digest is by
// construction the digest an offline replay of the same windows would
// produce). Reader connections never touch the engine or the sim: each
// query is answered from the latest published snapshot through a bounded
// per-connection reply queue, and a reader that stops draining its
// socket is dropped — the drop-slow-reader policy — so analytics traffic
// can never stall the sim clock.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"slmob/internal/core"
	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/slp"
	"slmob/internal/trace"
)

// AnalyticsConfig configures the live analytics service of a Server or
// EstateServer. The zero value disables it.
type AnalyticsConfig struct {
	// Addr is the query endpoint's TCP listen address; empty disables
	// the service, "127.0.0.1:0" picks a free port.
	Addr string
	// Tau is the sampling period in simulated seconds (zero selects the
	// paper's 10 s). It must divide the analysis window.
	Tau int64
	// Window is the analysis window length in simulated seconds (zero
	// selects 3600); cumulative results advance once per sealed window.
	Window int64
	// Analysis configures the analysis pipeline (ranges, zones, session
	// gap...); zero fields select the paper's parameters.
	Analysis core.Config
	// QueueDepth bounds each reader connection's reply queue (zero
	// selects 8); a reader whose queue fills is dropped.
	QueueDepth int
	// Workers bounds the engine's concurrent region analyzers (zero
	// selects GOMAXPROCS).
	Workers int
}

func (c AnalyticsConfig) withDefaults() AnalyticsConfig {
	if c.Tau <= 0 {
		c.Tau = core.PaperTau
	}
	if c.Window <= 0 {
		c.Window = 3600
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// enabled reports whether the configuration asks for a query endpoint.
func (c AnalyticsConfig) enabled() bool { return c.Addr != "" }

// analyticsShot is one immutable published state of the analytics
// engine. Readers grab the current pointer under a short RLock and then
// work entirely on the snapshot; the engine publishes a fresh one per
// sealed window and never mutates an old one.
type analyticsShot struct {
	// simTime is the shared clock at publish (the sealed window's end,
	// or the trace end once sealed).
	simTime int64
	// firstK is the first sealed window's index; windows counts sealed
	// windows. sealed marks the final whole-trace publish.
	firstK  int64
	windows int64
	sealed  bool
	// cum is the encoded cumulative estate-global Analysis (merge of
	// every sealed window; the whole-trace result once sealed), and
	// regionCum its per-region counterparts.
	cum       []byte
	regionCum [][]byte
	// winBlobs[i] holds window firstK+dropped+i: the encoded global
	// analysis and per-region analyses. Old windows beyond the retention
	// bound are evicted; dropped counts them.
	winFirst   int64
	winGlobals [][]byte
	winRegions [][][]byte
	ws         graph.WorkspaceStats
}

// retainWindows bounds how many sealed windows keep their encoded blobs
// queryable; the cumulative merge always covers all of them regardless.
const retainWindows = 96

// regionInfo describes one hosted region to the analytics engine the
// same way world.EstateSource.Regions does, so anything reading the
// feed's provenance (sizes, origins) sees the familiar metadata.
func regionInfo(estate, name string, origin geom.Vec, size float64, tau int64) trace.Info {
	return trace.Info{
		Land:   name,
		Region: name,
		Origin: origin,
		Tau:    tau,
		Meta: map[string]string{
			"monitor": "live-analytics",
			"estate":  estate,
			"region":  name,
			"origin": strconv.FormatFloat(origin.X, 'g', -1, 64) + "," +
				strconv.FormatFloat(origin.Y, 'g', -1, 64),
			"size": strconv.FormatFloat(size, 'g', -1, 64),
		},
	}
}

// analyticsFeed adapts the tick channel to trace.EstateSource for the
// engine's Consume.
type analyticsFeed struct {
	infos []trace.Info
	ch    chan trace.EstateTick
}

// Regions implements trace.EstateSource.
func (f *analyticsFeed) Regions() []trace.Info { return f.infos }

// NextTick implements trace.EstateSource: it blocks until the sim hands
// over the next sampled tick, and reports a clean EOF when the feed is
// sealed.
func (f *analyticsFeed) NextTick(ctx context.Context) (trace.EstateTick, error) {
	select {
	case tick, ok := <-f.ch:
		if !ok {
			return trace.EstateTick{}, io.EOF
		}
		return tick, nil
	case <-ctx.Done():
		return trace.EstateTick{}, ctx.Err()
	}
}

// analytics is the running service: engine goroutine, accept loop, and
// per-reader connections.
type analytics struct {
	cfg     AnalyticsConfig
	regions int
	ln      net.Listener
	feed    *analyticsFeed

	// engineDone closes when the engine goroutine exits; runErr holds
	// its failure (visible only after engineDone).
	engineDone chan struct{}
	runErr     error

	// shotMu guards shot, the latest published snapshot (nil until the
	// first window seals).
	shotMu sync.RWMutex
	shot   *analyticsShot

	readers atomic.Int32
	dropped atomic.Uint64
	queries atomic.Uint64

	// connMu guards conns (open reader connections, closed on shutdown).
	connMu      sync.Mutex
	conns       map[net.Conn]struct{}
	closedConns bool

	sealOnce  sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// newAnalytics binds the query listener and starts the engine and accept
// loop. estate names the analysis; metas/infos describe the regions.
func newAnalytics(estate string, metas []core.RegionMeta, infos []trace.Info, cfg AnalyticsConfig) (*analytics, error) {
	cfg = cfg.withDefaults()
	if cfg.Window%cfg.Tau != 0 {
		return nil, fmt.Errorf("server: analytics window %d not a multiple of tau %d", cfg.Window, cfg.Tau)
	}
	ac := cfg.Analysis
	ac.Window = cfg.Window
	engine, err := core.NewEstateAnalyzer(estate, metas, cfg.Tau, ac, cfg.Workers)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	a := &analytics{
		cfg:        cfg,
		regions:    len(metas),
		ln:         ln,
		feed:       &analyticsFeed{infos: infos, ch: make(chan trace.EstateTick, 256)},
		engineDone: make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	// The engine's window hook runs on its Consume goroutine, so the
	// retained window lists need no lock: only the hook appends, and
	// readers see them solely through published immutable snapshots.
	var globals []*core.Analysis
	perRegion := make([][]*core.Analysis, len(metas))
	if err := engine.OnWindow(func(k int64, win *core.EstateAnalysis) {
		globals = append(globals, win.Global)
		for i, r := range win.Regions {
			perRegion[i] = append(perRegion[i], r)
		}
		a.publishWindow(k, globals, perRegion)
	}); err != nil {
		ln.Close()
		return nil, err
	}
	a.wg.Add(2)
	go func() {
		defer a.wg.Done()
		defer close(a.engineDone)
		res, err := engine.Consume(context.Background(), a.feed)
		if err != nil {
			a.runErr = err
			return
		}
		a.publishSealed(res, engine.WorkspaceStats())
	}()
	go func() {
		defer a.wg.Done()
		a.acceptLoop()
	}()
	return a, nil
}

// addr returns the query endpoint's bound address.
func (a *analytics) addr() string { return a.ln.Addr().String() }

// tau returns the sampling period.
func (a *analytics) tau() int64 { return a.cfg.Tau }

// offer hands one sampled tick to the engine. It blocks only while the
// feed buffer is full AND the engine is alive — the engine drains
// continuously, so in practice the clock never waits here; if the engine
// died, ticks are discarded so the sim keeps serving.
func (a *analytics) offer(tick trace.EstateTick) {
	select {
	case a.feed.ch <- tick:
	case <-a.engineDone:
	}
}

// seal ends the feed: the engine drains what is queued, finalises the
// whole-trace analysis, and publishes it as the sealed snapshot. The
// query endpoint stays up so readers can fetch the final result.
func (a *analytics) seal() {
	a.sealOnce.Do(func() { close(a.feed.ch) })
	<-a.engineDone
}

// close tears the whole service down: seal the engine, close the
// listener and every reader connection, and wait all goroutines out.
func (a *analytics) close() {
	a.closeOnce.Do(func() {
		a.seal()
		a.ln.Close()
		a.connMu.Lock()
		a.closedConns = true
		for conn := range a.conns {
			conn.Close()
		}
		a.connMu.Unlock()
	})
	a.wg.Wait()
}

// publishWindow recomputes the cumulative analyses over every sealed
// window and publishes a fresh snapshot. Runs on the engine goroutine,
// once per window rollover — well off the sim clock's path. Workspace
// statistics are deliberately absent mid-run (region workers still
// mutate them); the sealed publish carries the final values.
func (a *analytics) publishWindow(k int64, globals []*core.Analysis, perRegion [][]*core.Analysis) {
	shot := &analyticsShot{
		simTime: (k + 1) * a.cfg.Window,
		firstK:  k - int64(len(globals)) + 1,
		windows: int64(len(globals)),
	}
	var err error
	if shot.cum, err = encodeMerged(globals); err != nil {
		a.failPublish(fmt.Errorf("server: analytics cumulative encode: %w", err))
		return
	}
	shot.regionCum = make([][]byte, len(perRegion))
	for i, series := range perRegion {
		if shot.regionCum[i], err = encodeMerged(series); err != nil {
			a.failPublish(fmt.Errorf("server: analytics region %d cumulative encode: %w", i, err))
			return
		}
	}
	first := 0
	if len(globals) > retainWindows {
		first = len(globals) - retainWindows
	}
	shot.winFirst = shot.firstK + int64(first)
	shot.winGlobals = make([][]byte, 0, len(globals)-first)
	shot.winRegions = make([][][]byte, 0, len(globals)-first)
	for w := first; w < len(globals); w++ {
		g, err := core.EncodeAnalysis(globals[w])
		if err != nil {
			a.failPublish(fmt.Errorf("server: analytics window encode: %w", err))
			return
		}
		regs := make([][]byte, len(perRegion))
		for i := range perRegion {
			if regs[i], err = core.EncodeAnalysis(perRegion[i][w]); err != nil {
				a.failPublish(fmt.Errorf("server: analytics window region encode: %w", err))
				return
			}
		}
		shot.winGlobals = append(shot.winGlobals, g)
		shot.winRegions = append(shot.winRegions, regs)
	}
	a.install(shot)
}

// publishSealed publishes the final whole-trace snapshot after the
// engine's Consume returned. The cumulative becomes the exact whole-run
// Global/Regions — which the windowed-merge invariant guarantees equals
// the merge of the window series.
func (a *analytics) publishSealed(res *core.EstateAnalysis, ws graph.WorkspaceStats) {
	prev := a.current()
	shot := &analyticsShot{sealed: true, ws: ws}
	if res.Global != nil {
		shot.simTime = res.Global.End
	}
	if prev != nil {
		// Keep the sealed-window series queryable after the run.
		shot.firstK = prev.firstK
		shot.windows = prev.windows
		shot.winFirst = prev.winFirst
		shot.winGlobals = prev.winGlobals
		shot.winRegions = prev.winRegions
		if shot.simTime < prev.simTime {
			shot.simTime = prev.simTime
		}
	}
	var err error
	if res.Global == nil {
		// An empty run (sealed before any tick): nothing to encode.
		a.install(shot)
		return
	}
	if shot.cum, err = core.EncodeAnalysis(res.Global); err != nil {
		a.failPublish(fmt.Errorf("server: analytics sealed encode: %w", err))
		return
	}
	shot.regionCum = make([][]byte, len(res.Regions))
	for i, r := range res.Regions {
		if shot.regionCum[i], err = core.EncodeAnalysis(r); err != nil {
			a.failPublish(fmt.Errorf("server: analytics sealed region encode: %w", err))
			return
		}
	}
	a.install(shot)
}

func encodeMerged(series []*core.Analysis) ([]byte, error) {
	merged, err := core.MergeAnalyses(series)
	if err != nil {
		return nil, err
	}
	return core.EncodeAnalysis(merged)
}

func (a *analytics) install(shot *analyticsShot) {
	a.shotMu.Lock()
	a.shot = shot
	a.shotMu.Unlock()
}

func (a *analytics) current() *analyticsShot {
	a.shotMu.RLock()
	defer a.shotMu.RUnlock()
	return a.shot
}

// failPublish records an engine-side encoding failure. The service keeps
// answering from the last good snapshot; the error surfaces through Err.
func (a *analytics) failPublish(err error) {
	if a.runErr == nil {
		a.runErr = err
	}
}

// Err reports the engine's failure, if any; call after close or seal.
func (a *analytics) Err() error { return a.runErr }

// acceptLoop admits reader connections until the listener closes.
func (a *analytics) acceptLoop() {
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.connMu.Lock()
		if a.closedConns {
			a.connMu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.connMu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serveReader(conn)
		}()
	}
}

// readerIdleTimeout drops readers that stop querying; each query renews
// it.
const readerIdleTimeout = 60 * time.Second

// serveReader runs one analytics reader connection: a read loop parsing
// queries and a writer goroutine draining a bounded reply queue. The
// reply for one query is a batch of frames (a chunked analysis crosses
// several); batches keep per-query atomicity through the queue.
func (a *analytics) serveReader(conn net.Conn) {
	defer func() {
		conn.Close()
		a.connMu.Lock()
		delete(a.conns, conn)
		a.connMu.Unlock()
	}()
	a.readers.Add(1)
	defer a.readers.Add(-1)

	out := make(chan []slp.Message, a.cfg.QueueDepth)
	quit := make(chan struct{})
	defer close(quit)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		bw := bufio.NewWriter(conn)
		for {
			select {
			case batch := <-out:
				for _, m := range batch {
					_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
					if err := slp.WriteMessage(bw, m); err != nil {
						conn.Close()
						return
					}
				}
				if err := bw.Flush(); err != nil {
					conn.Close()
					return
				}
			case <-quit:
				return
			}
		}
	}()

	br := bufio.NewReader(conn)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(readerIdleTimeout))
		msg, err := slp.ReadMessage(br)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				a.enqueue(conn, out, []slp.Message{slp.Error{Code: slp.ErrMalformed, Message: de.Error()}})
			}
			return
		}
		q, ok := msg.(slp.Query)
		if !ok {
			if _, bye := msg.(slp.Logout); bye {
				return
			}
			a.enqueue(conn, out, []slp.Message{slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("unexpected %s at query endpoint", msg.Type())}})
			continue
		}
		a.queries.Add(1)
		if !a.enqueue(conn, out, a.reply(q)) {
			return
		}
	}
}

// enqueue hands one reply batch to the connection's writer without
// blocking. A full queue means the reader stopped draining: it is
// dropped (the connection closed) so its backlog cannot grow without
// bound. Reports whether the session is still alive.
func (a *analytics) enqueue(conn net.Conn, out chan []slp.Message, batch []slp.Message) bool {
	select {
	case out <- batch:
		return true
	default:
		a.dropped.Add(1)
		conn.Close()
		return false
	}
}

// reply builds the frame batch answering one query from the latest
// snapshot.
func (a *analytics) reply(q slp.Query) []slp.Message {
	shot := a.current()
	switch q.Target {
	case slp.QueryStats:
		st := slp.StatsReply{
			WindowSec: a.cfg.Window,
			Regions:   uint32(a.regions),
			Readers:   uint32(a.readers.Load()),
			Dropped:   a.dropped.Load(),
			Queries:   a.queries.Load(),
		}
		if shot != nil {
			st.SimTime = shot.simTime
			st.FirstWindow = shot.firstK
			st.Windows = shot.windows
			st.Sealed = shot.sealed
			st.WsSnapshots = uint64(shot.ws.Snapshots)
			st.WsIncremental = uint64(shot.ws.Incremental)
			st.WsRebuilds = uint64(shot.ws.FullRebuilds)
		}
		return []slp.Message{st}
	case slp.QueryCumulative:
		if shot == nil {
			// Nothing sealed yet: an empty reply, not an error — readers
			// polling a freshly started (or held) estate see "no data
			// yet" and try again.
			return []slp.Message{slp.AnalysisReply{Target: q.Target, Region: q.Region, Window: -1}}
		}
		blob, errMsg := a.cumulativeBlob(shot, q.Region)
		if errMsg != nil {
			return []slp.Message{*errMsg}
		}
		return chunked(q.Target, q.Region, -1, shot, blob)
	case slp.QueryWindow:
		if shot == nil || shot.windows == 0 {
			return []slp.Message{slp.AnalysisReply{Target: q.Target, Region: q.Region, Window: q.Window}}
		}
		w := q.Window
		if w < 0 {
			w = shot.firstK + shot.windows - 1
		}
		idx := w - shot.winFirst
		if w < shot.firstK || w >= shot.firstK+shot.windows {
			return []slp.Message{slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("window %d outside sealed range [%d,%d)", w, shot.firstK, shot.firstK+shot.windows)}}
		}
		if idx < 0 {
			return []slp.Message{slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("window %d evicted (retained from %d)", w, shot.winFirst)}}
		}
		var blob []byte
		if q.Region < 0 {
			blob = shot.winGlobals[idx]
		} else if int(q.Region) < a.regions {
			blob = shot.winRegions[idx][q.Region]
		} else {
			return []slp.Message{badRegion(q.Region, a.regions)}
		}
		return chunked(q.Target, q.Region, w, shot, blob)
	default:
		return []slp.Message{slp.Error{Code: slp.ErrBadRequest,
			Message: fmt.Sprintf("unknown query target %d", q.Target)}}
	}
}

func (a *analytics) cumulativeBlob(shot *analyticsShot, region int32) ([]byte, *slp.Error) {
	if region < 0 {
		return shot.cum, nil
	}
	if int(region) >= a.regions {
		e := badRegion(region, a.regions)
		return nil, &e
	}
	if shot.regionCum == nil {
		return nil, nil
	}
	return shot.regionCum[region], nil
}

func badRegion(region int32, n int) slp.Error {
	return slp.Error{Code: slp.ErrBadRequest,
		Message: fmt.Sprintf("region %d outside estate of %d regions", region, n)}
}

// chunked splits one encoded analysis into AnalysisReply frames. A nil
// blob yields a single empty reply (Total 0).
func chunked(target slp.QueryTarget, region int32, window int64, shot *analyticsShot, blob []byte) []slp.Message {
	hdr := slp.AnalysisReply{
		Target:      target,
		Region:      region,
		Window:      window,
		SimTime:     shot.simTime,
		FirstWindow: shot.firstK,
		Windows:     shot.windows,
		Sealed:      shot.sealed,
		Total:       uint32(len(blob)),
	}
	if len(blob) == 0 {
		return []slp.Message{hdr}
	}
	var batch []slp.Message
	for off := 0; off < len(blob); off += slp.MaxAnalysisChunk {
		end := off + slp.MaxAnalysisChunk
		if end > len(blob) {
			end = len(blob)
		}
		m := hdr
		m.Offset = uint32(off)
		m.Chunk = blob[off:end]
		batch = append(batch, m)
	}
	return batch
}
