// Package server hosts simulated lands over the slp wire protocol: it is
// the stand-in for the Second Life region servers the paper's monitors
// connected to. A Server hosts one land; an EstateServer hosts a whole
// multi-region grid on a shared warped clock, hands border-crossing
// avatars between its region servers over the network, and exposes a
// directory endpoint for grid discovery. Servers advance the world
// simulation in real time under a configurable time warp, admit external
// avatars (crawlers) and measurement-grade observers, relay local chat,
// answer coarse and full-resolution map requests, push map
// subscriptions, and enforce each land's object-deployment policy for
// sensors.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"slmob/internal/sensor"
	"slmob/internal/world"
)

// ChatRange is the local-chat audibility radius in metres (Second Life's
// "say" range is about 20 m).
const ChatRange = 20.0

// Config configures a region server.
type Config struct {
	// Addr is the TCP listen address; use "127.0.0.1:0" to pick a free
	// port (see Server.Addr).
	Addr string
	// Scenario is the hosted land simulation.
	Scenario world.Scenario
	// Warp is simulated seconds per wall-clock second (>= 1). The paper's
	// crawls ran for 24 real hours; under warp a full day takes
	// 86400/Warp seconds of wall clock.
	Warp float64
	// TickEvery is the wall-clock interval between simulation advances;
	// zero selects 10 ms.
	TickEvery time.Duration
	// Password, when non-empty, is required at login.
	Password string
}

// Server is a running single-land region server.
type Server struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	host   *landHost

	wg sync.WaitGroup
}

// New builds the server and binds its listener.
func New(cfg Config) (*Server, error) {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	s := &Server{cfg: cfg}
	host, err := newLandHost(&s.mu, &s.closed, cfg.Scenario, cfg.Addr, cfg.Warp, cfg.Password)
	if err != nil {
		return nil, err
	}
	s.host = host
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.host.addr() }

// SimTime returns the current simulation time.
func (s *Server) SimTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.host.sim.Time()
}

// Sensors exposes the sensor engine (for deployment bookkeeping in tests
// and tools).
func (s *Server) Sensors() *sensor.Engine { return s.host.sensors }

// Run serves until the context is cancelled or the duration of the hosted
// scenario elapses in sim time. It always returns a non-nil reason.
func (s *Server) Run(ctx context.Context) error {
	defer s.host.ln.Close()

	acceptErr := make(chan error, 1)
	go func() { acceptErr <- s.host.acceptLoop(&s.wg) }()

	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case err := <-acceptErr:
			s.shutdown()
			return err
		case <-ticker.C:
			carry += s.cfg.Warp * s.cfg.TickEvery.Seconds()
			steps := int(carry)
			carry -= float64(steps)
			if steps > 0 && s.advance(steps) {
				s.shutdown()
				return errors.New("server: scenario duration reached")
			}
		}
	}
}

// advance steps the simulation and reports whether the scenario ended.
func (s *Server) advance(steps int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < steps; i++ {
		s.host.sim.Step()
		now := s.host.sim.Time()
		s.host.stepLocked(now)
		if now >= s.cfg.Scenario.Duration {
			return true
		}
	}
	return false
}

func (s *Server) shutdown() {
	s.mu.Lock()
	s.closed = true
	s.host.shutdownLocked()
	s.mu.Unlock()
	s.wg.Wait()
}
