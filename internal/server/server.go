// Package server hosts simulated lands over the slp wire protocol: it is
// the stand-in for the Second Life region servers the paper's monitors
// connected to. A Server hosts one land; an EstateServer hosts a whole
// multi-region grid on a shared warped clock, hands border-crossing
// avatars between its region servers over the network, and exposes a
// directory endpoint for grid discovery. Servers advance the world
// simulation in real time under a configurable time warp, admit external
// avatars (crawlers) and measurement-grade observers, relay local chat,
// answer coarse and full-resolution map requests, push map
// subscriptions, and enforce each land's object-deployment policy for
// sensors.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"slmob/internal/core"
	"slmob/internal/geom"
	"slmob/internal/sensor"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// ChatRange is the local-chat audibility radius in metres (Second Life's
// "say" range is about 20 m).
const ChatRange = 20.0

// Config configures a region server.
type Config struct {
	// Addr is the TCP listen address; use "127.0.0.1:0" to pick a free
	// port (see Server.Addr).
	Addr string
	// Scenario is the hosted land simulation.
	Scenario world.Scenario
	// Warp is simulated seconds per wall-clock second (>= 1). The paper's
	// crawls ran for 24 real hours; under warp a full day takes
	// 86400/Warp seconds of wall clock.
	Warp float64
	// TickEvery is the wall-clock interval between simulation advances;
	// zero selects 10 ms.
	TickEvery time.Duration
	// Password, when non-empty, is required at login.
	Password string
	// AOIRadius, when positive, imposes an area-of-interest radius (in
	// metres) on every avatar map subscription that did not request its
	// own: pushed maps carry only entities within the radius of the
	// session's avatar. Observer sessions are always exempt.
	AOIRadius float64
	// Analytics configures the live analytics query endpoint; the zero
	// value disables it.
	Analytics AnalyticsConfig
}

// Server is a running single-land region server.
type Server struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	host   *landHost

	// analytics is the live query service; nil when disabled. A single
	// land runs as a one-region estate analysis, so its region 0 query
	// carries the full per-land Analysis (network metrics included).
	analytics *analytics

	wg sync.WaitGroup
}

// New builds the server and binds its listener.
func New(cfg Config) (*Server, error) {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	s := &Server{cfg: cfg}
	host, err := newLandHost(&s.mu, &s.closed, cfg.Scenario, cfg.Addr, cfg.Warp, cfg.Password)
	if err != nil {
		return nil, err
	}
	host.defaultAOI = cfg.AOIRadius
	s.host = host
	if cfg.Analytics.enabled() {
		acfg := cfg.Analytics.withDefaults()
		land := cfg.Scenario.Land
		metas := []core.RegionMeta{{Name: land.Name, Size: land.Size}}
		infos := []trace.Info{regionInfo(land.Name, land.Name, geom.Vec{}, land.Size, acfg.Tau)}
		a, err := newAnalytics(land.Name, metas, infos, acfg)
		if err != nil {
			host.ln.Close()
			return nil, err
		}
		s.analytics = a
	}
	return s, nil
}

// QueryAddr returns the analytics query endpoint's bound address, or ""
// when analytics is disabled.
func (s *Server) QueryAddr() string {
	if s.analytics == nil {
		return ""
	}
	return s.analytics.addr()
}

// CloseAnalytics tears the analytics service down (idempotent; no-op
// when disabled). Run leaves the service up on a clean end so the sealed
// whole-trace analysis stays queryable.
func (s *Server) CloseAnalytics() {
	if s.analytics != nil {
		s.analytics.close()
	}
}

// AnalyticsErr reports the analytics engine's failure, if any; call it
// after Run returned (which seals the engine) or after CloseAnalytics.
func (s *Server) AnalyticsErr() error {
	if s.analytics == nil {
		return nil
	}
	return s.analytics.Err()
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.host.addr() }

// SimTime returns the current simulation time.
func (s *Server) SimTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.host.sim.Time()
}

// Sensors exposes the sensor engine (for deployment bookkeeping in tests
// and tools).
func (s *Server) Sensors() *sensor.Engine { return s.host.sensors }

// Run serves until the context is cancelled or the duration of the hosted
// scenario elapses in sim time. It always returns a non-nil reason.
func (s *Server) Run(ctx context.Context) error {
	defer s.host.ln.Close()

	acceptErr := make(chan error, 1)
	go func() { acceptErr <- s.host.acceptLoop(&s.wg) }()

	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case err := <-acceptErr:
			s.shutdown()
			return err
		case <-ticker.C:
			carry += s.cfg.Warp * s.cfg.TickEvery.Seconds()
			steps := int(carry)
			carry -= float64(steps)
			if steps > 0 && s.advance(steps) {
				s.shutdown()
				return errors.New("server: scenario duration reached")
			}
		}
	}
}

// advance steps the simulation and reports whether the scenario ended.
// Analytics ticks are sampled under the lock — as residents, at the same
// τ boundaries an in-process source observes — and handed to the engine
// outside it.
func (s *Server) advance(steps int) bool {
	var ticks []trace.EstateTick
	end := false
	s.mu.Lock()
	for i := 0; i < steps; i++ {
		s.host.sim.Step()
		now := s.host.sim.Time()
		s.host.stepLocked(now)
		if s.analytics != nil && now > 0 && now%s.analytics.tau() == 0 {
			states := s.host.sim.ResidentStates(nil)
			snap := trace.Snapshot{T: now, Samples: make([]trace.Sample, len(states))}
			for j, st := range states {
				snap.Samples[j] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
			}
			ticks = append(ticks, trace.EstateTick{T: now, Regions: []trace.Snapshot{snap}})
		}
		if now >= s.cfg.Scenario.Duration {
			end = true
			break
		}
	}
	s.mu.Unlock()
	for _, tick := range ticks {
		s.analytics.offer(tick)
	}
	return end
}

func (s *Server) shutdown() {
	// Seal the analytics engine (the whole-trace analysis finalises and
	// publishes); the query endpoint stays up until CloseAnalytics.
	if s.analytics != nil {
		s.analytics.seal()
	}
	// Flag closed first (no new sessions), drain queued pushes to the
	// wire, then tear the connections down — a monitor must not lose the
	// run's final snapshots to the asynchronous write path.
	s.mu.Lock()
	s.closed = true
	sessions := s.host.sessionsLocked()
	s.mu.Unlock()
	drainSessions(sessions, 5*time.Second)
	s.mu.Lock()
	s.host.shutdownLocked()
	s.mu.Unlock()
	s.wg.Wait()
}
