// Package server hosts a simulated land over the slp wire protocol: it is
// the stand-in for the Second Life region server the paper's monitors
// connected to. It advances the world simulation in real time under a
// configurable time warp, admits external avatars (crawlers), relays
// local chat, answers coarse map requests, pushes map subscriptions, and
// enforces the land's object-deployment policy for sensors.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/geom"
	"slmob/internal/sensor"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// ChatRange is the local-chat audibility radius in metres (Second Life's
// "say" range is about 20 m).
const ChatRange = 20.0

// Config configures a region server.
type Config struct {
	// Addr is the TCP listen address; use "127.0.0.1:0" to pick a free
	// port (see Server.Addr).
	Addr string
	// Scenario is the hosted land simulation.
	Scenario world.Scenario
	// Warp is simulated seconds per wall-clock second (>= 1). The paper's
	// crawls ran for 24 real hours; under warp a full day takes
	// 86400/Warp seconds of wall clock.
	Warp float64
	// TickEvery is the wall-clock interval between simulation advances;
	// zero selects 10 ms.
	TickEvery time.Duration
	// Password, when non-empty, is required at login.
	Password string
}

// Server is a running region server.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	sim      *world.Sim
	sensors  *sensor.Engine
	sessions map[*session]struct{}
	closed   bool

	wg sync.WaitGroup
}

// session is one connected client.
type session struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex
	avatarID trace.AvatarID
	// subTau, when non-zero, requests a map push every subTau sim seconds.
	subTau   int64
	nextPush int64
}

// New builds the server and binds its listener.
func New(cfg Config) (*Server, error) {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	sim, err := world.NewSim(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sim:      sim,
		sensors:  sensor.NewEngine(cfg.Scenario.Land),
		sessions: make(map[*session]struct{}),
	}
	sim.SetChatHook(s.relayChat)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SimTime returns the current simulation time.
func (s *Server) SimTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim.Time()
}

// Sensors exposes the sensor engine (for deployment bookkeeping in tests
// and tools).
func (s *Server) Sensors() *sensor.Engine { return s.sensors }

// Run serves until the context is cancelled or the duration of the hosted
// scenario elapses in sim time. It always returns a non-nil reason.
func (s *Server) Run(ctx context.Context) error {
	defer s.ln.Close()

	acceptErr := make(chan error, 1)
	go func() { acceptErr <- s.acceptLoop() }()

	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case err := <-acceptErr:
			s.shutdown()
			return err
		case <-ticker.C:
			carry += s.cfg.Warp * s.cfg.TickEvery.Seconds()
			steps := int(carry)
			carry -= float64(steps)
			if steps > 0 && s.advance(steps) {
				s.shutdown()
				return errors.New("server: scenario duration reached")
			}
		}
	}
}

// advance steps the simulation and reports whether the scenario ended.
func (s *Server) advance(steps int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < steps; i++ {
		s.sim.Step()
		now := s.sim.Time()
		s.sensors.Step(now, s.sim)
		for sess := range s.sessions {
			if sess.subTau > 0 && now >= sess.nextPush {
				sess.nextPush = now + sess.subTau
				s.pushMapLocked(sess)
			}
		}
		if now >= s.cfg.Scenario.Duration {
			return true
		}
	}
	return false
}

func (s *Server) acceptLoop() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("server: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) shutdown() {
	s.mu.Lock()
	s.closed = true
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{conn: conn, bw: bufio.NewWriter(conn)}

	// Handshake.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := slp.ReadMessage(conn)
	if err != nil {
		return
	}
	hello, ok := msg.(slp.Hello)
	if !ok {
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "expected hello"})
		return
	}
	if hello.Version != slp.Version {
		_ = sess.write(slp.Error{Code: slp.ErrBadVersion, Message: "unsupported protocol version"})
		return
	}
	if s.cfg.Password != "" && hello.Password != s.cfg.Password {
		_ = sess.write(slp.Error{Code: slp.ErrBadCredentials, Message: "bad credentials"})
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	land := s.cfg.Scenario.Land
	spawn := land.Spawns[0]
	id, err := s.sim.AddExternal(spawn)
	if err != nil {
		s.mu.Unlock()
		_ = sess.write(slp.Error{Code: slp.ErrLandFull, Message: err.Error()})
		return
	}
	sess.avatarID = id
	s.sessions[sess] = struct{}{}
	welcome := slp.Welcome{
		AvatarID: uint64(id),
		Land:     land.Name,
		Size:     land.Size,
		SimTime:  s.sim.Time(),
		Warp:     s.cfg.Warp,
		Spawn:    spawn,
	}
	s.mu.Unlock()

	if err := sess.write(welcome); err != nil {
		s.dropSession(sess)
		return
	}
	defer s.dropSession(sess)

	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			return
		}
		if done := s.handle(sess, msg); done {
			return
		}
	}
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sess]; ok {
		delete(s.sessions, sess)
		s.sim.RemoveExternal(sess.avatarID)
	}
}

// handle processes one client message; it reports whether the session is
// finished.
func (s *Server) handle(sess *session, msg slp.Message) bool {
	switch v := msg.(type) {
	case slp.Move:
		s.mu.Lock()
		err := s.sim.MoveExternal(sess.avatarID, v.Pos)
		s.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.Chat:
		s.mu.Lock()
		err := s.sim.ExternalChat(sess.avatarID, v.Text)
		s.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: err.Error()})
		}
	case slp.MapRequest:
		s.mu.Lock()
		s.pushMapLocked(sess)
		s.mu.Unlock()
	case slp.Subscribe:
		if v.Tau <= 0 {
			_ = sess.write(slp.Error{Code: slp.ErrBadRequest, Message: "tau must be positive"})
			return false
		}
		s.mu.Lock()
		sess.subTau = v.Tau
		sess.nextPush = s.sim.Time() + v.Tau
		s.mu.Unlock()
	case slp.ObjectCreate:
		s.mu.Lock()
		rep, err := s.sensors.Deploy(s.sim.Time(), sensor.Spec{
			Pos:       v.Pos,
			Range:     v.Range,
			Period:    v.Period,
			Collector: v.Collector,
		})
		s.mu.Unlock()
		if err != nil {
			_ = sess.write(slp.Error{Code: slp.ErrObjectsForbidden, Message: err.Error()})
			return false
		}
		_ = sess.write(slp.ObjectReply{ObjectID: rep.ID, ExpiresAt: rep.ExpiresAt})
	case slp.Ping:
		s.mu.Lock()
		now := s.sim.Time()
		s.mu.Unlock()
		_ = sess.write(slp.Pong{Seq: v.Seq, SimTime: now})
	case slp.Logout:
		return true
	default:
		_ = sess.write(slp.Error{Code: slp.ErrBadRequest,
			Message: fmt.Sprintf("unexpected %s", msg.Type())})
	}
	return false
}

// pushMapLocked sends the coarse map to one session. Seated avatars are
// reported at {0,0,0}: the protocol carries the authentic Second Life
// quirk, and monitors must repair it downstream.
func (s *Server) pushMapLocked(sess *session) {
	states := s.sim.States(nil)
	reply := slp.MapReply{SimTime: s.sim.Time()}
	for _, st := range states {
		pos := st.Pos
		if st.Seated {
			pos = geom.Vec{}
		}
		reply.Entries = append(reply.Entries, slp.MapEntry{ID: st.ID, Pos: pos})
	}
	// Write outside the sim lock would be nicer, but map pushes are small
	// and sessions buffered; keep ordering simple and correct.
	_ = sess.write(reply)
}

// relayChat forwards avatar chat to sessions whose avatar is in range.
// Called from Sim.Step with s.mu held.
func (s *Server) relayChat(m world.ChatMessage) {
	states := s.sim.States(nil)
	pos := map[trace.AvatarID]geom.Vec{}
	for _, st := range states {
		pos[st.ID] = st.Pos
	}
	for sess := range s.sessions {
		p, ok := pos[sess.avatarID]
		if !ok || sess.avatarID == m.From {
			continue
		}
		if p.DistXY(m.Pos) <= ChatRange {
			_ = sess.write(slp.ChatEvent{From: m.From, Pos: m.Pos, Text: m.Text})
		}
	}
}

func (sess *session) write(m slp.Message) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = sess.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := slp.WriteMessage(sess.bw, m); err != nil {
		return err
	}
	return sess.bw.Flush()
}
