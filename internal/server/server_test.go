package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"slmob/internal/crawler"
	"slmob/internal/geom"
	"slmob/internal/slp"
	"slmob/internal/world"
)

// testScenario is small and quick under a high warp.
func testScenario(seed uint64, duration int64) world.Scenario {
	scn := world.DanceIsland(seed)
	scn.Duration = duration
	return scn
}

// startServer launches a server and returns it with a cancel function.
func startServer(t *testing.T, scn world.Scenario, warp float64) (*Server, context.CancelFunc) {
	t.Helper()
	srv, err := New(Config{
		Addr:      "127.0.0.1:0",
		Scenario:  scn,
		Warp:      warp,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	})
	return srv, cancel
}

func TestHandshakeAndPing(t *testing.T) {
	srv, _ := startServer(t, testScenario(1, 86400), 500)
	c, err := slp.Dial(srv.Addr(), "tester", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.Welcome()
	if w.Land != "Dance Island" || w.Size != 256 || w.AvatarID == 0 {
		t.Errorf("welcome = %+v", w)
	}
	simT, err := c.Ping(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if simT < 0 {
		t.Errorf("sim time = %d", simT)
	}
}

func TestPasswordRequired(t *testing.T) {
	scn := testScenario(2, 86400)
	srv, err := New(Config{Addr: "127.0.0.1:0", Scenario: scn, Warp: 100,
		TickEvery: time.Millisecond, Password: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Run(ctx) }()

	if _, err := slp.Dial(srv.Addr(), "x", "wrong", 5*time.Second); err == nil {
		t.Error("bad password accepted")
	}
	c, err := slp.Dial(srv.Addr(), "x", "secret", 5*time.Second)
	if err != nil {
		t.Fatalf("good password rejected: %v", err)
	}
	c.Close()
}

func TestMapPollReturnsAvatars(t *testing.T) {
	srv, _ := startServer(t, testScenario(3, 86400), 500)
	c, err := slp.Dial(srv.Addr(), "tester", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RequestMap(); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-c.Maps():
		// Warmup population (34) plus the client's own avatar.
		if len(reply.Entries) < 10 {
			t.Errorf("map has %d entries, expected a populated land", len(reply.Entries))
		}
		self := false
		for _, e := range reply.Entries {
			if e.ID == 0 {
				t.Error("zero avatar id on map")
			}
			if uint64(e.ID) == c.Welcome().AvatarID {
				self = true
			}
		}
		if !self {
			t.Error("own avatar missing from map (crawler appears as an avatar)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no map reply")
	}
}

func TestSubscriptionDeliversPeriodicSnapshots(t *testing.T) {
	srv, _ := startServer(t, testScenario(4, 86400), 1000)
	c, err := slp.Dial(srv.Addr(), "tester", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(10, false); err != nil {
		t.Fatal(err)
	}
	var times []int64
	deadline := time.After(10 * time.Second)
	for len(times) < 5 {
		select {
		case reply, ok := <-c.Maps():
			if !ok {
				t.Fatalf("connection died: %v", c.Err())
			}
			times = append(times, reply.SimTime)
		case <-deadline:
			t.Fatalf("only %d pushes", len(times))
		}
	}
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d < 10 {
			t.Errorf("push interval %d < tau", d)
		}
	}
}

func TestMoveAndChatAccepted(t *testing.T) {
	srv, _ := startServer(t, testScenario(5, 86400), 500)
	c, err := slp.Dial(srv.Addr(), "tester", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Move(geom.V2(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Chat("hello"); err != nil {
		t.Fatal(err)
	}
	// The session must still be healthy afterwards.
	if _, err := c.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestObjectPolicyPrivateLandRejects(t *testing.T) {
	// Dance Island is private: sensor deployment must fail, as in §2.
	srv, _ := startServer(t, testScenario(6, 86400), 500)
	c, err := slp.Dial(srv.Addr(), "builder", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CreateObject(slp.ObjectCreate{
		Kind: slp.ObjectSensor, Pos: geom.V2(128, 128), Range: 96, Period: 10,
		Collector: "http://127.0.0.1:1/flush",
	}, 5*time.Second)
	if err == nil {
		t.Fatal("sensor deployed on private land")
	}
}

func TestObjectPolicyPublicLandExpiry(t *testing.T) {
	scn := world.ApfelLand(7) // public, ObjectLifetime 7200
	scn.Duration = 86400
	srv, _ := startServer(t, scn, 500)
	c, err := slp.Dial(srv.Addr(), "builder", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.CreateObject(slp.ObjectCreate{
		Kind: slp.ObjectSensor, Pos: geom.V2(128, 128), Range: 200, Period: 10,
		Collector: "http://127.0.0.1:1/flush",
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObjectID == 0 {
		t.Error("zero object id")
	}
	if rep.ExpiresAt == 0 {
		t.Error("public-land object has no expiry")
	}
	if srv.Sensors().ActiveObjects() != 1 {
		t.Errorf("active objects = %d", srv.Sensors().ActiveObjects())
	}
}

func TestCrawlerEndToEnd(t *testing.T) {
	// Full measurement path: server under heavy time warp, crawler
	// collecting a 30-minute trace over TCP.
	scn := testScenario(8, 86400)
	srv, _ := startServer(t, scn, 2000)
	cr, err := crawler.New(crawler.Config{
		Addr: srv.Addr(), Name: "paper-crawler", Tau: 10,
		Duration: 1800, Mimic: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tr, err := cr.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) < 170 {
		t.Errorf("snapshots = %d, want ~180", len(tr.Snapshots))
	}
	sum := tr.Summarize()
	if sum.Unique < 10 {
		t.Errorf("unique users = %d, expected a populated land", sum.Unique)
	}
	// The crawler must have filtered itself out.
	for _, snap := range tr.Snapshots {
		for _, s := range snap.Samples {
			if s.ID == cr.SelfID() {
				t.Fatal("crawler observed itself")
			}
		}
	}
	if tr.Meta["monitor"] != "crawler" || tr.Meta["mimic"] != "true" {
		t.Errorf("meta = %v", tr.Meta)
	}
}

func TestLandFullRejectsLogin(t *testing.T) {
	scn := testScenario(10, 86400)
	scn.Land.MaxAvatars = scn.Warmup + 1 // room for exactly one client
	srv, _ := startServer(t, scn, 100)
	c1, err := slp.Dial(srv.Addr(), "one", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := slp.Dial(srv.Addr(), "two", "", 5*time.Second); err == nil {
		t.Error("second login accepted on a full land")
	}
}

// TestChatRelayAtMaxLength: the longest admissible chat text relays
// intact. MaxChatText is enforced by the codec on decode, so the
// ChatEvent re-encode in relayChat (text plus From/Pos framing) can
// never exceed MaxPayload and silently drop the event — this pins the
// boundary case.
func TestChatRelayAtMaxLength(t *testing.T) {
	srv, _ := startServer(t, testScenario(23, 86400), 500)
	hearer, err := slp.Dial(srv.Addr(), "hearer", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer hearer.Close()
	if err := hearer.Move(geom.V2(128, 128)); err != nil {
		t.Fatal(err)
	}
	// Round-trip a ping so the move is applied before the chat fires.
	if _, err := hearer.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	speaker, err := slp.Dial(srv.Addr(), "speaker", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()
	if err := speaker.Move(geom.V2(129, 128)); err != nil {
		t.Fatal(err)
	}
	text := strings.Repeat("a", slp.MaxChatText)
	if err := speaker.Chat(text); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-hearer.Chats():
			if !ok {
				t.Fatalf("hearer dropped: %v", hearer.Err())
			}
			if ev.Text == text {
				return // relayed intact
			}
			// Simulated avatars chat too (empty text); keep listening.
		case <-deadline:
			t.Fatal("max-length chat never relayed")
		}
	}
}
