// The estate server: networked multi-region hosting. One region server
// per grid cell serves clients on its own TCP listener while a shared
// warped clock advances every region in lockstep — the topology the live
// Second Life service ran, where one simulator process hosted each 256 m
// region of the contiguous grid.
//
// Avatar handoffs cross the network: when an avatar walks off a region's
// edge (or teleports to another region's attraction), the source region
// server encodes its full state — identity, re-based position, behaviour
// and random stream — into a capsule and sends it to the destination
// region server as an slp Transfer over an authenticated inter-server
// link. The destination either admits the avatar (TransferAck accepted)
// or refuses it at capacity, in which case the source turns the avatar
// back at the border. Because the clock is lockstep and transfers settle
// inside the tick, a served estate is bit-identical to the in-process
// EstateSim — pinned by the live-vs-replay parity test.
//
// Failure behaviour: the estate is one measurement instrument, not a
// fault-tolerant fleet. A dropped inter-server link or region listener
// is fatal — Run returns the error and shuts every region down — because
// an estate missing a region can neither route handoffs deterministically
// nor produce a consistent estate-wide trace.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/core"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// EstateConfig configures a networked estate service.
type EstateConfig struct {
	// Estate is the hosted multi-region world.
	Estate world.EstateConfig
	// Addr is the directory endpoint's TCP listen address; use
	// "127.0.0.1:0" to pick a free port (see DirectoryAddr).
	Addr string
	// RegionAddrs optionally pins each region server's listen address,
	// indexed like the estate grid; missing or empty entries pick free
	// ports on the loopback interface.
	RegionAddrs []string
	// Warp is simulated seconds per wall-clock second (>= 1), shared by
	// every region.
	Warp float64
	// TickEvery is the wall-clock interval between clock advances; zero
	// selects 10 ms.
	TickEvery time.Duration
	// Password, when non-empty, is required at login and on inter-server
	// links.
	Password string
	// AOIRadius, when positive, imposes an area-of-interest radius (in
	// metres) on every avatar map subscription that did not request its
	// own, in every region. Observer sessions are always exempt.
	AOIRadius float64
	// Hold keeps the shared clock at zero until a ClockStart arrives at
	// the directory endpoint (or StartClock is called), so monitors can
	// connect and subscribe before the first tick — the estate
	// measurement then observes the grid from second one.
	Hold bool
	// Analytics configures the live analytics query endpoint; the zero
	// value disables it.
	Analytics AnalyticsConfig
	// PeerTimeout bounds each inter-server handshake and transfer-ack
	// wait; zero selects 5 s. A peer that stops answering within it
	// fails the estate with a *PeerTimeoutError instead of hanging the
	// shared clock forever.
	PeerTimeout time.Duration
}

// EstateServer is a running estate service: one region server per grid
// cell plus the directory endpoint, all on one shared clock.
type EstateServer struct {
	cfg      EstateConfig
	duration int64

	mu      sync.Mutex
	closed  bool
	est     *world.EstateSim
	hosts   []*landHost
	peers   map[int]*peerLink     // outgoing transfer links, keyed from*regions+to
	inPeers map[net.Conn]struct{} // incoming transfer links, closed on shutdown

	dirLn net.Listener

	// analytics is the live query service; nil when disabled. It has
	// its own listener and lifecycle: it survives the estate's clean end
	// so the sealed whole-trace analysis stays queryable, and is torn
	// down by CloseAnalytics.
	analytics *analytics

	held  bool
	start chan struct{}

	wg sync.WaitGroup
}

// ErrDurationReached is the clean end of an estate service: the hosted
// measurement ran its full scheduled duration on the shared clock.
var ErrDurationReached = errors.New("server: estate duration reached")

// peerLink is one outgoing inter-server connection, used only by the
// tick loop (single writer, strict request/reply).
type peerLink struct {
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

// PeerTimeoutError reports an inter-server exchange that timed out: a
// peer region server stopped answering mid-handoff. Without the
// deadline, a dead peer between Transfer and TransferAck would hang the
// shared clock forever; with it, the estate fails loudly instead.
type PeerTimeoutError struct {
	// From and To are the handoff's estate region indices.
	From, To int
	// Op names the exchange that timed out ("peer handshake" or
	// "transfer ack").
	Op  string
	Err error
}

// Error implements error.
func (e *PeerTimeoutError) Error() string {
	return fmt.Sprintf("region %d -> %d: %s timed out: %v", e.From, e.To, e.Op, e.Err)
}

// Unwrap exposes the underlying network error.
func (e *PeerTimeoutError) Unwrap() error { return e.Err }

// peerTimeout returns the configured inter-server exchange bound.
func (s *EstateServer) peerTimeout() time.Duration {
	if s.cfg.PeerTimeout > 0 {
		return s.cfg.PeerTimeout
	}
	return 5 * time.Second
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// NewEstate validates the estate, builds one region server per cell plus
// the directory listener, and wires the inter-server transfer fabric.
func NewEstate(cfg EstateConfig) (*EstateServer, error) {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	est, err := world.NewEstateSim(cfg.Estate)
	if err != nil {
		return nil, err
	}
	s := &EstateServer{
		cfg:      cfg,
		duration: cfg.Estate.EffectiveDuration(),
		est:      est,
		peers:    make(map[int]*peerLink),
		inPeers:  make(map[net.Conn]struct{}),
		held:     cfg.Hold,
		start:    make(chan struct{}),
	}
	if !cfg.Hold {
		close(s.start)
	}
	fail := func(err error) (*EstateServer, error) {
		s.closeListeners()
		if s.analytics != nil {
			s.analytics.close()
		}
		return nil, err
	}
	for i := 0; i < est.NumRegions(); i++ {
		addr := "127.0.0.1:0"
		if i < len(cfg.RegionAddrs) && cfg.RegionAddrs[i] != "" {
			addr = cfg.RegionAddrs[i]
		}
		host, err := newLandHostSim(&s.mu, &s.closed, est.Region(i), addr, cfg.Warp, cfg.Password)
		if err != nil {
			return fail(err)
		}
		host.defaultAOI = cfg.AOIRadius
		region := i
		host.onPeer = func(conn net.Conn, hello slp.PeerHello) {
			s.servePeer(region, conn)
		}
		s.hosts = append(s.hosts, host)
	}
	dirAddr := cfg.Addr
	if dirAddr == "" {
		dirAddr = "127.0.0.1:0"
	}
	s.dirLn, err = net.Listen("tcp", dirAddr)
	if err != nil {
		return fail(err)
	}
	if cfg.Analytics.enabled() {
		acfg := cfg.Analytics.withDefaults()
		metas := make([]core.RegionMeta, len(s.hosts))
		infos := make([]trace.Info, len(s.hosts))
		for i, h := range s.hosts {
			scn := h.sim.Scenario()
			origin := cfg.Estate.RegionOrigin(i)
			metas[i] = core.RegionMeta{Name: scn.Land.Name, Origin: origin, Size: scn.Land.Size}
			infos[i] = regionInfo(cfg.Estate.Name, scn.Land.Name, origin, scn.Land.Size, acfg.Tau)
		}
		a, err := newAnalytics(cfg.Estate.Name, metas, infos, acfg)
		if err != nil {
			return fail(err)
		}
		s.analytics = a
	}
	// An estate whose directory cannot be framed (too many regions, or
	// absurd names) is a configuration error: fail here, loudly, instead
	// of serving a grid nobody can discover.
	if _, err := slp.Marshal(s.directoryLocked()); err != nil {
		return fail(fmt.Errorf("server: estate directory does not fit a frame: %w", err))
	}
	return s, nil
}

func (s *EstateServer) closeListeners() {
	for _, h := range s.hosts {
		h.ln.Close()
	}
	if s.dirLn != nil {
		s.dirLn.Close()
	}
}

// DirectoryAddr returns the directory endpoint's bound address — the
// single address a client needs to discover the whole grid.
func (s *EstateServer) DirectoryAddr() string { return s.dirLn.Addr().String() }

// RegionAddr returns region i's bound listen address.
func (s *EstateServer) RegionAddr(i int) string { return s.hosts[i].addr() }

// QueryAddr returns the analytics query endpoint's bound address, or ""
// when analytics is disabled.
func (s *EstateServer) QueryAddr() string {
	if s.analytics == nil {
		return ""
	}
	return s.analytics.addr()
}

// CloseAnalytics tears the analytics service down: the engine is sealed
// (finalising the whole-trace analysis from whatever was fed), the query
// listener and every reader connection close, and their goroutines are
// waited out. Idempotent; a no-op when analytics is disabled. Run leaves
// the service up on a clean end so the sealed result stays queryable —
// the owner calls this when done with it.
func (s *EstateServer) CloseAnalytics() {
	if s.analytics != nil {
		s.analytics.close()
	}
}

// AnalyticsErr reports the analytics engine's failure, if any; call it
// after CloseAnalytics (or after Run returned, which seals the engine).
func (s *EstateServer) AnalyticsErr() error {
	if s.analytics == nil {
		return nil
	}
	return s.analytics.Err()
}

// NumRegions returns the number of hosted regions.
func (s *EstateServer) NumRegions() int { return len(s.hosts) }

// SimTime returns the shared clock.
func (s *EstateServer) SimTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Time()
}

// Crossings returns how many walking handoffs completed over the
// inter-server links.
func (s *EstateServer) Crossings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Crossings()
}

// Teleports returns how many inter-region teleports completed over the
// inter-server links.
func (s *EstateServer) Teleports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Teleports()
}

// BlockedHandoffs returns how many handoffs destinations refused at
// capacity.
func (s *EstateServer) BlockedHandoffs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.BlockedHandoffs()
}

// StartClock releases a held clock (idempotent) and returns the shared
// clock value.
func (s *EstateServer) StartClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held {
		s.held = false
		close(s.start)
	}
	return s.est.Time()
}

// directoryLocked assembles the directory reply.
func (s *EstateServer) directoryLocked() slp.Directory {
	dir := slp.Directory{
		Estate:   s.cfg.Estate.Name,
		Rows:     uint16(s.cfg.Estate.Rows),
		Cols:     uint16(s.cfg.Estate.Cols),
		SimTime:  s.est.Time(),
		Warp:     s.cfg.Warp,
		Duration: s.duration,
		Held:     s.held,
	}
	if s.analytics != nil {
		dir.QueryAddr = s.analytics.addr()
	}
	for i, h := range s.hosts {
		scn := h.sim.Scenario()
		dir.Regions = append(dir.Regions, slp.DirRegion{
			Name:   scn.Land.Name,
			Addr:   h.addr(),
			Origin: s.cfg.Estate.RegionOrigin(i),
			Size:   scn.Land.Size,
		})
	}
	return dir
}

// Run serves the estate until the context is cancelled, a region or
// inter-server connection fails, or the estate duration elapses on the
// shared clock. It always returns a non-nil reason.
func (s *EstateServer) Run(ctx context.Context) error {
	defer s.closeListeners()

	acceptErr := make(chan error, len(s.hosts)+1)
	for _, h := range s.hosts {
		host := h
		go func() { acceptErr <- host.acceptLoop(&s.wg) }()
	}
	go func() { acceptErr <- s.directoryLoop() }()

	// A held clock waits for release before tick one, so monitors can
	// subscribe first and observe the measurement from its first second.
	select {
	case <-s.start:
	case <-ctx.Done():
		s.shutdown()
		return ctx.Err()
	case err := <-acceptErr:
		s.shutdown()
		return err
	}

	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case err := <-acceptErr:
			s.shutdown()
			return err
		case <-ticker.C:
			carry += s.cfg.Warp * s.cfg.TickEvery.Seconds()
			steps := int(carry)
			carry -= float64(steps)
			for i := 0; i < steps; i++ {
				end, err := s.step()
				if err != nil {
					s.shutdown()
					return fmt.Errorf("server: estate handoff failed: %w", err)
				}
				if end {
					s.shutdown()
					return ErrDurationReached
				}
			}
		}
	}
}

// step advances the shared clock by one second: every region simulation
// ticks under the lock, then the tick's cross-region handoffs are routed
// over the inter-server links — sequentially, in the deterministic order
// of the migration sweep, with the lock released so each destination's
// peer handler can admit the avatar — and finally sensors scan and due
// subscription pushes go out, after all handoffs settled.
func (s *EstateServer) step() (bool, error) {
	s.mu.Lock()
	transfers := s.est.StepPending()
	s.mu.Unlock()

	for i, tr := range transfers {
		accepted, err := s.route(tr)
		if err != nil {
			return false, err
		}
		s.mu.Lock()
		s.est.ResolveTransfer(i, accepted)
		s.mu.Unlock()
	}

	s.mu.Lock()
	now := s.est.Time()
	for _, h := range s.hosts {
		h.stepLocked(now)
	}
	// Sample for analytics under the lock — after handoffs settled, the
	// same instant an in-process EstateSource would observe — but hand
	// the tick to the engine outside it, so analysis can never hold the
	// clock.
	var tick trace.EstateTick
	sample := s.analytics != nil && now > 0 && now%s.analytics.tau() == 0
	if sample {
		tick = trace.EstateTick{T: now, Regions: make([]trace.Snapshot, len(s.hosts))}
		for i, h := range s.hosts {
			states := h.sim.ResidentStates(nil)
			snap := trace.Snapshot{T: now, Samples: make([]trace.Sample, len(states))}
			for j, st := range states {
				snap.Samples[j] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
			}
			tick.Regions[i] = snap
		}
	}
	s.mu.Unlock()
	if sample {
		s.analytics.offer(tick)
	}
	return now >= s.duration, nil
}

// route carries one handoff to its destination region server over TCP
// and returns the destination's verdict. Links are dialled lazily and
// cached per (source, destination) pair.
func (s *EstateServer) route(tr world.Transfer) (bool, error) {
	key := tr.From*len(s.hosts) + tr.To
	link, ok := s.peers[key]
	if !ok {
		conn, err := net.DialTimeout("tcp", s.hosts[tr.To].addr(), s.peerTimeout())
		if err != nil {
			return false, fmt.Errorf("region %d -> %d: %w", tr.From, tr.To, err)
		}
		link = &peerLink{conn: conn, bw: bufio.NewWriter(conn), timeout: s.peerTimeout()}
		if err := link.send(slp.PeerHello{Version: slp.Version, Region: uint32(tr.From), Password: s.cfg.Password}); err != nil {
			conn.Close()
			return false, fmt.Errorf("region %d -> %d: peer hello: %w", tr.From, tr.To, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.peerTimeout()))
		reply, err := slp.ReadMessage(conn)
		if err != nil {
			conn.Close()
			if isTimeout(err) {
				return false, &PeerTimeoutError{From: tr.From, To: tr.To, Op: "peer handshake", Err: err}
			}
			return false, fmt.Errorf("region %d -> %d: peer handshake: %w", tr.From, tr.To, err)
		}
		if e, isErr := reply.(slp.Error); isErr {
			conn.Close()
			return false, fmt.Errorf("region %d -> %d: peer refused (%d): %s", tr.From, tr.To, e.Code, e.Message)
		}
		if _, isWelcome := reply.(slp.Welcome); !isWelcome {
			conn.Close()
			return false, fmt.Errorf("region %d -> %d: unexpected peer handshake reply %s", tr.From, tr.To, reply.Type())
		}
		s.peers[key] = link
	}
	if err := link.send(slp.Transfer{
		From:     uint32(tr.From),
		To:       uint32(tr.To),
		Teleport: tr.Teleport,
		Avatar:   tr.Avatar,
	}); err != nil {
		return false, fmt.Errorf("region %d -> %d: transfer send: %w", tr.From, tr.To, err)
	}
	// The ack read is bounded: a peer that dies between Transfer and
	// TransferAck must fail the estate, not hang StepPending forever.
	_ = link.conn.SetReadDeadline(time.Now().Add(s.peerTimeout()))
	reply, err := slp.ReadMessage(link.conn)
	if err != nil {
		if isTimeout(err) {
			return false, &PeerTimeoutError{From: tr.From, To: tr.To, Op: "transfer ack", Err: err}
		}
		return false, fmt.Errorf("region %d -> %d: transfer ack: %w", tr.From, tr.To, err)
	}
	switch v := reply.(type) {
	case slp.TransferAck:
		return v.Accepted, nil
	case slp.Error:
		return false, fmt.Errorf("region %d -> %d: transfer rejected (%d): %s", tr.From, tr.To, v.Code, v.Message)
	default:
		return false, fmt.Errorf("region %d -> %d: unexpected transfer reply %s", tr.From, tr.To, reply.Type())
	}
}

func (l *peerLink) send(m slp.Message) error {
	_ = l.conn.SetWriteDeadline(time.Now().Add(l.timeout))
	if err := slp.WriteMessage(l.bw, m); err != nil {
		return err
	}
	return l.bw.Flush()
}

// servePeer runs the destination side of an inter-server link on region
// `region`: it welcomes the peer, then admits (or refuses) each incoming
// avatar transfer.
func (s *EstateServer) servePeer(region int, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	write := func(m slp.Message) error {
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := slp.WriteMessage(bw, m); err != nil {
			return err
		}
		return bw.Flush()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.inPeers[conn] = struct{}{}
	name := s.hosts[region].sim.Scenario().Land.Name
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inPeers, conn)
		s.mu.Unlock()
	}()
	if err := write(slp.Welcome{Land: name}); err != nil {
		return
	}
	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		tr, ok := msg.(slp.Transfer)
		if !ok {
			if _, bye := msg.(slp.Logout); bye {
				return
			}
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("unexpected %s on transfer link", msg.Type())})
			return
		}
		if int(tr.To) != region {
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("transfer addressed to region %d arrived at %d", tr.To, region)})
			return
		}
		s.mu.Lock()
		accepted, err := s.est.Inject(world.Transfer{
			From:     int(tr.From),
			To:       int(tr.To),
			Teleport: tr.Teleport,
			Avatar:   tr.Avatar,
		})
		s.mu.Unlock()
		if err != nil {
			_ = write(slp.Error{Code: slp.ErrMalformed, Message: err.Error()})
			return
		}
		if err := write(slp.TransferAck{Accepted: accepted}); err != nil {
			return
		}
	}
}

// directoryLoop serves grid discovery and clock control.
func (s *EstateServer) directoryLoop() error {
	for {
		conn, err := s.dirLn.Accept()
		if err != nil {
			return fmt.Errorf("server: directory accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveDirectory(conn)
		}()
	}
}

func (s *EstateServer) serveDirectory(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	write := func(m slp.Message) error {
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := slp.WriteMessage(bw, m); err != nil {
			return err
		}
		return bw.Flush()
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		switch msg.(type) {
		case slp.DirectoryRequest:
			s.mu.Lock()
			dir := s.directoryLocked()
			s.mu.Unlock()
			if err := write(dir); err != nil {
				return
			}
		case slp.ClockStart:
			now := s.StartClock()
			if err := write(slp.ClockStarted{SimTime: now}); err != nil {
				return
			}
		case slp.Logout:
			return
		default:
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("unexpected %s at directory endpoint", msg.Type())})
			return
		}
	}
}

func (s *EstateServer) shutdown() {
	// Seal the analytics engine first (its feed ends, the whole-trace
	// analysis finalises and publishes); the query endpoint itself stays
	// up until CloseAnalytics so the sealed result remains queryable.
	if s.analytics != nil {
		s.analytics.seal()
	}
	// Flag closed first (no new sessions), then let queued pushes reach
	// the wire before tearing connections down: the run's final
	// snapshots are queued asynchronously, and a monitor that misses
	// them cannot reproduce the measurement.
	s.mu.Lock()
	s.closed = true
	var sessions []*session
	for _, h := range s.hosts {
		sessions = append(sessions, h.sessionsLocked()...)
	}
	s.mu.Unlock()
	drainSessions(sessions, 5*time.Second)
	s.mu.Lock()
	for _, h := range s.hosts {
		h.shutdownLocked()
	}
	for _, l := range s.peers {
		l.conn.Close()
	}
	for conn := range s.inPeers {
		conn.Close()
	}
	s.mu.Unlock()
	s.closeListeners()
	s.wg.Wait()
}
