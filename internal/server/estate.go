// The estate server: networked multi-region hosting. One region server
// per grid cell serves clients on its own TCP listener while a shared
// warped clock advances every region in lockstep — the topology the live
// Second Life service ran, where one simulator process hosted each 256 m
// region of the contiguous grid.
//
// Avatar handoffs cross the network: when an avatar walks off a region's
// edge (or teleports to another region's attraction), the source region
// server encodes its full state — identity, re-based position, behaviour
// and random stream — into a capsule and sends it to the destination
// region server as an slp Transfer over an authenticated inter-server
// link. The destination either admits the avatar (TransferAck accepted)
// or refuses it at capacity, in which case the source turns the avatar
// back at the border. Because the clock is lockstep and transfers settle
// inside the tick, a served estate is bit-identical to the in-process
// EstateSim — pinned by the live-vs-replay parity test.
//
// Failure behaviour: the estate is one measurement instrument, not a
// fault-tolerant fleet. A dropped inter-server link or region listener
// is fatal — Run returns the error and shuts every region down — because
// an estate missing a region can neither route handoffs deterministically
// nor produce a consistent estate-wide trace.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"slmob/internal/core"
	"slmob/internal/slp"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// EstateConfig configures a networked estate service.
type EstateConfig struct {
	// Estate is the hosted multi-region world.
	Estate world.EstateConfig
	// Addr is the directory endpoint's TCP listen address; use
	// "127.0.0.1:0" to pick a free port (see DirectoryAddr).
	Addr string
	// RegionAddrs optionally pins each region server's listen address,
	// indexed like the estate grid; missing or empty entries pick free
	// ports on the loopback interface.
	RegionAddrs []string
	// Warp is simulated seconds per wall-clock second (>= 1), shared by
	// every region.
	Warp float64
	// TickEvery is the wall-clock interval between clock advances; zero
	// selects 10 ms.
	TickEvery time.Duration
	// Password, when non-empty, is required at login and on inter-server
	// links.
	Password string
	// AOIRadius, when positive, imposes an area-of-interest radius (in
	// metres) on every avatar map subscription that did not request its
	// own, in every region. Observer sessions are always exempt.
	AOIRadius float64
	// Hold keeps the shared clock at zero until a ClockStart arrives at
	// the directory endpoint (or StartClock is called), so monitors can
	// connect and subscribe before the first tick — the estate
	// measurement then observes the grid from second one.
	Hold bool
	// Analytics configures the live analytics query endpoint; the zero
	// value disables it.
	Analytics AnalyticsConfig
	// PeerTimeout bounds each inter-server handshake and transfer-ack
	// wait; zero selects 5 s. A peer that stops answering within it
	// fails the estate with a *PeerTimeoutError instead of hanging the
	// shared clock forever.
	PeerTimeout time.Duration
}

// EstateServer is a running estate service: one region server per grid
// cell plus the directory endpoint, all on one shared clock.
type EstateServer struct {
	cfg      EstateConfig
	duration int64

	mu       sync.Mutex
	closed   bool
	est      *world.EstateSim
	hosts    []*landHost
	peers    map[int]*peerLink     // outgoing transfer links, keyed from*regions+to
	inPeers  map[net.Conn]struct{} // incoming transfer links, closed on shutdown
	dirConns map[net.Conn]struct{} // directory connections, closed on shutdown

	// routing sequences each tick's concurrent transfer fanout (guarded
	// by mu; the cond shares it).
	routing tickRouting

	// Hoisted per-host fanout closures for the post-step serving phase,
	// plus their arguments; only the tick goroutine touches them.
	hostJob    func(i int)
	sampleJob  func(i int)
	hostNow    int64
	sampleTick *trace.EstateTick

	dirLn net.Listener

	tickMu sync.Mutex
	ticks  TickStats

	// analytics is the live query service; nil when disabled. It has
	// its own listener and lifecycle: it survives the estate's clean end
	// so the sealed whole-trace analysis stays queryable, and is torn
	// down by CloseAnalytics.
	analytics *analytics

	held  bool
	start chan struct{}

	wg sync.WaitGroup
}

// ErrDurationReached is the clean end of an estate service: the hosted
// measurement ran its full scheduled duration on the shared clock.
var ErrDurationReached = errors.New("server: estate duration reached")

// peerLink is one outgoing inter-server connection. Within a tick at
// most one sender goroutine owns each link, so frames and acks stay
// strictly ordered per link even when many links fan out concurrently.
type peerLink struct {
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
}

// tickRouting sequences one tick's transfer handoffs: frames are sent
// concurrently per link, but the destination-side injects and the
// source-side resolves must interleave in the migration sweep's slice
// order — admissions consume the shared estate rng and race region
// capacity, so inject g may not run until resolves 0..g-1 completed
// (a resolve at region A frees the slot a later inject into A needs).
// queues maps each link to its pending global indices so servePeer can
// learn a transfer's slot without a wire-format change; next is the
// resolved-prefix length the injectors gate on.
type tickRouting struct {
	cond    *sync.Cond
	next    int
	aborted bool
	queues  map[int][]int
}

// TickStats summarises the tick loop's wall-clock behaviour: how often
// the shared clock advanced, how much wall time stepping consumed, and
// whether any ticker interval overran its budget — the signal that the
// simulated clock fell behind real time at the configured warp.
type TickStats struct {
	// Intervals counts ticker fires that stepped the clock; Steps is
	// the total simulated seconds they advanced.
	Intervals int64
	Steps     int64
	// Total and Max are the wall time spent stepping, summed and for
	// the slowest single interval.
	Total time.Duration
	Max   time.Duration
	// Budget is the per-interval wall budget (TickEvery); OverBudget
	// counts intervals whose stepping exceeded it. A sustained run with
	// OverBudget == 0 never fell behind its warped clock.
	Budget     time.Duration
	OverBudget int64
}

// TickStats returns a snapshot of the tick loop's timing counters.
func (s *EstateServer) TickStats() TickStats {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	st := s.ticks
	st.Budget = s.cfg.TickEvery
	return st
}

// StepWorkers reports how many goroutines step regions concurrently
// each tick (1 when the estate runs its serial loop).
func (s *EstateServer) StepWorkers() int { return s.est.StepWorkers() }

// recordTick folds one ticker interval's stepping cost into the stats.
func (s *EstateServer) recordTick(steps int, elapsed time.Duration) {
	s.tickMu.Lock()
	s.ticks.Intervals++
	s.ticks.Steps += int64(steps)
	s.ticks.Total += elapsed
	if elapsed > s.ticks.Max {
		s.ticks.Max = elapsed
	}
	if elapsed > s.cfg.TickEvery {
		s.ticks.OverBudget++
	}
	s.tickMu.Unlock()
}

// PeerTimeoutError reports an inter-server exchange that timed out: a
// peer region server stopped answering mid-handoff. Without the
// deadline, a dead peer between Transfer and TransferAck would hang the
// shared clock forever; with it, the estate fails loudly instead.
type PeerTimeoutError struct {
	// From and To are the handoff's estate region indices.
	From, To int
	// Op names the exchange that timed out ("peer handshake" or
	// "transfer ack").
	Op  string
	Err error
}

// Error implements error.
func (e *PeerTimeoutError) Error() string {
	return fmt.Sprintf("region %d -> %d: %s timed out: %v", e.From, e.To, e.Op, e.Err)
}

// Unwrap exposes the underlying network error.
func (e *PeerTimeoutError) Unwrap() error { return e.Err }

// peerTimeout returns the configured inter-server exchange bound.
func (s *EstateServer) peerTimeout() time.Duration {
	if s.cfg.PeerTimeout > 0 {
		return s.cfg.PeerTimeout
	}
	return 5 * time.Second
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// NewEstate validates the estate, builds one region server per cell plus
// the directory listener, and wires the inter-server transfer fabric.
func NewEstate(cfg EstateConfig) (*EstateServer, error) {
	if cfg.Warp <= 0 {
		cfg.Warp = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	est, err := world.NewEstateSim(cfg.Estate)
	if err != nil {
		return nil, err
	}
	s := &EstateServer{
		cfg:      cfg,
		duration: cfg.Estate.EffectiveDuration(),
		est:      est,
		peers:    make(map[int]*peerLink),
		inPeers:  make(map[net.Conn]struct{}),
		dirConns: make(map[net.Conn]struct{}),
		held:     cfg.Hold,
		start:    make(chan struct{}),
	}
	s.routing.cond = sync.NewCond(&s.mu)
	s.routing.queues = make(map[int][]int)
	s.hostJob = func(i int) { s.hosts[i].stepLocked(s.hostNow) }
	s.sampleJob = func(i int) {
		h := s.hosts[i]
		states := h.sim.ResidentStates(nil)
		snap := trace.Snapshot{T: s.sampleTick.T, Samples: make([]trace.Sample, len(states))}
		for j, st := range states {
			snap.Samples[j] = trace.Sample{ID: st.ID, Pos: st.Pos, Seated: st.Seated}
		}
		s.sampleTick.Regions[i] = snap
	}
	if !cfg.Hold {
		close(s.start)
	}
	fail := func(err error) (*EstateServer, error) {
		s.closeListeners()
		if s.analytics != nil {
			s.analytics.close()
		}
		return nil, err
	}
	for i := 0; i < est.NumRegions(); i++ {
		addr := "127.0.0.1:0"
		if i < len(cfg.RegionAddrs) && cfg.RegionAddrs[i] != "" {
			addr = cfg.RegionAddrs[i]
		}
		host, err := newLandHostSim(&s.mu, &s.closed, est.Region(i), addr, cfg.Warp, cfg.Password)
		if err != nil {
			return fail(err)
		}
		host.defaultAOI = cfg.AOIRadius
		region := i
		host.onPeer = func(conn net.Conn, hello slp.PeerHello) {
			s.servePeer(region, conn)
		}
		s.hosts = append(s.hosts, host)
	}
	dirAddr := cfg.Addr
	if dirAddr == "" {
		dirAddr = "127.0.0.1:0"
	}
	s.dirLn, err = net.Listen("tcp", dirAddr)
	if err != nil {
		return fail(err)
	}
	if cfg.Analytics.enabled() {
		acfg := cfg.Analytics.withDefaults()
		metas := make([]core.RegionMeta, len(s.hosts))
		infos := make([]trace.Info, len(s.hosts))
		for i, h := range s.hosts {
			scn := h.sim.Scenario()
			origin := cfg.Estate.RegionOrigin(i)
			metas[i] = core.RegionMeta{Name: scn.Land.Name, Origin: origin, Size: scn.Land.Size}
			infos[i] = regionInfo(cfg.Estate.Name, scn.Land.Name, origin, scn.Land.Size, acfg.Tau)
		}
		a, err := newAnalytics(cfg.Estate.Name, metas, infos, acfg)
		if err != nil {
			return fail(err)
		}
		s.analytics = a
	}
	// An estate whose directory cannot be framed (too many regions, or
	// absurd names) is a configuration error: fail here, loudly, instead
	// of serving a grid nobody can discover.
	if _, err := slp.Marshal(s.directoryLocked()); err != nil {
		return fail(fmt.Errorf("server: estate directory does not fit a frame: %w", err))
	}
	return s, nil
}

func (s *EstateServer) closeListeners() {
	for _, h := range s.hosts {
		h.ln.Close()
	}
	if s.dirLn != nil {
		s.dirLn.Close()
	}
}

// DirectoryAddr returns the directory endpoint's bound address — the
// single address a client needs to discover the whole grid.
func (s *EstateServer) DirectoryAddr() string { return s.dirLn.Addr().String() }

// RegionAddr returns region i's bound listen address.
func (s *EstateServer) RegionAddr(i int) string { return s.hosts[i].addr() }

// QueryAddr returns the analytics query endpoint's bound address, or ""
// when analytics is disabled.
func (s *EstateServer) QueryAddr() string {
	if s.analytics == nil {
		return ""
	}
	return s.analytics.addr()
}

// CloseAnalytics tears the analytics service down: the engine is sealed
// (finalising the whole-trace analysis from whatever was fed), the query
// listener and every reader connection close, and their goroutines are
// waited out. Idempotent; a no-op when analytics is disabled. Run leaves
// the service up on a clean end so the sealed result stays queryable —
// the owner calls this when done with it.
func (s *EstateServer) CloseAnalytics() {
	if s.analytics != nil {
		s.analytics.close()
	}
}

// AnalyticsErr reports the analytics engine's failure, if any; call it
// after CloseAnalytics (or after Run returned, which seals the engine).
func (s *EstateServer) AnalyticsErr() error {
	if s.analytics == nil {
		return nil
	}
	return s.analytics.Err()
}

// NumRegions returns the number of hosted regions.
func (s *EstateServer) NumRegions() int { return len(s.hosts) }

// SimTime returns the shared clock.
func (s *EstateServer) SimTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Time()
}

// Crossings returns how many walking handoffs completed over the
// inter-server links.
func (s *EstateServer) Crossings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Crossings()
}

// Teleports returns how many inter-region teleports completed over the
// inter-server links.
func (s *EstateServer) Teleports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Teleports()
}

// BlockedHandoffs returns how many handoffs destinations refused at
// capacity.
func (s *EstateServer) BlockedHandoffs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.BlockedHandoffs()
}

// StartClock releases a held clock (idempotent) and returns the shared
// clock value.
func (s *EstateServer) StartClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held {
		s.held = false
		close(s.start)
	}
	return s.est.Time()
}

// directoryLocked assembles the directory reply.
func (s *EstateServer) directoryLocked() slp.Directory {
	dir := slp.Directory{
		Estate:   s.cfg.Estate.Name,
		Rows:     uint16(s.cfg.Estate.Rows),
		Cols:     uint16(s.cfg.Estate.Cols),
		SimTime:  s.est.Time(),
		Warp:     s.cfg.Warp,
		Duration: s.duration,
		Held:     s.held,
	}
	if s.analytics != nil {
		dir.QueryAddr = s.analytics.addr()
	}
	for i, h := range s.hosts {
		scn := h.sim.Scenario()
		dir.Regions = append(dir.Regions, slp.DirRegion{
			Name:   scn.Land.Name,
			Addr:   h.addr(),
			Origin: s.cfg.Estate.RegionOrigin(i),
			Size:   scn.Land.Size,
		})
	}
	return dir
}

// Run serves the estate until the context is cancelled, a region or
// inter-server connection fails, or the estate duration elapses on the
// shared clock. It always returns a non-nil reason.
func (s *EstateServer) Run(ctx context.Context) error {
	defer s.closeListeners()

	acceptErr := make(chan error, len(s.hosts)+1)
	for _, h := range s.hosts {
		host := h
		go func() { acceptErr <- host.acceptLoop(&s.wg) }()
	}
	go func() { acceptErr <- s.directoryLoop() }()

	// A held clock waits for release before tick one, so monitors can
	// subscribe first and observe the measurement from its first second.
	select {
	case <-s.start:
	case <-ctx.Done():
		s.shutdown()
		return ctx.Err()
	case err := <-acceptErr:
		s.shutdown()
		return err
	}

	ticker := time.NewTicker(s.cfg.TickEvery)
	defer ticker.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			s.shutdown()
			return ctx.Err()
		case err := <-acceptErr:
			s.shutdown()
			return err
		case <-ticker.C:
			carry += s.cfg.Warp * s.cfg.TickEvery.Seconds()
			steps := int(carry)
			carry -= float64(steps)
			if steps == 0 {
				continue
			}
			began := time.Now()
			for i := 0; i < steps; i++ {
				end, err := s.step()
				if err != nil {
					s.shutdown()
					return fmt.Errorf("server: estate handoff failed: %w", err)
				}
				if end {
					s.recordTick(i+1, time.Since(began))
					s.shutdown()
					return ErrDurationReached
				}
			}
			s.recordTick(steps, time.Since(began))
		}
	}
}

// step advances the shared clock by one second: every region simulation
// ticks under the lock (fanned across the estate's step pool when one
// is configured), then the tick's cross-region handoffs are routed over
// the inter-server links — frames issued concurrently per link, acks
// resolved in the migration sweep's slice order — and finally the
// post-step serving phase runs: sensors scan, each host materialises
// its map snapshot, and due subscription pushes go out, after all
// handoffs settled.
//
// The serving phase fans out per host on the same pool. Each host's
// snapshot, sensors, and sessions are its own; enqueueRaw is the only
// sink and never blocks (drop-slow-consumer), so push enqueueing is
// naturally sharded by region — one slow region's frame encoding no
// longer serialises the other 63. The estate lock is held by this
// goroutine for the whole fanout and Pool.Run is a barrier, so every
// other accessor of host state still sees the lock-ordered world.
func (s *EstateServer) step() (bool, error) {
	s.mu.Lock()
	transfers := s.est.StepPending()
	s.mu.Unlock()

	if len(transfers) > 0 {
		if err := s.routeTick(transfers); err != nil {
			return false, err
		}
	}

	s.mu.Lock()
	now := s.est.Time()
	pool := s.est.StepPool()
	s.hostNow = now
	pool.Run(len(s.hosts), s.hostJob)
	// Sample for analytics under the lock — after handoffs settled, the
	// same instant an in-process EstateSource would observe — but hand
	// the tick to the engine outside it, so analysis can never hold the
	// clock. Each region samples into its own tick slot, so this fans
	// out too.
	var tick trace.EstateTick
	sample := s.analytics != nil && now > 0 && now%s.analytics.tau() == 0
	if sample {
		tick = trace.EstateTick{T: now, Regions: make([]trace.Snapshot, len(s.hosts))}
		s.sampleTick = &tick
		pool.Run(len(s.hosts), s.sampleJob)
		s.sampleTick = nil
	}
	s.mu.Unlock()
	if sample {
		s.analytics.offer(tick)
	}
	return now >= s.duration, nil
}

// transferAck is one routed handoff's outcome, delivered by the link's
// sender goroutine to the resolver.
type transferAck struct {
	accepted bool
	err      error
}

// routeTick carries one tick's handoffs to their destination region
// servers. The wire work is concurrent — each link's sender goroutine
// pipelines its Transfer frames up-front and then reads that link's
// acks in order — while the semantic order is preserved exactly: the
// destination-side injects are gated on tickRouting so they happen in
// slice order, interleaved with this goroutine resolving ack i before
// inject i+1 may run, which is ResolveTransfer's contract and the
// serial loop's rng/capacity behaviour bit for bit.
func (s *EstateServer) routeTick(transfers []world.Transfer) error {
	n := len(s.hosts)
	// Group by link in slice order; dial any missing links first, from
	// this goroutine, so s.peers sees no concurrent writes.
	linkOrder := make([]int, 0, 4)
	byLink := make(map[int][]int)
	for g, tr := range transfers {
		key := tr.From*n + tr.To
		if _, seen := byLink[key]; !seen {
			linkOrder = append(linkOrder, key)
			if _, dialed := s.peers[key]; !dialed {
				link, err := s.dialPeer(tr.From, tr.To)
				if err != nil {
					return err
				}
				s.peers[key] = link
			}
		}
		byLink[key] = append(byLink[key], g)
	}

	// Publish the routing plan so each destination's peer handler can
	// recover its transfers' global slots from link arrival order.
	s.mu.Lock()
	s.routing.next = 0
	s.routing.aborted = false
	for key, list := range byLink {
		s.routing.queues[key] = list
	}
	s.mu.Unlock()

	acks := make([]chan transferAck, len(transfers))
	for g := range acks {
		acks[g] = make(chan transferAck, 1)
	}
	for _, key := range linkOrder {
		link, list := s.peers[key], byLink[key]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, g := range list {
				tr := transfers[g]
				if err := link.send(slp.Transfer{
					From:     uint32(tr.From),
					To:       uint32(tr.To),
					Teleport: tr.Teleport,
					Avatar:   tr.Avatar,
				}); err != nil {
					err = fmt.Errorf("region %d -> %d: transfer send: %w", tr.From, tr.To, err)
					for _, rest := range list {
						acks[rest] <- transferAck{err: err}
					}
					return
				}
			}
			for k, g := range list {
				accepted, err := link.readAck(transfers[g])
				if err != nil {
					for _, rest := range list[k:] {
						acks[rest] <- transferAck{err: err}
					}
					return
				}
				acks[g] <- transferAck{accepted: accepted}
			}
		}()
	}

	var firstErr error
	for g := range transfers {
		a := <-acks[g]
		if a.err != nil {
			firstErr = a.err
			break
		}
		s.mu.Lock()
		s.est.ResolveTransfer(g, a.accepted)
		s.routing.next++
		s.routing.cond.Broadcast()
		s.mu.Unlock()
	}
	// On failure, release any injector still waiting for its turn; the
	// sender goroutines self-terminate on their write/read deadlines and
	// are joined by shutdown via s.wg. Leftover queue entries (consumed
	// only up to the failure) are dropped with the estate.
	s.mu.Lock()
	if firstErr != nil {
		s.routing.aborted = true
		s.routing.cond.Broadcast()
	}
	clear(s.routing.queues)
	s.mu.Unlock()
	return firstErr
}

// dialPeer opens and authenticates an outgoing link to region `to` on
// behalf of region `from`; the caller owns (and caches) the link.
func (s *EstateServer) dialPeer(from, to int) (*peerLink, error) {
	conn, err := net.DialTimeout("tcp", s.hosts[to].addr(), s.peerTimeout())
	if err != nil {
		return nil, fmt.Errorf("region %d -> %d: %w", from, to, err)
	}
	link := &peerLink{conn: conn, bw: bufio.NewWriter(conn), timeout: s.peerTimeout()}
	if err := link.send(slp.PeerHello{Version: slp.Version, Region: uint32(from), Password: s.cfg.Password}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("region %d -> %d: peer hello: %w", from, to, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(s.peerTimeout()))
	reply, err := slp.ReadMessage(conn)
	if err != nil {
		conn.Close()
		if isTimeout(err) {
			return nil, &PeerTimeoutError{From: from, To: to, Op: "peer handshake", Err: err}
		}
		return nil, fmt.Errorf("region %d -> %d: peer handshake: %w", from, to, err)
	}
	if e, isErr := reply.(slp.Error); isErr {
		conn.Close()
		return nil, fmt.Errorf("region %d -> %d: peer refused (%d): %s", from, to, e.Code, e.Message)
	}
	if _, isWelcome := reply.(slp.Welcome); !isWelcome {
		conn.Close()
		return nil, fmt.Errorf("region %d -> %d: unexpected peer handshake reply %s", from, to, reply.Type())
	}
	return link, nil
}

// readAck reads one TransferAck off the link. The read is bounded: a
// peer that dies between Transfer and TransferAck must fail the estate,
// not hang the shared clock forever.
func (l *peerLink) readAck(tr world.Transfer) (bool, error) {
	_ = l.conn.SetReadDeadline(time.Now().Add(l.timeout))
	reply, err := slp.ReadMessage(l.conn)
	if err != nil {
		if isTimeout(err) {
			return false, &PeerTimeoutError{From: tr.From, To: tr.To, Op: "transfer ack", Err: err}
		}
		return false, fmt.Errorf("region %d -> %d: transfer ack: %w", tr.From, tr.To, err)
	}
	switch v := reply.(type) {
	case slp.TransferAck:
		return v.Accepted, nil
	case slp.Error:
		return false, fmt.Errorf("region %d -> %d: transfer rejected (%d): %s", tr.From, tr.To, v.Code, v.Message)
	default:
		return false, fmt.Errorf("region %d -> %d: unexpected transfer reply %s", tr.From, tr.To, reply.Type())
	}
}

func (l *peerLink) send(m slp.Message) error {
	_ = l.conn.SetWriteDeadline(time.Now().Add(l.timeout))
	if err := slp.WriteMessage(l.bw, m); err != nil {
		return err
	}
	return l.bw.Flush()
}

// servePeer runs the destination side of an inter-server link on region
// `region`: it welcomes the peer, then admits (or refuses) each incoming
// avatar transfer.
func (s *EstateServer) servePeer(region int, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	write := func(m slp.Message) error {
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := slp.WriteMessage(bw, m); err != nil {
			return err
		}
		return bw.Flush()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.inPeers[conn] = struct{}{}
	name := s.hosts[region].sim.Scenario().Land.Name
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inPeers, conn)
		s.mu.Unlock()
	}()
	if err := write(slp.Welcome{Land: name}); err != nil {
		return
	}
	for {
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		tr, ok := msg.(slp.Transfer)
		if !ok {
			if _, bye := msg.(slp.Logout); bye {
				return
			}
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("unexpected %s on transfer link", msg.Type())})
			return
		}
		if int(tr.To) != region {
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("transfer addressed to region %d arrived at %d", tr.To, region)})
			return
		}
		s.mu.Lock()
		// A transfer on a link the tick planned carries a global slot:
		// frames arrive in link order, so popping the link's queue
		// recovers it, and the inject then waits its turn behind the
		// resolves of every earlier slot (see tickRouting). A transfer
		// with no plan entry — an external peer injecting out-of-band —
		// keeps the legacy immediate-inject path.
		key := int(tr.From)*len(s.hosts) + int(tr.To)
		if q := s.routing.queues[key]; len(q) > 0 {
			g := q[0]
			s.routing.queues[key] = q[1:]
			for s.routing.next != g && !s.routing.aborted && !s.closed {
				s.routing.cond.Wait()
			}
			if s.routing.aborted || s.closed {
				s.mu.Unlock()
				return
			}
		}
		accepted, err := s.est.Inject(world.Transfer{
			From:     int(tr.From),
			To:       int(tr.To),
			Teleport: tr.Teleport,
			Avatar:   tr.Avatar,
		})
		s.mu.Unlock()
		if err != nil {
			_ = write(slp.Error{Code: slp.ErrMalformed, Message: err.Error()})
			return
		}
		if err := write(slp.TransferAck{Accepted: accepted}); err != nil {
			return
		}
	}
}

// directoryLoop serves grid discovery and clock control. Connections
// are registered (under the lock, refused after shutdown began) so
// shutdown can close them: serveDirectory's read deadline is 30 s, and
// an open-but-idle monitor connection must not hold s.wg.Wait — and
// with it Run's return — for that long. The registered-before-Add
// ordering also keeps wg.Add from racing wg.Wait after close.
func (s *EstateServer) directoryLoop() error {
	for {
		conn, err := s.dirLn.Accept()
		if err != nil {
			return fmt.Errorf("server: directory accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.dirConns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.dirConns, conn)
				s.mu.Unlock()
			}()
			s.serveDirectory(conn)
		}()
	}
}

func (s *EstateServer) serveDirectory(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	write := func(m slp.Message) error {
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := slp.WriteMessage(bw, m); err != nil {
			return err
		}
		return bw.Flush()
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		msg, err := slp.ReadMessage(conn)
		if err != nil {
			var de *slp.DecodeError
			if errors.As(err, &de) {
				_ = write(slp.Error{Code: slp.ErrMalformed, Message: de.Error()})
			}
			return
		}
		switch msg.(type) {
		case slp.DirectoryRequest:
			s.mu.Lock()
			dir := s.directoryLocked()
			s.mu.Unlock()
			if err := write(dir); err != nil {
				return
			}
		case slp.ClockStart:
			now := s.StartClock()
			if err := write(slp.ClockStarted{SimTime: now}); err != nil {
				return
			}
		case slp.Logout:
			return
		default:
			_ = write(slp.Error{Code: slp.ErrBadRequest,
				Message: fmt.Sprintf("unexpected %s at directory endpoint", msg.Type())})
			return
		}
	}
}

func (s *EstateServer) shutdown() {
	// Seal the analytics engine first (its feed ends, the whole-trace
	// analysis finalises and publishes); the query endpoint itself stays
	// up until CloseAnalytics so the sealed result remains queryable.
	if s.analytics != nil {
		s.analytics.seal()
	}
	// Flag closed first (no new sessions), then let queued pushes reach
	// the wire before tearing connections down: the run's final
	// snapshots are queued asynchronously, and a monitor that misses
	// them cannot reproduce the measurement.
	s.mu.Lock()
	s.closed = true
	var sessions []*session
	for _, h := range s.hosts {
		sessions = append(sessions, h.sessionsLocked()...)
	}
	s.mu.Unlock()
	drainSessions(sessions, 5*time.Second)
	s.mu.Lock()
	for _, h := range s.hosts {
		h.shutdownLocked()
	}
	for _, l := range s.peers {
		l.conn.Close()
	}
	for conn := range s.inPeers {
		conn.Close()
	}
	for conn := range s.dirConns {
		conn.Close()
	}
	// Wake any injector still gated on its routing turn; with closed
	// set it gives up instead of waiting on a tick that will never
	// resolve.
	s.routing.cond.Broadcast()
	s.mu.Unlock()
	s.closeListeners()
	s.wg.Wait()
	// All tick work has quiesced; the estate's step workers can park
	// permanently.
	s.est.Close()
}
