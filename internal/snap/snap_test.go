package snap

import (
	"errors"
	"testing"
)

// TestRoundTrip exercises every primitive through a full write/read
// cycle.
func TestRoundTrip(t *testing.T) {
	w := NewWriter(7)
	w.Uvarint(12345)
	w.Varint(-987)
	w.U64(0xDEADBEEFCAFEF00D)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	blob := w.Finish()

	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != 7 {
		t.Errorf("kind = %d, want 7", r.Kind())
	}
	if v := r.Uvarint(); v != 12345 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Varint(); v != -987 {
		t.Errorf("varint = %d", v)
	}
	if v := r.U64(); v != 0xDEADBEEFCAFEF00D {
		t.Errorf("u64 = %x", v)
	}
	if v := r.F64(); v != 3.14159 {
		t.Errorf("f64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools did not round-trip")
	}
	if b := r.Bytes(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("bytes = %v", b)
	}
	if s := r.String(); s != "hello" {
		t.Errorf("string = %q", s)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func kindOf(t *testing.T, err error) ErrKind {
	t.Helper()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *snap.Error", err)
	}
	return se.Kind
}

// TestEnvelopeErrors pins the typed failure for each envelope defect.
func TestEnvelopeErrors(t *testing.T) {
	w := NewWriter(1)
	w.String("payload")
	good := w.Finish()

	if _, err := NewReader(nil); kindOf(t, err) != KindTruncated {
		t.Error("nil blob: want truncated")
	}
	if _, err := NewReader([]byte("NOPE-not-a-snapshot")); kindOf(t, err) != KindMagic {
		t.Error("bad magic: want magic error")
	}
	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[6] ^= 0xFF
	if _, err := NewReader(bad); kindOf(t, err) != KindChecksum {
		t.Error("flipped byte: want checksum error")
	}
	// Truncate mid-payload: the checksum is gone or wrong.
	if _, err := NewReader(good[:len(good)-6]); err == nil {
		t.Error("truncated blob decoded")
	}
	// Future container version.
	vw := &Writer{buf: append([]byte(nil), 'S', 'L', 'C', 'K')}
	vw.Uvarint(Version + 1)
	vw.Uvarint(0)
	if _, err := NewReader(vw.Finish()); kindOf(t, err) != KindVersion {
		t.Error("future version: want version error")
	}
}

// TestStickyErrors: after the first failure every read returns zero
// values and the original error is preserved.
func TestStickyErrors(t *testing.T) {
	w := NewWriter(1)
	w.Uvarint(5)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	r.Uvarint() // consumes the only field
	if v := r.U64(); v != 0 {
		t.Errorf("u64 past end = %d", v)
	}
	first := r.Err()
	if kindOf(t, first) != KindTruncated {
		t.Fatalf("err = %v", first)
	}
	r.Fail("later failure")
	if !errors.Is(r.Err(), first) && r.Err().Error() != first.Error() {
		t.Error("first error not preserved")
	}
}

// TestCountGuard: a corrupted count larger than the payload must fail
// before allocating.
func TestCountGuard(t *testing.T) {
	w := NewWriter(1)
	w.Uvarint(1 << 40) // claims a trillion elements
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Count(8); n != 0 {
		t.Errorf("count = %d, want 0", n)
	}
	if kindOf(t, r.Err()) != KindTruncated {
		t.Errorf("err = %v", r.Err())
	}
}

// TestBytesGuard: a length prefix past the payload end fails typed.
func TestBytesGuard(t *testing.T) {
	w := NewWriter(1)
	w.Uvarint(1000)
	w.buf = append(w.buf, 1, 2, 3)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if b := r.Bytes(); b != nil {
		t.Errorf("bytes = %v", b)
	}
	if kindOf(t, r.Err()) != KindTruncated {
		t.Errorf("err = %v", r.Err())
	}
}
