// Package snap implements the versioned binary snapshot container behind
// every checkpoint in the repository: the analyzer checkpoints written by
// slmob.Checkpoint, the simulation state captured by world sources, and
// any future accumulator that needs to survive a process death.
//
// A snapshot is a self-delimiting byte blob:
//
//	magic   [4]byte  "SLCK"
//	version uvarint  container format version (currently 1)
//	kind    uvarint  caller-defined payload kind
//	payload ...      caller-defined, written with the Writer primitives
//	crc32   [4]byte  IEEE checksum of everything before it, little-endian
//
// Decoding is hardened against hostile input: every read is bounds
// checked, claimed element counts are validated against the remaining
// payload size before any allocation, and every failure mode surfaces as
// a typed *Error (never a panic) — the contract the checkpoint fuzz
// harnesses pin.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Version is the container format version this package writes and
// accepts. Bump it when the envelope itself (not a payload) changes.
const Version = 1

var magic = [4]byte{'S', 'L', 'C', 'K'}

// ErrKind classifies a snapshot decoding failure.
type ErrKind uint8

const (
	// KindMagic: the blob does not start with the snapshot magic — it is
	// not a snapshot at all.
	KindMagic ErrKind = iota
	// KindVersion: the container (or a payload) was written by an
	// incompatible format version.
	KindVersion
	// KindChecksum: the trailing CRC does not match — the snapshot was
	// corrupted at rest or in transit.
	KindChecksum
	// KindTruncated: the blob ends before a declared field or element.
	KindTruncated
	// KindMalformed: a field decodes but violates an invariant (NaN
	// weight, zero multiplicity, inverted pair key, ...).
	KindMalformed
)

func (k ErrKind) String() string {
	switch k {
	case KindMagic:
		return "bad magic"
	case KindVersion:
		return "unsupported version"
	case KindChecksum:
		return "checksum mismatch"
	case KindTruncated:
		return "truncated"
	default:
		return "malformed"
	}
}

// Error is the typed decoding failure every snapshot consumer returns:
// corrupted, truncated, or version-skewed snapshots surface as one of
// these, never as a panic or an untyped error.
type Error struct {
	Kind ErrKind
	// Off is the payload offset at which the failure was detected.
	Off int
	Msg string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("snap: %s at offset %d", e.Kind, e.Off)
	}
	return fmt.Sprintf("snap: %s at offset %d: %s", e.Kind, e.Off, e.Msg)
}

// Writer builds a snapshot in memory. The zero value is unusable;
// construct with NewWriter.
type Writer struct {
	buf []byte
}

// NewWriter starts a snapshot of the given payload kind.
func NewWriter(kind uint64) *Writer {
	w := &Writer{buf: make([]byte, 0, 256)}
	w.buf = append(w.buf, magic[:]...)
	w.Uvarint(Version)
	w.Uvarint(kind)
	return w
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed (zigzag) varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// U64 appends a fixed-width big-endian 64-bit word (rng states).
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// F64 appends a float64 as its IEEE bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Finish seals the snapshot with its checksum and returns the blob. The
// writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, sum)
}

// Reader decodes a snapshot. Errors are sticky: after the first failure
// every subsequent read returns zero values, so a decoder can run a
// whole field sequence and check Err once per structure — but it MUST
// check Err before trusting any value that guards an allocation or a
// loop bound (Count does this internally).
type Reader struct {
	data []byte // payload only (magic/version/kind/crc stripped)
	off  int
	err  *Error
	kind uint64
}

// NewReader validates the envelope — magic, container version, checksum
// — and positions the reader at the start of the payload.
func NewReader(blob []byte) (*Reader, error) {
	if len(blob) < len(magic)+1 {
		return nil, &Error{Kind: KindTruncated, Msg: "shorter than header"}
	}
	if [4]byte(blob[:4]) != magic {
		return nil, &Error{Kind: KindMagic}
	}
	if len(blob) < len(magic)+4 {
		return nil, &Error{Kind: KindTruncated, Msg: "no room for checksum"}
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, &Error{Kind: KindChecksum}
	}
	r := &Reader{data: body[4:]}
	ver := r.Uvarint()
	kind := r.Uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if ver != Version {
		return nil, &Error{Kind: KindVersion, Msg: fmt.Sprintf("container version %d, want %d", ver, Version)}
	}
	r.kind = kind
	return r, nil
}

// Kind returns the payload kind declared in the header.
func (r *Reader) Kind() uint64 { return r.kind }

// Err returns the sticky decoding error, nil while the stream is good.
func (r *Reader) Err() error {
	if r.err == nil {
		return nil
	}
	return r.err
}

// Remaining returns the number of undecoded payload bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail latches the first error.
func (r *Reader) fail(kind ErrKind, msg string) {
	if r.err == nil {
		r.err = &Error{Kind: kind, Off: r.off, Msg: msg}
	}
}

// Fail lets a payload decoder latch a malformed-content error at the
// current offset (invariant violations the envelope cannot see).
func (r *Reader) Fail(msg string) { r.fail(KindMalformed, msg) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(KindTruncated, "uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed (zigzag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(KindTruncated, "varint")
		return 0
	}
	r.off += n
	return v
}

// U64 reads a fixed-width big-endian 64-bit word.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(KindTruncated, "u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// F64 reads a float64 from its IEEE bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte; anything but 0 or 1 is malformed.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail(KindTruncated, "bool")
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail(KindMalformed, "bool byte out of range")
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice. The declared length is
// validated against the remaining payload before allocating.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(KindTruncated, "byte slice longer than payload")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	if r.err != nil {
		return ""
	}
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Remaining()) {
		r.fail(KindTruncated, "string longer than payload")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Count reads an element count whose elements each occupy at least
// minBytes encoded bytes, rejecting counts the remaining payload cannot
// possibly hold — the guard that keeps a corrupted length prefix from
// turning into a multi-gigabyte allocation.
func (r *Reader) Count(minBytes int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(r.Remaining()/minBytes) {
		r.fail(KindTruncated, "count exceeds remaining payload")
		return 0
	}
	return int(n)
}
