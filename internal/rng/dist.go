package rng

import "math"

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics when rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// -log(1-U) avoids log(0) because Float64 < 1.
	return -math.Log(1-r.Float64()) / rate
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0:
// P(X > x) = (xm/x)^alpha for x >= xm.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// BoundedPareto returns a Pareto variate truncated to [lo, hi] with shape
// alpha > 0, via inverse-transform sampling of the bounded Pareto CDF.
// Session lengths and pause times in the world model use this family: it
// delivers the heavy-tailed "power-law phase" the paper observes while
// keeping a hard upper bound (no Second Life session exceeded 4 hours).
func (r *Source) BoundedPareto(lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("rng: BoundedPareto with invalid parameters")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF: x = (-(u*ha - u*la - ha) / (ha*la))^(-1/alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// BoundedParetoMean returns the expected value of the bounded Pareto
// distribution on [lo, hi] with shape alpha (alpha != 1).
func BoundedParetoMean(lo, hi, alpha float64) float64 {
	if math.Abs(alpha-1) < 1e-9 {
		// Limit case: E = lo*hi/(hi-lo) * ln(hi/lo).
		return lo * hi / (hi - lo) * math.Log(hi/lo)
	}
	la := math.Pow(lo, alpha)
	ratio := math.Pow(lo/hi, alpha)
	return la / (1 - ratio) * alpha / (alpha - 1) *
		(1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}

// SolveBoundedParetoAlpha finds the shape alpha for which the bounded
// Pareto on [lo, hi] has the requested mean, via bisection. The mean must
// lie strictly between the distribution's limits; out-of-range targets are
// clamped. Used by scenario calibration to hit the paper's per-land mean
// session durations.
func SolveBoundedParetoAlpha(lo, hi, mean float64) float64 {
	// Mean is monotonically decreasing in alpha: alpha->0 pushes mass to
	// the upper bound, large alpha concentrates at the lower bound.
	const (
		aMin = 1e-3
		aMax = 16.0
	)
	target := mean
	if m := BoundedParetoMean(lo, hi, aMin); target > m {
		target = m
	}
	if m := BoundedParetoMean(lo, hi, aMax); target < m {
		target = m
	}
	loA, hiA := aMin, aMax
	for i := 0; i < 80; i++ {
		mid := (loA + hiA) / 2
		if BoundedParetoMean(lo, hi, mid) > target {
			loA = mid
		} else {
			hiA = mid
		}
	}
	return (loA + hiA) / 2
}

// LogNormal returns a log-normal variate where the underlying normal has
// the given mu and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Weibull returns a Weibull variate with the given shape and scale.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and normal approximation with rejection guard for
// large ones.
func (r *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation, adequate for arrival batching.
	for {
		x := mean + math.Sqrt(mean)*r.NormFloat64()
		if x >= 0 {
			return int(x + 0.5)
		}
	}
}

// Levy returns a step length from a (truncated) Lévy distribution with
// stability exponent alpha in (0, 2], minimum step lo and maximum step hi,
// approximated by a bounded Pareto tail. Step lengths of this family are
// the defining ingredient of the Lévy-walk mobility baseline (Rhee et al.,
// INFOCOM 2008, cited by the paper).
func (r *Source) Levy(alpha, lo, hi float64) float64 {
	return r.BoundedPareto(lo, hi, alpha)
}

// Choice returns an index in [0, len(weights)) with probability
// proportional to the weights. Zero-total or empty weights panic.
func (r *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Choice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Choice with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// ExpCutoffSampler draws from a power law with exponential cutoff,
// pdf(x) ∝ x^(-alpha) * exp(-x/cutoff) on [xmin, ∞). The paper reports
// this two-phase shape for both contact and inter-contact times; the
// sampler exists so the fitting code in internal/stats can be validated
// against known ground truth. Sampling inverts a tabulated CDF built once
// at construction (trapezoidal quadrature on a geometric mesh truncated at
// xmin + 60*cutoff, beyond which less than exp(-60) of the mass remains).
type ExpCutoffSampler struct {
	mesh []float64
	cdf  []float64
}

// NewExpCutoffSampler validates parameters and precomputes the inversion
// table. alpha must be >= 0; xmin and cutoff must be positive.
func NewExpCutoffSampler(xmin, alpha, cutoff float64) *ExpCutoffSampler {
	if xmin <= 0 || cutoff <= 0 || alpha < 0 {
		panic("rng: ExpCutoffSampler with invalid parameter")
	}
	const cells = 2048
	upper := xmin + 60*cutoff
	s := &ExpCutoffSampler{
		mesh: make([]float64, cells+1),
		cdf:  make([]float64, cells+1),
	}
	ratio := math.Log(upper / xmin)
	f := func(x float64) float64 {
		return math.Exp(-alpha*math.Log(x) - x/cutoff)
	}
	prevX, prevF := xmin, f(xmin)
	s.mesh[0] = xmin
	for i := 1; i <= cells; i++ {
		x := xmin * math.Exp(ratio*float64(i)/cells)
		fx := f(x)
		s.mesh[i] = x
		s.cdf[i] = s.cdf[i-1] + (x-prevX)*(fx+prevF)/2
		prevX, prevF = x, fx
	}
	total := s.cdf[cells]
	for i := range s.cdf {
		s.cdf[i] /= total
	}
	return s
}

// Sample draws one variate using the supplied source.
func (s *ExpCutoffSampler) Sample(r *Source) float64 {
	u := r.Float64()
	// Binary search for the mesh cell containing u, then interpolate.
	lo, hi := 0, len(s.cdf)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] <= u {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := s.cdf[hi] - s.cdf[lo]
	t := 0.0
	if span > 0 {
		t = (u - s.cdf[lo]) / span
	}
	return s.mesh[lo] + t*(s.mesh[hi]-s.mesh[lo])
}

// ExpCutoffPowerLaw is a convenience wrapper that builds a one-shot
// sampler; prefer NewExpCutoffSampler when drawing many variates.
func (r *Source) ExpCutoffPowerLaw(xmin, alpha, cutoff float64) float64 {
	return NewExpCutoffSampler(xmin, alpha, cutoff).Sample(r)
}
