package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestSplitIsDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("arrivals")
	c2 := New(7).Split("arrivals")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
	d := parent.Split("behavior")
	e := parent.Split("arrivals")
	if d.Uint64() == e.Uint64() {
		t.Error("differently labelled splits should differ")
	}
	// Split must not advance the parent.
	p1 := New(7)
	p2 := New(7)
	p1.Split("x")
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent state")
	}
}

func TestSplitIndexed(t *testing.T) {
	parent := New(99)
	a := parent.SplitIndexed("avatar", 1)
	b := parent.SplitIndexed("avatar", 2)
	a2 := New(99).SplitIndexed("avatar", 1)
	if a.Uint64() == b.Uint64() {
		t.Error("indexed splits with different indices should differ")
	}
	a.Uint64() // advance one more
	_ = a2.Uint64()
	if a.Uint64() == b.Uint64() {
		t.Error("indexed splits should stay distinct")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 4*math.Sqrt(n/10) {
			t.Errorf("Intn digit %d count %d deviates from %d", d, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(0.5)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(19)
	const xm, alpha = 2.0, 1.5
	const n = 100000
	exceed := 0
	for i := 0; i < n; i++ {
		x := r.Pareto(xm, alpha)
		if x < xm {
			t.Fatalf("Pareto below scale: %v", x)
		}
		if x > 10 {
			exceed++
		}
	}
	// P(X > 10) = (2/10)^1.5 ≈ 0.0894
	want := math.Pow(xm/10, alpha)
	got := float64(exceed) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Pareto tail P(X>10) = %v, want %v", got, want)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 50000; i++ {
		x := r.BoundedPareto(60, 14400, 0.4)
		if x < 60 || x > 14400 {
			t.Fatalf("BoundedPareto out of range: %v", x)
		}
	}
}

func TestBoundedParetoMeanMatchesSamples(t *testing.T) {
	r := New(29)
	const lo, hi, alpha = 60.0, 14400.0, 0.4
	want := BoundedParetoMean(lo, hi, alpha)
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += r.BoundedPareto(lo, hi, alpha)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("sample mean %v vs analytic %v", got, want)
	}
}

func TestSolveBoundedParetoAlpha(t *testing.T) {
	for _, mean := range []float64{300, 716, 878, 2114} {
		alpha := SolveBoundedParetoAlpha(60, 14400, mean)
		got := BoundedParetoMean(60, 14400, alpha)
		if math.Abs(got-mean)/mean > 0.01 {
			t.Errorf("mean %v: solved alpha %v gives mean %v", mean, alpha, got)
		}
	}
}

func TestSolveBoundedParetoAlphaClampsOutOfRange(t *testing.T) {
	// Target above what any alpha can produce: should clamp, not hang.
	alpha := SolveBoundedParetoAlpha(60, 120, 1e9)
	if alpha <= 0 || math.IsNaN(alpha) {
		t.Errorf("clamped alpha = %v", alpha)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0, 0.5, 4, 25, 100} {
		r := New(31)
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		tol := 0.05*mean + 0.02
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	// shape=1 reduces to exponential with mean=scale.
	r := New(37)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 3)
	}
	if got := sum / n; math.Abs(got-3) > 0.06 {
		t.Errorf("Weibull(1,3) mean = %v", got)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(41)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice with zero total did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestExpCutoffPowerLawSupport(t *testing.T) {
	r := New(43)
	s := NewExpCutoffSampler(10, 0.8, 300)
	for i := 0; i < 20000; i++ {
		x := s.Sample(r)
		if x < 10 {
			t.Fatalf("sample below xmin: %v", x)
		}
	}
	if x := r.ExpCutoffPowerLaw(10, 0.8, 300); x < 10 {
		t.Fatalf("wrapper sample below xmin: %v", x)
	}
}

func TestExpCutoffSamplerMatchesTargetTail(t *testing.T) {
	// With alpha=0 the model degenerates to a shifted exponential whose
	// tail is known in closed form: P(X > xmin+c) = exp(-c/cutoff)... up
	// to the normalisation over [xmin, inf), which for alpha=0 is exactly
	// the shifted exponential. Use it to validate the inversion table.
	r := New(61)
	s := NewExpCutoffSampler(10, 0, 100)
	const n = 200000
	exceed := 0
	for i := 0; i < n; i++ {
		if s.Sample(r) > 110 {
			exceed++
		}
	}
	got := float64(exceed) / n
	want := math.Exp(-1) // P(X-10 > 100) with mean 100
	if math.Abs(got-want) > 0.01 {
		t.Errorf("tail P(X>110) = %v, want %v", got, want)
	}
}

func TestExpCutoffSamplerPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid parameters did not panic")
		}
	}()
	NewExpCutoffSampler(0, 1, 1)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint32) bool {
		r := New(uint64(seed))
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(47)
	for i := 0; i < 10000; i++ {
		x := r.Range(5, 8)
		if x < 5 || x >= 8 {
			t.Fatalf("Range out of bounds: %v", x)
		}
	}
}

func TestLevyIsBoundedPareto(t *testing.T) {
	a := New(53)
	b := New(53)
	for i := 0; i < 100; i++ {
		if a.Levy(1.2, 1, 1000) != b.BoundedPareto(1, 1000, 1.2) {
			t.Fatal("Levy should alias BoundedPareto")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(59)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", got)
	}
}

// TestStateRestoreResumesStream: a serialised mid-stream state must
// continue the exact sequence (the estate handoff capsule relies on it).
func TestStateRestoreResumesStream(t *testing.T) {
	a := New(12345)
	for i := 0; i < 777; i++ {
		a.Uint64()
	}
	b := New(0)
	b.Restore(a.State())
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
	// The all-zero guard keeps a restored source runnable.
	var z Source
	z.Restore([4]uint64{})
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero-state source is stuck")
	}
}
