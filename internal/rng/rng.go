// Package rng provides the deterministic random number generation used by
// every stochastic component in the repository. Simulations are seeded with
// a single 64-bit value and fan out into independent named streams, so an
// entire 24-hour metaverse run — and therefore every figure in
// EXPERIMENTS.md — is bit-for-bit reproducible.
//
// The generator is xoshiro256** seeded through splitmix64, implemented here
// so the library depends only on the standard library and so streams can be
// split by label (something math/rand does not offer).
package rng

import "math"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; derive per-goroutine streams with Split instead of
// sharing one Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit value via splitmix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (r *Source) reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitmix64 advances the splitmix state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split derives an independent stream identified by a label. Splitting the
// same parent state with the same label always yields the same stream, and
// distinct labels yield streams that do not overlap in practice. Split does
// not advance the parent.
func (r *Source) Split(label string) *Source {
	// Mix the label into the parent state with FNV-1a, then re-key
	// through splitmix64.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	seed := h ^ rotl(r.s[0], 13) ^ rotl(r.s[2], 29)
	return New(seed)
}

// SplitIndexed derives an independent stream identified by a label and an
// index, convenient for per-avatar or per-land streams.
func (r *Source) SplitIndexed(label string, idx uint64) *Source {
	child := r.Split(label)
	child.reseed(child.Uint64() ^ (idx+1)*0x9E3779B97F4A7C15)
	return child
}

// State returns the generator's internal state, so a mid-stream source
// can be serialised — the estate service ships an avatar's personal
// stream across region servers this way — and later resumed with
// Restore to continue the exact same sequence.
func (r *Source) State() [4]uint64 { return r.s }

// Restore sets the internal state to one previously captured with State.
// An all-zero state (never produced by State on a real source) is
// re-keyed through the default seed guard, since xoshiro cannot run on
// zeros.
func (r *Source) Restore(state [4]uint64) {
	r.s = state
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi). It panics when hi < lo.
func (r *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
