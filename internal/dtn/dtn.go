// Package dtn replays a mobility trace under delay-tolerant-network
// forwarding schemes. It is the paper's stated downstream application:
// "the traces collected in this work can be very useful for trace-driven
// simulations of communication schemes in delay tolerant networks and
// their performance evaluation" (§1).
//
// Four classical schemes are implemented: epidemic flooding, direct
// delivery, two-hop relay, and binary spray-and-wait. Contacts are taken
// from the trace's line-of-sight adjacency per snapshot at a configurable
// radio range, matching the contact model of the paper's temporal
// analysis.
package dtn

import (
	"fmt"
	"sort"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/rng"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// Protocol selects a forwarding scheme.
type Protocol int

const (
	// Epidemic floods every message over every contact.
	Epidemic Protocol = iota
	// Direct delivers only on source-destination contact.
	Direct
	// TwoHop lets the source hand copies to relays, which deliver only
	// to the destination.
	TwoHop
	// SprayAndWait spreads a bounded number of copies (binary spray),
	// then waits for direct delivery.
	SprayAndWait
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case Epidemic:
		return "epidemic"
	case Direct:
		return "direct"
	case TwoHop:
		return "two-hop"
	case SprayAndWait:
		return "spray-and-wait"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config controls one replay.
type Config struct {
	Protocol Protocol
	// Range is the radio range in metres (the paper's r_b=10 or r_w=80).
	Range float64
	// Messages is the number of unicast messages to generate.
	Messages int
	// Copies bounds spray-and-wait's total copies per message; zero
	// selects 8.
	Copies int
	// TTL drops messages older than this many seconds; zero disables.
	TTL int64
	// Seed drives source/destination sampling.
	Seed uint64
}

// Result summarises a replay.
type Result struct {
	Protocol  Protocol
	Generated int
	Delivered int
	// Delays holds per-delivered-message latency in seconds.
	Delays []float64
	// Copies is the total number of message replicas created (transmission
	// cost).
	Copies int
}

// DeliveryRatio returns delivered/generated.
func (r *Result) DeliveryRatio() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Generated)
}

// MedianDelay returns the median delivery delay, or NaN with no
// deliveries.
func (r *Result) MedianDelay() float64 {
	if len(r.Delays) == 0 {
		return 0
	}
	return stats.MustEmpirical(r.Delays).Median()
}

// CopiesPerMessage returns the average replication cost.
func (r *Result) CopiesPerMessage() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.Copies) / float64(r.Generated)
}

// message is one unicast flow under replay.
type message struct {
	id          int
	src, dst    trace.AvatarID
	createdAt   int64
	delivered   bool
	deliveredAt int64
	copies      int
	// tokens[node] is spray-and-wait's remaining copy budget per holder.
	tokens map[trace.AvatarID]int
	// holders is the set of nodes currently buffering the message.
	holders map[trace.AvatarID]bool
}

// Replay runs the configured protocol over the trace.
func Replay(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.Range <= 0 {
		return nil, fmt.Errorf("dtn: range must be positive")
	}
	if cfg.Messages <= 0 {
		return nil, fmt.Errorf("dtn: message count must be positive")
	}
	if cfg.Copies <= 0 {
		cfg.Copies = 8
	}
	if len(tr.Snapshots) < 2 {
		return nil, fmt.Errorf("dtn: trace too short")
	}

	// Generate messages: sources and destinations sampled among users
	// present at the creation snapshot, creation times uniform over the
	// first two thirds of the trace so deliveries have room to happen.
	r := rng.New(cfg.Seed)
	horizon := len(tr.Snapshots) * 2 / 3
	msgs := make([]*message, 0, cfg.Messages)
	for i := 0; i < cfg.Messages; i++ {
		si := r.Intn(horizon)
		snap := tr.Snapshots[si]
		if len(snap.Samples) < 2 {
			continue
		}
		a := r.Intn(len(snap.Samples))
		b := r.Intn(len(snap.Samples) - 1)
		if b >= a {
			b++
		}
		m := &message{
			id:        i,
			src:       snap.Samples[a].ID,
			dst:       snap.Samples[b].ID,
			createdAt: snap.T,
			copies:    1,
			holders:   map[trace.AvatarID]bool{snap.Samples[a].ID: true},
		}
		if cfg.Protocol == SprayAndWait {
			m.tokens = map[trace.AvatarID]int{m.src: cfg.Copies}
		}
		msgs = append(msgs, m)
	}
	res := &Result{Protocol: cfg.Protocol, Generated: len(msgs)}
	if len(msgs) == 0 {
		return res, nil
	}

	// Replay snapshot by snapshot.
	var positions []geom.Vec
	var ids []trace.AvatarID
	for _, snap := range tr.Snapshots {
		positions = positions[:0]
		ids = ids[:0]
		for _, s := range snap.Samples {
			if s.Seated {
				continue
			}
			positions = append(positions, s.Pos)
			ids = append(ids, s.ID)
		}
		if len(ids) < 2 {
			continue
		}
		g := graph.FromPositions(positions, cfg.Range)
		for _, m := range msgs {
			if m.delivered || snap.T < m.createdAt {
				continue
			}
			if cfg.TTL > 0 && snap.T-m.createdAt > cfg.TTL {
				continue
			}
			exchange(m, cfg, g, ids, snap.T)
		}
	}

	for _, m := range msgs {
		res.Copies += m.copies
		if m.delivered {
			res.Delivered++
			res.Delays = append(res.Delays, float64(m.deliveredAt-m.createdAt))
		}
	}
	sort.Float64s(res.Delays)
	return res, nil
}

// exchange applies one snapshot's contacts to one message.
func exchange(m *message, cfg Config, g *graph.Graph, ids []trace.AvatarID, now int64) {
	// Deterministic iteration: scan vertices in index order.
	for u := 0; u < g.N(); u++ {
		uid := ids[u]
		if !m.holders[uid] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			vid := ids[v]
			if vid == m.dst {
				m.delivered = true
				m.deliveredAt = now
				return
			}
			if m.holders[vid] {
				continue
			}
			switch cfg.Protocol {
			case Epidemic:
				m.holders[vid] = true
				m.copies++
			case Direct:
				// Only source-to-destination transfers, handled above.
			case TwoHop:
				if uid == m.src {
					m.holders[vid] = true
					m.copies++
				}
			case SprayAndWait:
				if t := m.tokens[uid]; t > 1 {
					// Binary spray: hand over half the tokens.
					give := t / 2
					m.tokens[uid] = t - give
					m.tokens[vid] = give
					m.holders[vid] = true
					m.copies++
				}
			}
		}
	}
}

// CompareProtocols replays the trace under all four schemes with shared
// parameters, the harness behind experiment X2.
func CompareProtocols(tr *trace.Trace, r float64, messages int, seed uint64) ([]*Result, error) {
	var out []*Result
	for _, p := range []Protocol{Epidemic, SprayAndWait, TwoHop, Direct} {
		res, err := Replay(tr, Config{
			Protocol: p, Range: r, Messages: messages, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
