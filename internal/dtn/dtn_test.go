package dtn

import (
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// denseTrace collects a short Dance Island trace where contacts abound.
func denseTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	scn := world.DanceIsland(seed)
	scn.Duration = 3600
	tr, err := world.Collect(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayValidation(t *testing.T) {
	tr := denseTrace(t, 1)
	if _, err := Replay(tr, Config{Range: 0, Messages: 10}); err == nil {
		t.Error("zero range accepted")
	}
	if _, err := Replay(tr, Config{Range: 10, Messages: 0}); err == nil {
		t.Error("zero messages accepted")
	}
	empty := trace.New("x", 10)
	if _, err := Replay(empty, Config{Range: 10, Messages: 10}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestEpidemicDeliversOnDenseLand(t *testing.T) {
	tr := denseTrace(t, 2)
	res, err := Replay(tr, Config{Protocol: Epidemic, Range: 10, Messages: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no messages generated")
	}
	if res.DeliveryRatio() < 0.4 {
		t.Errorf("epidemic delivery ratio %.2f too low on a dance floor", res.DeliveryRatio())
	}
	if res.CopiesPerMessage() < 1 {
		t.Errorf("copies per message = %v", res.CopiesPerMessage())
	}
	for _, d := range res.Delays {
		if d < 0 {
			t.Errorf("negative delay %v", d)
		}
	}
}

func TestProtocolOrdering(t *testing.T) {
	// Epidemic dominates everything in delivery ratio; direct delivery is
	// the cheapest. This is the classic DTN result the traces must
	// reproduce (experiment X2).
	tr := denseTrace(t, 4)
	results, err := CompareProtocols(tr, 10, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[Protocol]*Result{}
	for _, r := range results {
		byProto[r.Protocol] = r
	}
	epi, direct := byProto[Epidemic], byProto[Direct]
	spray, twohop := byProto[SprayAndWait], byProto[TwoHop]
	if epi.DeliveryRatio() < direct.DeliveryRatio() {
		t.Errorf("epidemic %.2f < direct %.2f", epi.DeliveryRatio(), direct.DeliveryRatio())
	}
	if epi.DeliveryRatio() < spray.DeliveryRatio() {
		t.Errorf("epidemic %.2f < spray %.2f", epi.DeliveryRatio(), spray.DeliveryRatio())
	}
	if epi.DeliveryRatio() < twohop.DeliveryRatio() {
		t.Errorf("epidemic %.2f < two-hop %.2f", epi.DeliveryRatio(), twohop.DeliveryRatio())
	}
	// Cost ordering: epidemic replicates the most; direct never replicates.
	if direct.CopiesPerMessage() != 1 {
		t.Errorf("direct copies = %v, want 1", direct.CopiesPerMessage())
	}
	if epi.CopiesPerMessage() <= direct.CopiesPerMessage() {
		t.Errorf("epidemic cost %v not above direct %v",
			epi.CopiesPerMessage(), direct.CopiesPerMessage())
	}
}

func TestSprayAndWaitBoundsCopies(t *testing.T) {
	tr := denseTrace(t, 6)
	const budget = 4
	res, err := Replay(tr, Config{
		Protocol: SprayAndWait, Range: 10, Messages: 80, Copies: budget, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesPerMessage() > budget {
		t.Errorf("spray exceeded budget: %v copies/msg > %d", res.CopiesPerMessage(), budget)
	}
}

func TestTTLReducesDelivery(t *testing.T) {
	tr := denseTrace(t, 8)
	free, err := Replay(tr, Config{Protocol: Epidemic, Range: 10, Messages: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ttld, err := Replay(tr, Config{Protocol: Epidemic, Range: 10, Messages: 100, Seed: 9, TTL: 30})
	if err != nil {
		t.Fatal(err)
	}
	if ttld.Delivered > free.Delivered {
		t.Errorf("TTL increased delivery: %d > %d", ttld.Delivered, free.Delivered)
	}
	for _, d := range ttld.Delays {
		if d > 30 {
			t.Errorf("delivery after TTL: delay %v", d)
		}
	}
}

func TestLargerRangeDeliversFaster(t *testing.T) {
	tr := denseTrace(t, 10)
	r10, err := Replay(tr, Config{Protocol: Epidemic, Range: 10, Messages: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r80, err := Replay(tr, Config{Protocol: Epidemic, Range: 80, Messages: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r80.DeliveryRatio() < r10.DeliveryRatio() {
		t.Errorf("r=80 ratio %.2f < r=10 ratio %.2f", r80.DeliveryRatio(), r10.DeliveryRatio())
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := denseTrace(t, 12)
	a, err := Replay(tr, Config{Protocol: SprayAndWait, Range: 10, Messages: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, Config{Protocol: SprayAndWait, Range: 10, Messages: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Copies != b.Copies {
		t.Errorf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		Epidemic: "epidemic", Direct: "direct", TwoHop: "two-hop",
		SprayAndWait: "spray-and-wait",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d -> %q", p, p.String())
		}
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol name empty")
	}
}

func TestResultAccessorsEmpty(t *testing.T) {
	r := &Result{}
	if r.DeliveryRatio() != 0 || r.MedianDelay() != 0 || r.CopiesPerMessage() != 0 {
		t.Error("empty result accessors should be zero")
	}
}

func TestReplaySkipsSeated(t *testing.T) {
	// Two avatars forever in contact, but one is seated: no delivery.
	tr := trace.New("x", 10)
	for i := int64(1); i <= 10; i++ {
		_ = tr.Append(trace.Snapshot{T: i * 10, Samples: []trace.Sample{
			{ID: 1, Pos: geom.V2(5, 5)},
			{ID: 2, Pos: geom.V2(6, 5), Seated: true},
		}})
	}
	res, err := Replay(tr, Config{Protocol: Epidemic, Range: 10, Messages: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Errorf("delivered %d via a seated avatar", res.Delivered)
	}
}
