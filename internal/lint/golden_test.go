package lint

import (
	"path/filepath"
	"testing"
)

// TestGoldenDeterminism pins the determinism analyzer against positive
// and negative cases: clock sampling, global math/rand, and map
// iteration into ordered sinks, with the sorted-keys and per-entry
// shapes accepted.
func TestGoldenDeterminism(t *testing.T) {
	runGolden(t, "determinism", []*Analyzer{Determinism()})
}

// TestGoldenHotpath pins the //slmob:hotpath allocation rules: make,
// new, map literals, growth appends, and interface boxing flagged;
// warm-up guards, cold error branches, self-appends, and the
// bucket-alias idiom accepted.
func TestGoldenHotpath(t *testing.T) {
	runGolden(t, "hotpath", []*Analyzer{Hotpath()})
}

// TestGoldenAccContract pins the accumulator field contract: fields
// dropped by Reset, Merge, or the encode/decode pair flagged; union
// coverage across the pair, transitive helpers, whole-struct zeroing,
// field-level allows, and scratch types accepted.
func TestGoldenAccContract(t *testing.T) {
	runGolden(t, "acc", []*Analyzer{AccContract()})
}

// TestGoldenRngDiscipline pins the rng ownership rules: by-value
// copies in every position and shared-capture goroutines flagged;
// Split handoffs and State capsules accepted.
func TestGoldenRngDiscipline(t *testing.T) {
	runGolden(t, "rng", []*Analyzer{RngDiscipline()})
}

// TestGoldenAllow pins the escape hatch itself: a justified allow
// suppresses exactly its finding, and unknown-rule, reasonless, and
// stale allows are findings.
func TestGoldenAllow(t *testing.T) {
	runGolden(t, "allow", Analyzers())
}

func runGolden(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	problems, err := CheckGolden(filepath.Join("testdata", dir), analyzers)
	if err != nil {
		t.Fatalf("golden %s: %v", dir, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
