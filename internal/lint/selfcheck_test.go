package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestModuleIsClean pins that the full slvet suite runs clean on this
// repository — the same gate CI enforces with `go run ./cmd/slvet`.
// Every suppression in the tree is justified (reasonless and stale
// allows are themselves findings), so a pass here means zero
// unexplained escapes.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against the source importer")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(mod.Fset, mod.Pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		p := d.Position(mod.Fset)
		rel, rerr := filepath.Rel(root, p.Filename)
		if rerr != nil {
			rel = p.Filename
		}
		t.Errorf("%s:%d: [%s] %s", rel, p.Line, d.Rule, d.Message)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
