// Package lint is slmob's custom static-analysis suite: a small
// go/analysis-style framework plus four analyzers that mechanically
// enforce the invariants the runtime gates only catch after the fact —
// bit-identical live/replay digests, merge-of-windows ≡ whole-trace,
// reproducible checkpoint bytes, and the zero-allocation hot-path pins.
//
// The framework is deliberately stdlib-only (go/ast + go/types + the
// source importer); the module has no external dependencies and the
// linter keeps it that way. cmd/slvet is the multichecker driver, and
// DESIGN.md §7 documents every rule, the runtime gate it front-runs,
// and the escape-hatch grammar.
//
// Suppressions use
//
//	//lint:allow <rule> <reason>
//
// placed on the flagged line, on the line directly above it, or on a
// struct-field declaration (exempting that field from the accumulator
// contract). The reason is mandatory: an allow without one is itself a
// diagnostic, so every suppression in the tree is explained.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule set. Run inspects the whole loaded module
// through the Pass and reports findings; the framework applies the
// allow-comment filter afterwards.
type Analyzer struct {
	// Name is the rule key used in //lint:allow comments.
	Name string
	// Doc is a one-paragraph description shown by `slvet -help`.
	Doc string
	// Run inspects pass.Pkgs and calls pass.Report for each finding.
	Run func(pass *Pass) error
}

// Package is one type-checked package of the loaded module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the full type-checking results for Files.
	Info *types.Info
}

// Pass hands an analyzer the loaded module and a reporting sink.
type Pass struct {
	// Fset positions every node of every package.
	Fset *token.FileSet
	// Pkgs lists the module's packages in dependency order.
	Pkgs []*Package

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Report records one finding. The rule is filled from the running
// analyzer.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     pos,
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in the file set.
	Pos token.Pos
	// Rule is the reporting analyzer's name — the allow key.
	Rule string
	// Message describes the finding.
	Message string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// allowKey identifies one source line of one file.
type allowKey struct {
	file string
	line int
}

// allowEntry is one parsed //lint:allow comment.
type allowEntry struct {
	rule   string
	reason string
	pos    token.Pos
	used   bool
}

// allowIndex maps flagged lines to their suppressions.
type allowIndex struct {
	byLine map[allowKey][]*allowEntry
	all    []*allowEntry
}

const allowPrefix = "//lint:allow"

// buildAllowIndex scans every comment of every file for allow
// directives. A directive covers its own line and, when it is the only
// thing on its line, the line below — the two idiomatic placements.
func buildAllowIndex(fset *token.FileSet, pkgs []*Package) *allowIndex {
	idx := &allowIndex{byLine: make(map[allowKey][]*allowEntry)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
					// Golden files annotate expectations with "// want"
					// inside the same comment; that is never part of the
					// justification.
					if i := strings.Index(rest, "// want"); i >= 0 {
						rest = rest[:i]
					}
					rule, reason, _ := strings.Cut(rest, " ")
					e := &allowEntry{rule: rule, reason: strings.TrimSpace(reason), pos: c.Pos()}
					idx.all = append(idx.all, e)
					p := fset.Position(c.Pos())
					idx.byLine[allowKey{p.Filename, p.Line}] = append(idx.byLine[allowKey{p.Filename, p.Line}], e)
					// A comment starting at column 1-ish of its own line
					// (nothing before it) also covers the next line.
					if standsAlone(fset, f, c) {
						idx.byLine[allowKey{p.Filename, p.Line + 1}] = append(idx.byLine[allowKey{p.Filename, p.Line + 1}], e)
					}
				}
			}
		}
	}
	return idx
}

// standsAlone reports whether the comment is the first token on its
// line (a directive line rather than a trailing comment).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	p := fset.Position(c.Pos())
	// Cheap check: no declaration or statement of the file starts on the
	// same line before the comment's column. Scanning tokens would be
	// exact; comparing against the file's line start is enough because
	// gofmt keeps trailing comments after code on the same line.
	var onSameLine bool
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || onSameLine {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == p.Line && np.Column < p.Column {
			onSameLine = true
			return false
		}
		return n.End() >= c.Pos()
	})
	return !onSameLine
}

// suppressed consumes a matching allow for the diagnostic, if any.
func (idx *allowIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, e := range idx.byLine[allowKey{p.Filename, p.Line}] {
		if e.rule == d.Rule {
			e.used = true
			return true
		}
	}
	return false
}

// Run executes the analyzers over a loaded module and returns the
// surviving diagnostics, sorted by position: findings minus justified
// suppressions, plus one diagnostic per malformed or unexplained allow.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkgs: pkgs, analyzer: a}
		pass.report = func(d Diagnostic) { raw = append(raw, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}

	idx := buildAllowIndex(fset, pkgs)
	// An allow is validated against the full suite's rule names, not just
	// the analyzers selected for this run — running a subset (slvet
	// -rules) must not misreport allows for unselected rules as unknown.
	// Staleness, by contrast, is only decidable for rules that ran.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	selected := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		selected[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range raw {
		if !idx.suppressed(fset, d) {
			out = append(out, d)
		}
	}
	// Every allow must name a known rule and carry a reason; an allow
	// that suppressed nothing is stale and flagged too, so the set of
	// suppressions in the tree stays exactly the justified, active ones.
	for _, e := range idx.all {
		switch {
		case !known[e.rule]:
			out = append(out, Diagnostic{Pos: e.pos, Rule: "allow", Message: fmt.Sprintf("unknown rule %q in //lint:allow", e.rule)})
		case e.reason == "":
			out = append(out, Diagnostic{Pos: e.pos, Rule: "allow", Message: fmt.Sprintf("//lint:allow %s has no reason; every suppression must be justified", e.rule)})
		case !e.used && selected[e.rule]:
			out = append(out, Diagnostic{Pos: e.pos, Rule: "allow", Message: fmt.Sprintf("stale //lint:allow %s suppresses nothing", e.rule)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out, nil
}

// Analyzers returns the full slvet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		Hotpath(),
		AccContract(),
		RngDiscipline(),
	}
}
