package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AccContract enforces the core.Accumulator contract on every
// implementing struct that participates in merging or checkpointing: a
// struct field added to such a type MUST be handled by Reset (or the
// window-rollover recycles stale state into the next window), by every
// Merge method (or merged windows silently drop the field — a
// wrong-answer bug), and by its encode/decode pair (or checkpoints
// corrupt the field on resume).
//
// "Handled" means referenced transitively: the method body, or any
// same-module function it calls, selects the field, names it in a
// composite literal, or copies the whole struct. The encode and decode
// halves are checked as a pair — a field reconstructed by the decoder
// (Weighted's running total, rebuilt by AddN) counts as covered.
//
// Fields that are derived caches or construction-time identity are
// exempted at the declaration with //lint:allow acc <reason>.
//
// Types that implement Accumulator but expose neither a merge method
// (Merge/mergeFrom) nor an encode/decode pair — pure resettable
// scratch like geom.Grid — are outside the contract and skipped.
func AccContract() *Analyzer {
	return &Analyzer{
		Name: "acc",
		Doc: "require every field of a merging/serializable core.Accumulator implementation to be " +
			"handled by Reset, every Merge method, and the encode/decode pair",
		Run: runAccContract,
	}
}

func runAccContract(pass *Pass) error {
	idx := buildFuncIndex(pass.Pkgs)

	// The Accumulator interfaces: any interface named Accumulator
	// declared in a package named core (the analyzer golden tests load a
	// synthetic core package the same way).
	var ifaces []*types.Interface
	for _, pkg := range pass.Pkgs {
		if pkg.Types.Name() != "core" {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup("Accumulator").(*types.TypeName); ok {
			if it, ok := obj.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, it)
			}
		}
	}
	if len(ifaces) == 0 {
		return nil
	}

	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			implements := false
			for _, it := range ifaces {
				if types.Implements(types.NewPointer(named), it) {
					implements = true
					break
				}
			}
			if !implements {
				continue
			}
			checkAccumulator(pass, pkg, idx, named, st)
		}
	}
	return nil
}

// methodNamed returns the method of named called name, nil if absent.
func methodNamed(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// packageFunc looks up a package-scope function by name.
func packageFunc(pkg *Package, name string) *types.Func {
	f, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	return f
}

func checkAccumulator(pass *Pass, pkg *Package, idx *funcIndex, named *types.Named, st *types.Struct) {
	typeName := named.Obj().Name()

	var merges []*types.Func
	for _, name := range []string{"Merge", "mergeFrom"} {
		if m := methodNamed(named, name); m != nil {
			merges = append(merges, m)
		}
	}
	var encoders, decoders []*types.Func
	if m := methodNamed(named, "Encode"); m != nil {
		encoders = append(encoders, m)
	}
	if m := methodNamed(named, "Decode"); m != nil {
		decoders = append(decoders, m)
	}
	for _, prefix := range []string{"encode", "Encode"} {
		if f := packageFunc(pkg, prefix+typeName); f != nil {
			encoders = append(encoders, f)
		}
	}
	for _, prefix := range []string{"decode", "Decode"} {
		if f := packageFunc(pkg, prefix+typeName); f != nil {
			decoders = append(decoders, f)
		}
	}

	// Pure resettable scratch is outside the merge/serialize contract.
	if len(merges) == 0 && len(encoders) == 0 && len(decoders) == 0 {
		return
	}

	fields := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	if len(fields) == 0 {
		return
	}

	reportMissing := func(covered map[*types.Var]bool, what string) {
		for _, f := range fields {
			if !covered[f] {
				pass.Report(f.Pos(), "field %s.%s is not handled by %s; a stale or dropped field here breaks %s",
					typeName, f.Name(), what, contractConsequence(what))
			}
		}
	}

	if reset := methodNamed(named, "Reset"); reset != nil {
		reportMissing(fieldsCovered(pkg, idx, named, []*types.Func{reset}), "Reset")
	}
	for _, m := range merges {
		reportMissing(fieldsCovered(pkg, idx, named, []*types.Func{m}), m.Name())
	}
	switch {
	case len(encoders) > 0 && len(decoders) > 0:
		pair := append(append([]*types.Func{}, encoders...), decoders...)
		reportMissing(fieldsCovered(pkg, idx, named, pair), "the encode/decode pair")
	case len(encoders) > 0 || len(decoders) > 0:
		var have, want string
		if len(encoders) > 0 {
			have, want = encoders[0].Name(), "decoder"
		} else {
			have, want = decoders[0].Name(), "encoder"
		}
		pass.Report(named.Obj().Pos(), "accumulator %s has %s but no matching %s; checkpoints cannot round-trip",
			typeName, have, want)
	}
}

func contractConsequence(what string) string {
	switch {
	case what == "Reset":
		return "window rollover (stale state leaks into the next window)"
	case strings.HasPrefix(strings.ToLower(what), "merge"):
		return "merge-of-windows ≡ whole-trace (the field is dropped on merge)"
	default:
		return "checkpoint/resume (the field is lost across a restore)"
	}
}

// fieldsCovered walks the given functions and every same-module
// function they transitively call, collecting which fields of named are
// referenced: selected, named in a composite literal, or covered
// wholesale by a struct copy.
func fieldsCovered(pkg *Package, idx *funcIndex, named *types.Named, roots []*types.Func) map[*types.Var]bool {
	fieldSet := make(map[*types.Var]bool)
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		fieldSet[st.Field(i)] = true
	}

	covered := make(map[*types.Var]bool)
	coverAll := func() {
		for f := range fieldSet {
			covered[f] = true
		}
	}
	isOurStruct := func(t types.Type) bool {
		n := namedOf(t)
		return n != nil && n.Obj() == named.Obj()
	}

	visited := make(map[*types.Func]bool)
	queue := append([]*types.Func{}, roots...)
	for len(queue) > 0 && len(visited) < 500 {
		fn := queue[0]
		queue = queue[1:]
		if fn == nil || visited[fn] {
			continue
		}
		visited[fn] = true
		fd := idx.decls[fn]
		fpkg := idx.pkgs[fn]
		if fd == nil || fd.Body == nil || fpkg == nil {
			continue
		}
		info := fpkg.Info
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Field references through selections and composite
				// literal keys both resolve in Uses.
				if v, ok := info.Uses[n].(*types.Var); ok && v.IsField() && fieldSet[v] {
					covered[v] = true
				}
			case *ast.AssignStmt:
				// A whole-struct copy (dst = src), a zeroing assignment
				// (*p = T{}), or a positional literal covers every field.
				// A keyed literal covers exactly the fields it names,
				// which the Ident case picks up.
				for i := range n.Lhs {
					if i >= len(n.Rhs) || !isOurStruct(info.TypeOf(n.Lhs[i])) {
						continue
					}
					lit, isLit := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit)
					keyed := isLit && len(lit.Elts) > 0
					if keyed {
						if _, kv := lit.Elts[0].(*ast.KeyValueExpr); !kv {
							keyed = false
						}
					}
					if !keyed {
						coverAll()
					}
				}
			case *ast.CallExpr:
				if callee := calleeOf(info, n); callee != nil {
					if _, local := idx.decls[callee]; local && !visited[callee] {
						queue = append(queue, callee)
					}
				}
			}
			return true
		})
	}
	_ = fmt.Sprintf // keep fmt import decisions stable
	return covered
}
