package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// expectation is one // want "regex" annotation in a golden file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRe matches the quoted patterns of a // want comment. Each golden
// line carries one or more double-quoted Go strings:
//
//	x = append(y, v) // want `grows x`
//	// want "appends to diffs" "second finding on this line"
var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// CheckGolden runs the given analyzers over the module tree rooted at
// dir (loaded as a synthetic module named "golden") and compares the
// diagnostics — after allow-comment filtering, exactly as slvet applies
// it — against the // want annotations in the sources. It returns one
// error string per mismatch: a diagnostic no annotation expected, or an
// annotation nothing matched. The test wrapper turns these into
// t.Errorf calls.
func CheckGolden(dir string, analyzers []*Analyzer) ([]string, error) {
	mod, err := LoadTree(dir, "golden")
	if err != nil {
		return nil, err
	}
	diags, err := Run(mod.Fset, mod.Pkgs, analyzers)
	if err != nil {
		return nil, err
	}

	expects, err := collectWants(mod)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, d := range diags {
		p := d.Position(mod.Fset)
		found := false
		for _, e := range expects {
			if e.matched || e.file != p.Filename || e.line != p.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic [%s] %s", p.Filename, p.Line, d.Rule, d.Message))
		}
	}
	for _, e := range expects {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.pattern))
		}
	}
	return problems, nil
}

// collectWants parses the // want annotations out of every file of the
// loaded module.
func collectWants(mod *Module) ([]*expectation, error) {
	var out []*expectation
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					p := mod.Fset.Position(c.Pos())
					for _, q := range wantArgRe.FindAllString(m[1], -1) {
						var text string
						if strings.HasPrefix(q, "`") {
							text = strings.Trim(q, "`")
						} else {
							var err error
							text, err = strconv.Unquote(q)
							if err != nil {
								return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", p.Filename, p.Line, q, err)
							}
						}
						re, err := regexp.Compile(text)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: want pattern %q: %w", p.Filename, p.Line, text, err)
						}
						out = append(out, &expectation{file: p.Filename, line: p.Line, pattern: re})
					}
				}
			}
		}
	}
	return out, nil
}
