package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed and type-checked source module.
type Module struct {
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Path is the module path from go.mod.
	Path string
	// Pkgs lists the packages in dependency (topological) order.
	Pkgs []*Package
}

// LoadModule parses and type-checks every non-test package under root
// (a directory containing go.mod), using the standard library's source
// importer for stdlib dependencies — the module itself has none. It is
// the loader both cmd/slvet and the analyzer tests run on.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadTree(root, modPath)
}

// LoadTree is LoadModule with an explicit module path, so analyzer
// golden tests can load a testdata tree as a synthetic module.
func LoadTree(root, modPath string) (*Module, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string
	}
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		names, err := goFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		p := &rawPkg{path: path, dir: dir}
		depSet := make(map[string]bool)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					depSet[ip] = true
				}
			}
		}
		for d := range depSet {
			p.deps = append(p.deps, d)
		}
		sort.Strings(p.deps)
		raw[p.path] = p
	}

	// Topological order over in-module imports.
	order := make([]string, 0, len(raw))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, d := range raw[path].deps {
			if _, ok := raw[d]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source under %s", path, d, root)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order. Stdlib imports resolve through the
	// source importer (cgo off, so net and friends check as pure Go);
	// in-module imports resolve against the packages already checked.
	build.Default.CgoEnabled = false
	mi := &moduleImporter{
		stdlib: importer.ForCompiler(fset, "source", nil),
		local:  make(map[string]*types.Package),
	}
	mod := &Module{Fset: fset, Path: modPath}
	for _, path := range order {
		p := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		cfg := &types.Config{Importer: mi}
		tpkg, err := cfg.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		mi.local[path] = tpkg
		mod.Pkgs = append(mod.Pkgs, &Package{
			Path:  path,
			Dir:   p.dir,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return mod, nil
}

// moduleImporter resolves in-module packages from the already-checked
// set and everything else from the standard library's source importer.
type moduleImporter struct {
	stdlib types.Importer
	local  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.stdlib.Import(path)
}

// packageDirs walks root collecting directories that may hold Go
// packages, skipping testdata trees, hidden directories, and git
// internals — the same pruning the go tool applies.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// goFiles lists the buildable non-test Go files of dir.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
