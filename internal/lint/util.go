package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// funcIndex maps function objects to their declarations across the
// whole module, so analyzers can chase calls transitively.
type funcIndex struct {
	decls map[*types.Func]*ast.FuncDecl
	pkgs  map[*types.Func]*Package
}

func buildFuncIndex(pkgs []*Package) *funcIndex {
	idx := &funcIndex{
		decls: make(map[*types.Func]*ast.FuncDecl),
		pkgs:  make(map[*types.Func]*Package),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx.decls[obj] = fd
					idx.pkgs[obj] = pkg
				}
			}
		}
	}
	return idx
}

// calleeOf resolves the static callee of a call expression, nil for
// builtins, function values, and interface calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// exprText renders an expression as source text — the cheap structural
// identity used to match append targets and sort arguments.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// namedOf unwraps pointers and aliases down to a named type, nil when
// the type has no name.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isPointerShaped reports whether values of t fit in an interface word
// without heap allocation: pointers, channels, maps, funcs, and unsafe
// pointers.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// mentionsCapLenOrNil reports whether the expression contains a cap()
// or len() call or a nil comparison — the shape of a warm-up guard
// ("grow only when the buffer is too small / not yet built").
func mentionsCapLenOrNil(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if _, isNil := info.Uses[n].(*types.Nil); isNil {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminatesCold reports whether the block ends in a statement that
// leaves the hot path: a panic, or a return whose final result is a
// non-nil value in error position. Allocations on such branches (error
// construction, panic messages) never run at steady state.
func terminatesCold(info *types.Info, fnType *ast.FuncType, block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		if !lastResultIsError(info, fnType) {
			return false
		}
		return !isNilIdent(info, last.Results[len(last.Results)-1])
	}
	return false
}

// lastResultIsError reports whether the function's final result type is
// the error interface.
func lastResultIsError(info *types.Info, fnType *ast.FuncType) bool {
	if fnType.Results == nil || len(fnType.Results.List) == 0 {
		return false
	}
	fields := fnType.Results.List
	lastField := fields[len(fields)-1]
	t := info.TypeOf(lastField.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// hasDirective reports whether the declaration's doc comment contains
// the given //-directive (e.g. "//slmob:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// receiverNamed returns the named type of a method's receiver, nil for
// plain functions.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}
