package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces the PR-4 zero-allocation contract structurally.
// Functions annotated with
//
//	//slmob:hotpath
//
// in their doc comment run once per snapshot (or per sample) at city
// scale; the AllocsPerRun pins prove they allocate nothing at steady
// state, and this analyzer front-runs the pins at compile review time
// by flagging the constructs that put allocations back:
//
//   - make(...) and new(...)
//   - map composite literals
//   - growth appends — append whose result lands in a different
//     variable than its source (buf = append(buf, x) amortises into
//     pooled capacity and is allowed; y = append(x, ...) copies)
//   - implicit interface boxing of non-pointer-shaped values (call
//     arguments, assignments, returns, channel sends)
//
// Two branch shapes are exempt because they never run at steady state:
// warm-up guards (an if whose condition checks cap(), len(), or nil —
// the grow-on-demand idiom) and cold exits (a branch ending in panic or
// in a return of a non-nil error).
func Hotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc: "forbid make/new, map literals, growth appends, and interface boxing in //slmob:hotpath " +
			"functions outside warm-up guards and cold error branches",
		Run: runHotpath,
	}
}

const hotpathDirective = "//slmob:hotpath"

func runHotpath(pass *Pass) error {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
					continue
				}
				checkHotpathFunc(pass, pkg, fd)
			}
		}
	}
	return nil
}

func checkHotpathFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info

	// Collect the excluded regions: warm-up guard bodies and cold
	// branches.
	type region struct{ lo, hi int }
	var skip []region
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if mentionsCapLenOrNil(info, ifs.Cond) || terminatesCold(info, fd.Type, ifs.Body) {
			skip = append(skip, region{int(ifs.Body.Pos()), int(ifs.Body.End())})
		}
		return true
	})
	excluded := func(n ast.Node) bool {
		p := int(n.Pos())
		for _, r := range skip {
			if p >= r.lo && p <= r.hi {
				return true
			}
		}
		return false
	}

	// aliases maps "b" -> "g.buckets[k]" for locals introduced by
	// b := g.buckets[k], so the amortised append-back idiom
	// g.buckets[k] = append(b, e) is recognised as self-append.
	aliases := make(map[string]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			aliases[id.Name] = exprText(pass.Fset, assign.Rhs[i])
		}
		return true
	})
	sameSlice := func(dst, src ast.Expr) bool {
		d, s := exprText(pass.Fset, dst), exprText(pass.Fset, src)
		if d == s {
			return true
		}
		if a, ok := aliases[s]; ok && a == d {
			return true
		}
		if a, ok := aliases[d]; ok && a == s {
			return true
		}
		return false
	}

	report := func(n ast.Node, format string, args ...any) {
		if !excluded(n) {
			prefixed := append([]any{fd.Name.Name}, args...)
			pass.Report(n.Pos(), "hot path %s "+format, prefixed...)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						report(n, "allocates with make; pool the buffer in the workspace and grow under a cap() guard")
					case "new":
						report(n, "allocates with new; reuse pooled state")
					}
				}
			}
			checkCallBoxing(pass, info, fd, n, report)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n, "allocates a map literal; preallocate in the constructor and clear() instead")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if !sameSlice(n.Lhs[i], call.Args[0]) {
					report(n, "grows %s from %s with append; append back into the same pooled slice",
						exprText(pass.Fset, n.Lhs[i]), exprText(pass.Fset, call.Args[0]))
				}
			}
			checkAssignBoxing(pass, info, fd, n, report)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, info, fd, n, report)
		case *ast.SendStmt:
			checkBoxed(info, n.Chan, n.Value, n, report)
		}
		return true
	})
}

// boxes reports whether assigning src (a syntactic expression) to a
// destination of type dst implicitly boxes a heap-allocating value into
// an interface.
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return false
	}
	st := info.TypeOf(src)
	if st == nil || types.IsInterface(st.Underlying()) {
		return false
	}
	if isNilIdent(info, src) || isPointerShaped(st) {
		return false
	}
	// Untyped constants box, but small-int and zero-size values are
	// interned by the runtime only sometimes; stay strict and flag them.
	return true
}

func reportBox(report func(n ast.Node, format string, args ...any), info *types.Info, n ast.Node, src ast.Expr, dst types.Type) {
	report(n, "boxes %s into %s, allocating per call; keep hot-path data concrete or pointer-shaped",
		info.TypeOf(src).String(), dst.String())
}

func checkCallBoxing(pass *Pass, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, report func(n ast.Node, format string, args ...any)) {
	callee := calleeOf(info, call)
	var sig *types.Signature
	if callee != nil {
		sig, _ = callee.Type().(*types.Signature)
	} else if t := info.TypeOf(call.Fun); t != nil {
		sig, _ = t.Underlying().(*types.Signature)
	}
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			reportBox(report, info, call, arg, pt)
		}
	}
}

func checkAssignBoxing(pass *Pass, info *types.Info, fd *ast.FuncDecl, assign *ast.AssignStmt, report func(n ast.Node, format string, args ...any)) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		checkBoxed(info, assign.Lhs[i], rhs, assign, report)
	}
}

func checkBoxed(info *types.Info, dst ast.Expr, src ast.Expr, at ast.Node, report func(n ast.Node, format string, args ...any)) {
	if dt := info.TypeOf(dst); dt != nil && boxes(info, dt, src) {
		reportBox(report, info, at, src, dt)
	}
}

func checkReturnBoxing(pass *Pass, info *types.Info, fd *ast.FuncDecl, ret *ast.ReturnStmt, report func(n ast.Node, format string, args ...any)) {
	if fd.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range fd.Type.Results.List {
		t := info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return
	}
	for i, r := range ret.Results {
		if boxes(info, resultTypes[i], r) {
			reportBox(report, info, ret, r, resultTypes[i])
		}
	}
}
