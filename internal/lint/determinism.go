package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the reproducibility contract of the analysis
// core: live ≡ replay digests, merge-of-windows ≡ whole-trace, and
// byte-reproducible checkpoints all die silently the moment wall-clock
// time, the global math/rand source, or Go's randomised map iteration
// order reaches an output path. The analyzer covers the deterministic
// packages (core, snap, stats) wholesale, plus every function anywhere
// in the module whose name marks it as part of an encode/merge/
// checkpoint call graph.
//
// Rules:
//
//   - no time.Now: clocks are injected (the world's warped clock, trace
//     timestamps), never sampled.
//   - no global math/rand: stochastic code draws from internal/rng
//     streams, which are seeded, splittable, and serializable.
//   - no map iteration into an ordered sink: ranging over a map while
//     appending to an outer slice (unless the slice is sorted
//     afterwards in the same function), writing through an io.Writer /
//     *Writer-style encoder, or sending on a channel produces
//     different bytes on every run.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbid time.Now, global math/rand, and unsorted map iteration into ordered sinks " +
			"in the deterministic packages (core, snap, stats) and all encode/merge/checkpoint call graphs",
		Run: runDeterminism,
	}
}

// deterministicPkgs are covered in full.
var deterministicPkgs = map[string]bool{"core": true, "snap": true, "stats": true}

// deterministicFuncPrefixes mark encode/merge/checkpoint call-graph
// members in any package (matched case-insensitively).
var deterministicFuncPrefixes = []string{
	"encode", "decode", "merge", "checkpoint", "restore", "snapshotstate", "restorestate",
}

func inDeterministicScope(pkg *Package, fd *ast.FuncDecl) bool {
	if deterministicPkgs[pkg.Types.Name()] {
		return true
	}
	name := strings.ToLower(fd.Name.Name)
	for _, p := range deterministicFuncPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) error {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !inDeterministicScope(pkg, fd) {
					continue
				}
				checkDeterministicFunc(pass, pkg, fd)
			}
		}
	}
	return nil
}

func checkDeterministicFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info
	closures := localClosures(info, fd)
	sorts := sortCalls(pass.Fset, info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkClockAndRand(pass, info, fd, n)
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, pkg, fd, n, closures, sorts)
				}
			}
		}
		return true
	})
}

// checkClockAndRand flags time.Now and global math/rand selectors.
func checkClockAndRand(pass *Pass, info *types.Info, fd *ast.FuncDecl, sel *ast.SelectorExpr) {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := info.Uses[base].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Report(sel.Pos(), "%s samples the wall clock with time.Now; deterministic code takes the clock as input", fd.Name.Name)
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(sel.Sel.Name, "New") {
			pass.Report(sel.Pos(), "%s uses global math/rand.%s; draw from a seeded internal/rng stream instead", fd.Name.Name, sel.Sel.Name)
		}
	}
}

// sortCall is one sort.* / slices.Sort* call with the source text of
// its arguments — the "intervening sort" that legitimises collecting
// map keys into a slice.
type sortCall struct {
	pos  token.Pos
	args []string
}

func sortCalls(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl) []sortCall {
	var out []sortCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[base].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
			sc := sortCall{pos: call.Pos()}
			for _, a := range call.Args {
				sc.args = append(sc.args, exprText(fset, a))
			}
			out = append(out, sc)
		}
		return true
	})
	return out
}

// localClosures maps local variables to the func literals assigned to
// them, so a call through a closure can be checked against the
// closure's body.
func localClosures(info *types.Info, fd *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = lit
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// rootObject returns the object of the base identifier of an lvalue
// chain: w.sorted -> w, *tt.out -> tt, diffs -> diffs.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// writerLike reports whether a type is an ordered byte/record sink: a
// named type ending in "Writer" (snap.Writer and friends) or an
// io.Writer implementer (bytes.Buffer, bufio.Writer, ...).
func writerLike(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	if strings.HasSuffix(n.Obj().Name(), "Writer") {
		return true
	}
	return implementsIOWriter(types.NewPointer(n)) || implementsIOWriter(n)
}

// ioWriterType is a structural copy of io.Writer used for Implements
// checks without importing io's type-checked package.
var ioWriterType = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil)

func implementsIOWriter(t types.Type) bool {
	return types.Implements(t, ioWriterType.Complete())
}

// checkMapRange flags ordered-sink writes inside a map-range body.
func checkMapRange(pass *Pass, pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt,
	closures map[types.Object]*ast.FuncLit, sorts []sortCall) {
	info := pkg.Info

	// Objects derived from the iteration key or value: writes keyed by
	// them land in per-entry slots, which is order-insensitive.
	derived := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				derived[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				derived[obj] = true
			}
		}
	}
	if rng.Key != nil {
		addIdent(rng.Key)
	}
	if rng.Value != nil {
		addIdent(rng.Value)
	}
	// Propagate: a NEW local defined from a derived expression is derived
	// (dst := out.Contacts[r]). Plain assignments must not propagate — in
	// `out = append(out, k)` the rhs mentions the key but out is outer
	// state, and that append is exactly what the rule exists to catch.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if exprMentions(info, rhs, derived) {
				addIdent(assign.Lhs[i])
			}
		}
		return true
	})

	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	}
	sortedAfter := func(target ast.Expr) bool {
		text := exprText(pass.Fset, target)
		for _, sc := range sorts {
			if sc.pos <= rng.End() {
				continue
			}
			for _, a := range sc.args {
				if a == text || strings.HasPrefix(a, text+"[") {
					return true
				}
			}
		}
		return false
	}

	// ordered inspects one body for ordered-sink writes; used for the
	// range body itself and, once, for any local closure it calls.
	var ordered func(body ast.Node, report bool, at token.Pos) bool
	ordered = func(body ast.Node, report bool, at token.Pos) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok || id.Name != "append" {
						continue
					}
					if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
						continue
					}
					if i >= len(n.Lhs) || len(call.Args) == 0 {
						continue
					}
					target := n.Lhs[i]
					obj := rootObject(info, target)
					if !declaredOutside(obj) || derived[obj] || sortedAfter(target) {
						continue
					}
					found = true
					if report {
						pass.Report(n.Pos(), "%s appends to %s in map iteration order; collect the keys and sort them first", fd.Name.Name, exprText(pass.Fset, target))
					}
				}
			case *ast.CallExpr:
				// Method call on an ordered sink (w.F64(v), buf.WriteByte).
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if recvT := info.TypeOf(sel.X); recvT != nil && writerLike(recvT) {
						obj := rootObject(info, sel.X)
						if declaredOutside(obj) && !derived[obj] {
							found = true
							if report {
								pass.Report(n.Pos(), "%s writes to %s in map iteration order; sort the keys before encoding", fd.Name.Name, exprText(pass.Fset, sel.X))
							}
						}
					}
				}
				// Call through a local closure that itself writes an
				// ordered sink (addf-style helpers).
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if lit, ok := closures[obj]; ok && declaredOutside(obj) {
							if ordered(lit.Body, false, n.Pos()) {
								found = true
								if report {
									pass.Report(n.Pos(), "%s calls %s in map iteration order, and %s writes to state outside the loop; sort the keys first", fd.Name.Name, id.Name, id.Name)
								}
							}
						}
					}
				}
				// Plain function call handing a writer-like argument on.
				for _, a := range n.Args {
					if at := info.TypeOf(a); at != nil && writerLike(at) {
						obj := rootObject(info, a)
						if declaredOutside(obj) && !derived[obj] {
							found = true
							if report {
								pass.Report(n.Pos(), "%s encodes through %s in map iteration order; sort the keys before encoding", fd.Name.Name, exprText(pass.Fset, a))
							}
						}
					}
				}
			case *ast.SendStmt:
				obj := rootObject(info, n.Chan)
				if declaredOutside(obj) && !derived[obj] {
					found = true
					if report {
						pass.Report(n.Pos(), "%s sends on %s in map iteration order", fd.Name.Name, exprText(pass.Fset, n.Chan))
					}
				}
			}
			return true
		})
		return found
	}
	ordered(rng.Body, true, rng.Pos())
}

// exprMentions reports whether e references any object in set.
func exprMentions(info *types.Info, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
