package lint

import (
	"go/ast"
	"go/types"
)

// RngDiscipline enforces the ownership rules of rng.Source, the
// deterministic xoshiro256** stream the whole estate draws from.
//
// Two mistakes silently destroy reproducibility:
//
//   - Copying a Source by value. The copy and the original then emit
//     the same sequence, so two "independent" consumers draw correlated
//     values — and a copy advanced in one place leaves the original
//     behind, shifting every later draw. Streams must be carried as
//     *Source (or forked explicitly with Split/SplitIndexed).
//
//   - Sharing a *Source across goroutines. Uint64 mutates the four-word
//     state unsynchronised; concurrent draws race, and even "benign"
//     interleavings make the draw order schedule-dependent. A goroutine
//     must own its stream: receive it as a go-call argument (ownership
//     transfer) or fork its own, never capture a shared pointer.
//
// A fanout pool's Run is the same hazard in worker-pool clothing: the
// function literal handed to it executes on several workers at once, so
// the capture rules of go statements apply to it too. The sanctioned
// worker-pool handoff is per-index ownership — streams held in a slice
// indexed by the closure's own index parameter, so each of Run's n
// indices draws from exactly one stream and the barrier hands them all
// back to the caller.
//
// State() is the sanctioned by-value form: it returns the raw [4]uint64
// capsule for checkpoints and cross-server handoffs, and Restore is the
// only way back in.
func RngDiscipline() *Analyzer {
	return &Analyzer{
		Name: "rng",
		Doc: "forbid by-value copies of rng.Source and capture of a shared *rng.Source " +
			"inside go-statement closures and fanout pool workers",
		Run: runRngDiscipline,
	}
}

func runRngDiscipline(pass *Pass) error {
	src := findRngSource(pass.Pkgs)
	if src == nil {
		return nil
	}

	isSourceValue := func(t types.Type) bool {
		n, _ := types.Unalias(t).(*types.Named)
		return n != nil && n.Obj() == src.Obj()
	}
	isSourcePtr := func(t types.Type) bool {
		p, ok := types.Unalias(t).(*types.Pointer)
		return ok && isSourceValue(p.Elem())
	}

	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		inRngPkg := pkg.Types == src.Obj().Pkg()
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					// x := *src, x = *src — a dereference copy forks the
					// stream state. Also v := otherValue where the static
					// type is a bare Source.
					for i, rhs := range n.Rhs {
						if i >= len(n.Lhs) {
							break
						}
						checkSourceCopy(pass, info, n.Lhs[i], rhs, isSourceValue, inRngPkg)
					}
				case *ast.ValueSpec:
					for _, v := range n.Values {
						checkSourceCopy(pass, info, nil, v, isSourceValue, inRngPkg)
					}
				case *ast.FuncDecl:
					checkSourceParams(pass, info, n.Type, isSourceValue, inRngPkg)
				case *ast.FuncLit:
					checkSourceParams(pass, info, n.Type, isSourceValue, inRngPkg)
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if t := info.TypeOf(field.Type); t != nil && isSourceValue(t) && !inRngPkg {
							pass.Report(field.Pos(), "struct field embeds rng.Source by value; hold *rng.Source "+
								"(or the State() capsule) so the stream has one owner")
						}
					}
				case *ast.CallExpr:
					checkSourceArgs(pass, info, n, isSourceValue, inRngPkg)
					checkPoolRunCapture(pass, info, n, isSourcePtr, isSourceValue)
				case *ast.GoStmt:
					checkGoroutineCapture(pass, info, n, isSourcePtr, isSourceValue)
				}
				return true
			})
		}
	}
	return nil
}

// findRngSource locates the named type Source declared in a package
// named rng anywhere in the module.
func findRngSource(pkgs []*Package) *types.Named {
	for _, pkg := range pkgs {
		if pkg.Types.Name() != "rng" {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("Source").(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				return n
			}
		}
	}
	return nil
}

// checkSourceCopy flags an assignment or initialisation whose
// right-hand side produces a by-value Source from existing state: a
// pointer dereference or a read of another Source variable. Composite
// literals and calls are construction, not copying — the rng package
// itself builds Sources that way.
func checkSourceCopy(pass *Pass, info *types.Info, dst, src ast.Expr, isSourceValue func(types.Type) bool, inRngPkg bool) {
	if inRngPkg {
		return
	}
	t := info.TypeOf(src)
	if t == nil || !isSourceValue(t) {
		return
	}
	switch ast.Unparen(src).(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return
	}
	// A blank assignment discards the value — no usable copy is made.
	if id, ok := ast.Unparen(dst).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	pass.Report(src.Pos(), "copies rng.Source by value; the copy and the original emit the same stream — "+
		"pass *rng.Source, or fork with Split/SplitIndexed")
}

// checkSourceParams flags function parameters and results that take a
// bare Source — every call site would copy the stream.
func checkSourceParams(pass *Pass, info *types.Info, ft *ast.FuncType, isSourceValue func(types.Type) bool, inRngPkg bool) {
	if inRngPkg {
		return
	}
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if t := info.TypeOf(field.Type); t != nil && isSourceValue(t) {
				pass.Report(field.Pos(), "%s passes rng.Source by value, copying the stream per call; "+
					"take *rng.Source instead", what)
			}
		}
	}
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// checkSourceArgs flags call arguments that pass a Source by value.
func checkSourceArgs(pass *Pass, info *types.Info, call *ast.CallExpr, isSourceValue func(types.Type) bool, inRngPkg bool) {
	if inRngPkg {
		return
	}
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t == nil || !isSourceValue(t) {
			continue
		}
		switch ast.Unparen(arg).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			continue
		}
		pass.Report(arg.Pos(), "passes rng.Source by value into a call; hand over *rng.Source so "+
			"draws advance the one true stream")
	}
}

// checkGoroutineCapture flags go-statement closures that capture a
// *Source (or a Source variable) declared outside the closure.
// Ownership transfer — passing the source as an argument of the go
// call — is the sanctioned handoff and is not flagged.
func checkGoroutineCapture(pass *Pass, info *types.Info, g *ast.GoStmt, isSourcePtr, isSourceValue func(types.Type) bool) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	owned := closureOwned(info, lit)
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || owned[obj] || seen[obj] {
			return true
		}
		t := obj.Type()
		if isSourcePtr(t) || isSourceValue(t) {
			seen[obj] = true
			pass.Report(id.Pos(), "goroutine captures shared rng stream %s; draws race and the order becomes "+
				"schedule-dependent — pass it as a go-call argument or fork with SplitIndexed", obj.Name())
		}
		return true
	})
}

// closureOwned collects the objects a function literal declares itself
// (parameters included) — streams the closure owns outright.
func closureOwned(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				owned[obj] = true
			}
		}
		return true
	})
	return owned
}

// isFanoutType reports whether t is (a pointer to) a named type
// declared in a package named fanout — matched by package name, like
// findRngSource, so the golden fixtures can supply a stand-in.
func isFanoutType(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "fanout"
}

// checkPoolRunCapture treats the function literal handed to a fanout
// pool's Run like a go-statement body: the pool executes it on several
// workers at once, so drawing from a stream declared outside the
// closure races exactly as a goroutine capture does. Per-index
// ownership is the sanctioned worker-pool handoff: a stream slice
// indexed by the closure's own index parameter gives each of Run's n
// indices exactly one stream, and Run's barrier hands them all back —
// so srcs[i] passes, while a captured shared stream or a fixed-index
// pick (srcs[0], shared by every worker) is flagged.
func checkPoolRunCapture(pass *Pass, info *types.Info, call *ast.CallExpr, isSourcePtr, isSourceValue func(types.Type) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return
	}
	if t := info.TypeOf(sel.X); t == nil || !isFanoutType(t) {
		return
	}
	var lit *ast.FuncLit
	for _, arg := range call.Args {
		if l, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lit = l
			break
		}
	}
	if lit == nil {
		return
	}
	// The closure's own parameters: Run feeds each index to exactly one
	// worker, so indexing by a parameter selects an owned stream.
	params := make(map[types.Object]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	owned := closureOwned(info, lit)
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			t := info.TypeOf(n)
			if t == nil || !(isSourcePtr(t) || isSourceValue(t)) {
				return true
			}
			if id, ok := ast.Unparen(n.Index).(*ast.Ident); ok && params[info.Uses[id]] {
				return false // srcs[i]: this worker's own stream
			}
			pass.Report(n.Pos(), "fanout worker selects a stream not indexed by the closure's own index "+
				"parameter; every worker shares it — hold one stream per index and select with the parameter")
			return false
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Var)
			if !ok || owned[obj] || seen[obj] {
				return true
			}
			if t := obj.Type(); isSourcePtr(t) || isSourceValue(t) {
				seen[obj] = true
				pass.Report(n.Pos(), "fanout worker closure captures shared rng stream %s; pool workers race on it — "+
					"index a per-worker stream slice with the closure's index parameter or fork with SplitIndexed", obj.Name())
			}
		}
		return true
	})
}
