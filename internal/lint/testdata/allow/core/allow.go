// Package core exercises the //lint:allow escape hatch: justified
// suppressions vanish, and malformed or stale ones are findings in
// their own right.
package core

import "time"

// checkpointStamp carries a justified suppression — no finding
// survives, and the allow is consumed so it is not stale.
func checkpointStamp() int64 {
	return time.Now().UnixNano() //lint:allow determinism fixture exercising a justified suppression
}

//lint:allow bogusrule this rule does not exist // want `unknown rule "bogusrule"`
func unknownRule() {}

//lint:allow determinism // want "has no reason"
func noReason() {}

//lint:allow hotpath nothing below ever triggers this rule // want "stale .*hotpath suppresses nothing"
func stale() {}
