// Package fanout is a golden stand-in for internal/fanout: the rng
// discipline analyzer keys on the Run method of any type declared in a
// package with this name.
package fanout

// Pool runs fn(0..n-1) across its workers; Run is a barrier.
type Pool struct{ workers int }

// NewPool builds a pool.
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// Run invokes fn once per index and returns when all have completed.
func (p *Pool) Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
