// Package rng is a golden stand-in for internal/rng: the discipline
// analyzer keys on the named type Source in a package with this name.
package rng

// Source is a deterministic stream; all methods take the pointer.
type Source struct{ s [4]uint64 }

// New builds a seeded stream. Construction inside the rng package is
// exempt from the copy rules.
func New(seed uint64) *Source {
	var src Source
	src.s[0] = seed
	return &src
}

func (s *Source) Uint64() uint64 {
	s.s[0]++
	return s.s[0]
}

// Split forks an independent stream — the sanctioned way to hand
// randomness to another owner.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// State returns the raw capsule for checkpoints.
func (s *Source) State() [4]uint64 { return s.s }

// Restore reseats the stream from a capsule.
func (s *Source) Restore(state [4]uint64) { s.s = state }
