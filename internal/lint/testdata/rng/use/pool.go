// Worker-pool ownership: a fanout pool's Run executes its closure on
// several workers at once, so the go-statement capture rules apply —
// with per-index stream slices as the sanctioned handoff.
package use

import (
	"golden/fanout"
	"golden/rng"
)

func poolSharedCapture(p *fanout.Pool) {
	p.Run(4, func(i int) {
		_ = stream.Uint64() // want "fanout worker closure captures shared rng stream"
	})
}

// poolPerIndexOwnership is the sanctioned pattern: Run hands each index
// to exactly one worker, so srcs[i] has one owner per invocation and
// the barrier returns the whole slice to the caller.
func poolPerIndexOwnership(p *fanout.Pool, srcs []*rng.Source) {
	p.Run(len(srcs), func(i int) {
		_ = srcs[i].Uint64()
	})
}

func poolFixedIndex(p *fanout.Pool, srcs []*rng.Source) {
	p.Run(len(srcs), func(i int) {
		_ = srcs[0].Uint64() // want "not indexed by the closure's own index"
	})
}

// poolLocalStream forks inside the closure from a per-index seed — the
// closure owns what it declares.
func poolLocalStream(p *fanout.Pool) {
	p.Run(2, func(i int) {
		local := rng.New(uint64(i))
		_ = local.Uint64()
	})
}
