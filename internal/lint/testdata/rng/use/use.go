// Package use exercises the rng-discipline rules from outside the rng
// package.
package use

import "golden/rng"

var stream = rng.New(1)

func derefCopy() {
	local := *stream // want "copies rng.Source by value"
	_ = local
}

func valueParam(src rng.Source) uint64 { // want "parameter passes rng.Source by value"
	return 0
}

func valueResult() rng.Source // want "result passes rng.Source by value"

type holder struct {
	src rng.Source // want "struct field embeds rng.Source by value"
}

type pointerHolder struct {
	src *rng.Source // fine: one owner
}

func passesByValue() {
	valueParam(*stream) // want "passes rng.Source by value into a call"
}

func capturesShared(done chan struct{}) {
	go func() { // the capture is flagged where the stream is used
		_ = stream.Uint64() // want "goroutine captures shared rng stream"
		close(done)
	}()
}

func ownershipTransfer(done chan struct{}) {
	go func(r *rng.Source) {
		_ = r.Uint64()
		close(done)
	}(stream.Split())
}

// capsuleHandoff moves state by value the sanctioned way.
func capsuleHandoff() [4]uint64 {
	return stream.State()
}
