// Package hot is the golden fixture for the //slmob:hotpath
// zero-allocation analyzer.
package hot

import "fmt"

type workspace struct {
	buf     []int
	buckets map[int][]int
	sink    any
}

//slmob:hotpath
func (w *workspace) step(x int) {
	// Warm-up guard: grows only until capacity sticks. Exempt.
	if cap(w.buf) < 16 {
		w.buf = make([]int, 0, 16)
	}
	// Self-append amortises into pooled capacity. Allowed.
	w.buf = append(w.buf, x)

	tmp := append(w.buf, x) // want "grows tmp from w.buf with append"
	_ = tmp

	q := make([]int, 4) // want "allocates with make"
	_ = q

	p := new(int) // want "allocates with new"
	_ = p

	mm := map[int]int{} // want "allocates a map literal"
	_ = mm

	w.sink = x // want "boxes int into any"
}

// bucketInsert uses the alias idiom: read the slot into a local, append
// back into the same slot. Allowed.
//
//slmob:hotpath
func (w *workspace) bucketInsert(k, v int) {
	if w.buckets == nil {
		w.buckets = make(map[int][]int)
	}
	b := w.buckets[k]
	w.buckets[k] = append(b, v)
}

// cold has an error exit; allocations on the branch that leaves the hot
// path never run at steady state. Exempt.
//
//slmob:hotpath
func (w *workspace) cold(x int) error {
	if x < 0 {
		return fmt.Errorf("negative sample %d", x)
	}
	w.buf = append(w.buf, x)
	return nil
}

//slmob:hotpath
func boxedCall(x int) {
	fmt.Sprint(x) // want "boxes int into"
}

//slmob:hotpath
func boxedReturn(x int) any {
	return x // want "boxes int into any"
}

//slmob:hotpath
func pointerShapedOK(w *workspace) any {
	// Pointers fit the interface word without allocating.
	return w
}

// unannotated is free to allocate.
func unannotated() []int {
	return make([]int, 8)
}
