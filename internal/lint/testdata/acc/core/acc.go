// Package core is the golden fixture for the accumulator-contract
// analyzer: it declares the Accumulator interface the way the real
// internal/core does, plus implementations that honour and violate the
// Reset/Merge/encode-decode field contract.
package core

// Accumulator mirrors the real contract: windowed state that resets on
// rollover.
type Accumulator interface{ Reset() }

var (
	_ Accumulator = (*Good)(nil)
	_ Accumulator = (*Leaky)(nil)
	_ Accumulator = (*Scratch)(nil)
	_ Accumulator = (*Allowed)(nil)
	_ Accumulator = (*Half)(nil)
)

// Good handles every field everywhere: directly, transitively, and via
// the decode half of the pair.
type Good struct {
	n     int64
	total float64
}

func (g *Good) Reset() {
	*g = Good{}
}

func (g *Good) Merge(o *Good) {
	g.n += o.n
	g.addTotal(o.total)
}

func (g *Good) addTotal(v float64) { g.total += v }

func encodeGood(g *Good) []float64 {
	// n is reconstructed by the decoder — pair coverage is the union.
	return []float64{g.total}
}

func decodeGood(vals []float64) *Good {
	g := &Good{n: int64(len(vals))}
	for _, v := range vals {
		g.addTotal(v)
	}
	return g
}

// Leaky forgets its fields in different places.
type Leaky struct {
	count int64
	sum   float64 // want "not handled by Merge" "not handled by the encode/decode pair"
	peak  float64 // want "not handled by Reset"
}

func (l *Leaky) Reset() {
	l.count = 0
	l.sum = 0
	// peak survives the window rollover: stale state.
}

func (l *Leaky) Merge(o *Leaky) {
	l.count += o.count
	// sum is dropped on merge.
	if o.peak > l.peak {
		l.peak = o.peak
	}
}

func encodeLeaky(l *Leaky) []float64 {
	return []float64{float64(l.count), l.peak}
}

func decodeLeaky(vals []float64) *Leaky {
	return &Leaky{count: int64(vals[0]), peak: vals[1]}
}

// Scratch implements Accumulator but neither merges nor serializes —
// outside the contract, never flagged.
type Scratch struct {
	cells []int
}

func (s *Scratch) Reset() { s.cells = s.cells[:0] }

// Allowed exempts a derived cache at the field declaration.
type Allowed struct {
	n      int64
	cached float64 //lint:allow acc derived cache rebuilt on demand, never merged or persisted
}

func (a *Allowed) Reset()           { a.n = 0; a.cached = 0 }
func (a *Allowed) Merge(o *Allowed) { a.n += o.n }

func encodeAllowed(a *Allowed) []float64 { return []float64{float64(a.n)} }
func decodeAllowed(vals []float64) *Allowed {
	return &Allowed{n: int64(vals[0])}
}

// Half has an encoder but no decoder: checkpoints cannot round-trip.
type Half struct { // want "has encodeHalf but no matching decoder"
	n int64
}

func (h *Half) Reset() { h.n = 0 }

func encodeHalf(h *Half) []int64 { return []int64{h.n} }
