// Package core is a golden fixture: the determinism analyzer covers a
// package with this name wholesale.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Writer is a stand-in for snap.Writer — an ordered record sink.
type Writer struct{ buf []byte }

func (w *Writer) F64(v float64) { w.buf = append(w.buf, byte(v)) }
func (w *Writer) I64(v int64)   { w.buf = append(w.buf, byte(v)) }

func clockSample() int64 {
	return time.Now().UnixNano() // want "samples the wall clock with time.Now"
}

func globalRand() float64 {
	return rand.Float64() // want `uses global math/rand\.Float64`
}

// constructedRand builds a private stream — constructors are fine, the
// global draw below is not.
func constructedRand() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

// encodeUnsorted writes map entries straight into the sink: different
// bytes on every run.
func encodeUnsorted(w *Writer, counts map[float64]int64) {
	for v, n := range counts {
		w.F64(v) // want "writes to w in map iteration order"
		w.I64(n) // want "writes to w in map iteration order"
	}
}

// encodeSorted collects and sorts keys first — the sanctioned shape.
func encodeSorted(w *Writer, counts map[float64]int64) {
	keys := make([]float64, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Float64s(keys)
	for _, v := range keys {
		w.F64(v)
		w.I64(counts[v])
	}
}

// collectUnsorted appends in map order with no sort afterwards.
func collectUnsorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "appends to out in map iteration order"
	}
	return out
}

// mergeCounts writes through per-key slots — order-insensitive, fine.
func mergeCounts(dst, src map[float64]int64) {
	for v, n := range src {
		dst[v] += n
	}
}

// perEntry mutates the value each key maps to — derived target, fine.
func perEntry(m map[int]*Writer) {
	for _, w := range m {
		w.I64(1)
	}
}

// viaClosure hides the ordered write behind a local helper.
func viaClosure(m map[int]int) []string {
	var diffs []string
	addf := func(s string) {
		diffs = append(diffs, s)
	}
	for range m {
		addf("x") // want "calls addf in map iteration order"
	}
	return diffs
}

// sendsOnChannel streams map entries — schedule-visible order.
func sendsOnChannel(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want "sends on ch in map iteration order"
	}
}
