// Package other is outside the deterministic package set: only
// functions whose names mark them as encode/merge/checkpoint call-graph
// members are covered.
package other

import "time"

// encodeRecords is covered by name prefix.
func encodeRecords(sink []int64, m map[int]int64) []int64 {
	for _, v := range m {
		sink = append(sink, v) // want "appends to sink in map iteration order"
	}
	_ = time.Now() // want "samples the wall clock"
	return sink
}

// helper is uncovered: same constructs, no findings.
func helper(sink []int64, m map[int]int64) []int64 {
	for _, v := range m {
		sink = append(sink, v)
	}
	_ = time.Now()
	return sink
}
