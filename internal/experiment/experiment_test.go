package experiment

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"slmob/internal/core"
)

// shortRuns simulates the three lands briefly; enough structure for the
// report and figure builders to operate on.
func shortRuns(t *testing.T) []*LandRun {
	t.Helper()
	runs, err := RunLands(context.Background(), 3, 2*3600, core.PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

// TestRunLandsHonoursCancellation: a cancelled context stops the
// streaming pipelines mid-run and surfaces ctx.Err().
func TestRunLandsHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLands(ctx, 3, 2*3600, core.PaperTau); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunLandsProducesAllLands(t *testing.T) {
	runs := shortRuns(t)
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	seen := map[string]bool{}
	for _, run := range runs {
		seen[run.Trace.Land] = true
		if run.Analysis == nil || run.Trace == nil {
			t.Fatal("incomplete run")
		}
		if run.Analysis.Summary.Unique == 0 {
			t.Errorf("%s: no users", run.Trace.Land)
		}
	}
	for _, name := range LandNames {
		if !seen[name] {
			t.Errorf("missing land %q", name)
		}
	}
}

func TestBuildReportStructure(t *testing.T) {
	runs := shortRuns(t)
	rep, err := BuildReport(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 50 {
		t.Errorf("rows = %d, expected the full experiment matrix", len(rep.Rows))
	}
	ids := map[string]bool{}
	for _, row := range rep.Rows {
		ids[row.ID] = true
		if row.Metric == "" || row.Land == "" {
			t.Errorf("incomplete row: %+v", row)
		}
		if !math.IsNaN(row.Paper) && math.IsNaN(row.Measured) {
			t.Errorf("row %s/%s has NaN measurement", row.ID, row.Metric)
		}
	}
	for _, want := range []string{"T1", "F1a", "F1b", "F1c", "F1d", "F1e", "F1f",
		"F2a", "F2b", "F2c", "F2d", "F2e", "F2f", "F3", "F4a", "F4c", "X1"} {
		if !ids[want] {
			t.Errorf("missing experiment id %s", want)
		}
	}
	// On a 2 h run many rows will miss (calibration targets are 24 h);
	// the structure is what is under test here, plus rendering.
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MEASURED") {
		t.Error("table header missing")
	}
	_ = rep.Failures() // must not panic
}

func TestBuildReportRejectsWrongRunCount(t *testing.T) {
	runs := shortRuns(t)
	if _, err := BuildReport(runs[:2]); err == nil {
		t.Error("two runs accepted")
	}
	// Duplicate lands: missing land must be detected.
	bad := []*LandRun{runs[0], runs[0], runs[0]}
	if _, err := BuildReport(bad); err == nil {
		t.Error("duplicate-land runs accepted")
	}
}

func TestFiguresAllPanels(t *testing.T) {
	runs := shortRuns(t)
	figs, err := Figures(runs)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f",
		"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f",
		"fig3", "fig4a", "fig4b", "fig4c"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("figures = %d, want %d", len(figs), len(wantIDs))
	}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d = %s, want %s", i, f.ID, wantIDs[i])
		}
		if len(f.Series) != 3 {
			t.Errorf("%s: %d series", f.ID, len(f.Series))
		}
	}
	if _, err := Figures(runs[:1]); err == nil {
		t.Error("single run accepted")
	}
}

func TestCachedDayRunsMemoises(t *testing.T) {
	if testing.Short() {
		t.Skip("24h run skipped in -short mode")
	}
	a, err := CachedDayRuns(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedDayRuns(1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("cache miss for identical seed")
	}
}
