package experiment

import (
	"fmt"

	"slmob/internal/core"
	"slmob/internal/stats"
)

// DiurnalFigures renders the time-of-day view of a windowed analysis —
// the structure a whole-trace ECDF hides: how population, contact
// behaviour, and churn vary over the measurement day. One curve per
// figure, X in hours since the epoch of the window grid (with hourly
// windows over a day-long trace, X is the hour of day).
//
// Windows with no snapshots contribute gaps (the curve skips them), so a
// partial-coverage trace plots honestly.
func DiurnalFigures(ws *core.WindowSeries) ([]*core.Figure, error) {
	if ws == nil || len(ws.Windows) == 0 {
		return nil, fmt.Errorf("experiment: empty window series")
	}
	hours := func(i int) float64 {
		return float64(ws.First+int64(i)) * float64(ws.Window) / 3600
	}
	curveOf := func(y func(*core.Analysis) (float64, bool)) stats.Curve {
		var c stats.Curve
		for i, w := range ws.Windows {
			if w.Summary.Snapshots == 0 {
				continue
			}
			v, ok := y(w)
			if !ok {
				continue
			}
			c = append(c, stats.Point{X: hours(i), Y: v})
		}
		return c
	}
	fig := func(id, title, ylabel string, y func(*core.Analysis) (float64, bool)) *core.Figure {
		return &core.Figure{
			ID:     id,
			Title:  title,
			XLabel: "Time of day (h)",
			YLabel: ylabel,
			Series: []core.Series{{Name: ws.Land, Curve: curveOf(y)}},
		}
	}

	figs := []*core.Figure{
		fig("figD1", "Diurnal population", "Mean concurrent users",
			func(a *core.Analysis) (float64, bool) { return a.Summary.MeanConcurrent, true }),
		fig("figD2", "Diurnal arrivals", "New users per window",
			func(a *core.Analysis) (float64, bool) { return float64(a.Summary.Unique), true }),
		fig("figD3", "Diurnal contact time, r=10m", "Median CT (s)",
			func(a *core.Analysis) (float64, bool) {
				cs, ok := a.Contacts[core.BluetoothRange]
				if !ok || cs.CT.N() == 0 {
					return 0, false
				}
				return cs.CT.Median(), true
			}),
		fig("figD4", "Diurnal contact pairs, r=10m", "New contact pairs per window",
			func(a *core.Analysis) (float64, bool) {
				cs, ok := a.Contacts[core.BluetoothRange]
				if !ok {
					return 0, false
				}
				return float64(cs.Pairs), true
			}),
		fig("figD5", "Diurnal sessions", "Sessions closed per window",
			func(a *core.Analysis) (float64, bool) {
				if a.Trips == nil {
					return 0, false
				}
				return float64(len(a.Trips.TravelTime)), true
			}),
	}
	return figs, nil
}
