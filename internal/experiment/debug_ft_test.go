package experiment

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"slmob/internal/core"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// TestDebugApfelFT is a diagnostic for calibrating Apfel Land's
// first-contact time; run manually with SLMOB_DEBUG=1.
func TestDebugApfelFT(t *testing.T) {
	if os.Getenv("SLMOB_DEBUG") == "" {
		t.Skip("diagnostic; set SLMOB_DEBUG=1 to run")
	}
	scn := world.ApfelLand(1)
	scn.Duration = 6 * 3600
	tr, err := world.Collect(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := core.ExtractContacts(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	ft := cs.FT.Values()
	sort.Float64s(ft)
	fmt.Printf("FT n=%d never=%d\n", len(ft), cs.NeverContacted)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fmt.Printf("  p%.0f = %v\n", p*100, ft[int(p*float64(len(ft)))])
	}
	// Where do users make their first contact? Track the first snapshot
	// with a neighbour per user and report the position.
	type firstInfo struct {
		t   int64
		pos [2]float64
	}
	firstSeen := map[trace.AvatarID]int64{}
	contact := map[trace.AvatarID]firstInfo{}
	for _, snap := range tr.Snapshots {
		for i, s := range snap.Samples {
			if _, ok := firstSeen[s.ID]; !ok {
				firstSeen[s.ID] = snap.T
			}
			if _, done := contact[s.ID]; done {
				continue
			}
			for j, o := range snap.Samples {
				if i != j && s.Pos.DistXY(o.Pos) <= 10 {
					contact[s.ID] = firstInfo{t: snap.T, pos: [2]float64{s.Pos.X, s.Pos.Y}}
					break
				}
			}
		}
	}
	// Histogram of first-contact positions on a 32m grid.
	grid := map[[2]int]int{}
	quick := 0
	for id, fi := range contact {
		if fi.t-firstSeen[id] <= 30 {
			quick++
			grid[[2]int{int(fi.pos[0]) / 32, int(fi.pos[1]) / 32}]++
		}
	}
	fmt.Printf("quick contacts (<=30s): %d of %d\n", quick, len(contact))
	type kv struct {
		k [2]int
		v int
	}
	var kvs []kv
	for k, v := range grid {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].v > kvs[j].v })
	for i, e := range kvs {
		if i >= 8 {
			break
		}
		fmt.Printf("  cell (%d,%d)x32m: %d quick first contacts\n", e.k[0], e.k[1], e.v)
	}
}
