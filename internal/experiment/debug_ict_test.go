package experiment

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"slmob/internal/core"
	"slmob/internal/world"
)

// TestDebugDanceICT is a diagnostic for calibrating Dance Island's
// inter-contact time; run manually with SLMOB_DEBUG=1.
func TestDebugDanceICT(t *testing.T) {
	if os.Getenv("SLMOB_DEBUG") == "" {
		t.Skip("diagnostic; set SLMOB_DEBUG=1 to run")
	}
	scn := world.DanceIsland(1)
	scn.Duration = 8 * 3600
	tr, err := world.Collect(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{10, 80} {
		cs, err := core.ExtractContacts(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		ict := cs.ICT.Values()
		sort.Float64s(ict)
		fmt.Printf("r=%g: ICT n=%d\n", r, len(ict))
		if len(ict) == 0 {
			continue
		}
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			fmt.Printf("  p%.0f = %v\n", p*100, ict[int(p*float64(len(ict)))])
		}
		// Bucket the gaps to find the short-gap mass.
		buckets := []float64{20, 60, 120, 300, 600, 1200, 1e9}
		counts := make([]int, len(buckets))
		for _, v := range ict {
			for i, b := range buckets {
				if v <= b {
					counts[i]++
					break
				}
			}
		}
		prev := 0.0
		for i, b := range buckets {
			fmt.Printf("  (%6.0f,%6.0f]: %d\n", prev, b, counts[i])
			prev = b
		}
	}
}
