// Package experiment maps every table and figure of the paper's evaluation
// to a runnable experiment: it simulates the three target lands, collects
// τ-sampled traces, runs the full analysis, renders figures, and reports
// paper-vs-measured values (see DESIGN.md §3 for the experiment index).
package experiment

import (
	"context"
	"fmt"
	"sync"

	"slmob/internal/core"
	"slmob/internal/fanout"
	"slmob/internal/graph"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// LandRun bundles one land's scenario, trace, and analysis.
type LandRun struct {
	Scenario world.Scenario
	Trace    *trace.Trace
	Analysis *core.Analysis
	// Workspace reports how the analyzer's incremental graph engine
	// served the run — snapshot diff rates, fallbacks, and metric-cache
	// hits — the numbers behind slbench's incremental block.
	Workspace graph.WorkspaceStats
}

// Lands are the three paper lands in the paper's presentation order.
var LandNames = []string{"Apfel Land", "Dance Island", "Isle of View"}

// teeSource passes snapshots through while appending each one to a
// materialised trace, so a single drain feeds both the incremental
// analyzer and the batch consumers (figure renderers, the DTN replayer).
type teeSource struct {
	src trace.Source
	tr  *trace.Trace
}

func (t *teeSource) Next(ctx context.Context) (trace.Snapshot, error) {
	snap, err := t.src.Next(ctx)
	if err != nil {
		return snap, err
	}
	if err := t.tr.Append(snap); err != nil {
		return trace.Snapshot{}, err
	}
	return snap, nil
}

// RunLand simulates and analyses a single paper land as one streaming
// pipeline: each snapshot is analysed incrementally as it is produced and
// tee'd into the materialised trace the figure renderers and the DTN
// replayer still need.
func RunLand(ctx context.Context, scn world.Scenario, tau int64) (*LandRun, error) {
	src, err := world.NewSource(scn, tau)
	if err != nil {
		return nil, err
	}
	analyzer, err := core.NewAnalyzer(scn.Land.Name, tau, core.Config{LandSize: scn.Land.Size})
	if err != nil {
		return nil, err
	}
	info := src.Info()
	tr := trace.New(info.Land, tau)
	for k, v := range info.Meta {
		tr.Meta[k] = v
	}
	an, err := analyzer.Consume(ctx, &teeSource{src: src, tr: tr})
	if err != nil {
		return nil, err
	}
	return &LandRun{Scenario: scn, Trace: tr, Analysis: an, Workspace: analyzer.WorkspaceStats()}, nil
}

// RunLands simulates and analyses the three paper lands for the given
// duration at snapshot period tau. The lands are independent streaming
// pipelines and run concurrently; the first failure cancels the rest and
// is reported as the root cause.
func RunLands(ctx context.Context, seed uint64, duration, tau int64) ([]*LandRun, error) {
	scns := world.PaperLands(seed)
	return fanout.Run(ctx, len(scns), 0,
		func(ctx context.Context, i int) (*LandRun, error) {
			scn := scns[i]
			scn.Duration = duration
			run, err := RunLand(ctx, scn, tau)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s: %w", scn.Land.Name, err)
			}
			return run, nil
		})
}

// cache memoises full-day runs per seed so that the seventeen benchmarks
// (one per table/figure) pay the simulation cost once per process.
var (
	cacheMu sync.Mutex
	cache   = map[uint64][]*LandRun{}
)

// CachedDayRuns returns the memoised 24 h / τ=10 s runs for a seed.
func CachedDayRuns(seed uint64) ([]*LandRun, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if runs, ok := cache[seed]; ok {
		return runs, nil
	}
	runs, err := RunLands(context.Background(), seed, world.DayDuration, core.PaperTau)
	if err != nil {
		return nil, err
	}
	cache[seed] = runs
	return runs, nil
}
