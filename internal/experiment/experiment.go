// Package experiment maps every table and figure of the paper's evaluation
// to a runnable experiment: it simulates the three target lands, collects
// τ-sampled traces, runs the full analysis, renders figures, and reports
// paper-vs-measured values (see DESIGN.md §3 for the experiment index).
package experiment

import (
	"fmt"
	"sync"

	"slmob/internal/core"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// LandRun bundles one land's scenario, trace, and analysis.
type LandRun struct {
	Scenario world.Scenario
	Trace    *trace.Trace
	Analysis *core.Analysis
}

// Lands are the three paper lands in the paper's presentation order.
var LandNames = []string{"Apfel Land", "Dance Island", "Isle of View"}

// RunLand simulates and analyses a single paper land.
func RunLand(scn world.Scenario, tau int64) (*LandRun, error) {
	tr, err := world.Collect(scn, tau)
	if err != nil {
		return nil, err
	}
	tr.Meta["size"] = fmt.Sprintf("%g", scn.Land.Size)
	an, err := core.Analyze(tr, core.Config{})
	if err != nil {
		return nil, err
	}
	return &LandRun{Scenario: scn, Trace: tr, Analysis: an}, nil
}

// RunLands simulates and analyses the three paper lands for the given
// duration at snapshot period tau. The lands are independent simulations
// and run concurrently.
func RunLands(seed uint64, duration, tau int64) ([]*LandRun, error) {
	scns := world.PaperLands(seed)
	runs := make([]*LandRun, len(scns))
	errs := make([]error, len(scns))
	var wg sync.WaitGroup
	for i, scn := range scns {
		scn.Duration = duration
		wg.Add(1)
		go func(i int, scn world.Scenario) {
			defer wg.Done()
			run, err := RunLand(scn, tau)
			if err != nil {
				errs[i] = fmt.Errorf("experiment: %s: %w", scn.Land.Name, err)
				return
			}
			runs[i] = run
		}(i, scn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// cache memoises full-day runs per seed so that the seventeen benchmarks
// (one per table/figure) pay the simulation cost once per process.
var (
	cacheMu sync.Mutex
	cache   = map[uint64][]*LandRun{}
)

// CachedDayRuns returns the memoised 24 h / τ=10 s runs for a seed.
func CachedDayRuns(seed uint64) ([]*LandRun, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if runs, ok := cache[seed]; ok {
		return runs, nil
	}
	runs, err := RunLands(seed, world.DayDuration, core.PaperTau)
	if err != nil {
		return nil, err
	}
	cache[seed] = runs
	return runs, nil
}
