package experiment

import (
	"context"
	"testing"

	"slmob/internal/core"
	"slmob/internal/world"
)

// TestDiurnalFigures: the windowed series of a short run renders one
// point per non-empty window, on an hour axis anchored at the window
// grid's epoch.
func TestDiurnalFigures(t *testing.T) {
	scn := world.DanceIsland(3)
	scn.Duration = 7200 // two hours

	src, err := world.NewSource(scn, core.PaperTau)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := core.NewWindowedAnalyzer(scn.Land.Name, core.PaperTau, 1800, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wa.Consume(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Windows) != 5 { // T=10..7200 touches windows 0..4
		t.Fatalf("windows = %d, want 5", len(ws.Windows))
	}

	figs, err := DiurnalFigures(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("figures = %d, want 5", len(figs))
	}
	pop := figs[0]
	if pop.ID != "figD1" || len(pop.Series) != 1 {
		t.Fatalf("figD1 malformed: %+v", pop)
	}
	curve := pop.Series[0].Curve
	if len(curve) != len(ws.Windows) {
		t.Fatalf("population curve has %d points, want %d", len(curve), len(ws.Windows))
	}
	// X axis: half-hour windows → 0, 0.5, 1, 1.5, 2.
	for i, p := range curve {
		if want := 0.5 * float64(i); p.X != want {
			t.Errorf("point %d at X=%v, want %v", i, p.X, want)
		}
		if p.Y <= 0 {
			t.Errorf("point %d has non-positive population %v", i, p.Y)
		}
	}

	if _, err := DiurnalFigures(&core.WindowSeries{}); err == nil {
		t.Error("empty series accepted")
	}
}
