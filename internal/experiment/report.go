package experiment

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"slmob/internal/core"
	"slmob/internal/stats"
	"slmob/internal/world"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	// ID is the experiment identifier from DESIGN.md (T1, F1a, ..., X1).
	ID string
	// Land is the target land, or "all" for cross-land checks.
	Land string
	// Metric describes what is being compared.
	Metric string
	// Paper is the value (or bound) quoted in the paper; NaN when the
	// check is purely qualitative.
	Paper float64
	// Measured is the reproduced value.
	Measured float64
	// Unit is the measurement unit for display.
	Unit string
	// OK reports whether the reproduction matches within tolerance.
	OK bool
	// Note explains the tolerance or qualitative criterion.
	Note string
}

// Report is the full paper-vs-measured comparison.
type Report struct {
	Rows []Row
}

// Failures returns the rows that missed their tolerance.
func (r *Report) Failures() []Row {
	var out []Row
	for _, row := range r.Rows {
		if !row.OK {
			out = append(out, row)
		}
	}
	return out
}

// WriteTable renders the report as an aligned text table.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tLAND\tMETRIC\tPAPER\tMEASURED\tUNIT\tOK\tNOTE")
	for _, row := range r.Rows {
		paper := "—"
		if !math.IsNaN(row.Paper) {
			paper = fmt.Sprintf("%.4g", row.Paper)
		}
		ok := "PASS"
		if !row.OK {
			ok = "MISS"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.4g\t%s\t%s\t%s\n",
			row.ID, row.Land, row.Metric, paper, row.Measured, row.Unit, ok, row.Note)
	}
	return tw.Flush()
}

// factorRow checks measured against paper within a multiplicative band.
func factorRow(id, land, metric string, paper, measured, factor float64, unit string) Row {
	ok := measured >= paper/factor && measured <= paper*factor
	return Row{
		ID: id, Land: land, Metric: metric, Paper: paper, Measured: measured,
		Unit: unit, OK: ok, Note: fmt.Sprintf("within %.2gx", factor),
	}
}

// boundRow checks measured <= bound (below=true) or measured >= bound.
func boundRow(id, land, metric string, bound, measured float64, below bool, unit string) Row {
	ok := measured <= bound
	rel := "<="
	if !below {
		ok = measured >= bound
		rel = ">="
	}
	return Row{
		ID: id, Land: land, Metric: metric, Paper: bound, Measured: measured,
		Unit: unit, OK: ok, Note: "measured " + rel + " paper bound",
	}
}

// qualRow records a qualitative (ordering/shape) check.
func qualRow(id, metric string, ok bool, note string) Row {
	return Row{ID: id, Land: "all", Metric: metric, Paper: math.NaN(),
		Measured: boolTo01(ok), OK: ok, Note: note}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.MustEmpirical(xs).Median()
}

// medianW is median for weighted distributions; the two agree exactly on
// the same multiset.
func medianW(w *stats.Weighted) float64 {
	if w.N() == 0 {
		return math.NaN()
	}
	return w.Median()
}

func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.MustEmpirical(xs).Quantile(p)
}

// landTargets carries the paper's quantitative values per land.
type landTargets struct {
	unique       float64
	concurrent   float64
	ctMedianR10  float64
	ctMedianR80  float64
	ictMedian    float64 // nearly insensitive to r, per the paper
	ftMedianR10  float64
	ftR10IsBound bool // "less than 20 s" style targets
	ftMedianR80  float64
	ftR80IsBound bool
	degZeroR10   float64
	travelP90    float64
}

var paperTargets = map[string]landTargets{
	"Apfel Land": {
		unique: world.ApfelUniqueTarget, concurrent: world.ApfelConcurrentTarget,
		ctMedianR10: 30, ctMedianR80: 70, ictMedian: 400,
		ftMedianR10: 300, ftMedianR80: 30,
		degZeroR10: 0.60, travelP90: 400,
	},
	"Dance Island": {
		unique: world.DanceUniqueTarget, concurrent: world.DanceConcurrentTarget,
		ctMedianR10: 100, ctMedianR80: 300, ictMedian: 750,
		ftMedianR10: 20, ftR10IsBound: true, ftMedianR80: 5, ftR80IsBound: true,
		degZeroR10: 0.10, travelP90: 230,
	},
	"Isle of View": {
		unique: world.IsleUniqueTarget, concurrent: world.IsleConcurrentTarget,
		ctMedianR10: 60, ctMedianR80: 200, ictMedian: 400,
		ftMedianR10: 20, ftR10IsBound: true, ftMedianR80: 5, ftR80IsBound: true,
		degZeroR10: 0.02, travelP90: 500,
	},
}

// BuildReport computes every DESIGN.md experiment row from the three land
// runs (T1, F1*, F2*, F3, F4*, X1).
func BuildReport(runs []*LandRun) (*Report, error) {
	if len(runs) != 3 {
		return nil, fmt.Errorf("experiment: want 3 land runs, got %d", len(runs))
	}
	rep := &Report{}
	byLand := map[string]*LandRun{}
	for _, run := range runs {
		byLand[run.Trace.Land] = run
	}
	for _, name := range LandNames {
		if byLand[name] == nil {
			return nil, fmt.Errorf("experiment: missing land %q", name)
		}
	}

	rb, rw := core.BluetoothRange, core.WiFiRange

	// T1 — trace summary table.
	for _, name := range LandNames {
		run := byLand[name]
		tg := paperTargets[name]
		sum := run.Analysis.Summary
		rep.Rows = append(rep.Rows,
			factorRow("T1", name, "unique visitors", tg.unique, float64(sum.Unique), 1.25, "users"),
			factorRow("T1", name, "mean concurrent", tg.concurrent, sum.MeanConcurrent, 1.35, "users"),
		)
	}

	// F1 — temporal metrics.
	for _, name := range LandNames {
		run := byLand[name]
		tg := paperTargets[name]
		c10 := run.Analysis.Contacts[rb]
		c80 := run.Analysis.Contacts[rw]
		rep.Rows = append(rep.Rows,
			factorRow("F1a", name, "CT median r=10", tg.ctMedianR10, medianW(c10.CT), 2.0, "s"),
			factorRow("F1d", name, "CT median r=80", tg.ctMedianR80, medianW(c80.CT), 2.0, "s"),
			factorRow("F1b", name, "ICT median r=10", tg.ictMedian, medianW(c10.ICT), 2.5, "s"),
			factorRow("F1e", name, "ICT median r=80", tg.ictMedian, medianW(c80.ICT), 2.5, "s"),
		)
		if tg.ftR10IsBound {
			rep.Rows = append(rep.Rows,
				boundRow("F1c", name, "FT median r=10", tg.ftMedianR10, medianW(c10.FT), true, "s"))
		} else {
			rep.Rows = append(rep.Rows,
				factorRow("F1c", name, "FT median r=10", tg.ftMedianR10, medianW(c10.FT), 2.5, "s"))
		}
		if tg.ftR80IsBound {
			rep.Rows = append(rep.Rows,
				boundRow("F1f", name, "FT median r=80", tg.ftMedianR80, medianW(c80.FT), true, "s"))
		} else {
			// FT at r=80 sits at the τ=10 s sampling floor, where a
			// multiplicative tolerance degenerates; allow 3x.
			rep.Rows = append(rep.Rows,
				factorRow("F1f", name, "FT median r=80", tg.ftMedianR80, medianW(c80.FT), 3.0, "s"))
		}
	}
	// The paper's headline FT observation is the cross-land gap: "in
	// Apfel Land users have to wait for a long time before meeting their
	// first neighbor" versus seconds on the other two lands.
	for _, r := range []float64{rb, rw} {
		apfelFT := medianW(byLand["Apfel Land"].Analysis.Contacts[r].FT)
		danceFT := medianW(byLand["Dance Island"].Analysis.Contacts[r].FT)
		isleFT := medianW(byLand["Isle of View"].Analysis.Contacts[r].FT)
		rep.Rows = append(rep.Rows, qualRow("F1c",
			fmt.Sprintf("FT Apfel >> Dance, Isle (r=%g)", r),
			apfelFT >= 2*danceFT+10 && apfelFT >= 2*isleFT+10,
			"newbie arena delays first contact"))
	}
	// F1 orderings: CT ordering across lands, CT grows with r.
	ctOrder := func(r float64) bool {
		return medianW(byLand["Apfel Land"].Analysis.Contacts[r].CT) <
			medianW(byLand["Isle of View"].Analysis.Contacts[r].CT) &&
			medianW(byLand["Isle of View"].Analysis.Contacts[r].CT) <
				medianW(byLand["Dance Island"].Analysis.Contacts[r].CT)
	}
	rep.Rows = append(rep.Rows,
		qualRow("F1a", "CT ordering Apfel<Isle<Dance (r=10)", ctOrder(rb), "paper §4"),
		qualRow("F1d", "CT ordering Apfel<Isle<Dance (r=80)", ctOrder(rw), "paper §4"),
	)
	for _, name := range LandNames {
		run := byLand[name]
		grow := medianW(run.Analysis.Contacts[rw].CT) > medianW(run.Analysis.Contacts[rb].CT)
		rep.Rows = append(rep.Rows,
			qualRow("F1d", "CT grows with r ("+name+")", grow, "larger transfer opportunities"))
	}

	// F2 — line-of-sight networks.
	for _, name := range LandNames {
		run := byLand[name]
		tg := paperTargets[name]
		n10 := run.Analysis.Nets[rb]
		n80 := run.Analysis.Nets[rw]
		rep.Rows = append(rep.Rows, Row{
			ID: "F2a", Land: name, Metric: "P(degree=0) r=10",
			Paper: tg.degZeroR10, Measured: n10.DegreeZeroFraction(), Unit: "frac",
			OK:   math.Abs(n10.DegreeZeroFraction()-tg.degZeroR10) <= 0.15,
			Note: "within ±0.15 absolute",
		})
		rep.Rows = append(rep.Rows,
			boundRow("F2d", name, "P(degree=0) r=80", 0.05, n80.DegreeZeroFraction(), true, "frac"))
		// The paper reports high clustering medians overall; on the sparse
		// Apfel Land at r=10, components are mostly pairs (no triangles
		// exist in a two-node component), so the per-snapshot median is
		// near zero and only the mean is a meaningful positivity check.
		if name == "Apfel Land" {
			m := stats.Summarize(n10.Clusterings).Mean
			rep.Rows = append(rep.Rows,
				boundRow("F2c", name, "clustering mean r=10", 0.01, m, false, "coef"))
		} else {
			rep.Rows = append(rep.Rows,
				boundRow("F2c", name, "clustering median r=10", 0.4, median(n10.Clusterings), false, "coef"))
		}
		rep.Rows = append(rep.Rows,
			boundRow("F2f", name, "clustering median r=80", 0.4, median(n80.Clusterings), false, "coef"))
	}
	// F2b/F2e diameter artefacts.
	apfel := byLand["Apfel Land"].Analysis
	rep.Rows = append(rep.Rows, qualRow("F2b",
		"Apfel max diameter smaller at r=10 than r=80",
		apfel.Nets[rb].MaxDiameter() < apfel.Nets[rw].MaxDiameter(),
		"small-components artefact, paper §4"))
	for _, name := range []string{"Dance Island", "Isle of View"} {
		an := byLand[name].Analysis
		rep.Rows = append(rep.Rows, qualRow("F2e",
			"diameter shrinks at r=80 ("+name+")",
			medianW(an.Nets[rw].Diameters) <= medianW(an.Nets[rb].Diameters),
			"denser graphs have shorter paths"))
	}

	// F3 — zone occupation.
	for _, name := range LandNames {
		an := byLand[name].Analysis
		maxOcc := 0.0
		if an.Zones.N() > 0 {
			maxOcc = an.Zones.Max()
		}
		emptyFrac := float64(an.Zones.CountOf(0)) / float64(an.Zones.N())
		rep.Rows = append(rep.Rows,
			boundRow("F3", name, "empty 20m-cell fraction", 0.80, emptyFrac, false, "frac"))
		if name == "Dance Island" {
			rep.Rows = append(rep.Rows,
				boundRow("F3", name, "hot-spot max cell occupancy", 10, maxOcc, false, "users"))
		}
	}

	// F4 — trip analysis.
	for _, name := range LandNames {
		run := byLand[name]
		tg := paperTargets[name]
		tp := run.Analysis.Trips
		rep.Rows = append(rep.Rows,
			factorRow("F4a", name, "travel length p90", tg.travelP90, quantile(tp.TravelLength, 0.9), 1.8, "m"))
	}
	isleTrips := byLand["Isle of View"].Analysis.Trips
	longFrac := 0.0
	for _, l := range isleTrips.TravelLength {
		if l > 2000 {
			longFrac++
		}
	}
	longFrac /= float64(len(isleTrips.TravelLength))
	rep.Rows = append(rep.Rows, Row{
		ID: "F4a", Land: "Isle of View", Metric: "frac travel > 2000 m",
		Paper: 0.02, Measured: longFrac, Unit: "frac",
		OK: longFrac >= 0.005 && longFrac <= 0.06, Note: "paper: ~2%",
	})
	// Session-time shape: longest < 4 h everywhere; aggregate p90 < ~1 h.
	var allSessions []float64
	maxSession := 0.0
	for _, name := range LandNames {
		tp := byLand[name].Analysis.Trips
		allSessions = append(allSessions, tp.TravelTime...)
		if m := quantile(tp.TravelTime, 1); m > maxSession {
			maxSession = m
		}
	}
	// "90% of users are logged in for less than 1 hour" (§4). The bound
	// carries ~25% slack: the paper's own Little's-law session means
	// (concurrency x day / unique) put the aggregate p90 slightly above
	// 3600 s; see EXPERIMENTS.md for the discussion.
	rep.Rows = append(rep.Rows,
		boundRow("F4c", "all", "longest session", 14400, maxSession, true, "s"),
		boundRow("F4c", "all", "aggregate session p90", 4500, quantile(allSessions, 0.9), true, "s"))

	// X1 — the two-phase tail claim: power law + exponential cut-off must
	// beat both pure models for CT; for ICT it must at least beat the pure
	// power law (whose unbounded tail the cut-off truncates).
	for _, name := range LandNames {
		c10 := byLand[name].Analysis.Contacts[rb]
		for metric, dist := range map[string]*stats.Weighted{"CT": c10.CT, "ICT": c10.ICT} {
			if dist.N() < 100 {
				continue
			}
			// The MLE tail fits consume raw samples; materialise once.
			cmp, err := stats.CompareTailModels(dist.Values(), float64(core.PaperTau))
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, qualRow("X1",
				fmt.Sprintf("%s tail: cutoff beats pure power law (%s)", metric, name),
				cmp.Cutoff.AIC() <= cmp.Pareto.AIC(), "AIC comparison at r=10"))
		}
	}
	return rep, nil
}
