package experiment

import (
	"fmt"

	"slmob/internal/core"
	"slmob/internal/stats"
)

// Figures renders every panel of the paper's evaluation — Fig. 1(a-f),
// Fig. 2(a-f), Fig. 3, and Fig. 4(a-c) — from the three land runs, in the
// paper's order.
func Figures(runs []*LandRun) ([]*core.Figure, error) {
	if len(runs) != 3 {
		return nil, fmt.Errorf("experiment: want 3 land runs, got %d", len(runs))
	}
	rb, rw := core.BluetoothRange, core.WiFiRange
	var figs []*core.Figure

	// Weighted metrics plot straight from their frequency accumulators;
	// the curves are bit-identical to the expanded samples'.
	wccdf := func(id, title, xlabel string, dist func(*LandRun) *stats.Weighted, logX bool) *core.Figure {
		f := &core.Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "1-F(x)", LogX: logX}
		for _, run := range runs {
			f.Series = append(f.Series, core.WeightedCCDFSeries(run.Trace.Land, dist(run), logX))
		}
		return f
	}
	wcdf := func(id, title, xlabel string, dist func(*LandRun) *stats.Weighted) *core.Figure {
		f := &core.Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "F(x)"}
		for _, run := range runs {
			f.Series = append(f.Series, core.WeightedCDFSeries(run.Trace.Land, dist(run)))
		}
		return f
	}
	cdf := func(id, title, xlabel string, sample func(*LandRun) []float64) *core.Figure {
		f := &core.Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "F(x)"}
		for _, run := range runs {
			f.Series = append(f.Series, core.CDFSeries(run.Trace.Land, sample(run)))
		}
		return f
	}

	// Fig. 1 — temporal analysis (CCDFs on log time axes).
	figs = append(figs,
		wccdf("fig1a", "Contact Time CCDF, r=10m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rb].CT }, true),
		wccdf("fig1b", "Inter-Contact Time CCDF, r=10m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rb].ICT }, true),
		wccdf("fig1c", "First Contact Time CCDF, r=10m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rb].FT }, true),
		wccdf("fig1d", "Contact Time CCDF, r=80m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rw].CT }, true),
		wccdf("fig1e", "Inter-Contact Time CCDF, r=80m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rw].ICT }, true),
		wccdf("fig1f", "First Contact Time CCDF, r=80m", "Time (s)",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Contacts[rw].FT }, true),
	)

	// Fig. 2 — line-of-sight network properties.
	figs = append(figs,
		wccdf("fig2a", "Node Degree CCDF, r=10m", "Degree",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Nets[rb].Degrees }, false),
		wcdf("fig2b", "Network Diameter CDF, r=10m", "Diameter",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Nets[rb].Diameters }),
		cdf("fig2c", "Clustering Coefficient CDF, r=10m", "Coefficient",
			func(r *LandRun) []float64 { return r.Analysis.Nets[rb].Clusterings }),
		wccdf("fig2d", "Node Degree CCDF, r=80m", "Degree",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Nets[rw].Degrees }, false),
		wcdf("fig2e", "Network Diameter CDF, r=80m", "Diameter",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Nets[rw].Diameters }),
		cdf("fig2f", "Clustering Coefficient CDF, r=80m", "Coefficient",
			func(r *LandRun) []float64 { return r.Analysis.Nets[rw].Clusterings }),
	)

	// Fig. 3 — spatial distribution of users.
	figs = append(figs,
		wcdf("fig3", "Zone Occupation CDF, L=20m", "Number of users per cell",
			func(r *LandRun) *stats.Weighted { return r.Analysis.Zones }),
	)

	// Fig. 4 — trip analysis.
	figs = append(figs,
		cdf("fig4a", "Travel Length CDF", "Length (m)",
			func(r *LandRun) []float64 { return r.Analysis.Trips.TravelLength }),
		cdf("fig4b", "Effective Travel Time CDF", "Time (s)",
			func(r *LandRun) []float64 { return r.Analysis.Trips.EffectiveTravelTime }),
		cdf("fig4c", "Travel Time CDF", "Time (s)",
			func(r *LandRun) []float64 { return r.Analysis.Trips.TravelTime }),
	)
	return figs, nil
}
