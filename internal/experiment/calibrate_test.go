package experiment

import (
	"os"
	"testing"
)

// TestCalibrationReport runs the full 24-hour reproduction and prints the
// paper-vs-measured table. It is the single source of truth for
// EXPERIMENTS.md numbers; run with -v to see the table.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("24h calibration run skipped in -short mode")
	}
	runs, err := CachedDayRuns(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReport(runs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	maxMiss := len(rep.Rows) / 5 // ≥80 % of rows must hold
	if len(fails) > maxMiss {
		t.Errorf("%d/%d rows missed tolerance (allowed %d)", len(fails), len(rep.Rows), maxMiss)
	}
}
