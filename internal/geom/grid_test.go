package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestGridFindsNeighborsExactly(t *testing.T) {
	g := NewGrid(10)
	pts := []Vec{
		V2(0, 0), V2(5, 0), V2(9.9, 0), V2(10.1, 0),
		V2(0, 5), V2(50, 50), V2(255, 255),
	}
	for i, p := range pts {
		g.Insert(int64(i), p)
	}
	got := g.Within(V2(0, 0), 10)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
}

func TestGridCountAndLen(t *testing.T) {
	g := NewGrid(20)
	for i := 0; i < 100; i++ {
		g.Insert(int64(i), V2(float64(i), float64(i)))
	}
	if g.Len() != 100 {
		t.Errorf("Len = %d", g.Len())
	}
	// Points on the diagonal within radius r of (50,50): |i-50|*sqrt2 <= r.
	n := g.CountWithin(V2(50, 50), 10)
	want := 0
	for i := 0; i < 100; i++ {
		if math.Hypot(float64(i)-50, float64(i)-50) <= 10 {
			want++
		}
	}
	if n != want {
		t.Errorf("CountWithin = %d, want %d", n, want)
	}
}

func TestGridReset(t *testing.T) {
	g := NewGrid(8)
	g.Insert(1, V2(1, 1))
	g.Insert(2, V2(100, 100))
	g.Reset()
	if g.Len() != 0 {
		t.Errorf("Len after reset = %d", g.Len())
	}
	if n := g.CountWithin(V2(1, 1), 500); n != 0 {
		t.Errorf("CountWithin after reset = %d", n)
	}
	g.Insert(3, V2(1, 1))
	if n := g.CountWithin(V2(0, 0), 5); n != 1 {
		t.Errorf("reuse after reset: CountWithin = %d", n)
	}
}

func TestGridEarlyStop(t *testing.T) {
	g := NewGrid(10)
	for i := 0; i < 10; i++ {
		g.Insert(int64(i), V2(1, 1))
	}
	calls := 0
	g.VisitWithin(V2(1, 1), 1, func(int64, Vec) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop visited %d, want 3", calls)
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V2(-5, -5))
	g.Insert(2, V2(-25, -25))
	got := g.Within(V2(-4, -4), 3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Within negative region = %v", got)
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V2(0, 0))
	if got := g.Within(V2(0, 0), -1); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
}

func TestGridZeroCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0) did not panic")
		}
	}()
	NewGrid(0)
}

// TestGridMatchesBruteForceProperty cross-checks grid range queries against
// an O(n^2) scan on random point sets.
func TestGridMatchesBruteForceProperty(t *testing.T) {
	type input struct {
		Seed uint16
	}
	f := func(in input) bool {
		// Simple deterministic pseudo-random points from the seed.
		s := uint64(in.Seed) + 1
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53) * 256
		}
		const n = 60
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = V2(next(), next())
		}
		g := NewGrid(13)
		for i, p := range pts {
			g.Insert(int64(i), p)
		}
		center := V2(next(), next())
		r := next() / 4
		got := g.Within(center, r)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []int64
		for i, p := range pts {
			if p.DistXY(center) <= r {
				want = append(want, int64(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGridZeroAllocSteadyState pins the //slmob:hotpath contract on the
// grid's per-snapshot cycle: once every bucket a population touches has
// been materialised, Reset + reinsertion + range queries allocate
// nothing.
func TestGridZeroAllocSteadyState(t *testing.T) {
	g := NewGrid(10)
	pts := make([]Vec, 64)
	for i := range pts {
		pts[i] = V2(float64(i%8)*12, float64(i/8)*12)
	}
	// Warm-up: materialise every bucket and the occupied list.
	for i := 0; i < 3; i++ {
		g.Reset()
		for j, p := range pts {
			g.Insert(int64(j), p)
		}
	}
	n := 0
	avg := testing.AllocsPerRun(100, func() {
		g.Reset()
		for j, p := range pts {
			g.Insert(int64(j), p)
		}
		g.VisitWithin(pts[7], 25, func(int64, Vec) bool { n++; return true })
	})
	if avg != 0 {
		t.Errorf("steady-state grid cycle allocates %v per run, want 0", avg)
	}
	if n == 0 {
		t.Fatal("VisitWithin visited nothing")
	}
}

// TestGridRemoveAndMove exercises the incremental-maintenance API: removal,
// same-cell moves (position update in place), cross-cell moves, and the
// not-found cases.
func TestGridRemoveAndMove(t *testing.T) {
	g := NewGrid(10)
	g.Insert(1, V2(5, 5))
	g.Insert(2, V2(6, 5))
	g.Insert(3, V2(55, 55))

	if !g.Remove(2, V2(6, 5)) {
		t.Fatal("Remove failed for a present point")
	}
	if g.Remove(2, V2(6, 5)) {
		t.Fatal("Remove succeeded twice for the same point")
	}
	if got := g.Len(); got != 2 {
		t.Fatalf("Len = %d after removal, want 2", got)
	}

	// Same-cell move: the query must see the new position.
	if !g.Move(1, V2(5, 5), V2(8, 8)) {
		t.Fatal("same-cell Move failed")
	}
	if got := g.Within(V2(8, 8), 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after same-cell move Within = %v, want [1]", got)
	}

	// Cross-cell move.
	if !g.Move(3, V2(55, 55), V2(100, 5)) {
		t.Fatal("cross-cell Move failed")
	}
	if got := g.CountWithin(V2(55, 55), 2); got != 0 {
		t.Fatalf("stale point still visible at old cell: %d", got)
	}
	if got := g.Within(V2(100, 5), 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after cross-cell move Within = %v, want [3]", got)
	}
	if g.Move(42, V2(0, 0), V2(1, 1)) {
		t.Fatal("Move succeeded for an absent point")
	}
	if got := g.Len(); got != 2 {
		t.Fatalf("Len = %d after moves, want 2", got)
	}
}

// TestGridMoveChurnZeroAlloc pins the incremental contract: on a grid that
// is never Reset, an arbitrary interleaving of cross-cell moves, removals,
// and re-inserts into previously-touched cells allocates nothing and keeps
// the occupied list duplicate-free, so a later Reset still restores the
// empty state.
func TestGridMoveChurnZeroAlloc(t *testing.T) {
	g := NewGrid(10)
	a, b := V2(5, 5), V2(25, 25)
	g.Insert(1, a)
	// Warm both cells and the occupied list.
	for i := 0; i < 3; i++ {
		g.Move(1, a, b)
		g.Move(1, b, a)
	}
	g.Insert(2, b)
	g.Remove(2, b)
	avg := testing.AllocsPerRun(200, func() {
		g.Move(1, a, b)
		g.Insert(2, a)
		g.Remove(2, a)
		g.Move(1, b, a)
	})
	if avg != 0 {
		t.Errorf("steady-state move/remove churn allocates %v per run, want 0", avg)
	}
	if got := len(g.occupied); got != 2 {
		t.Fatalf("occupied list holds %d cells, want 2 (no duplicates)", got)
	}
	g.Reset()
	if got := g.Len(); got != 0 {
		t.Fatalf("Len = %d after Reset, want 0", got)
	}
	g.Insert(9, a)
	if got := g.Within(a, 1); len(got) != 1 || got[0] != 9 {
		t.Fatalf("post-Reset state polluted: Within = %v", got)
	}
}

// TestVisitWithinHugeRadius: a hostile or degenerate radius must never
// turn the cell walk into an unbounded loop — the bounding box is
// clamped to the occupied cell extent, which yields identical results
// (no point lives outside it) at cost bounded by the land.
func TestVisitWithinHugeRadius(t *testing.T) {
	g := NewGrid(32)
	pts := []Vec{V2(0, 0), V2(100, 200), V2(255, 255), V2(-50, 12)}
	for i, p := range pts {
		g.Insert(int64(i), p)
	}
	// 1e9 walks ~4e15 cells unclamped; 7e10+ overflows the int32 cell
	// conversion; Inf never terminates. All must return every point.
	for _, r := range []float64{1e9, 7e10, 1e18, math.Inf(1)} {
		if got := len(g.Within(V2(128, 128), r)); got != len(pts) {
			t.Errorf("r=%v: %d points, want %d", r, got, len(pts))
		}
	}
	// A huge box disjoint from the occupied extent finds nothing (and
	// must not fabricate an intersection out of the clamp).
	if got := g.Within(V2(1e8, 1e8), 1e6); len(got) != 0 {
		t.Errorf("disjoint huge query returned %v", got)
	}
	// Degenerate radii stay rejected.
	for _, r := range []float64{math.NaN(), -1, math.Inf(-1)} {
		if got := g.Within(V2(128, 128), r); len(got) != 0 {
			t.Errorf("r=%v returned %v, want nothing", r, got)
		}
	}
	// An empty grid ignores every radius.
	g.Reset()
	if got := g.Within(V2(0, 0), math.Inf(1)); len(got) != 0 {
		t.Errorf("empty grid returned %v", got)
	}
}
