package geom

// PathLength returns the total length of the polyline through the given
// points, i.e. the travelled distance when visiting them in order. Fewer
// than two points yield zero.
func PathLength(points []Vec) float64 {
	total := 0.0
	for i := 1; i < len(points); i++ {
		total += points[i].Dist(points[i-1])
	}
	return total
}

// PathLengthXY is PathLength restricted to the ground plane.
func PathLengthXY(points []Vec) float64 {
	total := 0.0
	for i := 1; i < len(points); i++ {
		total += points[i].DistXY(points[i-1])
	}
	return total
}

// Displacement returns the straight-line distance between the first and
// last point of a path, or zero for paths shorter than two points.
func Displacement(points []Vec) float64 {
	if len(points) < 2 {
		return 0
	}
	return points[0].Dist(points[len(points)-1])
}

// Quantize rounds p to the given resolution in metres (e.g. 1.0 for the
// coarse 1 m map updates the crawler receives). Resolution must be
// positive.
func Quantize(p Vec, res float64) Vec {
	return Vec{
		X: quantize1(p.X, res),
		Y: quantize1(p.Y, res),
		Z: quantize1(p.Z, res),
	}
}

func quantize1(x, res float64) float64 {
	if res <= 0 {
		return x
	}
	n := int64(x/res + 0.5)
	return float64(n) * res
}
