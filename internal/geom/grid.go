package geom

// Grid is a uniform spatial hash over the ground plane used to answer
// "all points within r of p" queries without O(n^2) scans. It is rebuilt
// per snapshot by the analysis pipeline and per tick by the world, so
// insertion and reset are the hot paths: the implementation reuses its
// bucket slices across Reset calls to stay allocation-free at steady state.
//
// The grid is not safe for concurrent use.
type Grid struct {
	cell    float64
	buckets map[cellKey][]gridEntry
	// occupied lists the cells holding points since the last Reset, so
	// Reset truncates exactly those buckets instead of sweeping every
	// bucket the grid has ever materialised — the difference between
	// O(points) and O(lifetime footprint) per snapshot on a pooled grid.
	occupied []cellKey
}

type cellKey struct{ cx, cy int32 }

type gridEntry struct {
	id  int64
	pos Vec
}

// NewGrid returns a grid with the given cell edge length in metres.
// A cell size close to the dominant query radius performs best.
func NewGrid(cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{cell: cell, buckets: make(map[cellKey][]gridEntry)}
}

// CellSize returns the configured cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// Reset removes all points while retaining bucket capacity.
//
//slmob:hotpath
func (g *Grid) Reset() {
	for _, k := range g.occupied {
		g.buckets[k] = g.buckets[k][:0]
	}
	g.occupied = g.occupied[:0]
}

// Insert adds a point with an opaque identifier.
//
//slmob:hotpath
func (g *Grid) Insert(id int64, p Vec) {
	k := g.key(p)
	b := g.buckets[k]
	if len(b) == 0 {
		g.occupied = append(g.occupied, k)
	}
	g.buckets[k] = append(b, gridEntry{id: id, pos: p})
}

// Len returns the number of stored points.
func (g *Grid) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b)
	}
	return n
}

// VisitWithin calls fn for every stored point whose ground-plane distance
// to p is at most r, including any point stored at p itself. Iteration
// stops early if fn returns false.
//
//slmob:hotpath
func (g *Grid) VisitWithin(p Vec, r float64, fn func(id int64, q Vec) bool) {
	if r < 0 {
		return
	}
	r2 := r * r
	minX := int32(floorDiv(p.X-r, g.cell))
	maxX := int32(floorDiv(p.X+r, g.cell))
	minY := int32(floorDiv(p.Y-r, g.cell))
	maxY := int32(floorDiv(p.Y+r, g.cell))
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			for _, e := range g.buckets[cellKey{cx, cy}] {
				dx, dy := e.pos.X-p.X, e.pos.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					if !fn(e.id, e.pos) {
						return
					}
				}
			}
		}
	}
}

// Within returns the identifiers of all points within r of p, in
// unspecified order.
func (g *Grid) Within(p Vec, r float64) []int64 {
	var ids []int64
	g.VisitWithin(p, r, func(id int64, _ Vec) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// CountWithin returns the number of points within r of p.
func (g *Grid) CountWithin(p Vec, r float64) int {
	n := 0
	g.VisitWithin(p, r, func(int64, Vec) bool { n++; return true })
	return n
}

func (g *Grid) key(p Vec) cellKey {
	return cellKey{cx: int32(floorDiv(p.X, g.cell)), cy: int32(floorDiv(p.Y, g.cell))}
}

// floorDiv returns floor(x/cell) as a float64 suitable for int conversion,
// correct for negative coordinates as well.
func floorDiv(x, cell float64) float64 {
	q := x / cell
	f := float64(int64(q))
	if q < 0 && q != f {
		f--
	}
	return f
}
