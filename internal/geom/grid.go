package geom

// Grid is a uniform spatial hash over the ground plane used to answer
// "all points within r of p" queries without O(n^2) scans. It is rebuilt
// per snapshot by the analysis pipeline and per tick by the world, so
// insertion and reset are the hot paths: the implementation reuses its
// bucket slices across Reset calls to stay allocation-free at steady state.
//
// Beyond the rebuild-per-snapshot pattern, the grid also supports
// in-place point maintenance (Remove, Move) for callers that keep one
// grid alive across snapshots and patch it incrementally — the
// temporal-coherence path of graph.Workspace.ApplyPositions.
//
// The grid is not safe for concurrent use.
type Grid struct {
	cell    float64
	buckets map[cellKey]gridBucket
	// occupied lists the cells holding points since the last Reset, so
	// Reset truncates exactly those buckets instead of sweeping every
	// bucket the grid has ever materialised — the difference between
	// O(points) and O(lifetime footprint) per snapshot on a pooled grid.
	// The listed flag on each bucket keeps the list duplicate-free even
	// when Remove empties a cell that Insert later refills, so a
	// never-Reset incremental grid cannot grow occupied without bound.
	occupied []cellKey
}

type cellKey struct{ cx, cy int32 }

type gridEntry struct {
	id  int64
	pos Vec
}

// gridBucket is one cell's point list plus its membership flag for the
// occupied list.
type gridBucket struct {
	listed  bool
	entries []gridEntry
}

// NewGrid returns a grid with the given cell edge length in metres.
// A cell size close to the dominant query radius performs best.
func NewGrid(cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell size must be positive")
	}
	return &Grid{cell: cell, buckets: make(map[cellKey]gridBucket)}
}

// CellSize returns the configured cell edge length.
func (g *Grid) CellSize() float64 { return g.cell }

// Reset removes all points while retaining bucket capacity.
//
//slmob:hotpath
func (g *Grid) Reset() {
	for _, k := range g.occupied {
		b := g.buckets[k]
		b.entries = b.entries[:0]
		b.listed = false
		g.buckets[k] = b
	}
	g.occupied = g.occupied[:0]
}

// Insert adds a point with an opaque identifier.
//
//slmob:hotpath
func (g *Grid) Insert(id int64, p Vec) {
	k := g.key(p)
	b := g.buckets[k]
	if !b.listed {
		b.listed = true
		g.occupied = append(g.occupied, k)
	}
	b.entries = append(b.entries, gridEntry{id: id, pos: p})
	g.buckets[k] = b
}

// Remove deletes the point with the given identifier stored at p (the
// position it was inserted or last moved to). It reports whether the
// point was found. The cell stays on the occupied list so a later
// re-insert does not duplicate it; Reset clears the list as usual.
//
//slmob:hotpath
func (g *Grid) Remove(id int64, p Vec) bool {
	k := g.key(p)
	b := g.buckets[k]
	for i := range b.entries {
		if b.entries[i].id == id {
			last := len(b.entries) - 1
			b.entries[i] = b.entries[last]
			b.entries = b.entries[:last]
			g.buckets[k] = b
			return true
		}
	}
	return false
}

// Move relocates the point with the given identifier from its stored
// position to a new one, updating the stored position in place when both
// fall in the same cell. It reports whether the point was found at from.
//
//slmob:hotpath
func (g *Grid) Move(id int64, from, to Vec) bool {
	kf := g.key(from)
	kt := g.key(to)
	if kf == kt {
		b := g.buckets[kf]
		for i := range b.entries {
			if b.entries[i].id == id {
				b.entries[i].pos = to
				return true
			}
		}
		return false
	}
	if !g.Remove(id, from) {
		return false
	}
	g.Insert(id, to)
	return true
}

// Len returns the number of stored points.
func (g *Grid) Len() int {
	n := 0
	for _, b := range g.buckets {
		n += len(b.entries)
	}
	return n
}

// VisitWithin calls fn for every stored point whose ground-plane distance
// to p is at most r, including any point stored at p itself. Iteration
// stops early if fn returns false.
//
//slmob:hotpath
func (g *Grid) VisitWithin(p Vec, r float64, fn func(id int64, q Vec) bool) {
	if !(r >= 0) || len(g.occupied) == 0 { // rejects negative and NaN radii
		return
	}
	r2 := r * r
	fMinX := floorDiv(p.X-r, g.cell)
	fMaxX := floorDiv(p.X+r, g.cell)
	fMinY := floorDiv(p.Y-r, g.cell)
	fMaxY := floorDiv(p.Y+r, g.cell)
	// A huge (or infinite) radius makes this bounding box astronomically
	// larger than the occupied cell set — and past ~2^31 cells the int32
	// conversion below overflows. Points only exist in occupied cells,
	// so when a box axis exceeds the occupied count, clamp the box to
	// the occupied extent: identical results, cost bounded by the land.
	if !(fMaxX-fMinX < float64(len(g.occupied))) || !(fMaxY-fMinY < float64(len(g.occupied))) {
		lo, hi := g.occupied[0], g.occupied[0]
		for _, k := range g.occupied[1:] {
			if k.cx < lo.cx {
				lo.cx = k.cx
			}
			if k.cx > hi.cx {
				hi.cx = k.cx
			}
			if k.cy < lo.cy {
				lo.cy = k.cy
			}
			if k.cy > hi.cy {
				hi.cy = k.cy
			}
		}
		// Negated comparisons so a non-finite bound falls to the extent.
		if !(fMinX >= float64(lo.cx)) {
			fMinX = float64(lo.cx)
		}
		if !(fMaxX <= float64(hi.cx)) {
			fMaxX = float64(hi.cx)
		}
		if !(fMinY >= float64(lo.cy)) {
			fMinY = float64(lo.cy)
		}
		if !(fMaxY <= float64(hi.cy)) {
			fMaxY = float64(hi.cy)
		}
		if fMinX > fMaxX || fMinY > fMaxY {
			return
		}
	}
	minX, maxX := int32(fMinX), int32(fMaxX)
	minY, maxY := int32(fMinY), int32(fMaxY)
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			for _, e := range g.buckets[cellKey{cx, cy}].entries {
				dx, dy := e.pos.X-p.X, e.pos.Y-p.Y
				if dx*dx+dy*dy <= r2 {
					if !fn(e.id, e.pos) {
						return
					}
				}
			}
		}
	}
}

// Within returns the identifiers of all points within r of p, in
// unspecified order.
func (g *Grid) Within(p Vec, r float64) []int64 {
	var ids []int64
	g.VisitWithin(p, r, func(id int64, _ Vec) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// CountWithin returns the number of points within r of p.
func (g *Grid) CountWithin(p Vec, r float64) int {
	n := 0
	g.VisitWithin(p, r, func(int64, Vec) bool { n++; return true })
	return n
}

func (g *Grid) key(p Vec) cellKey {
	return cellKey{cx: int32(floorDiv(p.X, g.cell)), cy: int32(floorDiv(p.Y, g.cell))}
}

// floorDiv returns floor(x/cell) as a float64 suitable for int conversion,
// correct for negative coordinates as well.
func floorDiv(x, cell float64) float64 {
	q := x / cell
	if !(q >= -(1<<62) && q <= 1<<62) {
		// NaN, ±Inf, or beyond int64's exact range: the float→int64
		// conversion below would be implementation-defined, and any
		// float64 of this magnitude is already an integer, so q is its
		// own floor. VisitWithin clamps such values against the occupied
		// extent before any int conversion.
		return q
	}
	f := float64(int64(q))
	if q < 0 && q != f {
		f--
	}
	return f
}
