package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestVecBasicOps(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, 6, 8)
	if got := v.Add(w); got != V(5, 8, 11) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got != V(3, 4, 5) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 1*4+2*6+3*8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDistAndDistXY(t *testing.T) {
	a := V(0, 0, 0)
	b := V(3, 4, 12)
	if got := a.Dist(b); !almostEq(got, 13) {
		t.Errorf("Dist = %v, want 13", got)
	}
	if got := a.DistXY(b); !almostEq(got, 5) {
		t.Errorf("DistXY = %v, want 5", got)
	}
	if got := a.DistSq(b); !almostEq(got, 169) {
		t.Errorf("DistSq = %v, want 169", got)
	}
}

func TestNorm(t *testing.T) {
	if got := V(0, 0, 0).Norm(); !got.IsZero() {
		t.Errorf("Norm(0) = %v, want zero", got)
	}
	n := V(3, 4, 0).Norm()
	if !almostEq(n.Len(), 1) {
		t.Errorf("norm length = %v", n.Len())
	}
	if !almostEq(n.X, 0.6) || !almostEq(n.Y, 0.8) {
		t.Errorf("Norm = %v", n)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 1, 1), V(5, 9, -3)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !almostEq(mid.X, 3) || !almostEq(mid.Y, 5) || !almostEq(mid.Z, -1) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestStepToward(t *testing.T) {
	p := V(0, 0, 0)
	target := V(10, 0, 0)
	q, reached := p.StepToward(target, 4)
	if reached || !almostEq(q.X, 4) {
		t.Errorf("StepToward = %v reached=%v", q, reached)
	}
	q, reached = q.StepToward(target, 100)
	if !reached || q != target {
		t.Errorf("StepToward overshoot = %v reached=%v", q, reached)
	}
	// Zero distance: immediately reached.
	if _, reached := target.StepToward(target, 0.1); !reached {
		t.Error("StepToward at target should report reached")
	}
}

func TestIsZeroSeatedSentinel(t *testing.T) {
	if !V(0, 0, 0).IsZero() {
		t.Error("origin should be zero")
	}
	if V(0, 0, 0.001).IsZero() {
		t.Error("near-origin should not be zero")
	}
}

func TestAABB(t *testing.T) {
	b := Square(256)
	if !b.Contains(V(0, 0, 0)) || !b.Contains(V(255.9, 255.9, 50)) {
		t.Error("Contains failed for interior points")
	}
	if b.Contains(V(256, 10, 0)) || b.Contains(V(-0.1, 10, 0)) {
		t.Error("Contains accepted exterior points")
	}
	p := b.Clamp(V(300, -5, -2))
	if !b.Contains(p) || p.Z != 0 {
		t.Errorf("Clamp = %v not inside", p)
	}
	c := b.Center()
	if !almostEq(c.X, 128) || !almostEq(c.Y, 128) {
		t.Errorf("Center = %v", c)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		if math.IsNaN(a.Dist(b) + b.Dist(c) + a.Dist(c)) {
			return true // ignore pathological float inputs
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6*(1+a.Dist(c))
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V2(ax, ay), V2(bx, by)
		return a.Dist(b) == b.Dist(a) && a.DistXY(b) == b.DistXY(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathLength(t *testing.T) {
	pts := []Vec{V2(0, 0), V2(3, 4), V2(3, 4), V2(6, 8)}
	if got := PathLength(pts); !almostEq(got, 10) {
		t.Errorf("PathLength = %v, want 10", got)
	}
	if got := PathLength(pts[:1]); got != 0 {
		t.Errorf("single-point path length = %v", got)
	}
	if got := Displacement(pts); !almostEq(got, 10) {
		t.Errorf("Displacement = %v, want 10", got)
	}
	if got := Displacement(nil); got != 0 {
		t.Errorf("empty displacement = %v", got)
	}
}

func TestPathLengthXYIgnoresAltitude(t *testing.T) {
	pts := []Vec{V(0, 0, 0), V(3, 4, 100)}
	if got := PathLengthXY(pts); !almostEq(got, 5) {
		t.Errorf("PathLengthXY = %v, want 5", got)
	}
	if got := PathLength(pts); got <= 100 {
		t.Errorf("PathLength = %v, want > 100", got)
	}
}

func TestQuantize(t *testing.T) {
	p := Quantize(V(10.6, 0.4, 21.5), 1)
	if p != V(11, 0, 22) {
		t.Errorf("Quantize = %v", p)
	}
	if got := Quantize(V(1.23, 4.56, 7.89), 0); got != V(1.23, 4.56, 7.89) {
		t.Errorf("Quantize(res=0) should be identity, got %v", got)
	}
	q := Quantize(V(0.13, 0.88, 0), 0.25)
	if !almostEq(q.X, 0.25) || !almostEq(q.Y, 1.0) {
		t.Errorf("Quantize 0.25 = %v", q)
	}
}

func TestQuantizeIdempotentProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.Abs(x) > 1e12 || math.Abs(y) > 1e12 || math.Abs(z) > 1e12 {
			return true
		}
		q := Quantize(V(x, y, z), 1)
		return Quantize(q, 1) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
