// Package geom provides the small amount of 2-D/3-D geometry the rest of
// the repository needs: vectors, axis-aligned boxes, polyline paths and a
// uniform-grid spatial index used for range queries over avatar positions.
//
// Positions follow the Second Life convention used by the paper: coordinates
// {x, y, z} are relative to a land whose default footprint is 256x256
// metres, x and y in [0, size) and z the altitude.
package geom

import "math"

// Vec is a point or displacement in land coordinates, in metres.
type Vec struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec.
func V(x, y, z float64) Vec { return Vec{X: x, Y: y, Z: z} }

// V2 constructs a ground-plane Vec with zero altitude.
func V2(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Sqrt(v.LenSq()) }

// LenSq returns the squared Euclidean norm of v.
func (v Vec) LenSq() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec) DistSq(w Vec) float64 { return v.Sub(w).LenSq() }

// DistXY returns the ground-plane (x, y) distance between v and w,
// ignoring altitude. Line-of-sight networks in the paper are effectively
// planar; the helper makes that choice explicit at call sites.
func (v Vec) DistXY(w Vec) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// XY returns v with its altitude dropped.
func (v Vec) XY() Vec { return Vec{X: v.X, Y: v.Y} }

// Norm returns the unit vector in the direction of v, or the zero vector
// when v has zero length.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to w; t=0 yields v and t=1 yields w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}

// IsZero reports whether v is exactly the origin. Second Life reports
// {0,0,0} for seated avatars, so the zero position doubles as the "seated"
// sentinel in raw traces.
func (v Vec) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// StepToward returns the position reached by moving from v toward target by
// at most step metres, and whether the target was reached.
func (v Vec) StepToward(target Vec, step float64) (Vec, bool) {
	d := v.Dist(target)
	if d <= step || d == 0 {
		return target, true
	}
	return v.Add(target.Sub(v).Scale(step / d)), false
}

// AABB is an axis-aligned bounding box; Min is inclusive, Max exclusive for
// containment on the ground plane.
type AABB struct {
	Min, Max Vec
}

// Square returns the axis-aligned box covering a size x size land footprint
// with unbounded altitude.
func Square(size float64) AABB {
	return AABB{Min: Vec{}, Max: Vec{X: size, Y: size, Z: math.Inf(1)}}
}

// Contains reports whether p lies inside the box on the ground plane.
func (b AABB) Contains(p Vec) bool {
	return p.X >= b.Min.X && p.X < b.Max.X && p.Y >= b.Min.Y && p.Y < b.Max.Y
}

// Clamp returns p moved to the nearest point inside the box (ground plane
// only; altitude is clamped to be non-negative).
func (b AABB) Clamp(p Vec) Vec {
	p.X = clamp(p.X, b.Min.X, math.Nextafter(b.Max.X, b.Min.X))
	p.Y = clamp(p.Y, b.Min.Y, math.Nextafter(b.Max.Y, b.Min.Y))
	if p.Z < 0 {
		p.Z = 0
	}
	return p
}

// Center returns the box centre on the ground plane.
func (b AABB) Center() Vec {
	return Vec{X: (b.Min.X + b.Max.X) / 2, Y: (b.Min.Y + b.Max.Y) / 2}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
