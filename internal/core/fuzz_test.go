package core

import (
	"errors"
	"testing"

	"slmob/internal/snap"
)

// fuzzSeedCheckpoints builds valid checkpoint blobs of both kinds, plus
// characteristic corruptions, so the fuzzer starts from deep in the
// decoder.
func fuzzSeedCheckpoints(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte

	a, err := NewAnalyzer("fuzz", 10, Config{Ranges: []float64{10, 80}})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range windowSnapshots(60) {
		if err := a.Observe(s); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := a.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, blob)

	wa, err := NewWindowedAnalyzer("fuzz", 10, 150, Config{Ranges: []float64{10}})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range windowSnapshots(80) {
		if err := wa.Observe(s); err != nil {
			f.Fatal(err)
		}
	}
	wblob, err := wa.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, wblob)

	// Fresh (nearly empty) analyzer.
	e, err := NewAnalyzer("empty", 10, Config{})
	if err != nil {
		f.Fatal(err)
	}
	eblob, err := e.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, eblob, blob[:len(blob)/2], []byte("SLCK"), nil)
	return seeds
}

// FuzzRestoreAnalyzer pins the decoder's robustness contract: arbitrary
// input — truncated, corrupted, version-skewed, or hostile — must either
// restore cleanly or return a typed error. It must never panic, and a
// successful restore must yield a checkpointable analyzer (state
// invariants intact).
func FuzzRestoreAnalyzer(f *testing.F) {
	for _, seed := range fuzzSeedCheckpoints(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, restore := range []func([]byte) error{
			func(b []byte) error {
				a, err := RestoreAnalyzer(b)
				if err == nil {
					// A restored analyzer must be functional: it can
					// checkpoint again and finish.
					if _, cerr := a.Checkpoint(); cerr != nil {
						t.Fatalf("restored analyzer cannot re-checkpoint: %v", cerr)
					}
					if _, ferr := a.Finish(); ferr != nil {
						t.Fatalf("restored analyzer cannot finish: %v", ferr)
					}
				}
				return err
			},
			func(b []byte) error {
				wa, err := RestoreWindowedAnalyzer(b)
				if err == nil {
					if wa.RequiresHook() {
						wa.OnWindow(func(int64, *Analysis) {})
					}
					if _, ferr := wa.Finish(); ferr != nil {
						t.Fatalf("restored windowed analyzer cannot finish: %v", ferr)
					}
				}
				return err
			},
		} {
			err := restore(data)
			if err == nil {
				continue
			}
			var se *snap.Error
			if !errors.As(err, &se) {
				t.Fatalf("restore returned untyped error %T: %v", err, err)
			}
		}
	})
}
