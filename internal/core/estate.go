package core

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"slmob/internal/fanout"
	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// RegionMeta locates one region stream within an estate: its name labels
// the per-region Analysis, its origin re-bases local positions into
// estate-global coordinates for the cross-border contact analysis, and
// its size drives the per-region zone grid (0 selects the 256 m
// standard).
type RegionMeta struct {
	Name   string
	Origin geom.Vec
	Size   float64
}

// RegionMetasFromInfos derives region placements from an estate source's
// provenance, preferring the Region identity over the land name. A
// malformed size in the metadata is a decode error.
func RegionMetasFromInfos(infos []trace.Info) ([]RegionMeta, error) {
	metas := make([]RegionMeta, len(infos))
	for i, info := range infos {
		name := info.Region
		if name == "" {
			name = info.Land
		}
		size, err := info.Size()
		if err != nil {
			return nil, fmt.Errorf("core: region %d: %w", i, err)
		}
		metas[i] = RegionMeta{Name: name, Origin: info.Origin, Size: size}
	}
	return metas, nil
}

// EstateAnalysis is the two-level result of a sharded measurement:
// one full Analysis per region plus the estate-global view — and, when
// the analysis ran windowed (Config.Window > 0), the per-window time
// series.
//
// The global Analysis is computed in estate coordinates, so its contact
// metrics stay correct for pairs that meet across a region border or
// whose contact spans a handoff — the cases no per-region analyzer can
// see whole. Its Trips likewise sessionise avatars across handoffs
// (an avatar walking into the next region keeps one session), and its
// Zones concatenate the per-region cell occupancies. Global Nets is nil:
// line-of-sight network structure (diameter, clustering) is reported per
// region, because computing it estate-wide would rebuild the full
// cross-region graph every snapshot and defeat the sharding.
type EstateAnalysis struct {
	Estate string
	Global *Analysis
	// Regions holds one Analysis per region, in the estate's index order.
	Regions []*Analysis

	// WindowSec and FirstWindow describe the window series of a windowed
	// run: Windows[i] covers [(FirstWindow+i)·WindowSec,
	// (FirstWindow+i+1)·WindowSec). All three are zero/nil for
	// whole-trace runs. Each window is itself a two-level EstateAnalysis
	// (with nil Windows); merging the series reproduces the whole-run
	// Global and Regions bit-identically.
	WindowSec   int64
	FirstWindow int64
	Windows     []*EstateAnalysis
}

// EstateAnalyzer runs a sharded incremental analysis: one full Analyzer
// per region, dispatched onto parallel workers, plus estate-global
// contact / trip / population tracking over the merged tick. Feed it
// with Consume exactly once.
type EstateAnalyzer struct {
	estate  string
	tau     int64
	cfg     Config
	workers int

	regions  []RegionMeta
	regional []*Analyzer
	// globalWS holds one persistent graph workspace per communication
	// range for the estate-global contact stages, so the cross-region
	// proximity graph is patched incrementally across ticks. Each stage
	// goroutine exclusively owns its range's workspace during Consume.
	globalWS []*graph.Workspace

	consumed bool

	// Estate-global accumulators, all keyed by the globally unique
	// avatar IDs the estate simulation (or a well-formed file set)
	// guarantees.
	snapshots     int
	firstT, lastT int64
	totalSamples  int
	maxConcurrent int
	firstSeen     map[trace.AvatarID]int64
	contacts      []*contactTracker
	trips         *tripTracker
	closed        []closedSession

	// Per-tick scratch.
	dup map[trace.AvatarID]struct{}

	// Windowed analytics (cfg.Window > 0); nil otherwise. winEmitted
	// counts windows already delivered to the live hook (feed-owned).
	win        *estateWindows
	winEmitted int
}

// globalTick is the merged, estate-coordinate view of one tick, handed
// to the per-range global contact trackers. The slices are freshly
// allocated per tick and read-only downstream, so every range tracker
// can consume the same value concurrently. fsT carries each avatar's
// first-seen time (aligned with ids) so the trackers can emit
// first-contact waits without touching the feed-owned firstSeen map.
type globalTick struct {
	t     int64
	first bool
	ids   []trace.AvatarID
	pos   []geom.Vec
	fsT   []int64
	// gids mirrors ids as raw uint64s for the incremental graph builder.
	gids []uint64
}

// NewEstateAnalyzer builds the analyzer for an estate of the given
// regions, sampled every tau seconds. Zero cfg fields select the paper's
// parameters; a zero cfg.LandSize adopts each region's own size for its
// zone grid. workers bounds how many regions are analysed concurrently:
// 0 selects min(regions, GOMAXPROCS), 1 degenerates to sequential
// per-region analysis.
func NewEstateAnalyzer(estate string, regions []RegionMeta, tau int64, cfg Config, workers int) (*EstateAnalyzer, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("core: estate %q has no regions", estate)
	}
	perRegionSize := cfg.LandSize == 0
	base := cfg.withDefaults(tau)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(regions) {
		workers = len(regions)
	}
	ea := &EstateAnalyzer{
		estate:    estate,
		tau:       tau,
		cfg:       base,
		workers:   workers,
		regions:   regions,
		firstSeen: make(map[trace.AvatarID]int64),
		dup:       make(map[trace.AvatarID]struct{}),
	}
	ea.trips = newTripTracker(base.MoveEps, base.SessionGap, &ea.closed)
	for _, rm := range regions {
		rc := base
		if perRegionSize && rm.Size > 0 {
			rc.LandSize = rm.Size
		}
		a, err := NewAnalyzer(rm.Name, tau, rc)
		if err != nil {
			return nil, err
		}
		ea.regional = append(ea.regional, a)
	}
	// NewAnalyzer above has already vetted tau and the ranges.
	for _, r := range base.Ranges {
		ct := newContactTracker(tau)
		ct.bind(newContactSet(r, tau))
		ea.contacts = append(ea.contacts, ct)
		ea.globalWS = append(ea.globalWS, graph.NewWorkspace())
	}
	if base.Window > 0 {
		ea.initWindows()
	}
	return ea, nil
}

// observeTick folds one estate tick into the cheap global accumulators —
// merged population counts, first appearances, cross-region trip
// sessionisation — and assembles the estate-coordinate view handed to
// the per-range contact trackers running on their own pipeline stages.
func (ea *EstateAnalyzer) observeTick(tick trace.EstateTick) (globalTick, error) {
	if len(tick.Regions) != len(ea.regions) {
		return globalTick{}, fmt.Errorf("core: tick has %d regions, want %d", len(tick.Regions), len(ea.regions))
	}
	t := tick.T
	if ea.snapshots > 0 && t <= ea.lastT {
		return globalTick{}, fmt.Errorf("core: invalid estate stream: tick at t=%d not after t=%d", t, ea.lastT)
	}
	if ea.snapshots == 0 {
		ea.firstT = t
	}
	ea.lastT = t
	ea.snapshots++

	var fw *feedSink
	if ea.win != nil {
		// Bounding the window gap here covers every stage: all of them
		// (regional windowed analyzers, range trackers) see exactly the
		// ticks the feed has validated.
		if k := t / ea.win.w; ea.win.feedStarted && k-ea.win.feedIdx > maxWindowGap {
			return globalTick{}, fmt.Errorf("core: tick at t=%d skips %d windows (max %d) — corrupt timestamp?",
				t, k-ea.win.feedIdx, maxWindowGap)
		}
		fw = ea.win.feedRollover(t, ea.trips)
		if fw.snapshots == 0 {
			fw.start = t
		}
		fw.end = t
		fw.snapshots++
	}

	clear(ea.dup)
	gt := globalTick{t: t, first: t == ea.firstT}
	n := 0
	for ri, snap := range tick.Regions {
		if snap.T != t {
			return globalTick{}, fmt.Errorf("core: invalid estate stream: region %d at t=%d in tick t=%d", ri, snap.T, t)
		}
		origin := ea.regions[ri].Origin
		for _, s := range snap.Samples {
			if _, dup := ea.dup[s.ID]; dup {
				return globalTick{}, fmt.Errorf("core: invalid estate stream: avatar %d in two regions at t=%d", s.ID, t)
			}
			ea.dup[s.ID] = struct{}{}
			n++
			fs, ok := ea.firstSeen[s.ID]
			if !ok {
				fs = t
				ea.firstSeen[s.ID] = t
				if fw != nil {
					fw.newUsers++
				}
			}
			// The {0,0,0} sitting sentinel is a local coordinate: repair
			// before re-basing into estate coordinates.
			seated := s.Seated || (ea.cfg.TreatZeroAsSeated && s.Pos.IsZero())
			gpos := s.Pos.Add(origin)
			ea.trips.observe(s.ID, gpos, seated, t)
			if seated {
				continue
			}
			gt.ids = append(gt.ids, s.ID)
			gt.pos = append(gt.pos, gpos)
			gt.fsT = append(gt.fsT, fs)
			gt.gids = append(gt.gids, uint64(s.ID))
		}
	}
	ea.totalSamples += n
	if n > ea.maxConcurrent {
		ea.maxConcurrent = n
	}
	if fw != nil {
		fw.totalSamples += n
		if n > fw.maxConcurrent {
			fw.maxConcurrent = n
		}
	}
	return gt, nil
}

// regionSnap is one region's share of a tick, queued to its worker.
type regionSnap struct {
	region int
	snap   trace.Snapshot
}

// Consume drains the estate source and returns the completed two-level
// analysis. The pipeline has three kinds of stages, all overlapping:
// the feed (caller's goroutine) validates ticks and keeps the cheap
// global accumulators; region streams are dispatched round-robin onto
// the configured workers (region i belongs to worker i mod workers, so
// each region's snapshots stay ordered); and every communication range's
// estate-global contact tracker runs on its own stage, consuming the
// merged estate-coordinate tick. It stops on the first error; a
// cancelled context surfaces as ctx.Err().
func (ea *EstateAnalyzer) Consume(ctx context.Context, es trace.EstateSource) (*EstateAnalysis, error) {
	if ea.consumed {
		return nil, fmt.Errorf("core: estate Consume called twice")
	}
	ea.consumed = true
	// Error and cancellation exits below return before finish(), so the
	// regional analyzers' Finish never runs; wind their range-fan workers
	// down here or they would leak for the life of the process. By the
	// time any return executes, closeAll+<-done has drained every stage,
	// so no regional Observe is in flight. stopFan is idempotent — the
	// success path has already stopped the fans via Finish.
	defer func() {
		for _, a := range ea.regional {
			a.stopFan()
		}
	}()

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chans := make([]chan regionSnap, ea.workers)
	for w := range chans {
		chans[w] = make(chan regionSnap, 64)
	}
	globalChans := make([]chan globalTick, len(ea.contacts))
	for i := range globalChans {
		globalChans[i] = make(chan globalTick, 64)
	}
	closeAll := func() {
		for _, ch := range chans {
			close(ch)
		}
		for _, ch := range globalChans {
			close(ch)
		}
	}
	jobs := ea.workers + len(globalChans)
	done := make(chan error, 1)
	go func() {
		_, err := fanout.Run(wctx, jobs, jobs,
			func(ctx context.Context, j int) (struct{}, error) {
				if j >= ea.workers {
					// Global contact-tracker stage for one range, with its
					// own persistent graph workspace (stages run
					// concurrently, so workspaces cannot be shared; keeping
					// them on the analyzer lets WorkspaceStats report them
					// after the run).
					ri := j - ea.workers
					ws := ea.globalWS[ri]
					for {
						select {
						case gt, ok := <-globalChans[ri]:
							if !ok {
								return struct{}{}, nil
							}
							ea.observeGlobalRange(ri, ws, gt)
						case <-ctx.Done():
							return struct{}{}, ctx.Err()
						}
					}
				}
				// Region-analyzer stage.
				for {
					select {
					case m, ok := <-chans[j]:
						if !ok {
							return struct{}{}, nil
						}
						if err := ea.observeRegion(m.region, m.snap); err != nil {
							return struct{}{}, fmt.Errorf("region %q: %w", ea.regions[m.region].Name, err)
						}
					case <-ctx.Done():
						return struct{}{}, ctx.Err()
					}
				}
			})
		// A stage failure cancels only fanout's child context; cancel the
		// feed's context too so a mid-send feed unblocks instead of
		// filling a channel no stage drains anymore.
		cancel()
		done <- err
	}()

	fail := func(err error) (*EstateAnalysis, error) {
		closeAll()
		cancel()
		<-done // wait the stages out; the feed error is the root cause
		return nil, err
	}
	for {
		tick, err := es.NextTick(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		gt, err := ea.observeTick(tick)
		if err != nil {
			return fail(err)
		}
		stalled := false
		for i, snap := range tick.Regions {
			select {
			case chans[i%ea.workers] <- regionSnap{region: i, snap: snap}:
			case <-wctx.Done():
				stalled = true
			}
			if stalled {
				break
			}
		}
		for i := range globalChans {
			if stalled {
				break
			}
			select {
			case globalChans[i] <- gt:
			case <-wctx.Done():
				stalled = true
			}
		}
		if stalled {
			closeAll()
			if werr := <-done; werr != nil {
				return nil, werr
			}
			return nil, wctx.Err()
		}
		ea.emitReadyWindows()
	}
	closeAll()
	if err := <-done; err != nil {
		return nil, err
	}
	return ea.finish()
}

// observeRegion advances one region's analyzer — windowed when the
// estate runs windowed — on its worker goroutine.
func (ea *EstateAnalyzer) observeRegion(i int, snap trace.Snapshot) error {
	if ea.win != nil {
		return ea.win.regionW[i].Observe(snap)
	}
	return ea.regional[i].Observe(snap)
}

// observeGlobalRange advances one range's estate-global contact tracker
// on its stage goroutine, rolling its window sink when the tick crosses
// a window boundary.
func (ea *EstateAnalyzer) observeGlobalRange(i int, ws *graph.Workspace, gt globalTick) {
	ct := ea.contacts[i]
	if w := ea.win; w != nil {
		k := gt.t / w.w
		if !w.rangeStarted[i] {
			w.rangeStarted[i] = true
			w.rangeIdx[i] = k
		}
		for w.rangeIdx[i] < k {
			done := ct.cs
			w.mu.Lock()
			w.rangeDone[i] = append(w.rangeDone[i], done)
			w.mu.Unlock()
			ct.bind(newContactSet(done.Range, ea.tau))
			w.rangeIdx[i]++
		}
	}
	var g *graph.Graph
	if ea.cfg.DisableIncremental {
		g = ws.FromPositions(gt.pos, ea.cfg.Ranges[i])
	} else {
		g = ws.ApplyPositions(gt.gids, gt.pos, ea.cfg.Ranges[i])
	}
	ct.observe(gt.ids, gt.fsT, g, gt.t, gt.first)
}

// WorkspaceStats sums the incremental-engine counters across the whole
// estate: every regional analyzer's per-range workspaces plus the
// estate-global contact stages' workspaces. Call it after Consume has
// returned — during the run the workspaces belong to their stage
// goroutines.
func (ea *EstateAnalyzer) WorkspaceStats() graph.WorkspaceStats {
	var st graph.WorkspaceStats
	for _, a := range ea.regional {
		st.Add(a.WorkspaceStats())
	}
	for _, ws := range ea.globalWS {
		st.Add(ws.Stats())
	}
	return st
}

// buildGlobalSummary assembles the estate-global summary from the whole
// feed counters.
func (ea *EstateAnalyzer) buildGlobalSummary() trace.Summary {
	sum := trace.Summary{
		Land:          ea.estate,
		Snapshots:     ea.snapshots,
		Unique:        len(ea.firstSeen),
		MaxConcurrent: ea.maxConcurrent,
		TotalSamples:  ea.totalSamples,
	}
	if ea.snapshots >= 2 {
		sum.DurationSec = ea.lastT - ea.firstT
	}
	if ea.snapshots > 0 {
		sum.MeanConcurrent = float64(ea.totalSamples) / float64(ea.snapshots)
	}
	return sum
}

// finish completes every region analyzer and assembles the merged
// estate-global Analysis (and, in a windowed run, the window series).
func (ea *EstateAnalyzer) finish() (*EstateAnalysis, error) {
	if ea.win != nil {
		return ea.finishWindowed()
	}
	res := &EstateAnalysis{
		Estate:  ea.estate,
		Regions: make([]*Analysis, len(ea.regional)),
	}
	for i, a := range ea.regional {
		an, err := a.Finish()
		if err != nil {
			return nil, err
		}
		res.Regions[i] = an
	}

	global := &Analysis{
		Land:     ea.estate,
		Summary:  ea.buildGlobalSummary(),
		Contacts: make(map[float64]*ContactSet, len(ea.cfg.Ranges)),
	}
	if ea.snapshots > 0 {
		global.Start, global.End = ea.firstT, ea.lastT
	}
	for i, r := range ea.cfg.Ranges {
		global.Contacts[r] = ea.contacts[i].finish(len(ea.firstSeen))
	}
	global.Zones = stats.NewWeighted()
	for _, ra := range res.Regions {
		global.Zones.Merge(ra.Zones)
	}
	ea.trips.closeAll()
	global.Trips = buildTripStats(ea.closed, nil)
	res.Global = global
	return res, nil
}
