package core

import (
	"context"
	"math"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// TestWithDefaultsSessionGap is the regression test for the documented
// "0 selects 2τ" default: it used to be applied only deep inside
// Trace.Sessions, never by withDefaults itself.
func TestWithDefaultsSessionGap(t *testing.T) {
	cfg := Config{}.withDefaults(10)
	if cfg.SessionGap != 20 {
		t.Errorf("SessionGap default = %d, want 2τ = 20", cfg.SessionGap)
	}
	cfg = Config{SessionGap: 45}.withDefaults(10)
	if cfg.SessionGap != 45 {
		t.Errorf("explicit SessionGap overridden to %d", cfg.SessionGap)
	}
	cfg = Config{}.withDefaults(30)
	if cfg.SessionGap != 60 {
		t.Errorf("SessionGap default = %d for τ=30, want 60", cfg.SessionGap)
	}
	if cfg.LandSize != 256 {
		t.Errorf("LandSize default = %v, want 256", cfg.LandSize)
	}
	// A negative MoveEps must clamp like the batch Trips path does, or the
	// streaming analyzer diverges from core.Analyze.
	if cfg := (Config{MoveEps: -1}).withDefaults(10); cfg.MoveEps != 0.5 {
		t.Errorf("negative MoveEps = %v after defaults, want 0.5", cfg.MoveEps)
	}
}

// sessionGapTrace has one avatar absent for exactly 2τ (no split at the
// default gap) and another absent for 3τ (split).
func sessionGapTrace() *trace.Trace {
	tr := trace.New("gap", 10)
	add := func(T int64, ids ...trace.AvatarID) {
		s := trace.Snapshot{T: T}
		for _, id := range ids {
			s.Samples = append(s.Samples, trace.Sample{ID: id, Pos: geom.V2(float64(id), float64(T))})
		}
		tr.Snapshots = append(tr.Snapshots, s)
	}
	add(10, 1, 2)
	add(20, 1, 2)
	// Avatar 1 misses t=30 (gap 20 = 2τ when reappearing at 40: no split);
	// avatar 2 misses t=30 and t=40 (gap 30 > 2τ: split).
	add(30)
	add(40, 1)
	add(50, 1, 2)
	add(60, 1, 2)
	return tr
}

func TestAnalyzeAppliesSessionGapDefault(t *testing.T) {
	tr := sessionGapTrace()
	an, err := Analyze(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Avatar 1: one session; avatar 2: two sessions. Three trips total.
	if got := len(an.Trips.TravelTime); got != 3 {
		t.Fatalf("sessions = %d, want 3 (default gap must be 2τ)", got)
	}
}

// streamAnalysis runs the incremental analyzer over the trace's replay
// source.
func streamAnalysis(t *testing.T, tr *trace.Trace, cfg Config) *Analysis {
	t.Helper()
	a, err := NewAnalyzer(tr.Land, tr.Tau, cfg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := a.Consume(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// assertAnalysisEquivalent asserts the streaming/batch parity contract.
func assertAnalysisEquivalent(t *testing.T, got, want *Analysis) {
	t.Helper()
	for _, d := range DiffAnalyses(got, want) {
		t.Error(d)
	}
}

// syntheticTrace exercises every analyzer code path: contacts starting,
// breaking and resuming (ICT), left/right censoring, seated samples, the
// {0,0,0} quirk, session splits, and an empty snapshot.
func syntheticTrace() *trace.Trace {
	tr := trace.New("synthetic", 10)
	snaps := []trace.Snapshot{
		{T: 10, Samples: []trace.Sample{
			{ID: 1, Pos: geom.V2(10, 10)},
			{ID: 2, Pos: geom.V2(15, 10)}, // in contact with 1 from the start: left-censored
			{ID: 3, Pos: geom.V2(200, 200)},
		}},
		{T: 20, Samples: []trace.Sample{
			{ID: 1, Pos: geom.V2(10, 10)},
			{ID: 2, Pos: geom.V2(60, 10)}, // contact with 1 broken
			{ID: 3, Pos: geom.V2(200, 200)},
			{ID: 4, Pos: geom.V2(0, 0)}, // the seated quirk position
		}},
		{T: 30, Samples: []trace.Sample{
			{ID: 1, Pos: geom.V2(10, 10)},
			{ID: 2, Pos: geom.V2(12, 10)}, // contact resumes: ICT sample
			{ID: 4, Pos: geom.V2(30, 40), Seated: true},
		}},
		{T: 40},
		{T: 50, Samples: []trace.Sample{
			{ID: 1, Pos: geom.V2(100, 100)}, // back after 2τ: same session
			{ID: 3, Pos: geom.V2(202, 201)}, // back after 3τ: new session
			{ID: 5, Pos: geom.V2(101, 101)}, // contact with 1 open at the end: right-censored
		}},
	}
	tr.Snapshots = snaps
	return tr
}

func TestAnalyzerMatchesBatchOnSyntheticTrace(t *testing.T) {
	tr := syntheticTrace()
	for _, cfg := range []Config{
		{},
		{TreatZeroAsSeated: true},
		{Ranges: []float64{25}, ZoneSize: 32, SessionGap: 15},
	} {
		batch, err := Analyze(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream := streamAnalysis(t, tr, cfg)
		assertAnalysisEquivalent(t, stream, batch)
	}
}

func TestAnalyzerRejectsInvalidStream(t *testing.T) {
	a, err := NewAnalyzer("x", 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(trace.Snapshot{T: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(trace.Snapshot{T: 10}); err == nil {
		t.Error("non-increasing snapshot time accepted")
	}
	if err := a.Observe(trace.Snapshot{T: 30, Samples: []trace.Sample{{ID: 7}, {ID: 7}}}); err == nil {
		t.Error("duplicate avatar accepted")
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Finish(); err == nil {
		t.Error("second Finish accepted")
	}
	if err := a.Observe(trace.Snapshot{T: 40}); err == nil {
		t.Error("Observe after Finish accepted")
	}
}

func TestNewAnalyzerValidates(t *testing.T) {
	if _, err := NewAnalyzer("x", 0, Config{}); err == nil {
		t.Error("zero tau accepted")
	}
	if _, err := NewAnalyzer("x", 10, Config{Ranges: []float64{-1}}); err == nil {
		t.Error("negative range accepted")
	}
	if _, err := NewAnalyzer("x", 10, Config{ZoneSize: -5}); err == nil {
		t.Error("negative zone size accepted")
	}
}

func TestAnalyzerEmptyStream(t *testing.T) {
	a, err := NewAnalyzer("empty", 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if an.Summary.Snapshots != 0 || an.Summary.Unique != 0 {
		t.Errorf("empty stream summary = %+v", an.Summary)
	}
	if an.Summary.MeanConcurrent != 0 || math.IsNaN(an.Summary.MeanConcurrent) {
		t.Errorf("MeanConcurrent = %v", an.Summary.MeanConcurrent)
	}
}
