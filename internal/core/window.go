package core

import (
	"context"
	"fmt"
	"io"

	"slmob/internal/graph"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// WindowFunc receives one completed window. k is the absolute window
// index (snapshot time / window length, so with hourly windows k mod 24
// is the hour of day). In hook mode the *Analysis is transient: it is
// only valid for the duration of the call, because its accumulators are
// recycled for the next window — retain a.Clone() if needed.
type WindowFunc func(k int64, an *Analysis)

// WindowSeries is the result of a windowed analysis: one Analysis per
// fixed window, in time order, including empty windows between the first
// and last observed snapshot. Merging the whole series with
// MergeAnalyses reproduces the whole-trace Analysis bit-identically —
// the invariant the windowed-parity gate pins.
type WindowSeries struct {
	// Land labels the series.
	Land string
	// Window is the window length in seconds.
	Window int64
	// First is the absolute index of Windows[0]: window i of the series
	// covers snapshot times [(First+i)·Window, (First+i+1)·Window).
	First int64
	// Windows holds one Analysis per window. Nil in hook mode.
	Windows []*Analysis
}

// WindowedAnalyzer rolls a snapshot stream into fixed, absolute-time
// aligned windows and emits one Analysis per window, sharing the plain
// Analyzer's state machines across windows so that nothing is lost at a
// boundary: a contact spanning three windows contributes its duration to
// the window in which it ends, a session closes where its gap is
// detected, and summing per-window events over all windows reproduces
// the whole-trace analysis exactly.
//
// Two emission modes:
//
//   - Collection (default): each completed window is deep-copied and
//     returned from Finish as a WindowSeries.
//   - Hook (OnWindow): each completed window is handed to the callback
//     as a transient value and the sink is recycled, so steady-state
//     rollover performs zero heap allocations — the live-service path.
type WindowedAnalyzer struct {
	a      *Analyzer
	window int64
	hook   WindowFunc
	// needHook marks an analyzer restored from a hook-mode checkpoint
	// whose hook has not been re-registered: driving it would silently
	// drop every window, so Observe and Finish refuse until OnWindow is
	// called.
	needHook bool

	series   *WindowSeries
	shell    *Analysis
	spare    *sink
	curIdx   int64
	started  bool
	finished bool
}

// NewWindowedAnalyzer builds a windowed analyzer over windows of the
// given length in seconds (cfg.Window is ignored in favour of the
// explicit parameter). Windows are aligned to absolute multiples of the
// length, so 3600 yields clock-aligned hourly windows.
func NewWindowedAnalyzer(land string, tau, window int64, cfg Config) (*WindowedAnalyzer, error) {
	a, err := NewAnalyzer(land, tau, cfg)
	if err != nil {
		return nil, err
	}
	return newWindowedOver(a, window)
}

// newWindowedOver wraps an existing analyzer — how the estate analyzer
// windows its per-region analyzers without re-validating their configs.
func newWindowedOver(a *Analyzer, window int64) (*WindowedAnalyzer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("core: non-positive window %d", window)
	}
	wa := &WindowedAnalyzer{
		a:      a,
		window: window,
		series: &WindowSeries{Land: a.land, Window: window},
	}
	wa.spare = a.newSink()
	return wa, nil
}

// OnWindow switches the analyzer to hook mode: every completed window is
// delivered to fn and recycled instead of being collected. Must be
// called before the first Observe (or, after a hook-mode restore,
// before resuming).
func (wa *WindowedAnalyzer) OnWindow(fn WindowFunc) {
	wa.hook = fn
	wa.needHook = false
}

// RequiresHook reports whether the analyzer was restored from a
// hook-mode checkpoint and still needs its hook re-registered with
// OnWindow before it can resume.
func (wa *WindowedAnalyzer) RequiresHook() bool { return wa.needHook }

// errNeedHook is the refusal both Observe and Finish issue for an
// orphaned hook-mode restore.
func errNeedHook() error {
	return fmt.Errorf("core: windowed analyzer was checkpointed in hook mode; re-register its hook with OnWindow before resuming")
}

// Window returns the configured window length in seconds.
func (wa *WindowedAnalyzer) Window() int64 { return wa.window }

// WorkspaceStats reports the underlying analyzer's incremental graph-build
// counters; see Analyzer.WorkspaceStats for the concurrency caveat.
func (wa *WindowedAnalyzer) WorkspaceStats() graph.WorkspaceStats {
	return wa.a.WorkspaceStats()
}

// maxWindowGap bounds how many empty windows a single snapshot may roll
// past: a corrupt or hostile timestamp (t jumping by aeons) must be a
// typed error, not an unbounded emit loop. A million windows covers any
// legitimate gap (a year of 30 s windows).
const maxWindowGap = 1 << 20

// Observe folds one snapshot into the current window, first emitting any
// windows the snapshot has moved past. Snapshot times must be
// non-negative (absolute window alignment) and strictly increasing.
func (wa *WindowedAnalyzer) Observe(snap trace.Snapshot) error {
	if wa.finished {
		return fmt.Errorf("core: Observe after Finish")
	}
	if wa.needHook {
		return errNeedHook()
	}
	if snap.T < 0 {
		return fmt.Errorf("core: negative snapshot time %d in windowed analysis", snap.T)
	}
	k := snap.T / wa.window
	if !wa.started {
		wa.started = true
		wa.curIdx = k
		wa.series.First = k
	}
	if k-wa.curIdx > maxWindowGap {
		return fmt.Errorf("core: snapshot at t=%d skips %d windows (max %d) — corrupt timestamp?",
			snap.T, k-wa.curIdx, maxWindowGap)
	}
	for wa.curIdx < k {
		wa.emit(false)
		wa.curIdx++
	}
	return wa.a.Observe(snap)
}

// emit closes the current window: it assembles the window's Analysis,
// delivers it (hook or collection), and recycles the sink. With final
// set, the end-of-stream events (right-censored contacts, open sessions,
// the never-contacted population) are sealed into the window first.
func (wa *WindowedAnalyzer) emit(final bool) {
	if final {
		wa.a.sealFinal()
	}
	old := wa.a.cur
	wa.shell = wa.a.buildAnalysis(old, wa.shell)
	if wa.hook != nil {
		wa.hook(wa.curIdx, wa.shell)
	} else {
		wa.series.Windows = append(wa.series.Windows, wa.shell.Clone())
	}
	if final {
		return
	}
	next := wa.spare
	next.reset()
	wa.a.bindSink(next)
	wa.spare = old
}

// Finish seals the last window and returns the series. In hook mode the
// final window is delivered to the callback and Windows stays nil. An
// empty stream yields one empty window (at index 0), so the merged
// series always exists and matches the plain analyzer's empty result.
func (wa *WindowedAnalyzer) Finish() (*WindowSeries, error) {
	if wa.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	if wa.needHook {
		return nil, errNeedHook()
	}
	wa.finished = true
	wa.a.finished = true
	wa.a.stopFan()
	wa.emit(true)
	return wa.series, nil
}

// Consume drains a snapshot source and finishes the series: the one-call
// windowed pipeline. After a checkpoint restore, snapshots at or before
// the checkpointed time are skipped.
func (wa *WindowedAnalyzer) Consume(ctx context.Context, src trace.Source) (*WindowSeries, error) {
	return wa.ConsumeWith(ctx, src, nil)
}

// ConsumeWith mirrors Analyzer.ConsumeWith: a drain with a
// between-snapshots callback, range-fan workers wound down on every
// exit path.
func (wa *WindowedAnalyzer) ConsumeWith(ctx context.Context, src trace.Source, after func(t int64) error) (*WindowSeries, error) {
	defer wa.a.stopFan()
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return wa.Finish()
		}
		if err != nil {
			return nil, err
		}
		if wa.a.resuming && snap.T <= wa.a.resumeFrom {
			continue
		}
		if err := wa.Observe(snap); err != nil {
			return nil, err
		}
		if after != nil {
			if err := after(snap.T); err != nil {
				return nil, err
			}
		}
	}
}

// MergeAnalyses folds a time-ordered sequence of window analyses into
// one — the whole-trace Analysis, reproduced bit-identically when the
// parts are the complete window series of a single stream (the merge
// parity gate pins this). The parts must share the land and range set;
// clustering coefficients are concatenated in part order, so parts must
// be passed in time order.
//
// The merge is also what lets shards combine order-independent metrics
// without a shared accumulator: every distribution is a multiset, every
// counter an event count, and the summary recomputes its mean from the
// exact integer operands.
func MergeAnalyses(parts []*Analysis) (*Analysis, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no analyses to merge")
	}
	first := parts[0]
	out := &Analysis{
		Land:     first.Land,
		Contacts: make(map[float64]*ContactSet, len(first.Contacts)),
		Nets:     make(map[float64]*NetMetrics, len(first.Nets)),
		Zones:    stats.NewWeighted(),
		Trips:    &TripStats{},
	}
	for r, cs := range first.Contacts {
		out.Contacts[r] = newContactSet(cs.Range, cs.Tau)
	}
	for r, nm := range first.Nets {
		out.Nets[r] = newNetMetrics(nm.Range)
	}
	var sess []closedSession
	startSet := false
	for i, p := range parts {
		if p.Land != first.Land {
			return nil, fmt.Errorf("core: cannot merge analyses of %q and %q", first.Land, p.Land)
		}
		if len(p.Contacts) != len(first.Contacts) || len(p.Nets) != len(first.Nets) {
			return nil, fmt.Errorf("core: part %d has a different range set", i)
		}
		out.Summary.Snapshots += p.Summary.Snapshots
		out.Summary.TotalSamples += p.Summary.TotalSamples
		out.Summary.Unique += p.Summary.Unique
		if p.Summary.MaxConcurrent > out.Summary.MaxConcurrent {
			out.Summary.MaxConcurrent = p.Summary.MaxConcurrent
		}
		if p.Summary.Snapshots > 0 {
			if !startSet || p.Start < out.Start {
				out.Start = p.Start
			}
			if !startSet || p.End > out.End {
				out.End = p.End
			}
			startSet = true
		}
		for r, cs := range p.Contacts {
			dst, ok := out.Contacts[r]
			if !ok {
				return nil, fmt.Errorf("core: part %d adds contact range %v", i, r)
			}
			dst.mergeFrom(cs)
		}
		for r, nm := range p.Nets {
			dst, ok := out.Nets[r]
			if !ok {
				return nil, fmt.Errorf("core: part %d adds net range %v", i, r)
			}
			dst.mergeFrom(nm)
		}
		out.Zones.Merge(p.Zones)
		if p.Trips != nil {
			sess = append(sess, p.Trips.sess...)
		}
	}
	out.Summary.Land = first.Land
	if out.Summary.Snapshots >= 2 {
		out.Summary.DurationSec = out.End - out.Start
	}
	if out.Summary.Snapshots > 0 {
		out.Summary.MeanConcurrent = float64(out.Summary.TotalSamples) / float64(out.Summary.Snapshots)
	}
	out.Trips = buildTripStats(sess, out.Trips)
	return out, nil
}

// Merge folds the whole series into the whole-trace Analysis.
func (ws *WindowSeries) Merge() (*Analysis, error) {
	return MergeAnalyses(ws.Windows)
}
