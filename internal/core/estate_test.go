package core

import (
	"context"
	"io"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// scriptedEstate replays hand-built ticks as an EstateSource.
type scriptedEstate struct {
	infos []trace.Info
	ticks []trace.EstateTick
	i     int
}

func (s *scriptedEstate) Regions() []trace.Info { return s.infos }

func (s *scriptedEstate) NextTick(ctx context.Context) (trace.EstateTick, error) {
	if err := ctx.Err(); err != nil {
		return trace.EstateTick{}, err
	}
	if s.i >= len(s.ticks) {
		return trace.EstateTick{}, io.EOF
	}
	tick := s.ticks[s.i]
	s.i++
	return tick, nil
}

// twoRegionMetas places two 256 m regions side by side.
func twoRegionMetas() []RegionMeta {
	return []RegionMeta{
		{Name: "west", Origin: geom.V2(0, 0), Size: 256},
		{Name: "east", Origin: geom.V2(256, 0), Size: 256},
	}
}

// tick builds one estate tick from per-region sample lists.
func tick(t int64, west, east []trace.Sample) trace.EstateTick {
	return trace.EstateTick{T: t, Regions: []trace.Snapshot{
		{T: t, Samples: west},
		{T: t, Samples: east},
	}}
}

// TestBorderContactSpansHandoff is the acceptance test for estate-global
// contact correctness: avatar 1 walks up to the border of the west
// region, meets avatar 2 standing just inside the east region, and is
// then handed off mid-contact. The global analysis must count one
// contact covering the whole encounter; the per-region view of the east
// region — which only sees avatar 1 after the handoff — splits it.
func TestBorderContactSpansHandoff(t *testing.T) {
	a1 := func(pos geom.Vec) trace.Sample { return trace.Sample{ID: 1, Pos: pos} }
	a2 := trace.Sample{ID: 2, Pos: geom.V2(4, 100)} // global x = 260
	src := &scriptedEstate{
		infos: []trace.Info{{Land: "west", Region: "west", Tau: 10}, {Land: "east", Region: "east", Origin: geom.V2(256, 0), Tau: 10}},
		ticks: []trace.EstateTick{
			// Approaching: global distance 64, out of Bluetooth range.
			tick(10, []trace.Sample{a1(geom.V2(200, 100))}, []trace.Sample{a2}),
			// At the border: global distance 10 — contact starts.
			tick(20, []trace.Sample{a1(geom.V2(250, 100))}, []trace.Sample{a2}),
			// Handed off: avatar 1 now reports from the east region.
			tick(30, nil, []trace.Sample{a1(geom.V2(2, 100)), a2}),
			tick(40, nil, []trace.Sample{a1(geom.V2(3, 100)), a2}),
			tick(50, nil, []trace.Sample{a1(geom.V2(6, 100)), a2}),
			// Walked away: contact over.
			tick(60, nil, []trace.Sample{a1(geom.V2(100, 100)), a2}),
			tick(70, nil, []trace.Sample{a1(geom.V2(100, 100)), a2}),
		},
	}
	ea, err := NewEstateAnalyzer("pair", twoRegionMetas(), 10, Config{Ranges: []float64{10}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ea.Consume(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	g := res.Global.Contacts[10]
	if g.Pairs != 1 || g.Censored != 0 {
		t.Fatalf("global pairs/censored = %d/%d, want 1/0", g.Pairs, g.Censored)
	}
	if g.CT.N() != 1 || g.CT.Min() != 40 {
		t.Fatalf("global CT = %v, want one contact of 40 s (t=20..50 + tau)", g.CT.Values())
	}
	// The per-region east analyzer only sees the post-handoff tail.
	east := res.Regions[1].Contacts[10]
	if east.CT.N() != 1 || east.CT.Min() != 30 {
		t.Fatalf("east region CT = %v, want the split 30 s tail", east.CT.Values())
	}
	if west := res.Regions[0].Contacts[10]; west.CT.N() != 0 || west.Pairs != 0 {
		t.Fatalf("west region saw a contact: %+v", west)
	}
	// The global session of avatar 1 spans the handoff: one trip, not two.
	if n := len(res.Global.Trips.TravelTime); n != 2 {
		t.Fatalf("global trips = %d sessions, want 2 (one per avatar)", n)
	}
}

// TestEstateAnalyzerRejectsDuplicateAvatars: an avatar reported by two
// regions in one tick violates the estate invariant and must error.
func TestEstateAnalyzerRejectsDuplicateAvatars(t *testing.T) {
	s := trace.Sample{ID: 7, Pos: geom.V2(10, 10)}
	src := &scriptedEstate{
		infos: []trace.Info{{Land: "west", Tau: 10}, {Land: "east", Tau: 10}},
		ticks: []trace.EstateTick{tick(10, []trace.Sample{s}, []trace.Sample{s})},
	}
	ea, err := NewEstateAnalyzer("pair", twoRegionMetas(), 10, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.Consume(context.Background(), src); err == nil {
		t.Fatal("duplicate avatar across regions not rejected")
	}
}

// estateSource builds a live world estate stream for analyzer tests.
func estateSource(t *testing.T, crossProb float64, duration int64) *world.EstateSource {
	t.Helper()
	cfg := world.EstateConfig{
		Name: "grid",
		Rows: 2,
		Cols: 2,
		Regions: []world.Scenario{
			world.ApfelLand(21), world.DanceIsland(22),
			world.IsleOfView(23), world.DanceIsland(24),
		},
		CrossProb:    crossProb,
		TeleportProb: crossProb / 4,
		Seed:         5,
		Duration:     duration,
	}
	cfg.Regions[3].Land.Name = "Dance Island B"
	es, err := world.NewEstateSource(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	return es
}

// analyzeEstate runs a fresh EstateAnalyzer over a fresh copy of the
// stream with the given worker count.
func analyzeEstate(t *testing.T, workers int) *EstateAnalysis {
	t.Helper()
	es := estateSource(t, 0.01, 1800)
	metas, err := RegionMetasFromInfos(es.Regions())
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEstateAnalyzer("grid", metas, 10, Config{}, workers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ea.Consume(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEstateWorkerInvariance: the worker count is a performance knob,
// never a results knob — sequential (1) and parallel (4) analysis of the
// same deterministic estate stream must agree region by region and
// globally.
func TestEstateWorkerInvariance(t *testing.T) {
	seq := analyzeEstate(t, 1)
	par := analyzeEstate(t, 4)
	if len(seq.Regions) != 4 || len(par.Regions) != 4 {
		t.Fatalf("region counts = %d/%d, want 4/4", len(seq.Regions), len(par.Regions))
	}
	for i := range seq.Regions {
		for _, d := range DiffAnalyses(par.Regions[i], seq.Regions[i]) {
			t.Errorf("region %d: %s", i, d)
		}
	}
	// Global Nets is intentionally nil; compare the rest via the
	// standard parity differ with empty Nets on both sides.
	for _, d := range DiffAnalyses(par.Global, seq.Global) {
		t.Errorf("global: %s", d)
	}
	if par.Global.Summary.Unique == 0 || par.Global.Contacts[BluetoothRange].CT.N() == 0 {
		t.Fatal("global analysis is empty")
	}
}
