// Package core implements the paper's measurement analysis — its primary
// contribution. Given a mobility trace (a τ-sampled sequence of avatar
// positions on one land), it computes:
//
//   - the temporal contact metrics of §3.1: contact time (CT),
//     inter-contact time (ICT), and first-contact time (FT) for a given
//     communication range r (Fig. 1);
//   - the line-of-sight network metrics of §3.2: node degree, network
//     diameter of the largest connected component, and clustering
//     coefficient (Fig. 2);
//   - zone occupation over L×L-metre cells (Fig. 3);
//   - trip metrics: travel length, effective travel time, and travel
//     (login) time (Fig. 4).
//
// All metrics are computed from the sampled trace exactly as a trace
// consumer would — not from simulator ground truth — so the pipeline works
// identically on traces produced by the in-process collector, the network
// crawler, or the sensor architecture.
//
// The integer-valued result distributions (contact metrics, degrees,
// diameters, zone occupancy) are held as weighted frequency accumulators
// (stats.Weighted): memory is O(distinct values) rather than O(samples),
// and every ECDF, quantile, and figure they yield is bit-identical to the
// expanded multiset's.
package core

import (
	"fmt"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// pairKey identifies an unordered avatar pair, normalised A < B.
type pairKey struct {
	A, B trace.AvatarID
}

func makePair(a, b trace.AvatarID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{A: a, B: b}
}

// ContactSet is the result of contact extraction at one communication
// range, following the methodology of Chaintreau et al. that the paper
// adopts: censored intervals are counted but excluded from the
// distributions.
type ContactSet struct {
	// Range is the communication range r in metres.
	Range float64 //lint:allow acc construction-time identity; Reset preserves it and mergeFrom requires equal ranges
	// Tau is the trace's sampling period.
	Tau int64 //lint:allow acc construction-time identity; Reset preserves it and mergeFrom requires equal taus
	// CT holds the distribution of completed contact durations in seconds.
	CT *stats.Weighted
	// ICT holds the distribution of inter-contact gaps in seconds.
	ICT *stats.Weighted
	// FT holds the distribution of per-user first-contact waiting times in
	// seconds (the wait from a user's first appearance to their first
	// neighbour ever).
	FT *stats.Weighted
	// Censored counts contact intervals dropped because they were in
	// progress at a trace boundary.
	Censored int
	// NeverContacted counts users who never saw a neighbour at this range.
	NeverContacted int
	// Pairs counts distinct pairs that had at least one contact.
	Pairs int
}

// newContactSet returns an empty ContactSet with initialised
// distributions.
func newContactSet(r float64, tau int64) *ContactSet {
	return &ContactSet{
		Range: r,
		Tau:   tau,
		CT:    stats.NewWeighted(),
		ICT:   stats.NewWeighted(),
		FT:    stats.NewWeighted(),
	}
}

// Reset empties the accumulator while keeping its identity (Range, Tau)
// and every internal allocation — the resettable leg of the Accumulator
// contract, used to recycle window sinks.
func (cs *ContactSet) Reset() {
	cs.CT.Reset()
	cs.ICT.Reset()
	cs.FT.Reset()
	cs.Censored = 0
	cs.NeverContacted = 0
	cs.Pairs = 0
}

// mergeFrom folds another window's events into cs. Distributions are
// multisets and counters are event counts, so merging windows in any
// order reproduces the whole-trace ContactSet exactly.
func (cs *ContactSet) mergeFrom(o *ContactSet) {
	cs.CT.Merge(o.CT)
	cs.ICT.Merge(o.ICT)
	cs.FT.Merge(o.FT)
	cs.Censored += o.Censored
	cs.NeverContacted += o.NeverContacted
	cs.Pairs += o.Pairs
}

// Clone returns an independent deep copy.
func (cs *ContactSet) Clone() *ContactSet {
	out := newContactSet(cs.Range, cs.Tau)
	out.mergeFrom(cs)
	return out
}

// ExtractContacts computes the ContactSet of a trace at range r. Seated
// samples are excluded: a seated avatar reports no usable position.
//
// A contact covering exactly one snapshot has duration tau (the pair was
// within range for at least an instant and at most 2τ; τ is the unbiased
// choice and matches the paper's 10-second granularity floor). A contact
// seen on snapshots [s, e] has duration e - s + tau. The inter-contact
// time between a contact ending at e and the next starting at s' is
// s' - e.
//
// The batch path drives exactly the streaming contactTracker over a
// workspace-built proximity graph per snapshot, so batch and streaming
// results agree by construction.
func ExtractContacts(tr *trace.Trace, r float64) (*ContactSet, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: non-positive range %v", r)
	}
	if tr.Tau <= 0 {
		return nil, fmt.Errorf("core: trace has non-positive tau")
	}
	ct := newContactTracker(tr.Tau)
	ct.bind(newContactSet(r, tr.Tau))
	ws := graph.NewWorkspace()
	firstSeen := make(map[trace.AvatarID]int64)
	var firstSnapT int64
	if len(tr.Snapshots) > 0 {
		firstSnapT = tr.Snapshots[0].T
	}
	var sc snapScratch
	for _, snap := range tr.Snapshots {
		sc.fill(snap, firstSeen, false)
		g := ws.ApplyPositions(sc.gids, sc.positions, r)
		ct.observe(sc.ids, sc.fsT, g, snap.T, snap.T == firstSnapT)
	}
	return ct.finish(len(firstSeen)), nil
}

// snapScratch collects one snapshot's live (non-seated) avatars into
// reusable id/position buffers, recording first appearances on the way.
// fsT carries each live avatar's first-seen time, aligned with ids, so
// the contact tracker can emit first-contact waits at the moment they
// resolve.
type snapScratch struct {
	ids       []trace.AvatarID
	positions []geom.Vec
	fsT       []int64
	// gids mirrors ids as raw uint64s — the stable identity slice the
	// incremental graph builder (Workspace.ApplyPositions) diffs across
	// snapshots.
	gids []uint64
}

// fill resets the scratch to the snapshot's live avatars and returns the
// number of avatars first seen in this snapshot. zeroSeated additionally
// treats exact-origin positions as seated (the streaming equivalent of
// NormalizeSeated).
//
//slmob:hotpath
func (sc *snapScratch) fill(snap trace.Snapshot, firstSeen map[trace.AvatarID]int64, zeroSeated bool) (newSeen int) {
	sc.ids = sc.ids[:0]
	sc.positions = sc.positions[:0]
	sc.fsT = sc.fsT[:0]
	sc.gids = sc.gids[:0]
	for _, s := range snap.Samples {
		fs := snap.T
		if firstSeen != nil {
			if t0, ok := firstSeen[s.ID]; ok {
				fs = t0
			} else {
				firstSeen[s.ID] = snap.T
				newSeen++
			}
		}
		if s.Seated || (zeroSeated && s.Pos.IsZero()) {
			continue
		}
		sc.ids = append(sc.ids, s.ID)
		sc.positions = append(sc.positions, s.Pos)
		sc.fsT = append(sc.fsT, fs)
		sc.gids = append(sc.gids, uint64(s.ID))
	}
	return newSeen
}
