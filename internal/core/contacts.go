// Package core implements the paper's measurement analysis — its primary
// contribution. Given a mobility trace (a τ-sampled sequence of avatar
// positions on one land), it computes:
//
//   - the temporal contact metrics of §3.1: contact time (CT),
//     inter-contact time (ICT), and first-contact time (FT) for a given
//     communication range r (Fig. 1);
//   - the line-of-sight network metrics of §3.2: node degree, network
//     diameter of the largest connected component, and clustering
//     coefficient (Fig. 2);
//   - zone occupation over L×L-metre cells (Fig. 3);
//   - trip metrics: travel length, effective travel time, and travel
//     (login) time (Fig. 4).
//
// All metrics are computed from the sampled trace exactly as a trace
// consumer would — not from simulator ground truth — so the pipeline works
// identically on traces produced by the in-process collector, the network
// crawler, or the sensor architecture.
package core

import (
	"fmt"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// pairKey identifies an unordered avatar pair, normalised A < B.
type pairKey struct {
	A, B trace.AvatarID
}

func makePair(a, b trace.AvatarID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{A: a, B: b}
}

// pairState tracks an ongoing or past contact between one pair.
type pairState struct {
	// inContact marks a contact in progress as of the previous snapshot.
	inContact bool
	// start is the first snapshot time of the ongoing contact.
	start int64
	// lastSeen is the latest snapshot time at which the pair was in range.
	lastSeen int64
	// leftCensored marks a contact already in progress at the first trace
	// snapshot, whose true start is unknown.
	leftCensored bool
	// lastEnd is the end time of the pair's previous completed contact,
	// used to emit inter-contact times; valid when hasPrev.
	lastEnd int64
	hasPrev bool
}

// ContactSet is the result of contact extraction at one communication
// range, following the methodology of Chaintreau et al. that the paper
// adopts: censored intervals are counted but excluded from the
// distributions.
type ContactSet struct {
	// Range is the communication range r in metres.
	Range float64
	// Tau is the trace's sampling period.
	Tau int64
	// CT holds completed contact durations in seconds.
	CT []float64
	// ICT holds inter-contact gaps in seconds.
	ICT []float64
	// FT holds per-user first-contact waiting times in seconds (the wait
	// from a user's first appearance to their first neighbour ever).
	FT []float64
	// Censored counts contact intervals dropped because they were in
	// progress at a trace boundary.
	Censored int
	// NeverContacted counts users who never saw a neighbour at this range.
	NeverContacted int
	// Pairs counts distinct pairs that had at least one contact.
	Pairs int
}

// ExtractContacts computes the ContactSet of a trace at range r. Seated
// samples are excluded: a seated avatar reports no usable position.
//
// A contact covering exactly one snapshot has duration tau (the pair was
// within range for at least an instant and at most 2τ; τ is the unbiased
// choice and matches the paper's 10-second granularity floor). A contact
// seen on snapshots [s, e] has duration e - s + tau. The inter-contact
// time between a contact ending at e and the next starting at s' is
// s' - e.
func ExtractContacts(tr *trace.Trace, r float64) (*ContactSet, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: non-positive range %v", r)
	}
	if tr.Tau <= 0 {
		return nil, fmt.Errorf("core: trace has non-positive tau")
	}
	cs := &ContactSet{Range: r, Tau: tr.Tau}
	pairs := make(map[pairKey]*pairState)
	firstSeen := make(map[trace.AvatarID]int64)
	firstContact := make(map[trace.AvatarID]int64)

	inContactNow := make(map[pairKey]struct{})
	var firstSnapT int64
	if len(tr.Snapshots) > 0 {
		firstSnapT = tr.Snapshots[0].T
	}

	// closeContact finalises an ongoing contact that ended at st.lastSeen.
	closeContact := func(st *pairState) {
		if st.leftCensored {
			cs.Censored++
		} else {
			cs.CT = append(cs.CT, float64(st.lastSeen-st.start+tr.Tau))
		}
		st.lastEnd = st.lastSeen
		st.hasPrev = true
		st.inContact = false
		st.leftCensored = false
	}

	var positions []geom.Vec
	var ids []trace.AvatarID
	for _, snap := range tr.Snapshots {
		// Collect live positions and note first appearances.
		positions = positions[:0]
		ids = ids[:0]
		for _, s := range snap.Samples {
			if _, ok := firstSeen[s.ID]; !ok {
				firstSeen[s.ID] = snap.T
			}
			if s.Seated {
				continue
			}
			positions = append(positions, s.Pos)
			ids = append(ids, s.ID)
		}

		// Pairs in range this snapshot.
		g := graph.FromPositions(positions, r)
		clear(inContactNow)
		for i := range ids {
			deg := g.Degree(i)
			if deg > 0 {
				if _, ok := firstContact[ids[i]]; !ok {
					firstContact[ids[i]] = snap.T
				}
			}
			for _, j := range g.Neighbors(i) {
				if int(j) > i {
					inContactNow[makePair(ids[i], ids[int(j)])] = struct{}{}
				}
			}
		}

		// Transitions: starts and continuations.
		for pk := range inContactNow {
			st := pairs[pk]
			if st == nil {
				st = &pairState{}
				pairs[pk] = st
				cs.Pairs++
			}
			if !st.inContact {
				st.inContact = true
				st.start = snap.T
				st.leftCensored = snap.T == firstSnapT
				if st.hasPrev {
					cs.ICT = append(cs.ICT, float64(snap.T-st.lastEnd))
				}
			}
			st.lastSeen = snap.T
		}
		// Transitions: ends (in contact before, not now).
		for pk, st := range pairs {
			if st.inContact {
				if _, ok := inContactNow[pk]; !ok {
					closeContact(st)
				}
			}
		}
	}

	// Contacts still open at the end of the trace are right-censored.
	for _, st := range pairs {
		if st.inContact {
			cs.Censored++
		}
	}

	// First-contact times.
	for id, t0 := range firstSeen {
		if tc, ok := firstContact[id]; ok {
			cs.FT = append(cs.FT, float64(tc-t0))
		} else {
			cs.NeverContacted++
		}
	}
	return cs, nil
}
