package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"slmob/internal/fanout"
	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// Analyzer is the incremental counterpart of Analyze: it consumes a
// snapshot stream one observation at a time and produces the same
// Analysis without ever holding the full trace. Per-snapshot state is
// O(avatars + contact pairs); result distributions for integer-valued
// metrics are weighted accumulators, so even they stay O(distinct
// values). At steady state — once every scratch buffer, pair slot, and
// distinct metric value has been seen — Observe performs zero heap
// allocations per snapshot.
//
// Internally the analyzer separates state machines from event sinks, the
// split behind the Accumulator contract: the pair table, open sessions,
// and first-seen maps carry history across the whole stream, while every
// completed metric event (a contact duration, a closed session, a
// snapshot's zone counts) lands in the current sink. The plain Analyzer
// uses one sink for the whole run; the WindowedAnalyzer swaps sinks at
// window boundaries, and Checkpoint serialises both halves.
//
// With cfg.RangeWorkers > 1 the independent per-range passes (proximity
// graph, contact tracking, line-of-sight metrics) of each snapshot fan
// out across persistent worker goroutines; the worker count never
// changes results, only wall time.
type Analyzer struct {
	land     string
	tau      int64
	cfg      Config
	finished bool

	// Stream-wide cursor state.
	started       bool
	firstT, lastT int64
	// resuming marks an analyzer restored from a checkpoint: Consume
	// skips snapshots at or before resumeFrom (the checkpointed lastT,
	// which may legitimately be 0) instead of treating the replayed
	// prefix as an ordering violation.
	resuming   bool
	resumeFrom int64

	// Per-range contact and line-of-sight state machines.
	ranges []*rangeState
	// firstSeenT is each avatar's first appearance (seated included),
	// shared by every range's first-contact computation; its key count is
	// also the unique-user tally.
	firstSeenT map[trace.AvatarID]int64

	// Zone occupation scratch.
	zoneN      int
	zoneCounts []int

	// Trip sessionisation state machine.
	trips *tripTracker

	// cur is the event sink all metric events flow into.
	cur *sink

	// Per-snapshot scratch, reused across Observe calls.
	sc  snapScratch
	dup map[trace.AvatarID]struct{}

	// Range fanout, started lazily on the first parallel Observe: a
	// persistent fanout.Pool plus the hoisted dispatch closure and its
	// snapshot-time argument, so steady-state dispatch allocates nothing.
	fan    *fanout.Pool
	fanJob func(i int)
	fanT   int64
}

// sink is one window's worth of metric events: the mergeable,
// resettable accumulator set the state machines emit into. The plain
// analyzer owns exactly one; the windowed analyzer double-buffers two.
type sink struct {
	snapshots     int
	start, end    int64
	totalSamples  int
	maxConcurrent int
	// newUsers counts avatars first seen in this sink's window; summed
	// over windows it reproduces the whole-trace unique-user count.
	newUsers int

	zones    *stats.Weighted
	contacts []*ContactSet
	nets     []*NetMetrics
	closed   []closedSession
}

// newSink allocates a fresh sink for the analyzer's configured ranges.
func (a *Analyzer) newSink() *sink {
	s := &sink{zones: stats.NewWeighted()}
	for _, r := range a.cfg.Ranges {
		s.contacts = append(s.contacts, newContactSet(r, a.tau))
		s.nets = append(s.nets, newNetMetrics(r))
	}
	return s
}

// reset recycles the sink for the next window, retaining every internal
// allocation.
func (s *sink) reset() {
	s.snapshots = 0
	s.start, s.end = 0, 0
	s.totalSamples = 0
	s.maxConcurrent = 0
	s.newUsers = 0
	s.zones.Reset()
	for _, cs := range s.contacts {
		cs.Reset()
	}
	for _, nm := range s.nets {
		nm.Reset()
	}
	s.closed = s.closed[:0]
}

// bindSink points every state machine's event emission at s.
func (a *Analyzer) bindSink(s *sink) {
	a.cur = s
	for _, rs := range a.ranges {
		rs.ct.bind(s.contacts[rs.idx])
		rs.nm = s.nets[rs.idx]
	}
	a.trips.bind(&s.closed)
}

// rangeState pairs one communication range's contact state machine with
// its dedicated graph workspace and the current sink's line-of-sight
// accumulator.
type rangeState struct {
	r   float64
	idx int
	ct  *contactTracker
	nm  *NetMetrics
	ws  *graph.Workspace
}

// sessionState is one avatar's open presence on the land.
type sessionState struct {
	login   int64
	last    int64
	length  float64
	moving  int64
	hasPrev bool
	prevPos geom.Vec
	prevT   int64
}

// closedSession is a finished session's trip metrics, attributed to the
// window in which the closure was detected; the (login, id) key restores
// the batch path's output order.
type closedSession struct {
	id       trace.AvatarID
	login    int64
	duration int64
	length   float64
	moving   int64
}

// NewAnalyzer builds an incremental analyzer for one land's snapshot
// stream sampled every tau seconds. Zero cfg fields select the paper's
// parameters, as in Analyze; cfg.LandSize zero selects the Second Life
// standard 256 m (the batch path reads it from trace metadata instead).
func NewAnalyzer(land string, tau int64, cfg Config) (*Analyzer, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("core: non-positive tau %d", tau)
	}
	cfg = cfg.withDefaults(tau)
	for _, r := range cfg.Ranges {
		if r <= 0 {
			return nil, fmt.Errorf("core: non-positive range %v", r)
		}
	}
	if cfg.ZoneSize <= 0 || cfg.LandSize <= 0 {
		return nil, fmt.Errorf("core: invalid zone parameters land=%v cell=%v", cfg.LandSize, cfg.ZoneSize)
	}
	n := int(math.Ceil(cfg.LandSize / cfg.ZoneSize))
	a := &Analyzer{
		land:       land,
		tau:        tau,
		cfg:        cfg,
		firstSeenT: make(map[trace.AvatarID]int64),
		zoneN:      n,
		zoneCounts: make([]int, n*n),
		dup:        make(map[trace.AvatarID]struct{}),
	}
	a.trips = newTripTracker(cfg.MoveEps, cfg.SessionGap, nil)
	for i, r := range cfg.Ranges {
		a.ranges = append(a.ranges, &rangeState{
			r:   r,
			idx: i,
			ct:  newContactTracker(tau),
			ws:  graph.NewWorkspace(),
		})
	}
	a.bindSink(a.newSink())
	return a, nil
}

// seated reports the sample's effective seated state, applying the
// {0,0,0} repair when configured (the streaming equivalent of
// NormalizeSeated).
func (a *Analyzer) seated(s trace.Sample) bool {
	return s.Seated || (a.cfg.TreatZeroAsSeated && s.Pos.IsZero())
}

// Observe folds one snapshot into the running analysis. Snapshots must
// arrive in strictly increasing time order with no duplicate avatars,
// the invariants Trace.Validate enforces on the batch path.
//
//slmob:hotpath
func (a *Analyzer) Observe(snap trace.Snapshot) error {
	if a.finished {
		return fmt.Errorf("core: Observe after Finish")
	}
	if a.started && snap.T <= a.lastT {
		return fmt.Errorf("core: invalid stream: snapshot at t=%d not after t=%d", snap.T, a.lastT)
	}
	clear(a.dup)
	for _, s := range snap.Samples {
		if _, ok := a.dup[s.ID]; ok {
			return fmt.Errorf("core: invalid stream: duplicate avatar %d in snapshot t=%d", s.ID, snap.T)
		}
		a.dup[s.ID] = struct{}{}
	}
	if !a.started {
		a.started = true
		a.firstT = snap.T
	}
	a.lastT = snap.T
	cur := a.cur
	if cur.snapshots == 0 {
		cur.start = snap.T
	}
	cur.end = snap.T
	cur.snapshots++
	cur.totalSamples += len(snap.Samples)
	if n := len(snap.Samples); n > cur.maxConcurrent {
		cur.maxConcurrent = n
	}

	// Live (non-seated) avatars of this snapshot, plus first appearances.
	cur.newUsers += a.sc.fill(snap, a.firstSeenT, a.cfg.TreatZeroAsSeated)

	if a.cfg.RangeWorkers > 1 && len(a.ranges) > 1 {
		a.fanObserve(snap.T)
	} else {
		for _, rs := range a.ranges {
			a.observeRange(rs, snap.T)
		}
	}
	a.observeZones()
	for _, s := range snap.Samples {
		a.trips.observe(s.ID, s.Pos, a.seated(s), snap.T)
	}
	return nil
}

// observeRange advances one range's contact state machine and appends its
// line-of-sight metrics, sharing a single workspace-built proximity graph
// between both. The workspace persists across snapshots, so by default the
// graph is patched incrementally from the previous snapshot
// (temporal-coherence path); each range owns its workspace and sees the
// same snapshot sequence regardless of the range-fan worker count, so the
// RangeWorkers invariance is preserved.
//
//slmob:hotpath
func (a *Analyzer) observeRange(rs *rangeState, t int64) {
	var g *graph.Graph
	if a.cfg.DisableIncremental {
		g = rs.ws.FromPositions(a.sc.positions, rs.r)
	} else {
		g = rs.ws.ApplyPositions(a.sc.gids, a.sc.positions, rs.r)
	}
	rs.ct.observe(a.sc.ids, a.sc.fsT, g, t, t == a.firstT)

	// Line-of-sight metrics; snapshots without users are skipped.
	if len(a.sc.positions) == 0 {
		return
	}
	rs.nm.observe(rs.ws)
}

// observeZones folds one occupancy count per cell for this snapshot into
// the weighted zone distribution.
//
//slmob:hotpath
func (a *Analyzer) observeZones() {
	for i := range a.zoneCounts {
		a.zoneCounts[i] = 0
	}
	for _, p := range a.sc.positions {
		cx := int(p.X / a.cfg.ZoneSize)
		cy := int(p.Y / a.cfg.ZoneSize)
		if cx < 0 || cy < 0 || cx >= a.zoneN || cy >= a.zoneN {
			continue // outside the modelled footprint
		}
		a.zoneCounts[cy*a.zoneN+cx]++
	}
	// Most cells of a land are empty most of the time; batch the zero
	// cells into one weighted insert and add the occupied ones singly.
	zeros := int64(0)
	zones := a.cur.zones
	for _, c := range a.zoneCounts {
		if c == 0 {
			zeros++
			continue
		}
		zones.Add(float64(c))
	}
	zones.AddN(0, zeros)
}

// fanObserve dispatches the current snapshot's ranges across the
// persistent fanout pool and blocks until every range has absorbed it.
// Pool.Run is a per-snapshot barrier, which keeps the analyzer's
// synchronous, order-dependent contract while spending multiple cores
// per snapshot: no worker is mid-range outside fanObserve, so sinks can
// be swapped safely between snapshots. Each index is claimed by exactly
// one worker per Run, so every range's state machine stays effectively
// single-goroutine; dynamic index claiming also load-balances the
// ranges, whose graph costs differ widely (r=80 vs r=10). Dispatch
// reuses the hoisted a.fanJob closure, so it allocates nothing.
func (a *Analyzer) fanObserve(t int64) {
	if a.fan == nil {
		workers := a.cfg.RangeWorkers
		if workers > len(a.ranges) {
			workers = len(a.ranges)
		}
		a.fan = fanout.NewPool(workers)
		a.fanJob = func(i int) {
			a.observeRange(a.ranges[i], a.fanT)
		}
	}
	a.fanT = t
	a.fan.Run(len(a.ranges), a.fanJob)
}

// stopFan winds down the range workers; safe to call when none run.
func (a *Analyzer) stopFan() {
	if a.fan == nil {
		return
	}
	a.fan.Close()
	a.fan = nil
}

// sealFinal emits the end-of-stream events into the current sink: open
// contacts right-censor, the never-contacted population resolves, and
// open sessions close. Only the final window receives these.
func (a *Analyzer) sealFinal() {
	for _, rs := range a.ranges {
		rs.ct.finish(len(a.firstSeenT))
	}
	a.trips.closeAll()
}

// buildAnalysis assembles an Analysis from one sink, reusing out (and
// its maps, trip slices, and session buffer) when non-nil — the
// allocation-free path behind window rollover in hook mode.
func (a *Analyzer) buildAnalysis(s *sink, out *Analysis) *Analysis {
	if out == nil {
		out = &Analysis{
			Contacts: make(map[float64]*ContactSet, len(a.cfg.Ranges)),
			Nets:     make(map[float64]*NetMetrics, len(a.cfg.Ranges)),
			Trips:    &TripStats{},
		}
	}
	out.Land = a.land
	out.Start, out.End = s.start, s.end
	out.Summary = trace.Summary{
		Land:          a.land,
		Snapshots:     s.snapshots,
		Unique:        s.newUsers,
		MaxConcurrent: s.maxConcurrent,
		TotalSamples:  s.totalSamples,
	}
	if s.snapshots >= 2 {
		out.Summary.DurationSec = s.end - s.start
	}
	if s.snapshots > 0 {
		out.Summary.MeanConcurrent = float64(s.totalSamples) / float64(s.snapshots)
	}
	for i, r := range a.cfg.Ranges {
		out.Contacts[r] = s.contacts[i]
		out.Nets[r] = s.nets[i]
	}
	out.Zones = s.zones
	out.Trips = buildTripStats(s.closed, out.Trips)
	return out
}

// WorkspaceStats sums the incremental-engine counters of every per-range
// graph workspace — how many snapshots were served incrementally, diff
// rates, and metric-cache hits. Call it between snapshots or after
// Finish: while a fanned-out Observe is in flight the workspaces are
// being written by their worker goroutines.
func (a *Analyzer) WorkspaceStats() graph.WorkspaceStats {
	var st graph.WorkspaceStats
	for _, rs := range a.ranges {
		st.Add(rs.ws.Stats())
	}
	return st
}

// Finish closes censored contacts and open sessions and returns the
// completed Analysis. The analyzer cannot be reused afterwards.
func (a *Analyzer) Finish() (*Analysis, error) {
	if a.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	a.finished = true
	a.stopFan()
	a.sealFinal()
	return a.buildAnalysis(a.cur, nil), nil
}

// Consume drains a snapshot source into the analyzer and finishes it: the
// one-call streaming pipeline. It stops on the first error; a cancelled
// context surfaces as ctx.Err() from the source. After a checkpoint
// restore, snapshots at or before the checkpointed time are skipped, so
// a source replayed from the start resumes exactly where the snapshot
// was taken.
func (a *Analyzer) Consume(ctx context.Context, src trace.Source) (*Analysis, error) {
	return a.ConsumeWith(ctx, src, nil)
}

// ConsumeWith is Consume with a callback invoked after every observed
// snapshot — between snapshots, when the analyzer is quiescent and safe
// to Checkpoint (the façade's periodic-checkpoint hook). A callback
// error aborts the drain; the range-fan workers are wound down on every
// exit path.
func (a *Analyzer) ConsumeWith(ctx context.Context, src trace.Source, after func(t int64) error) (*Analysis, error) {
	defer a.stopFan()
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return a.Finish()
		}
		if err != nil {
			return nil, err
		}
		if a.resuming && snap.T <= a.resumeFrom {
			continue
		}
		if err := a.Observe(snap); err != nil {
			return nil, err
		}
		if after != nil {
			if err := after(snap.T); err != nil {
				return nil, err
			}
		}
	}
}
