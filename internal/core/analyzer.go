package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// Analyzer is the incremental counterpart of Analyze: it consumes a
// snapshot stream one observation at a time and produces the same
// Analysis without ever holding the full trace. Per-snapshot state is
// O(avatars + contact pairs); only the result distributions themselves
// accumulate. Feed it with Observe (or drive it from a trace.Source with
// Consume), then call Finish exactly once.
//
// The distributions of the resulting Analysis hold the same samples as
// the batch path but not necessarily in the same order: both paths emit
// contact samples in Go map-iteration order. Compare them as multisets
// (see the parity tests).
type Analyzer struct {
	land     string
	tau      int64
	cfg      Config
	finished bool

	// Summary accumulators.
	snapshots     int
	firstT, lastT int64
	totalSamples  int
	maxConcurrent int

	// Per-range contact and line-of-sight state.
	ranges []*rangeState
	// firstSeenT is each avatar's first appearance (seated included),
	// shared by every range's first-contact computation; its key count is
	// also the unique-user tally.
	firstSeenT map[trace.AvatarID]int64

	// Zone occupation.
	zoneN      int
	zoneCounts []int
	zones      []float64

	// Trip sessionisation.
	trips *tripTracker

	// Per-snapshot scratch, reused across Observe calls.
	ids       []trace.AvatarID
	positions []geom.Vec
	dup       map[trace.AvatarID]struct{}
}

// rangeState pairs one communication range's contact state machine with
// its line-of-sight accumulators.
type rangeState struct {
	ct *contactTracker
	nm *NetMetrics
}

// sessionState is one avatar's open presence on the land.
type sessionState struct {
	login   int64
	last    int64
	length  float64
	moving  int64
	hasPrev bool
	prevPos geom.Vec
	prevT   int64
}

// closedSession is a finished session's trip metrics, kept until Finish
// so the output order matches the batch path (login time, then ID).
type closedSession struct {
	id       trace.AvatarID
	login    int64
	duration int64
	length   float64
	moving   int64
}

// NewAnalyzer builds an incremental analyzer for one land's snapshot
// stream sampled every tau seconds. Zero cfg fields select the paper's
// parameters, as in Analyze; cfg.LandSize zero selects the Second Life
// standard 256 m (the batch path reads it from trace metadata instead).
func NewAnalyzer(land string, tau int64, cfg Config) (*Analyzer, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("core: non-positive tau %d", tau)
	}
	cfg = cfg.withDefaults(tau)
	for _, r := range cfg.Ranges {
		if r <= 0 {
			return nil, fmt.Errorf("core: non-positive range %v", r)
		}
	}
	if cfg.ZoneSize <= 0 || cfg.LandSize <= 0 {
		return nil, fmt.Errorf("core: invalid zone parameters land=%v cell=%v", cfg.LandSize, cfg.ZoneSize)
	}
	n := int(math.Ceil(cfg.LandSize / cfg.ZoneSize))
	a := &Analyzer{
		land:       land,
		tau:        tau,
		cfg:        cfg,
		firstSeenT: make(map[trace.AvatarID]int64),
		zoneN:      n,
		zoneCounts: make([]int, n*n),
		trips:      newTripTracker(cfg.MoveEps, cfg.SessionGap),
		dup:        make(map[trace.AvatarID]struct{}),
	}
	for _, r := range cfg.Ranges {
		a.ranges = append(a.ranges, &rangeState{
			ct: newContactTracker(r, tau),
			nm: &NetMetrics{Range: r},
		})
	}
	return a, nil
}

// seated reports the sample's effective seated state, applying the
// {0,0,0} repair when configured (the streaming equivalent of
// NormalizeSeated).
func (a *Analyzer) seated(s trace.Sample) bool {
	return s.Seated || (a.cfg.TreatZeroAsSeated && s.Pos.IsZero())
}

// Observe folds one snapshot into the running analysis. Snapshots must
// arrive in strictly increasing time order with no duplicate avatars,
// the invariants Trace.Validate enforces on the batch path.
func (a *Analyzer) Observe(snap trace.Snapshot) error {
	if a.finished {
		return fmt.Errorf("core: Observe after Finish")
	}
	if a.snapshots > 0 && snap.T <= a.lastT {
		return fmt.Errorf("core: invalid stream: snapshot at t=%d not after t=%d", snap.T, a.lastT)
	}
	clear(a.dup)
	for _, s := range snap.Samples {
		if _, ok := a.dup[s.ID]; ok {
			return fmt.Errorf("core: invalid stream: duplicate avatar %d in snapshot t=%d", s.ID, snap.T)
		}
		a.dup[s.ID] = struct{}{}
	}
	if a.snapshots == 0 {
		a.firstT = snap.T
	}
	a.lastT = snap.T
	a.snapshots++
	a.totalSamples += len(snap.Samples)
	if n := len(snap.Samples); n > a.maxConcurrent {
		a.maxConcurrent = n
	}

	// Live (non-seated) avatars of this snapshot, plus first appearances.
	a.ids = a.ids[:0]
	a.positions = a.positions[:0]
	for _, s := range snap.Samples {
		if _, ok := a.firstSeenT[s.ID]; !ok {
			a.firstSeenT[s.ID] = snap.T
		}
		if a.seated(s) {
			continue
		}
		a.ids = append(a.ids, s.ID)
		a.positions = append(a.positions, s.Pos)
	}

	for i, r := range a.cfg.Ranges {
		a.observeRange(a.ranges[i], r, snap.T)
	}
	a.observeZones()
	for _, s := range snap.Samples {
		a.trips.observe(s.ID, s.Pos, a.seated(s), snap.T)
	}
	return nil
}

// observeRange advances one range's contact state machine and appends its
// line-of-sight metrics, sharing a single proximity graph between both.
func (a *Analyzer) observeRange(rs *rangeState, r float64, t int64) {
	g := graph.FromPositions(a.positions, r)
	rs.ct.observe(a.ids, g, t, t == a.firstT)

	// Line-of-sight metrics; snapshots without users are skipped.
	if len(a.positions) == 0 {
		return
	}
	for u := 0; u < g.N(); u++ {
		rs.nm.Degrees = append(rs.nm.Degrees, float64(g.Degree(u)))
	}
	rs.nm.Diameters = append(rs.nm.Diameters, float64(g.Diameter()))
	rs.nm.Clusterings = append(rs.nm.Clusterings, g.MeanClustering())
}

// observeZones appends one occupancy count per cell for this snapshot.
func (a *Analyzer) observeZones() {
	for i := range a.zoneCounts {
		a.zoneCounts[i] = 0
	}
	for _, p := range a.positions {
		cx := int(p.X / a.cfg.ZoneSize)
		cy := int(p.Y / a.cfg.ZoneSize)
		if cx < 0 || cy < 0 || cx >= a.zoneN || cy >= a.zoneN {
			continue // outside the modelled footprint
		}
		a.zoneCounts[cy*a.zoneN+cx]++
	}
	for _, c := range a.zoneCounts {
		a.zones = append(a.zones, float64(c))
	}
}

// Finish closes censored contacts and open sessions and returns the
// completed Analysis. The analyzer cannot be reused afterwards.
func (a *Analyzer) Finish() (*Analysis, error) {
	if a.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	a.finished = true

	an := &Analysis{
		Land: a.land,
		Summary: trace.Summary{
			Land:          a.land,
			Snapshots:     a.snapshots,
			Unique:        len(a.firstSeenT),
			MaxConcurrent: a.maxConcurrent,
		},
		Contacts: make(map[float64]*ContactSet, len(a.cfg.Ranges)),
		Nets:     make(map[float64]*NetMetrics, len(a.cfg.Ranges)),
		Zones:    a.zones,
	}
	if a.snapshots >= 2 {
		an.Summary.DurationSec = a.lastT - a.firstT
	}
	if a.snapshots > 0 {
		an.Summary.MeanConcurrent = float64(a.totalSamples) / float64(a.snapshots)
	}

	for i, r := range a.cfg.Ranges {
		rs := a.ranges[i]
		an.Contacts[r] = rs.ct.finish(a.firstSeenT)
		an.Nets[r] = rs.nm
	}
	an.Trips = a.trips.finish()
	return an, nil
}

// Consume drains a snapshot source into the analyzer and finishes it: the
// one-call streaming pipeline. It stops on the first error; a cancelled
// context surfaces as ctx.Err() from the source.
func (a *Analyzer) Consume(ctx context.Context, src trace.Source) (*Analysis, error) {
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return a.Finish()
		}
		if err != nil {
			return nil, err
		}
		if err := a.Observe(snap); err != nil {
			return nil, err
		}
	}
}
