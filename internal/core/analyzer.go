package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// Analyzer is the incremental counterpart of Analyze: it consumes a
// snapshot stream one observation at a time and produces the same
// Analysis without ever holding the full trace. Per-snapshot state is
// O(avatars + contact pairs); only the result distributions themselves
// accumulate. Feed it with Observe (or drive it from a trace.Source with
// Consume), then call Finish exactly once.
//
// The distributions of the resulting Analysis hold the same samples as
// the batch path but not necessarily in the same order: both paths emit
// contact samples in Go map-iteration order. Compare them as multisets
// (see the parity tests).
type Analyzer struct {
	land     string
	tau      int64
	cfg      Config
	finished bool

	// Summary accumulators.
	snapshots     int
	firstT, lastT int64
	totalSamples  int
	maxConcurrent int

	// Per-range contact and line-of-sight state.
	ranges []*rangeState
	// firstSeenT is each avatar's first appearance (seated included),
	// shared by every range's first-contact computation; its key count is
	// also the unique-user tally.
	firstSeenT map[trace.AvatarID]int64

	// Zone occupation.
	zoneN      int
	zoneCounts []int
	zones      []float64

	// Trip sessionisation.
	open   map[trace.AvatarID]*sessionState
	closed []closedSession

	// Per-snapshot scratch, reused across Observe calls.
	ids       []trace.AvatarID
	positions []geom.Vec
	dup       map[trace.AvatarID]struct{}
}

// rangeState carries one communication range's running contact state
// machine and line-of-sight accumulators.
type rangeState struct {
	// pairs holds every pair ever observed in contact (their lastEnd
	// feeds inter-contact times); active holds only the subset currently
	// in contact, so per-snapshot end detection is O(active), not
	// O(pairs ever seen).
	pairs        map[pairKey]*pairState
	active       map[pairKey]*pairState
	firstContact map[trace.AvatarID]int64
	inContactNow map[pairKey]struct{}
	cs           *ContactSet
	nm           *NetMetrics
}

// sessionState is one avatar's open presence on the land.
type sessionState struct {
	login   int64
	last    int64
	length  float64
	moving  int64
	hasPrev bool
	prevPos geom.Vec
	prevT   int64
}

// closedSession is a finished session's trip metrics, kept until Finish
// so the output order matches the batch path (login time, then ID).
type closedSession struct {
	id       trace.AvatarID
	login    int64
	duration int64
	length   float64
	moving   int64
}

// NewAnalyzer builds an incremental analyzer for one land's snapshot
// stream sampled every tau seconds. Zero cfg fields select the paper's
// parameters, as in Analyze; cfg.LandSize zero selects the Second Life
// standard 256 m (the batch path reads it from trace metadata instead).
func NewAnalyzer(land string, tau int64, cfg Config) (*Analyzer, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("core: non-positive tau %d", tau)
	}
	cfg = cfg.withDefaults(tau)
	for _, r := range cfg.Ranges {
		if r <= 0 {
			return nil, fmt.Errorf("core: non-positive range %v", r)
		}
	}
	if cfg.ZoneSize <= 0 || cfg.LandSize <= 0 {
		return nil, fmt.Errorf("core: invalid zone parameters land=%v cell=%v", cfg.LandSize, cfg.ZoneSize)
	}
	n := int(math.Ceil(cfg.LandSize / cfg.ZoneSize))
	a := &Analyzer{
		land:       land,
		tau:        tau,
		cfg:        cfg,
		firstSeenT: make(map[trace.AvatarID]int64),
		zoneN:      n,
		zoneCounts: make([]int, n*n),
		open:       make(map[trace.AvatarID]*sessionState),
		dup:        make(map[trace.AvatarID]struct{}),
	}
	for _, r := range cfg.Ranges {
		a.ranges = append(a.ranges, &rangeState{
			pairs:        make(map[pairKey]*pairState),
			active:       make(map[pairKey]*pairState),
			firstContact: make(map[trace.AvatarID]int64),
			inContactNow: make(map[pairKey]struct{}),
			cs:           &ContactSet{Range: r, Tau: tau},
			nm:           &NetMetrics{Range: r},
		})
	}
	return a, nil
}

// seated reports the sample's effective seated state, applying the
// {0,0,0} repair when configured (the streaming equivalent of
// NormalizeSeated).
func (a *Analyzer) seated(s trace.Sample) bool {
	return s.Seated || (a.cfg.TreatZeroAsSeated && s.Pos.IsZero())
}

// Observe folds one snapshot into the running analysis. Snapshots must
// arrive in strictly increasing time order with no duplicate avatars,
// the invariants Trace.Validate enforces on the batch path.
func (a *Analyzer) Observe(snap trace.Snapshot) error {
	if a.finished {
		return fmt.Errorf("core: Observe after Finish")
	}
	if a.snapshots > 0 && snap.T <= a.lastT {
		return fmt.Errorf("core: invalid stream: snapshot at t=%d not after t=%d", snap.T, a.lastT)
	}
	clear(a.dup)
	for _, s := range snap.Samples {
		if _, ok := a.dup[s.ID]; ok {
			return fmt.Errorf("core: invalid stream: duplicate avatar %d in snapshot t=%d", s.ID, snap.T)
		}
		a.dup[s.ID] = struct{}{}
	}
	if a.snapshots == 0 {
		a.firstT = snap.T
	}
	a.lastT = snap.T
	a.snapshots++
	a.totalSamples += len(snap.Samples)
	if n := len(snap.Samples); n > a.maxConcurrent {
		a.maxConcurrent = n
	}

	// Live (non-seated) avatars of this snapshot, plus first appearances.
	a.ids = a.ids[:0]
	a.positions = a.positions[:0]
	for _, s := range snap.Samples {
		if _, ok := a.firstSeenT[s.ID]; !ok {
			a.firstSeenT[s.ID] = snap.T
		}
		if a.seated(s) {
			continue
		}
		a.ids = append(a.ids, s.ID)
		a.positions = append(a.positions, s.Pos)
	}

	for i, r := range a.cfg.Ranges {
		a.observeRange(a.ranges[i], r, snap.T)
	}
	a.observeZones()
	a.observeTrips(snap)
	return nil
}

// observeRange advances one range's contact state machine and appends its
// line-of-sight metrics, sharing a single proximity graph between both.
func (a *Analyzer) observeRange(rs *rangeState, r float64, t int64) {
	g := graph.FromPositions(a.positions, r)

	// Pairs in range this snapshot, and first contacts.
	clear(rs.inContactNow)
	for i := range a.ids {
		if g.Degree(i) > 0 {
			if _, ok := rs.firstContact[a.ids[i]]; !ok {
				rs.firstContact[a.ids[i]] = t
			}
		}
		for _, j := range g.Neighbors(i) {
			if int(j) > i {
				rs.inContactNow[makePair(a.ids[i], a.ids[int(j)])] = struct{}{}
			}
		}
	}

	// Transitions: starts and continuations.
	for pk := range rs.inContactNow {
		st := rs.pairs[pk]
		if st == nil {
			st = &pairState{}
			rs.pairs[pk] = st
			rs.cs.Pairs++
		}
		if !st.inContact {
			st.inContact = true
			st.start = t
			st.leftCensored = t == a.firstT
			if st.hasPrev {
				rs.cs.ICT = append(rs.cs.ICT, float64(t-st.lastEnd))
			}
			rs.active[pk] = st
		}
		st.lastSeen = t
	}
	// Transitions: ends (in contact before, not now).
	for pk, st := range rs.active {
		if _, ok := rs.inContactNow[pk]; !ok {
			if st.leftCensored {
				rs.cs.Censored++
			} else {
				rs.cs.CT = append(rs.cs.CT, float64(st.lastSeen-st.start+a.tau))
			}
			st.lastEnd = st.lastSeen
			st.hasPrev = true
			st.inContact = false
			st.leftCensored = false
			delete(rs.active, pk)
		}
	}

	// Line-of-sight metrics; snapshots without users are skipped.
	if len(a.positions) == 0 {
		return
	}
	for u := 0; u < g.N(); u++ {
		rs.nm.Degrees = append(rs.nm.Degrees, float64(g.Degree(u)))
	}
	rs.nm.Diameters = append(rs.nm.Diameters, float64(g.Diameter()))
	rs.nm.Clusterings = append(rs.nm.Clusterings, g.MeanClustering())
}

// observeZones appends one occupancy count per cell for this snapshot.
func (a *Analyzer) observeZones() {
	for i := range a.zoneCounts {
		a.zoneCounts[i] = 0
	}
	for _, p := range a.positions {
		cx := int(p.X / a.cfg.ZoneSize)
		cy := int(p.Y / a.cfg.ZoneSize)
		if cx < 0 || cy < 0 || cx >= a.zoneN || cy >= a.zoneN {
			continue // outside the modelled footprint
		}
		a.zoneCounts[cy*a.zoneN+cx]++
	}
	for _, c := range a.zoneCounts {
		a.zones = append(a.zones, float64(c))
	}
}

// observeTrips advances the per-avatar sessionisation: an avatar absent
// longer than the session gap logs out and back in.
func (a *Analyzer) observeTrips(snap trace.Snapshot) {
	for _, s := range snap.Samples {
		ss := a.open[s.ID]
		if ss != nil && snap.T-ss.last > a.cfg.SessionGap {
			a.closeSession(s.ID, ss)
			ss = nil
		}
		if ss == nil {
			ss = &sessionState{login: snap.T}
			a.open[s.ID] = ss
		}
		ss.last = snap.T
		if a.seated(s) {
			continue
		}
		if ss.hasPrev {
			d := s.Pos.DistXY(ss.prevPos)
			ss.length += d
			if d > a.cfg.MoveEps {
				ss.moving += snap.T - ss.prevT
			}
		}
		ss.hasPrev = true
		ss.prevPos = s.Pos
		ss.prevT = snap.T
	}
}

func (a *Analyzer) closeSession(id trace.AvatarID, ss *sessionState) {
	a.closed = append(a.closed, closedSession{
		id:       id,
		login:    ss.login,
		duration: ss.last - ss.login,
		length:   ss.length,
		moving:   ss.moving,
	})
}

// Finish closes censored contacts and open sessions and returns the
// completed Analysis. The analyzer cannot be reused afterwards.
func (a *Analyzer) Finish() (*Analysis, error) {
	if a.finished {
		return nil, fmt.Errorf("core: Finish called twice")
	}
	a.finished = true

	an := &Analysis{
		Land: a.land,
		Summary: trace.Summary{
			Land:          a.land,
			Snapshots:     a.snapshots,
			Unique:        len(a.firstSeenT),
			MaxConcurrent: a.maxConcurrent,
		},
		Contacts: make(map[float64]*ContactSet, len(a.cfg.Ranges)),
		Nets:     make(map[float64]*NetMetrics, len(a.cfg.Ranges)),
		Zones:    a.zones,
	}
	if a.snapshots >= 2 {
		an.Summary.DurationSec = a.lastT - a.firstT
	}
	if a.snapshots > 0 {
		an.Summary.MeanConcurrent = float64(a.totalSamples) / float64(a.snapshots)
	}

	for i, r := range a.cfg.Ranges {
		rs := a.ranges[i]
		// Contacts still open at the end of the stream are right-censored.
		rs.cs.Censored += len(rs.active)
		// First-contact times.
		for id, t0 := range a.firstSeenT {
			if tc, ok := rs.firstContact[id]; ok {
				rs.cs.FT = append(rs.cs.FT, float64(tc-t0))
			} else {
				rs.cs.NeverContacted++
			}
		}
		an.Contacts[r] = rs.cs
		an.Nets[r] = rs.nm
	}

	// Close open sessions and emit trips in the batch path's order.
	for id, ss := range a.open {
		a.closeSession(id, ss)
	}
	sort.Slice(a.closed, func(i, j int) bool {
		if a.closed[i].login != a.closed[j].login {
			return a.closed[i].login < a.closed[j].login
		}
		return a.closed[i].id < a.closed[j].id
	})
	ts := &TripStats{}
	for _, cs := range a.closed {
		ts.TravelTime = append(ts.TravelTime, float64(cs.duration))
		ts.TravelLength = append(ts.TravelLength, cs.length)
		ts.EffectiveTravelTime = append(ts.EffectiveTravelTime, float64(cs.moving))
	}
	an.Trips = ts
	return an, nil
}

// Consume drains a snapshot source into the analyzer and finishes it: the
// one-call streaming pipeline. It stops on the first error; a cancelled
// context surfaces as ctx.Err() from the source.
func (a *Analyzer) Consume(ctx context.Context, src trace.Source) (*Analysis, error) {
	for {
		snap, err := src.Next(ctx)
		if err == io.EOF {
			return a.Finish()
		}
		if err != nil {
			return nil, err
		}
		if err := a.Observe(snap); err != nil {
			return nil, err
		}
	}
}
