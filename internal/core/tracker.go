package core

import (
	"slices"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// pairState tracks an ongoing or past contact between one pair. States
// live inline in the pair table's slots — no per-pair pointer is ever
// allocated.
type pairState struct {
	// start is the first snapshot time of the ongoing contact.
	start int64
	// lastSeen is the latest snapshot time at which the pair was in range.
	lastSeen int64
	// lastEnd is the end time of the pair's previous completed contact,
	// used to emit inter-contact times; valid when hasPrev.
	lastEnd int64
	// seenGen is the tracker generation (snapshot ordinal) at which the
	// pair was last observed in range — the allocation-free replacement
	// for the old per-snapshot "in contact now" set.
	seenGen uint64
	// inContact marks a contact in progress as of the previous snapshot.
	inContact bool
	// leftCensored marks a contact already in progress at the first trace
	// snapshot, whose true start is unknown.
	leftCensored bool
	hasPrev      bool
}

// pairSlot is one open-addressing slot: a key plus its inline state.
type pairSlot struct {
	key  pairKey
	used bool
	st   pairState
}

// pairTable is an open-addressed hash table over avatar pairs with
// linear probing. Pairs are only ever inserted (a pair's history feeds
// inter-contact times for the rest of the stream), so there is no
// tombstone machinery. Lookups and steady-state insertions allocate
// nothing; growth doubles the slot array at 3/4 load.
type pairTable struct {
	slots   []pairSlot
	mask    uint64
	n       int
	rehashd bool // set when a grow relocated slots since last checked
}

const pairTableMinSize = 64

func newPairTable() *pairTable {
	return &pairTable{slots: make([]pairSlot, pairTableMinSize), mask: pairTableMinSize - 1}
}

// hash mixes both avatar IDs with a splitmix64-style finaliser.
//
//slmob:hotpath
func (pt *pairTable) hash(k pairKey) uint64 {
	h := uint64(k.A)*0x9e3779b97f4a7c15 ^ uint64(k.B)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// lookupOrInsert returns the slot index of k, inserting a fresh state if
// the pair is new. isNew reports the insertion. A grow may relocate every
// slot; callers holding slot indices across insertions must check
// rehashed().
//
//slmob:hotpath
func (pt *pairTable) lookupOrInsert(k pairKey) (idx int, isNew bool) {
	if pt.n*4 >= len(pt.slots)*3 {
		pt.grow()
	}
	i := pt.hash(k) & pt.mask
	for {
		s := &pt.slots[i]
		if !s.used {
			s.used = true
			s.key = k
			s.st = pairState{}
			pt.n++
			return int(i), true
		}
		if s.key == k {
			return int(i), false
		}
		i = (i + 1) & pt.mask
	}
}

func (pt *pairTable) grow() {
	old := pt.slots
	pt.slots = make([]pairSlot, len(old)*2)
	pt.mask = uint64(len(pt.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := pt.hash(old[i].key) & pt.mask
		for pt.slots[j].used {
			j = (j + 1) & pt.mask
		}
		pt.slots[j] = old[i]
	}
	pt.rehashd = true
}

// rehashed reports (and clears) whether a grow has relocated slots since
// the previous check.
func (pt *pairTable) rehashed() bool {
	r := pt.rehashd
	pt.rehashd = false
	return r
}

// contactTracker is the per-range contact state machine shared by the
// single-land Analyzer, the batch ExtractContacts, and the estate-global
// analysis: it folds one proximity graph per snapshot into running
// CT/ICT/FT distributions. The hot path is allocation-free at steady
// state: pair states live inline in an open-addressed table, the old
// per-snapshot "in contact now" map is replaced by generation stamps,
// and end detection walks a compact active list (O(active), not O(pairs
// ever seen)).
//
// The tracker is the state-machine half of the metric; the event sink is
// the ContactSet bound with bind(). Every completed event — a contact
// duration, an inter-contact gap, a first-contact wait, a new pair, a
// censored interval — is emitted into the currently bound sink at the
// snapshot at which it resolves, which is what lets windowed analytics
// swap sinks at window boundaries and still have the merged windows
// reproduce the whole-trace distributions bit-identically.
type contactTracker struct {
	tau int64
	// gen is the snapshot ordinal; a pair with seenGen == gen is in
	// contact in the current snapshot.
	gen          uint64
	table        *pairTable
	active       []int32 // slot indices of pairs currently in contact
	firstContact map[trace.AvatarID]int64
	cs           *ContactSet
}

func newContactTracker(tau int64) *contactTracker {
	return &contactTracker{
		tau:          tau,
		table:        newPairTable(),
		firstContact: make(map[trace.AvatarID]int64),
	}
}

// bind points the tracker's event emission at cs. Events already emitted
// stay where they were — binding is how a window rollover redirects the
// remainder of the stream into a fresh accumulator.
func (c *contactTracker) bind(cs *ContactSet) { c.cs = cs }

// observe advances the state machine with the proximity graph g over the
// avatars ids at snapshot time t. fsT holds each avatar's first-seen
// time, aligned with ids, so first-contact waits are emitted the moment
// the first contact happens. first marks the stream's first snapshot,
// whose ongoing contacts are left-censored.
//
//slmob:hotpath
func (c *contactTracker) observe(ids []trace.AvatarID, fsT []int64, g *graph.Graph, t int64, first bool) {
	c.gen++
	// Starts and continuations: every pair in range this snapshot gets
	// the current generation stamp.
	for i := range ids {
		if g.Degree(i) > 0 {
			if _, ok := c.firstContact[ids[i]]; !ok {
				c.firstContact[ids[i]] = t
				c.cs.FT.Add(float64(t - fsT[i]))
			}
		}
		for _, j := range g.Neighbors(i) {
			if int(j) <= i {
				continue
			}
			idx, isNew := c.table.lookupOrInsert(makePair(ids[i], ids[int(j)]))
			if isNew {
				c.cs.Pairs++
			}
			st := &c.table.slots[idx].st
			st.seenGen = c.gen
			if !st.inContact {
				st.inContact = true
				st.start = t
				st.leftCensored = first
				if st.hasPrev {
					c.cs.ICT.Add(float64(t - st.lastEnd))
				}
				c.active = append(c.active, int32(idx))
			}
			st.lastSeen = t
		}
	}
	// A table grow relocates slots; refresh the active list's indices
	// before walking it. Order within the list is irrelevant — ends only
	// feed the weighted distributions and counters.
	if c.table.rehashed() {
		c.active = c.active[:0]
		for i := range c.table.slots {
			s := &c.table.slots[i]
			if s.used && s.st.inContact {
				c.active = append(c.active, int32(i))
			}
		}
	}
	// Ends: active pairs not stamped this snapshot.
	for k := 0; k < len(c.active); {
		st := &c.table.slots[c.active[k]].st
		if st.seenGen == c.gen {
			k++
			continue
		}
		if st.leftCensored {
			c.cs.Censored++
		} else {
			c.cs.CT.Add(float64(st.lastSeen - st.start + c.tau))
		}
		st.lastEnd = st.lastSeen
		st.hasPrev = true
		st.inContact = false
		st.leftCensored = false
		last := len(c.active) - 1
		c.active[k] = c.active[last]
		c.active = c.active[:last]
	}
}

// finish right-censors contacts still open at the end of the stream and
// derives the never-contacted count from the stream's total population,
// emitting both into the currently bound sink (the final window).
// totalSeen is the number of distinct avatars ever observed.
func (c *contactTracker) finish(totalSeen int) *ContactSet {
	c.cs.Censored += len(c.active)
	if n := totalSeen - len(c.firstContact); n > 0 {
		c.cs.NeverContacted += n
	}
	return c.cs
}

// tripTracker is the per-avatar sessionisation state machine shared by
// the single-land Analyzer and the estate-global analysis: an avatar
// absent longer than the session gap logs out and back in; displacement
// above moveEps between consecutive samples counts as movement. Closed
// sessions are appended to the bound output list (*out) at the snapshot
// their closure is detected — the window-attribution point.
type tripTracker struct {
	moveEps float64
	gap     int64
	open    map[trace.AvatarID]*sessionState
	out     *[]closedSession
}

func newTripTracker(moveEps float64, gap int64, out *[]closedSession) *tripTracker {
	return &tripTracker{
		moveEps: moveEps,
		gap:     gap,
		open:    make(map[trace.AvatarID]*sessionState),
		out:     out,
	}
}

// bind redirects closed-session emission, the trip analogue of
// contactTracker.bind.
func (tt *tripTracker) bind(out *[]closedSession) { tt.out = out }

// observe folds one avatar sample at snapshot time t into the tracker.
// Seated samples keep the session alive but contribute no movement.
// Session (re)creation allocates, but only on login/relogin, never at
// per-sample steady state.
//
//slmob:hotpath
func (tt *tripTracker) observe(id trace.AvatarID, pos geom.Vec, seated bool, t int64) {
	ss := tt.open[id]
	if ss != nil && t-ss.last > tt.gap {
		tt.closeSession(id, ss)
		*ss = sessionState{login: t}
	}
	if ss == nil {
		ss = &sessionState{login: t}
		tt.open[id] = ss
	}
	ss.last = t
	if seated {
		return
	}
	if ss.hasPrev {
		d := pos.DistXY(ss.prevPos)
		ss.length += d
		if d > tt.moveEps {
			ss.moving += t - ss.prevT
		}
	}
	ss.hasPrev = true
	ss.prevPos = pos
	ss.prevT = t
}

// closeSession emits one finished session into the bound output. The
// append is self-amortising: the closed-session buffer is recycled
// across windows.
//
//slmob:hotpath
func (tt *tripTracker) closeSession(id trace.AvatarID, ss *sessionState) {
	*tt.out = append(*tt.out, closedSession{
		id:       id,
		login:    ss.login,
		duration: ss.last - ss.login,
		length:   ss.length,
		moving:   ss.moving,
	})
}

// closeAll closes every open session into the bound output — the
// end-of-stream flush feeding the final window. Sessions close in
// ascending avatar order: the flush feeds the checkpointed closed-
// session slice, and map iteration order must never reach serialized
// state.
func (tt *tripTracker) closeAll() {
	for _, id := range sortedKeys(tt.open) {
		tt.closeSession(id, tt.open[id])
	}
}

// buildTripStats sorts the closed sessions into the batch path's order
// (login time, then avatar ID) and fills ts, reusing its slices. The
// session records themselves are retained (copied) as merge keys, so
// window TripStats can be re-merged into the whole-trace ordering.
func buildTripStats(closed []closedSession, ts *TripStats) *TripStats {
	if ts == nil {
		ts = &TripStats{}
	}
	slices.SortFunc(closed, func(a, b closedSession) int {
		if a.login != b.login {
			if a.login < b.login {
				return -1
			}
			return 1
		}
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		return 0
	})
	ts.TravelTime = ts.TravelTime[:0]
	ts.TravelLength = ts.TravelLength[:0]
	ts.EffectiveTravelTime = ts.EffectiveTravelTime[:0]
	ts.sess = append(ts.sess[:0], closed...)
	for _, cs := range closed {
		ts.TravelTime = append(ts.TravelTime, float64(cs.duration))
		ts.TravelLength = append(ts.TravelLength, cs.length)
		ts.EffectiveTravelTime = append(ts.EffectiveTravelTime, float64(cs.moving))
	}
	return ts
}
