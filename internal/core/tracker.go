package core

import (
	"sort"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// contactTracker is the per-range contact state machine shared by the
// single-land Analyzer and the estate-global analysis: it folds one
// proximity graph per snapshot into running CT/ICT/FT distributions.
// Feeding it with observe per snapshot and calling finish once yields
// exactly the ContactSet the batch ExtractContacts computes.
type contactTracker struct {
	tau int64
	// pairs holds every pair ever observed in contact (their lastEnd
	// feeds inter-contact times); active holds only the subset currently
	// in contact, so per-snapshot end detection is O(active), not
	// O(pairs ever seen).
	pairs        map[pairKey]*pairState
	active       map[pairKey]*pairState
	firstContact map[trace.AvatarID]int64
	inContactNow map[pairKey]struct{}
	cs           *ContactSet
}

func newContactTracker(r float64, tau int64) *contactTracker {
	return &contactTracker{
		tau:          tau,
		pairs:        make(map[pairKey]*pairState),
		active:       make(map[pairKey]*pairState),
		firstContact: make(map[trace.AvatarID]int64),
		inContactNow: make(map[pairKey]struct{}),
		cs:           &ContactSet{Range: r, Tau: tau},
	}
}

// observe advances the state machine with the proximity graph g over the
// avatars ids at snapshot time t. first marks the stream's first
// snapshot, whose ongoing contacts are left-censored.
func (c *contactTracker) observe(ids []trace.AvatarID, g *graph.Graph, t int64, first bool) {
	// Pairs in range this snapshot, and first contacts.
	clear(c.inContactNow)
	for i := range ids {
		if g.Degree(i) > 0 {
			if _, ok := c.firstContact[ids[i]]; !ok {
				c.firstContact[ids[i]] = t
			}
		}
		for _, j := range g.Neighbors(i) {
			if int(j) > i {
				c.inContactNow[makePair(ids[i], ids[int(j)])] = struct{}{}
			}
		}
	}

	// Transitions: starts and continuations.
	for pk := range c.inContactNow {
		st := c.pairs[pk]
		if st == nil {
			st = &pairState{}
			c.pairs[pk] = st
			c.cs.Pairs++
		}
		if !st.inContact {
			st.inContact = true
			st.start = t
			st.leftCensored = first
			if st.hasPrev {
				c.cs.ICT = append(c.cs.ICT, float64(t-st.lastEnd))
			}
			c.active[pk] = st
		}
		st.lastSeen = t
	}
	// Transitions: ends (in contact before, not now).
	for pk, st := range c.active {
		if _, ok := c.inContactNow[pk]; !ok {
			if st.leftCensored {
				c.cs.Censored++
			} else {
				c.cs.CT = append(c.cs.CT, float64(st.lastSeen-st.start+c.tau))
			}
			st.lastEnd = st.lastSeen
			st.hasPrev = true
			st.inContact = false
			st.leftCensored = false
			delete(c.active, pk)
		}
	}
}

// finish right-censors contacts still open at the end of the stream,
// derives first-contact times from the avatars' first appearances, and
// returns the completed ContactSet.
func (c *contactTracker) finish(firstSeen map[trace.AvatarID]int64) *ContactSet {
	c.cs.Censored += len(c.active)
	for id, t0 := range firstSeen {
		if tc, ok := c.firstContact[id]; ok {
			c.cs.FT = append(c.cs.FT, float64(tc-t0))
		} else {
			c.cs.NeverContacted++
		}
	}
	return c.cs
}

// tripTracker is the per-avatar sessionisation state machine shared by
// the single-land Analyzer and the estate-global analysis: an avatar
// absent longer than the session gap logs out and back in; displacement
// above moveEps between consecutive samples counts as movement.
type tripTracker struct {
	moveEps float64
	gap     int64
	open    map[trace.AvatarID]*sessionState
	closed  []closedSession
}

func newTripTracker(moveEps float64, gap int64) *tripTracker {
	return &tripTracker{
		moveEps: moveEps,
		gap:     gap,
		open:    make(map[trace.AvatarID]*sessionState),
	}
}

// observe folds one avatar sample at snapshot time t into the tracker.
// Seated samples keep the session alive but contribute no movement.
func (tt *tripTracker) observe(id trace.AvatarID, pos geom.Vec, seated bool, t int64) {
	ss := tt.open[id]
	if ss != nil && t-ss.last > tt.gap {
		tt.closeSession(id, ss)
		ss = nil
	}
	if ss == nil {
		ss = &sessionState{login: t}
		tt.open[id] = ss
	}
	ss.last = t
	if seated {
		return
	}
	if ss.hasPrev {
		d := pos.DistXY(ss.prevPos)
		ss.length += d
		if d > tt.moveEps {
			ss.moving += t - ss.prevT
		}
	}
	ss.hasPrev = true
	ss.prevPos = pos
	ss.prevT = t
}

func (tt *tripTracker) closeSession(id trace.AvatarID, ss *sessionState) {
	tt.closed = append(tt.closed, closedSession{
		id:       id,
		login:    ss.login,
		duration: ss.last - ss.login,
		length:   ss.length,
		moving:   ss.moving,
	})
}

// finish closes open sessions and emits trips in the batch path's order
// (login time, then avatar ID).
func (tt *tripTracker) finish() *TripStats {
	for id, ss := range tt.open {
		tt.closeSession(id, ss)
	}
	sort.Slice(tt.closed, func(i, j int) bool {
		if tt.closed[i].login != tt.closed[j].login {
			return tt.closed[i].login < tt.closed[j].login
		}
		return tt.closed[i].id < tt.closed[j].id
	})
	ts := &TripStats{}
	for _, cs := range tt.closed {
		ts.TravelTime = append(ts.TravelTime, float64(cs.duration))
		ts.TravelLength = append(ts.TravelLength, cs.length)
		ts.EffectiveTravelTime = append(ts.EffectiveTravelTime, float64(cs.moving))
	}
	return ts
}
