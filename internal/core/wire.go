package core

// The analytics wire format: one completed Analysis serialised as a
// standalone, self-checking snap container. The encoding reuses the
// checkpoint codec's deterministic whole-Analysis layout (every map
// walked in sorted-key order, every distribution in canonical form), so
// equal analyses encode to equal bytes — which is what lets a sha256 of
// the blob serve as the parity digest between a live query reply and an
// offline replay of the same trace.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"slmob/internal/snap"
)

// EncodeAnalysis serialises one completed Analysis as a standalone
// versioned blob (the live query service's wire payload). The encoding
// is deterministic: analyses with equal contents yield identical bytes.
func EncodeAnalysis(an *Analysis) ([]byte, error) {
	if an == nil {
		return nil, fmt.Errorf("core: cannot encode a nil analysis")
	}
	if an.Zones == nil || an.Trips == nil {
		return nil, fmt.Errorf("core: analysis %q is incomplete (nil Zones or Trips)", an.Land)
	}
	w := snap.NewWriter(KindAnalysis)
	w.Uvarint(checkpointVersion)
	encodeAnalysis(w, an)
	return w.Finish(), nil
}

// DecodeAnalysis rebuilds an Analysis from an EncodeAnalysis blob.
// Corrupted, truncated, or version-skewed blobs return a typed
// *snap.Error, never panic.
func DecodeAnalysis(data []byte) (*Analysis, error) {
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	if r.Kind() != KindAnalysis {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: fmt.Sprintf("payload kind %d is not an analysis", r.Kind())}
	}
	if v := r.Uvarint(); r.Err() == nil && v != checkpointVersion {
		return nil, &snap.Error{Kind: snap.KindVersion, Msg: fmt.Sprintf("analysis version %d, want %d", v, checkpointVersion)}
	}
	an, err := decodeAnalysis(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return an, nil
}

// BlobDigest returns the hex sha256 of an encoded analysis blob — the
// form query clients use, hashing exactly the bytes they received.
func BlobDigest(blob []byte) string {
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// AnalysisDigest encodes the analysis and digests the bytes: because the
// encoding is deterministic, two analyses share a digest iff they are
// bit-identical — the parity gate's equality test.
func AnalysisDigest(an *Analysis) (string, error) {
	blob, err := EncodeAnalysis(an)
	if err != nil {
		return "", err
	}
	return BlobDigest(blob), nil
}
