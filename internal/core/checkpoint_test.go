package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"slmob/internal/snap"
	"slmob/internal/trace"
)

// sliceSource streams a pre-built snapshot list.
type sliceSrc struct {
	snaps []trace.Snapshot
	i     int
}

func sliceSource(snaps []trace.Snapshot) *sliceSrc { return &sliceSrc{snaps: snaps} }

func (s *sliceSrc) Next(ctx context.Context) (trace.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return trace.Snapshot{}, err
	}
	if s.i >= len(s.snaps) {
		return trace.Snapshot{}, io.EOF
	}
	snap := s.snaps[s.i]
	s.i++
	return snap, nil
}

// TestCheckpointResumeDigestIdentical pins the tentpole guarantee: a run
// killed mid-stream and resumed from its checkpoint finishes with an
// Analysis identical to an uninterrupted run — contacts mid-flight, open
// sessions, censoring, everything.
func TestCheckpointResumeDigestIdentical(t *testing.T) {
	snaps := windowSnapshots(400)
	cfg := Config{Ranges: []float64{10, 80}}
	whole := runPlain(t, snaps, cfg)

	for _, cut := range []int{1, 57, 200, 399} {
		a, err := NewAnalyzer("win", 10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snaps[:cut] {
			if err := a.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := a.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		b, err := RestoreAnalyzer(blob)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got, want := b.ResumePoint(), snaps[cut-1].T; got != want {
			t.Fatalf("cut=%d: resume point %d, want %d", cut, got, want)
		}
		// Feed the whole stream again: observed snapshots must be skipped
		// by time, the rest resumed exactly.
		for _, s := range snaps {
			if s.T <= b.resumeFrom {
				continue
			}
			if err := b.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		resumed, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range DiffAnalyses(resumed, whole) {
			t.Errorf("cut=%d: %s", cut, d)
		}
	}
}

// TestCheckpointResumeWindowed: the same kill-and-resume guarantee for
// the windowed analyzer, including windows collected before the cut.
func TestCheckpointResumeWindowed(t *testing.T) {
	snaps := windowSnapshots(300)
	cfg := Config{Ranges: []float64{10}}
	wholeSeries := runWindowed(t, snaps, 250, cfg)

	wa, err := NewWindowedAnalyzer("win", 10, 250, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps[:140] {
		if err := wa.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := wa.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := RestoreWindowedAnalyzer(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		if s.T <= wb.a.resumeFrom {
			continue
		}
		if err := wb.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := wb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Windows) != len(wholeSeries.Windows) {
		t.Fatalf("resumed windows = %d, want %d", len(resumed.Windows), len(wholeSeries.Windows))
	}
	for i := range wholeSeries.Windows {
		for _, d := range DiffAnalyses(resumed.Windows[i], wholeSeries.Windows[i]) {
			t.Errorf("window %d: %s", i, d)
		}
	}
	// And the merged series still matches the uninterrupted whole run.
	mergedResumed, err := resumed.Merge()
	if err != nil {
		t.Fatal(err)
	}
	whole := runPlain(t, snaps, cfg)
	for _, d := range DiffAnalyses(mergedResumed, whole) {
		t.Errorf("merged: %s", d)
	}
}

// TestCheckpointDecoderRejects pins the typed-error contract for every
// corruption mode: wrong payload kind, version skew, truncation, bit
// flips, and garbage all return a *snap.Error (or a validation error),
// never panic.
func TestCheckpointDecoderRejects(t *testing.T) {
	a, err := NewAnalyzer("x", 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range windowSnapshots(50) {
		if err := a.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	wantSnapErr := func(name string, data []byte) {
		t.Helper()
		_, err := RestoreAnalyzer(data)
		var se *snap.Error
		if !errors.As(err, &se) {
			t.Errorf("%s: err = %v, want *snap.Error", name, err)
		}
		_, err = RestoreWindowedAnalyzer(data)
		if !errors.As(err, &se) {
			t.Errorf("%s (windowed): err = %v, want *snap.Error", name, err)
		}
	}
	wantSnapErr("empty", nil)
	wantSnapErr("garbage", []byte("definitely not a checkpoint"))
	for _, cut := range []int{4, 10, len(blob) / 2, len(blob) - 1} {
		wantSnapErr("truncated", blob[:cut])
	}
	for _, i := range []int{5, 20, len(blob) / 2} {
		flipped := append([]byte(nil), blob...)
		flipped[i] ^= 0x40
		wantSnapErr("flipped", flipped)
	}
	// A windowed blob handed to the plain restorer (and vice versa) is a
	// typed kind mismatch.
	wa, err := NewWindowedAnalyzer("x", 10, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wblob, err := wa.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreAnalyzer(wblob); err == nil {
		t.Error("plain restore accepted a windowed checkpoint")
	}
	var se *snap.Error
	if _, err := RestoreWindowedAnalyzer(blob); !errors.As(err, &se) {
		t.Errorf("windowed restore of plain blob: %v", err)
	}
}

// TestCheckpointResumeAtTimeZero: a stream whose first snapshot is at
// t=0, checkpointed after only that snapshot, must resume by skipping
// the replayed t=0 — lastT == 0 is a legitimate resume point, not the
// "no resume" sentinel.
func TestCheckpointResumeAtTimeZero(t *testing.T) {
	snaps := windowSnapshots(30)
	for i := range snaps {
		snaps[i].T -= 10 // shift so the first snapshot lands on t=0
	}
	cfg := Config{Ranges: []float64{10}}
	whole := runPlain(t, snaps, cfg)

	a, err := NewAnalyzer("win", 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(snaps[0]); err != nil {
		t.Fatal(err)
	}
	blob, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreAnalyzer(blob)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := b.Consume(context.Background(), sliceSource(snaps))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range DiffAnalyses(resumed, whole) {
		t.Error(d)
	}
}

// TestWindowedEmptyStreamMerges: a windowed run over an empty stream
// yields one empty window whose merge equals the plain empty analysis,
// keeping the windowed path a superset of the plain one.
func TestWindowedEmptyStreamMerges(t *testing.T) {
	cfg := Config{Ranges: []float64{10, 80}}
	a, err := NewAnalyzer("empty", 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wa, err := NewWindowedAnalyzer("empty", 10, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Windows) != 1 {
		t.Fatalf("empty stream yields %d windows, want 1", len(ws.Windows))
	}
	merged, err := ws.Merge()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range DiffAnalyses(merged, whole) {
		t.Error(d)
	}
}

// TestWindowedCheckpointRejectsBadCursor: a checksum-valid blob with a
// crafted negative window cursor must be a typed error — otherwise the
// first resumed Observe would spin emitting ~2^60 empty windows.
func TestWindowedCheckpointRejectsBadCursor(t *testing.T) {
	w := snap.NewWriter(KindWindowed)
	w.Uvarint(checkpointVersion)
	w.Varint(3600)     // window
	w.Bool(true)       // started
	w.Varint(-1 << 60) // curIdx: hostile
	w.Bool(false)      // hooked
	w.Varint(0)        // first
	w.Uvarint(0)       // no collected windows
	_, err := RestoreWindowedAnalyzer(w.Finish())
	var se *snap.Error
	if !errors.As(err, &se) || se.Kind != snap.KindMalformed {
		t.Fatalf("err = %v, want malformed *snap.Error", err)
	}
}

// TestCheckpointAfterFinish: a finished analyzer cannot checkpoint.
func TestCheckpointAfterFinish(t *testing.T) {
	a, err := NewAnalyzer("x", 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(); err == nil {
		t.Error("Checkpoint after Finish succeeded")
	}
}

// Two checkpoints of identical state must be byte-identical: every map
// iteration on the encode path goes through sortedKeys, so serialized
// bytes never depend on Go's randomised map order. This is the
// byte-level strengthening of the digest-level golden gates (decoders
// were always order-agnostic; encoders now are too).
func TestCheckpointBytesReproducible(t *testing.T) {
	tr := syntheticTrace()
	a, err := NewAnalyzer(tr.Land, tr.Tau, Config{Ranges: []float64{10}, ZoneSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Snapshots {
		if err := a.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two checkpoints of identical state differ: %d vs %d bytes", len(b1), len(b2))
	}
}
