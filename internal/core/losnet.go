package core

import (
	"fmt"

	"slmob/internal/graph"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// NetMetrics aggregates the line-of-sight network properties of §3.2 over
// the whole measurement period, as the paper's Fig. 2 does. Degrees and
// diameters are integer-valued, so they are held as weighted frequency
// accumulators; clustering coefficients are real-valued and stay a plain
// sample slice.
type NetMetrics struct {
	// Range is the communication range r in metres.
	Range float64 //lint:allow acc construction-time identity; Reset preserves it and mergeFrom requires equal ranges
	// Degrees holds the node-degree distribution over every
	// (user, snapshot) pair, the population behind the aggregated degree
	// CCDF (Fig. 2a/2d).
	Degrees *stats.Weighted
	// Diameters holds the per-snapshot distribution of the longest
	// shortest path of the largest connected component (Fig. 2b/2e).
	// Snapshots without users are skipped.
	Diameters *stats.Weighted
	// Clusterings holds, per snapshot, the mean Watts–Strogatz clustering
	// coefficient over all users (Fig. 2c/2f), in snapshot order.
	Clusterings []float64
}

// newNetMetrics returns an empty NetMetrics with initialised
// distributions.
func newNetMetrics(r float64) *NetMetrics {
	return &NetMetrics{Range: r, Degrees: stats.NewWeighted(), Diameters: stats.NewWeighted()}
}

// Reset empties the accumulator while keeping its identity and internal
// allocations — the resettable leg of the Accumulator contract.
func (nm *NetMetrics) Reset() {
	nm.Degrees.Reset()
	nm.Diameters.Reset()
	nm.Clusterings = nm.Clusterings[:0]
}

// mergeFrom appends another window's metrics. Degrees and diameters are
// multisets; clustering coefficients are kept in snapshot order, so
// windows must merge in time order to reproduce the whole-trace slice.
func (nm *NetMetrics) mergeFrom(o *NetMetrics) {
	nm.Degrees.Merge(o.Degrees)
	nm.Diameters.Merge(o.Diameters)
	nm.Clusterings = append(nm.Clusterings, o.Clusterings...)
}

// Clone returns an independent deep copy.
func (nm *NetMetrics) Clone() *NetMetrics {
	out := newNetMetrics(nm.Range)
	out.mergeFrom(nm)
	return out
}

// observe folds the workspace's current snapshot graph into the
// metrics. Snapshots without users must be skipped by the caller.
//
//slmob:hotpath
func (nm *NetMetrics) observe(ws *graph.Workspace) {
	g := ws.Graph()
	for u := 0; u < g.N(); u++ {
		nm.Degrees.Add(float64(g.Degree(u)))
	}
	nm.Diameters.Add(float64(ws.Diameter()))
	nm.Clusterings = append(nm.Clusterings, ws.MeanClustering())
}

// LoSMetrics computes the per-snapshot line-of-sight network metrics of a
// trace at range r, assuming an ideal wireless channel (no obstacles),
// exactly as the paper does. Seated samples are excluded.
func LoSMetrics(tr *trace.Trace, r float64) (*NetMetrics, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: non-positive range %v", r)
	}
	nm := newNetMetrics(r)
	ws := graph.NewWorkspace()
	var sc snapScratch
	for _, snap := range tr.Snapshots {
		sc.fill(snap, nil, false)
		if len(sc.positions) == 0 {
			continue
		}
		ws.ApplyPositions(sc.gids, sc.positions, r)
		nm.observe(ws)
	}
	return nm, nil
}

// DegreeZeroFraction returns the fraction of (user, snapshot) samples with
// no neighbour — the paper's headline observation for Fig. 2a ("for Apfel
// Land ... 60% of users have no neighbors").
func (nm *NetMetrics) DegreeZeroFraction() float64 {
	if nm.Degrees.N() == 0 {
		return 0
	}
	return float64(nm.Degrees.CountOf(0)) / float64(nm.Degrees.N())
}

// MaxDiameter returns the largest per-snapshot diameter observed.
func (nm *NetMetrics) MaxDiameter() float64 {
	if nm.Diameters.N() == 0 {
		return 0
	}
	return nm.Diameters.Max()
}
