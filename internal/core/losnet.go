package core

import (
	"fmt"

	"slmob/internal/geom"
	"slmob/internal/graph"
	"slmob/internal/trace"
)

// NetMetrics aggregates the line-of-sight network properties of §3.2 over
// the whole measurement period, as the paper's Fig. 2 does.
type NetMetrics struct {
	// Range is the communication range r in metres.
	Range float64
	// Degrees holds one node-degree sample per (user, snapshot), the
	// population behind the aggregated degree CCDF (Fig. 2a/2d).
	Degrees []float64
	// Diameters holds, per snapshot, the longest shortest path of the
	// largest connected component (Fig. 2b/2e). Snapshots without users
	// are skipped.
	Diameters []float64
	// Clusterings holds, per snapshot, the mean Watts–Strogatz clustering
	// coefficient over all users (Fig. 2c/2f).
	Clusterings []float64
}

// LoSMetrics computes the per-snapshot line-of-sight network metrics of a
// trace at range r, assuming an ideal wireless channel (no obstacles),
// exactly as the paper does. Seated samples are excluded.
func LoSMetrics(tr *trace.Trace, r float64) (*NetMetrics, error) {
	if r <= 0 {
		return nil, fmt.Errorf("core: non-positive range %v", r)
	}
	nm := &NetMetrics{Range: r}
	var positions []geom.Vec
	for _, snap := range tr.Snapshots {
		positions = positions[:0]
		for _, s := range snap.Samples {
			if !s.Seated {
				positions = append(positions, s.Pos)
			}
		}
		if len(positions) == 0 {
			continue
		}
		g := graph.FromPositions(positions, r)
		for u := 0; u < g.N(); u++ {
			nm.Degrees = append(nm.Degrees, float64(g.Degree(u)))
		}
		nm.Diameters = append(nm.Diameters, float64(g.Diameter()))
		nm.Clusterings = append(nm.Clusterings, g.MeanClustering())
	}
	return nm, nil
}

// DegreeZeroFraction returns the fraction of (user, snapshot) samples with
// no neighbour — the paper's headline observation for Fig. 2a ("for Apfel
// Land ... 60% of users have no neighbors").
func (nm *NetMetrics) DegreeZeroFraction() float64 {
	if len(nm.Degrees) == 0 {
		return 0
	}
	zero := 0
	for _, d := range nm.Degrees {
		if d == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(nm.Degrees))
}

// MaxDiameter returns the largest per-snapshot diameter observed.
func (nm *NetMetrics) MaxDiameter() float64 {
	max := 0.0
	for _, d := range nm.Diameters {
		if d > max {
			max = d
		}
	}
	return max
}
