package core

import (
	"context"
	"testing"

	"slmob/internal/trace"
	"slmob/internal/world"
)

// estateFixture simulates a short paper estate once and replays it for
// every configuration under test.
func estateFixture(t *testing.T, duration int64) ([]trace.Info, []*trace.Trace, []RegionMeta) {
	t.Helper()
	est := world.PaperEstate(17)
	est.Duration = duration
	src, err := world.NewEstateSource(est, 10)
	if err != nil {
		t.Fatal(err)
	}
	infos := src.Regions()
	trs, err := trace.CollectEstate(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := RegionMetasFromInfos(infos)
	if err != nil {
		t.Fatal(err)
	}
	return infos, trs, metas
}

// TestEstateWindowedParity pins the estate half of the merge invariant:
// a windowed estate run's whole-trace Global and Regions — derived by
// merging the window series — are bit-identical to a non-windowed run,
// and each region's window series merges back to its whole analysis.
func TestEstateWindowedParity(t *testing.T) {
	infos, trs, metas := estateFixture(t, 900)

	run := func(window int64) *EstateAnalysis {
		replay, err := trace.NewEstateReplay(infos, trs)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := NewEstateAnalyzer("Paper Estate", metas, 10,
			Config{Ranges: []float64{10, 80}, Window: window}, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ea.Consume(context.Background(), replay)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	whole := run(0)
	windowed := run(300)

	// Ticks run T=10..900; T=900 opens window 3, so windows 0..3.
	if got := len(windowed.Windows); got != 4 {
		t.Fatalf("windows = %d, want 4", got)
	}
	if windowed.WindowSec != 300 || windowed.FirstWindow != 0 {
		t.Fatalf("WindowSec/FirstWindow = %d/%d", windowed.WindowSec, windowed.FirstWindow)
	}
	for _, d := range DiffAnalyses(windowed.Global, whole.Global) {
		t.Errorf("global: %s", d)
	}
	for i := range whole.Regions {
		for _, d := range DiffAnalyses(windowed.Regions[i], whole.Regions[i]) {
			t.Errorf("region %d: %s", i, d)
		}
	}

	// Re-merging each region's window series reproduces its whole view.
	for i := range whole.Regions {
		var parts []*Analysis
		for _, w := range windowed.Windows {
			parts = append(parts, w.Regions[i])
		}
		merged, err := MergeAnalyses(parts)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range DiffAnalyses(merged, whole.Regions[i]) {
			t.Errorf("region %d remerge: %s", i, d)
		}
	}

	// Window summaries partition the global stream.
	snaps, uniq := 0, 0
	for _, w := range windowed.Windows {
		snaps += w.Global.Summary.Snapshots
		uniq += w.Global.Summary.Unique
	}
	if snaps != whole.Global.Summary.Snapshots {
		t.Errorf("window snapshots sum = %d, want %d", snaps, whole.Global.Summary.Snapshots)
	}
	if uniq != whole.Global.Summary.Unique {
		t.Errorf("window new-user sum = %d, want %d", uniq, whole.Global.Summary.Unique)
	}
}

// TestEstateWindowLiveHook: the hook receives every window, in order,
// while the stream is being consumed, and the delivered windows are the
// same objects as the final series.
func TestEstateWindowLiveHook(t *testing.T) {
	infos, trs, metas := estateFixture(t, 600)
	replay, err := trace.NewEstateReplay(infos, trs)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEstateAnalyzer("Paper Estate", metas, 10,
		Config{Ranges: []float64{10}, Window: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ks []int64
	var got []*EstateAnalysis
	if err := ea.OnWindow(func(k int64, w *EstateAnalysis) {
		ks = append(ks, k)
		got = append(got, w)
	}); err != nil {
		t.Fatal(err)
	}
	res, err := ea.Consume(context.Background(), replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Windows) {
		t.Fatalf("hook delivered %d windows, result has %d", len(got), len(res.Windows))
	}
	for i := range got {
		if got[i] != res.Windows[i] {
			t.Errorf("window %d: hook object differs from result object", i)
		}
		if ks[i] != res.FirstWindow+int64(i) {
			t.Errorf("window %d delivered as k=%d, want %d", i, ks[i], res.FirstWindow+int64(i))
		}
	}
	// Each window is internally consistent: global zones are the merge of
	// the regional zones.
	for i, w := range res.Windows {
		n := 0
		for _, r := range w.Regions {
			n += r.Zones.N()
		}
		if w.Global.Zones.N() != n {
			t.Errorf("window %d: global zones N=%d, regional sum %d", i, w.Global.Zones.N(), n)
		}
	}
}

// TestEstateOnWindowRequiresWindow: arming the hook without Window set
// is an error, not a silent no-op.
func TestEstateOnWindowRequiresWindow(t *testing.T) {
	ea, err := NewEstateAnalyzer("e", twoRegionMetas(), 10, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ea.OnWindow(func(int64, *EstateAnalysis) {}); err == nil {
		t.Error("OnWindow succeeded on a non-windowed analyzer")
	}
}
