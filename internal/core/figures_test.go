package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestCCDFSeriesDropsNonPositiveForLogAxis(t *testing.T) {
	s := CCDFSeries("land", []float64{0, -5, 10, 20}, true)
	for _, p := range s.Curve {
		if p.X <= 0 {
			t.Errorf("log-axis series contains x=%v", p.X)
		}
	}
	if len(s.Curve) != 2 {
		t.Errorf("curve = %v", s.Curve)
	}
	// Linear axis keeps zeros.
	s = CCDFSeries("land", []float64{0, 10}, false)
	if len(s.Curve) != 2 {
		t.Errorf("linear curve = %v", s.Curve)
	}
	// Empty samples yield an empty (but named) series.
	s = CCDFSeries("land", nil, true)
	if s.Name != "land" || len(s.Curve) != 0 {
		t.Errorf("empty series = %+v", s)
	}
}

func TestCDFSeries(t *testing.T) {
	s := CDFSeries("x", []float64{1, 2, 3})
	if len(s.Curve) != 3 || s.Curve[2].Y != 1 {
		t.Errorf("curve = %v", s.Curve)
	}
	if got := CDFSeries("x", nil); len(got.Curve) != 0 {
		t.Error("empty sample should give empty curve")
	}
}

func testFigure() *Figure {
	return &Figure{
		ID: "fig1a", Title: "Contact Time CCDF", XLabel: "Time (s)", YLabel: "1-F(x)",
		LogX: true,
		Series: []Series{
			CCDFSeries("Apfel Land", []float64{10, 20, 30, 100, 400}, true),
			CCDFSeries("Dance Island", []float64{50, 100, 300, 900}, true),
		},
	}
}

func TestFigureWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := testFigure().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# fig1a: Contact Time CCDF\nseries,x,y\n") {
		t.Errorf("header = %q", out[:40])
	}
	if !strings.Contains(out, "Apfel Land,10,") {
		t.Errorf("missing data row: %s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2+5+4 { // header rows + points
		t.Errorf("lines = %d", lines)
	}
}

func TestFigureRenderASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := testFigure().RenderASCII(&buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig1a") || !strings.Contains(out, "*") {
		t.Errorf("render = %s", out)
	}
	if !strings.Contains(out, "Apfel Land") {
		t.Error("legend missing")
	}
	// Too-small canvas must error, not panic.
	if err := testFigure().RenderASCII(&buf, 5, 2); err == nil {
		t.Error("tiny canvas accepted")
	}
}

func TestFigureRenderASCIIEmpty(t *testing.T) {
	f := &Figure{ID: "empty", Series: []Series{{Name: "none"}}}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no drawable data") {
		t.Errorf("render = %q", buf.String())
	}
}
