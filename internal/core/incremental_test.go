package core

import (
	"context"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// churnSnapshots builds a deterministic snapshot stream with real
// population churn — logins, logouts, teleports, walks, and a seated
// avatar — the workload the incremental graph engine has to diff, not
// just the fixed-population oscillation of allocSnapshots.
func churnSnapshots(seed uint64, n int) []trace.Snapshot {
	state := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24)
	}
	randPos := func() geom.Vec {
		if next() < 0.5 {
			return geom.V2(60+50*next(), 60+50*next())
		}
		return geom.V2(250*next(), 250*next())
	}
	type av struct {
		id  trace.AvatarID
		pos geom.Vec
	}
	var pop []av
	nextID := trace.AvatarID(1)
	for i := 0; i < 40; i++ {
		pop = append(pop, av{id: nextID, pos: randPos()})
		nextID++
	}
	snaps := make([]trace.Snapshot, n)
	for k := 0; k < n; k++ {
		for i := 0; i < len(pop); {
			if next() < 0.03 { // logout
				pop[i] = pop[len(pop)-1]
				pop = pop[:len(pop)-1]
				continue
			}
			i++
		}
		for j := 0; j < 3; j++ {
			if next() < 0.4 { // login
				pop = append(pop, av{id: nextID, pos: randPos()})
				nextID++
			}
		}
		for i := range pop {
			switch u := next(); {
			case u < 0.02: // teleport
				pop[i].pos = randPos()
			case u < 0.25: // walk
				pop[i].pos = geom.V2(pop[i].pos.X+4*(next()-0.5), pop[i].pos.Y+4*(next()-0.5))
			}
		}
		samples := make([]trace.Sample, 0, len(pop)+1)
		for _, a := range pop {
			samples = append(samples, trace.Sample{ID: a.id, Pos: a.pos})
		}
		samples = append(samples, trace.Sample{ID: 999999, Pos: geom.V2(5, 5), Seated: true})
		snaps[k] = trace.Snapshot{T: int64(k+1) * 10, Samples: samples}
	}
	return snaps
}

// runStreaming drives a fresh Analyzer over the stream.
func runStreaming(t *testing.T, snaps []trace.Snapshot, cfg Config) (*Analysis, *Analyzer) {
	t.Helper()
	a, err := NewAnalyzer("churn", 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range snaps {
		if err := a.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	an, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return an, a
}

// TestIncrementalStreamingDifferential is the core-layer leg of the
// incremental parity gate: a churn-heavy stream analysed with the
// temporal-coherence path (default) must be bit-identical — contacts,
// degrees, diameters, clustering, zones, trips — to the same stream with
// DisableIncremental forcing a scratch rebuild every snapshot, with and
// without the range fanout.
func TestIncrementalStreamingDifferential(t *testing.T) {
	snaps := churnSnapshots(3, 300)
	scratch, _ := runStreaming(t, snaps, Config{DisableIncremental: true})
	incr, a := runStreaming(t, snaps, Config{})
	for _, d := range DiffAnalyses(incr, scratch) {
		t.Errorf("incremental vs scratch: %s", d)
	}
	st := a.WorkspaceStats()
	if st.Incremental == 0 {
		t.Fatalf("no snapshot was served incrementally: %+v", st)
	}
	if st.Snapshots != 600 { // 300 snapshots × 2 ranges
		t.Fatalf("workspace stats counted %d snapshots, want 600", st.Snapshots)
	}

	fanned, fa := runStreaming(t, snaps, Config{Ranges: []float64{5, 10, 20, 40, 80}, RangeWorkers: 3})
	fanScratch, _ := runStreaming(t, snaps, Config{Ranges: []float64{5, 10, 20, 40, 80}, DisableIncremental: true})
	for _, d := range DiffAnalyses(fanned, fanScratch) {
		t.Errorf("fanned incremental vs scratch: %s", d)
	}
	if st := fa.WorkspaceStats(); st.Incremental == 0 {
		t.Fatalf("fanned run never went incremental: %+v", st)
	}
}

// TestEstateIncrementalDifferential extends the parity gate to the
// sharded analyzer: regional analyzers and the estate-global contact
// stages all run incrementally by default and must reproduce the
// DisableIncremental run bit-for-bit, region by region and globally.
func TestEstateIncrementalDifferential(t *testing.T) {
	run := func(disable bool) (*EstateAnalysis, *EstateAnalyzer) {
		es := estateSource(t, 0.02, 1200)
		metas, err := RegionMetasFromInfos(es.Regions())
		if err != nil {
			t.Fatal(err)
		}
		ea, err := NewEstateAnalyzer("grid", metas, 10, Config{DisableIncremental: disable}, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ea.Consume(context.Background(), es)
		if err != nil {
			t.Fatal(err)
		}
		return res, ea
	}
	scratch, _ := run(true)
	incr, ea := run(false)
	for i := range scratch.Regions {
		for _, d := range DiffAnalyses(incr.Regions[i], scratch.Regions[i]) {
			t.Errorf("region %d: %s", i, d)
		}
	}
	for _, d := range DiffAnalyses(incr.Global, scratch.Global) {
		t.Errorf("global: %s", d)
	}
	st := ea.WorkspaceStats()
	if st.Incremental == 0 {
		t.Fatalf("estate run never went incremental: %+v", st)
	}
	if incr.Global.Summary.Unique == 0 {
		t.Fatal("estate analysis is empty")
	}
}
