package core

import (
	"fmt"
	"io"
	"math"
	"strings"

	"slmob/internal/stats"
)

// Series is one named curve of a figure (one target land, in the paper).
type Series struct {
	Name  string
	Curve stats.Curve
}

// Figure is plot-ready data for one panel of the paper: an identifier
// (e.g. "fig1a"), axis labels, and one curve per land.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// LogX renders/export hints: the paper draws Fig. 1 on a log X axis.
	LogX   bool
	Series []Series
}

// CCDFSeries builds a CCDF curve from a sample, dropping non-positive
// values when destined for a log axis.
func CCDFSeries(name string, sample []float64, logX bool) Series {
	vals := sample
	if logX {
		vals = make([]float64, 0, len(sample))
		for _, v := range sample {
			if v > 0 {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return Series{Name: name}
	}
	return Series{Name: name, Curve: stats.MustEmpirical(vals).CCDFCurve()}
}

// CDFSeries builds a CDF curve from a sample.
func CDFSeries(name string, sample []float64) Series {
	if len(sample) == 0 {
		return Series{Name: name}
	}
	return Series{Name: name, Curve: stats.MustEmpirical(sample).CDFCurve()}
}

// WeightedCCDFSeries builds a CCDF curve from a weighted distribution,
// dropping non-positive values when destined for a log axis — exactly the
// curve CCDFSeries builds from the expanded sample.
func WeightedCCDFSeries(name string, w *stats.Weighted, logX bool) Series {
	if logX {
		w = w.Positive()
	}
	if w.N() == 0 {
		return Series{Name: name}
	}
	return Series{Name: name, Curve: w.CCDFCurve()}
}

// WeightedCDFSeries builds a CDF curve from a weighted distribution.
func WeightedCDFSeries(name string, w *stats.Weighted) Series {
	if w.N() == 0 {
		return Series{Name: name}
	}
	return Series{Name: name, Curve: w.CDFCurve()}
}

// WriteCSV exports the figure as long-format CSV: series,x,y.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\nseries,x,y\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Curve {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderASCII draws the figure as a text chart of the given size, one
// glyph per series, for terminal inspection by cmd/slbench. Width and
// height are the plot-area dimensions in characters.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("core: chart too small %dx%d", width, height)
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Establish bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, 1.0 // distribution plots are always [0,1] in Y
	for _, s := range f.Series {
		for _, p := range s.Curve {
			x := p.X
			if f.LogX && x <= 0 {
				continue
			}
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
		}
	}
	if math.IsInf(minX, 1) || minX == maxX {
		_, err := fmt.Fprintf(w, "%s: no drawable data\n", f.ID)
		return err
	}
	xpos := func(x float64) int {
		t := 0.0
		if f.LogX {
			t = (math.Log(x) - math.Log(minX)) / (math.Log(maxX) - math.Log(minX))
		} else {
			t = (x - minX) / (maxX - minX)
		}
		i := int(t * float64(width-1))
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		return i
	}
	ypos := func(y float64) int {
		t := (y - minY) / (maxY - minY)
		i := int(t * float64(height-1))
		if i < 0 {
			i = 0
		}
		if i >= height {
			i = height - 1
		}
		return height - 1 - i
	}

	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		glyph := glyphs[si%len(glyphs)]
		// Step-interpolate the curve across the full X span so flat tails
		// stay visible.
		col := 0
		for _, p := range s.Curve {
			if f.LogX && p.X <= 0 {
				continue
			}
			c := xpos(p.X)
			row := ypos(p.Y)
			for ; col <= c; col++ {
				canvas[row][col] = glyph
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, line := range canvas {
		if _, err := fmt.Fprintf(w, "  |%s\n", line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  +%s\n   %-*g%*g\n", strings.Repeat("-", width),
		width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "   y: %s in [0,1]; x: %s%s\n   %s\n",
		f.YLabel, f.XLabel, map[bool]string{true: " (log)", false: ""}[f.LogX],
		strings.Join(legend, "   "))
	return err
}
