package core

import (
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// allocSnapshots builds a deterministic stream over a fixed avatar
// population: a stationary contact cluster, a pair that oscillates in
// and out of range (so contacts start and end, exercising CT/ICT
// emission), and isolated walkers. After warm-up every distinct metric
// value, grid cell, pair slot, and scratch buffer has been seen, so
// Observe must allocate nothing.
func allocSnapshots(n int) []trace.Snapshot {
	snaps := make([]trace.Snapshot, n)
	for i := 0; i < n; i++ {
		t := int64(i+1) * 10
		phase := float64(i%6) * 4 // 0..20 m swing
		snaps[i] = trace.Snapshot{T: t, Samples: []trace.Sample{
			// Stationary cluster in contact at r=10.
			{ID: 1, Pos: geom.V2(50, 50)},
			{ID: 2, Pos: geom.V2(55, 50)},
			{ID: 3, Pos: geom.V2(50, 55)},
			// Oscillating pair: in range on some snapshots, out on others.
			{ID: 4, Pos: geom.V2(120, 80)},
			{ID: 5, Pos: geom.V2(125+phase, 80)},
			// Isolated walkers cycling through a fixed set of cells.
			{ID: 6, Pos: geom.V2(200, 40+phase)},
			{ID: 7, Pos: geom.V2(30, 200+phase)},
			// A seated avatar (kept alive, no movement contribution).
			{ID: 8, Pos: geom.V2(10, 10), Seated: true},
		}}
	}
	return snaps
}

// TestObserveZeroAllocSteadyState pins the tentpole contract: once the
// analyzer has warmed up, folding a snapshot into the running analysis
// performs zero heap allocations.
func TestObserveZeroAllocSteadyState(t *testing.T) {
	a, err := NewAnalyzer("alloc", 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm := allocSnapshots(600)
	for _, snap := range warm {
		if err := a.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	// Measured phase: identical population, fresh timestamps.
	const runs = 100
	measured := allocSnapshots(600 + runs + 1)[600:]
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		if err := a.Observe(measured[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("steady-state Observe allocates %v per snapshot, want 0", avg)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeWorkersInvariance: fanning the per-range passes across
// workers must not change a single bit of the analysis.
func TestRangeWorkersInvariance(t *testing.T) {
	snaps := allocSnapshots(400)
	run := func(workers int) *Analysis {
		cfg := Config{Ranges: []float64{5, 10, 20, 40, 80}, RangeWorkers: workers}
		a, err := NewAnalyzer("fan", 10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, snap := range snaps {
			if err := a.Observe(snap); err != nil {
				t.Fatal(err)
			}
		}
		an, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	sequential := run(1)
	for _, workers := range []int{2, 3, 8} {
		parallel := run(workers)
		for _, d := range DiffAnalyses(parallel, sequential) {
			t.Errorf("workers=%d: %s", workers, d)
		}
	}
}

// TestContactTrackerSurvivesTableGrowth forces the pair table through
// several grows mid-stream (thousands of distinct pairs) and checks the
// counters stay coherent: a dense snapshot of k avatars has k·(k-1)/2
// pairs, all ending together on the sparse snapshot that follows.
func TestContactTrackerSurvivesTableGrowth(t *testing.T) {
	const k = 80 // 3160 pairs, well past several grow thresholds
	dense := trace.Snapshot{T: 10}
	sparse := trace.Snapshot{T: 20}
	for i := 0; i < k; i++ {
		dense.Samples = append(dense.Samples,
			trace.Sample{ID: trace.AvatarID(i + 1), Pos: geom.V2(50+float64(i%9), 50+float64(i/9))})
		sparse.Samples = append(sparse.Samples,
			trace.Sample{ID: trace.AvatarID(i + 1), Pos: geom.V2(float64(250*(i%2)), float64(3*i))})
	}
	a, err := NewAnalyzer("grow", 10, Config{Ranges: []float64{80}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(dense); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(sparse); err != nil {
		t.Fatal(err)
	}
	an, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cs := an.Contacts[80]
	if cs.Pairs < k*(k-1)/2 {
		t.Errorf("pairs = %d, want at least %d", cs.Pairs, k*(k-1)/2)
	}
	// Every first-snapshot contact is left-censored; none may be lost
	// across table grows. Contacts formed on the sparse snapshot are
	// right-censored at finish.
	if got := cs.Censored + cs.CT.N(); got < k*(k-1)/2 {
		t.Errorf("closed+censored = %d, want at least %d", got, k*(k-1)/2)
	}
}

// TestTripCloseZeroAllocSteadyState pins the //slmob:hotpath contract on
// the session-closure path specifically: once the closed-session buffer
// and the per-avatar session states exist, a relogin cycle — close the
// old session, reopen in place — allocates nothing. The Observe-level
// pin never exercises closures at steady state (its population stays
// logged in), so this covers tripTracker.observe's gap branch and
// closeSession directly.
func TestTripCloseZeroAllocSteadyState(t *testing.T) {
	var closed []closedSession
	tt := newTripTracker(0.5, 100, &closed)
	pos := geom.V2(50, 50)
	// Warm-up: one avatar cycling through enough relogins to grow the
	// closed buffer past what the measured phase appends.
	tm := int64(0)
	for i := 0; i < 200; i++ {
		tm += 200 // every observation exceeds the gap: close + reopen
		tt.observe(1, pos, false, tm)
	}
	closed = closed[:0]
	avg := testing.AllocsPerRun(100, func() {
		tm += 200
		tt.observe(1, pos, false, tm)
	})
	if avg != 0 {
		t.Errorf("steady-state relogin cycle allocates %v per run, want 0", avg)
	}
	if len(closed) == 0 {
		t.Fatal("no sessions closed during measurement")
	}
}
