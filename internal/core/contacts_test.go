package core

import (
	"math"
	"sort"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// buildTrace assembles a trace from a per-snapshot map of avatar positions.
func buildTrace(t *testing.T, tau int64, frames []map[trace.AvatarID]geom.Vec) *trace.Trace {
	t.Helper()
	tr := trace.New("test", tau)
	for i, frame := range frames {
		snap := trace.Snapshot{T: int64(i+1) * tau}
		ids := make([]trace.AvatarID, 0, len(frame))
		for id := range frame {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			snap.Samples = append(snap.Samples, trace.Sample{ID: id, Pos: frame[id]})
		}
		if err := tr.Append(snap); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestExtractContactsSimpleContact(t *testing.T) {
	near := geom.V2(50, 50)
	far := geom.V2(200, 200)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: far},                     // t=10: apart
		{1: near, 2: near.Add(geom.V2(5, 0))}, // t=20: contact start
		{1: near, 2: near.Add(geom.V2(6, 0))}, // t=30: still in contact
		{1: near, 2: far},                     // t=40: apart -> contact [20,30]
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CT.N() != 1 {
		t.Fatalf("CT = %v, want one contact", cs.CT.Values())
	}
	// Seen at t=20 and t=30: duration (30-20)+tau = 20.
	if cs.CT.Min() != 20 {
		t.Errorf("CT = %v, want 20", cs.CT.Min())
	}
	if cs.Censored != 0 {
		t.Errorf("censored = %d", cs.Censored)
	}
	if cs.Pairs != 1 {
		t.Errorf("pairs = %d", cs.Pairs)
	}
}

func TestExtractContactsSingleSnapshotContact(t *testing.T) {
	near := geom.V2(50, 50)
	far := geom.V2(200, 200)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: far},
		{1: near, 2: near}, // one snapshot of contact
		{1: near, 2: far},
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CT.N() != 1 || cs.CT.Min() != 10 {
		t.Errorf("CT = %v, want [10]", cs.CT.Values())
	}
}

func TestExtractContactsInterContactTime(t *testing.T) {
	near := geom.V2(50, 50)
	far := geom.V2(200, 200)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: far},  // t=10
		{1: near, 2: near}, // t=20: contact 1
		{1: near, 2: far},  // t=30: apart (contact 1 ended at t=20)
		{1: near, 2: far},  // t=40
		{1: near, 2: near}, // t=50: contact 2 -> ICT = 50-20 = 30
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ICT.N() != 1 || cs.ICT.Min() != 30 {
		t.Errorf("ICT = %v, want [30]", cs.ICT.Values())
	}
	// Second contact still open at trace end: right-censored.
	if cs.Censored != 1 {
		t.Errorf("censored = %d, want 1", cs.Censored)
	}
	if cs.CT.N() != 1 {
		t.Errorf("CT = %v, want one completed contact", cs.CT.Values())
	}
}

func TestExtractContactsLeftCensoring(t *testing.T) {
	near := geom.V2(50, 50)
	far := geom.V2(200, 200)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: near}, // in contact at the very first snapshot
		{1: near, 2: near},
		{1: near, 2: far}, // ends: left-censored, not counted in CT
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CT.N() != 0 {
		t.Errorf("CT = %v, want none (left-censored)", cs.CT.Values())
	}
	if cs.Censored != 1 {
		t.Errorf("censored = %d, want 1", cs.Censored)
	}
}

func TestExtractContactsFirstContactTime(t *testing.T) {
	near := geom.V2(50, 50)
	far := geom.V2(200, 200)
	lone := geom.V2(120, 10)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: far, 3: lone},  // t=10: everyone appears
		{1: near, 2: far, 3: lone},  // t=20
		{1: near, 2: near, 3: lone}, // t=30: 1 and 2 meet
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Users 1 and 2 first appeared at t=10 and first contacted at t=30:
	// FT=20 each. User 3 never contacted.
	if cs.FT.N() != 2 {
		t.Fatalf("FT = %v, want two samples", cs.FT.Values())
	}
	for _, ft := range cs.FT.Values() {
		if ft != 20 {
			t.Errorf("FT = %v, want 20", ft)
		}
	}
	if cs.NeverContacted != 1 {
		t.Errorf("never contacted = %d, want 1", cs.NeverContacted)
	}
}

func TestExtractContactsFTZeroAtLogin(t *testing.T) {
	near := geom.V2(50, 50)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near},          // t=10: 1 alone
		{1: near, 2: near}, // t=20: 2 logs in next to 1
	}
	cs, err := ExtractContacts(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	// User 2's FT is 0 (first seen in contact); user 1 waited 10 s.
	// Values() is sorted ascending.
	ft := cs.FT.Values()
	if len(ft) != 2 || ft[0] != 0 || ft[1] != 10 {
		t.Errorf("FT = %v, want [0 10]", ft)
	}
}

func TestExtractContactsSeatedExcluded(t *testing.T) {
	near := geom.V2(50, 50)
	tr := trace.New("test", 10)
	_ = tr.Append(trace.Snapshot{T: 10, Samples: []trace.Sample{
		{ID: 1, Pos: near},
		{ID: 2, Pos: near, Seated: true}, // seated: no usable position
	}})
	_ = tr.Append(trace.Snapshot{T: 20, Samples: []trace.Sample{
		{ID: 1, Pos: near},
		{ID: 2, Pos: near, Seated: true},
	}})
	cs, err := ExtractContacts(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Pairs != 0 || cs.CT.N() != 0 {
		t.Errorf("seated avatar created contacts: %+v", cs)
	}
}

func TestExtractContactsRangeMatters(t *testing.T) {
	a := geom.V2(50, 50)
	b := geom.V2(50, 90) // 40 m apart
	frames := []map[trace.AvatarID]geom.Vec{
		{1: a, 2: b},
		{1: a, 2: b},
	}
	tr := buildTrace(t, 10, frames)
	cs10, err := ExtractContacts(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	cs80, err := ExtractContacts(tr, 80)
	if err != nil {
		t.Fatal(err)
	}
	if cs10.Pairs != 0 {
		t.Error("contact at r=10 for 40 m pair")
	}
	if cs80.Pairs != 1 {
		t.Error("no contact at r=80 for 40 m pair")
	}
}

func TestExtractContactsValidation(t *testing.T) {
	tr := trace.New("x", 10)
	if _, err := ExtractContacts(tr, 0); err == nil {
		t.Error("r=0 accepted")
	}
	bad := trace.New("x", 0)
	if _, err := ExtractContacts(bad, 10); err == nil {
		t.Error("tau=0 accepted")
	}
}

func TestLoSMetricsDegreesAndDiameter(t *testing.T) {
	// Chain of three avatars 8 m apart: degrees 1,2,1; diameter 2;
	// no triangles so clustering 0.
	frames := []map[trace.AvatarID]geom.Vec{
		{1: geom.V2(50, 50), 2: geom.V2(58, 50), 3: geom.V2(66, 50)},
	}
	nm, err := LoSMetrics(buildTrace(t, 10, frames), 10)
	if err != nil {
		t.Fatal(err)
	}
	deg := nm.Degrees.Values() // sorted ascending
	if len(deg) != 3 || deg[0] != 1 || deg[1] != 1 || deg[2] != 2 {
		t.Errorf("degrees = %v", deg)
	}
	if nm.Diameters.N() != 1 || nm.Diameters.Min() != 2 {
		t.Errorf("diameters = %v", nm.Diameters.Values())
	}
	if nm.Clusterings[0] != 0 {
		t.Errorf("clustering = %v", nm.Clusterings)
	}
	if got := nm.DegreeZeroFraction(); got != 0 {
		t.Errorf("deg-zero = %v", got)
	}
	if got := nm.MaxDiameter(); got != 2 {
		t.Errorf("max diameter = %v", got)
	}
}

func TestLoSMetricsSkipsEmptySnapshots(t *testing.T) {
	tr := trace.New("x", 10)
	_ = tr.Append(trace.Snapshot{T: 10})
	_ = tr.Append(trace.Snapshot{T: 20, Samples: []trace.Sample{{ID: 1, Pos: geom.V2(1, 1)}}})
	nm, err := LoSMetrics(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Diameters.N() != 1 {
		t.Errorf("diameters = %v, want one entry", nm.Diameters.Values())
	}
	if nm.DegreeZeroFraction() != 1 {
		t.Errorf("deg-zero = %v", nm.DegreeZeroFraction())
	}
}

func TestZoneOccupation(t *testing.T) {
	tr := trace.New("x", 10)
	_ = tr.Append(trace.Snapshot{T: 10, Samples: []trace.Sample{
		{ID: 1, Pos: geom.V2(5, 5)},
		{ID: 2, Pos: geom.V2(6, 6)},
		{ID: 3, Pos: geom.V2(35, 5)},
		{ID: 4, Pos: geom.V2(500, 5)}, // outside footprint: ignored
	}})
	zones, err := ZoneOccupation(tr, 40, 20) // 2x2 cells
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 4 {
		t.Fatalf("zones = %v, want 4 cells", zones)
	}
	sort.Float64s(zones)
	want := []float64{0, 0, 1, 2}
	for i := range want {
		if zones[i] != want[i] {
			t.Fatalf("zones = %v, want %v", zones, want)
		}
	}
	if _, err := ZoneOccupation(tr, 0, 20); err == nil {
		t.Error("invalid land size accepted")
	}
}

func TestTripsMetrics(t *testing.T) {
	tr := trace.New("x", 10)
	// One avatar: moves 20 m, stands still, moves 10 m.
	pts := []geom.Vec{geom.V2(0, 0), geom.V2(20, 0), geom.V2(20, 0), geom.V2(20, 10)}
	for i, p := range pts {
		_ = tr.Append(trace.Snapshot{T: int64(i+1) * 10, Samples: []trace.Sample{{ID: 1, Pos: p}}})
	}
	ts := Trips(tr, 0.5, 0)
	if len(ts.TravelLength) != 1 {
		t.Fatalf("sessions = %d", len(ts.TravelLength))
	}
	if math.Abs(ts.TravelLength[0]-30) > 1e-9 {
		t.Errorf("travel length = %v, want 30", ts.TravelLength[0])
	}
	// Two moving intervals of 10 s each.
	if ts.EffectiveTravelTime[0] != 20 {
		t.Errorf("effective travel time = %v, want 20", ts.EffectiveTravelTime[0])
	}
	if ts.TravelTime[0] != 30 {
		t.Errorf("travel time = %v, want 30", ts.TravelTime[0])
	}
}

func TestNormalizeSeated(t *testing.T) {
	tr := trace.New("x", 10)
	_ = tr.Append(trace.Snapshot{T: 10, Samples: []trace.Sample{
		{ID: 1, Pos: geom.V2(0, 0)}, // the {0,0,0} quirk
		{ID: 2, Pos: geom.V2(5, 5)},
	}})
	out := NormalizeSeated(tr)
	if !out.Snapshots[0].Samples[0].Seated {
		t.Error("zero position not marked seated")
	}
	if out.Snapshots[0].Samples[1].Seated {
		t.Error("non-zero position marked seated")
	}
	if tr.Snapshots[0].Samples[0].Seated {
		t.Error("original trace mutated")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	near := geom.V2(50, 50)
	frames := []map[trace.AvatarID]geom.Vec{
		{1: near, 2: near.Add(geom.V2(5, 0))},
		{1: near, 2: near.Add(geom.V2(6, 0))},
		{1: near, 2: geom.V2(200, 200)},
	}
	tr := buildTrace(t, 10, frames)
	an, err := Analyze(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if an.Contacts[BluetoothRange] == nil || an.Contacts[WiFiRange] == nil {
		t.Fatal("missing default ranges")
	}
	if an.Summary.Unique != 2 {
		t.Errorf("unique = %d", an.Summary.Unique)
	}
	if an.Zones.N() == 0 || an.Trips == nil {
		t.Error("missing zones or trips")
	}
}

func TestAnalyzeTreatsZeroAsSeated(t *testing.T) {
	tr := trace.New("x", 10)
	_ = tr.Append(trace.Snapshot{T: 10, Samples: []trace.Sample{
		{ID: 1, Pos: geom.V2(0, 0)},
		{ID: 2, Pos: geom.V2(3, 3)},
	}})
	_ = tr.Append(trace.Snapshot{T: 20, Samples: []trace.Sample{
		{ID: 1, Pos: geom.V2(0, 0)},
		{ID: 2, Pos: geom.V2(3, 3)},
	}})
	an, err := Analyze(tr, Config{TreatZeroAsSeated: true})
	if err != nil {
		t.Fatal(err)
	}
	// The {0,0,0} sample must not register as a user standing at the
	// origin 4.2 m from user 2.
	if an.Contacts[BluetoothRange].Pairs != 0 {
		t.Error("seated-at-origin sample created a contact")
	}
}
