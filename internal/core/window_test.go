package core

import (
	"testing"

	"slmob/internal/geom"
	"slmob/internal/trace"
)

// windowSnapshots builds a deterministic stream whose population churns:
// avatars appear, meet, separate, idle, and leave, so contacts and
// sessions regularly span window boundaries — the cases the merge
// invariant must survive.
func windowSnapshots(n int) []trace.Snapshot {
	snaps := make([]trace.Snapshot, n)
	for i := 0; i < n; i++ {
		t := int64(i+1) * 10
		var samples []trace.Sample
		// A stable pair, in contact except every 7th snapshot.
		if i%7 != 0 {
			samples = append(samples,
				trace.Sample{ID: 1, Pos: geom.V2(50, 50)},
				trace.Sample{ID: 2, Pos: geom.V2(54, 50)})
		} else {
			samples = append(samples,
				trace.Sample{ID: 1, Pos: geom.V2(50, 50)},
				trace.Sample{ID: 2, Pos: geom.V2(200, 200)})
		}
		// A churner: present for 5 snapshots out of 9 (sessions split).
		if i%9 < 5 {
			samples = append(samples, trace.Sample{ID: 3, Pos: geom.V2(52+float64(i%5), 48)})
		}
		// A walker crossing the land, meeting the pair mid-journey.
		samples = append(samples, trace.Sample{ID: 4, Pos: geom.V2(float64(4*(i%64)), 50)})
		// A late joiner, seated at first.
		if i > n/2 {
			samples = append(samples, trace.Sample{ID: 5, Pos: geom.V2(10, 10), Seated: i < n/2+10})
		}
		snaps[i] = trace.Snapshot{T: t, Samples: samples}
	}
	return snaps
}

func runPlain(t *testing.T, snaps []trace.Snapshot, cfg Config) *Analysis {
	t.Helper()
	a, err := NewAnalyzer("win", 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		if err := a.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	an, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func runWindowed(t *testing.T, snaps []trace.Snapshot, window int64, cfg Config) *WindowSeries {
	t.Helper()
	wa, err := NewWindowedAnalyzer("win", 10, window, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		if err := wa.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := wa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestWindowMergeParity pins the tentpole invariant: for several window
// lengths — including ones that do not divide the stream evenly —
// merging all window accumulators reproduces the whole-trace Analysis
// bit-identically.
func TestWindowMergeParity(t *testing.T) {
	snaps := windowSnapshots(500)
	cfg := Config{Ranges: []float64{10, 80}}
	whole := runPlain(t, snaps, cfg)
	for _, window := range []int64{60, 300, 777, 1200, 10000} {
		ws := runWindowed(t, snaps, window, cfg)
		merged, err := ws.Merge()
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		for _, d := range DiffAnalyses(merged, whole) {
			t.Errorf("window=%d: %s", window, d)
		}
	}
}

// TestWindowSeriesShape: windows are contiguous, absolute-aligned, and
// their per-window summaries partition the stream.
func TestWindowSeriesShape(t *testing.T) {
	snaps := windowSnapshots(120) // T in [10, 1200]
	ws := runWindowed(t, snaps, 300, Config{Ranges: []float64{10}})
	if ws.Window != 300 || ws.First != 0 {
		t.Fatalf("Window/First = %d/%d, want 300/0", ws.Window, ws.First)
	}
	// T=10..1200 covers windows 0..4 (1200/300 = 4).
	if len(ws.Windows) != 5 {
		t.Fatalf("windows = %d, want 5", len(ws.Windows))
	}
	totalSnaps, totalNew := 0, 0
	for i, w := range ws.Windows {
		lo, hi := (ws.First+int64(i))*300, (ws.First+int64(i)+1)*300
		if w.Summary.Snapshots > 0 && (w.Start < lo || w.End >= hi) {
			t.Errorf("window %d spans [%d,%d], want within [%d,%d)", i, w.Start, w.End, lo, hi)
		}
		totalSnaps += w.Summary.Snapshots
		totalNew += w.Summary.Unique
	}
	if totalSnaps != 120 {
		t.Errorf("snapshots across windows = %d, want 120", totalSnaps)
	}
	if totalNew != 5 {
		t.Errorf("new users across windows = %d, want 5", totalNew)
	}
}

// TestWindowHookTransient: hook mode delivers every window exactly once,
// in order, and the merge invariant holds for clones taken in the hook.
func TestWindowHookTransient(t *testing.T) {
	snaps := windowSnapshots(200)
	cfg := Config{Ranges: []float64{10, 80}}
	wa, err := NewWindowedAnalyzer("win", 10, 250, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ks []int64
	var clones []*Analysis
	wa.OnWindow(func(k int64, an *Analysis) {
		ks = append(ks, k)
		clones = append(clones, an.Clone())
	})
	for _, s := range snaps {
		if err := wa.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := wa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Windows != nil {
		t.Error("hook mode must not collect")
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] != ks[i-1]+1 {
			t.Fatalf("window indices not contiguous: %v", ks)
		}
	}
	merged, err := MergeAnalyses(clones)
	if err != nil {
		t.Fatal(err)
	}
	whole := runPlain(t, snaps, cfg)
	for _, d := range DiffAnalyses(merged, whole) {
		t.Error(d)
	}
}

// TestWindowRolloverZeroAllocSteadyState pins the rollover satellite:
// once the windowed analyzer has warmed up (every sink double-buffer has
// seen every distinct value), observing a full window — rollover
// included — allocates nothing in hook mode.
func TestWindowRolloverZeroAllocSteadyState(t *testing.T) {
	wa, err := NewWindowedAnalyzer("alloc", 10, 60, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	wa.OnWindow(func(_ int64, an *Analysis) {
		// A realistic consumer: touch a counter and a quantile.
		sum += float64(an.Contacts[BluetoothRange].Pairs)
		if an.Zones.N() > 0 {
			sum += an.Zones.Median()
		}
	})
	warm := allocSnapshots(600)
	for _, snap := range warm {
		if err := wa.Observe(snap); err != nil {
			t.Fatal(err)
		}
	}
	const runs = 120 // 20 full windows of 6 snapshots
	measured := allocSnapshots(600 + runs + 1)[600:]
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		if err := wa.Observe(measured[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Errorf("steady-state windowed Observe (with rollovers) allocates %v per snapshot, want 0", avg)
	}
	if _, err := wa.Finish(); err != nil {
		t.Fatal(err)
	}
	_ = sum
}

// TestWindowGapBounded: a snapshot whose timestamp would roll past an
// absurd number of windows is a typed error, not an unbounded emit loop.
func TestWindowGapBounded(t *testing.T) {
	wa, err := NewWindowedAnalyzer("gap", 10, 60, Config{Ranges: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Observe(trace.Snapshot{T: 10}); err != nil {
		t.Fatal(err)
	}
	if err := wa.Observe(trace.Snapshot{T: 1 << 50}); err == nil {
		t.Fatal("absurd timestamp gap accepted")
	}
}

// TestMergeAnalysesErrors: empty input and mismatched parts are rejected.
func TestMergeAnalysesErrors(t *testing.T) {
	if _, err := MergeAnalyses(nil); err == nil {
		t.Error("merging nothing succeeded")
	}
	a := runPlain(t, windowSnapshots(20), Config{Ranges: []float64{10}})
	b := runPlain(t, windowSnapshots(20), Config{Ranges: []float64{10, 80}})
	if _, err := MergeAnalyses([]*Analysis{a, b}); err == nil {
		t.Error("merging mismatched range sets succeeded")
	}
}
