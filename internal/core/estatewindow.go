package core

import (
	"fmt"
	"sync"

	"slmob/internal/stats"
	"slmob/internal/trace"
)

// estateWindows is the windowed-analytics side of an EstateAnalyzer.
// Every pipeline stage windows its own state independently — the feed
// (summary counters and trips), each per-range global contact tracker,
// and each region's windowed analyzer — keyed by the same absolute
// window index, so no cross-stage barrier is ever needed: stage s
// finalises window k the moment it sees a tick in window k+1, and a
// window is complete (assemblable, and deliverable to the live hook)
// once every stage has finalised it. All stages observe the same tick
// timeline, so their window sequences align exactly.
type estateWindows struct {
	w    int64
	hook func(k int64, win *EstateAnalysis)

	// mu guards the finalized-window lists, which workers append to and
	// the feed reads during assembly. Rollovers are per-window rare, so
	// contention is negligible.
	mu sync.Mutex

	// Feed-owned window state (summary counters, cross-region trips).
	feedStarted bool
	feedIdx     int64
	k0          int64
	feedCur     *feedSink
	feedDone    []*feedSink

	// Per-range global contact windows, owned by the range stages.
	rangeStarted []bool
	rangeIdx     []int64
	rangeDone    [][]*ContactSet

	// Per-region windowed analyzers (each wrapping the corresponding
	// ea.regional analyzer) and their finalized windows.
	regionW    []*WindowedAnalyzer
	regionDone [][]*Analysis

	// assembled caches completed windows, shared by the live hook and
	// the final result.
	assembled []*EstateAnalysis
}

// feedSink is one window's worth of feed-side events: population
// counters plus the sessions that closed during the window.
type feedSink struct {
	snapshots     int
	start, end    int64
	totalSamples  int
	maxConcurrent int
	newUsers      int
	closed        []closedSession
}

// initWindows arms the estate analyzer's windowed mode (cfg.Window > 0).
func (ea *EstateAnalyzer) initWindows() {
	w := &estateWindows{
		w:            ea.cfg.Window,
		feedCur:      &feedSink{},
		rangeStarted: make([]bool, len(ea.cfg.Ranges)),
		rangeIdx:     make([]int64, len(ea.cfg.Ranges)),
		rangeDone:    make([][]*ContactSet, len(ea.cfg.Ranges)),
		regionDone:   make([][]*Analysis, len(ea.regional)),
	}
	ea.trips.bind(&w.feedCur.closed)
	for i, a := range ea.regional {
		ww, err := newWindowedOver(a, w.w)
		if err != nil {
			// Window positivity was vetted by the caller.
			panic(err)
		}
		ri := i
		ww.OnWindow(func(_ int64, an *Analysis) {
			c := an.Clone()
			w.mu.Lock()
			w.regionDone[ri] = append(w.regionDone[ri], c)
			w.mu.Unlock()
		})
		w.regionW = append(w.regionW, ww)
	}
	ea.win = w
}

// OnWindow registers a live per-window hook: every window is delivered —
// in order, while the stream is still being consumed — as soon as all
// pipeline stages have moved past it. The delivered values are retained
// (they are the same objects returned in EstateAnalysis.Windows), so the
// callback may keep them. Must be called before Consume.
func (ea *EstateAnalyzer) OnWindow(fn func(k int64, win *EstateAnalysis)) error {
	if ea.win == nil {
		return fmt.Errorf("core: OnWindow on a non-windowed estate analyzer (set Config.Window)")
	}
	ea.win.hook = fn
	return nil
}

// feedRollover advances the feed's window cursor to the window holding
// tick time t, finalising any windows passed over, and returns the
// current window sink. Runs on the feed goroutine.
func (w *estateWindows) feedRollover(t int64, trips *tripTracker) *feedSink {
	k := t / w.w
	if !w.feedStarted {
		w.feedStarted = true
		w.feedIdx = k
		w.k0 = k
	}
	for w.feedIdx < k {
		done := w.feedCur
		w.mu.Lock()
		w.feedDone = append(w.feedDone, done)
		w.mu.Unlock()
		w.feedCur = &feedSink{}
		trips.bind(&w.feedCur.closed)
		w.feedIdx++
	}
	return w.feedCur
}

// completeWindows reports how many windows every stage has finalised.
// Call with mu held.
func (w *estateWindows) completeWindows() int {
	n := len(w.feedDone)
	for _, rd := range w.rangeDone {
		if len(rd) < n {
			n = len(rd)
		}
	}
	for _, rd := range w.regionDone {
		if len(rd) < n {
			n = len(rd)
		}
	}
	return n
}

// emitReadyWindows assembles and delivers every newly completed window
// to the live hook. Runs on the feed goroutine between ticks; a no-op
// without a hook (windows are then assembled once, at finish).
func (ea *EstateAnalyzer) emitReadyWindows() {
	w := ea.win
	if w == nil || w.hook == nil {
		return
	}
	w.mu.Lock()
	n := w.completeWindows()
	for len(w.assembled) < n {
		w.assembled = append(w.assembled, ea.assembleWindow(len(w.assembled)))
	}
	ready := w.assembled
	w.mu.Unlock()
	for i := ea.winEmitted; i < n; i++ {
		w.hook(w.k0+int64(i), ready[i])
	}
	ea.winEmitted = n
}

// assembleWindow builds window j (offset from k0) from the stages'
// finalized state. Call with mu held; the referenced window objects are
// immutable once finalized.
func (ea *EstateAnalyzer) assembleWindow(j int) *EstateAnalysis {
	w := ea.win
	fs := w.feedDone[j]
	global := &Analysis{
		Land: ea.estate,
		Summary: trace.Summary{
			Land:          ea.estate,
			Snapshots:     fs.snapshots,
			Unique:        fs.newUsers,
			MaxConcurrent: fs.maxConcurrent,
			TotalSamples:  fs.totalSamples,
		},
		Start:    fs.start,
		End:      fs.end,
		Contacts: make(map[float64]*ContactSet, len(ea.cfg.Ranges)),
		Zones:    stats.NewWeighted(),
	}
	if fs.snapshots >= 2 {
		global.Summary.DurationSec = fs.end - fs.start
	}
	if fs.snapshots > 0 {
		global.Summary.MeanConcurrent = float64(fs.totalSamples) / float64(fs.snapshots)
	}
	for i, r := range ea.cfg.Ranges {
		global.Contacts[r] = w.rangeDone[i][j]
	}
	regions := make([]*Analysis, len(ea.regional))
	for i := range regions {
		regions[i] = w.regionDone[i][j]
		global.Zones.Merge(regions[i].Zones)
	}
	global.Trips = buildTripStats(fs.closed, nil)
	return &EstateAnalysis{Estate: ea.estate, Global: global, Regions: regions}
}

// finishWindowed seals every stage's final window, assembles the window
// series, and derives the whole-run Global and Regions by merging it —
// bit-identical to a non-windowed run by the merge invariant (pinned by
// the estate windowed-parity test).
func (ea *EstateAnalyzer) finishWindowed() (*EstateAnalysis, error) {
	w := ea.win

	// Seal the final windows. All stages have drained: no concurrent
	// observers remain. An empty stream yields one empty window per
	// stage (the regional windowed analyzers do the same in Finish), so
	// the series always exists and the alignment checks below hold.
	for _, ww := range w.regionW {
		if _, err := ww.Finish(); err != nil {
			return nil, err
		}
	}
	for i := range ea.contacts {
		ea.contacts[i].finish(len(ea.firstSeen))
		w.rangeDone[i] = append(w.rangeDone[i], ea.contacts[i].cs)
	}
	ea.trips.closeAll()
	w.feedDone = append(w.feedDone, w.feedCur)

	res := &EstateAnalysis{
		Estate:    ea.estate,
		Regions:   make([]*Analysis, len(ea.regional)),
		WindowSec: w.w,
	}

	total := len(w.feedDone)
	for i := range ea.cfg.Ranges {
		if len(w.rangeDone[i]) != total {
			return nil, fmt.Errorf("core: range %d finalised %d windows, feed %d", i, len(w.rangeDone[i]), total)
		}
	}
	for i := range ea.regional {
		if len(w.regionDone[i]) != total {
			return nil, fmt.Errorf("core: region %d finalised %d windows, feed %d", i, len(w.regionDone[i]), total)
		}
	}

	for len(w.assembled) < total {
		w.assembled = append(w.assembled, ea.assembleWindow(len(w.assembled)))
	}
	if w.hook != nil {
		for i := ea.winEmitted; i < total; i++ {
			w.hook(w.k0+int64(i), w.assembled[i])
		}
		ea.winEmitted = total
	}
	res.FirstWindow = w.k0
	res.Windows = w.assembled

	// Whole-run regional analyses: merge each region's window series.
	for i := range ea.regional {
		merged, err := MergeAnalyses(w.regionDone[i])
		if err != nil {
			return nil, err
		}
		res.Regions[i] = merged
	}

	// Whole-run global: whole-stream summary plus merged window events.
	global := &Analysis{
		Land:     ea.estate,
		Summary:  ea.buildGlobalSummary(),
		Start:    ea.firstT,
		End:      ea.lastT,
		Contacts: make(map[float64]*ContactSet, len(ea.cfg.Ranges)),
		Zones:    stats.NewWeighted(),
	}
	for i, r := range ea.cfg.Ranges {
		merged := newContactSet(r, ea.tau)
		for _, cs := range w.rangeDone[i] {
			merged.mergeFrom(cs)
		}
		global.Contacts[r] = merged
	}
	var sess []closedSession
	for _, ra := range res.Regions {
		global.Zones.Merge(ra.Zones)
	}
	for _, fs := range w.feedDone {
		sess = append(sess, fs.closed...)
	}
	global.Trips = buildTripStats(sess, nil)
	res.Global = global
	return res, nil
}
