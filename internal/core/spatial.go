package core

import (
	"fmt"
	"math"
	"slices"

	"slmob/internal/trace"
)

// ZoneOccupation divides the land into square cells of edge cellSize
// metres and returns one occupancy count per (cell, snapshot) pair —
// the population behind the paper's Fig. 3 CDF (L = 20 m). Empty cells
// contribute zeros: the paper's observation is precisely that "a large
// fraction of the land has no users".
func ZoneOccupation(tr *trace.Trace, landSize, cellSize float64) ([]float64, error) {
	if landSize <= 0 || cellSize <= 0 {
		return nil, fmt.Errorf("core: invalid zone parameters land=%v cell=%v", landSize, cellSize)
	}
	n := int(math.Ceil(landSize / cellSize))
	cells := n * n
	counts := make([]int, cells)
	// One sample per (cell, snapshot): size the output up front instead of
	// re-growing a multi-megabyte slice doubling by doubling, and reuse
	// the single counts buffer across snapshots (matching the streaming
	// zone accumulator's behaviour).
	out := make([]float64, 0, len(tr.Snapshots)*cells)
	for _, snap := range tr.Snapshots {
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range snap.Samples {
			if s.Seated {
				continue
			}
			cx := int(s.Pos.X / cellSize)
			cy := int(s.Pos.Y / cellSize)
			if cx < 0 || cy < 0 || cx >= n || cy >= n {
				continue // outside the modelled footprint
			}
			counts[cy*n+cx]++
		}
		for _, c := range counts {
			out = append(out, float64(c))
		}
	}
	return out, nil
}

// TripStats aggregates the per-session trip metrics of §3.2 (Fig. 4).
// All three slices are kept in the canonical session order: login time,
// then avatar ID.
type TripStats struct {
	// TravelLength is the distance covered by each session, computed as
	// the sampled ground-plane path length from login to logout (Fig. 4a).
	TravelLength []float64
	// EffectiveTravelTime is the time spent moving — pause intervals
	// excluded — per session (Fig. 4b).
	EffectiveTravelTime []float64
	// TravelTime is the total connection time per session (Fig. 4c, the
	// "login time").
	TravelTime []float64

	// sess retains the per-session records with their (login, id) sort
	// keys, so window TripStats can be merged back into the whole-trace
	// ordering bit-identically.
	sess []closedSession
}

// Clone returns an independent deep copy. The slices are already in
// canonical order, so this is a plain copy — no re-sort. Empty slices
// normalise to nil, matching what a fresh buildTripStats produces (the
// parity tests compare TripStats with reflect.DeepEqual).
func (ts *TripStats) Clone() *TripStats {
	cloned := func(s []float64) []float64 {
		if len(s) == 0 {
			return nil
		}
		return slices.Clone(s)
	}
	out := &TripStats{
		TravelLength:        cloned(ts.TravelLength),
		EffectiveTravelTime: cloned(ts.EffectiveTravelTime),
		TravelTime:          cloned(ts.TravelTime),
	}
	if len(ts.sess) > 0 {
		out.sess = slices.Clone(ts.sess)
	}
	return out
}

// Trips computes trip metrics over the trace's sessions. A sample-to-
// sample displacement above moveEps metres marks the interval as "moving"
// for the effective-travel-time metric; moveEps <= 0 selects a default of
// 0.5 m, below which coarse 1 m map quantisation produces phantom motion.
func Trips(tr *trace.Trace, moveEps float64, sessionGap int64) *TripStats {
	if moveEps <= 0 {
		moveEps = 0.5
	}
	var closed []closedSession
	for _, sess := range tr.Sessions(sessionGap) {
		var length float64
		var moving int64
		var prev *trace.TimedPos
		for i := range sess.Samples {
			cur := &sess.Samples[i]
			if cur.Seated {
				continue
			}
			if prev != nil {
				d := cur.Pos.DistXY(prev.Pos)
				length += d
				if d > moveEps {
					moving += cur.T - prev.T
				}
			}
			prev = cur
		}
		closed = append(closed, closedSession{
			id:       sess.ID,
			login:    sess.Login(),
			duration: sess.Duration(),
			length:   length,
			moving:   moving,
		})
	}
	return buildTripStats(closed, nil)
}

// NormalizeSeated returns a copy of the trace in which any sample at the
// exact origin is flagged as seated. Wire-protocol monitors cannot see the
// seated state directly — they only see the {0,0,0} coordinate quirk the
// paper documents — so analysis of crawler traces applies this repair
// before computing spatial metrics.
func NormalizeSeated(tr *trace.Trace) *trace.Trace {
	out := trace.New(tr.Land, tr.Tau)
	for k, v := range tr.Meta {
		out.Meta[k] = v
	}
	for _, snap := range tr.Snapshots {
		ns := trace.Snapshot{T: snap.T, Samples: make([]trace.Sample, len(snap.Samples))}
		copy(ns.Samples, snap.Samples)
		for i := range ns.Samples {
			if ns.Samples[i].Pos.IsZero() {
				ns.Samples[i].Seated = true
			}
		}
		out.Snapshots = append(out.Snapshots, ns)
	}
	return out
}

// landSizeOf extracts the land size from trace metadata, defaulting to
// the Second Life standard 256 m when the key is absent. A present but
// malformed value is a decode error, not a silent fallback.
func landSizeOf(tr *trace.Trace) (float64, error) {
	v, err := (trace.Info{Meta: tr.Meta}).Size()
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 256, nil
	}
	return v, nil
}
