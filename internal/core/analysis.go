package core

import (
	"fmt"

	"slmob/internal/stats"
	"slmob/internal/trace"
)

// Paper measurement constants (§3): snapshot period and the two
// communication ranges simulating Bluetooth and 802.11a WiFi devices.
const (
	PaperTau        int64   = 10
	BluetoothRange  float64 = 10
	WiFiRange       float64 = 80
	PaperZoneLength float64 = 20
)

// Config controls a full analysis run.
type Config struct {
	// Ranges are the communication ranges to analyse; nil selects the
	// paper's {10, 80}.
	Ranges []float64
	// ZoneSize is the zone-occupation cell edge; 0 selects the paper's 20.
	ZoneSize float64
	// MoveEps is the minimum sample-to-sample displacement counted as
	// movement; 0 selects 0.5 m.
	MoveEps float64
	// SessionGap is the absence tolerance before a session splits;
	// 0 selects 2τ.
	SessionGap int64
	// LandSize is the modelled land edge for zone occupation; 0 selects
	// the trace metadata's "size" key on the batch path, falling back to
	// the Second Life standard 256 m.
	LandSize float64
	// TreatZeroAsSeated repairs the {0,0,0} sitting quirk before spatial
	// analysis. Enable for wire-protocol traces (crawler, sensors), which
	// cannot observe the seated state directly.
	TreatZeroAsSeated bool
	// RangeWorkers bounds how many communication ranges a streaming
	// Analyzer advances concurrently per snapshot; 0 or 1 selects
	// sequential per-range processing. The worker count never changes
	// results, only wall time. In an estate analysis it composes with the
	// per-region workers: every regional analyzer fans its ranges out the
	// same way.
	RangeWorkers int
	// Window, when positive, slices the measurement into fixed windows of
	// this many seconds aligned to absolute time (3600 gives hourly,
	// clock-aligned windows). The plain Analyzer ignores it; the
	// WindowedAnalyzer and the estate analyzer emit one Analysis per
	// window, with the invariant that merging every window reproduces the
	// whole-trace result bit-identically.
	Window int64
	// DisableIncremental forces every per-snapshot proximity graph to be
	// rebuilt from scratch instead of patched from the previous snapshot
	// (graph.Workspace.ApplyPositions). The two paths are bit-identical by
	// contract, so this is a debugging/differential-testing switch, not a
	// correctness knob; it never changes results, only wall time. It is
	// deliberately not serialised in checkpoints: the restored process
	// decides its own build strategy.
	DisableIncremental bool
}

// withDefaults fills zero fields with the paper's parameters. The trace's
// snapshot period resolves the documented SessionGap default of 2τ.
func (c Config) withDefaults(tau int64) Config {
	if len(c.Ranges) == 0 {
		c.Ranges = []float64{BluetoothRange, WiFiRange}
	}
	if c.ZoneSize == 0 {
		c.ZoneSize = PaperZoneLength
	}
	if c.MoveEps <= 0 {
		c.MoveEps = 0.5
	}
	if c.SessionGap <= 0 {
		c.SessionGap = 2 * tau
	}
	if c.LandSize == 0 {
		c.LandSize = 256
	}
	return c
}

// Accumulator is the contract every metric state in the analysis core
// satisfies: the pair-table contact sink (ContactSet), the line-of-sight
// metrics (NetMetrics), the weighted distributions behind every
// integer-valued metric (stats.Weighted), and the trip session records.
//
//   - Resettable: Reset returns the accumulator to empty while keeping
//     every internal allocation, so window sinks recycle without heap
//     traffic (the rollover AllocsPerRun pin).
//   - Mergeable: each type exposes a merge (Weighted.Merge, the
//     Analysis-level MergeAnalyses) with the invariant that merging the
//     per-window accumulators of a stream reproduces the whole-stream
//     accumulator bit-identically — events are attributed to exactly one
//     window, at the snapshot where they resolve.
//   - Serializable: state round-trips through the versioned binary
//     snapshot format of internal/snap (Checkpoint / RestoreAnalyzer),
//     with typed errors on truncated, corrupted, or version-skewed input.
//
// DESIGN.md §6 documents the contract and the wire format.
type Accumulator interface {
	Reset()
}

// Compile-time contract checks for the accumulator types.
var (
	_ Accumulator = (*stats.Weighted)(nil)
	_ Accumulator = (*ContactSet)(nil)
	_ Accumulator = (*NetMetrics)(nil)
)

// Analysis is the complete per-land result set: everything needed to
// regenerate the paper's figures for one target land — either for a
// whole trace or, when produced by a WindowedAnalyzer, for one time
// window of it.
type Analysis struct {
	Land    string
	Summary trace.Summary
	// Start and End are the first and last snapshot times covered
	// (window bounds for windowed results); both zero when no snapshot
	// was observed.
	Start, End int64
	// Contacts maps range -> temporal metrics (Fig. 1).
	Contacts map[float64]*ContactSet
	// Nets maps range -> line-of-sight network metrics (Fig. 2).
	Nets map[float64]*NetMetrics
	// Zones holds the distribution of per-(cell, snapshot) occupancies
	// (Fig. 3) as a weighted accumulator: a day of 20 m cells is millions
	// of observations but only a handful of distinct counts.
	Zones *stats.Weighted
	// Trips holds the per-session trip metrics (Fig. 4).
	Trips *TripStats
}

// Clone returns an independent deep copy — what the windowed analyzer
// emits in collection mode, so recycled sinks never alias a returned
// window.
func (a *Analysis) Clone() *Analysis {
	out := &Analysis{
		Land:     a.Land,
		Summary:  a.Summary,
		Start:    a.Start,
		End:      a.End,
		Contacts: make(map[float64]*ContactSet, len(a.Contacts)),
		Nets:     make(map[float64]*NetMetrics, len(a.Nets)),
	}
	for r, cs := range a.Contacts {
		out.Contacts[r] = cs.Clone()
	}
	for r, nm := range a.Nets {
		out.Nets[r] = nm.Clone()
	}
	if a.Zones != nil {
		out.Zones = a.Zones.Clone()
	}
	if a.Trips != nil {
		out.Trips = a.Trips.Clone()
	}
	return out
}

// Analyze runs the full pipeline on one trace, re-walking it once per
// metric. The incremental Analyzer produces the same Analysis from a
// snapshot stream in a single pass without materialising the trace.
func Analyze(tr *trace.Trace, cfg Config) (*Analysis, error) {
	if cfg.LandSize == 0 {
		var err error
		if cfg.LandSize, err = landSizeOf(tr); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults(tr.Tau)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	if cfg.TreatZeroAsSeated {
		tr = NormalizeSeated(tr)
	}
	a := &Analysis{
		Land:     tr.Land,
		Summary:  tr.Summarize(),
		Contacts: make(map[float64]*ContactSet, len(cfg.Ranges)),
		Nets:     make(map[float64]*NetMetrics, len(cfg.Ranges)),
	}
	if n := len(tr.Snapshots); n > 0 {
		a.Start = tr.Snapshots[0].T
		a.End = tr.Snapshots[n-1].T
	}
	for _, r := range cfg.Ranges {
		cs, err := ExtractContacts(tr, r)
		if err != nil {
			return nil, err
		}
		a.Contacts[r] = cs
		nm, err := LoSMetrics(tr, r)
		if err != nil {
			return nil, err
		}
		a.Nets[r] = nm
	}
	zones, err := ZoneOccupation(tr, cfg.LandSize, cfg.ZoneSize)
	if err != nil {
		return nil, err
	}
	a.Zones = stats.WeightedOf(zones...)
	a.Trips = Trips(tr, cfg.MoveEps, cfg.SessionGap)
	return a, nil
}
