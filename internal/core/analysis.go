package core

import (
	"fmt"

	"slmob/internal/stats"
	"slmob/internal/trace"
)

// Paper measurement constants (§3): snapshot period and the two
// communication ranges simulating Bluetooth and 802.11a WiFi devices.
const (
	PaperTau        int64   = 10
	BluetoothRange  float64 = 10
	WiFiRange       float64 = 80
	PaperZoneLength float64 = 20
)

// Config controls a full analysis run.
type Config struct {
	// Ranges are the communication ranges to analyse; nil selects the
	// paper's {10, 80}.
	Ranges []float64
	// ZoneSize is the zone-occupation cell edge; 0 selects the paper's 20.
	ZoneSize float64
	// MoveEps is the minimum sample-to-sample displacement counted as
	// movement; 0 selects 0.5 m.
	MoveEps float64
	// SessionGap is the absence tolerance before a session splits;
	// 0 selects 2τ.
	SessionGap int64
	// LandSize is the modelled land edge for zone occupation; 0 selects
	// the trace metadata's "size" key on the batch path, falling back to
	// the Second Life standard 256 m.
	LandSize float64
	// TreatZeroAsSeated repairs the {0,0,0} sitting quirk before spatial
	// analysis. Enable for wire-protocol traces (crawler, sensors), which
	// cannot observe the seated state directly.
	TreatZeroAsSeated bool
	// RangeWorkers bounds how many communication ranges a streaming
	// Analyzer advances concurrently per snapshot; 0 or 1 selects
	// sequential per-range processing. The worker count never changes
	// results, only wall time. In an estate analysis it composes with the
	// per-region workers: every regional analyzer fans its ranges out the
	// same way.
	RangeWorkers int
}

// withDefaults fills zero fields with the paper's parameters. The trace's
// snapshot period resolves the documented SessionGap default of 2τ.
func (c Config) withDefaults(tau int64) Config {
	if len(c.Ranges) == 0 {
		c.Ranges = []float64{BluetoothRange, WiFiRange}
	}
	if c.ZoneSize == 0 {
		c.ZoneSize = PaperZoneLength
	}
	if c.MoveEps <= 0 {
		c.MoveEps = 0.5
	}
	if c.SessionGap <= 0 {
		c.SessionGap = 2 * tau
	}
	if c.LandSize == 0 {
		c.LandSize = 256
	}
	return c
}

// Analysis is the complete per-land result set: everything needed to
// regenerate the paper's figures for one target land.
type Analysis struct {
	Land    string
	Summary trace.Summary
	// Contacts maps range -> temporal metrics (Fig. 1).
	Contacts map[float64]*ContactSet
	// Nets maps range -> line-of-sight network metrics (Fig. 2).
	Nets map[float64]*NetMetrics
	// Zones holds the distribution of per-(cell, snapshot) occupancies
	// (Fig. 3) as a weighted accumulator: a day of 20 m cells is millions
	// of observations but only a handful of distinct counts.
	Zones *stats.Weighted
	// Trips holds the per-session trip metrics (Fig. 4).
	Trips *TripStats
}

// Analyze runs the full pipeline on one trace, re-walking it once per
// metric. The incremental Analyzer produces the same Analysis from a
// snapshot stream in a single pass without materialising the trace.
func Analyze(tr *trace.Trace, cfg Config) (*Analysis, error) {
	if cfg.LandSize == 0 {
		var err error
		if cfg.LandSize, err = landSizeOf(tr); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults(tr.Tau)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	if cfg.TreatZeroAsSeated {
		tr = NormalizeSeated(tr)
	}
	a := &Analysis{
		Land:     tr.Land,
		Summary:  tr.Summarize(),
		Contacts: make(map[float64]*ContactSet, len(cfg.Ranges)),
		Nets:     make(map[float64]*NetMetrics, len(cfg.Ranges)),
	}
	for _, r := range cfg.Ranges {
		cs, err := ExtractContacts(tr, r)
		if err != nil {
			return nil, err
		}
		a.Contacts[r] = cs
		nm, err := LoSMetrics(tr, r)
		if err != nil {
			return nil, err
		}
		a.Nets[r] = nm
	}
	zones, err := ZoneOccupation(tr, cfg.LandSize, cfg.ZoneSize)
	if err != nil {
		return nil, err
	}
	a.Zones = stats.WeightedOf(zones...)
	a.Trips = Trips(tr, cfg.MoveEps, cfg.SessionGap)
	return a, nil
}
