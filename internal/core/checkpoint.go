package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"slmob/internal/snap"
	"slmob/internal/stats"
	"slmob/internal/trace"
)

// sortedKeys returns the map's keys in ascending order. Every map that
// reaches a snap.Writer is iterated through this: Go randomises map
// iteration order per run, and checkpoint bytes must be reproducible —
// equal states must serialise identically (the determinism analyzer
// enforces exactly this).
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Checkpointing: the serializable leg of the Accumulator contract. A
// checkpoint is a versioned binary snapshot (internal/snap) of the FULL
// analyzer state — configuration, stream cursor, every state machine
// (pair tables mid-contact, open sessions, first-seen maps) and every
// event sink — so a killed run restores and, re-fed the remainder of the
// stream, finishes with a digest identical to an uninterrupted run. The
// golden checkpoint fixture pins exactly that.
//
// Payload kinds within the snap container:
//
//	kindAnalyzer  — a plain Analyzer
//	kindWindowed  — a WindowedAnalyzer (window state + collected series
//	                + the embedded analyzer)
//
// Corrupted, truncated, or version-skewed snapshots return a typed
// *snap.Error, never panic — pinned by FuzzRestoreAnalyzer.

// Payload kinds (the snap container's kind field).
const (
	KindAnalyzer uint64 = 1
	KindWindowed uint64 = 2
	// KindWorldSource and KindRun are reserved for the world package's
	// simulation state and the façade's combined run checkpoint.
	KindWorldSource uint64 = 3
	KindRun         uint64 = 4
	// KindAnalysis is a standalone completed Analysis — the live query
	// service's wire format (EncodeAnalysis / DecodeAnalysis).
	KindAnalysis uint64 = 5
)

// checkpointVersion guards the analyzer payload layout (bumped
// independently of the snap container version).
const checkpointVersion = 1

// maxZoneGridEdge bounds the decoded zone grid: no real land or estate
// region needs more cells per edge, and a corrupted snapshot must not
// dictate the allocation.
const maxZoneGridEdge = 1 << 12

func finitePositive(v float64) bool {
	return v > 0 && v <= math.MaxFloat64
}

// Checkpoint serialises the analyzer's complete state. It must be taken
// between Observe calls (never concurrently with one) and fails after
// Finish.
func (a *Analyzer) Checkpoint() ([]byte, error) {
	if a.finished {
		return nil, fmt.Errorf("core: Checkpoint after Finish")
	}
	w := snap.NewWriter(KindAnalyzer)
	w.Uvarint(checkpointVersion)
	a.encodeState(w)
	return w.Finish(), nil
}

// ResumePoint returns the time of the last observed snapshot — the point
// a resumed Consume skips through — or 0 before any observation.
func (a *Analyzer) ResumePoint() int64 {
	if !a.started {
		return 0
	}
	return a.lastT
}

// RestoreAnalyzer rebuilds an analyzer from a Checkpoint blob. The
// restored analyzer skips already-observed snapshots in Consume, so
// feeding it the original source from the start resumes exactly where
// the checkpoint was taken.
func RestoreAnalyzer(data []byte) (*Analyzer, error) {
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	if r.Kind() != KindAnalyzer {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: fmt.Sprintf("payload kind %d is not an analyzer checkpoint", r.Kind())}
	}
	if v := r.Uvarint(); r.Err() == nil && v != checkpointVersion {
		return nil, &snap.Error{Kind: snap.KindVersion, Msg: fmt.Sprintf("analyzer checkpoint version %d, want %d", v, checkpointVersion)}
	}
	a, err := decodeAnalyzer(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// Checkpoint serialises the windowed analyzer: its window cursor, the
// collected series, and the embedded analyzer. A hook registered with
// OnWindow is not serialised — re-register it after restore, before
// resuming. Windows that complete after the checkpoint but before a
// crash are re-delivered on the resumed run (at-least-once semantics).
//
// In collection mode every checkpoint re-serialises the whole collected
// series, so periodic checkpointing of a long, finely windowed run
// grows each write with the window count; prefer hook mode (OnWindow)
// there — it keeps the checkpoint to the live state machines alone.
func (wa *WindowedAnalyzer) Checkpoint() ([]byte, error) {
	if wa.finished {
		return nil, fmt.Errorf("core: Checkpoint after Finish")
	}
	w := snap.NewWriter(KindWindowed)
	w.Uvarint(checkpointVersion)
	w.Varint(wa.window)
	w.Bool(wa.started)
	w.Varint(wa.curIdx)
	w.Bool(wa.hook != nil)
	w.Varint(wa.series.First)
	w.Uvarint(uint64(len(wa.series.Windows)))
	for _, an := range wa.series.Windows {
		encodeAnalysis(w, an)
	}
	wa.a.encodeState(w)
	return w.Finish(), nil
}

// ResumePoint mirrors Analyzer.ResumePoint.
func (wa *WindowedAnalyzer) ResumePoint() int64 { return wa.a.ResumePoint() }

// RestoreWindowedAnalyzer rebuilds a windowed analyzer from its
// Checkpoint blob. If the checkpoint was taken in hook mode the restored
// analyzer refuses to run (RequiresHook reports true) until the real
// hook is re-registered with OnWindow — otherwise every resumed window
// would silently vanish into a placeholder.
func RestoreWindowedAnalyzer(data []byte) (*WindowedAnalyzer, error) {
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, err
	}
	if r.Kind() != KindWindowed {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: fmt.Sprintf("payload kind %d is not a windowed checkpoint", r.Kind())}
	}
	if v := r.Uvarint(); r.Err() == nil && v != checkpointVersion {
		return nil, &snap.Error{Kind: snap.KindVersion, Msg: fmt.Sprintf("windowed checkpoint version %d, want %d", v, checkpointVersion)}
	}
	window := r.Varint()
	started := r.Bool()
	curIdx := r.Varint()
	hooked := r.Bool()
	first := r.Varint()
	nw := r.Count(1)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "non-positive window"}
	}
	// Observe forbids negative snapshot times, so a legitimate window
	// cursor is never negative; a crafted one would make the first
	// resumed Observe emit empty windows until it catches up.
	if started && (curIdx < 0 || curIdx < first) {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "window cursor out of range"}
	}
	windows := make([]*Analysis, 0, nw)
	for i := 0; i < nw; i++ {
		an, err := decodeAnalysis(r)
		if err != nil {
			return nil, err
		}
		windows = append(windows, an)
	}
	a, err := decodeAnalyzer(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	wa := &WindowedAnalyzer{
		a:       a,
		window:  window,
		started: started,
		curIdx:  curIdx,
		series:  &WindowSeries{Land: a.land, Window: window, First: first, Windows: windows},
	}
	wa.spare = a.newSink()
	wa.needHook = hooked
	return wa, nil
}

// ---- Analyzer body ----

// encodeState writes everything NewAnalyzer cannot reconstruct: the
// configuration, the stream cursor, the state machines, and the current
// sink.
func (a *Analyzer) encodeState(w *snap.Writer) {
	w.String(a.land)
	w.Varint(a.tau)
	// Configuration (already default-filled).
	w.Uvarint(uint64(len(a.cfg.Ranges)))
	for _, r := range a.cfg.Ranges {
		w.F64(r)
	}
	w.F64(a.cfg.ZoneSize)
	w.F64(a.cfg.MoveEps)
	w.Varint(a.cfg.SessionGap)
	w.F64(a.cfg.LandSize)
	w.Bool(a.cfg.TreatZeroAsSeated)
	w.Varint(int64(a.cfg.RangeWorkers))
	w.Varint(a.cfg.Window)
	// cfg.DisableIncremental is intentionally not serialised: it selects a
	// build strategy, not analysis state — the two strategies are
	// bit-identical — and the restored process chooses its own. The graph
	// workspaces' incremental state is likewise not serialised; a restored
	// analyzer starts with fresh workspaces, whose first ApplyPositions is
	// a full rebuild, so kill-and-resume stays digest-identical by
	// construction.
	// Stream cursor.
	w.Bool(a.started)
	w.Varint(a.firstT)
	w.Varint(a.lastT)
	// Current sink counters.
	s := a.cur
	w.Varint(int64(s.snapshots))
	w.Varint(s.start)
	w.Varint(s.end)
	w.Varint(int64(s.totalSamples))
	w.Varint(int64(s.maxConcurrent))
	w.Varint(int64(s.newUsers))
	// First appearances, in ascending avatar order for reproducible
	// bytes.
	w.Uvarint(uint64(len(a.firstSeenT)))
	for _, id := range sortedKeys(a.firstSeenT) {
		w.Uvarint(uint64(id))
		w.Varint(a.firstSeenT[id])
	}
	// Per-range state machines and sinks.
	for i, rs := range a.ranges {
		encodeTracker(w, rs.ct)
		encodeContactSet(w, s.contacts[i])
		encodeNetMetrics(w, s.nets[i])
	}
	s.zones.Encode(w)
	// Trips: open sessions (ascending avatar order) then the window's
	// closed sessions.
	w.Uvarint(uint64(len(a.trips.open)))
	for _, id := range sortedKeys(a.trips.open) {
		ss := a.trips.open[id]
		w.Uvarint(uint64(id))
		w.Varint(ss.login)
		w.Varint(ss.last)
		w.F64(ss.length)
		w.Varint(ss.moving)
		w.Bool(ss.hasPrev)
		w.F64(ss.prevPos.X)
		w.F64(ss.prevPos.Y)
		w.F64(ss.prevPos.Z)
		w.Varint(ss.prevT)
	}
	encodeClosed(w, s.closed)
}

func decodeAnalyzer(r *snap.Reader) (*Analyzer, error) {
	land := r.String()
	tau := r.Varint()
	nr := r.Count(8)
	var cfg Config
	for i := 0; i < nr; i++ {
		cfg.Ranges = append(cfg.Ranges, r.F64())
	}
	cfg.ZoneSize = r.F64()
	cfg.MoveEps = r.F64()
	cfg.SessionGap = r.Varint()
	cfg.LandSize = r.F64()
	cfg.TreatZeroAsSeated = r.Bool()
	cfg.RangeWorkers = int(r.Varint())
	cfg.Window = r.Varint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Validate the geometry before NewAnalyzer sizes the zone grid from
	// it: a hostile LandSize/ZoneSize ratio (or a NaN) must be a typed
	// error, not a multi-gigabyte allocation or an integer-overflow
	// panic.
	for _, v := range append([]float64{cfg.ZoneSize, cfg.MoveEps, cfg.LandSize}, cfg.Ranges...) {
		if !finitePositive(v) {
			return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "non-finite or non-positive analysis parameter"}
		}
	}
	if cfg.LandSize/cfg.ZoneSize > maxZoneGridEdge {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "zone grid too large"}
	}
	a, err := NewAnalyzer(land, tau, cfg)
	if err != nil {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: err.Error()}
	}
	if len(a.cfg.Ranges) != nr {
		// withDefaults replaced an empty range list: the checkpoint was
		// written with explicit ranges, so an empty list is corruption.
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "no ranges in checkpoint"}
	}
	a.started = r.Bool()
	a.firstT = r.Varint()
	a.lastT = r.Varint()
	s := a.cur
	s.snapshots = int(r.Varint())
	s.start = r.Varint()
	s.end = r.Varint()
	s.totalSamples = int(r.Varint())
	s.maxConcurrent = int(r.Varint())
	s.newUsers = int(r.Varint())
	if s.snapshots < 0 || s.totalSamples < 0 || s.maxConcurrent < 0 || s.newUsers < 0 {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "negative sink counter"}
	}
	nseen := r.Count(2)
	for i := 0; i < nseen; i++ {
		id := trace.AvatarID(r.Uvarint())
		t := r.Varint()
		if r.Err() != nil {
			break
		}
		if _, dup := a.firstSeenT[id]; dup {
			return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate avatar in first-seen map"}
		}
		a.firstSeenT[id] = t
	}
	for i, rs := range a.ranges {
		if err := decodeTracker(r, rs.ct); err != nil {
			return nil, err
		}
		cs, err := decodeContactSet(r, rs.r, tau)
		if err != nil {
			return nil, err
		}
		s.contacts[i] = cs
		nm, err := decodeNetMetrics(r, rs.r)
		if err != nil {
			return nil, err
		}
		s.nets[i] = nm
	}
	s.zones = stats.DecodeWeighted(r)
	nopen := r.Count(6)
	for i := 0; i < nopen; i++ {
		id := trace.AvatarID(r.Uvarint())
		ss := &sessionState{}
		ss.login = r.Varint()
		ss.last = r.Varint()
		ss.length = r.F64()
		ss.moving = r.Varint()
		ss.hasPrev = r.Bool()
		ss.prevPos.X = r.F64()
		ss.prevPos.Y = r.F64()
		ss.prevPos.Z = r.F64()
		ss.prevT = r.Varint()
		if r.Err() != nil {
			break
		}
		if _, dup := a.trips.open[id]; dup {
			return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate open session"}
		}
		a.trips.open[id] = ss
	}
	s.closed = decodeClosed(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Re-point every state machine at the decoded sink and arm the
	// resume skip.
	a.bindSink(s)
	if a.started {
		a.resuming = true
		a.resumeFrom = a.lastT
	}
	return a, nil
}

// ---- Component encoders ----

func encodeTracker(w *snap.Writer, ct *contactTracker) {
	w.Uvarint(uint64(len(ct.firstContact)))
	for _, id := range sortedKeys(ct.firstContact) {
		w.Uvarint(uint64(id))
		w.Varint(ct.firstContact[id])
	}
	w.Uvarint(uint64(ct.table.n))
	for i := range ct.table.slots {
		sl := &ct.table.slots[i]
		if !sl.used {
			continue
		}
		w.Uvarint(uint64(sl.key.A))
		w.Uvarint(uint64(sl.key.B))
		w.Varint(sl.st.start)
		w.Varint(sl.st.lastSeen)
		w.Varint(sl.st.lastEnd)
		var flags uint64
		if sl.st.inContact {
			flags |= 1
		}
		if sl.st.leftCensored {
			flags |= 2
		}
		if sl.st.hasPrev {
			flags |= 4
		}
		w.Uvarint(flags)
	}
}

func decodeTracker(r *snap.Reader, ct *contactTracker) error {
	nfc := r.Count(2)
	for i := 0; i < nfc; i++ {
		id := trace.AvatarID(r.Uvarint())
		t := r.Varint()
		if r.Err() != nil {
			return r.Err()
		}
		if _, dup := ct.firstContact[id]; dup {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate avatar in first-contact map"}
		}
		ct.firstContact[id] = t
	}
	np := r.Count(7)
	for i := 0; i < np; i++ {
		aID := trace.AvatarID(r.Uvarint())
		bID := trace.AvatarID(r.Uvarint())
		var st pairState
		st.start = r.Varint()
		st.lastSeen = r.Varint()
		st.lastEnd = r.Varint()
		flags := r.Uvarint()
		if r.Err() != nil {
			return r.Err()
		}
		if flags > 7 {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "bad pair flags"}
		}
		if aID >= bID {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "pair key not normalised"}
		}
		st.inContact = flags&1 != 0
		st.leftCensored = flags&2 != 0
		st.hasPrev = flags&4 != 0
		idx, isNew := ct.table.lookupOrInsert(pairKey{A: aID, B: bID})
		if !isNew {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate pair in checkpoint"}
		}
		ct.table.slots[idx].st = st
	}
	// Rebuild the active list from the decoded contact states. Ordering
	// within the list never affects results; generation stamps restart at
	// zero, which is safe between snapshots.
	ct.table.rehashed()
	ct.active = ct.active[:0]
	for i := range ct.table.slots {
		sl := &ct.table.slots[i]
		if sl.used && sl.st.inContact {
			ct.active = append(ct.active, int32(i))
		}
	}
	return r.Err()
}

func encodeContactSet(w *snap.Writer, cs *ContactSet) {
	w.Varint(int64(cs.Pairs))
	w.Varint(int64(cs.Censored))
	w.Varint(int64(cs.NeverContacted))
	cs.CT.Encode(w)
	cs.ICT.Encode(w)
	cs.FT.Encode(w)
}

func decodeContactSet(r *snap.Reader, rng float64, tau int64) (*ContactSet, error) {
	cs := newContactSet(rng, tau)
	cs.Pairs = int(r.Varint())
	cs.Censored = int(r.Varint())
	cs.NeverContacted = int(r.Varint())
	if r.Err() == nil && (cs.Pairs < 0 || cs.Censored < 0 || cs.NeverContacted < 0) {
		return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "negative contact counter"}
	}
	cs.CT = stats.DecodeWeighted(r)
	cs.ICT = stats.DecodeWeighted(r)
	cs.FT = stats.DecodeWeighted(r)
	return cs, r.Err()
}

func encodeNetMetrics(w *snap.Writer, nm *NetMetrics) {
	nm.Degrees.Encode(w)
	nm.Diameters.Encode(w)
	stats.EncodeSample(w, nm.Clusterings)
}

func decodeNetMetrics(r *snap.Reader, rng float64) (*NetMetrics, error) {
	nm := newNetMetrics(rng)
	nm.Degrees = stats.DecodeWeighted(r)
	nm.Diameters = stats.DecodeWeighted(r)
	nm.Clusterings = stats.DecodeSample(r)
	return nm, r.Err()
}

func encodeClosed(w *snap.Writer, closed []closedSession) {
	w.Uvarint(uint64(len(closed)))
	for _, cs := range closed {
		w.Uvarint(uint64(cs.id))
		w.Varint(cs.login)
		w.Varint(cs.duration)
		w.F64(cs.length)
		w.Varint(cs.moving)
	}
}

func decodeClosed(r *snap.Reader) []closedSession {
	n := r.Count(5)
	var out []closedSession
	for i := 0; i < n; i++ {
		var cs closedSession
		cs.id = trace.AvatarID(r.Uvarint())
		cs.login = r.Varint()
		cs.duration = r.Varint()
		cs.length = r.F64()
		cs.moving = r.Varint()
		if r.Err() != nil {
			return out
		}
		out = append(out, cs)
	}
	return out
}

// ---- Whole-Analysis encoding (collected window series) ----

func encodeAnalysis(w *snap.Writer, an *Analysis) {
	w.String(an.Land)
	w.Varint(int64(an.Summary.Snapshots))
	w.Varint(an.Summary.DurationSec)
	w.Varint(int64(an.Summary.Unique))
	w.Varint(int64(an.Summary.MaxConcurrent))
	w.Varint(int64(an.Summary.TotalSamples))
	w.Varint(an.Start)
	w.Varint(an.End)
	w.Uvarint(uint64(len(an.Contacts)))
	for _, r := range sortedKeys(an.Contacts) {
		cs := an.Contacts[r]
		w.F64(r)
		w.Varint(cs.Tau)
		encodeContactSet(w, cs)
	}
	w.Uvarint(uint64(len(an.Nets)))
	for _, r := range sortedKeys(an.Nets) {
		w.F64(r)
		encodeNetMetrics(w, an.Nets[r])
	}
	an.Zones.Encode(w)
	encodeClosed(w, an.Trips.sess)
}

func decodeAnalysis(r *snap.Reader) (*Analysis, error) {
	an := &Analysis{
		Contacts: make(map[float64]*ContactSet),
		Nets:     make(map[float64]*NetMetrics),
	}
	an.Land = r.String()
	an.Summary.Land = an.Land
	an.Summary.Snapshots = int(r.Varint())
	an.Summary.DurationSec = r.Varint()
	an.Summary.Unique = int(r.Varint())
	an.Summary.MaxConcurrent = int(r.Varint())
	an.Summary.TotalSamples = int(r.Varint())
	an.Start = r.Varint()
	an.End = r.Varint()
	if an.Summary.Snapshots > 0 {
		an.Summary.MeanConcurrent = float64(an.Summary.TotalSamples) / float64(an.Summary.Snapshots)
	}
	nc := r.Count(9)
	for i := 0; i < nc; i++ {
		rng := r.F64()
		tau := r.Varint()
		cs, err := decodeContactSet(r, rng, tau)
		if err != nil {
			return nil, err
		}
		if _, dup := an.Contacts[rng]; dup {
			return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate contact range"}
		}
		an.Contacts[rng] = cs
	}
	nn := r.Count(9)
	for i := 0; i < nn; i++ {
		rng := r.F64()
		nm, err := decodeNetMetrics(r, rng)
		if err != nil {
			return nil, err
		}
		if _, dup := an.Nets[rng]; dup {
			return nil, &snap.Error{Kind: snap.KindMalformed, Msg: "duplicate net range"}
		}
		an.Nets[rng] = nm
	}
	an.Zones = stats.DecodeWeighted(r)
	an.Trips = buildTripStats(decodeClosed(r), nil)
	return an, r.Err()
}
