package core

import (
	"fmt"
	"reflect"

	"slmob/internal/stats"
)

// DiffAnalyses compares two Analysis values under the streaming/batch
// parity contract. The weighted distributions (CT, ICT, FT, degrees,
// diameters, zones) are canonical multisets, so they compare exactly;
// clustering coefficients and trips are emitted in snapshot/login order
// on both paths and must match exactly too. It returns one line per
// difference, empty when the analyses are equivalent — the parity tests
// assert on it, and tooling can use it to validate a migrated pipeline
// against a reference run.
func DiffAnalyses(got, want *Analysis) []string {
	var diffs []string
	addf := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	sameDist := func(what string, g, w *stats.Weighted) {
		if !g.Equal(w) {
			gn, wn := 0, 0
			if g != nil {
				gn = g.N()
			}
			if w != nil {
				wn = w.N()
			}
			addf("%s multiset differs (%d vs %d samples)", what, gn, wn)
		}
	}
	if got.Land != want.Land {
		addf("Land = %q, want %q", got.Land, want.Land)
	}
	if got.Summary != want.Summary {
		addf("Summary = %+v, want %+v", got.Summary, want.Summary)
	}
	if got.Start != want.Start || got.End != want.End {
		addf("Start/End = %d/%d, want %d/%d", got.Start, got.End, want.Start, want.End)
	}
	if len(got.Contacts) != len(want.Contacts) {
		addf("contact ranges = %d, want %d", len(got.Contacts), len(want.Contacts))
	}
	// Ranges in ascending order so the diff report is stable run to run.
	for _, r := range sortedKeys(want.Contacts) {
		w := want.Contacts[r]
		g := got.Contacts[r]
		if g == nil {
			addf("missing contact range %v", r)
			continue
		}
		if g.Range != w.Range || g.Tau != w.Tau {
			addf("r=%v: Range/Tau = %v/%d, want %v/%d", r, g.Range, g.Tau, w.Range, w.Tau)
		}
		if g.Censored != w.Censored || g.NeverContacted != w.NeverContacted || g.Pairs != w.Pairs {
			addf("r=%v: counters censored/never/pairs = %d/%d/%d, want %d/%d/%d",
				r, g.Censored, g.NeverContacted, g.Pairs, w.Censored, w.NeverContacted, w.Pairs)
		}
		sameDist(fmt.Sprintf("r=%v: CT", r), g.CT, w.CT)
		sameDist(fmt.Sprintf("r=%v: ICT", r), g.ICT, w.ICT)
		sameDist(fmt.Sprintf("r=%v: FT", r), g.FT, w.FT)
	}
	if len(got.Nets) != len(want.Nets) {
		addf("net ranges = %d, want %d", len(got.Nets), len(want.Nets))
	}
	for _, r := range sortedKeys(want.Nets) {
		w := want.Nets[r]
		g := got.Nets[r]
		if g == nil {
			addf("missing net range %v", r)
			continue
		}
		sameDist(fmt.Sprintf("r=%v: Degrees", r), g.Degrees, w.Degrees)
		sameDist(fmt.Sprintf("r=%v: Diameters", r), g.Diameters, w.Diameters)
		// Clusterings are emitted in snapshot order on both paths: exact.
		if !reflect.DeepEqual(g.Clusterings, w.Clusterings) {
			addf("r=%v: Clusterings differ", r)
		}
	}
	sameDist("Zones", got.Zones, want.Zones)
	if !reflect.DeepEqual(got.Trips, want.Trips) {
		addf("Trips differ: got %+v, want %+v", got.Trips, want.Trips)
	}
	return diffs
}
