package core

import (
	"fmt"
	"reflect"
	"sort"
)

// DiffAnalyses compares two Analysis values under the streaming/batch
// parity contract: the contact distributions (CT, ICT, FT), whose
// emission order is Go map-iteration order on both paths, are compared
// as multisets; everything else must match exactly. It returns one line
// per difference, empty when the analyses are equivalent — the parity
// tests assert on it, and tooling can use it to validate a migrated
// pipeline against a reference run.
func DiffAnalyses(got, want *Analysis) []string {
	var diffs []string
	addf := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if got.Land != want.Land {
		addf("Land = %q, want %q", got.Land, want.Land)
	}
	if got.Summary != want.Summary {
		addf("Summary = %+v, want %+v", got.Summary, want.Summary)
	}
	if len(got.Contacts) != len(want.Contacts) {
		addf("contact ranges = %d, want %d", len(got.Contacts), len(want.Contacts))
	}
	for r, w := range want.Contacts {
		g := got.Contacts[r]
		if g == nil {
			addf("missing contact range %v", r)
			continue
		}
		if g.Range != w.Range || g.Tau != w.Tau {
			addf("r=%v: Range/Tau = %v/%d, want %v/%d", r, g.Range, g.Tau, w.Range, w.Tau)
		}
		if g.Censored != w.Censored || g.NeverContacted != w.NeverContacted || g.Pairs != w.Pairs {
			addf("r=%v: counters censored/never/pairs = %d/%d/%d, want %d/%d/%d",
				r, g.Censored, g.NeverContacted, g.Pairs, w.Censored, w.NeverContacted, w.Pairs)
		}
		for name, pair := range map[string][2][]float64{
			"CT":  {g.CT, w.CT},
			"ICT": {g.ICT, w.ICT},
			"FT":  {g.FT, w.FT},
		} {
			if !reflect.DeepEqual(sortedCopy(pair[0]), sortedCopy(pair[1])) {
				addf("r=%v: %s multiset differs (%d vs %d samples)", r, name, len(pair[0]), len(pair[1]))
			}
		}
	}
	if len(got.Nets) != len(want.Nets) {
		addf("net ranges = %d, want %d", len(got.Nets), len(want.Nets))
	}
	for r, w := range want.Nets {
		g := got.Nets[r]
		if g == nil {
			addf("missing net range %v", r)
			continue
		}
		// LoS metrics are emitted in snapshot order on both paths: exact.
		if !reflect.DeepEqual(g.Degrees, w.Degrees) {
			addf("r=%v: Degrees differ (%d vs %d samples)", r, len(g.Degrees), len(w.Degrees))
		}
		if !reflect.DeepEqual(g.Diameters, w.Diameters) {
			addf("r=%v: Diameters differ", r)
		}
		if !reflect.DeepEqual(g.Clusterings, w.Clusterings) {
			addf("r=%v: Clusterings differ", r)
		}
	}
	if !reflect.DeepEqual(got.Zones, want.Zones) {
		addf("Zones differ (%d vs %d samples)", len(got.Zones), len(want.Zones))
	}
	if !reflect.DeepEqual(got.Trips, want.Trips) {
		addf("Trips differ: got %+v, want %+v", got.Trips, want.Trips)
	}
	return diffs
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
