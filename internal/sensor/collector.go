package sensor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"slmob/internal/geom"
	"slmob/internal/trace"
	"slmob/internal/world"
)

// Collector is the external web server of the paper's sensor
// architecture: sensors flush their caches to it over HTTP, and it merges
// the partial, possibly overlapping observations into a mobility trace.
type Collector struct {
	mu sync.Mutex
	// readings[t][avatar] is the merged position observed at sim time t.
	readings map[int64]map[trace.AvatarID]geom.Vec
	flushes  int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{readings: make(map[int64]map[trace.AvatarID]geom.Vec)}
}

// ServeHTTP accepts flush payloads at any path via POST.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var payload FlushPayload
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		http.Error(w, fmt.Sprintf("bad payload: %v", err), http.StatusBadRequest)
		return
	}
	c.Ingest(payload)
	w.WriteHeader(http.StatusOK)
}

// Ingest merges one flush payload (also used directly by in-process
// experiments through Engine.SetPostHook).
func (c *Collector) Ingest(payload FlushPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushes++
	for _, rd := range payload.Readings {
		m := c.readings[rd.T]
		if m == nil {
			m = make(map[trace.AvatarID]geom.Vec)
			c.readings[rd.T] = m
		}
		// Overlapping sensors may observe the same avatar; positions are
		// identical, so last-write-wins is fine.
		m[trace.AvatarID(rd.ID)] = geom.V(rd.X, rd.Y, rd.Z)
	}
}

// Flushes returns the number of payloads received.
func (c *Collector) Flushes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushes
}

// Source is a streaming view of the collector's merged readings: one
// snapshot per observed sim time, in time order, built lazily so only one
// snapshot is resident at a time. The set of snapshot times is fixed when
// the source is created — the sensor architecture is store-and-forward
// (caches flush minutes late), so create the source once collection has
// finished. Coverage may be partial: avatars outside every sensor's range
// simply never appear, which is exactly the architecture's documented
// weakness.
type Source struct {
	c     *Collector
	land  string
	tau   int64
	times []int64
	i     int
}

// Source returns a streaming view over the readings merged so far.
func (c *Collector) Source(land string, tau int64) *Source {
	c.mu.Lock()
	defer c.mu.Unlock()
	times := make([]int64, 0, len(c.readings))
	for t := range c.readings {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return &Source{c: c, land: land, tau: tau, times: times}
}

// Info reports the merged trace's provenance.
func (s *Source) Info() trace.Info {
	return trace.Info{
		Land: s.land,
		Tau:  s.tau,
		Meta: map[string]string{"monitor": "sensors"},
	}
}

// Next assembles and returns the snapshot for the next observed time,
// io.EOF past the last.
func (s *Source) Next(ctx context.Context) (trace.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return trace.Snapshot{}, err
	}
	if s.i >= len(s.times) {
		return trace.Snapshot{}, io.EOF
	}
	t := s.times[s.i]
	s.i++
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	m := s.c.readings[t]
	snap := trace.Snapshot{T: t, Samples: make([]trace.Sample, 0, len(m))}
	ids := make([]trace.AvatarID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		snap.Samples = append(snap.Samples, trace.Sample{ID: id, Pos: m[id]})
	}
	return snap, nil
}

// Trace assembles the merged readings into a mobility trace with the
// given nominal snapshot period.
//
// Deprecated: Trace materialises every reading at once; stream through
// Source instead when the consumer is incremental.
func (c *Collector) Trace(land string, tau int64) *trace.Trace {
	tr, err := trace.Collect(context.Background(), c.Source(land, tau), "", 0)
	if err != nil {
		panic(err) // unreachable: source times are sorted unique
	}
	return tr
}

// GridSpecs lays out an n x n sensor grid covering the land, the
// deployment pattern a measurement campaign would use. With range 96 m a
// 4x4 grid fully covers a 256 m land.
func GridSpecs(land world.LandConfig, n int, sensingRange float64, period int64, collector string, replicate bool) []Spec {
	if n <= 0 {
		n = 4
	}
	cell := land.Size / float64(n)
	specs := make([]Spec, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			specs = append(specs, Spec{
				Pos:       geom.V2(cell*(float64(i)+0.5), cell*(float64(j)+0.5)),
				Range:     sensingRange,
				Period:    period,
				Collector: collector,
				Replicate: replicate,
			})
		}
	}
	return specs
}
