package sensor

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"slmob/internal/geom"
	"slmob/internal/world"
)

func publicScenario(seed uint64) world.Scenario {
	scn := world.ApfelLand(seed) // public land, ObjectLifetime 7200
	scn.Duration = 7200
	return scn
}

func TestDeployPolicy(t *testing.T) {
	private := world.DanceIsland(1).Land
	e := NewEngine(private)
	_, err := e.Deploy(0, Spec{Pos: geom.V2(10, 10), Range: 96, Period: 10})
	if err == nil {
		t.Fatal("private land accepted a sensor")
	}

	public := world.ApfelLand(1).Land
	e = NewEngine(public)
	info, err := e.Deploy(0, Spec{Pos: geom.V2(10, 10), Range: 96, Period: 10})
	if err != nil {
		t.Fatal(err)
	}
	if info.ExpiresAt != public.ObjectLifetime {
		t.Errorf("expiry = %d, want %d", info.ExpiresAt, public.ObjectLifetime)
	}

	sandbox := public
	sandbox.Kind = world.Sandbox
	e = NewEngine(sandbox)
	info, err = e.Deploy(0, Spec{Pos: geom.V2(10, 10), Range: 96, Period: 10})
	if err != nil {
		t.Fatal(err)
	}
	if info.ExpiresAt != 0 {
		t.Errorf("sandbox object has expiry %d", info.ExpiresAt)
	}
}

func TestDeployValidation(t *testing.T) {
	e := NewEngine(world.ApfelLand(1).Land)
	if _, err := e.Deploy(0, Spec{Pos: geom.V2(-5, 10), Range: 96, Period: 10}); err == nil {
		t.Error("out-of-bounds position accepted")
	}
	if _, err := e.Deploy(0, Spec{Pos: geom.V2(10, 10), Range: 0, Period: 10}); err == nil {
		t.Error("zero range accepted")
	}
	// Range above the platform cap is clamped, not rejected.
	if _, err := e.Deploy(0, Spec{Pos: geom.V2(10, 10), Range: 500, Period: 10}); err != nil {
		t.Errorf("over-range deployment rejected: %v", err)
	}
}

func TestScanDetectsAvatarsWithLimits(t *testing.T) {
	scn := publicScenario(2)
	sim, err := world.NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(scn.Land)
	var got []FlushPayload
	e.SetPostHook(func(p FlushPayload) error {
		got = append(got, p)
		return nil
	})
	// One sensor on the central plaza.
	if _, err := e.Deploy(0, Spec{
		Pos: geom.V2(128, 128), Range: 96, Period: 10, Collector: "hook",
	}); err != nil {
		t.Fatal(err)
	}
	for sim.Time() < 3600 {
		sim.Step()
		e.Step(sim.Time(), sim)
	}
	st := e.Stats()
	if st.Scans == 0 || st.Readings == 0 {
		t.Fatalf("no sensing activity: %+v", st)
	}
	// Force remaining cache out by advancing past the throttle.
	if st.Readings > 0 && len(got) == 0 && st.Flushes == 0 {
		t.Error("cache never flushed")
	}
	for _, p := range got {
		if len(p.Readings) == 0 {
			t.Error("empty flush payload")
		}
		for _, r := range p.Readings {
			if geom.V(r.X, r.Y, r.Z).DistXY(geom.V2(128, 128)) > 96.01 {
				t.Errorf("reading outside sensing range: %+v", r)
			}
		}
	}
}

func TestMaxDetectedPerScan(t *testing.T) {
	// A crowded land: the 16-avatar scan cap must truncate.
	scn := world.IsleOfView(3)
	scn.Land.Kind = world.Sandbox
	scn.Duration = 600
	sim, err := world.NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(scn.Land)
	e.SetPostHook(func(FlushPayload) error { return nil })
	if _, err := e.Deploy(0, Spec{
		Pos: geom.V2(128, 135), Range: 96, Period: 10, Collector: "hook",
	}); err != nil {
		t.Fatal(err)
	}
	perScan := map[int64]int{}
	e2 := NewEngine(scn.Land) // silence linters about unused; not used
	_ = e2
	for sim.Time() < 600 {
		sim.Step()
		e.Step(sim.Time(), sim)
	}
	st := e.Stats()
	if st.TruncatedScans == 0 {
		t.Errorf("no truncated scans on a 65-avatar land: %+v", st)
	}
	_ = perScan
}

func TestExpiryAndReplication(t *testing.T) {
	scn := publicScenario(4)
	scn.Land.ObjectLifetime = 100
	sim, err := world.NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(scn.Land)
	e.SetPostHook(func(FlushPayload) error { return nil })
	e.SetReplicationInterval(50)
	if _, err := e.Deploy(0, Spec{
		Pos: geom.V2(128, 128), Range: 96, Period: 10, Collector: "hook", Replicate: true,
	}); err != nil {
		t.Fatal(err)
	}
	for sim.Time() < 1000 {
		sim.Step()
		e.Step(sim.Time(), sim)
	}
	st := e.Stats()
	if st.Expired < 5 {
		t.Errorf("expired = %d, want several with lifetime 100", st.Expired)
	}
	if st.Replicated < st.Expired-1 {
		t.Errorf("replicated = %d, expired = %d", st.Replicated, st.Expired)
	}
	if e.ActiveObjects() == 0 {
		t.Error("no active object despite replication")
	}
}

func TestNoReplicationMeansDeath(t *testing.T) {
	scn := publicScenario(5)
	scn.Land.ObjectLifetime = 100
	sim, _ := world.NewSim(scn)
	e := NewEngine(scn.Land)
	e.SetPostHook(func(FlushPayload) error { return nil })
	_, err := e.Deploy(0, Spec{Pos: geom.V2(128, 128), Range: 96, Period: 10, Collector: "hook"})
	if err != nil {
		t.Fatal(err)
	}
	for sim.Time() < 300 {
		sim.Step()
		e.Step(sim.Time(), sim)
	}
	if e.ActiveObjects() != 0 {
		t.Error("object survived expiry without replication")
	}
}

func TestCollectorHTTPIngestion(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col)
	defer srv.Close()

	payload := FlushPayload{
		Object: 1, Land: "Apfel Land",
		Readings: []Reading{
			{T: 10, ID: 7, X: 1, Y: 2, Z: 3},
			{T: 20, ID: 7, X: 2, Y: 3, Z: 4},
			{T: 10, ID: 8, X: 9, Y: 9, Z: 0},
		},
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if col.Flushes() != 1 {
		t.Errorf("flushes = %d", col.Flushes())
	}
	tr := col.Trace("Apfel Land", 10)
	if len(tr.Snapshots) != 2 {
		t.Fatalf("snapshots = %d", len(tr.Snapshots))
	}
	if len(tr.Snapshots[0].Samples) != 2 {
		t.Errorf("t=10 samples = %d", len(tr.Snapshots[0].Samples))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorRejectsBadRequests(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %s", resp.Status)
	}
	resp, err = http.Post(srv.URL, "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json status = %s", resp.Status)
	}
}

func TestEndToEndSensorTraceOverHTTP(t *testing.T) {
	col := NewCollector()
	httpSrv := httptest.NewServer(col)
	defer httpSrv.Close()

	scn := publicScenario(6)
	sim, err := world.NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(scn.Land)
	for _, spec := range GridSpecs(scn.Land, 4, 96, 10, httpSrv.URL, true) {
		if _, err := e.Deploy(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	for sim.Time() < 3600 {
		sim.Step()
		e.Step(sim.Time(), sim)
	}
	e.Wait()
	tr := col.Trace(scn.Land.Name, 10)
	if tr.UniqueUsers() == 0 {
		t.Fatalf("sensor network observed nobody: stats %+v", e.Stats())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridSpecsCoverage(t *testing.T) {
	land := world.ApfelLand(1).Land
	specs := GridSpecs(land, 4, 96, 10, "hook", false)
	if len(specs) != 16 {
		t.Fatalf("specs = %d", len(specs))
	}
	// Every land point must be within range of some sensor.
	for x := 0.0; x < land.Size; x += 16 {
		for y := 0.0; y < land.Size; y += 16 {
			covered := false
			for _, s := range specs {
				if s.Pos.DistXY(geom.V2(x, y)) <= s.Range {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point (%v,%v) uncovered", x, y)
			}
		}
	}
	if got := GridSpecs(land, 0, 96, 10, "hook", false); len(got) != 16 {
		t.Errorf("default grid = %d", len(got))
	}
}
