// Package sensor implements the paper's first monitoring architecture: an
// in-world network of scripted sensor objects. It reproduces the platform
// limits the paper documents in §2 — 96 m sensing range, at most 16
// avatars detected per scan, a 16 KB local cache flushed over HTTP, a
// throttle on HTTP messaging, deployment forbidden on private lands, and
// object expiry on public lands (mitigated by periodic replication) — so
// the architecture-comparison experiment (X4) can quantify the coverage
// trade-offs that pushed the authors to the crawler.
package sensor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"slmob/internal/geom"
	"slmob/internal/world"
)

// Platform limits from the paper (§2).
const (
	// MaxRange is the maximum sensing radius in metres.
	MaxRange = 96.0
	// MaxDetected is the maximum number of avatars one scan returns.
	MaxDetected = 16
	// MaxCacheBytes is the sensor's local storage.
	MaxCacheBytes = 16 * 1024
	// ReadingBytes is the accounting size of one cached reading.
	ReadingBytes = 24
	// MinFlushInterval is the platform's HTTP throttle: a sensor may not
	// flush more often than this many simulated seconds.
	MinFlushInterval = 60
	// DefaultReplicationInterval re-creates expired sensors this often.
	DefaultReplicationInterval = 300
)

// Spec describes one sensor deployment request.
type Spec struct {
	Pos geom.Vec
	// Range is the sensing radius; capped at MaxRange.
	Range float64
	// Period is the scan period in simulated seconds.
	Period int64
	// Collector is the HTTP endpoint that receives cache flushes.
	Collector string
	// Replicate re-deploys the sensor after public-land expiry.
	Replicate bool
}

// Reading is one sensed avatar observation.
type Reading struct {
	T  int64   `json:"t"`
	ID uint64  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	Z  float64 `json:"z"`
}

// FlushPayload is the HTTP POST body of a cache flush.
type FlushPayload struct {
	Object   uint64    `json:"object"`
	Land     string    `json:"land"`
	Readings []Reading `json:"readings"`
}

// object is a deployed sensor.
type object struct {
	id        uint64
	spec      Spec
	expiresAt int64 // 0 = never
	nextScan  int64
	lastFlush int64
	cache     []Reading
}

// DeployInfo reports a successful deployment.
type DeployInfo struct {
	ID        uint64
	ExpiresAt int64
}

// Stats summarises engine activity for the architecture comparison.
type Stats struct {
	Deployed        int
	Expired         int
	Replicated      int
	Scans           int
	Readings        int
	DroppedReadings int
	Flushes         int
	FlushErrors     int
	TruncatedScans  int
}

// Engine hosts the sensor objects of one land. The server advances it
// with Step after every simulation second; Deploy enforces the land's
// object policy. Engine methods are not safe for concurrent use; the
// server serialises access under its simulation lock.
type Engine struct {
	land   world.LandConfig
	nextID uint64

	objects []*object
	// pending are replicate-enabled specs waiting for the next
	// replication tick after their object expired.
	pending []Spec

	replicationInterval int64
	nextReplication     int64

	stats Stats

	httpc *http.Client
	// postHook, when set, intercepts flushes instead of HTTP (tests).
	postHook func(FlushPayload) error

	wg sync.WaitGroup
	mu sync.Mutex // guards stats fields written by flush goroutines
}

// NewEngine creates the engine for a land.
func NewEngine(land world.LandConfig) *Engine {
	return &Engine{
		land:                land,
		replicationInterval: DefaultReplicationInterval,
		httpc:               &http.Client{Timeout: 5 * time.Second},
	}
}

// SetPostHook replaces HTTP flushing with a callback (used by in-process
// experiments and tests).
func (e *Engine) SetPostHook(fn func(FlushPayload) error) { e.postHook = fn }

// SetReplicationInterval overrides the replication cadence.
func (e *Engine) SetReplicationInterval(secs int64) {
	if secs > 0 {
		e.replicationInterval = secs
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ActiveObjects returns the number of live sensors.
func (e *Engine) ActiveObjects() int { return len(e.objects) }

// Deploy validates the spec against the land policy and installs the
// sensor. Private lands reject deployment; public lands attach the
// land's object lifetime.
func (e *Engine) Deploy(now int64, spec Spec) (DeployInfo, error) {
	if e.land.Kind == world.Private {
		return DeployInfo{}, fmt.Errorf(
			"sensor: land %q is private: object deployment forbidden", e.land.Name)
	}
	if !e.land.Bounds().Contains(spec.Pos) {
		return DeployInfo{}, fmt.Errorf("sensor: position %v outside land", spec.Pos)
	}
	if spec.Range <= 0 || spec.Period <= 0 {
		return DeployInfo{}, fmt.Errorf("sensor: range and period must be positive")
	}
	if spec.Range > MaxRange {
		spec.Range = MaxRange
	}
	e.nextID++
	obj := &object{
		id:        e.nextID,
		spec:      spec,
		nextScan:  now + spec.Period,
		lastFlush: now - MinFlushInterval,
	}
	if e.land.Kind == world.Public && e.land.ObjectLifetime > 0 {
		obj.expiresAt = now + e.land.ObjectLifetime
	}
	e.objects = append(e.objects, obj)
	e.mu.Lock()
	e.stats.Deployed++
	e.mu.Unlock()
	return DeployInfo{ID: obj.id, ExpiresAt: obj.expiresAt}, nil
}

// Step advances the engine to sim time now: expiry, replication, scans,
// and flushes.
func (e *Engine) Step(now int64, sim *world.Sim) {
	// Expiry.
	live := e.objects[:0]
	for _, obj := range e.objects {
		if obj.expiresAt > 0 && now >= obj.expiresAt {
			e.mu.Lock()
			e.stats.Expired++
			e.mu.Unlock()
			e.flush(now, obj) // salvage the cache before the object dies
			if obj.spec.Replicate {
				e.pending = append(e.pending, obj.spec)
			}
			continue
		}
		live = append(live, obj)
	}
	e.objects = live

	// Replication tick.
	if len(e.pending) > 0 && now >= e.nextReplication {
		e.nextReplication = now + e.replicationInterval
		pend := e.pending
		e.pending = nil
		for _, spec := range pend {
			if _, err := e.Deploy(now, spec); err == nil {
				e.mu.Lock()
				e.stats.Replicated++
				e.stats.Deployed-- // replication is not a fresh deployment
				e.mu.Unlock()
			}
		}
	}

	// Scans.
	var states []world.AvatarState
	for _, obj := range e.objects {
		if now < obj.nextScan {
			continue
		}
		obj.nextScan = now + obj.spec.Period
		if states == nil {
			states = sim.ResidentStates(nil)
		}
		e.scan(now, obj, states)
	}
}

// scan senses up to MaxDetected avatars in range and caches readings,
// flushing (or dropping) when the cache fills.
func (e *Engine) scan(now int64, obj *object, states []world.AvatarState) {
	e.mu.Lock()
	e.stats.Scans++
	e.mu.Unlock()
	detected := 0
	for _, st := range states {
		if st.Seated {
			continue // a seated avatar reports no usable position
		}
		if st.Pos.DistXY(obj.spec.Pos) > obj.spec.Range {
			continue
		}
		if detected >= MaxDetected {
			e.mu.Lock()
			e.stats.TruncatedScans++
			e.mu.Unlock()
			break
		}
		detected++
		if (len(obj.cache)+1)*ReadingBytes > MaxCacheBytes {
			// Cache full: try to flush; if throttled, the reading is lost
			// (the granularity-vs-duration trade-off of §2).
			if !e.flush(now, obj) {
				e.mu.Lock()
				e.stats.DroppedReadings++
				e.mu.Unlock()
				continue
			}
		}
		obj.cache = append(obj.cache, Reading{
			T: now, ID: uint64(st.ID), X: st.Pos.X, Y: st.Pos.Y, Z: st.Pos.Z,
		})
		e.mu.Lock()
		e.stats.Readings++
		e.mu.Unlock()
	}
	// Opportunistic flush when the cache is at least half full and the
	// throttle allows it.
	if len(obj.cache)*ReadingBytes*2 >= MaxCacheBytes {
		e.flush(now, obj)
	}
}

// flush posts the cache to the collector; it reports whether a flush
// happened (false when throttled or the cache is empty).
func (e *Engine) flush(now int64, obj *object) bool {
	if len(obj.cache) == 0 {
		return false
	}
	if now-obj.lastFlush < MinFlushInterval {
		return false
	}
	obj.lastFlush = now
	payload := FlushPayload{
		Object:   obj.id,
		Land:     e.land.Name,
		Readings: obj.cache,
	}
	url := obj.spec.Collector
	obj.cache = nil
	e.mu.Lock()
	e.stats.Flushes++
	e.mu.Unlock()
	if e.postHook != nil {
		if err := e.postHook(payload); err != nil {
			e.mu.Lock()
			e.stats.FlushErrors++
			e.mu.Unlock()
		}
		return true
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if err := e.post(url, payload); err != nil {
			e.mu.Lock()
			e.stats.FlushErrors++
			e.mu.Unlock()
		}
	}()
	return true
}

func (e *Engine) post(url string, payload FlushPayload) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := e.httpc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sensor: collector returned %s", resp.Status)
	}
	return nil
}

// Wait blocks until in-flight HTTP flushes complete (tests, shutdown).
func (e *Engine) Wait() { e.wg.Wait() }
