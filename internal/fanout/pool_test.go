package fanout

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64} {
			counts := make([]atomic.Int32, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPoolNilAndSerialRunInline(t *testing.T) {
	var p *Pool
	order := []int{}
	p.Run(3, func(i int) { order = append(order, i) })
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("nil pool order = %v, want serial 0,1,2", order)
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d", p.Workers())
	}
	one := NewPool(1)
	defer one.Close()
	order = order[:0]
	one.Run(3, func(i int) { order = append(order, i) })
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("one-worker order = %v, want serial 0,1,2", order)
	}
}

func TestPoolReusesGoroutines(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var touch atomic.Int64
	warm := func(i int) { touch.Add(int64(i)) }
	p.Run(16, warm)
	before := runtime.NumGoroutine()
	for r := 0; r < 50; r++ {
		p.Run(16, warm)
	}
	after := runtime.NumGoroutine()
	if after > before+1 {
		t.Fatalf("goroutines grew from %d to %d across 50 runs", before, after)
	}
}

// TestPoolAllocsPerRun pins the steady-state dispatch cost at zero
// allocations: a tick loop with a hoisted closure must be able to fan
// out every tick without touching the heap.
func TestPoolAllocsPerRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	job := func(i int) { sink.Add(int64(i)) }
	p.Run(64, job) // warm up the parked workers
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(64, job)
	})
	if allocs != 0 {
		t.Fatalf("Pool.Run allocates %.1f per call, want 0", allocs)
	}
}

func TestPoolSequentialBatchesSeeFreshState(t *testing.T) {
	// Each Run is a barrier: writes from batch k must be visible to
	// batch k+1 regardless of which worker claims which index.
	p := NewPool(3)
	defer p.Close()
	buf := make([]int, 32)
	for round := 1; round <= 8; round++ {
		r := round
		p.Run(len(buf), func(i int) { buf[i] += r })
	}
	want := 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8
	for i, v := range buf {
		if v != want {
			t.Fatalf("buf[%d] = %d, want %d", i, v, want)
		}
	}
}

func BenchmarkPoolRun(b *testing.B) {
	p := NewPool(runtime.GOMAXPROCS(0))
	defer b.StopTimer()
	defer p.Close()
	var sink atomic.Int64
	job := func(i int) { sink.Add(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(64, job)
	}
}
