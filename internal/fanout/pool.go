package fanout

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for per-tick hot paths. Run spawns
// nothing: the workers are parked goroutines reused across calls, woken
// by a buffered channel send, and indices are claimed with an atomic
// counter, so a steady-state Run with a hoisted closure performs zero
// allocations (pinned by TestPoolAllocsPerRun). This is the tool for
// code that fans out every tick — Run (goroutine per job) is for
// one-shot fanouts where spawn cost is noise.
//
// The calling goroutine participates as one of the workers, so a pool
// of one never leaves the caller and NewPool(1) starts no goroutines
// at all — the serial escape hatch is the zero case, not a branch the
// caller writes.
//
// A Pool is not safe for concurrent Run calls; it is built for a
// single dispatching goroutine (a tick loop). Indices are claimed
// dynamically, so callers must not depend on which worker runs which
// index — only that each index runs exactly once and that Run returns
// after all of them have.
type Pool struct {
	workers int
	wake    chan struct{}
	closed  bool
	busy    sync.WaitGroup

	// Dispatch state for the current Run, published to the workers by
	// the wake sends (channel happens-before) and quiesced by busy.Wait
	// before the next Run may overwrite it.
	fn   func(i int)
	n    int64
	next atomic.Int64
}

// NewPool starts workers-1 parked goroutines (the caller is the last
// worker). workers < 1 is clamped to 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.wake = make(chan struct{}, workers-1)
		for i := 1; i < workers; i++ {
			go p.worker(p.wake)
		}
	}
	return p
}

// Workers reports the pool's concurrency, including the caller.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(0..n-1), each index exactly once, across the pool's
// workers and returns when all calls have completed. A nil pool, a
// single-worker pool, or n < 2 runs fn inline in index order. fn must
// not call Run on the same pool.
func (p *Pool) Run(n int, fn func(i int)) {
	if p == nil || p.workers < 2 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn = fn
	p.n = int64(n)
	p.next.Store(0)
	k := p.workers
	if k > n {
		k = n
	}
	p.busy.Add(k - 1)
	for i := 1; i < k; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	p.busy.Wait()
	p.fn = nil
}

// Close winds down the parked workers. The pool must be idle; Run must
// not be called afterwards. Safe on a nil or single-worker pool, and
// idempotent.
func (p *Pool) Close() {
	if p == nil || p.wake == nil || p.closed {
		return
	}
	p.closed = true
	close(p.wake)
}

func (p *Pool) worker(wake <-chan struct{}) {
	for range wake {
		p.drain()
		p.busy.Done()
	}
}

// drain claims and runs indices until the current batch is exhausted.
func (p *Pool) drain() {
	n := p.n
	fn := p.fn
	for {
		i := p.next.Add(1) - 1
		if i >= n {
			return
		}
		fn(int(i))
	}
}
