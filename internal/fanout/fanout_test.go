package fanout

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCollectsInOrder(t *testing.T) {
	out, err := Run(context.Background(), 5, 2, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run(context.Background(), 0, 0, func(_ context.Context, i int) (int, error) {
		t.Error("job called")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestRunReportsRootCause: a real failure cancels the siblings, and the
// siblings' resulting cancellations must not mask it — even when the
// failing job has a higher index.
func TestRunReportsRootCause(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), 3, 3, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("job %d: %w", i, ctx.Err())
		case <-time.After(5 * time.Second):
			return 0, errors.New("sibling was not cancelled")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the root cause", err)
	}
}

func TestRunLimit(t *testing.T) {
	var inFlight, peak atomic.Int32
	_, err := Run(context.Background(), 8, 2, func(_ context.Context, i int) (int, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds limit 2", p)
	}
}

func TestRunCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 3, 0, func(ctx context.Context, i int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
