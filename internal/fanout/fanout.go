// Package fanout runs independent jobs concurrently with the
// cancel-on-first-failure semantics shared by the slmob façade and the
// experiment harness.
package fanout

import (
	"context"
	"errors"
	"sync"
)

// Run executes jobs 0..n-1 concurrently, at most limit at a time
// (limit <= 0 or > n selects n), and returns their results in index
// order. The first failure cancels the context handed to the remaining
// jobs, and the returned error is the root cause — a sibling's
// context.Canceled never masks the real failure.
func Run[T any](ctx context.Context, n, limit int, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if limit <= 0 || limit > n {
		limit = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, limit)
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			r, err := job(ctx, i)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
