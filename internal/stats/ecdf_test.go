package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewEmpirical([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample accepted")
	}
	if _, err := NewEmpirical([]float64{3, 1, 2}); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
}

func TestNewEmpiricalDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	MustEmpirical(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestCDFAndCCDF(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 2, 3})
	cases := []struct {
		x   float64
		cdf float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.cdf)
		}
		if got := e.CCDF(c.x); math.Abs(got-(1-c.cdf)) > 1e-12 {
			t.Errorf("CCDF(%v) = %v, want %v", c.x, got, 1-c.cdf)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	e := MustEmpirical(xs)
	if got := e.Median(); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := e.Quantile(0.9); got != 90 {
		t.Errorf("p90 = %v, want 90", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 100 {
		t.Errorf("p1 = %v, want 100", got)
	}
	if got := e.Quantile(0.01); got != 1 {
		t.Errorf("p01 = %v, want 1", got)
	}
}

func TestMeanStdMinMax(t *testing.T) {
	e := MustEmpirical([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := e.Mean(); got != 5 {
		t.Errorf("mean = %v", got)
	}
	// Sample std with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if got := e.Std(); math.Abs(got-want) > 1e-12 {
		t.Errorf("std = %v, want %v", got, want)
	}
	if e.Min() != 2 || e.Max() != 9 {
		t.Errorf("min/max = %v/%v", e.Min(), e.Max())
	}
	single := MustEmpirical([]float64{3})
	if single.Std() != 0 {
		t.Errorf("std of singleton = %v", single.Std())
	}
}

func TestCDFCurveSteps(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 2, 5})
	c := e.CDFCurve()
	want := Curve{{1, 0.25}, {2, 0.75}, {5, 1}}
	if len(c) != len(want) {
		t.Fatalf("curve = %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("curve[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	cc := e.CCDFCurve()
	if cc[0].Y != 0.75 || cc[2].Y != 0 {
		t.Errorf("ccdf curve = %v", cc)
	}
}

func TestCurveMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := MustEmpirical(xs)
		c := e.CDFCurve()
		for i := 1; i < len(c); i++ {
			if c[i].X <= c[i-1].X || c[i].Y < c[i-1].Y {
				return false
			}
		}
		return c[len(c)-1].Y == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileCDFInverseProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw%99+1) / 100
		e := MustEmpirical(xs)
		q := e.Quantile(p)
		// CDF at the p-quantile must be >= p (nearest-rank definition).
		return e.CDF(q) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogSpace(t *testing.T) {
	pts := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(pts[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(pts) {
		t.Error("LogSpace not sorted")
	}
}

func TestLinSpace(t *testing.T) {
	pts := LinSpace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("LinSpace[%d] = %v", i, pts[i])
		}
	}
}

func TestSampleCurve(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 3, 4})
	c := SampleCurve([]float64{0, 2.5, 5}, e.CDF)
	if c[0].Y != 0 || c[1].Y != 0.5 || c[2].Y != 1 {
		t.Errorf("SampleCurve = %v", c)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary should be zero")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s = Summarize(xs)
	if s.N != 100 || s.Median != 50 || s.P90 != 90 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0.5, 0.7, 5.5, 9.9, 42} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // -1 clamped, 0.5, 0.7
		t.Errorf("first bin = %d", h.Counts[0])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 42
		t.Errorf("last bin = %d", h.Counts[9])
	}
	if got := h.Mode(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mode = %v", got)
	}
}
