// Package stats implements the empirical statistics the paper's analysis
// needs and that the Go standard library lacks: empirical CDF/CCDF curves,
// quantiles, histograms, log-spaced binning, two-sample Kolmogorov–Smirnov
// tests, and maximum-likelihood fits for exponential, Pareto, and
// power-law-with-exponential-cutoff tail models.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Empirical is the empirical distribution of a sample. The zero value is
// unusable; construct with NewEmpirical.
type Empirical struct {
	sorted []float64
}

// NewEmpirical copies and sorts the sample. NaNs are rejected so that every
// downstream quantile is well defined.
func NewEmpirical(xs []float64) (*Empirical, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for _, x := range s {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("stats: sample contains NaN")
		}
	}
	sort.Float64s(s)
	return &Empirical{sorted: s}, nil
}

// MustEmpirical is NewEmpirical for samples known to be valid; it panics on
// error and exists for tests and internal pipelines.
func MustEmpirical(xs []float64) *Empirical {
	e, err := NewEmpirical(xs)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.sorted) }

// Min returns the sample minimum.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the sample maximum.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	sum := 0.0
	for _, x := range e.sorted {
		sum += x
	}
	return sum / float64(len(e.sorted))
}

// Std returns the sample standard deviation (n-1 in the denominator when
// n > 1, else 0).
func (e *Empirical) Std() float64 {
	n := len(e.sorted)
	if n < 2 {
		return 0
	}
	m := e.Mean()
	sum := 0.0
	for _, x := range e.sorted {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// CDF returns the empirical distribution function F(x) = P(X <= x).
func (e *Empirical) CDF(x float64) float64 {
	// Upper bound: first index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// CCDF returns the complementary CDF 1 - F(x) = P(X > x), the quantity the
// paper plots for contact metrics (Fig. 1) and node degree (Fig. 2).
func (e *Empirical) CCDF(x float64) float64 { return 1 - e.CDF(x) }

// Quantile returns the p-quantile for p in [0, 1] using the nearest-rank
// definition (Quantile(0.5) is the median).
func (e *Empirical) Quantile(p float64) float64 {
	if p <= 0 {
		return e.Min()
	}
	if p >= 1 {
		return e.Max()
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Median returns the 0.5-quantile.
func (e *Empirical) Median() float64 { return e.Quantile(0.5) }

// Sorted returns the underlying sorted sample. The caller must not modify
// the returned slice.
func (e *Empirical) Sorted() []float64 { return e.sorted }

// Point is a single (X, Y) pair on a distribution curve.
type Point struct {
	X, Y float64
}

// Curve is an ordered series of points, ready for plotting or CSV export.
type Curve []Point

// CDFCurve returns the full step curve of the empirical CDF, one point per
// distinct sample value.
func (e *Empirical) CDFCurve() Curve {
	return e.curve(func(cum int) float64 {
		return float64(cum) / float64(len(e.sorted))
	})
}

// CCDFCurve returns the full step curve of the empirical CCDF, one point
// per distinct sample value: (x, P(X > x)).
func (e *Empirical) CCDFCurve() Curve {
	return e.curve(func(cum int) float64 {
		return 1 - float64(cum)/float64(len(e.sorted))
	})
}

func (e *Empirical) curve(y func(cum int) float64) Curve {
	var c Curve
	for i := 0; i < len(e.sorted); {
		j := i
		for j < len(e.sorted) && e.sorted[j] == e.sorted[i] {
			j++
		}
		c = append(c, Point{X: e.sorted[i], Y: y(j)})
		i = j
	}
	return c
}

// SampleCurve evaluates fn at each of the given x positions; used to render
// curves on the paper's log-spaced axes.
func SampleCurve(xs []float64, fn func(x float64) float64) Curve {
	c := make(Curve, 0, len(xs))
	for _, x := range xs {
		c = append(c, Point{X: x, Y: fn(x)})
	}
	return c
}

// LogSpace returns n points logarithmically spaced over [lo, hi]. Both
// bounds must be positive and n >= 2.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: invalid LogSpace parameters")
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// LinSpace returns n points linearly spaced over [lo, hi], n >= 2.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: invalid LinSpace parameters")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
