package stats

import (
	"math"
	"testing"

	"slmob/internal/rng"
)

func TestFitExponentialRecoversRate(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 5 + r.Exp(0.1) // shifted exponential above xmin=5
	}
	fit, err := FitExponential(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate-0.1)/0.1 > 0.05 {
		t.Errorf("rate = %v, want ~0.1", fit.Rate)
	}
	if fit.N != len(xs) {
		t.Errorf("N = %d", fit.N)
	}
}

func TestFitParetoRecoversAlpha(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Pareto(10, 1.8)
	}
	fit, err := FitPareto(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.8)/1.8 > 0.05 {
		t.Errorf("alpha = %v, want ~1.8", fit.Alpha)
	}
}

func TestFitPowerLawCutoffRecoversParameters(t *testing.T) {
	r := rng.New(3)
	const xmin, alpha, cutoff = 10.0, 0.9, 400.0
	sampler := rng.NewExpCutoffSampler(xmin, alpha, cutoff)
	xs := make([]float64, 8000)
	for i := range xs {
		xs[i] = sampler.Sample(r)
	}
	fit, err := FitPowerLawCutoff(xs, xmin)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.25 {
		t.Errorf("alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.Cutoff < cutoff/2 || fit.Cutoff > cutoff*2 {
		t.Errorf("cutoff = %v, want ~%v", fit.Cutoff, cutoff)
	}
}

func TestModelSelectionPrefersTrueModel(t *testing.T) {
	r := rng.New(4)

	// Data generated from a power law with exponential cutoff: the
	// two-phase model must win the AIC comparison (the paper's claim X1).
	sampler := rng.NewExpCutoffSampler(10, 0.8, 300)
	xs := make([]float64, 6000)
	for i := range xs {
		xs[i] = sampler.Sample(r)
	}
	cmp, err := CompareTailModels(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.Best().Model; got != ModelPowerLawCutoff {
		t.Errorf("best model for cutoff data = %v", got)
	}

	// Pure exponential data: exponential must beat pure Pareto, and the
	// cutoff model must not lose badly (it nests the exponential at
	// alpha=0 up to quadrature error).
	ys := make([]float64, 6000)
	for i := range ys {
		ys[i] = 10 + r.Exp(0.02)
	}
	cmp2, err := CompareTailModels(ys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp2.Exponential.AIC() > cmp2.Pareto.AIC() {
		t.Errorf("exponential AIC %v should beat pareto %v on exp data",
			cmp2.Exponential.AIC(), cmp2.Pareto.AIC())
	}

	// Pure Pareto data: Pareto must beat exponential.
	zs := make([]float64, 6000)
	for i := range zs {
		zs[i] = r.Pareto(10, 1.2)
	}
	cmp3, err := CompareTailModels(zs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp3.Pareto.AIC() > cmp3.Exponential.AIC() {
		t.Errorf("pareto AIC %v should beat exponential %v on pareto data",
			cmp3.Pareto.AIC(), cmp3.Exponential.AIC())
	}
}

func TestFitErrorsOnTinySample(t *testing.T) {
	if _, err := FitExponential([]float64{1}, 0.5); err == nil {
		t.Error("singleton tail accepted")
	}
	if _, err := FitPareto([]float64{5, 6}, 100); err == nil {
		t.Error("empty tail accepted")
	}
	if _, err := FitPowerLawCutoff([]float64{-1, 2}, -2); err == nil {
		t.Error("non-positive samples accepted")
	}
}

func TestTailModelString(t *testing.T) {
	if ModelExponential.String() != "exponential" ||
		ModelPareto.String() != "pareto" ||
		ModelPowerLawCutoff.String() != "powerlaw+cutoff" {
		t.Error("model names wrong")
	}
	if TailModel(99).String() == "" {
		t.Error("unknown model name empty")
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit = %v, %v, %v", slope, intercept, r2)
	}
	if _, _, _, err := LinearRegression([]float64{1}, []float64{2}); err == nil {
		t.Error("short input accepted")
	}
	if _, _, _, err := LinearRegression([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	r := rng.New(5)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	res := KolmogorovSmirnov(a, b)
	if res.P < 0.01 {
		t.Errorf("same-distribution KS rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKolmogorovSmirnovDifferentDistributions(t *testing.T) {
	r := rng.New(6)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1 // shifted
	}
	res := KolmogorovSmirnov(a, b)
	if res.P > 1e-6 {
		t.Errorf("shifted distributions not detected: D=%v p=%v", res.D, res.P)
	}
	if res.D < 0.2 {
		t.Errorf("D = %v too small for unit shift", res.D)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := KolmogorovSmirnov(a, a)
	if res.D != 0 || res.P != 1 {
		t.Errorf("identical samples: D=%v p=%v", res.D, res.P)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	res := KolmogorovSmirnov(nil, []float64{1})
	if !math.IsNaN(res.D) {
		t.Errorf("empty sample D = %v, want NaN", res.D)
	}
}

func TestFitAICParameterCount(t *testing.T) {
	f1 := Fit{Model: ModelExponential, LogLik: -100}
	f2 := Fit{Model: ModelPowerLawCutoff, LogLik: -100}
	if f2.AIC()-f1.AIC() != 2 {
		t.Errorf("AIC penalty difference = %v, want 2", f2.AIC()-f1.AIC())
	}
}
