package stats

import "fmt"

// Summary condenses a sample into the descriptive statistics reported
// throughout EXPERIMENTS.md.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P10    float64
	Median float64
	P90    float64
	P98    float64
	Max    float64
}

// Summarize computes a Summary; it returns the zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	e := MustEmpirical(xs)
	return Summary{
		N:      e.N(),
		Mean:   e.Mean(),
		Std:    e.Std(),
		Min:    e.Min(),
		P10:    e.Quantile(0.10),
		Median: e.Median(),
		P90:    e.Quantile(0.90),
		P98:    e.Quantile(0.98),
		Max:    e.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p10=%.3g med=%.3g p90=%.3g p98=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.P10, s.Median, s.P90, s.P98, s.Max)
}

// Histogram counts samples into equal-width bins over [lo, hi); samples
// outside the range land in the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the centre of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(best)+0.5)
}
