package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the maximum absolute difference between the two empirical CDFs.
	D float64
	// P is the asymptotic p-value for the null hypothesis that both
	// samples come from the same distribution.
	P float64
}

// KolmogorovSmirnov runs the two-sample KS test. It is used to compare
// metric distributions between monitoring architectures (crawler vs
// sensors), between mobility models, and between seeds.
func KolmogorovSmirnov(a, b []float64) KSResult {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{D: math.NaN(), P: math.NaN()}
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := len(as), len(bs)
	var i, j int
	var d float64
	for i < na && j < nb {
		x := math.Min(as[i], bs[j])
		for i < na && as[i] <= x {
			i++
		}
		for j < nb && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProb(lambda)}
}

// ksProb is the asymptotic Kolmogorov distribution tail
// Q(lambda) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
