package stats

import (
	"math"
	"sort"
)

// Weighted is a weighted empirical distribution: a multiset of sample
// values stored as value → multiplicity instead of one float64 per
// observation. For the analysis pipeline's integer-valued metrics —
// contact/inter-contact/first-contact times (all τ-multiples), node
// degrees, network diameters, zone occupancy counts — the number of
// distinct values is tiny compared to the number of observations, so the
// accumulator collapses memory from O(samples) to O(distinct values)
// while producing bit-identical ECDFs, quantiles, and figure curves:
// every query answers exactly what an Empirical over the expanded
// multiset would answer.
//
// Adding an already-seen value performs no heap allocation, which is what
// keeps the steady-state streaming analyzer allocation-free. The zero
// value is unusable; construct with NewWeighted or WeightedOf.
type Weighted struct {
	counts map[float64]int64
	n      int64

	// Sorted-view cache, rebuilt lazily: sorted distinct values and the
	// cumulative multiplicity at or below each. Merge only marks them
	// dirty; refresh rebuilds them from counts on the next query.
	sorted []float64 //lint:allow acc derived cache; Merge invalidates via dirty and refresh rebuilds from counts
	cum    []int64   //lint:allow acc derived cache; Merge invalidates via dirty and refresh rebuilds from counts
	dirty  bool
}

// NewWeighted returns an empty weighted distribution.
func NewWeighted() *Weighted {
	return &Weighted{counts: make(map[float64]int64)}
}

// WeightedOf builds a weighted distribution holding the given sample as a
// multiset.
func WeightedOf(xs ...float64) *Weighted {
	w := NewWeighted()
	for _, x := range xs {
		w.Add(x)
	}
	return w
}

// Add records one observation of v. NaN panics: the same values an
// Empirical would reject must never enter the accumulator.
//
//slmob:hotpath
func (w *Weighted) Add(v float64) { w.AddN(v, 1) }

// AddN records n observations of v; n <= 0 is a no-op.
//
//slmob:hotpath
func (w *Weighted) AddN(v float64, n int64) {
	if n <= 0 {
		return
	}
	if math.IsNaN(v) {
		panic("stats: NaN added to weighted distribution")
	}
	w.counts[v] += n
	w.n += n
	w.dirty = true
}

// Merge folds every observation of o into w. Because the accumulator is
// a canonical multiset, a merged accumulator is bit-identical — same
// ECDF, quantiles, and figure curves — to a single accumulator fed the
// two streams concatenated in any order; the equivalence tests pin it.
// Merge is the mergeable half of the core.Accumulator contract: it is
// what lets windowed analytics reassemble a whole-trace analysis from
// its windows and estate shards combine order-independent metrics.
func (w *Weighted) Merge(o *Weighted) {
	if o == nil {
		return
	}
	for v, c := range o.counts {
		w.AddN(v, c)
	}
}

// Reset empties the accumulator while retaining every internal
// allocation (hash buckets, sorted-view buffers), so a window
// accumulator can be recycled without touching the heap: re-adding a
// previously seen value after Reset allocates nothing.
func (w *Weighted) Reset() {
	clear(w.counts)
	w.n = 0
	w.sorted = w.sorted[:0]
	w.cum = w.cum[:0]
	w.dirty = true
}

// Clone returns an independent copy.
func (w *Weighted) Clone() *Weighted {
	c := NewWeighted()
	c.Merge(w)
	return c
}

// N returns the number of recorded observations.
func (w *Weighted) N() int { return int(w.n) }

// Distinct returns the number of distinct values — the accumulator's
// actual memory footprint.
func (w *Weighted) Distinct() int { return len(w.counts) }

// CountOf returns the multiplicity of v.
func (w *Weighted) CountOf(v float64) int64 { return w.counts[v] }

// refresh rebuilds the sorted view.
func (w *Weighted) refresh() {
	if !w.dirty && w.sorted != nil {
		return
	}
	w.sorted = w.sorted[:0]
	for v := range w.counts {
		w.sorted = append(w.sorted, v)
	}
	sort.Float64s(w.sorted)
	w.cum = w.cum[:0]
	run := int64(0)
	for _, v := range w.sorted {
		run += w.counts[v]
		w.cum = append(w.cum, run)
	}
	w.dirty = false
}

// Min returns the smallest recorded value, NaN when empty.
func (w *Weighted) Min() float64 {
	w.refresh()
	if len(w.sorted) == 0 {
		return math.NaN()
	}
	return w.sorted[0]
}

// Max returns the largest recorded value, NaN when empty.
func (w *Weighted) Max() float64 {
	w.refresh()
	if len(w.sorted) == 0 {
		return math.NaN()
	}
	return w.sorted[len(w.sorted)-1]
}

// Sum returns the multiset sum Σ v·count(v), accumulated in ascending
// value order. For integer-valued metrics below 2^53 this is exact and
// equal to summing the expanded sample.
func (w *Weighted) Sum() float64 {
	w.refresh()
	sum := 0.0
	for _, v := range w.sorted {
		sum += v * float64(w.counts[v])
	}
	return sum
}

// Mean returns the sample mean, NaN when empty.
func (w *Weighted) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.Sum() / float64(w.n)
}

// Quantile returns the p-quantile under the nearest-rank definition used
// by Empirical.Quantile: for the same multiset the two agree exactly.
// An empty distribution yields NaN.
func (w *Weighted) Quantile(p float64) float64 {
	w.refresh()
	if len(w.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return w.sorted[0]
	}
	if p >= 1 {
		return w.sorted[len(w.sorted)-1]
	}
	idx := int64(math.Ceil(p*float64(w.n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= w.n {
		idx = w.n - 1
	}
	// First distinct value whose cumulative multiplicity covers rank idx.
	i := sort.Search(len(w.cum), func(i int) bool { return w.cum[i] > idx })
	return w.sorted[i]
}

// Median returns the 0.5-quantile.
func (w *Weighted) Median() float64 { return w.Quantile(0.5) }

// CDF returns P(X <= x).
func (w *Weighted) CDF(x float64) float64 {
	w.refresh()
	if w.n == 0 {
		return 0
	}
	// First distinct value > x.
	i := sort.SearchFloat64s(w.sorted, math.Nextafter(x, math.Inf(1)))
	if i == 0 {
		return 0
	}
	return float64(w.cum[i-1]) / float64(w.n)
}

// CCDF returns P(X > x).
func (w *Weighted) CCDF(x float64) float64 { return 1 - w.CDF(x) }

// CDFCurve returns the full step curve of the CDF, one point per distinct
// value — exactly the curve Empirical.CDFCurve produces for the expanded
// multiset.
func (w *Weighted) CDFCurve() Curve {
	return w.curve(func(cum int64) float64 { return float64(cum) / float64(w.n) })
}

// CCDFCurve returns the full step curve of the CCDF, one point per
// distinct value.
func (w *Weighted) CCDFCurve() Curve {
	return w.curve(func(cum int64) float64 { return 1 - float64(cum)/float64(w.n) })
}

func (w *Weighted) curve(y func(cum int64) float64) Curve {
	w.refresh()
	if w.n == 0 {
		return nil
	}
	c := make(Curve, 0, len(w.sorted))
	for i, v := range w.sorted {
		c = append(c, Point{X: v, Y: y(w.cum[i])})
	}
	return c
}

// Positive returns a copy holding only the strictly positive values —
// the filtering CCDFSeries applies before a log-axis plot.
func (w *Weighted) Positive() *Weighted {
	out := NewWeighted()
	for v, c := range w.counts {
		if v > 0 {
			out.AddN(v, c)
		}
	}
	return out
}

// Values materialises the full multiset as an ascending []float64 — the
// bridge to consumers that still need raw samples (tail fits, KS tests,
// digests). It allocates O(N); keep it off hot paths.
func (w *Weighted) Values() []float64 {
	w.refresh()
	out := make([]float64, 0, w.n)
	for _, v := range w.sorted {
		for c := w.counts[v]; c > 0; c-- {
			out = append(out, v)
		}
	}
	return out
}

// Equal reports whether two weighted distributions hold the same
// multiset.
func (w *Weighted) Equal(o *Weighted) bool {
	if w == nil || o == nil {
		return w == o
	}
	if w.n != o.n || len(w.counts) != len(o.counts) {
		return false
	}
	for v, c := range w.counts {
		if o.counts[v] != c {
			return false
		}
	}
	return true
}

// Summary condenses the distribution like Summarize does for a raw
// sample; it returns the zero Summary when empty. Std matches
// Empirical.Std to floating-point rounding (exactly, for integer-valued
// data).
func (w *Weighted) Summary() Summary {
	if w.n == 0 {
		return Summary{}
	}
	m := w.Mean()
	w.refresh()
	varSum := 0.0
	for _, v := range w.sorted {
		d := v - m
		varSum += d * d * float64(w.counts[v])
	}
	std := 0.0
	if w.n > 1 {
		std = math.Sqrt(varSum / float64(w.n-1))
	}
	return Summary{
		N:      int(w.n),
		Mean:   m,
		Std:    std,
		Min:    w.Min(),
		P10:    w.Quantile(0.10),
		Median: w.Median(),
		P90:    w.Quantile(0.90),
		P98:    w.Quantile(0.98),
		Max:    w.Max(),
	}
}
