package stats

import (
	"fmt"
	"math"
)

// TailModel identifies one of the candidate models for the upper tail of a
// positive sample, all defined on [xmin, +inf).
type TailModel int

const (
	// ModelExponential is pdf(x) = rate * exp(-rate*(x-xmin)).
	ModelExponential TailModel = iota
	// ModelPareto is the pure power law pdf(x) ∝ x^-(alpha+1).
	ModelPareto
	// ModelPowerLawCutoff is pdf(x) ∝ x^-alpha * exp(-x/cutoff): the
	// two-phase shape (power-law body, exponential cut-off) the paper
	// reports for contact and inter-contact times.
	ModelPowerLawCutoff
)

// String returns the human-readable model name.
func (m TailModel) String() string {
	switch m {
	case ModelExponential:
		return "exponential"
	case ModelPareto:
		return "pareto"
	case ModelPowerLawCutoff:
		return "powerlaw+cutoff"
	default:
		return fmt.Sprintf("TailModel(%d)", int(m))
	}
}

// Fit is a fitted tail model with its maximised log-likelihood.
type Fit struct {
	Model TailModel
	Xmin  float64
	// Alpha is the power-law exponent (Pareto shape for ModelPareto,
	// pdf exponent for ModelPowerLawCutoff); unused for ModelExponential.
	Alpha float64
	// Rate is the exponential rate for ModelExponential; unused otherwise.
	Rate float64
	// Cutoff is the exponential cut-off scale for ModelPowerLawCutoff.
	Cutoff float64
	// LogLik is the maximised log-likelihood over the n tail samples.
	LogLik float64
	// N is the number of samples at or above Xmin used in the fit.
	N int
}

// AIC returns the Akaike information criterion (lower is better).
func (f Fit) AIC() float64 {
	k := 1.0
	if f.Model == ModelPowerLawCutoff {
		k = 2
	}
	return 2*k - 2*f.LogLik
}

// tailSample extracts the observations >= xmin and their sufficient
// statistics.
func tailSample(xs []float64, xmin float64) (tail []float64, sumX, sumLnX float64, err error) {
	for _, x := range xs {
		if x >= xmin {
			if x <= 0 {
				return nil, 0, 0, fmt.Errorf("stats: non-positive tail sample %v", x)
			}
			tail = append(tail, x)
			sumX += x
			sumLnX += math.Log(x)
		}
	}
	if len(tail) < 2 {
		return nil, 0, 0, fmt.Errorf("stats: fewer than 2 samples above xmin=%v", xmin)
	}
	return tail, sumX, sumLnX, nil
}

// FitExponential fits a shifted exponential to the tail of xs above xmin by
// maximum likelihood.
func FitExponential(xs []float64, xmin float64) (Fit, error) {
	tail, sumX, _, err := tailSample(xs, xmin)
	if err != nil {
		return Fit{}, err
	}
	n := float64(len(tail))
	mean := sumX/n - xmin
	if mean <= 0 {
		// Degenerate sample: all values equal xmin.
		mean = 1e-9
	}
	rate := 1 / mean
	ll := n*math.Log(rate) - rate*(sumX-n*xmin)
	return Fit{Model: ModelExponential, Xmin: xmin, Rate: rate, LogLik: ll, N: len(tail)}, nil
}

// FitPareto fits a pure Pareto (power-law) tail above xmin by maximum
// likelihood (the Hill estimator).
func FitPareto(xs []float64, xmin float64) (Fit, error) {
	tail, _, sumLnX, err := tailSample(xs, xmin)
	if err != nil {
		return Fit{}, err
	}
	n := float64(len(tail))
	denom := sumLnX - n*math.Log(xmin)
	if denom <= 0 {
		denom = 1e-9
	}
	alpha := n / denom
	ll := n*math.Log(alpha) + n*alpha*math.Log(xmin) - (alpha+1)*sumLnX
	return Fit{Model: ModelPareto, Xmin: xmin, Alpha: alpha, LogLik: ll, N: len(tail)}, nil
}

// FitPowerLawCutoff fits pdf ∝ x^-alpha * exp(-x/cutoff) on [xmin, ∞) by
// maximum likelihood. The normalising constant has no elementary closed
// form, so it is computed by composite Simpson quadrature on a geometric
// mesh, and the two-parameter likelihood is maximised by a coarse grid
// search followed by coordinate refinement.
func FitPowerLawCutoff(xs []float64, xmin float64) (Fit, error) {
	tail, sumX, sumLnX, err := tailSample(xs, xmin)
	if err != nil {
		return Fit{}, err
	}
	n := float64(len(tail))
	maxX := 0.0
	for _, x := range tail {
		if x > maxX {
			maxX = x
		}
	}

	ll := func(alpha, cutoff float64) float64 {
		z := cutoffNorm(xmin, alpha, cutoff)
		if z <= 0 || math.IsInf(z, 0) || math.IsNaN(z) {
			return math.Inf(-1)
		}
		return -alpha*sumLnX - sumX/cutoff - n*math.Log(z)
	}

	// Coarse grid.
	alphas := LinSpace(0, 4, 17)
	cutoffs := LogSpace(math.Max(xmin/4, 1e-6), 20*maxX+xmin, 17)
	bestA, bestC, bestLL := alphas[0], cutoffs[0], math.Inf(-1)
	for _, a := range alphas {
		for _, c := range cutoffs {
			if v := ll(a, c); v > bestLL {
				bestA, bestC, bestLL = a, c, v
			}
		}
	}
	// Coordinate refinement: shrink a local box around the best point.
	da, dc := 0.25, 2.0 // alpha step; cutoff multiplicative step
	for iter := 0; iter < 40; iter++ {
		improved := false
		for _, a := range []float64{bestA - da, bestA + da} {
			if a < 0 || a > 8 {
				continue
			}
			if v := ll(a, bestC); v > bestLL {
				bestA, bestLL, improved = a, v, true
			}
		}
		for _, c := range []float64{bestC / dc, bestC * dc} {
			if c <= 0 {
				continue
			}
			if v := ll(bestA, c); v > bestLL {
				bestC, bestLL, improved = c, v, true
			}
		}
		if !improved {
			da /= 2
			dc = math.Sqrt(dc)
			if da < 1e-4 && dc < 1.0005 {
				break
			}
		}
	}
	return Fit{
		Model: ModelPowerLawCutoff, Xmin: xmin,
		Alpha: bestA, Cutoff: bestC, LogLik: bestLL, N: len(tail),
	}, nil
}

// cutoffNorm computes Z = ∫_{xmin}^∞ x^-alpha exp(-x/cutoff) dx by
// composite Simpson quadrature over a geometric mesh. The integrand decays
// like exp(-x/cutoff), so truncating at xmin + 60*cutoff loses less than
// exp(-60) of the mass.
func cutoffNorm(xmin, alpha, cutoff float64) float64 {
	upper := xmin + 60*cutoff
	const segments = 400
	mesh := LogSpace(xmin, upper, segments+1)
	f := func(x float64) float64 {
		return math.Exp(-alpha*math.Log(x) - x/cutoff)
	}
	total := 0.0
	for i := 0; i < segments; i++ {
		a, b := mesh[i], mesh[i+1]
		m := (a + b) / 2
		total += (b - a) / 6 * (f(a) + 4*f(m) + f(b))
	}
	return total
}

// TailComparison holds all three candidate fits for one sample.
type TailComparison struct {
	Exponential Fit
	Pareto      Fit
	Cutoff      Fit
}

// CompareTailModels fits all three models above xmin and returns them. Use
// Best to identify the AIC-preferred model.
func CompareTailModels(xs []float64, xmin float64) (TailComparison, error) {
	var c TailComparison
	var err error
	if c.Exponential, err = FitExponential(xs, xmin); err != nil {
		return c, err
	}
	if c.Pareto, err = FitPareto(xs, xmin); err != nil {
		return c, err
	}
	if c.Cutoff, err = FitPowerLawCutoff(xs, xmin); err != nil {
		return c, err
	}
	return c, nil
}

// Best returns the fit with the lowest AIC.
func (c TailComparison) Best() Fit {
	best := c.Exponential
	if c.Pareto.AIC() < best.AIC() {
		best = c.Pareto
	}
	if c.Cutoff.AIC() < best.AIC() {
		best = c.Cutoff
	}
	return best
}

// LinearRegression fits y = slope*x + intercept by least squares and
// returns the coefficient of determination r2. Used for log-log slope
// estimation on CCDF curves.
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: regression needs >= 2 paired points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1, nil
	}
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	return slope, intercept, 1 - ssRes/ssTot, nil
}
