package stats

import (
	"errors"
	"reflect"
	"testing"

	"slmob/internal/snap"
)

// TestMergeEquivalence pins the mergeable half of the Accumulator
// contract: a merged accumulator must be bit-identical — ECDF, quantile,
// curve, and summary — to a single accumulator fed the concatenated
// stream, including empty parts and parts with overlapping support.
func TestMergeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
	}{
		{"disjoint support", []float64{10, 20, 20, 30}, []float64{40, 50, 50}},
		{"overlapping support", []float64{10, 20, 20, 30}, []float64{20, 30, 30, 10}},
		{"identical support", []float64{1, 2, 3}, []float64{3, 2, 1}},
		{"left empty", nil, []float64{5, 5, 7}},
		{"right empty", []float64{5, 5, 7}, nil},
		{"both empty", nil, nil},
		{"negative and zero", []float64{-3, 0, 0, 2}, []float64{0, -3, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			merged := WeightedOf(tc.a...)
			merged.Merge(WeightedOf(tc.b...))

			whole := WeightedOf(append(append([]float64(nil), tc.a...), tc.b...)...)

			if !merged.Equal(whole) {
				t.Fatalf("merged multiset != concatenated multiset")
			}
			if merged.N() != whole.N() || merged.Distinct() != whole.Distinct() {
				t.Fatalf("N/Distinct = %d/%d, want %d/%d",
					merged.N(), merged.Distinct(), whole.N(), whole.Distinct())
			}
			if !reflect.DeepEqual(merged.CDFCurve(), whole.CDFCurve()) {
				t.Error("CDF curves differ")
			}
			if !reflect.DeepEqual(merged.CCDFCurve(), whole.CCDFCurve()) {
				t.Error("CCDF curves differ")
			}
			if !reflect.DeepEqual(merged.Values(), whole.Values()) {
				t.Error("materialised values differ")
			}
			for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.98, 1} {
				if whole.N() == 0 {
					break
				}
				if got, want := merged.Quantile(p), whole.Quantile(p); got != want {
					t.Errorf("quantile(%g) = %v, want %v", p, got, want)
				}
			}
			if whole.N() > 0 && merged.Summary() != whole.Summary() {
				t.Errorf("summary = %+v, want %+v", merged.Summary(), whole.Summary())
			}
		})
	}
}

// TestMergeNil: merging a nil accumulator is a no-op.
func TestMergeNil(t *testing.T) {
	w := WeightedOf(1, 2)
	w.Merge(nil)
	if w.N() != 2 {
		t.Errorf("N = %d after nil merge", w.N())
	}
}

// TestResetReuse pins the resettable half of the contract: Reset empties
// the accumulator, and re-adding previously seen values allocates
// nothing.
func TestResetReuse(t *testing.T) {
	w := NewWeighted()
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 10))
	}
	w.Median() // populate the sorted view
	w.Reset()
	if w.N() != 0 || w.Distinct() != 0 {
		t.Fatalf("after Reset: N=%d Distinct=%d", w.N(), w.Distinct())
	}
	if got := w.CDF(5); got != 0 {
		t.Errorf("CDF after Reset = %v", got)
	}
	avg := testing.AllocsPerRun(100, func() {
		w.Add(3)
		w.Add(7)
	})
	if avg != 0 {
		t.Errorf("re-adding seen values after Reset allocates %v", avg)
	}
	w.Reset()
	w.Add(4)
	if w.N() != 1 || w.CountOf(4) != 1 {
		t.Errorf("accumulator unusable after second Reset")
	}
}

// TestWeightedSnapshotRoundTrip: Encode/Decode preserve the multiset
// exactly.
func TestWeightedSnapshotRoundTrip(t *testing.T) {
	w := WeightedOf(10, 20, 20, 30, 30, 30, -1.5, 0)
	sw := snap.NewWriter(99)
	w.Encode(sw)
	EncodeSample(sw, []float64{0.5, 0.25, 1})
	r, err := snap.NewReader(sw.Finish())
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeWeighted(r)
	xs := DecodeSample(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) {
		t.Error("decoded multiset differs")
	}
	if !reflect.DeepEqual(xs, []float64{0.5, 0.25, 1}) {
		t.Errorf("sample = %v", xs)
	}
}

// TestWeightedSnapshotRejects: zero multiplicities and NaN values are
// typed malformed errors, never panics.
func TestWeightedSnapshotRejects(t *testing.T) {
	check := func(name string, build func(sw *snap.Writer)) {
		t.Helper()
		sw := snap.NewWriter(99)
		build(sw)
		r, err := snap.NewReader(sw.Finish())
		if err != nil {
			t.Fatal(err)
		}
		DecodeWeighted(r)
		var se *snap.Error
		if !errors.As(r.Err(), &se) {
			t.Errorf("%s: err = %v, want *snap.Error", name, r.Err())
		}
	}
	check("zero multiplicity", func(sw *snap.Writer) {
		sw.Uvarint(1)
		sw.F64(5)
		sw.Uvarint(0)
	})
	check("NaN value", func(sw *snap.Writer) {
		sw.Uvarint(1)
		sw.F64(nan())
		sw.Uvarint(1)
	})
	check("duplicate value", func(sw *snap.Writer) {
		sw.Uvarint(2)
		sw.F64(5)
		sw.Uvarint(1)
		sw.F64(5)
		sw.Uvarint(2)
	})
	check("count past payload", func(sw *snap.Writer) {
		sw.Uvarint(1 << 50)
	})
}

func nan() float64 {
	var z float64
	return z / z
}
