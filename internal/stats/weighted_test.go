package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// weightedSample is an integer-valued sample with heavy repetition, the
// shape the analysis pipeline's weighted metrics have (τ-multiples,
// degrees, zone counts).
func weightedSample() []float64 {
	// Small deterministic LCG so the test needs no seed plumbing.
	state := uint64(12345)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	xs := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		xs = append(xs, float64(10*(next()%40)))
	}
	return xs
}

// TestWeightedMatchesEmpirical is the weighted-vs-slice ECDF equivalence
// gate: every query a Weighted answers must be bit-identical to the same
// query on an Empirical over the expanded sample.
func TestWeightedMatchesEmpirical(t *testing.T) {
	xs := weightedSample()
	w := WeightedOf(xs...)
	e := MustEmpirical(xs)

	if w.N() != e.N() {
		t.Fatalf("N = %d, want %d", w.N(), e.N())
	}
	if w.Min() != e.Min() || w.Max() != e.Max() {
		t.Errorf("min/max = %v/%v, want %v/%v", w.Min(), w.Max(), e.Min(), e.Max())
	}
	if w.Mean() != e.Mean() {
		t.Errorf("mean = %v, want %v", w.Mean(), e.Mean())
	}
	for p := 0.0; p <= 1.0; p += 0.01 {
		if got, want := w.Quantile(p), e.Quantile(p); got != want {
			t.Fatalf("quantile(%v) = %v, want %v", p, got, want)
		}
	}
	for x := -10.0; x <= 410; x += 1.0 {
		if got, want := w.CDF(x), e.CDF(x); got != want {
			t.Fatalf("CDF(%v) = %v, want %v", x, got, want)
		}
		if got, want := w.CCDF(x), e.CCDF(x); got != want {
			t.Fatalf("CCDF(%v) = %v, want %v", x, got, want)
		}
	}
	if !reflect.DeepEqual(w.CDFCurve(), e.CDFCurve()) {
		t.Error("CDF curves differ")
	}
	if !reflect.DeepEqual(w.CCDFCurve(), e.CCDFCurve()) {
		t.Error("CCDF curves differ")
	}

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if !reflect.DeepEqual(w.Values(), sorted) {
		t.Error("Values() is not the sorted expanded multiset")
	}

	ws, es := w.Summary(), Summarize(xs)
	if ws.N != es.N || ws.Mean != es.Mean || ws.Min != es.Min || ws.Max != es.Max ||
		ws.P10 != es.P10 || ws.Median != es.Median || ws.P90 != es.P90 || ws.P98 != es.P98 {
		t.Errorf("summary = %+v, want %+v", ws, es)
	}
	if math.Abs(ws.Std-es.Std) > 1e-12*es.Std {
		t.Errorf("std = %v, want %v", ws.Std, es.Std)
	}
}

func TestWeightedCompressesDistinctValues(t *testing.T) {
	w := NewWeighted()
	for i := 0; i < 100000; i++ {
		w.Add(float64(i % 7))
	}
	if w.N() != 100000 || w.Distinct() != 7 {
		t.Errorf("n/distinct = %d/%d, want 100000/7", w.N(), w.Distinct())
	}
	if w.CountOf(3) != 100000/7+1 {
		t.Errorf("CountOf(3) = %d", w.CountOf(3))
	}
}

func TestWeightedMergeAndEqual(t *testing.T) {
	a := WeightedOf(1, 2, 2, 3)
	b := WeightedOf(2, 3, 3)
	m := a.Clone()
	m.Merge(b)
	want := WeightedOf(1, 2, 2, 2, 3, 3, 3)
	if !m.Equal(want) {
		t.Errorf("merge = %v, want %v", m.Values(), want.Values())
	}
	if a.Equal(b) {
		t.Error("distinct multisets compare equal")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal to original")
	}
	// Same distinct values, different multiplicities.
	if WeightedOf(1, 1, 2).Equal(WeightedOf(1, 2, 2)) {
		t.Error("multiplicity ignored")
	}
}

func TestWeightedPositive(t *testing.T) {
	w := WeightedOf(-5, 0, 0, 10, 10, 20)
	p := w.Positive()
	if p.N() != 3 || p.Min() != 10 || p.Max() != 20 {
		t.Errorf("positive = %v", p.Values())
	}
	// Filtering then building the curve matches filtering the raw sample.
	e := MustEmpirical([]float64{10, 10, 20})
	if !reflect.DeepEqual(p.CCDFCurve(), e.CCDFCurve()) {
		t.Error("positive CCDF curve differs from filtered Empirical")
	}
}

func TestWeightedEmpty(t *testing.T) {
	w := NewWeighted()
	if w.N() != 0 || w.Distinct() != 0 {
		t.Errorf("empty n/distinct = %d/%d", w.N(), w.Distinct())
	}
	if got := w.CDFCurve(); got != nil {
		t.Errorf("empty curve = %v", got)
	}
	if s := w.Summary(); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if !math.IsNaN(w.Mean()) {
		t.Errorf("empty mean = %v", w.Mean())
	}
}

func TestWeightedAddZeroAllocSteadyState(t *testing.T) {
	w := NewWeighted()
	for i := 0; i < 64; i++ {
		w.Add(float64(i))
	}
	if avg := testing.AllocsPerRun(1000, func() {
		w.Add(float64(1000 % 64))
		w.AddN(13, 3)
	}); avg != 0 {
		t.Errorf("steady-state Add allocates %v per run", avg)
	}
}
