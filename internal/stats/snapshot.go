package stats

import (
	"math"

	"slmob/internal/snap"
)

// Encode appends the accumulator's multiset to a snapshot: the distinct
// count, then one (value, multiplicity) pair per distinct value, in
// ascending value order so the bytes are reproducible — checkpoints of
// equal accumulators must be byte-identical, and map iteration order is
// randomised per run. The serializable third of the core.Accumulator
// contract.
func (w *Weighted) Encode(sw *snap.Writer) {
	w.refresh()
	sw.Uvarint(uint64(len(w.sorted)))
	for _, v := range w.sorted {
		sw.F64(v)
		sw.Uvarint(uint64(w.counts[v]))
	}
}

// DecodeWeighted reads an accumulator previously written with Encode.
// Invariant violations — NaN values, zero multiplicities, duplicate
// values — latch a typed malformed error on the reader; the caller
// checks r.Err once per structure.
func DecodeWeighted(r *snap.Reader) *Weighted {
	// Each distinct value occupies at least 9 bytes (8-byte value + a
	// one-byte-minimum multiplicity).
	n := r.Count(9)
	w := NewWeighted()
	for i := 0; i < n; i++ {
		v := r.F64()
		c := r.Uvarint()
		if r.Err() != nil {
			return w
		}
		if math.IsNaN(v) {
			r.Fail("NaN in weighted distribution")
			return w
		}
		if c == 0 || c > math.MaxInt64 {
			r.Fail("weighted multiplicity out of range")
			return w
		}
		if _, dup := w.counts[v]; dup {
			r.Fail("duplicate value in weighted distribution")
			return w
		}
		w.AddN(v, int64(c))
	}
	return w
}

// EncodeSample appends a plain float64 sample (clustering coefficients,
// trip metrics) to a snapshot.
func EncodeSample(sw *snap.Writer, xs []float64) {
	sw.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		sw.F64(x)
	}
}

// DecodeSample reads a sample written with EncodeSample.
func DecodeSample(r *snap.Reader) []float64 {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, r.F64())
	}
	if r.Err() != nil {
		return nil
	}
	return xs
}
