package world

import (
	"context"
	"io"
	"testing"

	"slmob/internal/trace"
)

// drainTicks runs an estate source to exhaustion.
func drainTicks(t *testing.T, es *EstateSource) []trace.EstateTick {
	t.Helper()
	var ticks []trace.EstateTick
	for {
		tick, err := es.NextTick(context.Background())
		if err == io.EOF {
			return ticks
		}
		if err != nil {
			t.Fatal(err)
		}
		ticks = append(ticks, tick)
	}
}

func TestEstateConfigValidate(t *testing.T) {
	base := func() EstateConfig {
		cfg := SingleRegionEstate(DanceIsland(1))
		cfg.Duration = 600
		return cfg
	}
	cases := []struct {
		name   string
		break_ func(*EstateConfig)
	}{
		{"no name", func(c *EstateConfig) { c.Name = "" }},
		{"zero rows", func(c *EstateConfig) { c.Rows = 0 }},
		{"region count mismatch", func(c *EstateConfig) { c.Cols = 2 }},
		{"bad cross prob", func(c *EstateConfig) { c.CrossProb = 1.5 }},
		{"bad teleport prob", func(c *EstateConfig) { c.TeleportProb = -0.1 }},
		{"no duration", func(c *EstateConfig) { c.Duration = 0; c.Regions[0].Duration = 0 }},
		{"mixed sizes", func(c *EstateConfig) {
			c.Cols, c.Regions = 2, append(c.Regions, ApfelLand(2))
			c.Regions[1].Land.Size = 512
			c.Regions[1].Land.Name = "big"
		}},
		{"duplicate names", func(c *EstateConfig) {
			c.Cols, c.Regions = 2, append(c.Regions, DanceIsland(2))
		}},
	}
	for _, tc := range cases {
		cfg := base()
		tc.break_(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSingleRegionEstateParity is the acceptance gate for the estate
// refactor: a 1×1 estate must reproduce the single-land pipeline's
// snapshots bit for bit — same IDs, same float positions, same times.
func TestSingleRegionEstateParity(t *testing.T) {
	scn := ApfelLand(5)
	scn.Duration = 2 * 3600
	single, err := NewSource(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstateSource(SingleRegionEstate(scn), 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ticks := 0
	for {
		want, errS := single.Next(ctx)
		tick, errE := est.NextTick(ctx)
		if errS == io.EOF || errE == io.EOF {
			if errS != errE {
				t.Fatalf("streams end at different times: single=%v estate=%v", errS, errE)
			}
			break
		}
		if errS != nil || errE != nil {
			t.Fatal(errS, errE)
		}
		if len(tick.Regions) != 1 {
			t.Fatalf("tick has %d regions, want 1", len(tick.Regions))
		}
		got := tick.Regions[0]
		if got.T != want.T || len(got.Samples) != len(want.Samples) {
			t.Fatalf("t=%d: snapshot shape %d@%d, want %d@%d",
				want.T, len(got.Samples), got.T, len(want.Samples), want.T)
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("t=%d sample %d: %+v, want %+v", want.T, i, got.Samples[i], want.Samples[i])
			}
		}
		ticks++
	}
	if ticks != int(scn.Duration/10) {
		t.Fatalf("streamed %d ticks, want %d", ticks, scn.Duration/10)
	}
	if est.Estate().Crossings()+est.Estate().Teleports() != 0 {
		t.Fatalf("1x1 estate recorded handoffs")
	}
}

// twoRegionEstate builds a 1×2 estate with tunable migration pressure.
func twoRegionEstate(crossProb, teleportProb float64) EstateConfig {
	left := DanceIsland(3)
	right := ApfelLand(4)
	return EstateConfig{
		Name:         "pair",
		Rows:         1,
		Cols:         2,
		Regions:      []Scenario{left, right},
		CrossProb:    crossProb,
		TeleportProb: teleportProb,
		Seed:         9,
		Duration:     3600,
	}
}

// TestEstateBorderCrossing drives heavy walking traffic across one border
// and checks the handoff invariants: crossings happen, every avatar is in
// exactly one region per tick, positions stay inside region bounds, and
// at least one avatar is observed on both sides of the border.
func TestEstateBorderCrossing(t *testing.T) {
	es, err := NewEstateSource(twoRegionEstate(0.02, 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	ticks := drainTicks(t, es)
	if c := es.Estate().Crossings(); c == 0 {
		t.Fatal("no border crossings under CrossProb=0.02")
	}
	if tp := es.Estate().Teleports(); tp != 0 {
		t.Fatalf("teleports = %d with TeleportProb=0", tp)
	}
	perRegion := make([]map[trace.AvatarID]struct{}, 2)
	for i := range perRegion {
		perRegion[i] = make(map[trace.AvatarID]struct{})
	}
	bounds := es.Estate().Region(0).Scenario().Land.Bounds()
	for _, tick := range ticks {
		seen := make(map[trace.AvatarID]int)
		for ri, snap := range tick.Regions {
			for _, s := range snap.Samples {
				if prev, dup := seen[s.ID]; dup {
					t.Fatalf("t=%d: avatar %d in regions %d and %d", tick.T, s.ID, prev, ri)
				}
				seen[s.ID] = ri
				if !bounds.Contains(s.Pos) {
					t.Fatalf("t=%d: region %d avatar %d at %v outside region bounds", tick.T, ri, s.ID, s.Pos)
				}
				perRegion[ri][s.ID] = struct{}{}
			}
		}
	}
	both := 0
	for id := range perRegion[0] {
		if _, ok := perRegion[1][id]; ok {
			both++
		}
	}
	if both == 0 {
		t.Fatal("no avatar observed on both sides of the border")
	}
}

// TestEstateTeleports drives teleport-only migration and checks the
// counters move and walking stays off.
func TestEstateTeleports(t *testing.T) {
	es, err := NewEstateSource(twoRegionEstate(0, 0.01), 10)
	if err != nil {
		t.Fatal(err)
	}
	drainTicks(t, es)
	if tp := es.Estate().Teleports(); tp == 0 {
		t.Fatal("no teleports under TeleportProb=0.01")
	}
	if c := es.Estate().Crossings(); c != 0 {
		t.Fatalf("crossings = %d with CrossProb=0", c)
	}
}

// TestEstateCollectRoundTrip materialises per-region traces, writes them
// to disk, and zips them back through OpenEstateStream: identities,
// origins, and tick alignment must round-trip.
func TestEstateCollectRoundTrip(t *testing.T) {
	cfg := twoRegionEstate(0.02, 0.002)
	cfg.Duration = 600
	es, err := NewEstateSource(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := trace.CollectEstate(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 {
		t.Fatalf("collected %d traces, want 2", len(trs))
	}
	dir := t.TempDir()
	paths := make([]string, len(trs))
	for i, tr := range trs {
		if err := tr.Validate(); err != nil {
			t.Fatalf("region %d trace invalid: %v", i, err)
		}
		paths[i] = dir + "/" + []string{"left", "right"}[i] + ".sltr"
		if err := trace.WriteFile(tr, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	efs, err := trace.OpenEstateStream(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer efs.Close()
	infos := efs.Regions()
	wantInfos := es.Regions()
	for i := range infos {
		if infos[i].Region != wantInfos[i].Region {
			t.Errorf("region %d identity = %q, want %q", i, infos[i].Region, wantInfos[i].Region)
		}
		if infos[i].Origin != wantInfos[i].Origin {
			t.Errorf("region %d origin = %v, want %v", i, infos[i].Origin, wantInfos[i].Origin)
		}
	}
	n := 0
	for {
		tick, err := efs.NextTick(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range tick.Regions {
			if len(tick.Regions[i].Samples) != len(trs[i].Snapshots[n].Samples) {
				t.Fatalf("tick %d region %d: %d samples, want %d",
					n, i, len(tick.Regions[i].Samples), len(trs[i].Snapshots[n].Samples))
			}
		}
		n++
	}
	if n != len(trs[0].Snapshots) {
		t.Fatalf("replayed %d ticks, want %d", n, len(trs[0].Snapshots))
	}
}
