package world

import (
	"fmt"
	"math"
	"sort"

	"slmob/internal/geom"
	"slmob/internal/rng"
	"slmob/internal/trace"
)

// Scenario bundles everything needed to run one land simulation.
type Scenario struct {
	Land     LandConfig
	Behavior Behavior
	Session  SessionModel
	Arrivals Arrivals
	Model    Model
	// Seed makes the whole run reproducible.
	Seed uint64
	// Duration is the simulated measurement length in seconds (the paper
	// analyses 24-hour traces).
	Duration int64
	// Warmup avatars are already on the land at time zero, so the trace
	// starts on an active land as the paper's did. A good value is the
	// target mean concurrency.
	Warmup int
}

// Validate checks the whole scenario.
func (s Scenario) Validate() error {
	if err := s.Land.Validate(); err != nil {
		return err
	}
	if err := s.Behavior.Validate(); err != nil {
		return err
	}
	if err := s.Session.Validate(); err != nil {
		return err
	}
	if err := s.Arrivals.Validate(); err != nil {
		return err
	}
	if s.Model == POIGravity && len(s.Land.POIs) == 0 {
		return fmt.Errorf("world: POI-gravity model on land %q without POIs", s.Land.Name)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("world: non-positive duration %d", s.Duration)
	}
	if s.Warmup < 0 || s.Warmup > s.Land.EffectiveMaxAvatars() {
		return fmt.Errorf("world: warmup %d out of range", s.Warmup)
	}
	return nil
}

// ChatMessage is one utterance in local chat. Second Life local chat
// carries ~20 m; the server module enforces the radius when relaying.
type ChatMessage struct {
	T    int64
	From trace.AvatarID
	Pos  geom.Vec
	Text string
}

// DepartedStats records the ground truth for an avatar that logged out,
// used to validate the analysis pipeline against what actually happened.
type DepartedStats struct {
	ID         trace.AvatarID
	LoginT     int64
	LogoutT    int64
	Travelled  float64
	MovingSecs int64
	Wanderer   bool
}

// externalState tracks a monitor-controlled avatar (the crawler).
type externalState struct {
	id       trace.AvatarID
	pos      geom.Vec
	joinedAt int64
	lastMove int64
	lastChat int64
}

// Suspicion thresholds for the perturbation model: an avatar that has
// neither moved nor chatted recently reads as a bot and attracts curious
// users (paper §2: "a steady convergence of user movements towards our
// crawler").
const (
	suspiciousAfterJoin = 45 // seconds of presence before anyone cares
	suspiciousNoMove    = 30 // seconds without movement
	suspiciousNoChat    = 90 // seconds without chat
)

// Sim is a running land simulation. It is not safe for concurrent use;
// the server serialises access.
type Sim struct {
	scn Scenario
	t   int64

	avatars   []*avatar
	nextID    uint64
	externals []*externalState

	// idBase offsets every ID the sim assigns, so the regions of an
	// estate draw from disjoint ID spaces and an avatar keeps a globally
	// unique identity across handoffs. Zero for single-land simulations,
	// which keeps their traces byte-identical to the pre-estate ones.
	idBase uint64

	root   *rng.Source
	arrRng *rng.Source

	chatHook func(ChatMessage)

	departed       []DepartedStats
	totalLogins    int
	rejectedLogins int
	peak           int
}

// NewSim validates the scenario and creates the simulation, spawning the
// warmup population at their destinations.
func NewSim(scn Scenario) (*Sim, error) {
	return newSimWithIDBase(scn, 0)
}

// newSimWithIDBase is NewSim with an avatar-ID namespace offset, used by
// the estate to keep identities globally unique across regions.
func newSimWithIDBase(scn Scenario, idBase uint64) (*Sim, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		scn:    scn,
		root:   rng.New(scn.Seed),
		idBase: idBase,
	}
	s.arrRng = s.root.Split("arrivals")
	warm := s.root.Split("warmup")
	for i := 0; i < scn.Warmup; i++ {
		a := s.newAvatar()
		// Mid-session residual: position already at a destination, with a
		// uniformly elapsed fraction of the session.
		full := scn.Session.Sample(a.rng)
		a.logoutAt = int64(full * warm.Float64())
		if a.logoutAt < 1 {
			a.logoutAt = 1
		}
		a.pos = s.destinationFor(a)
		a.beginPause(0, scn.Behavior)
		s.avatars = append(s.avatars, a)
		s.totalLogins++
	}
	s.peak = len(s.avatars)
	return s, nil
}

// Time returns the current simulation time in seconds.
func (s *Sim) Time() int64 { return s.t }

// Scenario returns the scenario the sim was built from.
func (s *Sim) Scenario() Scenario { return s.scn }

// Population returns the number of resident avatars (externals excluded).
func (s *Sim) Population() int { return len(s.avatars) }

// TotalLogins returns the number of accepted logins including warmup.
func (s *Sim) TotalLogins() int { return s.totalLogins }

// RejectedLogins returns logins refused because the land was full.
func (s *Sim) RejectedLogins() int { return s.rejectedLogins }

// Peak returns the maximum concurrent population seen so far.
func (s *Sim) Peak() int { return s.peak }

// Departed returns ground-truth statistics for all avatars that have
// logged out so far. The returned slice is owned by the sim; callers must
// not modify it.
func (s *Sim) Departed() []DepartedStats { return s.departed }

// SetChatHook registers a callback invoked for every avatar chat message.
func (s *Sim) SetChatHook(fn func(ChatMessage)) { s.chatHook = fn }

// newAvatar allocates an avatar with its own deterministic stream.
func (s *Sim) newAvatar() *avatar {
	s.nextID++
	id := s.nextID
	a := &avatar{
		id:      trace.AvatarID(s.idBase + id),
		rng:     s.root.SplitIndexed("avatar", id),
		seat:    -1,
		crossTo: -1,
	}
	b := s.scn.Behavior
	a.wanderer = a.rng.Bool(b.WandererFrac)
	if a.wanderer {
		a.wanderLegs = b.WandererLegs
	}
	return a
}

// spawnAt logs a fresh avatar in at a spawn point.
func (s *Sim) spawnAt(now int64) {
	if len(s.avatars)+len(s.externals) >= s.scn.Land.EffectiveMaxAvatars() {
		s.rejectedLogins++
		return
	}
	a := s.newAvatar()
	b := s.scn.Behavior
	a.logoutAt = now + int64(s.scn.Session.Sample(a.rng))
	if a.logoutAt <= now {
		a.logoutAt = now + 1
	}
	if b.ScatterLoginFrac > 0 && a.rng.Bool(b.ScatterLoginFrac) {
		// Returning user: rez at the last saved location (uniform over the
		// land) and head straight for an attraction.
		a.pos = s.uniformPoint(a.rng)
		a.beginTravel(s.destinationFor(a), b)
	} else {
		sp := s.scn.Land.Spawns[a.rng.Intn(len(s.scn.Land.Spawns))]
		jr := b.SpawnJitter
		if jr <= 0 {
			jr = 3
		}
		a.pos = s.jitter(sp, jr, a.rng)
		a.firstLeg = true
		if b.ArrivalPauseMax > 0 {
			a.phase = phasePause
			a.anchor = a.pos
			a.pauseUntil = now + int64(a.rng.Range(b.ArrivalPauseMin, b.ArrivalPauseMax))
		} else {
			a.beginTravel(s.destinationFor(a), b)
		}
	}
	a.loginT = now
	s.avatars = append(s.avatars, a)
	s.totalLogins++
	if n := len(s.avatars); n > s.peak {
		s.peak = n
	}
}

// jitter displaces p by up to radius metres uniformly, clamped to bounds.
func (s *Sim) jitter(p geom.Vec, radius float64, r *rng.Source) geom.Vec {
	ang := r.Range(0, 2*math.Pi)
	d := radius * math.Sqrt(r.Float64())
	q := p.Add(geom.V(d*math.Cos(ang), d*math.Sin(ang), 0))
	return s.scn.Land.Bounds().Clamp(q)
}

// uniformPoint draws a uniform ground-plane point of the land.
func (s *Sim) uniformPoint(r *rng.Source) geom.Vec {
	return geom.V2(r.Range(0, s.scn.Land.Size), r.Range(0, s.scn.Land.Size))
}

// destinationFor picks the avatar's next destination under the scenario's
// mobility model.
func (s *Sim) destinationFor(a *avatar) geom.Vec {
	b := s.scn.Behavior
	switch s.scn.Model {
	case RandomWaypoint:
		return s.uniformPoint(a.rng)
	case LevyWalk:
		ang := a.rng.Range(0, 2*math.Pi)
		step := a.rng.Levy(1.2, 1, 2*s.scn.Land.Size)
		q := a.pos.Add(geom.V(step*math.Cos(ang), step*math.Sin(ang), 0))
		return s.scn.Land.Bounds().Clamp(q)
	default: // POIGravity
		if a.wanderer && a.wanderLegs > 0 {
			a.wanderLegs--
			return s.uniformPoint(a.rng)
		}
		if b.ExploreProb > 0 && a.rng.Bool(b.ExploreProb) {
			return s.uniformPoint(a.rng)
		}
		pois := s.scn.Land.POIs
		weights := make([]float64, len(pois))
		// Fresh visitors pick their first destination mostly from the land
		// map rather than by proximity: halve the gravity exponent for the
		// leg out of the telehub so arrivals fan out instead of converging
		// on the hub's nearest attraction.
		gamma := b.GravityGamma
		if a.firstLeg {
			gamma /= 2
		}
		a.firstLeg = false
		for i, p := range pois {
			weights[i] = p.Weight
			if gamma > 0 {
				d := math.Max(a.pos.DistXY(p.Pos), 20)
				weights[i] /= math.Pow(d, gamma)
			}
		}
		poi := pois[a.rng.Choice(weights)]
		return s.jitter(poi.Pos, poi.Radius, a.rng)
	}
}

// pauseFor starts the model-appropriate pause.
func (s *Sim) pauseFor(a *avatar, now int64) {
	b := s.scn.Behavior
	if s.scn.Model == RandomWaypoint {
		a.phase = phasePause
		a.anchor = a.pos
		a.pauseUntil = now + int64(a.rng.Range(b.PauseMin, b.PauseMax))
		return
	}
	a.beginPause(now, b)
}

// Step advances the simulation by one second.
func (s *Sim) Step() {
	s.t++
	now := s.t

	// Arrivals: Poisson count for this second.
	if rate := s.scn.Arrivals.Rate(now); rate > 0 {
		for n := s.arrRng.Poisson(rate); n > 0; n-- {
			s.spawnAt(now)
		}
	}

	// Update each avatar; compact the slice over departures.
	live := s.avatars[:0]
	for _, a := range s.avatars {
		if now >= a.logoutAt {
			s.departed = append(s.departed, DepartedStats{
				ID:         a.id,
				LoginT:     a.loginT,
				LogoutT:    now,
				Travelled:  a.travelled,
				MovingSecs: a.movingSecs,
				Wanderer:   a.wanderer,
			})
			continue
		}
		s.updateAvatar(a, now)
		live = append(live, a)
	}
	s.avatars = live
	if n := len(s.avatars); n > s.peak {
		s.peak = n
	}
}

// RunUntil advances the simulation to the given time.
func (s *Sim) RunUntil(t int64) {
	for s.t < t {
		s.Step()
	}
}

func (s *Sim) updateAvatar(a *avatar, now int64) {
	b := s.scn.Behavior
	switch a.phase {
	case phaseTravel:
		prev := a.pos
		next, reached := a.pos.StepToward(a.target, a.speed)
		a.pos = next
		a.travelled += prev.Dist(next)
		a.movingSecs++
		if reached {
			if s.trySit(a, now) {
				return
			}
			s.pauseFor(a, now)
		}
	case phaseSeated:
		if now >= a.pauseUntil {
			s.standUp(a)
			a.beginTravel(s.destinationFor(a), b)
		}
	case phasePause:
		// Perturbation: investigate a suspicious presence.
		if b.CuriosityProb > 0 && !a.investigating {
			if ext := s.suspiciousExternal(now); ext != nil && a.rng.Bool(b.CuriosityProb) {
				a.beginTravel(s.jitter(ext.pos, 3, a.rng), b)
				a.investigating = true
				return
			}
		}
		if b.MicroMoveProb > 0 && a.rng.Bool(b.MicroMoveProb) {
			step := a.rng.Range(0.3, b.MicroMoveStep)
			prev := a.pos
			a.pos = s.jitter(a.anchor, step, a.rng)
			a.travelled += prev.Dist(a.pos)
			a.movingSecs++
		}
		if b.ChatProb > 0 && a.rng.Bool(b.ChatProb) && s.chatHook != nil {
			s.chatHook(ChatMessage{T: now, From: a.id, Pos: a.pos})
		}
		if now >= a.pauseUntil {
			a.beginTravel(s.destinationFor(a), b)
		}
	}
}

// trySit seats the avatar on a free nearby sit spot, when allowed.
func (s *Sim) trySit(a *avatar, now int64) bool {
	land := s.scn.Land
	b := s.scn.Behavior
	if !land.AllowSit || len(land.SitSpots) == 0 || !a.rng.Bool(b.SitProb) {
		return false
	}
	for i := range land.SitSpots {
		spot := &land.SitSpots[i]
		if spot.Capacity > s.seatedAt(i) && a.pos.DistXY(spot.Pos) <= 10 {
			a.phase = phaseSeated
			a.seat = i
			a.pos = spot.Pos
			a.pauseUntil = now + int64(a.rng.BoundedPareto(b.PauseMin, b.PauseMax, b.PauseAlpha))
			return true
		}
	}
	return false
}

func (s *Sim) seatedAt(spot int) int {
	n := 0
	for _, a := range s.avatars {
		if a.phase == phaseSeated && a.seat == spot {
			n++
		}
	}
	return n
}

func (s *Sim) standUp(a *avatar) { a.seat = -1 }

// removeAvatar takes an avatar out of the resident population without
// recording a logout — the estate hands it to a neighbouring region.
func (s *Sim) removeAvatar(a *avatar) {
	for i, b := range s.avatars {
		if b == a {
			s.avatars = append(s.avatars[:i], s.avatars[i+1:]...)
			return
		}
	}
}

// States appends the externally observable avatar states to buf and
// returns it, sorted by avatar ID. Externals (crawler avatars) are
// included: a monitor sees itself and other monitors on the map, exactly
// as the paper's crawler appeared as an avatar to everyone else.
func (s *Sim) States(buf []AvatarState) []AvatarState {
	buf = buf[:0]
	for _, a := range s.avatars {
		if a.inFlight {
			continue
		}
		buf = append(buf, AvatarState{ID: a.id, Pos: a.pos, Seated: a.phase == phaseSeated})
	}
	for _, e := range s.externals {
		buf = append(buf, AvatarState{ID: e.id, Pos: e.pos})
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
	return buf
}

// ResidentStates is States restricted to simulated residents, used by
// ground-truth comparisons that must exclude the monitor itself.
func (s *Sim) ResidentStates(buf []AvatarState) []AvatarState {
	buf = buf[:0]
	for _, a := range s.avatars {
		if a.inFlight {
			continue
		}
		buf = append(buf, AvatarState{ID: a.id, Pos: a.pos, Seated: a.phase == phaseSeated})
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
	return buf
}

// AddExternal admits a monitor-controlled avatar at the given position.
// It consumes a slot under the land's avatar cap, like any login.
func (s *Sim) AddExternal(pos geom.Vec) (trace.AvatarID, error) {
	if len(s.avatars)+len(s.externals) >= s.scn.Land.EffectiveMaxAvatars() {
		return 0, fmt.Errorf("world: land %q full", s.scn.Land.Name)
	}
	s.nextID++
	e := &externalState{
		id:       trace.AvatarID(s.idBase + s.nextID),
		pos:      s.scn.Land.Bounds().Clamp(pos),
		joinedAt: s.t,
		lastMove: s.t,
		lastChat: s.t - suspiciousNoChat, // silent until it chats
	}
	s.externals = append(s.externals, e)
	return e.id, nil
}

// MoveExternal repositions an external avatar, marking it as moving.
func (s *Sim) MoveExternal(id trace.AvatarID, pos geom.Vec) error {
	e := s.external(id)
	if e == nil {
		return fmt.Errorf("world: unknown external avatar %d", id)
	}
	e.pos = s.scn.Land.Bounds().Clamp(pos)
	e.lastMove = s.t
	return nil
}

// ExternalPos returns an external avatar's current (clamped) position.
// The serving layer caches it per session so chat relay and
// area-of-interest queries never rescan the full avatar set.
func (s *Sim) ExternalPos(id trace.AvatarID) (geom.Vec, bool) {
	e := s.external(id)
	if e == nil {
		return geom.Vec{}, false
	}
	return e.pos, true
}

// ExternalChat records a chat utterance by an external avatar and relays
// it through the chat hook.
func (s *Sim) ExternalChat(id trace.AvatarID, text string) error {
	e := s.external(id)
	if e == nil {
		return fmt.Errorf("world: unknown external avatar %d", id)
	}
	e.lastChat = s.t
	if s.chatHook != nil {
		s.chatHook(ChatMessage{T: s.t, From: id, Pos: e.pos, Text: text})
	}
	return nil
}

// RemoveExternal logs an external avatar out.
func (s *Sim) RemoveExternal(id trace.AvatarID) {
	for i, e := range s.externals {
		if e.id == id {
			s.externals = append(s.externals[:i], s.externals[i+1:]...)
			return
		}
	}
}

func (s *Sim) external(id trace.AvatarID) *externalState {
	for _, e := range s.externals {
		if e.id == id {
			return e
		}
	}
	return nil
}

// suspiciousExternal returns an external presence currently reading as a
// bot, if any.
func (s *Sim) suspiciousExternal(now int64) *externalState {
	for _, e := range s.externals {
		if now-e.joinedAt >= suspiciousAfterJoin &&
			now-e.lastMove >= suspiciousNoMove &&
			now-e.lastChat >= suspiciousNoChat {
			return e
		}
	}
	return nil
}
