package world

import (
	"fmt"

	"slmob/internal/snap"
	"slmob/internal/trace"
)

// Source checkpointing: the producer half of the pipeline's
// checkpoint/resume. The snapshot carries the complete simulation state
// — every resident avatar (kinematics, session timers, odometry, and its
// personal rng stream via the capsule codec), the arrival and root rng
// streams, the clock, and the login counters — so a restored source
// continues the exact same snapshot sequence mid-stream, bit-identical
// to a run that was never interrupted.
//
// The ground-truth departure log (Sim.Departed) is intentionally not
// carried: it grows with the run, is only read by calibration
// diagnostics, and does not influence the emitted snapshots.

// kindWorldSource is this payload's snap container kind (mirrors
// core.KindWorldSource).
const kindWorldSource uint64 = 3

// worldCheckpointVersion guards the payload layout.
const worldCheckpointVersion = 1

// SnapshotState implements trace.Stateful: it captures the simulation
// between Next calls. A simulation hosting monitor-controlled (external)
// avatars cannot be checkpointed — the monitors' connections cannot be
// serialised.
func (s *Source) SnapshotState() ([]byte, error) {
	sim := s.sim
	if len(sim.externals) > 0 {
		return nil, fmt.Errorf("world: cannot checkpoint a simulation with %d external avatars", len(sim.externals))
	}
	w := snap.NewWriter(kindWorldSource)
	w.Uvarint(worldCheckpointVersion)
	// Identity guard: a checkpoint only restores onto the same scenario.
	w.String(sim.scn.Land.Name)
	w.U64(sim.scn.Seed)
	w.Varint(sim.scn.Duration)
	w.Varint(s.tau)

	w.Varint(sim.t)
	w.Uvarint(sim.nextID)
	w.Uvarint(sim.idBase)
	w.Varint(int64(sim.totalLogins))
	w.Varint(int64(sim.rejectedLogins))
	w.Varint(int64(sim.peak))
	for _, word := range sim.root.State() {
		w.U64(word)
	}
	for _, word := range sim.arrRng.State() {
		w.U64(word)
	}
	w.Uvarint(uint64(len(sim.avatars)))
	for _, a := range sim.avatars {
		w.Bytes(encodeAvatar(a))
		w.Varint(int64(a.seat))
		w.Varint(int64(a.crossTo))
	}
	return w.Finish(), nil
}

// RestoreState implements trace.Stateful. The source must have been
// constructed from the same scenario and tau the checkpoint was taken
// with; corrupted or mismatched snapshots return typed errors.
func (s *Source) RestoreState(data []byte) error {
	r, err := snap.NewReader(data)
	if err != nil {
		return err
	}
	if r.Kind() != kindWorldSource {
		return &snap.Error{Kind: snap.KindMalformed, Msg: fmt.Sprintf("payload kind %d is not a world-source checkpoint", r.Kind())}
	}
	if v := r.Uvarint(); r.Err() == nil && v != worldCheckpointVersion {
		return &snap.Error{Kind: snap.KindVersion, Msg: fmt.Sprintf("world checkpoint version %d, want %d", v, worldCheckpointVersion)}
	}
	sim := s.sim
	land := r.String()
	seed := r.U64()
	duration := r.Varint()
	tau := r.Varint()
	if err := r.Err(); err != nil {
		return err
	}
	if land != sim.scn.Land.Name || seed != sim.scn.Seed || duration != sim.scn.Duration || tau != s.tau {
		return fmt.Errorf("world: checkpoint is for %q seed=%d duration=%d tau=%d, source runs %q seed=%d duration=%d tau=%d",
			land, seed, duration, tau, sim.scn.Land.Name, sim.scn.Seed, sim.scn.Duration, s.tau)
	}

	t := r.Varint()
	nextID := r.Uvarint()
	idBase := r.Uvarint()
	totalLogins := int(r.Varint())
	rejectedLogins := int(r.Varint())
	peak := int(r.Varint())
	var rootState, arrState [4]uint64
	for i := range rootState {
		rootState[i] = r.U64()
	}
	for i := range arrState {
		arrState[i] = r.U64()
	}
	na := r.Count(capsuleSize + 2)
	avatars := make([]*avatar, 0, na)
	for i := 0; i < na; i++ {
		capsule := r.Bytes()
		seat := r.Varint()
		crossTo := r.Varint()
		if err := r.Err(); err != nil {
			return err
		}
		a, err := decodeAvatar(capsule)
		if err != nil {
			return &snap.Error{Kind: snap.KindMalformed, Msg: err.Error()}
		}
		if seat < -1 || seat >= int64(len(sim.scn.Land.SitSpots)) {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "avatar seat out of range"}
		}
		if crossTo < -1 {
			return &snap.Error{Kind: snap.KindMalformed, Msg: "avatar crossTo out of range"}
		}
		a.seat = int(seat)
		a.crossTo = int(crossTo)
		avatars = append(avatars, a)
	}
	if err := r.Err(); err != nil {
		return err
	}
	if t < 0 || totalLogins < 0 || rejectedLogins < 0 || peak < 0 {
		return &snap.Error{Kind: snap.KindMalformed, Msg: "negative simulation counter"}
	}

	sim.t = t
	sim.nextID = nextID
	sim.idBase = idBase
	sim.totalLogins = totalLogins
	sim.rejectedLogins = rejectedLogins
	sim.peak = peak
	sim.root.Restore(rootState)
	sim.arrRng.Restore(arrState)
	sim.avatars = avatars
	sim.departed = nil
	return nil
}

// Compile-time interface checks.
var (
	_ trace.Stateful  = (*Source)(nil)
	_ trace.Described = (*Source)(nil)
)
