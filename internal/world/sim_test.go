package world

import (
	"math"
	"testing"

	"slmob/internal/geom"
)

// shortScenario returns a small, fast scenario for unit tests.
func shortScenario(seed uint64) Scenario {
	scn := ApfelLand(seed)
	scn.Duration = 1800
	return scn
}

func TestScenarioValidation(t *testing.T) {
	good := shortScenario(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := good
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = good
	bad.Land.Spawns = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing spawns accepted")
	}
	bad = good
	bad.Land.POIs = nil
	if err := bad.Validate(); err == nil {
		t.Error("POI-gravity without POIs accepted")
	}
	bad = good
	bad.Warmup = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	bad = good
	bad.Behavior.WalkSpeed = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero walk speed accepted")
	}
	bad = good
	bad.Arrivals.Diurnal = []float64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("short diurnal profile accepted")
	}
}

func TestSimDeterminism(t *testing.T) {
	runStates := func() []AvatarState {
		sim, err := NewSim(shortScenario(7))
		if err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(900)
		return sim.States(nil)
	}
	a := runStates()
	b := runStates()
	if len(a) != len(b) {
		t.Fatalf("population differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("state %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSimSeedsDiffer(t *testing.T) {
	simA, _ := NewSim(shortScenario(1))
	simB, _ := NewSim(shortScenario(2))
	simA.RunUntil(900)
	simB.RunUntil(900)
	a := simA.States(nil)
	b := simB.States(nil)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Pos != b[i].Pos {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestAvatarsStayInBounds(t *testing.T) {
	sim, err := NewSim(shortScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	bounds := sim.Scenario().Land.Bounds()
	for step := 0; step < 1800; step++ {
		sim.Step()
		for _, st := range sim.States(nil) {
			if !bounds.Contains(st.Pos) {
				t.Fatalf("avatar %d out of bounds at %v (t=%d)", st.ID, st.Pos, sim.Time())
			}
		}
	}
}

func TestPopulationReachesSteadyState(t *testing.T) {
	scn := DanceIsland(5)
	scn.Duration = 4 * 3600
	sim, err := NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(scn.Duration)
	pop := sim.Population()
	// Steady state should stay within a loose band of the target.
	if pop < 10 || pop > 80 {
		t.Errorf("population = %d, want near %v", pop, DanceConcurrentTarget)
	}
	if sim.Peak() > scn.Land.EffectiveMaxAvatars() {
		t.Errorf("peak %d exceeded cap", sim.Peak())
	}
}

func TestLandCapRejectsLogins(t *testing.T) {
	scn := shortScenario(11)
	scn.Land.MaxAvatars = 5
	scn.Warmup = 5
	scn.Arrivals.RatePerSec = 1 // flood
	sim, err := NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(60)
	if sim.Population() > 5 {
		t.Errorf("population %d exceeds cap 5", sim.Population())
	}
	if sim.RejectedLogins() == 0 {
		t.Error("no logins rejected despite cap flood")
	}
}

func TestDepartedGroundTruth(t *testing.T) {
	scn := shortScenario(13)
	scn.Duration = 3600
	sim, err := NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(3600)
	departed := sim.Departed()
	if len(departed) == 0 {
		t.Fatal("no avatars departed in an hour")
	}
	for _, d := range departed {
		if d.LogoutT <= d.LoginT {
			t.Errorf("avatar %d: logout %d <= login %d", d.ID, d.LogoutT, d.LoginT)
		}
		if d.Travelled < 0 || math.IsNaN(d.Travelled) {
			t.Errorf("avatar %d: bad travelled %v", d.ID, d.Travelled)
		}
		if d.MovingSecs < 0 || d.MovingSecs > d.LogoutT-d.LoginT {
			t.Errorf("avatar %d: moving %d out of session %d", d.ID, d.MovingSecs, d.LogoutT-d.LoginT)
		}
	}
}

func TestExternalAvatarLifecycle(t *testing.T) {
	sim, err := NewSim(shortScenario(17))
	if err != nil {
		t.Fatal(err)
	}
	id, err := sim.AddExternal(geom.V2(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	states := sim.States(nil)
	found := false
	for _, st := range states {
		if st.ID == id {
			found = true
		}
	}
	if !found {
		t.Error("external avatar not visible in States")
	}
	// Residents view must exclude it.
	for _, st := range sim.ResidentStates(nil) {
		if st.ID == id {
			t.Error("external avatar leaked into ResidentStates")
		}
	}
	if err := sim.MoveExternal(id, geom.V2(50, 50)); err != nil {
		t.Fatal(err)
	}
	if err := sim.ExternalChat(id, "hi"); err != nil {
		t.Fatal(err)
	}
	sim.RemoveExternal(id)
	for _, st := range sim.States(nil) {
		if st.ID == id {
			t.Error("external avatar still present after removal")
		}
	}
	if err := sim.MoveExternal(id, geom.V2(1, 1)); err == nil {
		t.Error("moving a removed external succeeded")
	}
}

func TestCrawlerPerturbation(t *testing.T) {
	// A silent, motionless external avatar must attract residents; a
	// mimicking one must not. Measure mean distance to the external.
	meanDist := func(mimic bool) float64 {
		scn := shortScenario(23)
		scn.Duration = 3600
		scn.Behavior.CuriosityProb = 0.01
		sim, err := NewSim(scn)
		if err != nil {
			t.Fatal(err)
		}
		crawlerPos := geom.V2(200, 40)
		id, err := sim.AddExternal(crawlerPos)
		if err != nil {
			t.Fatal(err)
		}
		sum, n := 0.0, 0
		for sim.Time() < 3600 {
			sim.Step()
			if mimic && sim.Time()%30 == 0 {
				_ = sim.MoveExternal(id, crawlerPos) // declared movement
				_ = sim.ExternalChat(id, "hello")
			}
			if sim.Time()%60 == 0 {
				for _, st := range sim.ResidentStates(nil) {
					sum += st.Pos.DistXY(crawlerPos)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	naive := meanDist(false)
	mimicking := meanDist(true)
	if naive >= mimicking {
		t.Errorf("perturbation missing: naive mean dist %.1f >= mimic %.1f", naive, mimicking)
	}
}

func TestSittingReportsSeatedState(t *testing.T) {
	scn := shortScenario(29)
	scn.Land.AllowSit = true
	scn.Land.SitSpots = []SitSpot{{Pos: geom.V2(128, 128), Capacity: 4}}
	scn.Behavior.SitProb = 1.0
	scn.Duration = 3600
	sim, err := NewSim(scn)
	if err != nil {
		t.Fatal(err)
	}
	seated := 0
	for sim.Time() < 3600 {
		sim.Step()
		for _, st := range sim.States(nil) {
			if st.Seated {
				seated++
				if !st.Pos.XY().Sub(geom.V2(128, 128)).IsZero() && st.Pos.DistXY(geom.V2(128, 128)) > 0.1 {
					t.Fatalf("seated avatar not at sit spot: %v", st.Pos)
				}
			}
		}
	}
	if seated == 0 {
		t.Error("nobody ever sat despite SitProb=1")
	}
}

func TestCollectProducesValidTrace(t *testing.T) {
	scn := shortScenario(31)
	scn.Duration = 1200
	tr, err := Collect(scn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) != 120 {
		t.Errorf("snapshots = %d, want 120", len(tr.Snapshots))
	}
	if tr.Land != scn.Land.Name {
		t.Errorf("land = %q", tr.Land)
	}
	if tr.UniqueUsers() == 0 {
		t.Error("no users observed")
	}
	if _, err := Collect(scn, 0); err == nil {
		t.Error("tau=0 accepted")
	}
}

func TestSessionModel(t *testing.T) {
	m := SessionModelWithMean(60, 14400, 878)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); math.Abs(got-878)/878 > 0.02 {
		t.Errorf("analytic mean = %v, want ~878", got)
	}
	bad := SessionModel{Min: 0, Max: 10, Alpha: 1}
	if err := bad.Validate(); err == nil {
		t.Error("invalid session model accepted")
	}
	mix := m
	mix.StayerFrac = 0.5
	mix.StayerMin, mix.StayerMax = 1000, 2000
	want := 0.5*1500 + 0.5*878
	if got := mix.Mean(); math.Abs(got-want)/want > 0.02 {
		t.Errorf("mixture mean = %v, want ~%v", got, want)
	}
}

func TestArrivalsDiurnalAveragesToBase(t *testing.T) {
	a := Arrivals{RatePerSec: 0.05, Diurnal: mildDiurnal}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for h := int64(0); h < 24; h++ {
		sum += a.Rate(h * 3600)
	}
	avg := sum / 24
	if math.Abs(avg-0.05)/0.05 > 1e-9 {
		t.Errorf("diurnal average = %v, want 0.05", avg)
	}
	flat := Arrivals{RatePerSec: 0.01}
	if flat.Rate(12345) != 0.01 {
		t.Error("flat rate wrong")
	}
}

func TestPaperLandPresetsValid(t *testing.T) {
	for _, scn := range PaperLands(1) {
		if err := scn.Validate(); err != nil {
			t.Errorf("%s: %v", scn.Land.Name, err)
		}
	}
	for _, model := range []Model{RandomWaypoint, LevyWalk} {
		scn := BaselineScenario(model, 1)
		if err := scn.Validate(); err != nil {
			t.Errorf("baseline %v: %v", model, err)
		}
	}
	if _, err := PaperLand("apfel", 1); err != nil {
		t.Error(err)
	}
	if _, err := PaperLand("nonesuch", 1); err == nil {
		t.Error("unknown land accepted")
	}
}

func TestBaselineModelsProduceMovement(t *testing.T) {
	for _, model := range []Model{RandomWaypoint, LevyWalk} {
		scn := BaselineScenario(model, 3)
		scn.Duration = 900
		tr, err := Collect(scn, 10)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		moved := false
		sessions := tr.Sessions(0)
		for _, s := range sessions {
			if geom.PathLengthXY(s.Path()) > 10 {
				moved = true
				break
			}
		}
		if !moved {
			t.Errorf("%v: nobody moved", model)
		}
	}
}

func TestKindString(t *testing.T) {
	if Public.String() != "public" || Private.String() != "private" || Sandbox.String() != "sandbox" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	if POIGravity.String() != "poi-gravity" || RandomWaypoint.String() != "random-waypoint" ||
		LevyWalk.String() != "levy-walk" || Model(9).String() == "" {
		t.Error("model names wrong")
	}
}
