package world

import (
	"fmt"
	"math/rand"
	"testing"
)

// differentialEstates enumerates the shapes the parallel-vs-serial
// differential sweeps: the calibrated presets plus handoff-heavy
// variants whose migration probabilities are cranked far above any
// preset, so refusals, teleport rng draws, and border turn-backs all
// fire constantly.
func differentialEstates(seed uint64) []EstateConfig {
	paper := PaperEstate(seed)
	paper.Duration = 1800

	mainland := MainlandEstate(seed + 1)
	mainland.Duration = 900

	hot := PaperEstate(seed + 2)
	hot.Name = "Hot Borders"
	hot.Duration = 1800
	hot.CrossProb = 0.05
	hot.TeleportProb = 0.02
	// A cap just above the warmup population makes admissions race
	// capacity: many handoffs are refused, exercising the blocked/refuse
	// path and the fact that a resolve at the source frees a slot for a
	// later inject.
	for i := range hot.Regions {
		hot.Regions[i].Land.MaxAvatars = hot.Regions[i].Warmup + 5
	}

	return []EstateConfig{paper, mainland, hot}
}

// estateFingerprint advances the estate to the given time and folds
// every region's resident states (IDs, exact float positions, seating)
// plus the migration counters into a comparable string.
func estateFingerprint(e *EstateSim, until int64) string {
	e.RunUntil(until)
	s := fmt.Sprintf("t=%d cross=%d tele=%d blocked=%d pop=%d",
		e.Time(), e.Crossings(), e.Teleports(), e.BlockedHandoffs(), e.Population())
	var buf []AvatarState
	for i := 0; i < e.NumRegions(); i++ {
		buf = e.Region(i).ResidentStates(buf[:0])
		s += fmt.Sprintf("|r%d:%d[", i, len(buf))
		for _, st := range buf {
			s += fmt.Sprintf("%d@%x,%x;%v ", st.ID,
				st.Pos.X, st.Pos.Y, st.Seated)
		}
		s += "]"
	}
	return s
}

// TestParallelStepDifferential is the tentpole's determinism gate:
// stepping an estate with any SimWorkers count must be bit-identical
// to the serial loop — same avatar IDs and float-exact positions in
// every region at every sampled time, and the same crossing, teleport,
// and refusal counters. Seeds, estate shapes, and worker counts are
// randomized so the sweep covers handoff-heavy scenarios rather than
// one lucky trajectory.
func TestParallelStepDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(0x51e57a7e))
	for round := 0; round < 3; round++ {
		seed := uint64(rnd.Int63n(1 << 20))
		for _, cfg := range differentialEstates(seed) {
			serialCfg := cfg
			serialCfg.SimWorkers = 1
			serial, err := NewEstateSim(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			workerCounts := []int{2, 3 + rnd.Intn(6)}
			sims := make([]*EstateSim, len(workerCounts))
			for i, w := range workerCounts {
				pcfg := cfg
				pcfg.SimWorkers = w
				p, err := NewEstateSim(pcfg)
				if err != nil {
					t.Fatal(err)
				}
				if p.StepWorkers() < 2 {
					t.Fatalf("%s: SimWorkers=%d built a serial estate", cfg.Name, w)
				}
				defer p.Close()
				sims[i] = p
			}
			// Compare at several intermediate times, not just the end, so
			// a transient divergence that later cancels out still fails.
			for _, frac := range []int64{4, 2, 1} {
				until := cfg.Duration / frac
				want := estateFingerprint(serial, until)
				for i, p := range sims {
					if got := estateFingerprint(p, until); got != want {
						t.Fatalf("%s seed=%d workers=%d t=%d diverged from serial:\n got %.200s\nwant %.200s",
							cfg.Name, seed, workerCounts[i], until, got, want)
					}
				}
			}
			// Vacuity guard: the capped shape must actually exercise the
			// refusal and teleport paths, or the sweep proves nothing.
			if cfg.Name == "Hot Borders" &&
				(serial.BlockedHandoffs() == 0 || serial.Teleports() == 0 || serial.Crossings() == 0) {
				t.Fatalf("Hot Borders seed=%d: blocked=%d teleports=%d crossings=%d — differential is vacuous",
					seed, serial.BlockedHandoffs(), serial.Teleports(), serial.Crossings())
			}
		}
	}
}

// TestParallelStepPendingDifferential drives the networked-handoff API
// (StepPending / Inject / ResolveTransfer) instead of Step, the path
// the estate server uses, with transfers resolved in slice order as
// the contract requires — parallel stepping must leave that path
// bit-identical too, including refusal bookkeeping at full regions.
func TestParallelStepPendingDifferential(t *testing.T) {
	cfg := differentialEstates(99)[2] // the handoff-heavy, capped shape
	cfg.Duration = 1200

	run := func(workers int) string {
		c := cfg
		c.SimWorkers = workers
		e, err := NewEstateSim(c)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for e.Time() < c.Duration {
			transfers := e.StepPending()
			for i, tr := range transfers {
				ok, err := e.Inject(tr)
				if err != nil {
					t.Fatal(err)
				}
				e.ResolveTransfer(i, ok)
			}
		}
		return estateFingerprint(e, c.Duration)
	}

	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d StepPending run diverged from serial:\n got %.200s\nwant %.200s",
				workers, got, want)
		}
	}
}
