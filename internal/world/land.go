// Package world implements the metaverse simulator that stands in for the
// live Second Life service the paper measured (see DESIGN.md §1 for the
// substitution argument). It models lands, avatars with a behavioural
// state machine, point-of-interest gravity mobility (plus random-waypoint
// and Lévy-walk baselines), Poisson login churn with heavy-tailed session
// durations, sitting, chat, and the crawler-perturbation effect the paper
// describes in §2.
//
// The simulator advances in fixed one-second ticks. A land holds at most
// ~100 concurrent avatars (the Second Life cap the paper reports), so a
// full 24-hour run is a few million avatar-ticks — laptop scale.
package world

import (
	"fmt"

	"slmob/internal/geom"
)

// Kind classifies a land's object policy, which constrains the sensor
// monitoring architecture exactly as in the paper: private lands forbid
// object deployment entirely, public lands expire objects after a
// land-dependent lifetime, sandboxes allow free deployment.
type Kind int

const (
	// Public lands accept objects but expire them after ObjectLifetime.
	Public Kind = iota
	// Private lands reject object deployment without authorisation.
	Private
	// Sandbox lands accept objects with no expiry.
	Sandbox
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Public:
		return "public"
	case Private:
		return "private"
	case Sandbox:
		return "sandbox"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// POI is a point of interest: a location that attracts avatars (a dance
// floor, a bar, an info plaza, an event stage). Weight sets the relative
// probability of being chosen as a destination; Radius the area within
// which an arriving avatar settles.
type POI struct {
	Name   string
	Pos    geom.Vec
	Radius float64
	Weight float64
}

// SitSpot is an object avatars can sit on. Seated avatars report the
// coordinates {0,0,0} to monitors — the quirk the paper documents in §3.
type SitSpot struct {
	Pos      geom.Vec
	Capacity int
}

// LandConfig describes one land (island) of the metaverse.
type LandConfig struct {
	// Name of the land ("Apfel Land", "Dance Island", "Isle of View").
	Name string
	// Size is the edge length in metres; Second Life's default is 256.
	Size float64
	// Kind sets the object-deployment policy.
	Kind Kind
	// ObjectLifetime is the expiry of deployed objects in seconds on
	// public lands; 0 means no expiry.
	ObjectLifetime int64
	// MaxAvatars caps concurrent avatars; the paper reports roughly 100
	// for Second Life. Zero means 100.
	MaxAvatars int
	// POIs are the land's attraction points. Must be non-empty for the
	// POI-gravity mobility model.
	POIs []POI
	// Spawns are login locations (telehubs). Must be non-empty.
	Spawns []geom.Vec
	// SitSpots are sittable objects; relevant only when AllowSit is true.
	SitSpots []SitSpot
	// AllowSit enables sitting. The paper's three target lands effectively
	// had none ("in the target lands we selected users did not sit").
	AllowSit bool
}

// Bounds returns the land's ground-plane bounding box.
func (c LandConfig) Bounds() geom.AABB { return geom.Square(c.Size) }

// EffectiveMaxAvatars returns the avatar cap with the Second Life default
// applied.
func (c LandConfig) EffectiveMaxAvatars() int {
	if c.MaxAvatars <= 0 {
		return 100
	}
	return c.MaxAvatars
}

// Validate checks the configuration for structural problems.
func (c LandConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("world: land needs a name")
	}
	if c.Size <= 0 {
		return fmt.Errorf("world: land %q has non-positive size %v", c.Name, c.Size)
	}
	if len(c.Spawns) == 0 {
		return fmt.Errorf("world: land %q has no spawn points", c.Name)
	}
	b := c.Bounds()
	for _, s := range c.Spawns {
		if !b.Contains(s) {
			return fmt.Errorf("world: land %q spawn %v outside bounds", c.Name, s)
		}
	}
	for _, p := range c.POIs {
		if !b.Contains(p.Pos) {
			return fmt.Errorf("world: land %q POI %q outside bounds", c.Name, p.Name)
		}
		if p.Weight < 0 {
			return fmt.Errorf("world: land %q POI %q has negative weight", c.Name, p.Name)
		}
		if p.Radius <= 0 {
			return fmt.Errorf("world: land %q POI %q has non-positive radius", c.Name, p.Name)
		}
	}
	for i, s := range c.SitSpots {
		if !b.Contains(s.Pos) {
			return fmt.Errorf("world: land %q sit spot %d outside bounds", c.Name, i)
		}
	}
	if c.ObjectLifetime < 0 {
		return fmt.Errorf("world: land %q has negative object lifetime", c.Name)
	}
	return nil
}
